// Quickstart: build a small stochastic activity network with the library's
// builder API, then evaluate it three ways — discrete-event simulation,
// exact CTMC transient solution, and steady-state batch means — and check
// that they agree.
//
// The model is a tiny repairable system: two machines that fail
// (exponential, rate 0.1/h) and one repair crew (exponential, rate 1.0/h,
// one machine at a time).  The measure is the probability that both
// machines are down.
//
//   $ ./quickstart
#include <iostream>
#include <memory>

#include "ctmc/state_space.h"
#include "ctmc/uniformization.h"
#include "san/composition.h"
#include "san/rewards.h"
#include "sim/steady.h"
#include "sim/transient.h"
#include "util/string_util.h"

int main() {
  // 1. Declare the atomic model: places carry tokens, timed activities
  //    move them, gates guard enabling.
  auto machine = std::make_shared<san::AtomicModel>("machine");
  const san::PlaceToken up = machine->place("up", 1);
  const san::PlaceToken down = machine->place("down");
  const san::PlaceToken crew = machine->place("crew");  // shared repair crew
  machine->timed_activity("fail")
      .distribution(util::Distribution::Exponential(0.1))
      .input_arc(up)
      .output_arc(down);
  machine->timed_activity("repair")
      .marking_rate([](const san::MarkingRef&) { return 1.0; })
      .input_gate(
          // The crew place holds 0 when idle; a repair may start only when
          // no other repair runs (crew == 0) and this machine is down.
          [down, crew](const san::MarkingRef& m) {
            return m.get(down) > 0 && m.get(crew) == 0;
          },
          [down, crew](const san::MarkingRef& m) {
            m.add(down, -1);
            m.set(crew, 1);
          })
      .output_gate([up, crew](const san::MarkingRef& m) {
        m.add(up, 1);
        m.set(crew, 0);
      });

  // 2. Compose: two replicas sharing the crew (Rep), flattened to an
  //    executable model.
  const auto system =
      san::Rep("plant", san::Leaf(machine), 2, {"crew"});
  const san::FlatModel flat = san::flatten(system);
  std::cout << flat.summary() << "\n\n";

  // 3. Reward: both machines down = no replica has an `up` token.
  const san::RewardFn both_down = [&] {
    auto ups = san::replica_total(flat, "up");
    return [ups](std::span<const std::int32_t> m) {
      return ups(m) == 0.0 ? 1.0 : 0.0;
    };
  }();

  const std::vector<double> times = {1.0, 5.0, 20.0};

  // 4a. Exact transient solution: state space + uniformization.
  const auto space = ctmc::build_state_space(flat);
  const auto reward_vec = space.state_rewards(both_down);
  const auto exact = ctmc::solve_transient(space.chain, reward_vec, times);
  std::cout << "exact CTMC (" << space.chain.num_states << " states):\n";
  for (std::size_t i = 0; i < times.size(); ++i)
    std::cout << "  P(both down at t=" << times[i]
              << "h) = " << util::format_sci(exact.expected_reward[i], 4)
              << "\n";

  // 4b. Terminating simulation with sequential stopping.
  sim::TransientOptions topts;
  topts.time_points = times;
  topts.min_replications = 20000;
  topts.max_replications = 200000;
  topts.rel_half_width = 0.05;
  topts.absorbing_indicator = false;  // the system is repairable
  const auto mc = sim::estimate_transient(flat, both_down, topts);
  std::cout << "simulation (" << mc.replications << " replications):\n";
  for (std::size_t i = 0; i < times.size(); ++i)
    std::cout << "  P(both down at t=" << times[i]
              << "h) = " << util::format_sci(mc.mean(i), 4) << " +- "
              << util::format_sci(mc.estimates[i].half_width, 2) << "\n";

  // 4c. Steady state by batch means.
  sim::SteadyOptions sopts;
  sopts.warmup_time = 50.0;
  sopts.batch_time = 200.0;
  sopts.rel_half_width = 0.05;
  const auto ss = sim::estimate_steady_state(flat, both_down, sopts);
  std::cout << "steady state: P(both down) = "
            << util::format_sci(ss.estimate.mean, 4) << " +- "
            << util::format_sci(ss.estimate.half_width, 2) << " ("
            << ss.batches << " batches)\n";

  std::cout << "\nall three estimates should agree within the printed "
               "confidence intervals.\n";
  return 0;
}
