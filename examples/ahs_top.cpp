// ahs_top: live sweep monitor.  Tails the telemetry tap file that a bench
// or sweep publishes with --tap (schema ahs.telemetry.live.v1, written
// atomically via write-temp+fsync+rename, so a read never observes a torn
// document) and renders a refreshing progress view: points done/total with
// an ETA, sweep outcome counters, solver milestones, simulation health
// gauges, and the per-point wall-time percentiles.
//
//   bench_fig12 --threads 4 --tap live.json &
//   ahs_top --tap live.json
//
// Exits on its own once the sweep reports completion (done == total) and
// the publisher has stopped bumping the sequence number — or with status 3
// when the sequence stops advancing *before* completion for longer than
// --stale-timeout (the producer died without its terminal snapshot).
// --once renders a single frame and exits (CI smoke); --no-clear appends
// frames instead of redrawing in place (logs, dumb terminals).
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "util/cli.h"
#include "util/json.h"
#include "util/telemetry.h"

namespace {

/// Whole-file slurp; empty optional-style "" means unreadable/absent.
std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string fixed(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

std::string progress_bar(double fraction, int width) {
  if (!(fraction >= 0.0)) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  const int filled = static_cast<int>(std::lround(fraction * width));
  std::string bar(static_cast<std::size_t>(width), '.');
  for (int i = 0; i < filled; ++i) bar[static_cast<std::size_t>(i)] = '#';
  return bar;
}

std::string eta_text(const util::JsonValue* eta) {
  if (eta == nullptr || eta->kind != util::JsonValue::Kind::kNumber)
    return "eta --";
  const double s = eta->number;
  if (s >= 90.0) return "eta ~" + fixed(s / 60.0, 1) + " min";
  return "eta ~" + fixed(s, 1) + " s";
}

double counter_of(const util::JsonValue& doc, std::string_view name) {
  const util::JsonValue* counters = doc.find("counters");
  return counters != nullptr ? counters->number_at(name) : 0.0;
}

/// One rendered frame.  `stale_seconds` < 0 means freshness is unknown
/// (first frame).
void render(const util::JsonValue& doc, const std::string& path,
            double stale_seconds, std::ostream& os) {
  const double seq = doc.number_at("seq");
  const double elapsed = doc.number_at("elapsed_seconds");
  os << "ahs_top - " << path << "  seq " << fixed(seq, 0) << "  elapsed "
     << fixed(elapsed, 1) << " s";
  if (stale_seconds > 2.0)
    os << "  [no update for " << fixed(stale_seconds, 1) << " s]";
  os << "\n\n";

  if (const util::JsonValue* prog = doc.find("progress")) {
    const double done = prog->number_at("points_done");
    const double total = prog->number_at("points_total");
    const double pct = prog->number_at("percent");
    os << "  sweep    [" << progress_bar(total > 0 ? done / total : 0.0, 32)
       << "]  " << fixed(done, 0) << "/" << fixed(total, 0) << " points ("
       << fixed(pct, 1) << "%)  " << eta_text(prog->find("eta_seconds"))
       << "\n";
  }

  const double hits = counter_of(doc, "ahs.sweep.structure_cache_hits");
  const double misses = counter_of(doc, "ahs.sweep.structure_cache_misses");
  os << "  outcomes restored " << counter_of(doc, "ahs.sweep.points_restored")
     << "  retried " << counter_of(doc, "ahs.sweep.point_retries")
     << "  degraded " << counter_of(doc, "ahs.sweep.points_degraded")
     << "   structure cache " << fixed(hits, 0) << " hit / " << fixed(misses, 0)
     << " miss\n";

  const double solves = counter_of(doc, "ctmc.uniformization.solves");
  if (solves > 0.0) {
    os << "  solver   solves " << fixed(solves, 0) << "  steady cutoffs "
       << fixed(counter_of(doc, "ctmc.uniformization.steady_cutoffs"), 0)
       << "  QS extrapolations "
       << fixed(counter_of(doc, "ctmc.uniformization.qs_extrapolations"), 0)
       << "  Poisson memo "
       << fixed(counter_of(doc, "ctmc.uniformization.poisson_memo_hits"), 0)
       << " hit\n";
  }

  if (const util::JsonValue* gauges = doc.find("gauges")) {
    if (const util::JsonValue* ess = gauges->find("sim.transient.ess")) {
      os << "  sim      ess " << fixed(ess->as_number(), 1) << "  lr variance "
         << fixed(gauges->number_at("sim.transient.lr_variance"), 4) << "\n";
    }
  }

  if (const util::JsonValue* hists = doc.find("histograms")) {
    if (const util::JsonValue* h = hists->find("ahs.sweep.point_seconds")) {
      os << "  point s  p50 " << fixed(h->number_at("p50"), 3) << "  p90 "
         << fixed(h->number_at("p90"), 3) << "  p99 "
         << fixed(h->number_at("p99"), 3) << "  (n=" << h->number_at("count")
         << ")\n";
    }
  }

  if (const util::JsonValue* trace = doc.find("trace")) {
    os << "  trace    " << fixed(trace->number_at("threads"), 0)
       << " threads, " << fixed(trace->number_at("retained"), 0)
       << " events retained, " << fixed(trace->number_at("dropped"), 0)
       << " dropped\n";
  }
  os.flush();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("ahs_top",
                "Live sweep monitor: tails a --tap telemetry file "
                "(schema ahs.telemetry.live.v1) with a refreshing "
                "progress view.");
  const auto tap = cli.add_string("tap", "telemetry_live.json",
                                  "tap file published by a bench/sweep --tap");
  const auto interval =
      cli.add_double("interval", 0.5, "seconds between refreshes");
  const auto once = cli.add_flag(
      "once", "render a single frame from the current tap contents and exit "
              "(fails if the file is absent or unparseable)");
  const auto max_frames = cli.add_int(
      "max-frames", 0, "stop after this many rendered frames (0 = unlimited)");
  const auto no_clear = cli.add_flag(
      "no-clear", "append frames instead of redrawing in place");
  const auto stale_timeout = cli.add_double(
      "stale-timeout", 30.0,
      "exit nonzero when the tap sequence number stops advancing for this "
      "many seconds before the sweep completes — the producer died without "
      "its terminal snapshot (0 disables)");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  util::TapStaleness staleness(*stale_timeout);
  long long frames = 0;
  bool seen_complete = false;

  for (;;) {
    const std::string text = read_file(*tap);
    if (text.empty()) {
      if (*once) {
        std::cerr << "ahs_top: cannot read " << *tap << "\n";
        return 1;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(*interval));
      continue;
    }

    util::JsonValue doc;
    try {
      doc = util::parse_json(text);
    } catch (const std::exception& e) {
      // Atomic rename means this should never trigger; tolerate it anyway
      // (a publisher using plain writes, a truncated copy).
      if (*once) {
        std::cerr << "ahs_top: " << *tap << ": " << e.what() << "\n";
        return 1;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(*interval));
      continue;
    }
    if (doc.string_at("schema") != "ahs.telemetry.live.v1") {
      std::cerr << "ahs_top: " << *tap << " is not an ahs.telemetry.live.v1 "
                << "document (schema \"" << doc.string_at("schema") << "\")\n";
      return 1;
    }

    const double seq = doc.number_at("seq");
    const double stale = staleness.observe(
        seq, std::chrono::duration<double>(Clock::now() - t0).count());

    std::ostringstream frame;
    render(doc, *tap, *once ? -1.0 : stale, frame);
    if (!*no_clear && !*once && frames > 0)
      std::cout << "\x1b[2J\x1b[H";  // clear + home: redraw in place
    std::cout << frame.str();
    if (*no_clear || *once) std::cout << "\n";
    ++frames;

    const util::JsonValue* prog = doc.find("progress");
    const double done = prog != nullptr ? prog->number_at("points_done") : 0.0;
    const double total =
        prog != nullptr ? prog->number_at("points_total") : 0.0;
    if (total > 0.0 && done >= total) seen_complete = true;

    if (*once) return 0;
    if (*max_frames > 0 && frames >= *max_frames) return 0;
    // The publisher's destructor writes one final snapshot; once the sweep
    // is complete and no new snapshot has landed for a couple of refresh
    // periods, the run is over.
    if (seen_complete && stale > 2.0 * *interval) return 0;
    // The inverse case: the sweep is *not* complete and the producer has
    // gone silent — it died (SIGKILL, OOM) before its terminal snapshot.
    // Without this gate ahs_top would poll the frozen file forever.
    if (!seen_complete && staleness.expired()) {
      std::cerr << "ahs_top: " << *tap << " stopped updating "
                << fixed(stale, 1) << " s ago with the sweep incomplete — "
                << "producer appears dead (--stale-timeout "
                << fixed(*stale_timeout, 1) << ")\n";
      return 3;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(*interval));
  }
}
