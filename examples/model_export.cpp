// Model-inspection example: prints Table 1 as encoded in the library,
// the structural summary of the composed SAN (Fig 9), and exports the
// One_vehicle submodel (Fig 5) as Graphviz dot.
//
//   $ ./model_export            # summary to stdout
//   $ ./model_export --dot vehicle.dot && dot -Tpdf vehicle.dot
#include <fstream>
#include <iostream>

#include "ahs/system_model.h"
#include "ahs/vehicle_model.h"
#include "san/dot.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  util::Cli cli("model_export", "inspect and export the AHS SAN models");
  auto dot_path = cli.add_string("dot", "", "write One_vehicle dot here");
  auto n = cli.add_int("n", 10, "maximum vehicles per platoon");
  try {
    if (!cli.parse(argc, argv)) return 0;

    // Table 1 as encoded.
    util::Table t1({"mode", "example cause", "severity", "maneuver",
                    "rate multiplier"});
    for (const auto& row : ahs::failure_mode_table())
      t1.add_row({row.name, row.example_cause, row.severity_label,
                  ahs::short_name(row.maneuver),
                  util::format_fixed(row.rate_multiplier, 0)});
    std::cout << "Table 1 — failure modes and associated maneuvers:\n"
              << t1 << "\n";

    ahs::Parameters p;
    p.max_per_platoon = static_cast<int>(*n);

    const auto flat = ahs::build_system_model(p);
    std::cout << "composed system model (Fig 9): " << flat.summary()
              << "\n";
    std::cout << "  2n = " << p.capacity()
              << " One_vehicle replicas joined with Configuration, "
                 "Dynamicity, Severity\n";

    if (!dot_path->empty()) {
      const auto vehicle = ahs::build_vehicle_model(p);
      std::ofstream out(*dot_path);
      out << san::to_dot(*vehicle);
      std::cout << "One_vehicle dot written to " << *dot_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
