// Design optimizer — the paper's conclusions ("optimal size of platoons,
// maximum trip duration, most suitable coordination strategy") turned into
// a tool: given a safety target S*, find for each strategy the largest
// platoon size whose unsafety at the trip horizon stays below S*, and the
// longest admissible trip at the chosen size.
//
//   $ ./design_optimizer                          # S* = 1e-6, t = 6 h
//   $ ./design_optimizer --target 1e-7 --horizon 10 --lambda 1e-5
#include <iostream>

#include "ahs/lumped.h"
#include "ahs/sensitivity.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

double unsafety_at(const ahs::Parameters& p, double t) {
  return ahs::LumpedModel(p).unsafety({t})[0];
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("design_optimizer",
                "pick platoon size / trip duration / strategy for a safety "
                "target");
  auto target = cli.add_double("target", 1e-6, "unsafety target S*");
  auto horizon = cli.add_double("horizon", 6.0, "trip duration (hours)");
  auto lambda = cli.add_double("lambda", 1e-5, "base failure rate (/h)");
  auto max_n = cli.add_int("max-n", 14, "largest platoon size considered");
  try {
    if (!cli.parse(argc, argv)) return 0;

    std::cout << "safety target S* = " << util::format_sci(*target, 2)
              << " at t = " << *horizon << " h, lambda = "
              << util::format_sci(*lambda, 2) << "/h\n\n";

    util::Table t({"strategy", "largest safe n", "S at that n",
                   "max trip (h) at n"});
    for (ahs::Strategy s : ahs::kAllStrategies) {
      // S is monotone in n: bisect over the platoon size.
      auto s_of_n = [&](int n) {
        ahs::Parameters p;
        p.max_per_platoon = n;
        p.base_failure_rate = *lambda;
        p.strategy = s;
        return unsafety_at(p, *horizon);
      };
      int best_n = 0;
      double best_s = 0.0;
      if (const double u1 = s_of_n(1); u1 <= *target) {
        int lo = 1, hi = static_cast<int>(*max_n);
        best_s = u1;
        if (s_of_n(hi) <= *target) {
          lo = hi;
          best_s = s_of_n(hi);
        } else {
          while (hi - lo > 1) {
            const int mid = (lo + hi) / 2;
            const double u = s_of_n(mid);
            if (u <= *target) {
              lo = mid;
              best_s = u;
            } else {
              hi = mid;
            }
          }
        }
        best_n = lo;
      }
      std::string max_trip = "-";
      if (best_n > 0) {
        // One transient solve gives S on a whole time grid; the admissible
        // horizon is where the (monotone) curve crosses the target.
        ahs::Parameters p;
        p.max_per_platoon = best_n;
        p.base_failure_rate = *lambda;
        p.strategy = s;
        std::vector<double> grid;
        for (int i = 1; i <= 48; ++i) grid.push_back(i * 0.5);
        const auto curve = ahs::LumpedModel(p).unsafety(grid);
        if (curve.back() <= *target) {
          max_trip = ">24";
        } else {
          double admissible = 0.0;
          for (std::size_t i = 0; i < grid.size(); ++i) {
            if (curve[i] > *target) break;
            admissible = grid[i];
          }
          max_trip = util::format_fixed(admissible, 1);
        }
      }
      t.add_row({ahs::to_string(s),
                 best_n > 0 ? std::to_string(best_n) : "none",
                 best_n > 0 ? util::format_sci(best_s, 3) : "-", max_trip});
    }
    std::cout << t;

    // Which knob buys the most safety from the DD design point?
    ahs::Parameters p;
    p.base_failure_rate = *lambda;
    const auto es = ahs::unsafety_elasticities(
        p, *horizon,
        {ahs::ScalarParam::kLambda, ahs::ScalarParam::kMuAll,
         ahs::ScalarParam::kQIntrinsic},
        0.05);
    std::cout << "\nleverage at the DD design point (d ln S / d ln theta):\n";
    for (const auto& e : es)
      std::cout << "  " << to_string(e.param) << ": "
                << util::format_fixed(e.elasticity, 2) << "\n";
    std::cout << "\nconsistent with the paper: platoons of <= ~10 vehicles,\n"
                 "decentralized inter-platoon coordination, and component\n"
                 "failure rate (lambda) as the dominant design lever.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
