// ahs_lint — static analysis of the AHS SAN models.
//
// Runs the san::analyze suite (dependency-soundness verification plus the
// net-structure checks; see docs/ANALYSIS.md for the diagnostic catalogue)
// over composed AHS system models.
//
//   $ ./ahs_lint                          # lint the default configuration
//   $ ./ahs_lint --all --json             # every shipped configuration,
//                                         # ahs.lint.v1 JSON to stdout
//   $ ./ahs_lint --all --invariants       # + structural-facts dump
//                                         # (semiflows, proved bounds,
//                                         # absorbing certificates)
//   $ ./ahs_lint --strategy CC --n 5 --dot model.dot
//                                         # findings-highlighted Graphviz
//                                         # with the P-semiflow overlay
//
// Exit status: 0 when no error-severity finding was reported, 1 otherwise
// (warnings and infos do not fail the run).  CI runs `--all --json` and
// archives the report.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ahs/parameters.h"
#include "ahs/system_model.h"
#include "san/analyze/analysis.h"
#include "san/analyze/invariants.h"
#include "san/dependency.h"
#include "san/dot.h"
#include "util/cli.h"

namespace {

struct Config {
  ahs::Parameters params;
  std::string label;
};

std::string label_for(const ahs::Parameters& p) {
  std::ostringstream os;
  os << "ahs " << ahs::to_string(p.strategy) << " n=" << p.max_per_platoon
     << " rho=" << p.join_rate / p.leave_rate;
  if (p.adjacency_radius > 0) os << " r=" << p.adjacency_radius;
  return os.str();
}

/// Every shipped configuration: the four Table 3 strategies crossed with
/// representative platoon sizes and load points ρ = join/leave (Fig 13's
/// axis).  Matches the grids the study and bench drivers sweep.
std::vector<Config> all_configs() {
  std::vector<Config> out;
  for (const ahs::Strategy s : ahs::kAllStrategies)
    for (const int n : {2, 5, 10})
      for (const double join : {6.0, 12.0, 24.0}) {
        ahs::Parameters p;
        p.strategy = s;
        p.max_per_platoon = n;
        p.join_rate = join;
        out.push_back({p, label_for(p)});
      }
  return out;
}

std::vector<std::string> split_ids(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string id;
  while (std::getline(ss, id, ','))
    if (!id.empty()) out.push_back(id);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("ahs_lint", "static analysis of the AHS SAN models");
  auto all = cli.add_flag("all", "lint every shipped configuration");
  auto json = cli.add_flag("json", "emit an ahs.lint.v1 JSON document");
  auto invariants = cli.add_flag(
      "invariants", "append the structural-facts dump (P/T-semiflows, "
                    "proved place bounds with provenance, SCC summary, "
                    "absorbing-class certificates) to the text report");
  auto out_path = cli.add_string("out", "", "write the report here");
  auto dot_path = cli.add_string(
      "dot", "", "write a findings-highlighted Graphviz rendering "
                 "(single configuration only)");
  auto n = cli.add_int("n", 10, "maximum vehicles per platoon");
  auto strategy = cli.add_string("strategy", "DD", "DD|DC|CD|CC");
  auto lambda = cli.add_double("lambda", 1e-5, "base failure rate (/h)");
  auto platoons = cli.add_int("platoons", 2, "number of platoons");
  auto radius = cli.add_int("radius", 0, "adjacency radius (0 = global)");
  auto budget =
      cli.add_int("probe-budget", 1024, "reachability-probe marking budget");
  auto disable = cli.add_string(
      "disable", "", "comma-separated diagnostic IDs to suppress");
  auto deps_summary = cli.add_flag(
      "deps-summary", "also print DependencyIndex statistics per "
                      "configuration (declared-set width drives the "
                      "incremental engine's per-event cost)");

  try {
    if (!cli.parse(argc, argv)) return 0;

    san::analyze::LintOptions opts;
    opts.probe_budget = static_cast<std::size_t>(*budget);
    opts.disabled_ids = split_ids(*disable);

    std::vector<Config> configs;
    if (*all) {
      configs = all_configs();
    } else {
      ahs::Parameters p;
      p.max_per_platoon = static_cast<int>(*n);
      p.strategy = ahs::parse_strategy(*strategy);
      p.base_failure_rate = *lambda;
      p.num_platoons = static_cast<int>(*platoons);
      p.adjacency_radius = static_cast<int>(*radius);
      configs.push_back({p, label_for(p)});
    }

    std::vector<san::analyze::LintReport> reports;
    reports.reserve(configs.size());
    std::string invariant_dumps;
    for (const Config& cfg : configs) {
      const san::FlatModel flat = ahs::build_system_model(cfg.params);
      // Guarded: a crash in one configuration's analysis becomes a LINT001
      // finding on a partial report instead of truncating the whole
      // document (batch mode must always emit well-formed output).
      reports.push_back(san::analyze::run_lint_guarded(flat, cfg.label, opts));
      if (*invariants && reports.back().facts != nullptr) {
        invariant_dumps += "== " + cfg.label + " ==\n";
        invariant_dumps +=
            san::analyze::structural_facts_text(flat, *reports.back().facts);
      }
      if (*deps_summary)
        std::cerr << cfg.label << ": "
                  << san::DependencyIndex::build(flat).summary() << "\n";
      if (!dot_path->empty() && !*all) {
        std::ofstream dot_out(*dot_path);
        dot_out << san::to_dot(flat, &reports.back());
        std::cerr << "dot written to " << *dot_path << "\n";
      }
    }

    std::string rendered;
    if (*json) {
      rendered = san::analyze::lint_json_document(reports);
      rendered += "\n";
    } else {
      for (const auto& r : reports) rendered += r.to_text();
      rendered += invariant_dumps;
    }
    if (out_path->empty()) {
      std::cout << rendered;
    } else {
      std::ofstream out(*out_path);
      out << rendered;
      std::cerr << "report written to " << *out_path << "\n";
    }

    std::size_t errors = 0;
    for (const auto& r : reports) errors += r.errors();
    if (errors > 0) {
      std::cerr << "ahs_lint: " << errors
                << " error-severity finding(s) across " << reports.size()
                << " configuration(s)\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
