// ahs_server: the sweep-as-a-service daemon.  Accepts study/sweep requests
// as JSON over a Unix-domain socket, queues their points behind a pluggable
// schedule policy, and evaluates them in supervised worker *processes*
// speaking the durable point-file protocol — a SIGKILLed worker is simply
// respawned and the sweep completes with bitwise-identical results.
//
//   ahs_server --socket /tmp/ahs.sock --workers 4 --policy fair \
//              --tap live.json &
//   ahs_client --socket /tmp/ahs.sock --sizes 10,12 --lambdas 1e-6,1e-5
//   ahs_top    --tap live.json          # watches the server, unmodified
//
// The same binary is its own worker: the supervisor re-execs it as
// `ahs_server --worker --task <file>` (a hidden mode handled before flag
// parsing).  See docs/SERVICE.md for the protocol and operations guide.
#include <csignal>
#include <iostream>
#include <string>

#include "serve/server.h"
#include "serve/worker.h"
#include "util/cli.h"

namespace {

serve::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  // Worker mode first: the argv contract with serve::WorkerSupervisor, kept
  // outside the Cli so future flag changes cannot break running servers.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--worker") {
      std::string task;
      for (int j = 1; j + 1 < argc; ++j)
        if (std::string(argv[j]) == "--task") task = argv[j + 1];
      if (task.empty()) {
        std::cerr << "ahs_server: --worker requires --task <file>\n";
        return 2;
      }
      return serve::run_worker(task);
    }
  }

  util::Cli cli("ahs_server",
                "Evaluation daemon: sweep points as a service over a Unix "
                "socket, computed by crash-safe worker processes.");
  auto socket =
      cli.add_string("socket", "ahs_server.sock", "Unix socket path to serve");
  auto work_dir = cli.add_string("work-dir", "ahs_server_work",
                                 "directory for task/result files");
  auto workers = cli.add_int("workers", 2, "concurrent worker processes");
  auto policy = cli.add_string("policy", "fifo",
                               "schedule policy: fifo | sjf | fair");
  auto tap = cli.add_string(
      "tap", "", "live telemetry tap file (ahs_top-compatible; \"\" = off)");
  auto tap_interval =
      cli.add_double("tap-interval", 0.5, "tap publish period in seconds");
  auto max_attempts =
      cli.add_int("max-attempts", 3, "worker spawn attempts per point");
  auto debug_delay = cli.add_double(
      "debug-worker-delay", 0.0,
      "test knob: seconds each worker sleeps before solving");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "ahs_server: " << e.what() << "\n";
    return 2;
  }

  serve::ServerOptions opts;
  opts.socket_path = *socket;
  opts.work_dir = *work_dir;
  opts.max_workers = static_cast<int>(*workers);
  opts.policy = *policy;
  opts.tap_path = *tap;
  opts.tap_interval_seconds = *tap_interval;
  opts.max_attempts = static_cast<int>(*max_attempts);
  opts.debug_worker_delay_seconds = *debug_delay;

  try {
    serve::Server server(opts);
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    server.run();
    g_server = nullptr;
  } catch (const std::exception& e) {
    std::cerr << "ahs_server: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
