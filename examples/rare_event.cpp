// Rare-event estimation demo: why the repository ships three engines.
//
// At realistic failure rates the paper's unsafety lives at 1e-9..1e-7 —
// far below what plain Monte Carlo reaches at the paper's stated batch
// counts.  This example estimates the same S(t) with:
//   1. plain terminating simulation of the full SAN model,
//   2. failure-biasing importance sampling, and
//   3. the exact lumped CTMC (reference),
// at a failure rate where all three are feasible, then shows the rates at
// which each engine stops being practical.
//
//   $ ./rare_event
#include <algorithm>
#include <iostream>

#include "ahs/lumped.h"
#include "ahs/study.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

void compare_at(double lambda, bool run_plain) {
  ahs::Parameters p;
  p.max_per_platoon = 2;  // small highway so replications are cheap
  p.base_failure_rate = lambda;
  const std::vector<double> times = {6.0};

  ahs::LumpedModel lumped(p);
  const double exact = lumped.unsafety(times)[0];

  util::Table table({"engine", "S(6h)", "95% half-width", "replications"});
  table.add_row({"lumped CTMC (reference)", util::format_sci(exact, 4),
                 "exact", "-"});

  if (run_plain) {
    ahs::StudyOptions mc;
    mc.engine = ahs::Engine::kSimulation;
    mc.min_replications = 40000;
    mc.max_replications = 40000;
    const auto r = ahs::unsafety_curve(p, times, mc);
    table.add_row({"plain Monte Carlo", util::format_sci(r.unsafety[0], 4),
                   util::format_sci(r.half_width[0], 2),
                   std::to_string(r.replications)});
  } else {
    table.add_row({"plain Monte Carlo", "(hopeless: would need ~" +
                       util::format_sci(100.0 / exact, 1) + " replications)",
                   "-", "-"});
  }

  ahs::StudyOptions is;
  is.engine = ahs::Engine::kSimulationIS;
  is.min_replications = 40000;
  is.max_replications = 40000;
  // Aim for ~3 boosted failure events per replication: the catastrophic
  // situations need >= 2 concurrent failures, and a boost far above that
  // (or far below) degrades the estimator (see StudyOptions::failure_boost).
  // Expected unboosted failures per path = vehicles * sum(multipliers) *
  // lambda * horizon = 4 * 14 * lambda * 6.
  is.failure_boost = std::max(1.0, 3.0 / (4 * 14 * lambda * 6.0));
  is.fail_case_bias = 0.2;
  const auto r = ahs::unsafety_curve(p, times, is);
  table.add_row({"importance sampling (boost " +
                     util::format_fixed(is.failure_boost, 0) + ")",
                 util::format_sci(r.unsafety[0], 4),
                 util::format_sci(r.half_width[0], 2),
                 std::to_string(r.replications)});

  std::cout << "lambda = " << util::format_sci(lambda, 1) << "/h\n"
            << table << "\n";
}

}  // namespace

int main() {
  std::cout << "rare-event estimation of AHS unsafety (n = 2 vehicles per "
               "platoon)\n\n";
  compare_at(1e-2, true);   // plain MC still fine
  compare_at(1e-3, true);   // plain MC marginal
  compare_at(1e-4, false);  // plain MC hopeless; IS + CTMC carry on
  std::cout
      << "take-away: plain Monte Carlo loses the race around lambda ~ "
         "1e-3/h;\nfailure-biasing importance sampling stretches the "
         "simulator a further\n1-2 decades; the lumped CTMC covers the "
         "paper's 1e-5..1e-7/h regime\n(and the 1e-13 probabilities the "
         "paper mentions) exactly.\n";
  return 0;
}
