// ahs_client: command-line client of the ahs_server daemon.  Builds a
// fig12-style parameter grid (platoon sizes × base failure rates), submits
// it over the Unix socket, and writes the returned curves as CSV.
//
//   ahs_client --socket /tmp/ahs.sock --sizes 10,12,14 --lambdas 1e-6,1e-5
//   ahs_client --socket /tmp/ahs.sock --op stats
//   ahs_client --socket /tmp/ahs.sock --op shutdown
//
// --serial evaluates the identical grid locally — one direct
// ahs::unsafety_curve() call per point, exactly what a server worker runs —
// and writes the same CSV format through the same formatting code.  The
// served CSV is byte-identical to the serial one (curve doubles travel as
// shortest round-trip JSON numbers), which is how the crash tests prove a
// SIGKILLed-and-retried worker changes nothing.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ahs/study.h"
#include "ahs/sweep.h"
#include "serve/protocol.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/json.h"
#include "util/socket.h"
#include "util/string_util.h"

namespace {

std::vector<double> parse_list(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(util::parse_double(item));
  return out;
}

ctmc::TransientSolver parse_solver(const std::string& s) {
  if (s == "standard") return ctmc::TransientSolver::kStandard;
  if (s == "adaptive") return ctmc::TransientSolver::kAdaptive;
  if (s == "krylov") return ctmc::TransientSolver::kKrylov;
  throw util::PreconditionError("unknown solver \"" + s +
                                "\" (standard | adaptive | krylov)");
}

/// One CSV row per (point, time).  Shared verbatim by the served and
/// --serial paths — bitwise CSV identity depends on that.
void append_rows(std::ostream& os, const std::string& label,
                 const ahs::UnsafetyCurve& curve, const std::string& outcome) {
  for (std::size_t k = 0; k < curve.times.size(); ++k) {
    const double hw = k < curve.half_width.size() ? curve.half_width[k] : 0.0;
    os << label << "," << util::json_number(curve.times[k]) << ","
       << util::json_number(curve.unsafety[k]) << "," << util::json_number(hw)
       << "," << curve.replications << "," << (curve.converged ? 1 : 0) << ","
       << outcome << "\n";
  }
}

/// Sends one request line and reads the one reply line.
std::string roundtrip(const std::string& socket_path,
                      const std::string& request) {
  util::Socket s = util::Socket::connect_unix(socket_path);
  if (!s.send_line(request))
    throw util::IoError("server closed the connection before the request");
  std::string reply;
  if (!s.recv_line(&reply))
    throw util::IoError("server closed the connection without a reply");
  return reply;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("ahs_client",
                "Submit a fig12-style sweep grid to an ahs_server daemon "
                "and collect the curves as CSV.");
  auto socket =
      cli.add_string("socket", "ahs_server.sock", "server Unix socket path");
  auto op = cli.add_string("op", "submit",
                           "operation: submit | ping | stats | shutdown");
  auto client_name =
      cli.add_string("client", "ahs_client", "fair-share client identity");
  auto sizes =
      cli.add_string("sizes", "10,12,14,16,18", "platoon sizes (comma list)");
  auto lambdas = cli.add_string("lambdas", "1e-6,1e-5,1e-4",
                                "base failure rates /h (comma list)");
  auto times = cli.add_string("times", "6.0", "mission times in hours");
  auto engine = cli.add_string(
      "engine", "lumped-ctmc",
      "lumped-ctmc | simulation | simulation-is | full-ctmc");
  auto solver =
      cli.add_string("solver", "adaptive", "standard | adaptive | krylov");
  auto seed = cli.add_int("seed", 42, "simulation seed");
  auto out = cli.add_string("out", "ahs_client.csv", "CSV output path");
  auto serial = cli.add_flag(
      "serial", "evaluate the grid locally (bitwise-diff baseline)");

  try {
    if (!cli.parse(argc, argv)) return 0;

    // The non-submit ops are one JSON line each; print the raw reply (the
    // stats document carries the live worker pids the kill tests target).
    if (*op != "submit") {
      if (*op != "ping" && *op != "stats" && *op != "shutdown")
        throw util::PreconditionError("unknown op \"" + *op + "\"");
      const std::string reply =
          roundtrip(*socket, "{\"op\":\"" + *op + "\"}");
      std::cout << reply << "\n";
      const util::JsonValue doc = util::parse_json(reply);
      const util::JsonValue* ok = doc.find("ok");
      return ok != nullptr && ok->as_bool() ? 0 : 1;
    }

    // The fig12 fixture: join 12/h, leave 4/h, DD strategy, n × λ grid.
    ahs::Parameters base;
    base.join_rate = 12.0;
    base.leave_rate = 4.0;
    const ahs::GridAxis n_axis{"n", parse_list(*sizes),
                               [](ahs::Parameters& p, double v) {
                                 p.max_per_platoon = static_cast<int>(v);
                               }};
    const ahs::GridAxis lambda_axis{
        "lambda", parse_list(*lambdas),
        [](ahs::Parameters& p, double v) { p.base_failure_rate = v; }};

    serve::SubmitRequest req;
    req.client = *client_name;
    req.points = ahs::make_grid(base, n_axis, lambda_axis);
    req.times = parse_list(*times);
    req.study.engine = ahs::parse_engine(*engine);
    req.study.solver = parse_solver(*solver);
    req.study.seed = static_cast<std::uint64_t>(*seed);
    AHS_REQUIRE(!req.points.empty(), "empty grid");
    AHS_REQUIRE(!req.times.empty(), "empty time list");

    std::ostringstream csv;
    csv << "label,t_hours,unsafety,half_width,replications,converged,outcome\n";
    std::size_t computed = 0, cached = 0, failed = 0;

    if (*serial) {
      // Local baseline: per-point direct study calls — the exact code path
      // a server worker runs (serve/worker.cpp), so the CSVs must match.
      for (const ahs::SweepPoint& point : req.points) {
        const ahs::UnsafetyCurve curve =
            ahs::unsafety_curve(point.params, req.times, req.study);
        append_rows(csv, point.label, curve, "computed");
        ++computed;
      }
    } else {
      const std::string reply =
          roundtrip(*socket, serve::encode_submit(req));
      const util::JsonValue doc = util::parse_json(reply);
      const util::JsonValue* ok = doc.find("ok");
      if (ok == nullptr || !ok->as_bool())
        throw util::IoError("submit failed: " + doc.string_at("error", reply));
      const util::JsonValue* results = doc.find("results");
      AHS_ASSERT(results != nullptr &&
                     results->array.size() == req.points.size(),
                 "reply result count mismatch");
      for (std::size_t i = 0; i < results->array.size(); ++i) {
        const util::JsonValue& r = results->array[i];
        const std::string outcome = r.string_at("outcome");
        if (outcome == "failed") {
          std::cerr << "ahs_client: point " << r.string_at("label")
                    << " failed: " << r.string_at("error") << "\n";
          ++failed;
          continue;
        }
        outcome == "cached" ? ++cached : ++computed;
        const util::JsonValue* curve = r.find("curve");
        AHS_ASSERT(curve != nullptr, "ok result without a curve");
        append_rows(csv, r.string_at("label"),
                    serve::decode_curve_json(*curve), outcome);
      }
    }

    std::ofstream file(*out, std::ios::binary | std::ios::trunc);
    AHS_REQUIRE(static_cast<bool>(file), "cannot write " + *out);
    file << csv.str();
    file.close();

    std::cout << "ahs_client: " << req.points.size() << " point(s) — "
              << computed << " computed, " << cached << " cached, " << failed
              << " failed → " << *out << "\n";
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "ahs_client: " << e.what() << "\n";
    return 2;
  }
}
