// Crash-safe sweep demo: the paper's S(t) estimated by simulation over a
// grid of failure rates, with durable per-point results and in-flight
// checkpoints (docs/ROBUSTNESS.md).
//
//   $ ./resume_sweep --checkpoint-dir=ckpt --out=run.csv
//   ^C                                  # or a crash / OOM kill
//   $ ./resume_sweep --checkpoint-dir=ckpt --resume --out=run.csv
//
// The resumed run restores completed points bit-for-bit, continues
// in-flight points from their transient checkpoints, and the final CSV is
// *bitwise identical* to an uninterrupted run — the property the CI
// kill/resume job diffs for (doubles are printed with %.17g, enough digits
// to round-trip, so any drift would show).
//
// Exit status: 0 complete, 130 interrupted (rerun with --resume), 1 if any
// point degraded.
#include <cstdio>
#include <iostream>
#include <memory>

#include "ahs/sweep.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stopflag.h"
#include "util/string_util.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace {

std::string full_precision(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return std::string(buf);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("resume_sweep",
                "Crash-safe simulation sweep of AHS unsafety S(t): "
                "checkpointed, resumable, SIGINT-tolerant.");
  const auto dir = cli.add_string(
      "checkpoint-dir", "",
      "directory for per-point results and in-flight checkpoints");
  const auto resume =
      cli.add_flag("resume", "continue a previous run from --checkpoint-dir");
  const auto out = cli.add_string("out", "resume_sweep.csv", "output CSV");
  const auto threads =
      cli.add_int("threads", 1, "sweep worker threads (1 = sequential)");
  const auto n = cli.add_int("n", 2, "vehicles per platoon");
  const auto min_reps =
      cli.add_int("min-reps", 20000, "minimum replications per point");
  const auto max_reps =
      cli.add_int("max-reps", 400000, "maximum replications per point");
  const auto seed = cli.add_int("seed", 42, "master RNG seed");
  const auto timeout = cli.add_double(
      "point-timeout", 0.0, "per-point wall budget in seconds (0 = off)");
  const auto trace_out = cli.add_string(
      "trace-out", "",
      "write a flight-recorder trace (Chrome/Perfetto JSON, schema "
      "ahs.trace.v1) covering the sweep, incl. checkpoint/resume events");
  const auto tap_path = cli.add_string(
      "tap", "",
      "publish a live telemetry snapshot (ahs.telemetry.live.v1) to this "
      "file for ahs_top");
  const auto tap_interval =
      cli.add_double("tap-interval", 1.0, "seconds between --tap snapshots");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  util::install_stop_handlers();

  // Observability taps (docs/OBSERVABILITY.md): a telemetry session feeds
  // both the tap publisher and the trace summary; the flight recorder is
  // attached only when a trace was requested.
  std::unique_ptr<util::TelemetrySession> session;
  std::unique_ptr<util::TraceRecorder> recorder;
  std::unique_ptr<util::TelemetryTap> tap;
  if (!trace_out->empty() || !tap_path->empty())
    session = std::make_unique<util::TelemetrySession>();
  if (!trace_out->empty()) {
    recorder = std::make_unique<util::TraceRecorder>();
    util::TraceRecorder::set_global(recorder.get());
  }
  if (!tap_path->empty())
    tap = std::make_unique<util::TelemetryTap>(*tap_path, *tap_interval);

  ahs::Parameters base;
  base.max_per_platoon = static_cast<int>(*n);
  const std::vector<double> times = {2.0, 4.0, 6.0};
  const ahs::GridAxis lambda{
      "lambda",
      {2e-3, 1e-3, 5e-4, 2e-4},
      [](ahs::Parameters& p, double v) { p.base_failure_rate = v; }};
  const std::vector<ahs::SweepPoint> points = ahs::make_grid(base, lambda);

  ahs::SweepOptions opts;
  opts.threads = *threads <= 0 ? 1u : static_cast<unsigned>(*threads);
  opts.study.engine = ahs::Engine::kSimulation;
  opts.study.min_replications = static_cast<std::uint64_t>(*min_reps);
  opts.study.max_replications = static_cast<std::uint64_t>(*max_reps);
  opts.study.rel_half_width = 0.05;
  opts.study.abs_half_width = 1e-6;  // rescue still-zero estimates
  opts.study.seed = static_cast<std::uint64_t>(*seed);
  opts.study.checkpoint_every = 5000;  // tight: this demo exists to be killed
  opts.checkpoint_dir = *dir;
  opts.resume = *resume;
  opts.point_timeout_seconds = *timeout;
  opts.stop = &util::stop_flag();

  std::cout << "sweeping " << points.size() << " failure rates x "
            << times.size() << " time points (simulation engine, n = " << *n
            << ")\n";
  const ahs::SweepResult sweep = ahs::run_sweep(points, times, opts);

  // Flush the observability outputs before the exit-status branches: an
  // interrupted run still leaves a valid (partial) trace and a final tap
  // snapshot behind.
  tap.reset();
  if (recorder != nullptr) {
    recorder->write_chrome_trace(*trace_out);
    std::cout << "trace written to " << *trace_out << "\n";
    util::TraceRecorder::set_global(nullptr);
  }

  if (sweep.cancelled) {
    std::cout << "interrupted — progress checkpointed"
              << (dir->empty() ? " (no --checkpoint-dir: progress lost)"
                               : "")
              << "; rerun with --resume to finish\n";
    return 130;
  }

  util::CsvWriter csv(*out);
  csv.write_row({"label", "t_hours", "unsafety", "half_width",
                 "replications", "converged", "outcome"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ahs::UnsafetyCurve& c = sweep.curves[i];
    for (std::size_t j = 0; j < times.size(); ++j)
      csv.write_row({points[i].label, util::format_fixed(times[j]),
                     full_precision(c.unsafety[j]),
                     full_precision(c.half_width[j]),
                     std::to_string(c.replications),
                     c.converged ? "1" : "0",
                     ahs::to_string(sweep.outcome[i])});
    std::cout << "  " << points[i].label << ": "
              << ahs::to_string(sweep.outcome[i]) << " ("
              << c.replications << " replications"
              << (sweep.curves[i].resumed ? ", resumed" : "") << ")\n";
  }
  std::cout << "series written to " << *out << "\n";

  if (sweep.degraded_count() > 0) {
    std::cout << sweep.degraded_count() << " point(s) degraded\n";
    return 1;
  }
  return 0;
}
