// Platoon-safety study — the paper's headline experiment as a CLI tool.
//
// Evaluates the AHS unsafety S(t) (probability that concurrent failures
// have formed one of the Table 2 catastrophic situations by time t) for a
// configurable highway, with a choice of engine.
//
//   $ ./platoon_safety                         # paper defaults, exact
//   $ ./platoon_safety --n 14 --lambda 1e-4
//   $ ./platoon_safety --strategy CC --horizon 8 --points 8
//   $ ./platoon_safety --engine simulation-is --lambda 1e-3 --n 2
#include <iostream>
#include <memory>

#include "ahs/lumped.h"
#include "ahs/study.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/telemetry.h"

int main(int argc, char** argv) {
  util::Cli cli("platoon_safety",
                "AHS unsafety S(t) per Hamouda et al., DSN 2009");
  auto n = cli.add_int("n", 10, "maximum vehicles per platoon");
  auto platoons = cli.add_int("platoons", 2, "number of platoons/lanes");
  auto lambda = cli.add_double("lambda", 1e-5, "base failure rate (/h)");
  auto join = cli.add_double("join", 12.0, "join rate per free slot (/h)");
  auto leave = cli.add_double("leave", 4.0, "leave rate per platoon (/h)");
  auto strategy = cli.add_string("strategy", "DD",
                                 "coordination strategy: DD|DC|CD|CC");
  auto engine = cli.add_string(
      "engine", "lumped-ctmc",
      "lumped-ctmc | simulation | simulation-is | full-ctmc");
  auto horizon = cli.add_double("horizon", 10.0, "trip horizon (hours)");
  auto points = cli.add_int("points", 5, "number of time points");
  auto q = cli.add_double("q", 0.98, "intrinsic maneuver success prob");
  auto radius = cli.add_int(
      "adjacency", 0,
      "severity scope: 0 = global, r > 0 = +-r positions (simulation only)");
  auto law = cli.add_string(
      "maneuver-time", "exponential",
      "exponential|deterministic|uniform|erlang3 (non-exp: simulation only)");
  auto mttf = cli.add_flag("mttf", "also report the mean time to unsafe");
  auto metrics_out = cli.add_string(
      "metrics-out", "",
      "write run telemetry JSON (schema ahs.telemetry.v1) to this file");
  auto progress = cli.add_flag(
      "progress", "print the telemetry summary (span tree, metric tables)");
  auto log_json = cli.add_flag(
      "log-json", "emit log lines as JSON objects (one per line)");

  try {
    if (!cli.parse(argc, argv)) return 0;

    if (*log_json) util::set_log_format(util::LogFormat::kJson);
    // Created before the engines run, so they resolve its registry/tree.
    std::unique_ptr<util::TelemetrySession> telemetry;
    if (!metrics_out->empty() || *progress)
      telemetry = std::make_unique<util::TelemetrySession>();

    ahs::Parameters p;
    p.max_per_platoon = static_cast<int>(*n);
    p.num_platoons = static_cast<int>(*platoons);
    p.base_failure_rate = *lambda;
    p.join_rate = *join;
    p.leave_rate = *leave;
    p.strategy = ahs::parse_strategy(*strategy);
    p.q_intrinsic = *q;
    p.adjacency_radius = static_cast<int>(*radius);
    {
      const std::string l = util::to_lower(*law);
      if (l == "exponential") {
        p.maneuver_time_model = ahs::ManeuverTimeModel::kExponential;
      } else if (l == "deterministic") {
        p.maneuver_time_model = ahs::ManeuverTimeModel::kDeterministic;
      } else if (l == "uniform") {
        p.maneuver_time_model = ahs::ManeuverTimeModel::kUniform;
      } else if (l == "erlang3") {
        p.maneuver_time_model = ahs::ManeuverTimeModel::kErlang3;
      } else {
        throw util::PreconditionError("unknown --maneuver-time: " + *law);
      }
    }
    p.validate();

    std::cout << "parameters:\n" << p.describe() << "\n";

    std::vector<double> times;
    for (int i = 1; i <= *points; ++i)
      times.push_back(*horizon * i / static_cast<double>(*points));

    ahs::StudyOptions opts;
    opts.engine = ahs::parse_engine(*engine);
    const auto curve = ahs::unsafety_curve(p, times, opts);

    util::Table table({"t (h)", "S(t)", "95% half-width"});
    for (std::size_t i = 0; i < times.size(); ++i)
      table.add_row({util::format_fixed(times[i], 2),
                     util::format_sci(curve.unsafety[i], 4),
                     curve.half_width[i] > 0
                         ? util::format_sci(curve.half_width[i], 2)
                         : std::string("exact")});
    std::cout << table;
    if (curve.replications > 0)
      std::cout << "(" << curve.replications << " replications, "
                << (curve.converged ? "converged" : "NOT converged — raise "
                                                    "--max replications or "
                                                    "use the CTMC engine")
                << ")\n";

    if (*mttf) {
      ahs::LumpedModel lumped(p);
      std::cout << "mean time to a catastrophic situation: "
                << util::format_sci(lumped.mean_time_to_unsafe(), 4)
                << " h\n";
    }

    if (telemetry) {
      const util::TelemetryReport report = telemetry->report();
      if (*progress) report.render_summary(std::cout);
      if (!metrics_out->empty()) {
        report.write_json_file(*metrics_out);
        std::cout << "telemetry written to " << *metrics_out << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
