// Coordination study — which strategy should an AHS deploy?
//
// Sweeps the four Table 3 strategies across platoon sizes and reports the
// unsafety at the chosen trip duration plus the system MTTF, ending with
// the paper's design guidance (decentralized inter-platoon coordination,
// platoons of at most ~10 vehicles).
//
//   $ ./coordination_study
//   $ ./coordination_study --lambda 1e-4 --t 8
#include <iostream>

#include "ahs/lumped.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  util::Cli cli("coordination_study",
                "compare AHS coordination strategies (Table 3 / Fig 14-15)");
  auto lambda = cli.add_double("lambda", 1e-5, "base failure rate (/h)");
  auto t = cli.add_double("t", 6.0, "trip duration (hours)");
  auto sizes_arg = cli.add_string("sizes", "6,10,14",
                                  "comma-separated platoon sizes");
  try {
    if (!cli.parse(argc, argv)) return 0;

    std::vector<int> sizes;
    for (const auto& tok : util::split(*sizes_arg, ','))
      sizes.push_back(static_cast<int>(util::parse_int(tok)));

    std::cout << "unsafety S(" << *t << "h) and MTTF per strategy, lambda = "
              << util::format_sci(*lambda, 2) << "/h\n\n";

    for (int n : sizes) {
      util::Table table({"strategy", "S(t)", "MTTF (h)", "vs DD"});
      double dd = 0.0;
      for (ahs::Strategy s : ahs::kAllStrategies) {
        ahs::Parameters p;
        p.max_per_platoon = n;
        p.base_failure_rate = *lambda;
        p.strategy = s;
        ahs::LumpedModel m(p);
        const double st = m.unsafety({*t})[0];
        if (s == ahs::Strategy::kDD) dd = st;
        table.add_row({ahs::to_string(s), util::format_sci(st, 4),
                       util::format_sci(m.mean_time_to_unsafe(), 3),
                       util::format_fixed(st / dd, 3)});
      }
      std::cout << "n = " << n << " vehicles/platoon\n" << table << "\n";
    }

    std::cout << "guidance (matching the paper's conclusions):\n"
                 "  * decentralized inter-platoon coordination is safest —\n"
                 "    centralized TIE-E escorts involve every vehicle ahead\n"
                 "    of the faulty one, and any of them being faulty spoils\n"
                 "    the maneuver;\n"
                 "  * the intra-platoon model matters much less;\n"
                 "  * the strategy gap widens with platoon size, one more\n"
                 "    reason to keep platoons at ~10 vehicles or fewer.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
