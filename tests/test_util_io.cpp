// Unit tests for the string/table/CSV/CLI/logging helpers.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/cli.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

TEST(StringUtil, Split) {
  EXPECT_EQ(util::split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(util::split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(util::split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtil, TrimAndLowerAndStartsWith) {
  EXPECT_EQ(util::trim("  hi \t\n"), "hi");
  EXPECT_EQ(util::trim("   "), "");
  EXPECT_EQ(util::to_lower("AbC"), "abc");
  EXPECT_TRUE(util::starts_with("--flag", "--"));
  EXPECT_FALSE(util::starts_with("-", "--"));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(util::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(util::join({}, ","), "");
}

TEST(StringUtil, FormatSci) {
  EXPECT_EQ(util::format_sci(1.75e-7, 3), "1.75e-07");
  EXPECT_EQ(util::format_sci(0.0, 2), "0.0e+00");
}

TEST(StringUtil, FormatFixedTrimsZeros) {
  EXPECT_EQ(util::format_fixed(1.5), "1.5");
  EXPECT_EQ(util::format_fixed(2.0), "2");
  EXPECT_EQ(util::format_fixed(0.126, 2), "0.13");
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(util::parse_double(" 1e-5 "), 1e-5);
  EXPECT_DOUBLE_EQ(util::parse_double("-2.5"), -2.5);
  EXPECT_THROW(util::parse_double("abc"), util::PreconditionError);
  EXPECT_THROW(util::parse_double("1.5x"), util::PreconditionError);
  EXPECT_THROW(util::parse_double(""), util::PreconditionError);
}

TEST(StringUtil, ParseInt) {
  EXPECT_EQ(util::parse_int("42"), 42);
  EXPECT_EQ(util::parse_int("-7"), -7);
  EXPECT_THROW(util::parse_int("4.2"), util::PreconditionError);
  EXPECT_THROW(util::parse_int(""), util::PreconditionError);
}

TEST(Table, AlignsAndUnderlines) {
  util::Table t({"name", "value"});
  t.add_row({"x", "1.5"});
  t.add_row({"longer", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("------"), std::string::npos);
  // Numeric cells right-aligned: "   1.5" under "value".
  EXPECT_NE(s.find(" 1.5"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), util::PreconditionError);
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream os;
  util::CsvWriter csv(os);
  csv.write_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(os.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(util::CsvWriter("/nonexistent-dir/x.csv"), util::ModelError);
}

TEST(Cli, ParsesAllKinds) {
  util::Cli cli("prog", "test");
  auto i = cli.add_int("count", 1, "a count");
  auto d = cli.add_double("rate", 0.5, "a rate");
  auto s = cli.add_string("name", "x", "a name");
  auto b = cli.add_flag("verbose", "a flag");
  const char* argv[] = {"prog",  "--count=3",   "--rate", "2.5",
                        "--name", "hello",      "--verbose"};
  EXPECT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(*i, 3);
  EXPECT_DOUBLE_EQ(*d, 2.5);
  EXPECT_EQ(*s, "hello");
  EXPECT_TRUE(*b);
}

TEST(Cli, DefaultsSurviveEmptyArgv) {
  util::Cli cli("prog", "test");
  auto i = cli.add_int("count", 7, "a count");
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(*i, 7);
}

TEST(Cli, RejectsUnknownAndMalformed) {
  util::Cli cli("prog", "test");
  cli.add_int("count", 1, "a count");
  const char* bad1[] = {"prog", "--nope", "3"};
  EXPECT_THROW(cli.parse(3, bad1), util::PreconditionError);
  const char* bad2[] = {"prog", "--count", "xyz"};
  EXPECT_THROW(cli.parse(3, bad2), util::PreconditionError);
  const char* bad3[] = {"prog", "count=3"};
  EXPECT_THROW(cli.parse(2, bad3), util::PreconditionError);
  const char* bad4[] = {"prog", "--count"};
  EXPECT_THROW(cli.parse(2, bad4), util::PreconditionError);
}

TEST(Cli, RejectsDuplicateOption) {
  util::Cli cli("prog", "test");
  cli.add_int("x", 1, "h");
  EXPECT_THROW(cli.add_double("x", 1.0, "h"), util::PreconditionError);
}

TEST(Cli, HelpListsOptions) {
  util::Cli cli("prog", "does things");
  cli.add_int("count", 1, "how many");
  const std::string h = cli.help();
  EXPECT_NE(h.find("--count"), std::string::npos);
  EXPECT_NE(h.find("how many"), std::string::npos);
}

TEST(Logging, LevelFilter) {
  const auto old = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  // Nothing observable to assert on stderr here beyond "does not crash";
  // exercise the macros at both suppressed and passing levels.
  AHS_LOG_DEBUG << "suppressed";
  AHS_LOG_ERROR << "emitted to stderr";
  util::set_log_level(old);
  SUCCEED();
}

/// Captures formatted lines for a test body and restores the default sink
/// (stderr), level, and format on exit.
struct CaptureLog {
  std::vector<std::string> lines;
  util::LogLevel old_level = util::log_level();
  util::LogFormat old_format = util::log_format();
  CaptureLog() {
    util::set_log_sink([this](const std::string& line) {
      lines.push_back(line);
    });
  }
  ~CaptureLog() {
    util::set_log_sink(nullptr);
    util::set_log_level(old_level);
    util::set_log_format(old_format);
  }
};

TEST(Logging, SinkReceivesFormattedTextLines) {
  CaptureLog capture;
  AHS_LOGM_WARN("sim") << "ess low: " << 12.5;
  ASSERT_EQ(capture.lines.size(), 1u);
  const std::string& line = capture.lines[0];
  EXPECT_NE(line.find("[WARN]"), std::string::npos);
  EXPECT_NE(line.find("[sim]"), std::string::npos);
  EXPECT_NE(line.find("ess low: 12.5"), std::string::npos);
  // Leads with an ISO-8601 UTC timestamp: YYYY-MM-DDTHH:MM:SS.mmmZ.
  ASSERT_GE(line.size(), 24u);
  EXPECT_EQ(line[4], '-');
  EXPECT_EQ(line[10], 'T');
  EXPECT_EQ(line[23], 'Z');
}

TEST(Logging, SuppressedLevelsNeverReachTheSink) {
  CaptureLog capture;
  util::set_log_level(util::LogLevel::kWarn);
  AHS_LOGM_INFO("ctmc") << "below threshold";
  AHS_LOGM_WARN("ctmc") << "at threshold";
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_NE(capture.lines[0].find("at threshold"), std::string::npos);
}

TEST(Logging, JsonFormatEmitsOneObjectPerLine) {
  CaptureLog capture;
  util::set_log_format(util::LogFormat::kJson);
  AHS_LOGM_ERROR("sweep") << "path \"a\\b\" failed";
  ASSERT_EQ(capture.lines.size(), 1u);
  const std::string& line = capture.lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(line.find("\"module\": \"sweep\""), std::string::npos);
  // Quotes and backslashes in the message are escaped.
  EXPECT_NE(line.find("\"msg\": \"path \\\"a\\\\b\\\" failed\""),
            std::string::npos);
  EXPECT_NE(line.find("\"ts\": \""), std::string::npos);
}

TEST(Logging, UntaggedMacroUsesTheDefaultModule) {
  CaptureLog capture;
  AHS_LOG_WARN << "plain";
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_NE(capture.lines[0].find("[ahs]"), std::string::npos);
}

}  // namespace
