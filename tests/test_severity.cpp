// Table 2 catastrophic-situation predicate: exhaustive case analysis plus
// monotonicity properties.
#include <gtest/gtest.h>

#include "ahs/severity.h"
#include "util/error.h"

namespace {

using ahs::SeverityCounts;

TEST(Severity, ST1TwoClassA) {
  EXPECT_EQ(ahs::catastrophic_situation({2, 0, 0}), 1);
  EXPECT_EQ(ahs::catastrophic_situation({3, 0, 0}), 1);
  EXPECT_EQ(ahs::catastrophic_situation({1, 0, 0}), 0);
}

TEST(Severity, ST2Combinations) {
  EXPECT_EQ(ahs::catastrophic_situation({1, 2, 0}), 2);  // A + 2B
  EXPECT_EQ(ahs::catastrophic_situation({1, 1, 1}), 2);  // A + B + C
  EXPECT_EQ(ahs::catastrophic_situation({1, 0, 3}), 2);  // A + 3C
  EXPECT_EQ(ahs::catastrophic_situation({1, 1, 0}), 0);
  EXPECT_EQ(ahs::catastrophic_situation({1, 0, 2}), 0);
  EXPECT_EQ(ahs::catastrophic_situation({0, 2, 0}), 0);
}

TEST(Severity, ST3FourBOrC) {
  EXPECT_EQ(ahs::catastrophic_situation({0, 4, 0}), 3);
  EXPECT_EQ(ahs::catastrophic_situation({0, 0, 4}), 3);
  EXPECT_EQ(ahs::catastrophic_situation({0, 2, 2}), 3);
  EXPECT_EQ(ahs::catastrophic_situation({0, 3, 0}), 0);
  EXPECT_EQ(ahs::catastrophic_situation({0, 1, 2}), 0);
}

TEST(Severity, ZeroIsSafe) {
  EXPECT_FALSE(ahs::is_catastrophic({0, 0, 0}));
}

TEST(Severity, NegativeCountsRejected) {
  EXPECT_THROW(ahs::catastrophic_situation({-1, 0, 0}),
               util::PreconditionError);
}

TEST(Severity, SafeProfilesEnumeration) {
  // Within counts <= 8 the safe profiles are exactly: a <= 1; for a = 1
  // additionally b <= 1, c <= 2, not (b >= 1 and c >= 1); for a = 0,
  // b + c <= 3.  Count: 10 (a=0) + 4 (a=1) = 14.
  const auto safe = ahs::safe_profiles(8);
  EXPECT_EQ(safe.size(), 14u);
  for (const auto& s : safe) {
    EXPECT_LE(s.a, 1);
    if (s.a == 0) {
      EXPECT_LE(s.b + s.c, 3);
    }
    if (s.a == 1) {
      EXPECT_LE(s.b, 1);
      EXPECT_LE(s.c, 2);
      EXPECT_FALSE(s.b >= 1 && s.c >= 1);
    }
  }
}

// Monotonicity: adding failures can never make a catastrophic profile safe.
class SeverityMonotone : public ::testing::TestWithParam<int> {};

TEST_P(SeverityMonotone, AddingFailuresPreservesCatastrophe) {
  const int idx = GetParam();
  const SeverityCounts s{idx % 4, (idx / 4) % 5, (idx / 20) % 5};
  if (!ahs::is_catastrophic(s)) return;
  const SeverityCounts more_a{s.a + 1, s.b, s.c};
  const SeverityCounts more_b{s.a, s.b + 1, s.c};
  const SeverityCounts more_c{s.a, s.b, s.c + 1};
  EXPECT_TRUE(ahs::is_catastrophic(more_a));
  EXPECT_TRUE(ahs::is_catastrophic(more_b));
  EXPECT_TRUE(ahs::is_catastrophic(more_c));
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, SeverityMonotone,
                         ::testing::Range(0, 100));

// Escalation property: re-classing one failure from C to B, or B to A,
// never turns a catastrophic profile safe (Fig 2's chain only increases
// severity).
class SeverityEscalation : public ::testing::TestWithParam<int> {};

TEST_P(SeverityEscalation, UpgradeKeepsCatastrophe) {
  const int idx = GetParam();
  const SeverityCounts s{idx % 4, (idx / 4) % 5, (idx / 20) % 5};
  if (!ahs::is_catastrophic(s)) return;
  if (s.c > 0) {
    EXPECT_TRUE(ahs::is_catastrophic({s.a, s.b + 1, s.c - 1}))
        << "C->B upgrade";
  }
  if (s.b > 0) {
    EXPECT_TRUE(ahs::is_catastrophic({s.a + 1, s.b - 1, s.c}))
        << "B->A upgrade";
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, SeverityEscalation,
                         ::testing::Range(0, 100));

}  // namespace
