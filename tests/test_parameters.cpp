// Parameter-set validation and derived quantities.
#include <gtest/gtest.h>

#include "ahs/parameters.h"
#include "util/error.h"

namespace {

using namespace ahs;

TEST(Parameters, DefaultsMatchSection41) {
  const Parameters p;
  EXPECT_EQ(p.max_per_platoon, 10);
  EXPECT_DOUBLE_EQ(p.base_failure_rate, 1e-5);
  EXPECT_DOUBLE_EQ(p.join_rate, 12.0);
  EXPECT_DOUBLE_EQ(p.leave_rate, 4.0);
  EXPECT_DOUBLE_EQ(p.change_rate, 6.0);
  EXPECT_EQ(p.capacity(), 20);
  EXPECT_NO_THROW(p.validate());
  // Maneuver rates inside the paper's [15, 30]/h band.
  for (Maneuver m : kAllManeuvers) {
    EXPECT_GE(p.maneuver_rate(m), 15.0);
    EXPECT_LE(p.maneuver_rate(m), 30.0);
  }
  // Transit stage: 3–4 minutes => rate in [15, 20]/h.
  EXPECT_GE(p.transit_rate, 15.0);
  EXPECT_LE(p.transit_rate, 20.0);
}

TEST(Parameters, FailureRatesUseMultipliers) {
  Parameters p;
  p.base_failure_rate = 2e-6;
  EXPECT_DOUBLE_EQ(p.failure_rate(FailureMode::kFM1), 2e-6);
  EXPECT_DOUBLE_EQ(p.failure_rate(FailureMode::kFM5), 6e-6);
  EXPECT_DOUBLE_EQ(p.failure_rate(FailureMode::kFM6), 8e-6);
}

TEST(Parameters, ValidationCatchesBadValues) {
  Parameters p;
  p.max_per_platoon = 0;
  EXPECT_THROW(p.validate(), util::PreconditionError);
  p = Parameters();
  p.base_failure_rate = 0.0;
  EXPECT_THROW(p.validate(), util::PreconditionError);
  p = Parameters();
  p.maneuver_rates[2] = -1.0;
  EXPECT_THROW(p.validate(), util::PreconditionError);
  p = Parameters();
  p.q_intrinsic = 0.0;
  EXPECT_THROW(p.validate(), util::PreconditionError);
  p = Parameters();
  p.q_intrinsic = 1.5;
  EXPECT_THROW(p.validate(), util::PreconditionError);
  p = Parameters();
  p.failure_mode_enabled = {false, false, false, false, false, false};
  EXPECT_THROW(p.validate(), util::PreconditionError);
  p = Parameters();
  p.max_transit = -1;
  EXPECT_THROW(p.validate(), util::PreconditionError);
}

TEST(Parameters, DescribeMentionsKeyValues) {
  const Parameters p;
  const std::string d = p.describe();
  EXPECT_NE(d.find("n (max vehicles/platoon) = 10"), std::string::npos);
  EXPECT_NE(d.find("strategy = DD"), std::string::npos);
  EXPECT_NE(d.find("TIE-E"), std::string::npos);
}

}  // namespace
