// Partition-refinement lumping tests: replica symmetry collapses, quotient
// transients match the full chain, and non-lumpable partitions refine.
#include <gtest/gtest.h>

#include "ahs/system_model.h"
#include "ctmc/lumping.h"
#include "ctmc/state_space.h"
#include "ctmc/uniformization.h"
#include "san/composition.h"
#include "san/rewards.h"
#include "util/error.h"

namespace {

std::shared_ptr<san::AtomicModel> flipflop(double a, double b) {
  auto m = std::make_shared<san::AtomicModel>("ff");
  const auto up = m->place("up", 1);
  const auto down = m->place("down");
  m->timed_activity("fall")
      .distribution(util::Distribution::Exponential(a))
      .input_arc(up)
      .output_arc(down);
  m->timed_activity("rise")
      .distribution(util::Distribution::Exponential(b))
      .input_arc(down)
      .output_arc(up);
  return m;
}

TEST(Lumping, ReplicaSymmetryCollapsesToCounts) {
  // N independent identical flipflops: 2^N states lump to N+1 (the count
  // of "up" machines) when the initial partition groups by that count.
  const int N = 6;
  const auto rep = san::Rep("r", san::Leaf(flipflop(2.0, 1.0)),
                            static_cast<std::uint32_t>(N), {});
  const auto flat = san::flatten(rep);
  const auto space = ctmc::build_state_space(flat);
  ASSERT_EQ(space.chain.num_states, 1u << N);

  const auto ups = san::replica_total(flat, "up");
  const auto reward = space.state_rewards(ups);
  const auto lump = ctmc::lump_by_reward(space.chain, reward);
  EXPECT_EQ(lump.num_blocks, static_cast<std::uint32_t>(N + 1));

  // Quotient transient matches the full chain.
  const std::vector<double> times = {0.3, 1.0, 4.0};
  const auto full = ctmc::solve_transient(space.chain, reward, times);
  std::vector<double> qreward(lump.num_blocks, 0.0);
  for (std::uint32_t s = 0; s < space.chain.num_states; ++s)
    qreward[lump.block_of[s]] = reward[s];
  const auto quot =
      ctmc::solve_transient(lump.quotient, qreward, times);
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_NEAR(full.expected_reward[i], quot.expected_reward[i], 1e-10);
}

TEST(Lumping, AsymmetricRatesDoNotLump) {
  // Two flipflops with different rates: grouping by up-count is NOT
  // lumpable, so refinement must split back to (nearly) the full space.
  auto a = flipflop(2.0, 1.0);
  auto b = std::make_shared<san::AtomicModel>("ff2");
  {
    const auto up = b->place("up", 1);
    const auto down = b->place("down");
    b->timed_activity("fall")
        .distribution(util::Distribution::Exponential(5.0))
        .input_arc(up)
        .output_arc(down);
    b->timed_activity("rise")
        .distribution(util::Distribution::Exponential(0.5))
        .input_arc(down)
        .output_arc(up);
  }
  const auto join = san::Join("j", {san::Leaf(a), san::Leaf(b)}, {});
  const auto flat = san::flatten(join);
  const auto space = ctmc::build_state_space(flat);
  ASSERT_EQ(space.chain.num_states, 4u);
  const auto reward = space.state_rewards(san::replica_total(flat, "up"));
  const auto lump = ctmc::lump_by_reward(space.chain, reward);
  EXPECT_EQ(lump.num_blocks, 4u);  // no symmetry to exploit
}

TEST(Lumping, IdentityPartitionIsFixedPoint) {
  const auto flat = san::flatten(flipflop(1.0, 3.0));
  const auto space = ctmc::build_state_space(flat);
  std::vector<std::uint32_t> identity(space.chain.num_states);
  for (std::uint32_t s = 0; s < space.chain.num_states; ++s)
    identity[s] = s;
  const auto lump = ctmc::lump_ordinary(space.chain, identity);
  EXPECT_EQ(lump.num_blocks, space.chain.num_states);
}

TEST(Lumping, ValidatesInput) {
  const auto flat = san::flatten(flipflop(1.0, 1.0));
  const auto space = ctmc::build_state_space(flat);
  EXPECT_THROW(ctmc::lump_ordinary(space.chain, {0u}),
               util::PreconditionError);
}

TEST(Lumping, FullAhsModelExhibitsReplicaSymmetry) {
  // The automated refinement must find at least the vehicle-exchange
  // symmetry in the exact full-SAN chain (n = 1, two failure modes), and
  // the quotient's unsafety curve must match the full chain's exactly —
  // the formal justification for src/ahs/lumped.*.
  ahs::Parameters p;
  p.max_per_platoon = 1;
  p.base_failure_rate = 1e-3;
  p.failure_mode_enabled = {false, false, true, false, false, true};
  const auto flat = ahs::build_system_model(p);
  const auto ko_off = flat.place_offset(flat.place_index("KO_total"));

  ctmc::StateSpaceOptions opts;
  opts.ignore_places = {"ext_id", "safe_exits", "ko_exits"};
  opts.absorbing = [ko_off](std::span<const std::int32_t> m) {
    return m[ko_off] > 0;
  };
  const auto space = ctmc::build_state_space(flat, opts);

  const auto reward = space.state_rewards(
      [ko_off](std::span<const std::int32_t> m) {
        return m[ko_off] > 0 ? 1.0 : 0.0;
      });
  const auto lump = ctmc::lump_by_reward(space.chain, reward);
  EXPECT_LT(lump.num_blocks, space.chain.num_states)
      << "replica exchange symmetry must collapse at least some states";

  const std::vector<double> times = {2.0, 6.0};
  const auto full = ctmc::solve_transient(space.chain, reward, times);
  std::vector<double> qreward(lump.num_blocks, 0.0);
  for (std::uint32_t s = 0; s < space.chain.num_states; ++s)
    qreward[lump.block_of[s]] = reward[s];
  const auto quot = ctmc::solve_transient(lump.quotient, qreward, times);
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_NEAR(quot.expected_reward[i] / full.expected_reward[i], 1.0,
                1e-6);
}

}  // namespace
