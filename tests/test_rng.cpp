// Unit tests: RNG quality basics, stream independence, reproducibility.
#include <gtest/gtest.h>

#include <set>

#include "util/error.h"
#include "util/rng.h"

namespace {

TEST(Rng, ReproducibleFromSeed) {
  util::Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, Uniform01InRange) {
  util::Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01OpenLeftNeverZero) {
  util::Rng rng(7);
  for (int i = 0; i < 100000; ++i) EXPECT_GT(rng.uniform01_open_left(), 0.0);
}

TEST(Rng, Uniform01MeanAndVariance) {
  util::Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, BelowIsUnbiased) {
  util::Rng rng(13);
  const std::uint64_t bound = 7;
  std::vector<int> counts(bound, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(bound)];
  for (std::uint64_t k = 0; k < bound; ++k)
    EXPECT_NEAR(counts[k], n / static_cast<double>(bound), 400.0);
}

TEST(Rng, BelowRejectsZeroBound) {
  util::Rng rng(1);
  EXPECT_THROW(rng.below(0), util::PreconditionError);
}

TEST(Rng, ExponentialMean) {
  util::Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  util::Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), util::PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), util::PreconditionError);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  util::Rng parent(99);
  util::Rng c1 = parent.split(1);
  util::Rng c2 = parent.split(2);
  util::Rng c1_again = parent.split(1);
  int equal12 = 0;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(c1(), c1_again());
    if (c2() == 0) ++equal12;  // consume c2 too
  }
  util::Rng d1 = parent.split(1);
  util::Rng d2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (d1() == d2()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, BernoulliEdgeCases) {
  util::Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequency) {
  util::Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, LongJumpDecorrelates) {
  util::Rng a(42);
  util::Rng b(42);
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformBoundsChecked) {
  util::Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), util::PreconditionError);
  const double v = rng.uniform(3.0, 3.0);
  EXPECT_DOUBLE_EQ(v, 3.0);
}

}  // namespace
