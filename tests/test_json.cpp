// util/json parser tests: the read side of the telemetry/trace/tap
// documents.  Strictness matters for the tap-atomicity guarantee — a torn
// document must *throw*, never parse to something plausible.
#include <gtest/gtest.h>

#include <string>

#include "util/error.h"
#include "util/json.h"

namespace {

using util::JsonValue;
using util::parse_json;

TEST(Json, ParsesScalarsAndContainers) {
  const JsonValue doc = parse_json(
      "{\"s\": \"hi\", \"n\": -2.5e1, \"t\": true, \"f\": false, "
      "\"z\": null, \"a\": [1, 2, 3], \"o\": {\"k\": 7}}");
  EXPECT_EQ(doc.string_at("s"), "hi");
  EXPECT_DOUBLE_EQ(doc.number_at("n"), -25.0);
  EXPECT_TRUE(doc.find("t")->as_bool());
  EXPECT_FALSE(doc.find("f")->as_bool(true));
  EXPECT_TRUE(doc.find("z")->is_null());
  ASSERT_EQ(doc.find("a")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("a")->array[2].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.find("o")->number_at("k"), 7.0);
}

TEST(Json, PreservesObjectInsertionOrder) {
  const JsonValue doc = parse_json("{\"b\": 1, \"a\": 2}");
  ASSERT_EQ(doc.object.size(), 2u);
  EXPECT_EQ(doc.object[0].first, "b");
  EXPECT_EQ(doc.object[1].first, "a");
}

TEST(Json, DecodesStringEscapes) {
  const JsonValue doc =
      parse_json("{\"k\": \"a\\\"b\\\\c\\n\\t\\u0041\"}");
  EXPECT_EQ(doc.string_at("k"), "a\"b\\c\n\tA");
}

TEST(Json, MissingKeysFallBack) {
  const JsonValue doc = parse_json("{\"x\": 1}");
  EXPECT_EQ(doc.find("y"), nullptr);
  EXPECT_DOUBLE_EQ(doc.number_at("y", -1.0), -1.0);
  EXPECT_EQ(doc.string_at("y", "dflt"), "dflt");
  // Lookup on a non-object is null, not a crash.
  EXPECT_EQ(doc.find("x")->find("z"), nullptr);
}

TEST(Json, RejectsTornAndMalformedDocuments) {
  EXPECT_THROW(parse_json(""), util::PreconditionError);
  EXPECT_THROW(parse_json("{\"a\": 1"), util::PreconditionError);  // truncated
  EXPECT_THROW(parse_json("{\"a\": 1} x"), util::PreconditionError);  // garbage
  EXPECT_THROW(parse_json("{'a': 1}"), util::PreconditionError);
  EXPECT_THROW(parse_json("{\"a\": 1.2.3}"), util::PreconditionError);
  EXPECT_THROW(parse_json("[1, 2,]"), util::PreconditionError);
  EXPECT_THROW(parse_json("nul"), util::PreconditionError);
}

}  // namespace
