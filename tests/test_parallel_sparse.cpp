// Parallel CSR products: transposed() correctness and the bitwise
// determinism contract — the pooled overloads must reproduce the
// sequential result exactly, for any worker count, because uniformization
// runs thousands of these products per solve.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "ctmc/sparse.h"
#include "util/thread_pool.h"

namespace {

using ctmc::CsrMatrix;
using ctmc::Triplet;

CsrMatrix random_matrix(std::uint32_t rows, std::uint32_t cols,
                        double density, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> value(-2.0, 2.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<Triplet> triplets;
  for (std::uint32_t r = 0; r < rows; ++r)
    for (std::uint32_t c = 0; c < cols; ++c)
      if (coin(rng) < density) triplets.push_back({r, c, value(rng)});
  return CsrMatrix::from_triplets(rows, cols, std::move(triplets));
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  std::vector<double> x(n);
  for (double& v : x) v = value(rng);
  return x;
}

TEST(ParallelSparse, TransposeRoundTrip) {
  const CsrMatrix a = random_matrix(40, 23, 0.2, 1);
  const CsrMatrix att = a.transposed().transposed();
  const std::vector<double> x = random_vector(40, 2);
  std::vector<double> y1(23), y2(23);
  a.left_multiply(x, y1);
  att.left_multiply(x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(ParallelSparse, TransposedRightEqualsLeftBitwise) {
  // The uniformization stepper computes x·A as gather over Aᵀ; the counting
  // sort in transposed() keeps each output's summands in original row
  // order, so the result is bit-identical to the sequential scatter.
  const CsrMatrix a = random_matrix(60, 60, 0.15, 3);
  const CsrMatrix at = a.transposed();
  const std::vector<double> x = random_vector(60, 4);
  std::vector<double> scatter(60), gather(60);
  a.left_multiply(x, scatter);
  at.right_multiply(x, gather);
  for (std::size_t i = 0; i < scatter.size(); ++i)
    EXPECT_EQ(scatter[i], gather[i]);
}

TEST(ParallelSparse, PooledRightMultiplyBitwiseForAnyWorkerCount) {
  const CsrMatrix at = random_matrix(80, 80, 0.1, 5).transposed();
  const std::vector<double> x = random_vector(80, 6);
  std::vector<double> seq(80);
  at.right_multiply(x, seq);
  for (unsigned workers : {1u, 2u, 3u, 8u}) {
    util::ThreadPool pool(workers);
    std::vector<double> par(80);
    at.right_multiply(x, par, pool);
    for (std::size_t i = 0; i < seq.size(); ++i)
      EXPECT_EQ(seq[i], par[i]) << "workers=" << workers << " i=" << i;
  }
}

TEST(ParallelSparse, PooledLeftMultiplyMatchesSequential) {
  const CsrMatrix a = random_matrix(70, 50, 0.12, 7);
  const std::vector<double> x = random_vector(70, 8);
  std::vector<double> seq(50);
  a.left_multiply(x, seq);
  for (unsigned workers : {1u, 4u}) {
    util::ThreadPool pool(workers);
    std::vector<double> par(50);
    a.left_multiply(x, par, pool);
    // Block-partial reduction reassociates sums; near-equality only.
    for (std::size_t i = 0; i < seq.size(); ++i)
      EXPECT_NEAR(seq[i], par[i], 1e-12) << "workers=" << workers;
  }
}

}  // namespace
