// Unit tests for the incremental engine's data structures: the indexed
// binary event heap (against a naive linear-scan reference) and the
// fixed-shape pairwise sum tree (bitwise rebuild/set equivalence and
// prefix-sum selection against a linear scan).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "sim/event_heap.h"
#include "sim/sum_tree.h"
#include "util/rng.h"

namespace {

/// Linear-scan model of the heap: NaN = absent, minimum by (time, index).
struct NaiveSchedule {
  std::vector<double> t;
  explicit NaiveSchedule(std::size_t n)
      : t(n, std::numeric_limits<double>::quiet_NaN()) {}
  std::pair<std::size_t, double> top() const {
    double best = std::numeric_limits<double>::infinity();
    std::size_t ai = SIZE_MAX;
    for (std::size_t i = 0; i < t.size(); ++i)
      if (!std::isnan(t[i]) && t[i] < best) {
        best = t[i];
        ai = i;
      }
    return {ai, best};
  }
};

TEST(EventHeap, MatchesNaiveScheduleUnderRandomChurn) {
  const std::size_t n = 24;
  sim::EventHeap heap(n);
  NaiveSchedule naive(n);
  util::Rng rng(123);

  for (int iter = 0; iter < 5000; ++iter) {
    const std::size_t ai = rng.below(n);
    switch (rng.below(3)) {
      case 0: {  // schedule or reschedule
        const double t = rng.uniform(0.0, 100.0);
        heap.push_or_update(ai, t);
        naive.t[ai] = t;
        break;
      }
      case 1:  // cancel
        heap.erase(ai);
        naive.t[ai] = std::numeric_limits<double>::quiet_NaN();
        break;
      case 2: {  // pop the minimum (if any)
        const auto [want_ai, want_t] = naive.top();
        if (want_ai == SIZE_MAX) {
          EXPECT_TRUE(heap.empty());
        } else {
          ASSERT_FALSE(heap.empty());
          const auto [got_ai, got_t] = heap.top();
          EXPECT_EQ(got_ai, want_ai);
          EXPECT_EQ(got_t, want_t);
          heap.erase(got_ai);
          naive.t[want_ai] = std::numeric_limits<double>::quiet_NaN();
        }
        break;
      }
    }
    // Invariants after every operation.
    std::size_t present = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(heap.contains(i), !std::isnan(naive.t[i]));
      if (!std::isnan(naive.t[i])) {
        ++present;
        EXPECT_EQ(heap.time_of(i), naive.t[i]);
      }
    }
    EXPECT_EQ(heap.size(), present);
  }
}

TEST(EventHeap, TiesResolveToLowestIndex) {
  sim::EventHeap heap(8);
  // Insert in descending index order so the tie-break must do real work.
  for (std::size_t ai : {7u, 5u, 3u, 2u, 6u}) heap.push_or_update(ai, 1.5);
  heap.push_or_update(4, 2.0);
  EXPECT_EQ(heap.top().first, 2u);
  heap.erase(2);
  EXPECT_EQ(heap.top().first, 3u);
  heap.erase(3);
  EXPECT_EQ(heap.top().first, 5u);
}

TEST(EventHeap, ClearEmptiesAndForgetsPositions) {
  sim::EventHeap heap(4);
  heap.push_or_update(1, 3.0);
  heap.push_or_update(2, 1.0);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.contains(1));
  heap.push_or_update(3, 7.0);
  EXPECT_EQ(heap.top().first, 3u);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(SumTree, TotalAndGetTrackSets) {
  sim::SumTree tree(5);
  EXPECT_EQ(tree.total(), 0.0);
  tree.set(0, 1.5);
  tree.set(3, 2.5);
  EXPECT_EQ(tree.get(0), 1.5);
  EXPECT_EQ(tree.get(3), 2.5);
  EXPECT_EQ(tree.total(), 4.0);
  tree.set(0, 0.0);
  EXPECT_EQ(tree.total(), 2.5);
  tree.clear();
  EXPECT_EQ(tree.total(), 0.0);
}

TEST(SumTree, RebuildIsBitwiseIdenticalToIncrementalSets) {
  // The property the cross-engine trajectory identity rests on: writing
  // every leaf via set() in ANY order produces exactly the tree that
  // rebuild() produces, so totals and descents cannot diverge between the
  // incremental and full-rescan engines.
  util::Rng rng(77);
  for (std::size_t n : {1u, 2u, 7u, 16u, 33u}) {
    std::vector<double> values(n);
    for (auto& v : values) v = rng.uniform01() * 10.0;

    sim::SumTree incremental(n);
    // Write leaves in a scrambled order, with stale intermediate values.
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = rng.below(n);
      incremental.set(i, rng.uniform01());
    }
    // ... then write every leaf's final value in reverse order (any
    // complete order must land on the same tree).
    for (std::size_t k = n; k-- > 0;) incremental.set(k, values[k]);

    sim::SumTree rebuilt(n);
    rebuilt.rebuild(values);

    ASSERT_EQ(incremental.total(), rebuilt.total());  // bitwise
    for (int trial = 0; trial < 200; ++trial) {
      const double u = rng.uniform01() * rebuilt.total();
      EXPECT_EQ(incremental.find_prefix(u), rebuilt.find_prefix(u));
    }
  }
}

TEST(SumTree, FindPrefixMatchesLinearScanOnExactWeights) {
  // Small-integer weights are exact in binary floating point, so the tree's
  // partial sums equal the linear scan's and the selected index must match.
  const std::vector<double> w = {2.0, 0.0, 1.0, 5.0, 0.0, 4.0};
  sim::SumTree tree(w.size());
  tree.rebuild(w);
  ASSERT_EQ(tree.total(), 12.0);
  for (double u = 0.0; u < 12.0; u += 0.25) {
    double acc = 0.0;
    std::size_t want = w.size() - 1;
    for (std::size_t i = 0; i < w.size(); ++i) {
      acc += w[i];
      if (u < acc) {
        want = i;
        break;
      }
    }
    EXPECT_EQ(tree.find_prefix(u), want) << "u=" << u;
  }
}

TEST(SumTree, FindPrefixNeverReturnsZeroLeaf) {
  const std::vector<double> w = {0.0, 3.0, 0.0, 0.0, 2.0, 0.0};
  sim::SumTree tree(w.size());
  tree.rebuild(w);
  util::Rng rng(9);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t i = tree.find_prefix(rng.uniform01() * tree.total());
    EXPECT_GT(w[i], 0.0);
  }
  // The boundary u == total() (reachable only through rounding) must also
  // land on a positive leaf.
  EXPECT_GT(w[tree.find_prefix(tree.total())], 0.0);
}

}  // namespace
