// Multi-platoon extension tests: lane helpers, lumped scaling, and full-SAN
// behaviour with 1, 3, and 4 lanes.
#include <gtest/gtest.h>

#include "ahs/lumped.h"
#include "ahs/model_common.h"
#include "ahs/system_model.h"
#include "sim/executor.h"

namespace {

using namespace ahs;

TEST(LaneHelpers, FindSizeAppendRemove) {
  // Build a scratch model exposing a 2-lane platoons place.
  auto m = std::make_shared<san::AtomicModel>("scratch");
  const auto platoons = m->extended_place("platoons", 6);
  const auto flat = san::flatten(m);
  auto marking = flat.initial_marking();
  san::InstanceMap imap;
  imap.offset = {0};
  imap.size = {6};
  const san::MarkingRef ref(marking, &imap);
  const LaneRef lane0{platoons, 0, 3};
  const LaneRef lane1{platoons, 1, 3};

  EXPECT_EQ(lane_size(ref, lane0), 0);
  lane_append(ref, lane0, 7);
  lane_append(ref, lane0, 8);
  lane_append(ref, lane1, 9);
  EXPECT_EQ(lane_size(ref, lane0), 2);
  EXPECT_EQ(lane_size(ref, lane1), 1);
  EXPECT_EQ(lane_find(ref, lane0, 8), 1);
  EXPECT_EQ(lane_find(ref, lane1, 8), -1);
  // Removal compacts.
  lane_remove(ref, lane0, 7);
  EXPECT_EQ(lane0.get(ref, 0), 8);
  EXPECT_EQ(lane0.get(ref, 1), 0);
  // Removing an absent id is a no-op.
  lane_remove(ref, lane0, 42);
  EXPECT_EQ(lane_size(ref, lane0), 1);
  // Full lane throws.
  lane_append(ref, lane0, 1);
  lane_append(ref, lane0, 2);
  EXPECT_THROW(lane_append(ref, lane0, 3), util::ModelError);
  // Vehicle-lane lookup and escort lanes.
  EXPECT_EQ(find_vehicle_lane(ref, platoons, 2, 3, 9), 1);
  EXPECT_EQ(find_vehicle_lane(ref, platoons, 2, 3, 42), -1);
  EXPECT_EQ(escort_lane(ref, platoons, 2, 3, 0), 1);
  EXPECT_EQ(escort_lane(ref, platoons, 2, 3, 1), 0);
}

TEST(LaneHelpers, EscortPrefersLeftAndSkipsEmpty) {
  auto m = std::make_shared<san::AtomicModel>("scratch");
  const auto platoons = m->extended_place("platoons", 9);  // 3 lanes x 3
  const auto flat = san::flatten(m);
  auto marking = flat.initial_marking();
  san::InstanceMap imap;
  imap.offset = {0};
  imap.size = {9};
  const san::MarkingRef ref(marking, &imap);
  lane_append(ref, LaneRef{platoons, 0, 3}, 1);
  lane_append(ref, LaneRef{platoons, 2, 3}, 2);
  // Middle lane: both neighbours non-empty; left preferred.
  EXPECT_EQ(escort_lane(ref, platoons, 3, 3, 1), 0);
  // Lane 0's only neighbour is lane 1, which is empty -> none.
  EXPECT_EQ(escort_lane(ref, platoons, 3, 3, 0), -1);
  // Lane 2's neighbour lane 1 empty -> none.
  EXPECT_EQ(escort_lane(ref, platoons, 3, 3, 2), -1);
}

TEST(MultiPlatoon, ParametersValidateLaneCount) {
  Parameters p;
  p.num_platoons = 0;
  EXPECT_THROW(p.validate(), util::PreconditionError);
  p.num_platoons = Parameters::kMaxPlatoons + 1;
  EXPECT_THROW(p.validate(), util::PreconditionError);
  p.num_platoons = 3;
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.capacity(), 3 * p.max_per_platoon);
}

TEST(MultiPlatoon, LumpedUnsafetyGrowsWithLanes) {
  double prev = 0.0;
  for (int lanes : {1, 2, 3}) {
    Parameters p;
    p.num_platoons = lanes;
    p.max_per_platoon = 3;
    p.base_failure_rate = 1e-4;
    LumpedModel m(p);
    const double s = m.unsafety({6.0})[0];
    EXPECT_GT(s, prev) << lanes << " lanes";
    prev = s;
  }
}

TEST(MultiPlatoon, SingleLaneHasNoEscort) {
  // With one lane TIE-E can never find a neighbouring platoon, so the
  // lumped model must treat its success probability as zero; disabling
  // FM4 (the TIE-E trigger) must then change nothing at first order in a
  // two-failure-dominated measure... but the lumped chain itself must at
  // least build and produce a valid probability.
  Parameters p;
  p.num_platoons = 1;
  p.max_per_platoon = 4;
  p.base_failure_rate = 1e-3;
  LumpedModel m(p);
  const double s = m.unsafety({6.0})[0];
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(MultiPlatoon, FullSanThreeLanesSimulates) {
  Parameters p;
  p.num_platoons = 3;
  p.max_per_platoon = 2;
  p.base_failure_rate = 1e-2;
  const auto flat = build_system_model(p);
  EXPECT_NO_THROW(flat.validate());
  sim::Executor exec(flat, util::Rng(5));
  // Initial configuration fills every lane.
  const auto pi = flat.place_index("platoons");
  const auto off = flat.place_offset(pi);
  for (std::uint32_t i = 0; i < 6; ++i)
    EXPECT_GT(exec.marking()[off + i], 0) << "slot " << i;
  exec.run_until(50.0);
  EXPECT_GT(exec.events(), 100u);
}

TEST(MultiPlatoon, FourLanesBuildAndRun) {
  Parameters p;
  p.num_platoons = 4;
  p.max_per_platoon = 1;
  p.base_failure_rate = 1e-2;
  const auto flat = build_system_model(p);
  sim::Executor exec(flat, util::Rng(9));
  exec.run_until(20.0);
  EXPECT_GT(exec.events(), 10u);
}

}  // namespace
