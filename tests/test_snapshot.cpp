// Crash-safe persistence primitives (util/snapshot): atomic replacement,
// advisory locking, the versioned snapshot envelope's reject-don't-merge
// contract, bitwise double tokens, and the bench_timings.json merge that
// motivated the layer (bench_common.h).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "util/snapshot.h"
#include "util/stats.h"

namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test, removed on teardown.
class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ahs_snapshot_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(SnapshotTest, AtomicWriteCreatesAndReplaces) {
  const std::string p = path("f.txt");
  util::atomic_write_file(p, "first");
  std::string got;
  ASSERT_TRUE(util::read_file(p, &got));
  EXPECT_EQ(got, "first");
  util::atomic_write_file(p, "second, longer than the first content");
  ASSERT_TRUE(util::read_file(p, &got));
  EXPECT_EQ(got, "second, longer than the first content");
  // No temp litter left behind.
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(SnapshotTest, ReadFileMissingReturnsFalse) {
  std::string got = "sentinel";
  EXPECT_FALSE(util::read_file(path("nope"), &got));
}

TEST_F(SnapshotTest, ConcurrentReadersNeverSeeTorn) {
  // A writer flips the file between two 64 KiB contents while readers poll;
  // every observed read must be one complete version, never a mix or a
  // truncation.  This is the property the old bench-timings merge violated.
  const std::string p = path("flip.txt");
  const std::string a(64 * 1024, 'a');
  const std::string b(64 * 1024, 'b');
  util::atomic_write_file(p, a);

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    for (int i = 0; i < 200; ++i)
      util::atomic_write_file(p, (i % 2) ? a : b);
    done.store(true);
  });
  std::thread reader([&] {
    std::string got;
    while (!done.load()) {
      if (!util::read_file(p, &got)) continue;
      if (got != a && got != b) torn.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST_F(SnapshotTest, FileLockSerializesReadModifyWrite) {
  // Counter-in-a-file incremented by racing threads; without the lock the
  // read-modify-write cycles interleave and increments are lost.
  const std::string p = path("counter");
  util::atomic_write_file(p, "0");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        util::FileLock lock(p + ".lock");
        std::string cur;
        if (!util::read_file(p, &cur)) return;  // surfaces in the final count
        util::atomic_write_file(p, std::to_string(std::stoi(cur) + 1));
      }
    });
  for (auto& w : workers) w.join();
  std::string final_value;
  ASSERT_TRUE(util::read_file(p, &final_value));
  EXPECT_EQ(final_value, std::to_string(kThreads * kIncrements));
}

TEST_F(SnapshotTest, SnapshotRoundTrip) {
  const util::SnapshotHeader h{"transient", 0xdeadbeefu, 42, 0x1234u};
  const std::string payload = "17 42\n" + util::encode_double(0.5) + "\n";
  util::write_snapshot(path("s"), h, payload);
  std::string got;
  ASSERT_TRUE(util::read_snapshot(path("s"), h, &got));
  EXPECT_EQ(got, payload);
}

TEST_F(SnapshotTest, SnapshotMissingReturnsFalse) {
  std::string got;
  EXPECT_FALSE(util::read_snapshot(path("absent"), {"transient", 1, 2, 3},
                                   &got));
}

TEST_F(SnapshotTest, SnapshotRejectsEveryIdentityMismatch) {
  // The reject-don't-merge contract: a checkpoint resumed into a run whose
  // kind, model fingerprint, seed, or options differ must throw, in every
  // single-field case.
  const util::SnapshotHeader h{"transient", 10, 20, 30};
  util::write_snapshot(path("s"), h, "payload\n");
  std::string got;
  EXPECT_THROW(
      util::read_snapshot(path("s"), {"sweep-point", 10, 20, 30}, &got),
      util::SnapshotError);
  EXPECT_THROW(util::read_snapshot(path("s"), {"transient", 11, 20, 30}, &got),
               util::SnapshotError);
  EXPECT_THROW(util::read_snapshot(path("s"), {"transient", 10, 21, 30}, &got),
               util::SnapshotError);
  EXPECT_THROW(util::read_snapshot(path("s"), {"transient", 10, 20, 31}, &got),
               util::SnapshotError);
  // And the exact identity still reads fine afterwards.
  EXPECT_TRUE(util::read_snapshot(path("s"), h, &got));
}

TEST_F(SnapshotTest, SnapshotRejectsCorruptAndUnknownVersion) {
  std::string got;
  util::atomic_write_file(path("garbage"), "not a snapshot at all\n");
  EXPECT_THROW(
      util::read_snapshot(path("garbage"), {"transient", 0, 0, 0}, &got),
      util::SnapshotError);
  util::atomic_write_file(path("future"),
                          "ahs.snapshot.v999 transient\n"
                          "fingerprint 0 seed 0 options 0\n");
  EXPECT_THROW(
      util::read_snapshot(path("future"), {"transient", 0, 0, 0}, &got),
      util::SnapshotError);
  // Header line present but truncated before the payload identity.
  util::atomic_write_file(path("trunc"), "ahs.snapshot.v1 transient\n");
  EXPECT_THROW(
      util::read_snapshot(path("trunc"), {"transient", 0, 0, 0}, &got),
      util::SnapshotError);
}

TEST(SnapshotTokens, DoubleRoundTripIsBitwise) {
  const double denormal = std::numeric_limits<double>::denorm_min();
  const std::vector<double> values = {
      0.0,
      -0.0,
      1.0,
      1.0 / 3.0,
      -2.5e-300,
      denormal,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
  };
  for (const double v : values) {
    const double back = util::decode_double(util::encode_double(v));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(v))
        << "value " << v;
  }
}

TEST(SnapshotTokens, TokenReaderThrowsOnTruncation) {
  util::TokenReader reader("7 " + util::encode_double(1.5));
  EXPECT_EQ(reader.next_u64(), 7u);
  EXPECT_EQ(reader.next_f64(), 1.5);
  EXPECT_TRUE(reader.done());
  EXPECT_THROW(reader.next_u64(), util::SnapshotError);
  util::TokenReader bad("zzz");
  EXPECT_THROW(bad.next_u64(), util::SnapshotError);
}

TEST(SnapshotTokens, HashMixIsOrderAndValueSensitive) {
  const std::uint64_t a = util::hash_mix(util::hash_mix(0, 1.0), 2.0);
  const std::uint64_t b = util::hash_mix(util::hash_mix(0, 2.0), 1.0);
  EXPECT_NE(a, b);
  EXPECT_NE(util::hash_mix(0, std::string("incremental")),
            util::hash_mix(0, std::string("full_rescan")));
  // 0.0 and -0.0 have different bit patterns and must hash apart — option
  // hashes are bitwise identities, not numeric ones.
  EXPECT_NE(util::hash_mix(0, 0.0), util::hash_mix(0, -0.0));
}

TEST(SnapshotTokens, RunningStatStateRoundTripsBitwise) {
  util::RunningStat stat;
  for (int i = 0; i < 1000; ++i) stat.push(std::sin(0.1 * i) * 1e-3);
  const util::RunningStat::State saved = stat.save();
  util::RunningStat restored;
  restored.restore(saved);
  const util::RunningStat::State again = restored.save();
  EXPECT_EQ(again.n, saved.n);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(again.mean),
            std::bit_cast<std::uint64_t>(saved.mean));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(again.m2),
            std::bit_cast<std::uint64_t>(saved.m2));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(again.min),
            std::bit_cast<std::uint64_t>(saved.min));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(again.max),
            std::bit_cast<std::uint64_t>(saved.max));
  // A restored accumulator keeps accumulating identically.
  util::RunningStat fresh = stat;
  restored.push(0.25);
  fresh.push(0.25);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(restored.save().m2),
            std::bit_cast<std::uint64_t>(fresh.save().m2));
}

TEST_F(SnapshotTest, BenchTimingsSurviveConcurrentMerges) {
  // The satellite bugfix: merge_timing_record is a read-modify-write on
  // results/bench_timings.json shared by every bench binary.  Racing merges
  // must lose no record and the file must parse as one complete document.
  const fs::path old_cwd = fs::current_path();
  fs::current_path(dir_);
  constexpr int kBenches = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kBenches; ++t)
    workers.emplace_back([t] {
      const std::string name = "bench_t" + std::to_string(t);
      for (int i = 0; i < 10; ++i)
        bench::merge_timing_record(
            name, "{\"bench\": \"" + name + "\", \"iteration\": " +
                      std::to_string(i) + "}");
    });
  for (auto& w : workers) w.join();
  fs::current_path(old_cwd);

  std::string doc;
  ASSERT_TRUE(
      util::read_file((dir_ / "results/bench_timings.json").string(), &doc));
  EXPECT_EQ(doc.rfind("{\"benches\": [", 0), 0u);
  EXPECT_NE(doc.find("]}"), std::string::npos);
  for (int t = 0; t < kBenches; ++t) {
    const std::string tag =
        "{\"bench\": \"bench_t" + std::to_string(t) + "\"";
    // Exactly one record per bench: the final merge of each replaced the
    // earlier iterations.
    const auto first = doc.find(tag);
    ASSERT_NE(first, std::string::npos) << tag;
    EXPECT_EQ(doc.find(tag, first + 1), std::string::npos) << tag;
  }
}

}  // namespace
