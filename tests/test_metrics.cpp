// MetricsRegistry tests: exactness of concurrent counter/histogram
// accumulation across per-thread shards, gauge semantics, detached handles,
// and snapshot determinism.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/metrics.h"

namespace {

TEST(Metrics, CounterAccumulates) {
  util::MetricsRegistry reg;
  util::Counter c = reg.counter("a.b.c");
  c.inc();
  c.add(41);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.count("a.b.c"), 1u);
  EXPECT_EQ(snap.counters.at("a.b.c"), 42u);
}

TEST(Metrics, ReregistrationSharesTheInstrument) {
  util::MetricsRegistry reg;
  util::Counter a = reg.counter("shared");
  util::Counter b = reg.counter("shared");
  a.add(10);
  b.add(5);
  EXPECT_EQ(reg.snapshot().counters.at("shared"), 15u);
}

TEST(Metrics, ConcurrentCounterSumsExact) {
  util::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Each thread resolves its own handle — same name, same instrument,
      // its own shard cell.
      util::Counter c = reg.counter("hammered");
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.snapshot().counters.at("hammered"),
            kThreads * kPerThread);
}

TEST(Metrics, ConcurrentHistogramCountsExact) {
  util::MetricsRegistry reg;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      util::HistogramHandle h = reg.histogram("h", {1, 2, 4});
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<double>((t + i) % 6));  // 0..5: two overflow
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = reg.snapshot();
  const auto& h = snap.histograms.at("h");
  ASSERT_EQ(h.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t total = 0;
  for (std::uint64_t c : h.counts) total += c;
  EXPECT_EQ(total, h.count);
  // Values cycle 0..5 uniformly: 0,1 -> bucket0; 2 -> bucket1; 3,4 ->
  // bucket2; 5 -> overflow.
  const std::uint64_t per_value = h.count / 6;
  EXPECT_EQ(h.counts[0], 2 * per_value);
  EXPECT_EQ(h.counts[1], per_value);
  EXPECT_EQ(h.counts[2], 2 * per_value);
  EXPECT_EQ(h.counts[3], per_value);
  EXPECT_DOUBLE_EQ(h.sum / static_cast<double>(h.count), 2.5);
}

TEST(Metrics, HistogramFirstRegistrationBoundsWin) {
  util::MetricsRegistry reg;
  util::HistogramHandle a = reg.histogram("bounds", {1, 2});
  util::HistogramHandle b = reg.histogram("bounds", {10, 20, 30});
  a.record(1.5);
  b.record(1.5);
  const auto snap = reg.snapshot();
  const auto& h = snap.histograms.at("bounds");
  EXPECT_EQ(h.bounds, (std::vector<double>{1, 2}));
  EXPECT_EQ(h.counts[1], 2u);
}

TEST(Metrics, GaugeLastWriteWins) {
  util::MetricsRegistry reg;
  util::Gauge g = reg.gauge("level");
  g.set(1.0);
  g.set(-3.5);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("level"), -3.5);
}

TEST(Metrics, DetachedHandlesAreNoops) {
  util::Counter c;
  util::Gauge g;
  util::HistogramHandle h;
  EXPECT_FALSE(c.attached());
  c.add(7);
  g.set(1.0);
  h.record(2.0);  // must not crash
  SUCCEED();
}

TEST(Metrics, SnapshotKeysAreSorted) {
  util::MetricsRegistry reg;
  reg.counter("z.last").inc();
  reg.counter("a.first").inc();
  reg.counter("m.middle").inc();
  const auto snap = reg.snapshot();
  std::vector<std::string> keys;
  for (const auto& [name, value] : snap.counters) keys.push_back(name);
  EXPECT_EQ(keys, (std::vector<std::string>{"a.first", "m.middle", "z.last"}));
}

TEST(Metrics, TwoRegistriesAreIndependent) {
  util::MetricsRegistry a, b;
  a.counter("x").add(1);
  b.counter("x").add(2);
  EXPECT_EQ(a.snapshot().counters.at("x"), 1u);
  EXPECT_EQ(b.snapshot().counters.at("x"), 2u);
}

TEST(Metrics, HistogramPercentilesInterpolateWithinBuckets) {
  util::MetricsRegistry reg;
  auto h = reg.histogram("t", {10, 20, 40});
  // 10 samples in [0,10), 10 in [10,20): median sits at the bucket edge.
  for (int i = 0; i < 10; ++i) h.record(5);
  for (int i = 0; i < 10; ++i) h.record(15);
  const auto data = reg.snapshot().histograms.at("t");
  EXPECT_DOUBLE_EQ(data.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(data.percentile(0.25), 5.0);   // halfway into bucket 1
  EXPECT_DOUBLE_EQ(data.percentile(0.5), 10.0);   // exactly the edge
  EXPECT_DOUBLE_EQ(data.percentile(0.75), 15.0);  // halfway into bucket 2
  EXPECT_DOUBLE_EQ(data.percentile(1.0), 20.0);
}

TEST(Metrics, HistogramPercentileEdgeCases) {
  util::MetricsRegistry reg;
  auto h = reg.histogram("e", {1, 2});
  const auto empty = reg.snapshot().histograms.at("e");
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);  // no samples: 0 by contract

  h.record(100);  // overflow bucket: clamps to the last finite bound
  const auto over = reg.snapshot().histograms.at("e");
  EXPECT_DOUBLE_EQ(over.percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(over.percentile(0.99), 2.0);

  // Out-of-range quantiles clamp instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(over.percentile(-1.0), over.percentile(0.0));
  EXPECT_DOUBLE_EQ(over.percentile(2.0), over.percentile(1.0));
}

TEST(Metrics, GlobalAttachDetach) {
  EXPECT_EQ(util::MetricsRegistry::global(), nullptr);
  {
    util::MetricsRegistry reg;
    util::MetricsRegistry::set_global(&reg);
    EXPECT_EQ(util::MetricsRegistry::global(), &reg);
    util::MetricsRegistry::set_global(nullptr);
  }
  EXPECT_EQ(util::MetricsRegistry::global(), nullptr);
}

}  // namespace
