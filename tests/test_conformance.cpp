// Randomized conformance suite: generate small random all-exponential SANs
// and check that the discrete-event simulator and the state-space +
// uniformization pipeline agree on transient occupancy probabilities.
// This exercises the whole stack — builder, flattener, enabling semantics,
// case selection, vanishing-marking elimination, uniformization — against
// itself; any divergence in firing semantics between the two engines shows
// up as a statistically significant disagreement.
#include <gtest/gtest.h>

#include <memory>

#include "ctmc/state_space.h"
#include "ctmc/uniformization.h"
#include "san/composition.h"
#include "san/rewards.h"
#include "sim/transient.h"
#include "util/rng.h"

namespace {

/// Builds a random SAN: `places` places with small initial markings and
/// `acts` timed activities, each moving tokens between random places with
/// random rates; token counts are capped by enabling gates so the state
/// space stays small.  Occasionally adds an instantaneous activity with a
/// probabilistic split to exercise vanishing-marking elimination.
std::shared_ptr<san::AtomicModel> random_model(util::Rng& rng, int places,
                                               int acts) {
  auto m = std::make_shared<san::AtomicModel>("rand");
  std::vector<san::PlaceToken> p;
  for (int i = 0; i < places; ++i)
    p.push_back(m->place("p" + std::to_string(i),
                         static_cast<std::int32_t>(rng.below(2))));

  for (int i = 0; i < acts; ++i) {
    const auto src = p[rng.below(p.size())];
    const auto dst = p[rng.below(p.size())];
    const double rate = 0.5 + 4.0 * rng.uniform01();
    auto act = m->timed_activity("t" + std::to_string(i))
                   .distribution(util::Distribution::Exponential(rate));
    act.input_arc(src);
    // Cap the destination so the chain is finite.
    act.input_gate([dst](const san::MarkingRef& r) {
      return r.get(dst) < 3;
    });
    if (rng.bernoulli(0.3)) {
      // Two-case split between two destinations.
      const auto dst2 = p[rng.below(p.size())];
      const double w = 0.2 + 0.6 * rng.uniform01();
      act.add_case(w);
      act.add_case(1.0 - w);
      act.output_arc(dst, 1, 0);
      act.output_gate(
          [dst2](const san::MarkingRef& r) {
            if (r.get(dst2) < 3) r.add(dst2, 1);
          },
          1);
    } else {
      act.output_arc(dst);
    }
  }

  // One instantaneous overflow drain with a probabilistic split keeps
  // vanishing markings in play: whenever p0 exceeds 2 it spills into p1
  // or p2 (if they fit) with probability ½ each.
  if (places >= 3) {
    auto inst = m->instant_activity("spill").priority(1).input_gate(
        [p](const san::MarkingRef& r) { return r.get(p[0]) > 2; });
    inst.add_case(1.0);
    inst.add_case(1.0);
    inst.output_gate(
        [p](const san::MarkingRef& r) {
          r.add(p[0], -1);
          if (r.get(p[1]) < 3) r.add(p[1], 1);
        },
        0);
    inst.output_gate(
        [p](const san::MarkingRef& r) {
          r.add(p[0], -1);
          if (r.get(p[2]) < 3) r.add(p[2], 1);
        },
        1);
  }
  return m;
}

class Conformance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Conformance, SimulatorMatchesUniformization) {
  util::Rng rng(GetParam());
  const auto model = random_model(rng, 4, 5);
  const auto flat = san::flatten(model);
  ASSERT_TRUE(flat.all_exponential());

  // Reward: token count in p0 (a bounded integer reward).
  const auto reward = san::place_value(flat, "p0");

  const std::vector<double> times = {0.4, 1.5};

  ctmc::StateSpaceOptions ss_opts;
  ss_opts.max_states = 100000;
  const auto space = ctmc::build_state_space(flat, ss_opts);
  const auto exact =
      ctmc::solve_transient(space.chain, space.state_rewards(reward), times);

  sim::TransientOptions topts;
  topts.time_points = times;
  topts.min_replications = 6000;
  topts.max_replications = 6000;
  topts.absorbing_indicator = false;
  topts.seed = GetParam() * 7919 + 13;
  const auto mc = sim::estimate_transient(flat, reward, topts);

  for (std::size_t i = 0; i < times.size(); ++i) {
    const double tol =
        4.0 * mc.estimates[i].half_width + 1e-3;  // 4 sigma + slack
    EXPECT_NEAR(mc.mean(i), exact.expected_reward[i], tol)
        << "seed " << GetParam() << " t=" << times[i] << " ("
        << space.chain.num_states << " states)";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSans, Conformance,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
