// util::ThreadPool: task execution, exception propagation, parallel_for
// coverage/partitioning, and the determinism contract (chunk boundaries are
// a pure function of the range and worker count).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  util::ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  util::ThreadPool pool(3);
  std::vector<int> touched(1000, 0);
  pool.parallel_for(0, touched.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++touched[i];
  });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 1000);
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ThreadPool, ParallelForHandlesSmallAndEmptyRanges) {
  util::ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(10, 10, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  std::vector<int> touched(3, 0);
  pool.parallel_for(0, 3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++touched[i];
  });
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ThreadPool, ParallelForPropagatesChunkExceptions) {
  util::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t b, std::size_t) {
                          if (b == 0) throw std::runtime_error("chunk");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnRangeAndSize) {
  // Record the chunk list twice on pools of the same size; the partition
  // must be identical (this is what makes reductions deterministic).
  auto chunks_of = [](unsigned workers) {
    util::ThreadPool pool(workers);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(7, 1000, [&](std::size_t b, std::size_t e) {
      const std::lock_guard<std::mutex> lock(mu);
      chunks.push_back({b, e});
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  EXPECT_EQ(chunks_of(5), chunks_of(5));
  // Contiguous cover, no overlap.
  const auto chunks = chunks_of(5);
  std::size_t expect_begin = 7;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_LT(b, e);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, 1000u);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(util::ThreadPool::hardware_threads(), 1u);
}

}  // namespace
