// Flight-recorder and telemetry-tap tests: ring wraparound and drop
// accounting, race-free concurrent producers (this file is in the
// tsan-labeled `sim` binary), the golden Chrome/Perfetto export, ScopedSpan
// begin/end emission, and tap-file atomicity under a concurrent reader.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"
#include "util/metrics.h"
#include "util/spans.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace {

using util::TraceKind;
using util::TraceRecorder;

std::uint64_t g_fake_ns = 0;
std::uint64_t fake_clock() { return g_fake_ns; }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Attaches a recorder as the process-wide default for one test.
class GlobalRecorder {
 public:
  explicit GlobalRecorder(TraceRecorder& r) { TraceRecorder::set_global(&r); }
  ~GlobalRecorder() { TraceRecorder::set_global(nullptr); }
};

TEST(Trace, DetachedHandleIsANoOp) {
  const util::TraceName name;  // default-constructed: not attached
  EXPECT_FALSE(name.attached());
  name.begin(1, 2);
  name.end();
  name.instant(3);
  name.counter(4);  // must not crash; nothing to observe
}

TEST(Trace, RecordsAndDecodesEvents) {
  TraceRecorder rec;
  const util::TraceName solve = rec.name("solve");
  const util::TraceName point = rec.name("sweep.point.cold");
  solve.begin();
  point.instant(7, 2);
  solve.end();

  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  const auto& t = snap.threads[0];
  EXPECT_EQ(t.tid, 1u);
  EXPECT_EQ(t.recorded, 3u);
  EXPECT_EQ(t.dropped, 0u);
  ASSERT_EQ(t.events.size(), 3u);
  EXPECT_EQ(snap.names[t.events[0].name], "solve");
  EXPECT_EQ(t.events[0].kind, TraceKind::kBegin);
  EXPECT_EQ(snap.names[t.events[1].name], "sweep.point.cold");
  EXPECT_EQ(t.events[1].kind, TraceKind::kInstant);
  EXPECT_EQ(t.events[1].a, 7u);
  EXPECT_EQ(t.events[1].b, 2u);
  EXPECT_EQ(t.events[2].kind, TraceKind::kEnd);
  EXPECT_LE(t.events[0].ts_ns, t.events[2].ts_ns);
}

TEST(Trace, WraparoundKeepsTheMostRecentWindowAndCountsDrops) {
  TraceRecorder rec(4);
  const util::TraceName ev = rec.name("ev");
  for (std::uint64_t i = 0; i < 10; ++i) ev.instant(i);

  // Once wrapped, the coherent window is capacity-1 (one slot is reserved
  // for the writer's in-flight overwrite): the newest 3 of 10 survive.
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  const auto& t = snap.threads[0];
  EXPECT_EQ(t.recorded, 10u);
  EXPECT_EQ(t.dropped, 7u);
  ASSERT_EQ(t.events.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(t.events[i].a, 7 + i);

  const auto sum = rec.summary();
  EXPECT_EQ(sum.threads, 1u);
  EXPECT_EQ(sum.recorded, 10u);
  EXPECT_EQ(sum.retained, 3u);
  EXPECT_EQ(sum.dropped, 7u);
  EXPECT_EQ(sum.capacity_per_thread, 4u);
}

/// Concurrent producers on a deliberately tiny ring, with a reader
/// snapshotting throughout: the tsan build asserts the emit/snapshot
/// protocol (relaxed word stores + release head publish) is race-free, and
/// the retained window must always be a contiguous, in-order suffix of what
/// each thread emitted.
TEST(Trace, ConcurrentProducersWithConcurrentSnapshots) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kEvents = 20000;
  TraceRecorder rec(512);
  std::atomic<bool> done{false};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = rec.snapshot();
      for (const auto& t : snap.threads) {
        // Window coherence: values of `a` are the per-thread emit index, so
        // the retained suffix must count up by exactly one.
        for (std::size_t i = 1; i < t.events.size(); ++i)
          ASSERT_EQ(t.events[i].a, t.events[i - 1].a + 1);
        ASSERT_EQ(t.recorded, t.dropped + t.events.size());
      }
      (void)rec.summary();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w)
    writers.emplace_back([&rec, w] {
      const util::TraceName ev = rec.name("w" + std::to_string(w));
      for (std::uint64_t i = 0; i < kEvents; ++i) ev.instant(i);
    });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const auto sum = rec.summary();
  EXPECT_EQ(sum.threads, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(sum.recorded, kThreads * kEvents);
  EXPECT_EQ(sum.retained, static_cast<std::uint64_t>(kThreads) * 511);
}

TEST(Trace, GoldenChromeExport) {
  TraceRecorder rec;
  g_fake_ns = 1000;
  rec.set_clock_for_test(&fake_clock);
  const util::TraceName solve = rec.name("solve");
  const util::TraceName point = rec.name("sweep.point.cold");
  const util::TraceName events = rec.name("executor.events");
  g_fake_ns = 2000;
  solve.begin();
  g_fake_ns = 3500;
  point.instant(7, 2);
  g_fake_ns = 4000;
  solve.end();
  g_fake_ns = 4500;
  events.counter(42);

  const std::string expected =
      "{\"schema\": \"ahs.trace.v1\",\n"
      "\"displayTimeUnit\": \"ms\",\n"
      "\"otherData\": {\"threads\": 1, \"recorded\": 4, \"retained\": 4, "
      "\"dropped\": 0, \"capacity_per_thread\": 65536},\n"
      "\"traceEvents\": [\n"
      "{\"name\": \"solve\", \"cat\": \"ahs\", \"ph\": \"B\", \"pid\": 1, "
      "\"tid\": 1, \"ts\": 1.000},\n"
      "{\"name\": \"sweep.point.cold\", \"cat\": \"ahs\", \"ph\": \"i\", "
      "\"pid\": 1, \"tid\": 1, \"ts\": 2.500, \"s\": \"t\", "
      "\"args\": {\"a\": 7, \"b\": 2}},\n"
      "{\"name\": \"solve\", \"cat\": \"ahs\", \"ph\": \"E\", \"pid\": 1, "
      "\"tid\": 1, \"ts\": 3.000},\n"
      "{\"name\": \"executor.events\", \"cat\": \"ahs\", \"ph\": \"C\", "
      "\"pid\": 1, \"tid\": 1, \"ts\": 3.500, \"args\": {\"value\": 42}}\n"
      "]}\n";
  EXPECT_EQ(rec.chrome_trace_json(), expected);

  // And the document is well-formed JSON with the advertised schema.
  const util::JsonValue doc = util::parse_json(rec.chrome_trace_json());
  EXPECT_EQ(doc.string_at("schema"), "ahs.trace.v1");
  const util::JsonValue* evs = doc.find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_EQ(evs->array.size(), 4u);
  EXPECT_EQ(evs->array[1].string_at("ph"), "i");
  EXPECT_EQ(evs->array[1].find("args")->number_at("a"), 7.0);
}

TEST(Trace, ExportSkipsUnmatchedEndEvents) {
  TraceRecorder rec;
  const util::TraceName s = rec.name("orphan");
  s.end();  // as if its begin was lost to wraparound
  s.instant();
  const std::string json = rec.chrome_trace_json();
  EXPECT_EQ(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

TEST(Trace, ScopedSpanEmitsBeginEndIntoTheAttachedRecorder) {
  TraceRecorder rec;
  const GlobalRecorder attach(rec);
  { AHS_SPAN("traced.phase"); }

  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  const auto& evs = snap.threads[0].events;
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(snap.names[evs[0].name], "traced.phase");
  EXPECT_EQ(evs[0].kind, TraceKind::kBegin);
  EXPECT_EQ(evs[1].kind, TraceKind::kEnd);
}

TEST(Trace, ReportFoldsTheRecorderSummary) {
  util::TelemetrySession session;
  TraceRecorder rec;
  const GlobalRecorder attach(rec);
  rec.name("x").instant();
  rec.name("x").instant();

  const util::TelemetryReport report = session.report();
  ASSERT_TRUE(report.has_trace);
  EXPECT_EQ(report.trace.recorded, 2u);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"trace\": {\"threads\": 1, \"recorded\": 2"),
            std::string::npos);
}

TEST(TelemetryTap, PublishesProgressAndBumpsSeq) {
  const std::string path = "test_tap_progress.json";
  util::TelemetrySession session;
  session.registry().gauge("ahs.sweep.points_total").set(4);
  session.registry().counter("ahs.sweep.points").add(1);
  session.registry()
      .histogram("ahs.sweep.point_seconds", {0, 1, 10})
      .record(0.5);
  {
    util::TelemetryTap tap(path, 3600.0);  // interval long: explicit writes
    const util::JsonValue first = util::parse_json(slurp(path));
    EXPECT_EQ(first.string_at("schema"), "ahs.telemetry.live.v1");
    EXPECT_EQ(first.number_at("seq"), 0.0);
    const util::JsonValue* prog = first.find("progress");
    ASSERT_NE(prog, nullptr);
    EXPECT_EQ(prog->number_at("points_done"), 1.0);
    EXPECT_EQ(prog->number_at("points_total"), 4.0);
    EXPECT_EQ(prog->number_at("percent"), 25.0);
    const util::JsonValue* hists = first.find("histograms");
    ASSERT_NE(hists, nullptr);
    EXPECT_NE(hists->find("ahs.sweep.point_seconds"), nullptr);

    session.registry().counter("ahs.sweep.points").add(3);
    tap.write_now();
    const util::JsonValue second = util::parse_json(slurp(path));
    EXPECT_GE(second.number_at("seq"), 1.0);
    EXPECT_EQ(second.find("progress")->number_at("points_done"), 4.0);
    // Complete: the ETA collapses to an exact zero.
    EXPECT_EQ(second.find("progress")->number_at("eta_seconds", -1.0), 0.0);
  }
  // The destructor published a terminal snapshot.
  const util::JsonValue last = util::parse_json(slurp(path));
  EXPECT_EQ(last.find("progress")->number_at("points_done"), 4.0);
  std::remove(path.c_str());
}

/// The atomicity contract: a reader polling the tap file never observes a
/// torn or partial document, because every publish is write-temp + fsync +
/// rename.  The reader parses every poll; any parse failure is a test
/// failure.
TEST(TelemetryTap, AtomicUnderAConcurrentReader) {
  const std::string path = "test_tap_atomic.json";
  util::TelemetrySession session;
  util::Counter points = session.registry().counter("ahs.sweep.points");
  util::TelemetryTap tap(path, 0.001);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::uint64_t parses = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::string text = slurp(path);
      ASSERT_FALSE(text.empty());
      const util::JsonValue doc = util::parse_json(text);  // throws if torn
      ASSERT_EQ(doc.string_at("schema"), "ahs.telemetry.live.v1");
      ++parses;
    }
    EXPECT_GT(parses, 0u);
  });
  for (int i = 0; i < 200; ++i) {
    points.inc();
    tap.write_now();
  }
  done.store(true, std::memory_order_release);
  reader.join();
  std::remove(path.c_str());
}

}  // namespace
