// Cross-engine conformance: the dependency-tracked incremental engine and
// the full-rescan reference engine must produce *identical* trajectories —
// the same activities firing the same cases at bitwise-equal times with
// bitwise-equal likelihood ratios — because per-activity RNG streams make
// randomness consumption independent of how many activities an engine
// re-examines.  Runs with check_dependencies on, so every predicate/rate
// evaluation and completion is validated against the dependency index
// (this is what certifies the AHS models' declared read/write sets).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ahs/system_model.h"
#include "san/composition.h"
#include "san/rewards.h"
#include "sim/transient.h"
#include "util/rng.h"

namespace {

struct Event {
  std::size_t ai;
  std::size_t ci;
  double t;
  double lr;
  bool operator==(const Event&) const = default;
};

std::vector<Event> run_trajectory(const san::FlatModel& flat,
                                  sim::Executor::Options opts,
                                  std::uint64_t seed, double t_end) {
  sim::Executor exec(flat, util::Rng(seed), opts);
  std::vector<Event> events;
  exec.on_fire = [&](std::size_t ai, std::size_t ci) {
    events.push_back({ai, ci, exec.time(), exec.likelihood_ratio()});
  };
  // reset() replays the initial stabilization with on_fire attached so the
  // recorded sequence starts at time zero for both engines.
  exec.reset(util::Rng(seed));
  exec.run_until(t_end);
  return events;
}

void expect_identical_trajectories(const san::FlatModel& flat,
                                   const sim::BiasPlan* bias,
                                   std::uint64_t seed, double t_end) {
  sim::Executor::Options inc;
  inc.engine = sim::Executor::Engine::kIncremental;
  inc.bias = bias;
  inc.check_dependencies = true;  // certify declared sets along the way
  sim::Executor::Options ref;
  ref.engine = sim::Executor::Engine::kFullRescan;
  ref.bias = bias;

  const auto a = run_trajectory(flat, inc, seed, t_end);
  const auto b = run_trajectory(flat, ref, seed, t_end);
  ASSERT_FALSE(a.empty()) << "trajectory exercised nothing";
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ai, b[i].ai) << "event " << i;
    EXPECT_EQ(a[i].ci, b[i].ci) << "event " << i;
    EXPECT_EQ(a[i].t, b[i].t) << "event " << i;    // bitwise
    EXPECT_EQ(a[i].lr, b[i].lr) << "event " << i;  // bitwise
    if (a[i] != b[i]) break;  // one divergence floods the rest
  }
}

/// Random all-exponential SAN with arcs, capped destinations (undeclared
/// predicates exercise the conservative fallback), probabilistic cases,
/// a marking-dependent rate, and an instantaneous drain.
std::shared_ptr<san::AtomicModel> random_model(util::Rng& rng, int places,
                                               int acts) {
  auto m = std::make_shared<san::AtomicModel>("rand");
  std::vector<san::PlaceToken> p;
  for (int i = 0; i < places; ++i)
    p.push_back(m->place("p" + std::to_string(i),
                         1 + static_cast<std::int32_t>(rng.below(2))));

  for (int i = 0; i < acts; ++i) {
    const auto src = p[rng.below(p.size())];
    const auto dst = p[rng.below(p.size())];
    auto act = m->timed_activity("t" + std::to_string(i));
    if (i == 0) {
      // One marking-dependent rate with a declared read set.  A declaration
      // must be COMPLETE (rate function AND predicates), so it lists the
      // capacity-cap place read by the input gate below too.
      act.marking_rate([src](const san::MarkingRef& r) {
            return 0.5 + r.get(src);
          })
          .reads({src, dst});
    } else {
      act.distribution(
          util::Distribution::Exponential(0.5 + 4.0 * rng.uniform01()));
    }
    act.input_arc(src);
    act.input_gate(
        [dst](const san::MarkingRef& r) { return r.get(dst) < 3; });
    if (rng.bernoulli(0.4)) {
      const double w = 0.2 + 0.6 * rng.uniform01();
      act.add_case(w);
      act.add_case(1.0 - w);
      act.output_arc(dst, 1, 0);
      act.output_arc(p[rng.below(p.size())], 1, 1);
    } else {
      act.output_arc(dst);
    }
  }

  // Instantaneous drain: two tokens collapse into one, so stabilization
  // always terminates.
  if (places >= 2) {
    m->instant_activity("drain")
        .priority(1)
        .input_arc(p[0], 2)
        .output_arc(p[1]);
  }
  return m;
}

TEST(EngineConformance, RandomSansScheduledMode) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const int places = 3 + static_cast<int>(rng.below(4));
    const int acts = 3 + static_cast<int>(rng.below(5));
    const auto flat = san::flatten(random_model(rng, places, acts));
    expect_identical_trajectories(flat, nullptr, 1000 + trial, 30.0);
  }
}

TEST(EngineConformance, MixedDistributionsWithTies) {
  // Two deterministic activities with the same delay force repeated
  // schedule ties; the heap's (time, index) order must match the reference
  // scan's first-minimum rule.  A Weibull and an Erlang keep the
  // non-exponential sampling paths honest.
  auto m = std::make_shared<san::AtomicModel>("mix");
  const auto a = m->place("a", 1);
  const auto b = m->place("b", 1);
  const auto c = m->place("c");
  m->timed_activity("da")
      .distribution(util::Distribution::Deterministic(0.5))
      .input_arc(a)
      .output_arc(a);
  m->timed_activity("db")
      .distribution(util::Distribution::Deterministic(0.5))
      .input_arc(b)
      .output_arc(b);
  m->timed_activity("wb")
      .distribution(util::Distribution::Weibull(1.5, 2.0))
      .input_arc(a)
      .output_arc(c);
  m->timed_activity("er")
      .distribution(util::Distribution::Erlang(3, 4.0))
      .input_arc(c)
      .output_arc(a);
  const auto flat = san::flatten(m);
  expect_identical_trajectories(flat, nullptr, 7, 40.0);
}

TEST(EngineConformance, AhsSystemScheduledMode) {
  // Busy parameterization (high failure rate) so failures, maneuvers,
  // escalations, and platoon churn all appear in a short horizon.
  ahs::Parameters p;
  p.max_per_platoon = 4;
  p.base_failure_rate = 0.5;
  const auto flat = ahs::build_system_model(p);
  for (std::uint64_t seed : {11u, 12u, 13u})
    expect_identical_trajectories(flat, nullptr, seed, 4.0);
}

TEST(EngineConformance, AhsSystemLargerInstance) {
  ahs::Parameters p;
  p.max_per_platoon = 10;
  p.base_failure_rate = 0.2;
  const auto flat = ahs::build_system_model(p);
  expect_identical_trajectories(flat, nullptr, 99, 2.0);
}

TEST(EngineConformance, AhsEmbeddedImportanceSampling) {
  ahs::Parameters p;
  p.max_per_platoon = 3;
  p.base_failure_rate = 1e-3;
  const auto flat = ahs::build_system_model(p);
  sim::BiasPlan bias;
  bias.boost = 200.0;
  bias.boosted = {"L1", "L2", "L3", "L4", "L5", "L6"};
  for (std::size_t k = 0; k < ahs::kNumManeuvers; ++k)
    bias.case_bias["M" + std::to_string(k + 1)] = {0.5, 0.5};
  for (std::uint64_t seed : {21u, 22u})
    expect_identical_trajectories(flat, &bias, seed, 3.0);
}

TEST(EngineConformance, EstimatesAreBitwiseEqualAcrossEngines) {
  ahs::Parameters p;
  p.max_per_platoon = 2;
  p.base_failure_rate = 0.05;
  const auto flat = ahs::build_system_model(p);
  const auto reward = ahs::unsafety_reward(flat);

  sim::TransientOptions opts;
  opts.time_points = {1.0, 5.0};
  opts.min_replications = 200;
  opts.max_replications = 200;
  opts.seed = 31;

  opts.engine = sim::Executor::Engine::kIncremental;
  opts.check_dependencies = true;
  const auto inc = sim::estimate_transient(flat, reward, opts);

  opts.engine = sim::Executor::Engine::kFullRescan;
  opts.check_dependencies = false;
  const auto ref = sim::estimate_transient(flat, reward, opts);

  ASSERT_EQ(inc.replications, ref.replications);
  EXPECT_EQ(inc.total_events, ref.total_events);
  for (std::size_t i = 0; i < inc.estimates.size(); ++i) {
    EXPECT_EQ(inc.mean(i), ref.mean(i));  // bitwise
    EXPECT_EQ(inc.estimates[i].half_width, ref.estimates[i].half_width);
  }
}

}  // namespace
