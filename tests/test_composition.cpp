// Tests for Rep/Join composition and flattening: place sharing, instance
// maps, replica indices, name lookup, and sharing consistency checks.
#include <gtest/gtest.h>

#include "san/composition.h"
#include "util/error.h"

namespace {

std::shared_ptr<san::AtomicModel> counter_model() {
  auto m = std::make_shared<san::AtomicModel>("counter");
  const auto local = m->place("local", 1);
  const auto shared = m->place("pool", 0);
  m->timed_activity("move")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(local)
      .output_arc(shared);
  return m;
}

TEST(Composition, LeafFlattensToItsOwnPlaces) {
  const auto flat = san::flatten(counter_model());
  EXPECT_EQ(flat.places().size(), 2u);
  EXPECT_EQ(flat.marking_size(), 2u);
  EXPECT_EQ(flat.activities().size(), 1u);
  const auto init = flat.initial_marking();
  EXPECT_EQ(init[flat.place_offset(flat.place_index("local"))], 1);
}

TEST(Composition, RepDuplicatesUnsharedPlaces) {
  auto rep = san::Rep("r", san::Leaf(counter_model()), 3, {"pool"});
  const auto flat = san::flatten(rep);
  // 3 local copies + 1 shared pool.
  EXPECT_EQ(flat.places().size(), 4u);
  EXPECT_EQ(flat.activities().size(), 3u);
  EXPECT_EQ(flat.place_indices("local").size(), 3u);
  EXPECT_EQ(flat.place_indices("pool").size(), 1u);
}

TEST(Composition, RepInstanceCountAndReplicaIndices) {
  auto rep = san::Rep("r", san::Leaf(counter_model()), 4, {"pool"});
  EXPECT_EQ(rep->instance_count(), 4u);
  const auto flat = san::flatten(rep);
  for (std::size_t i = 0; i < flat.activities().size(); ++i)
    EXPECT_EQ(flat.activities()[i].imap->replica, i);
}

TEST(Composition, SharedPlaceIsTrulyShared) {
  auto rep = san::Rep("r", san::Leaf(counter_model()), 2, {"pool"});
  const auto flat = san::flatten(rep);
  auto m = flat.initial_marking();
  // Fire both replicas' activities; both should feed the same pool slot.
  flat.fire(0, 0, m);
  flat.fire(1, 0, m);
  const auto pool_off = flat.place_offset(flat.place_index("pool"));
  EXPECT_EQ(m[pool_off], 2);
}

TEST(Composition, JoinSharesAcrossModels) {
  auto a = std::make_shared<san::AtomicModel>("a");
  const auto ap = a->place("bus");
  a->timed_activity("produce")
      .distribution(util::Distribution::Exponential(1.0))
      .output_arc(ap);
  auto b = std::make_shared<san::AtomicModel>("b");
  const auto bp = b->place("bus");
  b->timed_activity("consume")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(bp);

  auto join = san::Join("j", {san::Leaf(a), san::Leaf(b)}, {"bus"});
  const auto flat = san::flatten(join);
  EXPECT_EQ(flat.place_indices("bus").size(), 1u);

  auto m = flat.initial_marking();
  EXPECT_FALSE(flat.enabled(1, m));  // consume disabled: bus empty
  flat.fire(0, 0, m);                // produce
  EXPECT_TRUE(flat.enabled(1, m));
}

TEST(Composition, JoinWithoutSharingKeepsPlacesSeparate) {
  auto a = std::make_shared<san::AtomicModel>("a");
  a->place("bus");
  auto b = std::make_shared<san::AtomicModel>("b");
  b->place("bus");
  auto join = san::Join("j", {san::Leaf(a), san::Leaf(b)}, {});
  const auto flat = san::flatten(join);
  EXPECT_EQ(flat.place_indices("bus").size(), 2u);
  EXPECT_THROW(flat.place_index("bus"), util::ModelError);  // ambiguous
}

TEST(Composition, SharedSizeMismatchThrows) {
  auto a = std::make_shared<san::AtomicModel>("a");
  a->extended_place("arr", 3);
  auto b = std::make_shared<san::AtomicModel>("b");
  b->extended_place("arr", 4);
  auto join = san::Join("j", {san::Leaf(a), san::Leaf(b)}, {"arr"});
  EXPECT_THROW(san::flatten(join), util::ModelError);
}

TEST(Composition, SharedInitialMismatchThrows) {
  auto a = std::make_shared<san::AtomicModel>("a");
  a->place("p", 1);
  auto b = std::make_shared<san::AtomicModel>("b");
  b->place("p", 2);
  auto join = san::Join("j", {san::Leaf(a), san::Leaf(b)}, {"p"});
  EXPECT_THROW(san::flatten(join), util::ModelError);
}

TEST(Composition, NestedRepInJoin) {
  auto rep = san::Rep("r", san::Leaf(counter_model()), 2, {"pool"});
  auto solo = std::make_shared<san::AtomicModel>("watcher");
  const auto wp = solo->place("pool");
  solo->timed_activity("drain")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(wp);
  auto join = san::Join("sys", {rep, san::Leaf(solo)}, {"pool"});
  const auto flat = san::flatten(join);
  // pool shared across replicas AND the watcher.
  EXPECT_EQ(flat.place_indices("pool").size(), 1u);
  EXPECT_EQ(flat.activities().size(), 3u);
  EXPECT_EQ(flat.place_indices("local").size(), 2u);
}

TEST(Composition, RepRejectsZeroCount) {
  EXPECT_THROW(san::Rep("r", san::Leaf(counter_model()), 0, {}),
               util::PreconditionError);
}

TEST(Composition, PlaceSuffixLookupMatchesComponents) {
  auto rep = san::Rep("r", san::Leaf(counter_model()), 1, {});
  const auto flat = san::flatten(rep);
  // Full path should also resolve.
  EXPECT_NO_THROW(flat.place_index("r[0]/counter/local"));
  // A partial component ("ounter/local") must NOT match.
  EXPECT_THROW(flat.place_index("ounter/local"), util::ModelError);
}

TEST(Composition, ValidateSummary) {
  auto rep = san::Rep("r", san::Leaf(counter_model()), 2, {"pool"});
  const auto flat = san::flatten(rep);
  EXPECT_NO_THROW(flat.validate());
  EXPECT_NE(flat.summary().find("places"), std::string::npos);
}

}  // namespace
