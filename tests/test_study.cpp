// Study-driver tests: engine parsing, engine agreement on one configuration,
// and option validation.
#include <gtest/gtest.h>

#include "ahs/study.h"
#include "util/error.h"

namespace {

using namespace ahs;

TEST(Study, EngineParsing) {
  EXPECT_EQ(parse_engine("lumped-ctmc"), Engine::kLumpedCtmc);
  EXPECT_EQ(parse_engine("lumped"), Engine::kLumpedCtmc);
  EXPECT_EQ(parse_engine("simulation"), Engine::kSimulation);
  EXPECT_EQ(parse_engine("SIM"), Engine::kSimulation);
  EXPECT_EQ(parse_engine("simulation-is"), Engine::kSimulationIS);
  EXPECT_EQ(parse_engine("is"), Engine::kSimulationIS);
  EXPECT_EQ(parse_engine("full-ctmc"), Engine::kFullCtmc);
  EXPECT_THROW(parse_engine("magic"), util::PreconditionError);
  for (Engine e : {Engine::kLumpedCtmc, Engine::kSimulation,
                   Engine::kSimulationIS, Engine::kFullCtmc})
    EXPECT_EQ(parse_engine(to_string(e)), e);
}

TEST(Study, TripDurationGridMatchesPaper) {
  const auto grid = trip_duration_grid();
  EXPECT_EQ(grid.front(), 2.0);
  EXPECT_EQ(grid.back(), 10.0);
  EXPECT_EQ(grid.size(), 5u);
}

TEST(Study, RequiresTimePoints) {
  Parameters p;
  EXPECT_THROW(unsafety_curve(p, {}, StudyOptions{}),
               util::PreconditionError);
}

TEST(Study, LumpedEngineProducesExactCurve) {
  Parameters p;
  p.max_per_platoon = 2;
  p.base_failure_rate = 1e-3;
  const auto curve = unsafety_curve(p, {2.0, 6.0}, StudyOptions{});
  EXPECT_EQ(curve.times.size(), 2u);
  EXPECT_TRUE(curve.converged);
  EXPECT_EQ(curve.replications, 0u);
  EXPECT_DOUBLE_EQ(curve.half_width[0], 0.0);
  EXPECT_GT(curve.unsafety[1], curve.unsafety[0]);
}

TEST(Study, SimulationAgreesWithLumpedAtHighRate) {
  Parameters p;
  p.max_per_platoon = 2;
  p.base_failure_rate = 2e-2;
  const std::vector<double> times = {4.0};
  const auto exact = unsafety_curve(p, times, StudyOptions{});
  StudyOptions so;
  so.engine = Engine::kSimulation;
  so.min_replications = 8000;
  so.max_replications = 8000;
  const auto sim = unsafety_curve(p, times, so);
  EXPECT_GT(sim.replications, 0u);
  // Lumping bias at this stress rate is ~25-30%; require same ballpark.
  EXPECT_NEAR(sim.unsafety[0] / exact.unsafety[0], 1.0, 0.5);
}

TEST(Study, ImportanceSamplingReportsTighterRelativeCi) {
  Parameters p;
  p.max_per_platoon = 2;
  p.base_failure_rate = 1e-3;
  const std::vector<double> times = {6.0};
  StudyOptions mc;
  mc.engine = Engine::kSimulation;
  mc.min_replications = 5000;
  mc.max_replications = 5000;
  StudyOptions is = mc;
  is.engine = Engine::kSimulationIS;
  is.failure_boost = 20.0;
  const auto r_mc = unsafety_curve(p, times, mc);
  const auto r_is = unsafety_curve(p, times, is);
  // At 5000 replications plain MC has seen a handful of events at best;
  // IS must produce a strictly positive estimate with a finite CI.
  EXPECT_GT(r_is.unsafety[0], 0.0);
  EXPECT_LT(r_is.half_width[0] / r_is.unsafety[0],
            (r_mc.unsafety[0] > 0
                 ? r_mc.half_width[0] / r_mc.unsafety[0] + 1.0
                 : 1e9));
}

}  // namespace
