// Structure caches on the CTMC path: the lumped rate-term decomposition,
// the full-SAN exploration skeleton + rebuild_rates, and the StudyCache
// that shares both across sweep points.  The contract everywhere: a cache
// hit reproduces the cold build (to 1e-12 or exactly).
#include <gtest/gtest.h>

#include "ahs/lumped.h"
#include "ahs/study.h"
#include "ahs/system_model.h"
#include "ctmc/state_space.h"
#include "ctmc/uniformization.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace {

using namespace ahs;

Parameters lumped_params(double lambda) {
  Parameters p;
  p.max_per_platoon = 4;
  p.base_failure_rate = lambda;
  return p;
}

/// Small enough that the exact full-SAN chain stays tractable.
Parameters full_params(double lambda) {
  Parameters p;
  p.max_per_platoon = 1;
  p.base_failure_rate = lambda;
  p.failure_mode_enabled = {false, false, true, false, false, true};
  return p;
}

TEST(StructureCache, FingerprintSeparatesStructure) {
  const Parameters a = lumped_params(1e-4);
  Parameters b = a;
  b.base_failure_rate = 1e-3;  // rate-only change
  EXPECT_EQ(a.structural_fingerprint(), b.structural_fingerprint());

  Parameters c = a;
  c.max_per_platoon = 5;
  EXPECT_NE(a.structural_fingerprint(), c.structural_fingerprint());
  Parameters d = a;
  d.strategy = Strategy::kCC;
  EXPECT_NE(a.structural_fingerprint(), d.structural_fingerprint());
  Parameters e = a;
  e.join_rate = 0.0;  // zero-pattern change prunes join edges
  EXPECT_NE(a.structural_fingerprint(), e.structural_fingerprint());
  Parameters f = a;
  f.q_intrinsic = 1.0;  // boundary prunes escalation edges
  EXPECT_NE(a.structural_fingerprint(), f.structural_fingerprint());
  Parameters g = a;
  g.q_intrinsic = 0.9;  // interior q move keeps the structure
  EXPECT_EQ(a.structural_fingerprint(), g.structural_fingerprint());
}

TEST(StructureCache, LumpedSharedStructureEqualsColdBuild) {
  const Parameters cold_p = lumped_params(1e-4);
  const auto structure = explore_lumped_structure(cold_p);

  for (double lambda : {1e-5, 1e-3}) {
    const Parameters p = lumped_params(lambda);
    const LumpedModel cold(p);
    const LumpedModel warm(p, structure);
    const std::vector<double> times = {2.0, 6.0, 10.0};
    const auto s_cold = cold.unsafety(times);
    const auto s_warm = warm.unsafety(times);
    for (std::size_t i = 0; i < times.size(); ++i)
      EXPECT_NEAR(s_cold[i], s_warm[i], 1e-12) << "lambda=" << lambda;
  }
}

TEST(StructureCache, LumpedRejectsFingerprintMismatch) {
  const auto structure = explore_lumped_structure(lumped_params(1e-4));
  Parameters other = lumped_params(1e-4);
  other.max_per_platoon = 5;
  EXPECT_THROW(LumpedModel(other, structure), util::PreconditionError);
}

TEST(StructureCache, RebuildRatesEqualsColdStateSpace) {
  // Explore once with the skeleton, rebuild at a different λ, and compare
  // against a cold exploration at that λ: same sparsity, equal rates.
  const san::FlatModel m1 = build_system_model(full_params(1e-3));
  ctmc::StateSpaceOptions opts;
  opts.capture_structure = true;
  opts.ignore_places = {"ext_id", "safe_exits", "ko_exits"};
  const ctmc::StateSpace cached = ctmc::build_state_space(m1, opts);
  ASSERT_NE(cached.skeleton, nullptr);
  EXPECT_FALSE(cached.skeleton->empty());

  const san::FlatModel m2 = build_system_model(full_params(5e-2));
  const ctmc::MarkovChain rebuilt = ctmc::rebuild_rates(m2, cached);

  ctmc::StateSpaceOptions cold_opts;
  cold_opts.ignore_places = opts.ignore_places;
  const ctmc::StateSpace cold = ctmc::build_state_space(m2, cold_opts);

  ASSERT_EQ(rebuilt.num_states, cold.chain.num_states);
  for (std::uint32_t s = 0; s < rebuilt.num_states; ++s) {
    EXPECT_NEAR(rebuilt.exit_rate[s], cold.chain.exit_rate[s], 1e-12);
    const auto rc = rebuilt.rates.row_cols(s);
    const auto cc = cold.chain.rates.row_cols(s);
    ASSERT_EQ(rc.size(), cc.size()) << "state " << s;
    const auto rv = rebuilt.rates.row_values(s);
    const auto cv = cold.chain.rates.row_values(s);
    for (std::size_t k = 0; k < rc.size(); ++k) {
      EXPECT_EQ(rc[k], cc[k]);
      EXPECT_NEAR(rv[k], cv[k], 1e-12);
    }
  }
}

TEST(StructureCache, RebuildRatesRequiresSkeleton) {
  const san::FlatModel m = build_system_model(full_params(1e-3));
  ctmc::StateSpaceOptions opts;  // capture_structure left off
  opts.ignore_places = {"ext_id", "safe_exits", "ko_exits"};
  const ctmc::StateSpace space = ctmc::build_state_space(m, opts);
  EXPECT_THROW(ctmc::rebuild_rates(m, space), util::PreconditionError);
}

TEST(StructureCache, StudyCacheFullEngineHitEqualsCold) {
  const std::vector<double> times = {1.0, 4.0};
  StudyOptions opts;
  opts.engine = Engine::kFullCtmc;

  StudyCache cache;
  bool hit = true;
  const UnsafetyCurve first =
      unsafety_curve(full_params(1e-3), times, opts, &cache, &hit);
  EXPECT_FALSE(hit);
  const UnsafetyCurve warm =
      unsafety_curve(full_params(5e-2), times, opts, &cache, &hit);
  EXPECT_TRUE(hit);
  const UnsafetyCurve cold = unsafety_curve(full_params(5e-2), times, opts);
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_NEAR(warm.unsafety[i], cold.unsafety[i], 1e-12);

  // A different q is a different full-SAN structure (q sits in the case
  // weights): must not hit.
  Parameters q = full_params(1e-3);
  q.q_intrinsic = 0.9;
  unsafety_curve(q, times, opts, &cache, &hit);
  EXPECT_FALSE(hit);
}

TEST(StructureCache, StudyCacheLumpedHitEqualsCold) {
  const std::vector<double> times = {2.0, 6.0};
  StudyOptions opts;

  StudyCache cache;
  bool hit = true;
  unsafety_curve(lumped_params(1e-4), times, opts, &cache, &hit);
  EXPECT_FALSE(hit);
  const UnsafetyCurve warm =
      unsafety_curve(lumped_params(1e-3), times, opts, &cache, &hit);
  EXPECT_TRUE(hit);
  const UnsafetyCurve cold = unsafety_curve(lumped_params(1e-3), times, opts);
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_NEAR(warm.unsafety[i], cold.unsafety[i], 1e-12);
}

TEST(StructureCache, PooledUniformizationBitwiseStable) {
  // The lumped solve with an internal pool must be bitwise identical to the
  // sequential solve — this is what lets sweep points use any thread count.
  const Parameters p = lumped_params(1e-4);
  const LumpedModel model(p);
  const std::vector<double> times = {2.0, 6.0, 10.0};
  const auto seq = model.unsafety(times);
  for (unsigned workers : {1u, 2u, 5u}) {
    util::ThreadPool pool(workers);
    const auto par = model.unsafety(times, &pool);
    for (std::size_t i = 0; i < times.size(); ++i)
      EXPECT_EQ(seq[i], par[i]) << "workers=" << workers;
  }
}

}  // namespace
