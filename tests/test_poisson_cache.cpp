// PoissonCache tests: hit/miss accounting, and the warm-vs-cold identity
// the sweep engine relies on — a solve that finds its Poisson window in a
// pre-warmed cache must be bitwise identical to the same solve against a
// fresh cache, across a grid of nearby rates (the quantized uniformization
// rate lands neighbors on shared keys).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "ctmc/sparse.h"
#include "ctmc/uniformization.h"

namespace {

using ctmc::CsrMatrix;
using ctmc::MarkovChain;
using ctmc::PoissonCache;

// Three-state cycle with one absorbing escape; `rate` perturbs the fastest
// transition so the max exit rate moves in its low-order bits, the way a
// sweep's λ axis does.
MarkovChain chain_for(double rate) {
  MarkovChain c;
  c.num_states = 4;
  c.rates = CsrMatrix::from_triplets(
      4, 4,
      {{0, 1, rate}, {1, 0, 2.0}, {1, 2, 3.0}, {2, 0, 1.0}, {2, 3, 0.05}});
  c.exit_rate = {rate, 5.0, 1.05, 0.0};
  c.initial = {1.0, 0.0, 0.0, 0.0};
  return c;
}

TEST(PoissonCache, CountsHitsAndMisses) {
  PoissonCache cache;
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.hit_rate(), 0.0);
  EXPECT_EQ(cache.find(10.0, 1e-12), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  auto w = std::make_shared<ctmc::PoissonWindow>(ctmc::poisson_window(
      10.0, 1e-12));
  cache.store(10.0, 1e-12, w);
  EXPECT_EQ(cache.find(10.0, 1e-12).get(), w.get());
  EXPECT_EQ(cache.hits(), 1u);
  // Different epsilon is a different key.
  EXPECT_EQ(cache.find(10.0, 1e-10), nullptr);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 1.0 / 3.0);
}

TEST(PoissonCache, WarmAndColdSolvesAreBitwiseIdentical) {
  const std::vector<double> rates = {4.0,    4.0001, 4.0003,
                                     4.0007, 4.001,  4.002};
  const std::vector<double> reward = {0.0, 0.0, 0.0, 1.0};
  const std::vector<double> times = {1.0, 4.0, 9.0};

  // Cold: every solve gets its own fresh cache (all misses).
  std::vector<std::vector<double>> cold;
  for (double r : rates) {
    PoissonCache cache;
    ctmc::UniformizationOptions opts;
    opts.poisson_cache = &cache;
    cold.push_back(
        ctmc::solve_transient(chain_for(r), reward, times, opts)
            .expected_reward);
    EXPECT_EQ(cache.hits(), 0u);
  }

  // Warm: one shared cache, pre-warmed by a full pass over the grid, then
  // re-solved.  The nearby rates quantize onto shared keys, so the second
  // pass (and most of the first) must hit.
  PoissonCache shared;
  for (double r : rates) {
    ctmc::UniformizationOptions opts;
    opts.poisson_cache = &shared;
    ctmc::solve_transient(chain_for(r), reward, times, opts);
  }
  const std::uint64_t warmup_misses = shared.misses();
  EXPECT_GT(shared.hits(), 0u) << "quantization failed to share windows";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    ctmc::UniformizationOptions opts;
    opts.poisson_cache = &shared;
    const auto warm = ctmc::solve_transient(chain_for(rates[i]), reward,
                                            times, opts)
                          .expected_reward;
    ASSERT_EQ(warm.size(), cold[i].size());
    for (std::size_t k = 0; k < warm.size(); ++k)
      EXPECT_EQ(warm[k], cold[i][k])
          << "rate=" << rates[i] << " t=" << times[k];
  }
  // The re-solve pass computed nothing new.
  EXPECT_EQ(shared.misses(), warmup_misses);
}

TEST(PoissonCache, AccumulatedSolverSharesWindowsToo) {
  const std::vector<double> reward = {1.0, 0.0, 0.0, 0.0};
  const std::vector<double> times = {2.0, 5.0};
  PoissonCache cold_cache;
  ctmc::UniformizationOptions cold_opts;
  cold_opts.poisson_cache = &cold_cache;
  const auto cold = ctmc::solve_accumulated(chain_for(4.0), reward, times,
                                            cold_opts);

  PoissonCache shared;
  ctmc::UniformizationOptions opts;
  opts.poisson_cache = &shared;
  ctmc::solve_accumulated(chain_for(4.0001), reward, times, opts);
  const auto warm = ctmc::solve_accumulated(chain_for(4.0), reward, times,
                                            opts);
  EXPECT_GT(shared.hits(), 0u);
  ASSERT_EQ(warm.accumulated.size(), cold.accumulated.size());
  for (std::size_t k = 0; k < warm.accumulated.size(); ++k)
    EXPECT_EQ(warm.accumulated[k], cold.accumulated[k]);
}

TEST(PoissonCache, CachelessSolvesAreUnchangedByTheFeature) {
  // No cache attached: the solver must use the exact (unquantized) rate —
  // the documented compatibility guarantee for existing callers.  The
  // closed form of the two-state absorber pins the numerics.
  MarkovChain c;
  c.num_states = 2;
  c.rates = CsrMatrix::from_triplets(2, 2, {{0, 1, 2.5}});
  c.exit_rate = {2.5, 0.0};
  c.initial = {1.0, 0.0};
  const std::vector<double> reward = {0.0, 1.0};
  const std::vector<double> times = {0.5, 2.0};
  const auto sol = ctmc::solve_transient(c, reward, times);
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_NEAR(sol.expected_reward[i], 1.0 - std::exp(-2.5 * times[i]),
                1e-12);
}

}  // namespace
