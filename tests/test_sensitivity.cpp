// Elasticity-driver tests: accessor round-trips and the signs/magnitudes
#include <set>
#include <cmath>
// the model theory predicts.
#include <gtest/gtest.h>

#include "ahs/sensitivity.h"
#include "util/error.h"

namespace {

using namespace ahs;

TEST(Sensitivity, ScalarAccessorsRoundTrip) {
  Parameters p;
  for (ScalarParam sp : all_scalar_params()) {
    if (sp == ScalarParam::kMuAll) continue;  // anchor semantics below
    const double v = get_scalar(p, sp);
    Parameters q = p;
    set_scalar(q, sp, v * 2.0);
    EXPECT_DOUBLE_EQ(get_scalar(q, sp), v * 2.0) << to_string(sp);
  }
}

TEST(Sensitivity, MuAllScalesEveryManeuver) {
  Parameters p;
  const auto before = p.maneuver_rates;
  set_scalar(p, ScalarParam::kMuAll, get_scalar(p, ScalarParam::kMuAll) * 2);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_DOUBLE_EQ(p.maneuver_rates[i], before[i] * 2);
}

TEST(Sensitivity, NamesAreUnique) {
  std::set<std::string> names;
  for (ScalarParam sp : all_scalar_params())
    EXPECT_TRUE(names.insert(to_string(sp)).second);
}

TEST(Sensitivity, ElasticitySignsMatchTheory) {
  Parameters p;
  p.max_per_platoon = 3;
  p.base_failure_rate = 1e-4;
  const auto es = unsafety_elasticities(
      p, 6.0,
      {ScalarParam::kLambda, ScalarParam::kMuAll, ScalarParam::kQIntrinsic},
      0.05);
  ASSERT_EQ(es.size(), 3u);
  // lambda: ~ +2 (two concurrent failures needed).
  EXPECT_GT(es[0].elasticity, 1.5);
  EXPECT_LT(es[0].elasticity, 2.5);
  // mu: negative, roughly -1 (exposure window).
  EXPECT_LT(es[1].elasticity, -0.5);
  EXPECT_GT(es[1].elasticity, -1.6);
  // q: negative (better maneuvers, fewer escalations).
  EXPECT_LT(es[2].elasticity, 0.0);
}

TEST(Sensitivity, QAtBoundaryUsesOneSidedDifference) {
  Parameters p;
  p.max_per_platoon = 2;
  p.base_failure_rate = 1e-3;
  p.q_intrinsic = 1.0;
  const auto es =
      unsafety_elasticities(p, 6.0, {ScalarParam::kQIntrinsic}, 0.05);
  ASSERT_EQ(es.size(), 1u);
  EXPECT_LT(es[0].elasticity, 0.0);
  EXPECT_TRUE(std::isfinite(es[0].elasticity));
}

TEST(Sensitivity, ValidatesInputs) {
  Parameters p;
  EXPECT_THROW(unsafety_elasticities(p, 0.0, {ScalarParam::kLambda}),
               util::PreconditionError);
  EXPECT_THROW(unsafety_elasticities(p, 6.0, {ScalarParam::kLambda}, 0.9),
               util::PreconditionError);
}

}  // namespace
