// Column-blocked CSR tests: make_blocked preserves every entry in the
// original per-row order, and the blocked gather product is bitwise
// identical to CsrMatrix::right_multiply — the property the uniformization
// stepper's fused kernel stands on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ctmc/sparse.h"

namespace {

using ctmc::BlockedCsr;
using ctmc::CsrMatrix;
using ctmc::Triplet;

// Deterministic pseudo-random sparse matrix (no global RNG in tests).
CsrMatrix random_matrix(std::uint32_t rows, std::uint32_t cols,
                        std::size_t entries, std::uint64_t seed) {
  std::vector<Triplet> t;
  t.reserve(entries);
  std::uint64_t s = seed;
  auto next = [&s] {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  };
  for (std::size_t i = 0; i < entries; ++i) {
    const auto r = static_cast<std::uint32_t>(next() % rows);
    const auto c = static_cast<std::uint32_t>(next() % cols);
    const double v = 1e-3 + static_cast<double>(next() % 1000) / 7.0;
    t.push_back({r, c, v});
  }
  return CsrMatrix::from_triplets(rows, cols, std::move(t));
}

// Blocked gather product in the exact order the fused kernel uses: per
// block, per row, accumulate that block's entries into y[r].
std::vector<double> blocked_right_multiply(const BlockedCsr& b,
                                           const std::vector<double>& x) {
  std::vector<double> y(b.rows, 0.0);
  for (std::size_t blk = 0; blk < b.blocks(); ++blk) {
    const std::size_t* rp = b.row_ptr.data() + blk * (b.rows + 1);
    for (std::uint32_t r = 0; r < b.rows; ++r) {
      double g = y[r];
      for (std::size_t k = rp[r]; k < rp[r + 1]; ++k)
        g += b.val[k] * x[b.col[k]];
      y[r] = g;
    }
  }
  return y;
}

TEST(BlockedCsr, PreservesEntriesInRowOrder) {
  const CsrMatrix m = random_matrix(40, 60, 400, 1);
  for (std::uint32_t block_cols : {1u, 7u, 16u, 60u, 1000u}) {
    const BlockedCsr b = ctmc::make_blocked(m, block_cols);
    ASSERT_GE(b.blocks(), 1u);
    EXPECT_EQ(b.bounds.front(), 0u);
    EXPECT_EQ(b.bounds.back(), m.cols());
    EXPECT_EQ(b.col.size(), m.nonzeros());
    // Concatenating row r's segments across blocks in block order must
    // reproduce row r of m exactly (columns and values, same order).
    for (std::uint32_t r = 0; r < m.rows(); ++r) {
      std::vector<std::uint32_t> cols;
      std::vector<double> vals;
      for (std::size_t blk = 0; blk < b.blocks(); ++blk) {
        const std::size_t* rp = b.row_ptr.data() + blk * (b.rows + 1);
        for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
          EXPECT_GE(b.col[k], b.bounds[blk]);
          EXPECT_LT(b.col[k], b.bounds[blk + 1]);
          cols.push_back(b.col[k]);
          vals.push_back(b.val[k]);
        }
      }
      const auto mc = m.row_cols(r);
      const auto mv = m.row_values(r);
      ASSERT_EQ(cols.size(), mc.size()) << "row " << r;
      for (std::size_t i = 0; i < cols.size(); ++i) {
        EXPECT_EQ(cols[i], mc[i]);
        EXPECT_EQ(vals[i], mv[i]);  // exact copy, not a near-match
      }
    }
  }
}

TEST(BlockedCsr, GatherProductIsBitwiseIdenticalToUnblocked) {
  const CsrMatrix m = random_matrix(64, 128, 1500, 2);
  std::vector<double> x(m.cols());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 1.0 / (1.0 + static_cast<double>(i));
  std::vector<double> y_ref(m.rows());
  m.right_multiply(x, y_ref);
  for (std::uint32_t block_cols : {1u, 5u, 32u, 128u, 4096u}) {
    const std::vector<double> y = blocked_right_multiply(
        ctmc::make_blocked(m, block_cols), x);
    for (std::uint32_t r = 0; r < m.rows(); ++r)
      EXPECT_EQ(y[r], y_ref[r]) << "block_cols=" << block_cols << " row=" << r;
  }
}

TEST(BlockedCsr, TransposeGatherMatchesScatterBitwise) {
  // The solver's actual configuration: gather over the transpose replays
  // left_multiply's scatter accumulation order.
  const CsrMatrix m = random_matrix(50, 50, 900, 3);
  std::vector<double> x(m.rows());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.25 + static_cast<double>(i % 9);
  std::vector<double> y_scatter(m.cols());
  m.left_multiply(x, y_scatter);
  const std::vector<double> y_gather = blocked_right_multiply(
      ctmc::make_blocked(m.transposed(), 13), x);
  for (std::uint32_t c = 0; c < m.cols(); ++c)
    EXPECT_EQ(y_gather[c], y_scatter[c]) << "col " << c;
}

}  // namespace
