// Tests for the extension features: non-exponential maneuver times and
// adjacency-scoped severity.
#include <gtest/gtest.h>

#include "ahs/lumped.h"
#include "ahs/study.h"
#include "ahs/system_model.h"
#include "sim/executor.h"
#include "sim/transient.h"
#include "util/error.h"

namespace {

using namespace ahs;

TEST(ManeuverTimeModel, DistributionsShareTheMean) {
  Parameters p;
  for (Maneuver m : kAllManeuvers) {
    const double mean = 1.0 / p.maneuver_rate(m);
    for (ManeuverTimeModel law :
         {ManeuverTimeModel::kExponential, ManeuverTimeModel::kDeterministic,
          ManeuverTimeModel::kUniform, ManeuverTimeModel::kErlang3}) {
      p.maneuver_time_model = law;
      EXPECT_NEAR(p.maneuver_distribution(m).mean(), mean, 1e-12)
          << to_string(law) << " " << short_name(m);
    }
  }
}

TEST(ManeuverTimeModel, NonExponentialModelStillSimulates) {
  Parameters p;
  p.max_per_platoon = 2;
  p.base_failure_rate = 1e-2;
  p.maneuver_time_model = ManeuverTimeModel::kDeterministic;
  const auto flat = build_system_model(p);
  EXPECT_FALSE(flat.all_exponential());
  sim::Executor exec(flat, util::Rng(3));
  exec.run_until(50.0);
  EXPECT_GT(exec.events(), 100u);
}

TEST(ManeuverTimeModel, LumpedRejectsNonExponential) {
  Parameters p;
  p.maneuver_time_model = ManeuverTimeModel::kUniform;
  EXPECT_THROW(LumpedModel m(p), util::PreconditionError);
}

TEST(ManeuverTimeModel, LowerVarianceIsNotLessSafeByMuch) {
  // Same means: deterministic maneuvers must not be substantially WORSE
  // than exponential ones (shorter overlap tail).  Statistical test at an
  // elevated rate with a generous margin.
  Parameters p;
  p.max_per_platoon = 2;
  p.base_failure_rate = 2e-2;
  const std::vector<double> times = {6.0};
  StudyOptions so;
  so.engine = Engine::kSimulation;
  so.min_replications = 15000;
  so.max_replications = 15000;
  const auto expo = unsafety_curve(p, times, so);
  p.maneuver_time_model = ManeuverTimeModel::kDeterministic;
  const auto det = unsafety_curve(p, times, so);
  EXPECT_LT(det.unsafety[0],
            expo.unsafety[0] + 3 * expo.half_width[0] + 3 * det.half_width[0]);
}

TEST(AdjacencySeverity, LumpedRejectsRadius) {
  Parameters p;
  p.adjacency_radius = 1;
  EXPECT_THROW(LumpedModel m(p), util::PreconditionError);
}

TEST(AdjacencySeverity, WindowedScopeNeverExceedsGlobal) {
  // Any window's counts are a subset of the global counts, so with the
  // same seeds the windowed model can only absorb later.  Compare
  // estimates statistically.
  Parameters p;
  p.max_per_platoon = 3;
  p.base_failure_rate = 2e-2;
  const std::vector<double> times = {6.0};
  StudyOptions so;
  so.engine = Engine::kSimulation;
  so.min_replications = 10000;
  so.max_replications = 10000;
  const auto global = unsafety_curve(p, times, so);
  p.adjacency_radius = 1;
  const auto windowed = unsafety_curve(p, times, so);
  EXPECT_LT(windowed.unsafety[0],
            global.unsafety[0] + 3 * global.half_width[0]);
  EXPECT_GT(windowed.unsafety[0], 0.0);
}

TEST(AdjacencySeverity, LargeRadiusEqualsGlobalScope) {
  // A radius covering the whole platoon reproduces the global predicate
  // exactly (same model, same seeds, same trajectories).
  Parameters p;
  p.max_per_platoon = 2;
  p.base_failure_rate = 3e-2;
  const std::vector<double> times = {4.0};
  StudyOptions so;
  so.engine = Engine::kSimulation;
  so.min_replications = 5000;
  so.max_replications = 5000;
  so.seed = 77;
  const auto global = unsafety_curve(p, times, so);
  p.adjacency_radius = 100;  // window spans everything
  const auto wide = unsafety_curve(p, times, so);
  EXPECT_DOUBLE_EQ(wide.unsafety[0], global.unsafety[0]);
}

TEST(AdjacencySeverity, StudyValidatesEngineCompatibility) {
  Parameters p;
  p.adjacency_radius = 1;
  StudyOptions so;
  so.engine = Engine::kLumpedCtmc;
  EXPECT_THROW(unsafety_curve(p, {6.0}, so), util::PreconditionError);
}

}  // namespace
