// Unit tests for delay distributions: parameter validation, means,
// sampling laws (moment checks), and discrete sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "util/distributions.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using util::Distribution;

double sample_mean(const Distribution& d, int n = 200000,
                   std::uint64_t seed = 7) {
  util::Rng rng(seed);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  return sum / n;
}

TEST(Distributions, ExponentialMeanAndRate) {
  const auto d = Distribution::Exponential(12.0);
  EXPECT_TRUE(d.is_exponential());
  EXPECT_DOUBLE_EQ(d.rate(), 12.0);
  EXPECT_DOUBLE_EQ(d.mean(), 1.0 / 12.0);
  EXPECT_NEAR(sample_mean(d), 1.0 / 12.0, 5e-4);
}

TEST(Distributions, ExponentialRejectsBadRate) {
  EXPECT_THROW(Distribution::Exponential(0.0), util::PreconditionError);
  EXPECT_THROW(Distribution::Exponential(-3.0), util::PreconditionError);
}

TEST(Distributions, DeterministicIsExact) {
  const auto d = Distribution::Deterministic(0.25);
  util::Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 0.25);
  EXPECT_DOUBLE_EQ(d.mean(), 0.25);
  EXPECT_FALSE(d.is_exponential());
  EXPECT_THROW(d.rate(), util::PreconditionError);
}

TEST(Distributions, DeterministicRejectsNegative) {
  EXPECT_THROW(Distribution::Deterministic(-1.0), util::PreconditionError);
}

TEST(Distributions, UniformMoments) {
  const auto d = Distribution::Uniform(2.0, 6.0);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_NEAR(sample_mean(d), 4.0, 0.02);
  util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 6.0);
  }
}

TEST(Distributions, UniformRejectsBadBounds) {
  EXPECT_THROW(Distribution::Uniform(3.0, 2.0), util::PreconditionError);
  EXPECT_THROW(Distribution::Uniform(-1.0, 2.0), util::PreconditionError);
}

TEST(Distributions, ErlangMeanAndShape) {
  const auto d = Distribution::Erlang(4, 8.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.5);
  EXPECT_NEAR(sample_mean(d), 0.5, 0.005);
}

TEST(Distributions, ErlangOneIsExponential) {
  // Erlang(1, r) and Exp(r) have the same law; compare sample variances.
  util::Rng rng(5);
  util::RunningStat erl, expo;
  const auto e1 = Distribution::Erlang(1, 5.0);
  const auto e2 = Distribution::Exponential(5.0);
  for (int i = 0; i < 100000; ++i) {
    erl.push(e1.sample(rng));
    expo.push(e2.sample(rng));
  }
  EXPECT_NEAR(erl.mean(), expo.mean(), 0.005);
  EXPECT_NEAR(erl.variance(), expo.variance(), 0.01);
}

TEST(Distributions, ErlangRejectsBadParams) {
  EXPECT_THROW(Distribution::Erlang(0, 1.0), util::PreconditionError);
  EXPECT_THROW(Distribution::Erlang(2, 0.0), util::PreconditionError);
}

TEST(Distributions, WeibullMean) {
  // shape 2, scale 3: mean = 3 * Gamma(1.5) ≈ 2.6587.
  const auto d = Distribution::Weibull(2.0, 3.0);
  EXPECT_NEAR(d.mean(), 3.0 * std::tgamma(1.5), 1e-12);
  EXPECT_NEAR(sample_mean(d), d.mean(), 0.02);
}

TEST(Distributions, WeibullShapeOneIsExponential) {
  const auto d = Distribution::Weibull(1.0, 0.5);  // Exp(rate 2)
  EXPECT_NEAR(sample_mean(d), 0.5, 0.005);
}

TEST(Distributions, LognormalMean) {
  const auto d = Distribution::Lognormal(0.0, 0.5);
  EXPECT_NEAR(d.mean(), std::exp(0.125), 1e-12);
  EXPECT_NEAR(sample_mean(d), d.mean(), 0.02);
}

TEST(Distributions, DescribeMentionsKind) {
  EXPECT_NE(Distribution::Exponential(1).describe().find("Exp"),
            std::string::npos);
  EXPECT_NE(Distribution::Weibull(1, 1).describe().find("Weibull"),
            std::string::npos);
}

TEST(SampleDiscrete, RespectsWeights) {
  util::Rng rng(11);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[util::sample_discrete(rng, w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.01);
}

TEST(SampleDiscrete, RejectsDegenerateInput) {
  util::Rng rng(1);
  EXPECT_THROW(util::sample_discrete(rng, std::vector<double>{}),
               util::PreconditionError);
  EXPECT_THROW(util::sample_discrete(rng, std::vector<double>{0.0, 0.0}),
               util::PreconditionError);
  EXPECT_THROW(util::sample_discrete(rng, std::vector<double>{1.0, -0.1}),
               util::PreconditionError);
}

}  // namespace
