// Unit tests for the SAN atomic-model builder and its validation.
#include <gtest/gtest.h>

#include "san/atomic_model.h"
#include "san/composition.h"
#include "util/error.h"

namespace {

TEST(AtomicModel, DeclaresPlacesWithInitialMarking) {
  san::AtomicModel m("m");
  const auto p = m.place("p", 3);
  const auto q = m.extended_place("q", 4, 1);
  EXPECT_EQ(m.places().size(), 2u);
  EXPECT_EQ(m.places()[p.id].initial, 3);
  EXPECT_EQ(m.places()[q.id].size, 4u);
  EXPECT_EQ(m.places()[q.id].initial, 1);
}

TEST(AtomicModel, RejectsDuplicatePlaceNames) {
  san::AtomicModel m("m");
  m.place("p");
  EXPECT_THROW(m.place("p"), util::PreconditionError);
}

TEST(AtomicModel, RejectsBadPlaceParameters) {
  san::AtomicModel m("m");
  EXPECT_THROW(m.place("", 0), util::PreconditionError);
  EXPECT_THROW(m.extended_place("x", 0), util::PreconditionError);
  EXPECT_THROW(m.place("y", -1), util::PreconditionError);
}

TEST(AtomicModel, FindPlaceByName) {
  san::AtomicModel m("m");
  const auto p = m.place("alpha");
  EXPECT_EQ(m.find_place("alpha").id, p.id);
  EXPECT_THROW(m.find_place("beta"), util::ModelError);
}

TEST(AtomicModel, TimedActivityRequiresDelaySpec) {
  auto m = std::make_shared<san::AtomicModel>("m");
  m->place("p", 1);
  m->timed_activity("t");  // no distribution
  EXPECT_THROW(m->validate(), util::ModelError);
}

TEST(AtomicModel, ValidModelPassesValidation) {
  auto m = std::make_shared<san::AtomicModel>("m");
  const auto p = m->place("p", 1);
  const auto q = m->place("q");
  m->timed_activity("t")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(p)
      .output_arc(q);
  EXPECT_NO_THROW(m->validate());
}

TEST(AtomicModel, InstantActivityPriority) {
  san::AtomicModel m("m");
  m.place("p", 1);
  auto b = m.instant_activity("i").priority(3);
  (void)b;
  EXPECT_EQ(m.activities()[0].priority, 3);
  EXPECT_FALSE(m.activities()[0].timed);
}

TEST(AtomicModel, PriorityRejectedOnTimed) {
  san::AtomicModel m("m");
  auto b = m.timed_activity("t");
  EXPECT_THROW(b.priority(1), util::PreconditionError);
}

TEST(AtomicModel, DistributionRejectedOnInstant) {
  san::AtomicModel m("m");
  auto b = m.instant_activity("i");
  EXPECT_THROW(b.distribution(util::Distribution::Exponential(1.0)),
               util::PreconditionError);
}

TEST(AtomicModel, CaseManagement) {
  san::AtomicModel m("m");
  const auto p = m.place("p");
  auto b = m.timed_activity("t").distribution(
      util::Distribution::Exponential(1.0));
  EXPECT_EQ(b.add_case(0.3), 0u);
  EXPECT_EQ(b.add_case(0.7), 1u);
  b.output_arc(p, 1, 1);
  EXPECT_EQ(m.activities()[0].cases.size(), 2u);
  EXPECT_EQ(m.activities()[0].cases[1].output_arcs.size(), 1u);
}

TEST(AtomicModel, OutputGateOnImplicitCaseZero) {
  san::AtomicModel m("m");
  const auto p = m.place("p");
  m.timed_activity("t")
      .distribution(util::Distribution::Exponential(1.0))
      .output_gate([p](const san::MarkingRef& ref) { ref.add(p, 1); });
  EXPECT_EQ(m.activities()[0].cases.size(), 1u);
}

TEST(AtomicModel, ZeroTotalFixedCaseWeightFailsValidation) {
  auto m = std::make_shared<san::AtomicModel>("m");
  m->place("p", 1);
  auto b = m->timed_activity("t").distribution(
      util::Distribution::Exponential(1.0));
  b.add_case(0.0);
  b.add_case(0.0);
  EXPECT_THROW(m->validate(), util::ModelError);
}

TEST(AtomicModel, ArcWeightMustBePositive) {
  san::AtomicModel m("m");
  const auto p = m.place("p");
  auto b = m.timed_activity("t");
  EXPECT_THROW(b.input_arc(p, 0), util::PreconditionError);
  EXPECT_THROW(b.output_arc(p, -1), util::PreconditionError);
}

TEST(AtomicModel, InputGateNeedsSomething) {
  san::AtomicModel m("m");
  auto b = m.timed_activity("t");
  EXPECT_THROW(b.input_gate(nullptr, nullptr), util::PreconditionError);
}

}  // namespace
