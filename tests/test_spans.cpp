// Span-tree tests: nesting, path aggregation, and propagation across
// ThreadPool fan-out (the span structure must be identical for any worker
// count).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "util/spans.h"
#include "util/thread_pool.h"

namespace {

/// Flattens a snapshot into "path:count" strings, depth-first — a
/// structural fingerprint that ignores durations.
void flatten(const util::SpanTree::Snapshot& s, const std::string& prefix,
             std::vector<std::string>& out) {
  const std::string path = prefix.empty() ? s.name : prefix + "/" + s.name;
  out.push_back(path + ":" + std::to_string(s.count));
  for (const auto& c : s.children) flatten(c, path, out);
}

std::vector<std::string> flatten(const util::SpanTree& tree) {
  std::vector<std::string> out;
  flatten(tree.snapshot(), "", out);
  return out;
}

/// RAII global-tree attachment for a test body.
struct AttachTree {
  explicit AttachTree(util::SpanTree& tree) {
    util::SpanTree::set_global(&tree);
  }
  ~AttachTree() { util::SpanTree::set_global(nullptr); }
};

TEST(Spans, DetachedSpanIsANoop) {
  ASSERT_EQ(util::SpanTree::global(), nullptr);
  AHS_SPAN("nobody.listening");
  SUCCEED();
}

TEST(Spans, NestedSpansAggregateByPath) {
  util::SpanTree tree;
  {
    AttachTree attach(tree);
    for (int i = 0; i < 3; ++i) {
      AHS_SPAN("outer");
      {
        AHS_SPAN("inner");
      }
      { AHS_SPAN("inner"); }
    }
    AHS_SPAN("other");
  }
  EXPECT_EQ(flatten(tree),
            (std::vector<std::string>{"run:0", "run/other:1", "run/outer:3",
                                      "run/outer/inner:6"}));
}

TEST(Spans, SiblingsSortedByName) {
  util::SpanTree tree;
  {
    AttachTree attach(tree);
    { AHS_SPAN("zeta"); }
    { AHS_SPAN("alpha"); }
    { AHS_SPAN("mid"); }
  }
  const auto snap = tree.snapshot();
  ASSERT_EQ(snap.children.size(), 3u);
  EXPECT_EQ(snap.children[0].name, "alpha");
  EXPECT_EQ(snap.children[1].name, "mid");
  EXPECT_EQ(snap.children[2].name, "zeta");
}

TEST(Spans, RecordsElapsedTime) {
  util::SpanTree tree;
  {
    AttachTree attach(tree);
    AHS_SPAN("sleepy");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto snap = tree.snapshot();
  ASSERT_EQ(snap.children.size(), 1u);
  EXPECT_GE(snap.children[0].seconds, 0.005);
}

TEST(Spans, ThreadPoolTasksNestUnderSubmittingSpan) {
  for (unsigned workers : {1u, 4u}) {
    util::SpanTree tree;
    {
      AttachTree attach(tree);
      util::ThreadPool pool(workers);
      AHS_SPAN("phase");
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 8; ++i)
        futures.push_back(pool.submit([] { AHS_SPAN("task"); }));
      for (auto& f : futures) f.get();
    }
    // Identical structure for 1 worker and 4 workers.
    EXPECT_EQ(flatten(tree),
              (std::vector<std::string>{"run:0", "run/phase:1",
                                        "run/phase/task:8"}))
        << "workers=" << workers;
  }
}

TEST(Spans, ParallelForInheritsTheOpenSpan) {
  util::SpanTree tree;
  {
    AttachTree attach(tree);
    util::ThreadPool pool(3);
    AHS_SPAN("sweep");
    pool.parallel_for(0, 64, [](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        AHS_SPAN("chunk.item");
      }
    });
  }
  EXPECT_EQ(flatten(tree),
            (std::vector<std::string>{"run:0", "run/sweep:1",
                                      "run/sweep/chunk.item:64"}));
}

}  // namespace
