// CTMC numerics: CSR matrices, Poisson windows, uniformization against
// closed-form transient solutions, stationary distributions, absorption.
#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/chain.h"
#include "ctmc/sparse.h"
#include "ctmc/stationary.h"
#include "ctmc/uniformization.h"
#include "util/error.h"

namespace {

using ctmc::CsrMatrix;
using ctmc::MarkovChain;
using ctmc::Triplet;

TEST(CsrMatrix, BuildsAndSumsDuplicates) {
  auto m = CsrMatrix::from_triplets(
      2, 3, {{0, 1, 2.0}, {0, 1, 3.0}, {1, 0, 1.0}, {1, 2, 4.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nonzeros(), 3u);
  EXPECT_DOUBLE_EQ(m.row_sum(0), 5.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 5.0);
  const auto cols = m.row_cols(0);
  ASSERT_EQ(cols.size(), 1u);
  EXPECT_EQ(cols[0], 1u);
  EXPECT_DOUBLE_EQ(m.row_values(0)[0], 5.0);
}

TEST(CsrMatrix, LeftAndRightMultiply) {
  auto m = CsrMatrix::from_triplets(2, 2,
                                    {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  std::vector<double> x = {1.0, 2.0}, y(2);
  m.left_multiply(x, y);  // y = x M
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 8.0);
  m.right_multiply(x, y);  // y = M x
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(CsrMatrix, RejectsOutOfRangeTriplets) {
  EXPECT_THROW(CsrMatrix::from_triplets(1, 1, {{1, 0, 1.0}}),
               util::PreconditionError);
}

TEST(PoissonWindow, SmallLambdaMatchesPmf) {
  const auto w = ctmc::poisson_window(2.0, 1e-12);
  EXPECT_EQ(w.left, 0u);
  double total = 0.0;
  for (double x : w.weight) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Compare the k = 0..4 weights with exp(-2) 2^k / k!.
  for (std::uint64_t k = 0; k <= 4; ++k) {
    const double exact =
        std::exp(-2.0) * std::pow(2.0, k) / std::tgamma(k + 1.0);
    EXPECT_NEAR(w.weight[k - w.left], exact, 1e-10);
  }
}

TEST(PoissonWindow, LargeLambdaIsStable) {
  // λ = 5000: raw pmf terms underflow; the window must still normalize.
  const auto w = ctmc::poisson_window(5000.0, 1e-12);
  double total = 0.0;
  for (double x : w.weight) total += x;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(w.left, 4000u);
  EXPECT_LT(w.right, 6000u);
  // Mean of the windowed distribution ≈ λ.
  double mean = 0.0;
  for (std::size_t i = 0; i < w.weight.size(); ++i)
    mean += (w.left + i) * w.weight[i];
  EXPECT_NEAR(mean, 5000.0, 1.0);
}

TEST(PoissonWindow, ZeroLambda) {
  const auto w = ctmc::poisson_window(0.0, 1e-12);
  EXPECT_EQ(w.left, 0u);
  EXPECT_EQ(w.right, 0u);
  EXPECT_DOUBLE_EQ(w.weight[0], 1.0);
}

// Two-state chain with rates a (0→1) and b (1→0); closed-form transient:
// P(state 1 at t | start 0) = a/(a+b) (1 − e^{-(a+b)t}).
MarkovChain two_state(double a, double b) {
  MarkovChain c;
  c.num_states = 2;
  c.rates = CsrMatrix::from_triplets(2, 2, {{0, 1, a}, {1, 0, b}});
  c.exit_rate = {a, b};
  c.initial = {1.0, 0.0};
  return c;
}

TEST(Uniformization, MatchesTwoStateClosedForm) {
  const double a = 3.0, b = 1.0;
  const auto chain = two_state(a, b);
  const std::vector<double> reward = {0.0, 1.0};
  const std::vector<double> times = {0.1, 0.5, 1.0, 2.0, 5.0};
  const auto sol = ctmc::solve_transient(chain, reward, times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double exact =
        a / (a + b) * (1.0 - std::exp(-(a + b) * times[i]));
    EXPECT_NEAR(sol.expected_reward[i], exact, 1e-10) << "t=" << times[i];
  }
}

TEST(Uniformization, PureDeathAbsorption) {
  // 1 --(r)--> 0 (absorbing): P(absorbed by t) = 1 − e^{-rt}.
  MarkovChain c;
  c.num_states = 2;
  c.rates = CsrMatrix::from_triplets(2, 2, {{0, 1, 2.5}});
  c.exit_rate = {2.5, 0.0};
  c.initial = {1.0, 0.0};
  const std::vector<double> reward = {0.0, 1.0};
  const std::vector<double> times = {0.2, 1.0, 3.0};
  const auto sol = ctmc::solve_transient(c, reward, times);
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_NEAR(sol.expected_reward[i], 1.0 - std::exp(-2.5 * times[i]),
                1e-10);
}

TEST(Uniformization, TimePointZeroReturnsInitialReward) {
  const auto chain = two_state(1.0, 1.0);
  const std::vector<double> reward = {7.0, 0.0};
  const std::vector<double> times = {0.0, 1.0};
  const auto sol = ctmc::solve_transient(chain, reward, times);
  EXPECT_DOUBLE_EQ(sol.expected_reward[0], 7.0);
}

TEST(Uniformization, RareAbsorptionSmallProbabilitiesAreAccurate) {
  // 0→1 at rate 1e-9 (absorbing), plus fast internal churn 0↔2 at rate 10
  // to stress the truncation: P(absorbed by t) = 1e-9 ∫ P(state 0, u) du
  // with P(state 0, u) = 0.5 + 0.5 e^{-20u}, so at t = 10 the integral is
  // 5 + 0.5/20 = 5.025.
  MarkovChain c;
  c.num_states = 3;
  c.rates = CsrMatrix::from_triplets(
      3, 3, {{0, 1, 1e-9}, {0, 2, 10.0}, {2, 0, 10.0}});
  c.exit_rate = {10.0 + 1e-9, 0.0, 10.0};
  c.initial = {1.0, 0.0, 0.0};
  const std::vector<double> reward = {0.0, 1.0, 0.0};
  const std::vector<double> times = {10.0};
  ctmc::UniformizationOptions opts;
  opts.epsilon = 1e-14;
  opts.steady_state_tol = 0.0;
  const auto sol = ctmc::solve_transient(c, reward, times, opts);
  EXPECT_NEAR(sol.expected_reward[0] / (5.025e-9), 1.0, 1e-6);
}

TEST(Stationary, TwoStateBalance) {
  const auto chain = two_state(3.0, 1.0);
  const auto res = ctmc::solve_stationary(chain);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.distribution[0], 0.25, 1e-9);
  EXPECT_NEAR(res.distribution[1], 0.75, 1e-9);
}

TEST(Absorption, LinearChainHittingTime) {
  // 0 → 1 → 2 (absorbing) with unit rates: h(0) = 2, h(1) = 1.
  MarkovChain c;
  c.num_states = 3;
  c.rates = CsrMatrix::from_triplets(3, 3, {{0, 1, 1.0}, {1, 2, 1.0}});
  c.exit_rate = {1.0, 1.0, 0.0};
  c.initial = {1.0, 0.0, 0.0};
  const auto res = ctmc::mean_time_to_absorption(c);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.hitting_time[0], 2.0, 1e-9);
  EXPECT_NEAR(res.hitting_time[1], 1.0, 1e-9);
  EXPECT_NEAR(res.mean_time, 2.0, 1e-9);
}

TEST(QuasiStationary, MatchesExactForSlowAbsorption) {
  // Fast 0↔1 churn (rate 5 each way) with slow absorption 1→2 at 1e-6:
  // quasi-stationary occupancy of 1 is 0.5, so κ ≈ 0.5e-6 and MTTA ≈ 2e6.
  MarkovChain c;
  c.num_states = 3;
  c.rates = CsrMatrix::from_triplets(
      3, 3, {{0, 1, 5.0}, {1, 0, 5.0}, {1, 2, 1e-6}});
  c.exit_rate = {5.0, 5.0 + 1e-6, 0.0};
  c.initial = {1.0, 0.0, 0.0};
  std::vector<bool> absorbing = {false, false, true};
  const auto res = ctmc::quasi_stationary_absorption(c, absorbing);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.absorption_rate / 0.5e-6, 1.0, 1e-3);
  EXPECT_NEAR(res.distribution[0], 0.5, 1e-3);
}

TEST(ChainValidate, CatchesInconsistencies) {
  auto chain = two_state(1.0, 1.0);
  EXPECT_NO_THROW(chain.validate());
  chain.initial = {0.7, 0.7};
  EXPECT_THROW(chain.validate(), util::ModelError);
  chain.initial = {1.0, 0.0};
  chain.exit_rate = {2.0, 1.0};
  EXPECT_THROW(chain.validate(), util::ModelError);
}

}  // namespace

namespace {

TEST(Accumulated, PureDeathOccupancyIntegral) {
  // 1 -> absorbing at rate r: E[∫ 1{alive} du] over [0,t] =
  // (1 - e^{-rt}) / r.
  MarkovChain c;
  c.num_states = 2;
  c.rates = CsrMatrix::from_triplets(2, 2, {{0, 1, 2.0}});
  c.exit_rate = {2.0, 0.0};
  c.initial = {1.0, 0.0};
  const std::vector<double> reward = {1.0, 0.0};
  const std::vector<double> times = {0.5, 1.0, 3.0};
  const auto sol = ctmc::solve_accumulated(c, reward, times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double exact = (1.0 - std::exp(-2.0 * times[i])) / 2.0;
    EXPECT_NEAR(sol.accumulated[i], exact, 1e-9) << "t=" << times[i];
  }
}

TEST(Accumulated, FlipflopDownTimeIntegral) {
  // up->down rate a, down->up rate b, start up:
  // E[∫ 1{down}] = a/(a+b) t - a/(a+b)^2 (1 - e^{-(a+b)t}).
  const double a = 3.0, b = 1.0;
  const auto chain = two_state(a, b);
  const std::vector<double> reward = {0.0, 1.0};
  const std::vector<double> times = {0.25, 1.0, 2.5, 5.0};
  const auto sol = ctmc::solve_accumulated(chain, reward, times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double ab = a + b;
    const double exact =
        a / ab * times[i] - a / (ab * ab) * (1.0 - std::exp(-ab * times[i]));
    EXPECT_NEAR(sol.accumulated[i], exact, 1e-8) << "t=" << times[i];
  }
}

TEST(Accumulated, MonotoneAndConsistentWithTransient) {
  // ∫ S'(u) du over increasing horizons is increasing, and for a constant
  // reward of 1 the integral is exactly t.
  const auto chain = two_state(2.0, 5.0);
  const std::vector<double> ones = {1.0, 1.0};
  const std::vector<double> times = {1.0, 2.0, 4.0};
  const auto sol = ctmc::solve_accumulated(chain, ones, times);
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_NEAR(sol.accumulated[i], times[i], 1e-9);
}

}  // namespace
