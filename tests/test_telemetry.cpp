// Telemetry-session tests: JSON document schema, attach/restore semantics,
// instrumentation neutrality (identical results with and without a session),
// and the conformance guarantee that the telemetry *structure* (metric keys,
// span paths) is thread-count independent.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "ahs/parameters.h"
#include "ahs/study.h"
#include "ahs/sweep.h"
#include "san/composition.h"
#include "san/rewards.h"
#include "sim/transient.h"
#include "util/telemetry.h"

namespace {

std::shared_ptr<san::AtomicModel> absorber(double rate) {
  auto m = std::make_shared<san::AtomicModel>("abs");
  const auto alive = m->place("alive", 1);
  const auto dead = m->place("dead");
  m->timed_activity("die")
      .distribution(util::Distribution::Exponential(rate))
      .input_arc(alive)
      .output_arc(dead);
  return m;
}

sim::TransientResult run_sim(std::uint32_t threads) {
  const auto flat = san::flatten(absorber(0.8));
  const auto reward = san::indicator_nonzero(flat, "dead");
  sim::TransientOptions opts;
  opts.time_points = {0.5, 1.0};
  opts.min_replications = 500;
  opts.max_replications = 500;
  opts.threads = threads;
  opts.seed = 7;
  return sim::estimate_transient(flat, reward, opts);
}

/// Collapses a report to its structural fingerprint: sorted metric keys and
/// depth-first span paths, no values.
std::vector<std::string> structure_of(const util::TelemetryReport& report) {
  std::vector<std::string> keys;
  for (const auto& [name, v] : report.metrics.counters)
    keys.push_back("counter/" + name);
  for (const auto& [name, v] : report.metrics.gauges)
    keys.push_back("gauge/" + name);
  for (const auto& [name, v] : report.metrics.histograms)
    keys.push_back("histogram/" + name);
  struct Walk {
    static void spans(const util::SpanTree::Snapshot& s,
                      const std::string& prefix,
                      std::vector<std::string>& out) {
      const std::string path = prefix + "/" + s.name;
      out.push_back("span" + path);
      for (const auto& c : s.children) spans(c, path, out);
    }
  };
  Walk::spans(report.spans, "", keys);
  return keys;
}

TEST(Telemetry, SessionAttachesAndRestoresGlobals) {
  ASSERT_EQ(util::MetricsRegistry::global(), nullptr);
  ASSERT_EQ(util::SpanTree::global(), nullptr);
  {
    util::TelemetrySession session;
    EXPECT_EQ(util::MetricsRegistry::global(), &session.registry());
    EXPECT_EQ(util::SpanTree::global(), &session.spans());
    {
      util::TelemetrySession inner;
      EXPECT_EQ(util::MetricsRegistry::global(), &inner.registry());
    }
    EXPECT_EQ(util::MetricsRegistry::global(), &session.registry());
  }
  EXPECT_EQ(util::MetricsRegistry::global(), nullptr);
  EXPECT_EQ(util::SpanTree::global(), nullptr);
}

TEST(Telemetry, JsonDocumentHasTheSchema) {
  util::TelemetrySession session;
  session.registry().counter("sim.executor.events").add(3);
  session.registry().gauge("sim.transient.ess").set(120.5);
  session.registry().histogram("sim.executor.dirty_set_size", {1, 2}).record(1);
  const std::string json = session.report().to_json();
  EXPECT_NE(json.find("\"schema\": \"ahs.telemetry.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": {\"counters\": {"), std::string::npos);
  EXPECT_NE(json.find("\"sim.executor.events\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {\"sim.transient.ess\": 120.5"),
            std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {\"sim.executor.dirty_set_size\": "
                      "{\"bounds\": [1, 2], \"counts\": [1, 0, 0], "
                      "\"count\": 1, \"sum\": 1, "
                      "\"p50\": 0.5, \"p90\": 0.9, \"p99\": 0.99}"),
            std::string::npos);
  EXPECT_NE(json.find("\"spans\": {\"name\": \"run\""), std::string::npos);
}

TEST(Telemetry, SimulationTelemetryCoversTheExecutor) {
  util::TelemetrySession session;
  const auto res = run_sim(1);
  EXPECT_EQ(res.replications, 500u);
  const auto snap = session.registry().snapshot();
  EXPECT_GT(snap.counters.at("sim.executor.events"), 0u);
  EXPECT_GT(snap.counters.at("sim.executor.rng_draws"), 0u);
  EXPECT_GT(snap.counters.at("sim.executor.heap_ops"), 0u);
  EXPECT_EQ(snap.counters.at("sim.transient.replications"), 500u);
  // No biasing: every likelihood ratio is exactly 1, so ESS == n.
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim.transient.ess"), 500.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim.transient.lr_variance"), 0.0);
  EXPECT_GT(snap.histograms.at("sim.executor.dirty_set_size").count, 0u);
}

TEST(Telemetry, AttachedSessionDoesNotPerturbResults) {
  const auto detached = run_sim(1);
  sim::TransientResult attached;
  {
    util::TelemetrySession session;
    attached = run_sim(1);
  }
  ASSERT_EQ(attached.estimates.size(), detached.estimates.size());
  for (std::size_t i = 0; i < attached.estimates.size(); ++i) {
    EXPECT_EQ(attached.estimates[i].mean, detached.estimates[i].mean);
    EXPECT_EQ(attached.estimates[i].half_width,
              detached.estimates[i].half_width);
  }
  EXPECT_EQ(attached.total_events, detached.total_events);
}

TEST(Telemetry, TransientDiagnosticsInTheResult) {
  const auto res = run_sim(2);
  EXPECT_DOUBLE_EQ(res.ess, 500.0);  // unit weights without biasing
  EXPECT_DOUBLE_EQ(res.lr_variance, 0.0);
  ASSERT_FALSE(res.rel_half_width_trajectory.empty());
  // The trajectory ends at the final interval's relative half-width.
  EXPECT_DOUBLE_EQ(res.rel_half_width_trajectory.back(),
                   res.estimates.back().relative_half_width());
}

/// The acceptance guarantee: sweeping with 1 thread and with 8 threads
/// yields byte-identical telemetry *structure* (same metric keys, same span
/// paths) — only values differ.
TEST(Telemetry, SweepTelemetryKeysAreThreadCountIndependent) {
  auto run = [](unsigned threads) {
    util::TelemetrySession session;
    ahs::Parameters base;
    base.max_per_platoon = 2;
    ahs::GridAxis axis;
    axis.name = "lambda";
    axis.values = {1e-5, 2e-5, 5e-5, 1e-4};
    axis.set = [](ahs::Parameters& p, double v) { p.base_failure_rate = v; };
    const auto points = ahs::make_grid(base, axis);
    ahs::SweepOptions opts;
    opts.study.engine = ahs::Engine::kLumpedCtmc;
    opts.threads = threads;
    const auto sweep = ahs::run_sweep(points, {2.0, 4.0}, opts);
    EXPECT_EQ(sweep.curves.size(), 4u);
    return structure_of(session.report());
  };
  const auto sequential = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(sequential, parallel);
  // And the structure actually covers the instrumented layers.
  const auto& s = sequential;
  auto has = [&s](const std::string& k) {
    return std::find(s.begin(), s.end(), k) != s.end();
  };
  EXPECT_TRUE(has("counter/ahs.sweep.points"));
  EXPECT_TRUE(has("counter/ahs.study.structure_cache_hits"));
  EXPECT_TRUE(has("counter/ctmc.uniformization.solves"));
  EXPECT_TRUE(has("histogram/ahs.sweep.point_seconds"));
  EXPECT_TRUE(has("span/run/sweep.run/sweep.point/study.lumped_ctmc"));
}

TEST(TapStaleness, TripsOnlyWhenTheSequenceStopsAdvancing) {
  util::TapStaleness gate(5.0);
  // Advancing sequence: never stale, never expired.
  EXPECT_EQ(gate.observe(1.0, 0.0), 0.0);
  EXPECT_EQ(gate.observe(2.0, 3.0), 0.0);
  EXPECT_FALSE(gate.expired());
  // Frozen sequence: staleness accumulates from the last advance.
  EXPECT_EQ(gate.observe(2.0, 6.0), 3.0);
  EXPECT_FALSE(gate.expired());
  EXPECT_EQ(gate.observe(2.0, 8.0), 5.0);
  EXPECT_FALSE(gate.expired()) << "exactly at the timeout is not expired";
  EXPECT_EQ(gate.observe(2.0, 8.5), 5.5);
  EXPECT_TRUE(gate.expired());
  // An advance resets the clock.
  EXPECT_EQ(gate.observe(3.0, 9.0), 0.0);
  EXPECT_FALSE(gate.expired());
}

TEST(TapStaleness, FirstObservationStartsTheClock) {
  // The first frame must not count time since process start — a reader
  // attaching to an old-but-live tap would otherwise trip immediately.
  util::TapStaleness gate(2.0);
  EXPECT_EQ(gate.observe(7.0, 100.0), 0.0);
  EXPECT_FALSE(gate.expired());
  EXPECT_EQ(gate.observe(7.0, 103.0), 3.0);
  EXPECT_TRUE(gate.expired());
}

TEST(TapStaleness, ZeroTimeoutDisablesTheGate) {
  util::TapStaleness gate(0.0);
  (void)gate.observe(1.0, 0.0);
  (void)gate.observe(1.0, 1e9);
  EXPECT_FALSE(gate.expired());
}

TEST(Telemetry, FragmentIsSingleLine) {
  util::TelemetrySession session;
  session.registry().counter("x").inc();
  const std::string fragment = session.report().to_json_fragment();
  EXPECT_EQ(fragment.find('\n'), std::string::npos);
  EXPECT_EQ(fragment.front(), '{');
  EXPECT_EQ(fragment.back(), '}');
}

}  // namespace
