// Table 1 encoding: failure modes, severities, maneuvers, escalation chain.
#include <gtest/gtest.h>

#include "ahs/types.h"

namespace {

using namespace ahs;

TEST(Types, Table1Mapping) {
  EXPECT_EQ(info(FailureMode::kFM1).maneuver, Maneuver::kAidedStop);
  EXPECT_EQ(info(FailureMode::kFM2).maneuver, Maneuver::kCrashStop);
  EXPECT_EQ(info(FailureMode::kFM3).maneuver, Maneuver::kGentleStop);
  EXPECT_EQ(info(FailureMode::kFM4).maneuver,
            Maneuver::kTakeImmediateExitEscorted);
  EXPECT_EQ(info(FailureMode::kFM5).maneuver, Maneuver::kTakeImmediateExit);
  EXPECT_EQ(info(FailureMode::kFM6).maneuver,
            Maneuver::kTakeImmediateExitNormal);
}

TEST(Types, Table1Severities) {
  EXPECT_EQ(info(FailureMode::kFM1).severity, SeverityClass::kA);
  EXPECT_EQ(info(FailureMode::kFM2).severity, SeverityClass::kA);
  EXPECT_EQ(info(FailureMode::kFM3).severity, SeverityClass::kA);
  EXPECT_EQ(info(FailureMode::kFM4).severity, SeverityClass::kB);
  EXPECT_EQ(info(FailureMode::kFM5).severity, SeverityClass::kB);
  EXPECT_EQ(info(FailureMode::kFM6).severity, SeverityClass::kC);
  EXPECT_STREQ(info(FailureMode::kFM1).severity_label, "A3");
  EXPECT_STREQ(info(FailureMode::kFM6).severity_label, "C");
}

TEST(Types, RateMultipliersOfSection41) {
  // λ6=4λ, λ5=3λ, λ4=λ3=λ2=2λ, λ1=λ.
  EXPECT_DOUBLE_EQ(info(FailureMode::kFM1).rate_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(info(FailureMode::kFM2).rate_multiplier, 2.0);
  EXPECT_DOUBLE_EQ(info(FailureMode::kFM3).rate_multiplier, 2.0);
  EXPECT_DOUBLE_EQ(info(FailureMode::kFM4).rate_multiplier, 2.0);
  EXPECT_DOUBLE_EQ(info(FailureMode::kFM5).rate_multiplier, 3.0);
  EXPECT_DOUBLE_EQ(info(FailureMode::kFM6).rate_multiplier, 4.0);
}

TEST(Types, ManeuverClassMatchesTriggeringFailureSeverity) {
  for (FailureMode fm : kAllFailureModes)
    EXPECT_EQ(maneuver_class(maneuver_for(fm)), info(fm).severity)
        << to_string(fm);
}

TEST(Types, EscalationChainEndsAtAidedStop) {
  // TIE-N → TIE → TIE-E → GS → CS → AS → (none), and severity never
  // decreases along the chain.
  Maneuver m = Maneuver::kTakeImmediateExitNormal;
  int hops = 0;
  Maneuver next;
  while (next_maneuver(m, next)) {
    EXPECT_LE(static_cast<int>(maneuver_class(next)),
              static_cast<int>(maneuver_class(m)))
        << "severity must not decrease (A=0 < B=1 < C=2)";
    m = next;
    ++hops;
  }
  EXPECT_EQ(hops, 5);
  EXPECT_EQ(m, Maneuver::kAidedStop);
}

TEST(Types, StageOrderMatchesEnum) {
  EXPECT_EQ(stage(Maneuver::kTakeImmediateExitNormal), 0);
  EXPECT_EQ(stage(Maneuver::kAidedStop), 5);
}

TEST(Types, ShortNames) {
  EXPECT_STREQ(short_name(Maneuver::kTakeImmediateExitEscorted), "TIE-E");
  EXPECT_STREQ(short_name(Maneuver::kGentleStop), "GS");
  EXPECT_STREQ(short_name(Maneuver::kAidedStop), "AS");
}

TEST(Types, AllFailureModesCovered) {
  EXPECT_EQ(failure_mode_table().size(), kNumFailureModes);
  for (std::size_t i = 0; i < kNumFailureModes; ++i)
    EXPECT_EQ(static_cast<std::size_t>(failure_mode_table()[i].mode), i);
}

}  // namespace
