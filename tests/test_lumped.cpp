// Lumped-CTMC model tests: construction, severity bookkeeping, and the
// qualitative laws the paper's evaluation section rests on (monotonicity in
// t, λ, n; strategy ordering; MTTU consistency).
#include <gtest/gtest.h>

#include "ahs/lumped.h"

namespace {

using namespace ahs;

Parameters base(double lambda = 1e-4, int n = 4) {
  Parameters p;
  p.max_per_platoon = n;
  p.base_failure_rate = lambda;
  return p;
}

TEST(LumpedState, SeverityClassesByStage) {
  LumpedState s;
  s.maneuvers = {1, 1, 0, 0, 0, 1};  // TIE-N, TIE, AS
  const SeverityCounts c = s.severity();
  EXPECT_EQ(c.a, 1);
  EXPECT_EQ(c.b, 1);
  EXPECT_EQ(c.c, 1);
}

TEST(LumpedState, Accounting) {
  LumpedState s;
  s.lanes[0] = 3;
  s.lanes[1] = 2;
  s.nt = 1;
  s.maneuvers = {0, 2, 0, 0, 0, 0};
  EXPECT_EQ(s.vehicles(), 6);
  EXPECT_EQ(s.maneuvering(), 2);
  EXPECT_EQ(s.healthy(), 4);
}

TEST(LumpedModel, BuildsFiniteSafeStateSpace) {
  LumpedModel m(base());
  EXPECT_GT(m.num_states(), 10u);
  EXPECT_LT(m.num_states(), 200000u);
  // Every non-absorbing state must be safe and within bounds.
  for (std::uint32_t s = 0; s + 1 < m.num_states(); ++s) {
    const LumpedState& st = m.state(s);
    EXPECT_FALSE(is_catastrophic(st.severity()));
    EXPECT_LE(st.lanes[0], 4);
    EXPECT_LE(st.lanes[1], 4);
    EXPECT_LE(st.nt, m.parameters().max_transit);
    EXPECT_GE(st.healthy(), 0);
  }
}

TEST(LumpedModel, UnsafeStateIsAbsorbing) {
  LumpedModel m(base());
  const auto& chain = m.chain();
  EXPECT_DOUBLE_EQ(chain.exit_rate[m.unsafe_state()], 0.0);
}

TEST(LumpedModel, UnsafetyIsMonotoneInTime) {
  LumpedModel m(base());
  const std::vector<double> ts = {1, 2, 4, 6, 8, 10};
  const auto s = m.unsafety(ts);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_GE(s[i], s[i - 1]) << "absorbing probability must not decrease";
    EXPECT_GT(s[i], 0.0);
    EXPECT_LT(s[i], 1.0);
  }
}

TEST(LumpedModel, UnsafetyIsMonotoneInLambda) {
  const std::vector<double> ts = {6};
  double prev = 0.0;
  for (double lam : {1e-5, 1e-4, 1e-3}) {
    LumpedModel m(base(lam));
    const double s = m.unsafety(ts)[0];
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(LumpedModel, LambdaScalingIsRoughlyQuadratic) {
  // Catastrophe needs >= 2 concurrent failures, so S scales ≈ λ² at small
  // λ (the paper reports ×175 and ×40 per decade around this).
  const std::vector<double> ts = {6};
  const double s5 = LumpedModel(base(1e-5)).unsafety(ts)[0];
  const double s4 = LumpedModel(base(1e-4)).unsafety(ts)[0];
  const double ratio = s4 / s5;
  EXPECT_GT(ratio, 30.0);
  EXPECT_LT(ratio, 300.0);
}

TEST(LumpedModel, UnsafetyIsMonotoneInPlatoonSize) {
  const std::vector<double> ts = {10};
  double prev = 0.0;
  for (int n : {2, 4, 6, 8}) {
    LumpedModel m(base(1e-4, n));
    const double s = m.unsafety(ts)[0];
    EXPECT_GT(s, prev) << "n=" << n;
    prev = s;
  }
}

TEST(LumpedModel, StrategyOrderingMatchesFig14) {
  // DD safest; inter-platoon choice dominates the intra-platoon choice;
  // overall impact small (same order of magnitude).
  const std::vector<double> ts = {6};
  Parameters p = base(1e-4, 6);
  std::array<double, 4> s{};
  for (std::size_t i = 0; i < kAllStrategies.size(); ++i) {
    p.strategy = kAllStrategies[i];
    s[i] = LumpedModel(p).unsafety(ts)[0];
  }
  const double dd = s[0], dc = s[1], cd = s[2], cc = s[3];
  EXPECT_LT(dd, dc);
  EXPECT_LT(dd, cd);
  EXPECT_LT(dc, cc);
  EXPECT_LT(cd, cc);
  EXPECT_GT(cd - dd, dc - dd) << "inter-platoon impact must dominate";
  EXPECT_LT(cc / dd, 10.0) << "strategy impact stays within one order";
}

TEST(LumpedModel, MttuConsistentWithHazardSlope) {
  // S(t) ≈ t/MTTU for t << MTTU.
  LumpedModel m(base(1e-4));
  const std::vector<double> ts = {5, 10};
  const auto s = m.unsafety(ts);
  const double slope = (s[1] - s[0]) / 5.0;
  const double mttu = m.mean_time_to_unsafe();
  EXPECT_NEAR(slope * mttu, 1.0, 0.05);
}

TEST(LumpedModel, ExpectedVehiclesStaysNearCapacity) {
  LumpedModel m(base(1e-5, 4));
  const std::vector<double> ts = {1, 10};
  const auto v = m.expected_vehicles(ts);
  // join 12/h vs leave 8/h: the system hovers close to full (8 vehicles).
  for (double x : v) {
    EXPECT_GT(x, 5.0);
    EXPECT_LE(x, 8.5);
  }
}

TEST(LumpedModel, DisabledFailureModesReduceUnsafety) {
  const std::vector<double> ts = {6};
  Parameters all = base(1e-4);
  Parameters only_a = base(1e-4);
  only_a.failure_mode_enabled = {true, true, true, false, false, false};
  const double s_all = LumpedModel(all).unsafety(ts)[0];
  const double s_a = LumpedModel(only_a).unsafety(ts)[0];
  EXPECT_LT(s_a, s_all);
  EXPECT_GT(s_a, 0.0);
}

TEST(LumpedModel, HigherQIntrinsicIsSafer) {
  const std::vector<double> ts = {6};
  Parameters lo = base(1e-4);
  lo.q_intrinsic = 0.8;
  Parameters hi = base(1e-4);
  hi.q_intrinsic = 1.0;
  EXPECT_GT(LumpedModel(lo).unsafety(ts)[0],
            LumpedModel(hi).unsafety(ts)[0]);
}

TEST(LumpedModel, FasterManeuversAreSafer) {
  // Shorter exposure windows -> less overlap -> lower unsafety.
  const std::vector<double> ts = {6};
  Parameters slow = base(1e-4);
  slow.maneuver_rates = {15, 15, 15, 15, 15, 15};
  Parameters fast = base(1e-4);
  fast.maneuver_rates = {30, 30, 30, 30, 30, 30};
  EXPECT_GT(LumpedModel(slow).unsafety(ts)[0],
            LumpedModel(fast).unsafety(ts)[0]);
}

// Parameterized sweep: S(t) stays a valid probability and monotone in t
// across the (λ, n, strategy) grid.
struct GridParam {
  double lambda;
  int n;
  Strategy strategy;
};

class LumpedGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(LumpedGrid, ValidMonotoneCurves) {
  const GridParam g = GetParam();
  Parameters p = base(g.lambda, g.n);
  p.strategy = g.strategy;
  LumpedModel m(p);
  const std::vector<double> ts = {2, 6, 10};
  const auto s = m.unsafety(ts);
  double prev = 0.0;
  for (double x : s) {
    EXPECT_GE(x, prev);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    prev = x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LumpedGrid,
    ::testing::Values(GridParam{1e-5, 2, Strategy::kDD},
                      GridParam{1e-5, 4, Strategy::kCC},
                      GridParam{1e-4, 3, Strategy::kDC},
                      GridParam{1e-3, 2, Strategy::kCD},
                      GridParam{1e-2, 2, Strategy::kDD},
                      GridParam{1e-4, 6, Strategy::kCC}));

}  // namespace

namespace {

TEST(LumpedModel, ExpectedManeuverHoursMatchesFlowBalance) {
  // In quasi-steady state, maneuver-hours accumulate at rate
  // E[#maneuvering] ≈ (healthy · Σλ_i) / μ_eff per hour; cross-check the
  // interval-of-time solver against that first-order estimate.
  Parameters p;
  p.max_per_platoon = 3;
  p.base_failure_rate = 1e-3;
  LumpedModel m(p);
  const double t = 10.0;
  const double hours = m.expected_maneuver_hours(t);
  EXPECT_GT(hours, 0.0);
  // Arrival of maneuvers: ~6 vehicles x 14λ = 0.084/h; each lasts ~1/25 h
  // (but escalations stretch it) => occupancy ~3.4e-3; over 10 h ~3.4e-2.
  EXPECT_NEAR(hours, 6 * 14 * 1e-3 / 25.0 * t, 0.6 * hours);
  // And it must grow with the horizon.
  EXPECT_GT(m.expected_maneuver_hours(2 * t), hours * 1.5);
}

}  // namespace
