// Discrete-event executor tests: enabling semantics, instantaneous
// stabilization with priorities, case selection, run_until boundaries, and
// statistical agreement with closed-form CTMC results.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "san/composition.h"
#include "sim/executor.h"
#include "sim/trace.h"
#include "util/error.h"

namespace {

// Two-state cycle: up --(rate a)--> down --(rate b)--> up.
std::shared_ptr<san::AtomicModel> flipflop(double a, double b) {
  auto m = std::make_shared<san::AtomicModel>("ff");
  const auto up = m->place("up", 1);
  const auto down = m->place("down");
  m->timed_activity("fall")
      .distribution(util::Distribution::Exponential(a))
      .input_arc(up)
      .output_arc(down);
  m->timed_activity("rise")
      .distribution(util::Distribution::Exponential(b))
      .input_arc(down)
      .output_arc(up);
  return m;
}

TEST(Executor, AlternatesStates) {
  const auto flat = san::flatten(flipflop(1.0, 1.0));
  sim::Executor exec(flat, util::Rng(5));
  const auto up_off = flat.place_offset(flat.place_index("up"));
  int last = exec.marking()[up_off];
  EXPECT_EQ(last, 1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(exec.step());
    const int now = exec.marking()[up_off];
    EXPECT_NE(now, last);
    last = now;
  }
  EXPECT_EQ(exec.events(), 50u);
  EXPECT_GT(exec.time(), 0.0);
}

TEST(Executor, TimeIsMonotone) {
  const auto flat = san::flatten(flipflop(3.0, 0.5));
  sim::Executor exec(flat, util::Rng(8));
  double prev = 0.0;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(exec.step());
    EXPECT_GT(exec.time(), prev);
    prev = exec.time();
  }
}

TEST(Executor, RunUntilStopsAtBoundary) {
  const auto flat = san::flatten(flipflop(10.0, 10.0));
  sim::Executor exec(flat, util::Rng(3));
  exec.run_until(5.0);
  EXPECT_LE(exec.time(), 5.0);
  const auto next = exec.next_completion_time();
  ASSERT_TRUE(next.has_value());
  EXPECT_GT(*next, 5.0);
}

TEST(Executor, DeadModelStops) {
  auto m = std::make_shared<san::AtomicModel>("dead");
  const auto p = m->place("p", 1);
  m->timed_activity("once")
      .distribution(util::Distribution::Exponential(2.0))
      .input_arc(p);
  const auto flat = san::flatten(m);
  sim::Executor exec(flat, util::Rng(1));
  EXPECT_TRUE(exec.step());
  EXPECT_FALSE(exec.step());
  EXPECT_FALSE(exec.next_completion_time().has_value());
}

TEST(Executor, ResetRestoresInitialMarking) {
  const auto flat = san::flatten(flipflop(1.0, 1.0));
  sim::Executor exec(flat, util::Rng(5));
  exec.run_until(10.0);
  exec.reset();
  EXPECT_DOUBLE_EQ(exec.time(), 0.0);
  EXPECT_EQ(exec.events(), 0u);
  const auto up_off = flat.place_offset(flat.place_index("up"));
  EXPECT_EQ(exec.marking()[up_off], 1);
}

TEST(Executor, InstantaneousPriorityOrder) {
  // Two instantaneous activities compete for one token; the higher
  // priority one must win.
  auto m = std::make_shared<san::AtomicModel>("prio");
  const auto src = m->place("src", 1);
  const auto lo = m->place("lo");
  const auto hi = m->place("hi");
  m->instant_activity("low").priority(1).input_arc(src).output_arc(lo);
  m->instant_activity("high").priority(2).input_arc(src).output_arc(hi);
  const auto flat = san::flatten(m);
  sim::Executor exec(flat, util::Rng(1));
  EXPECT_EQ(exec.marking()[flat.place_offset(flat.place_index("hi"))], 1);
  EXPECT_EQ(exec.marking()[flat.place_offset(flat.place_index("lo"))], 0);
}

TEST(Executor, InstantaneousChainStabilizes) {
  // a -> b -> c through two instantaneous activities at construction time.
  auto m = std::make_shared<san::AtomicModel>("chain");
  const auto a = m->place("a", 1);
  const auto b = m->place("b");
  const auto c = m->place("c");
  m->instant_activity("ab").input_arc(a).output_arc(b);
  m->instant_activity("bc").input_arc(b).output_arc(c);
  const auto flat = san::flatten(m);
  sim::Executor exec(flat, util::Rng(1));
  EXPECT_EQ(exec.marking()[flat.place_offset(flat.place_index("c"))], 1);
}

TEST(Executor, InstantaneousLoopDetected) {
  auto m = std::make_shared<san::AtomicModel>("loop");
  const auto a = m->place("a", 1);
  const auto b = m->place("b");
  m->instant_activity("ab").input_arc(a).output_arc(b);
  m->instant_activity("ba").input_arc(b).output_arc(a);
  const auto flat = san::flatten(m);
  sim::Executor::Options opts;
  opts.max_instant_firings = 100;
  EXPECT_THROW(sim::Executor(flat, util::Rng(1), opts), util::ModelError);
}

TEST(Executor, CaseProbabilitiesRespected) {
  // One timed activity with a 20/80 case split into two sinks.
  auto m = std::make_shared<san::AtomicModel>("cases");
  const auto src = m->place("src", 1);
  const auto left = m->place("left");
  const auto right = m->place("right");
  auto act = m->timed_activity("t").distribution(
      util::Distribution::Exponential(1.0));
  act.input_arc(src);
  act.add_case(0.2);
  act.add_case(0.8);
  act.output_arc(left, 1, 0);
  act.output_arc(right, 1, 1);
  act.output_arc(src, 1, 0);  // recycle so the activity keeps firing
  act.output_arc(src, 1, 1);
  const auto flat = san::flatten(m);
  sim::Executor exec(flat, util::Rng(17));
  for (int i = 0; i < 20000; ++i) ASSERT_TRUE(exec.step());
  const double l =
      exec.marking()[flat.place_offset(flat.place_index("left"))];
  EXPECT_NEAR(l / 20000.0, 0.2, 0.01);
}

TEST(Executor, MarkingDependentRate) {
  // Death process: rate proportional to population; verify mean extinction
  // time of N=3 at unit per-capita rate: E[T] = 1/3 + 1/2 + 1 = 11/6.
  auto m = std::make_shared<san::AtomicModel>("death");
  const auto pop = m->place("pop", 3);
  m->timed_activity("die")
      .marking_rate([pop](const san::MarkingRef& ref) {
        return static_cast<double>(ref.get(pop));
      })
      .input_gate([pop](const san::MarkingRef& ref) {
        return ref.get(pop) > 0;
      })
      .input_arc(pop);
  const auto flat = san::flatten(m);
  util::Rng master(99);
  double sum = 0.0;
  const int reps = 20000;
  sim::Executor exec(flat, master);
  for (int r = 0; r < reps; ++r) {
    exec.reset(master.split(r));
    while (exec.step()) {
    }
    sum += exec.time();
  }
  EXPECT_NEAR(sum / reps, 11.0 / 6.0, 0.03);
}

TEST(Executor, TraceRecorderCountsSources) {
  const auto flat = san::flatten(flipflop(1.0, 1.0));
  sim::Executor exec(flat, util::Rng(5));
  sim::TraceRecorder trace(exec, flat);
  for (int i = 0; i < 10; ++i) exec.step();
  EXPECT_EQ(trace.events().size(), 10u);
  EXPECT_EQ(trace.count_source("fall"), 5u);
  EXPECT_EQ(trace.count_source("rise"), 5u);
}

TEST(Executor, SoAViewMatchesCheckedPathBitwise) {
  // The per-event fast paths read the flattened SoA model view
  // (enabled_fast/rate_fast); with check_dependencies on, the executor
  // takes the access-logged slow paths over the original FlatActivity
  // structs instead.  Both must produce bitwise-identical trajectories on a
  // model that exercises every view lane: fixed rates, marking-dependent
  // rates, input gates, multi-case completions, and instantaneous
  // stabilization.
  auto m = std::make_shared<san::AtomicModel>("soa");
  const auto pool_p = m->place("pool", 4);
  const auto stage = m->place("stage");
  const auto left = m->place("left");
  const auto right = m->place("right");
  m->timed_activity("feed")
      .marking_rate([pool_p](const san::MarkingRef& ref) {
        return 0.5 + static_cast<double>(ref.get(pool_p));
      })
      .input_gate([pool_p](const san::MarkingRef& ref) {
        return ref.get(pool_p) > 0;
      })
      .input_arc(pool_p)
      .output_arc(stage);
  auto split = m->timed_activity("split").distribution(
      util::Distribution::Exponential(2.0));
  split.input_arc(stage);
  split.add_case(0.3);
  split.add_case(0.7);
  split.output_arc(left, 1, 0);
  split.output_arc(right, 1, 1);
  m->instant_activity("recycle")
      .input_gate([left](const san::MarkingRef& ref) {
        return ref.get(left) >= 2;
      })
      .input_arc(left, 2)
      .output_arc(pool_p);
  const auto flat = san::flatten(m);

  sim::Executor::Options fast_opts;
  sim::Executor::Options checked_opts;
  checked_opts.check_dependencies = true;
  sim::Executor fast(flat, util::Rng(31), fast_opts);
  sim::Executor checked(flat, util::Rng(31), checked_opts);

  std::vector<std::pair<std::size_t, std::size_t>> fast_fires, checked_fires;
  fast.on_fire = [&](std::size_t ai, std::size_t ci) {
    fast_fires.emplace_back(ai, ci);
  };
  checked.on_fire = [&](std::size_t ai, std::size_t ci) {
    checked_fires.emplace_back(ai, ci);
  };

  while (fast.step()) {
    ASSERT_TRUE(checked.step());
    ASSERT_EQ(fast.time(), checked.time());  // bitwise, not a tolerance
    const auto fm = fast.marking();
    const auto cm = checked.marking();
    ASSERT_EQ(fm.size(), cm.size());
    for (std::size_t i = 0; i < fm.size(); ++i) ASSERT_EQ(fm[i], cm[i]);
  }
  EXPECT_FALSE(checked.step());
  EXPECT_EQ(fast_fires, checked_fires);
  EXPECT_GT(fast.events(), 0u);
}

TEST(Executor, StopPredicateHaltsRun) {
  const auto flat = san::flatten(flipflop(5.0, 5.0));
  sim::Executor exec(flat, util::Rng(2));
  int events = 0;
  exec.run_until(1000.0, [&] { return ++events >= 7; });
  EXPECT_EQ(exec.events(), 7u);
}

}  // namespace
