// Cross-solver certification for the transient engines (docs/PERFORMANCE.md
// "Iteration counts"): the standard, adaptive, and Krylov solvers must agree
// on expected rewards; the adaptive shortcuts (quasi-stationary plateau
// extrapolation, support-based rate ramp, sweep warm starts) must actually
// cut iteration counts while staying inside tolerance; and every new engine
// must stay bitwise independent of the thread-pool size.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "ctmc/chain.h"
#include "ctmc/expmv.h"
#include "ctmc/sparse.h"
#include "ctmc/uniformization.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace {

using ctmc::CsrMatrix;
using ctmc::MarkovChain;
using ctmc::TransientSolver;
using ctmc::UniformizationOptions;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// A random sparse chain: a cycle backbone (so every state is reachable)
/// plus extra random edges, rates in [0.2, 2.5].
MarkovChain random_chain(std::mt19937& rng, std::uint32_t n) {
  std::uniform_real_distribution<double> rate(0.2, 2.5);
  std::uniform_int_distribution<std::uint32_t> state(0, n - 1);
  std::vector<ctmc::Triplet> triplets;
  for (std::uint32_t i = 0; i < n; ++i)
    triplets.push_back({i, (i + 1) % n, rate(rng)});
  for (std::uint32_t e = 0; e < 2 * n; ++e) {
    const std::uint32_t from = state(rng), to = state(rng);
    if (from != to) triplets.push_back({from, to, rate(rng)});
  }
  MarkovChain c;
  c.num_states = n;
  c.rates = CsrMatrix::from_triplets(n, n, triplets);
  c.exit_rate.assign(n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) c.exit_rate[i] = c.rates.row_sum(i);
  c.initial.assign(n, 0.0);
  c.initial[0] = 1.0;
  return c;
}

std::vector<double> random_reward(std::mt19937& rng, std::uint32_t n) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<double> r(n);
  for (double& x : r) x = u(rng);
  return r;
}

/// Fast 0↔1 churn with a slow leak to an absorbing state 2 — the shape
/// behind every figure workload: mixing completes early, then thousands of
/// DTMC steps integrate a constant absorption flux.  This is the regime the
/// quasi-stationary extrapolation exists for.
MarkovChain churn_with_leak(double churn, double leak) {
  MarkovChain c;
  c.num_states = 3;
  c.rates = CsrMatrix::from_triplets(
      3, 3, {{0, 1, churn}, {1, 0, churn}, {0, 2, leak}});
  c.exit_rate = {churn + leak, churn, 0.0};
  c.initial = {1.0, 0.0, 0.0};
  return c;
}

TEST(CrossSolver, RandomChainsAgreeAcrossAllThreeEngines) {
  std::mt19937 rng(20260807);
  const std::vector<double> times = {0.4, 1.1, 2.7};
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint32_t n = 6 + 3 * static_cast<std::uint32_t>(trial);
    const MarkovChain chain = random_chain(rng, n);
    const std::vector<double> reward = random_reward(rng, n);

    UniformizationOptions std_opts;
    const auto std_sol = ctmc::solve_transient(chain, reward, times, std_opts);

    UniformizationOptions ad_opts;
    ad_opts.solver = TransientSolver::kAdaptive;
    const auto ad_sol = ctmc::solve_transient(chain, reward, times, ad_opts);

    UniformizationOptions kr_opts;
    kr_opts.solver = TransientSolver::kKrylov;
    kr_opts.krylov_tol = 1e-12;
    const auto kr_sol = ctmc::solve_transient(chain, reward, times, kr_opts);

    for (std::size_t i = 0; i < times.size(); ++i) {
      EXPECT_NEAR(ad_sol.expected_reward[i], std_sol.expected_reward[i],
                  1e-10)
          << "trial " << trial << " t=" << times[i];
      EXPECT_NEAR(kr_sol.expected_reward[i], std_sol.expected_reward[i], 1e-8)
          << "trial " << trial << " t=" << times[i];
    }
  }
}

TEST(CrossSolver, AdaptiveAndKrylovAreBitwisePoolIndependent) {
  std::mt19937 rng(7);
  const MarkovChain chain = random_chain(rng, 24);
  const std::vector<double> reward = random_reward(rng, 24);
  const std::vector<double> times = {0.5, 2.0};
  util::ThreadPool pool(8);

  for (const TransientSolver solver :
       {TransientSolver::kAdaptive, TransientSolver::kKrylov}) {
    UniformizationOptions seq;
    seq.solver = solver;
    UniformizationOptions par = seq;
    par.pool = &pool;
    const auto a = ctmc::solve_transient(chain, reward, times, seq);
    const auto b = ctmc::solve_transient(chain, reward, times, par);
    ASSERT_EQ(a.expected_reward.size(), b.expected_reward.size());
    for (std::size_t i = 0; i < a.expected_reward.size(); ++i)
      EXPECT_EQ(bits(a.expected_reward[i]), bits(b.expected_reward[i]))
          << ctmc::to_string(solver) << " t-index " << i;
    for (std::size_t i = 0; i < a.distributions.size(); ++i)
      for (std::size_t s = 0; s < a.distributions[i].size(); ++s)
        EXPECT_EQ(bits(a.distributions[i][s]), bits(b.distributions[i][s]))
            << ctmc::to_string(solver) << " state " << s;
  }
}

TEST(Adaptive, QsExtrapolationMatchesStandardWithFewerIterations) {
  const MarkovChain chain = churn_with_leak(60.0, 1e-7);
  const std::vector<double> reward = {0.0, 0.0, 1.0};
  const std::vector<double> times = {20.0};

  UniformizationOptions std_opts;
  std_opts.epsilon = 1e-14;
  std_opts.steady_state_tol = 0.0;  // force the full window
  const auto std_sol = ctmc::solve_transient(chain, reward, times, std_opts);

  UniformizationOptions ad_opts = std_opts;
  ad_opts.solver = TransientSolver::kAdaptive;
  const auto ad_sol = ctmc::solve_transient(chain, reward, times, ad_opts);

  EXPECT_GE(ad_sol.qs_extrapolations, 1u);
  EXPECT_LT(ad_sol.total_iterations, std_sol.total_iterations / 2)
      << "extrapolation should cut the plateau tail";
  // The plateau closure is a geometric-series identity, not an
  // approximation of a decaying signal; agreement is near machine level.
  EXPECT_NEAR(ad_sol.expected_reward[0], std_sol.expected_reward[0],
              1e-12 + 1e-8 * std_sol.expected_reward[0]);
}

TEST(Adaptive, RateRampFiresOnSlowSupportGrowth) {
  // Pure-birth chain whose initial support sits in a slow zone (rate 1)
  // with a fast zone (rate 2000) forty jumps away: the global
  // uniformization rate is 2000, but probability mass cannot outrun its
  // jump count, so the support-based ramp runs the head of the interval at
  // the local rate and saves thousands of products.
  const int m = 64;
  std::vector<ctmc::Triplet> triplets;
  MarkovChain c;
  c.num_states = m;
  c.exit_rate.assign(m, 0.0);
  for (int i = 0; i + 1 < m; ++i) {
    const double r = i < 40 ? 1.0 : 2000.0;
    triplets.push_back({static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(i + 1), r});
    c.exit_rate[i] = r;
  }
  c.rates = CsrMatrix::from_triplets(m, m, triplets);
  c.initial.assign(m, 0.0);
  c.initial[0] = 1.0;

  std::vector<double> reward(m);
  for (int i = 0; i < m; ++i) reward[i] = static_cast<double>(i) / m;
  const std::vector<double> times = {5.0};

  UniformizationOptions std_opts;
  std_opts.epsilon = 1e-14;
  const auto std_sol = ctmc::solve_transient(c, reward, times, std_opts);

  UniformizationOptions ad_opts = std_opts;
  ad_opts.solver = TransientSolver::kAdaptive;
  const auto ad_sol = ctmc::solve_transient(c, reward, times, ad_opts);

  EXPECT_GE(ad_sol.ramp_segments, 1u);
  EXPECT_LT(ad_sol.total_iterations, std_sol.total_iterations);
  EXPECT_NEAR(ad_sol.expected_reward[0], std_sol.expected_reward[0], 1e-10);
}

TEST(Adaptive, WarmStartCutsConfirmationAndStaysDeterministic) {
  const MarkovChain chain = churn_with_leak(60.0, 1e-7);
  const std::vector<double> reward = {0.0, 0.0, 1.0};
  const std::vector<double> times = {20.0};

  ctmc::WarmStartCache cache;
  UniformizationOptions cold;
  cold.solver = TransientSolver::kAdaptive;
  cold.epsilon = 1e-14;
  cold.steady_state_tol = 0.0;
  cold.warm_cache = &cache;
  cold.warm_key = 0x5eedull;
  cold.warm_publish = true;
  const auto cold_sol = ctmc::solve_transient(chain, reward, times, cold);
  EXPECT_GE(cold_sol.qs_extrapolations, 1u);
  EXPECT_EQ(cache.misses(), 1u);

  UniformizationOptions warm = cold;
  warm.warm_publish = false;
  const auto warm_sol = ctmc::solve_transient(chain, reward, times, warm);
  EXPECT_TRUE(warm_sol.warm_start_hit);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_LT(warm_sol.total_iterations, cold_sol.total_iterations)
      << "warm confirmation must be shorter than the cold lookback";
  EXPECT_NEAR(warm_sol.expected_reward[0], cold_sol.expected_reward[0],
              1e-12 + 1e-8 * cold_sol.expected_reward[0]);

  // Same cache state, same options → bitwise repeatable.
  const auto again = ctmc::solve_transient(chain, reward, times, warm);
  EXPECT_EQ(bits(again.expected_reward[0]), bits(warm_sol.expected_reward[0]));
  EXPECT_EQ(again.total_iterations, warm_sol.total_iterations);
}

TEST(Krylov, TolFloorFlaggedOnImpossibleTail) {
  // The satellite bug: the Krylov local-error estimator measures subspace
  // truncation only, so a 1e-12 tail certification on a stiff solve
  // (‖Qᵀ‖·t ≈ 2e4 here → round-off floor ≈ 1.8e-11) used to pass silently
  // while carrying O(floor) round-off.  The solver must flag it.
  const MarkovChain chain = churn_with_leak(1e3, 1e-7);
  const std::vector<double> reward = {0.0, 0.0, 1.0};
  const std::vector<double> times = {10.0};

  UniformizationOptions opts;
  opts.solver = TransientSolver::kKrylov;
  opts.krylov_tol = 1e-12;

  util::TelemetrySession session;
  std::vector<std::string> lines;
  util::set_log_sink([&lines](const std::string& line) {
    lines.push_back(line);
  });
  const auto sol = ctmc::solve_transient(chain, reward, times, opts);
  util::set_log_sink(nullptr);

  const double anorm = 2.0 * chain.max_exit_rate();
  const double floor = ctmc::expmv_tol_floor(anorm, times[0]);
  ASSERT_GT(floor, opts.krylov_tol) << "fixture must sit below the floor";
  EXPECT_TRUE(sol.tol_floor_hit);
  EXPECT_EQ(bits(sol.achievable_tol), bits(floor));

  const auto snap = session.registry().snapshot();
  EXPECT_EQ(snap.counters.at("ctmc.expmv.tol_floor_hits"), 1u);
  EXPECT_EQ(bits(snap.gauges.at("ctmc.expmv.tol_floor")), bits(floor));
  bool warned = false;
  for (const auto& line : lines)
    warned = warned || line.find("round-off floor") != std::string::npos;
  EXPECT_TRUE(warned);

  // The detection must not change the numbers: the same solve without the
  // flag wiring observable (tolerance above the floor) and a reference
  // uniformization run still agree, and a request *above* the floor is not
  // flagged.
  UniformizationOptions honest = opts;
  honest.krylov_tol = 1e-9;
  const auto ok = ctmc::solve_transient(chain, reward, times, honest);
  EXPECT_FALSE(ok.tol_floor_hit);
  EXPECT_EQ(bits(ok.achievable_tol), bits(0.0));

  const auto ref = ctmc::solve_transient(chain, reward, times);
  EXPECT_NEAR(sol.expected_reward[0], ref.expected_reward[0], 1e-8);
}

TEST(Krylov, TolFloorFormula) {
  constexpr double kEps = 2.220446049250313e-16;
  // Below anorm·t = 1 the floor bottoms out at 4ε.
  EXPECT_EQ(bits(ctmc::expmv_tol_floor(0.0, 5.0)), bits(4.0 * kEps));
  EXPECT_EQ(bits(ctmc::expmv_tol_floor(0.5, 1.0)), bits(4.0 * kEps));
  // Above it the floor scales with the horizon.
  EXPECT_EQ(bits(ctmc::expmv_tol_floor(2000.0, 10.0)),
            bits(4.0 * kEps * 20000.0));
  EXPECT_GT(ctmc::expmv_tol_floor(2000.0, 20.0),
            ctmc::expmv_tol_floor(2000.0, 10.0));
}

TEST(SolverTelemetry, SteadyCutoffCounterFiresInBothSolvers) {
  // Two-state flip-flop far past its relaxation time: both the transient
  // and the accumulated stepper must latch the steady state and report it
  // under ctmc.uniformization.steady_cutoffs.
  MarkovChain chain;
  chain.num_states = 2;
  chain.rates = CsrMatrix::from_triplets(2, 2, {{0, 1, 3.0}, {1, 0, 1.0}});
  chain.exit_rate = {3.0, 1.0};
  chain.initial = {1.0, 0.0};
  const std::vector<double> reward = {0.0, 1.0};
  const std::vector<double> times = {200.0};

  util::TelemetrySession session;
  const auto t_sol = ctmc::solve_transient(chain, reward, times);
  const auto t_snap = session.registry().snapshot();
  const std::uint64_t after_transient =
      t_snap.counters.at("ctmc.uniformization.steady_cutoffs");
  EXPECT_GE(after_transient, 1u);
  EXPECT_NEAR(t_sol.expected_reward[0], 0.75, 1e-10);

  const auto a_sol = ctmc::solve_accumulated(chain, reward, times);
  const auto a_snap = session.registry().snapshot();
  EXPECT_GT(a_snap.counters.at("ctmc.uniformization.steady_cutoffs"),
            after_transient);
  // ∫₀²⁰⁰ P(state 1, u) du = 0.75·200 − (0.75/4)(1 − e⁻⁸⁰⁰).
  EXPECT_NEAR(a_sol.accumulated[0], 150.0 - 0.1875, 1e-6);
}

TEST(DenseExpm, MatchesClosedForms) {
  // Nilpotent: exp([[0,1],[0,0]]) = [[1,1],[0,1]].
  const auto nil = ctmc::dense_expm({0.0, 1.0, 0.0, 0.0}, 2);
  EXPECT_NEAR(nil[0], 1.0, 1e-14);
  EXPECT_NEAR(nil[1], 1.0, 1e-14);
  EXPECT_NEAR(nil[2], 0.0, 1e-14);
  EXPECT_NEAR(nil[3], 1.0, 1e-14);

  // Diagonal: exp(diag(ln 2, −1)) = diag(2, e⁻¹).
  const auto diag =
      ctmc::dense_expm({std::log(2.0), 0.0, 0.0, -1.0}, 2);
  EXPECT_NEAR(diag[0], 2.0, 1e-13);
  EXPECT_NEAR(diag[3], std::exp(-1.0), 1e-14);

  // Skew-symmetric: exp(θJ) is a rotation by θ — exercises the squaring
  // phase (‖A‖ > θ₁₃ for θ = 8).
  const double theta = 8.0;
  const auto rot = ctmc::dense_expm({0.0, theta, -theta, 0.0}, 2);
  EXPECT_NEAR(rot[0], std::cos(theta), 1e-12);
  EXPECT_NEAR(rot[1], std::sin(theta), 1e-12);
  EXPECT_NEAR(rot[2], -std::sin(theta), 1e-12);
  EXPECT_NEAR(rot[3], std::cos(theta), 1e-12);
}

}  // namespace
