// FlatModel semantics and error paths, plus executor bias-plan validation.
#include <gtest/gtest.h>

#include "san/composition.h"
#include "sim/executor.h"
#include "util/error.h"

namespace {

std::shared_ptr<san::AtomicModel> toy() {
  auto m = std::make_shared<san::AtomicModel>("toy");
  const auto a = m->place("a", 1);
  const auto b = m->place("b");
  m->timed_activity("t")
      .distribution(util::Distribution::Exponential(2.0))
      .input_arc(a)
      .output_arc(b);
  return m;
}

TEST(FlatModel, EnabledFollowsArcsAndGates) {
  auto m = std::make_shared<san::AtomicModel>("gates");
  const auto a = m->place("a", 1);
  const auto flag = m->place("flag");
  m->timed_activity("t")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(a)
      .input_gate([flag](const san::MarkingRef& r) {
        return r.get(flag) > 0;
      });
  const auto flat = san::flatten(m);
  auto mk = flat.initial_marking();
  EXPECT_FALSE(flat.enabled(0, mk));  // gate blocks
  mk[flat.place_offset(flat.place_index("flag"))] = 1;
  EXPECT_TRUE(flat.enabled(0, mk));
  mk[flat.place_offset(flat.place_index("a"))] = 0;
  EXPECT_FALSE(flat.enabled(0, mk));  // arc blocks
}

TEST(FlatModel, FireWithoutTokensThrows) {
  const auto flat = san::flatten(toy());
  auto mk = flat.initial_marking();
  mk[flat.place_offset(flat.place_index("a"))] = 0;
  EXPECT_THROW(flat.fire(0, 0, mk), util::ModelError);
}

TEST(FlatModel, ExponentialRateChecksKind) {
  auto m = std::make_shared<san::AtomicModel>("det");
  const auto p = m->place("p", 1);
  m->timed_activity("t")
      .distribution(util::Distribution::Deterministic(1.0))
      .input_arc(p);
  const auto flat = san::flatten(m);
  auto mk = flat.initial_marking();
  EXPECT_THROW(flat.exponential_rate(0, mk), util::ModelError);
  EXPECT_FALSE(flat.all_exponential());
}

TEST(FlatModel, MarkingDependentRateValidated) {
  auto m = std::make_shared<san::AtomicModel>("bad");
  const auto p = m->place("p", 1);
  m->timed_activity("t")
      .marking_rate([](const san::MarkingRef&) { return 0.0; })
      .input_arc(p);
  const auto flat = san::flatten(m);
  auto mk = flat.initial_marking();
  EXPECT_THROW(flat.exponential_rate(0, mk), util::ModelError);
}

TEST(FlatModel, NegativeCaseWeightRejectedAtEvaluation) {
  auto m = std::make_shared<san::AtomicModel>("neg");
  const auto p = m->place("p", 1);
  auto act = m->timed_activity("t").distribution(
      util::Distribution::Exponential(1.0));
  act.input_arc(p);
  act.add_case([](const san::MarkingRef&) { return -1.0; });
  act.add_case(1.0);
  const auto flat = san::flatten(m);
  auto mk = flat.initial_marking();
  EXPECT_THROW(flat.case_weights(0, mk), util::ModelError);
}

TEST(FlatModel, MarkingRefBoundsChecked) {
  auto m = std::make_shared<san::AtomicModel>("bounds");
  const auto arr = m->extended_place("arr", 3);
  m->timed_activity("t")
      .distribution(util::Distribution::Exponential(1.0))
      .input_gate([arr](const san::MarkingRef& r) {
        return r.get(arr, 7) > 0;  // out of range on purpose
      });
  const auto flat = san::flatten(m);
  auto mk = flat.initial_marking();
  EXPECT_THROW(flat.enabled(0, mk), util::PreconditionError);
}

TEST(FlatModel, InitialMarkingMatchesDeclarations) {
  auto m = std::make_shared<san::AtomicModel>("init");
  m->place("x", 3);
  m->extended_place("y", 4, 2);
  const auto flat = san::flatten(m);
  const auto mk = flat.initial_marking();
  EXPECT_EQ(mk[flat.place_offset(flat.place_index("x"))], 3);
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(mk[flat.place_offset(flat.place_index("y")) + i], 2);
}

TEST(ExecutorBias, RequiresExponentialModel) {
  auto m = std::make_shared<san::AtomicModel>("det");
  const auto p = m->place("p", 1);
  m->timed_activity("t")
      .distribution(util::Distribution::Deterministic(1.0))
      .input_arc(p);
  const auto flat = san::flatten(m);
  sim::BiasPlan bias;
  bias.boost = 10.0;
  bias.boosted = {"t"};
  sim::Executor::Options opts;
  opts.bias = &bias;
  EXPECT_THROW(sim::Executor(flat, util::Rng(1), opts),
               util::PreconditionError);
}

TEST(ExecutorBias, CaseBiasSizeValidated) {
  auto m = std::make_shared<san::AtomicModel>("cases");
  const auto p = m->place("p", 1);
  auto act = m->timed_activity("t").distribution(
      util::Distribution::Exponential(1.0));
  act.input_arc(p);
  act.add_case(0.5);
  act.add_case(0.5);
  const auto flat = san::flatten(m);
  sim::BiasPlan bias;
  bias.case_bias["t"] = {1.0};  // wrong arity
  sim::Executor::Options opts;
  opts.bias = &bias;
  EXPECT_THROW(sim::Executor(flat, util::Rng(1), opts),
               util::PreconditionError);
}

TEST(ExecutorBias, ZeroBoostRejected) {
  const auto flat = san::flatten(toy());
  sim::BiasPlan bias;
  bias.boost = 0.0;
  bias.boosted = {"t"};
  sim::Executor::Options opts;
  opts.bias = &bias;
  EXPECT_THROW(sim::Executor(flat, util::Rng(1), opts),
               util::PreconditionError);
}

TEST(ExecutorBias, InactivePlanRunsUnbiased) {
  const auto flat = san::flatten(toy());
  sim::BiasPlan bias;  // boost 1, nothing boosted: inactive
  sim::Executor::Options opts;
  opts.bias = &bias;
  sim::Executor exec(flat, util::Rng(1), opts);
  exec.step();
  EXPECT_DOUBLE_EQ(exec.likelihood_ratio(), 1.0);
}

}  // namespace
