// Reward-helper and Graphviz-export tests.
#include <gtest/gtest.h>

#include "san/composition.h"
#include "san/dot.h"
#include "san/rewards.h"
#include "util/error.h"

namespace {

std::shared_ptr<san::AtomicModel> small_model() {
  auto m = std::make_shared<san::AtomicModel>("small");
  const auto a = m->place("a", 2);
  const auto arr = m->extended_place("arr", 3, 1);
  m->timed_activity("t")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(a);
  (void)arr;
  return m;
}

TEST(Rewards, IndicatorNonzero) {
  const auto flat = san::flatten(small_model());
  const auto r = san::indicator_nonzero(flat, "a");
  auto m = flat.initial_marking();
  EXPECT_DOUBLE_EQ(r(m), 1.0);
  m[flat.place_offset(flat.place_index("a"))] = 0;
  EXPECT_DOUBLE_EQ(r(m), 0.0);
}

TEST(Rewards, PlaceValueAndTotal) {
  const auto flat = san::flatten(small_model());
  const auto m = flat.initial_marking();
  EXPECT_DOUBLE_EQ(san::place_value(flat, "a")(m), 2.0);
  EXPECT_DOUBLE_EQ(san::place_value(flat, "arr", 2)(m), 1.0);
  EXPECT_DOUBLE_EQ(san::place_total(flat, "arr")(m), 3.0);
  EXPECT_THROW(san::place_value(flat, "arr", 3), util::PreconditionError);
  EXPECT_THROW(san::place_value(flat, "nope"), util::ModelError);
}

TEST(Rewards, ReplicaTotalSumsAcrossReplicas) {
  const auto rep = san::Rep("r", san::Leaf(small_model()), 3, {});
  const auto flat = san::flatten(rep);
  const auto r = san::replica_total(flat, "a");
  EXPECT_DOUBLE_EQ(r(flat.initial_marking()), 6.0);
  EXPECT_THROW(san::replica_total(flat, "nope"), util::PreconditionError);
}

TEST(Dot, ExportsValidStructure) {
  const auto model = small_model();
  const std::string dot = san::to_dot(*model);
  EXPECT_NE(dot.find("digraph \"small\""), std::string::npos);
  EXPECT_NE(dot.find("arr[3]"), std::string::npos);  // extended place
  EXPECT_NE(dot.find("p0 -> a0"), std::string::npos);  // input arc
  EXPECT_EQ(dot.find("null"), std::string::npos);
}

TEST(Dot, ShowsCasesAndGates) {
  auto m = std::make_shared<san::AtomicModel>("cases");
  const auto p = m->place("p", 1);
  const auto q = m->place("q");
  auto act = m->timed_activity("t").distribution(
      util::Distribution::Exponential(1.0));
  act.input_gate([p](const san::MarkingRef& r) { return r.get(p) > 0; });
  act.add_case(0.5);
  act.add_case(0.5);
  act.output_arc(q, 1, 1);
  const std::string dot = san::to_dot(*m);
  EXPECT_NE(dot.find("case 1"), std::string::npos);
  EXPECT_NE(dot.find("gate"), std::string::npos);
}

}  // namespace
