// White-box tests of the One_vehicle gate logic, driving individual
// activities by hand through the FlatModel API:
//  * failure -> maneuver activation and severity accounting,
//  * priority: a higher-priority maneuver preempts a lower one, a lower
//    arrival is absorbed (§2.1.1/§2.1.2),
//  * escalation re-classes the severity contribution (Fig 2),
//  * coordination coupling: a faulty assistant zeroes the success case.
#include <gtest/gtest.h>

#include <string>

#include "ahs/system_model.h"
#include "sim/executor.h"

namespace {

using namespace ahs;

struct Rig {
  Parameters params;
  san::FlatModel flat;
  std::vector<std::int32_t> mk;

  explicit Rig(Parameters p) : params(p), flat(build_system_model(params)) {
    // Stabilize the initial configuration through a throwaway executor.
    sim::Executor exec(flat, util::Rng(1));
    mk.assign(exec.marking().begin(), exec.marking().end());
  }

  std::size_t activity(const std::string& hier_suffix) const {
    for (std::size_t i = 0; i < flat.activities().size(); ++i)
      if (flat.activities()[i].name.ends_with(hier_suffix)) return i;
    throw std::runtime_error("no activity " + hier_suffix);
  }

  int place(const std::string& suffix, std::uint32_t idx = 0) const {
    const auto pi = flat.place_index(suffix);
    return mk[flat.place_offset(pi) + idx];
  }

  void fire(const std::string& hier_suffix, std::size_t case_idx = 0) {
    const std::size_t ai = activity(hier_suffix);
    ASSERT_TRUE(flat.enabled(ai, mk)) << hier_suffix;
    flat.fire(ai, case_idx, mk);
  }

  std::vector<double> weights(const std::string& hier_suffix) {
    return flat.case_weights(activity(hier_suffix), mk);
  }

  /// Replica index (0-based) of the vehicle with id `vid`.
  static std::string veh(int vid, const std::string& rest) {
    return "vehicles[" + std::to_string(vid - 1) + "]/one_vehicle/" + rest;
  }
};

Parameters small() {
  Parameters p;
  p.max_per_platoon = 2;
  p.base_failure_rate = 1e-3;
  return p;
}

TEST(VehicleGates, FailureActivatesManeuverAndSeverity) {
  Rig rig(small());
  // FM6 (class C) on vehicle 1 -> TIE-N (stage 1).
  rig.fire(Rig::veh(1, "L6"));
  EXPECT_EQ(rig.place("vehicles[0]/one_vehicle/SM1"), 1);
  EXPECT_EQ(rig.place("class_C"), 1);
  EXPECT_EQ(rig.place("active_m", 0), 1);
  EXPECT_EQ(rig.place("vehicles[0]/one_vehicle/CC6"), 0);
  EXPECT_EQ(rig.place("KO_total"), 0);
}

TEST(VehicleGates, HigherPriorityPreemptsLower) {
  Rig rig(small());
  rig.fire(Rig::veh(1, "L6"));  // TIE-N active (stage 1, class C)
  rig.fire(Rig::veh(1, "L1"));  // FM1 -> AS (stage 6, class A) preempts
  EXPECT_EQ(rig.place("vehicles[0]/one_vehicle/SM1"), 0);
  EXPECT_EQ(rig.place("vehicles[0]/one_vehicle/SM6"), 1);
  EXPECT_EQ(rig.place("class_C"), 0);
  EXPECT_EQ(rig.place("class_A"), 1);
  EXPECT_EQ(rig.place("active_m", 0), 6);
}

TEST(VehicleGates, LowerPriorityArrivalIsAbsorbed) {
  Rig rig(small());
  rig.fire(Rig::veh(1, "L1"));  // AS active (stage 6)
  rig.fire(Rig::veh(1, "L6"));  // FM6 arrives -> absorbed
  EXPECT_EQ(rig.place("vehicles[0]/one_vehicle/SM6"), 1);
  EXPECT_EQ(rig.place("vehicles[0]/one_vehicle/SM1"), 0);
  EXPECT_EQ(rig.place("class_A"), 1);
  EXPECT_EQ(rig.place("class_C"), 0);
  // The consumed failure mode cannot re-fire.
  EXPECT_EQ(rig.place("vehicles[0]/one_vehicle/CC6"), 0);
}

TEST(VehicleGates, EscalationReclassesSeverity) {
  Rig rig(small());
  rig.fire(Rig::veh(1, "L4"));  // FM4 -> TIE-E (stage 3, class B)
  EXPECT_EQ(rig.place("class_B"), 1);
  // Maneuver fails (case 1): TIE-E -> GS (stage 4, class A).
  rig.fire(Rig::veh(1, "M3"), 1);
  EXPECT_EQ(rig.place("vehicles[0]/one_vehicle/SM3"), 0);
  EXPECT_EQ(rig.place("vehicles[0]/one_vehicle/SM4"), 1);
  EXPECT_EQ(rig.place("class_B"), 0);
  EXPECT_EQ(rig.place("class_A"), 1);
}

TEST(VehicleGates, SuccessRemovesVehicleAndFreesSlot) {
  Rig rig(small());
  rig.fire(Rig::veh(1, "L6"));
  const int out_before = rig.place("OUT");
  rig.fire(Rig::veh(1, "M1"), 0);  // TIE-N succeeds
  EXPECT_EQ(rig.place("vehicles[0]/one_vehicle/my_id"), 0);
  EXPECT_EQ(rig.place("class_C"), 0);
  EXPECT_EQ(rig.place("active_m", 0), 0);
  EXPECT_EQ(rig.place("OUT"), out_before + 1);
  EXPECT_EQ(rig.place("safe_exits"), 1);
  // Vehicle 1 must have left the platoon arrays.
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_NE(rig.place("platoons", i), 1);
}

TEST(VehicleGates, FailedAidedStopEjectsFreeAgent) {
  Rig rig(small());
  rig.fire(Rig::veh(1, "L1"));     // AS active
  rig.fire(Rig::veh(1, "M6"), 1);  // AS fails -> v_KO
  EXPECT_EQ(rig.place("ko_exits"), 1);
  EXPECT_EQ(rig.place("class_A"), 0);
  EXPECT_EQ(rig.place("KO_total"), 0) << "a lone v_KO is not catastrophic";
  EXPECT_EQ(rig.place("vehicles[0]/one_vehicle/my_id"), 0);
}

TEST(VehicleGates, FaultyAssistantZeroesSuccessCase) {
  Rig rig(small());
  // Vehicle at position 1 of some platoon runs AS, which needs the vehicle
  // ahead (position 0).  Make the leader faulty first.
  // Find which vehicles sit at positions 0 and 1 of lane 0.
  const int leader = rig.place("platoons", 0);
  const int follower = rig.place("platoons", 1);
  ASSERT_GT(leader, 0);
  ASSERT_GT(follower, 0);
  rig.fire(Rig::veh(follower, "L1"));  // follower runs AS
  auto w = rig.weights(Rig::veh(follower, "M6"));
  EXPECT_NEAR(w[0], rig.params.q_intrinsic, 1e-12)
      << "healthy leader: success weight = q";
  rig.fire(Rig::veh(leader, "L6"));  // leader now faulty (TIE-N)
  w = rig.weights(Rig::veh(follower, "M6"));
  EXPECT_DOUBLE_EQ(w[0], 0.0) << "faulty assistant blocks the Aided Stop";
  EXPECT_DOUBLE_EQ(w[1], 1.0);
}

TEST(VehicleGates, UnassistedManeuverIgnoresOthersUnderDD) {
  Rig rig(small());
  const int leader = rig.place("platoons", 0);
  const int follower = rig.place("platoons", 1);
  rig.fire(Rig::veh(follower, "L3"));  // GS needs no assistance under DD
  rig.fire(Rig::veh(leader, "L6"));
  const auto w = rig.weights(Rig::veh(follower, "M4"));
  EXPECT_NEAR(w[0], rig.params.q_intrinsic, 1e-12);
}

TEST(VehicleGates, TwoClassAFailuresAreCatastrophic) {
  Rig rig(small());
  rig.fire(Rig::veh(1, "L1"));
  EXPECT_EQ(rig.place("KO_total"), 0);
  rig.fire(Rig::veh(2, "L2"));
  // to_KO is instantaneous; fire it by checking enabling and firing.
  std::size_t ko = rig.activity("severity/to_KO");
  ASSERT_TRUE(rig.flat.enabled(ko, rig.mk));
  rig.flat.fire(ko, 0, rig.mk);
  EXPECT_EQ(rig.place("KO_total"), 1);
}

}  // namespace
