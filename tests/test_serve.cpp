// Service-layer conformance for the ahs_server daemon: wire-protocol
// round-trips (bitwise for every double), schedule-policy ordering and
// accounting, the compute-once ResultStore protocol (including
// reject-don't-merge), worker-process crash safety (SIGKILL mid-point →
// retried, result bitwise equal to a direct computation), and an
// end-to-end server with two concurrent clients whose overlapping grids
// share points computed exactly once.
//
// This binary is its own worker executable: main() handles the
// `--worker --task <file>` argv contract before gtest sees the arguments,
// so WorkerSupervisor can re-exec the test binary just as ahs_server
// re-execs itself.
#include <gtest/gtest.h>

#include <csignal>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ahs/study.h"
#include "ahs/sweep.h"
#include "serve/protocol.h"
#include "serve/result_store.h"
#include "serve/schedule.h"
#include "serve/server.h"
#include "serve/supervisor.h"
#include "serve/worker.h"
#include "util/error.h"
#include "util/json.h"
#include "util/snapshot.h"
#include "util/socket.h"
#include "util/subprocess.h"

namespace {

namespace fs = std::filesystem;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_curves_bitwise_equal(const ahs::UnsafetyCurve& a,
                                 const ahs::UnsafetyCurve& b) {
  ASSERT_EQ(a.times.size(), b.times.size());
  ASSERT_EQ(a.unsafety.size(), b.unsafety.size());
  ASSERT_EQ(a.half_width.size(), b.half_width.size());
  for (std::size_t i = 0; i < a.times.size(); ++i)
    EXPECT_EQ(bits(a.times[i]), bits(b.times[i])) << i;
  for (std::size_t i = 0; i < a.unsafety.size(); ++i)
    EXPECT_EQ(bits(a.unsafety[i]), bits(b.unsafety[i])) << i;
  for (std::size_t i = 0; i < a.half_width.size(); ++i)
    EXPECT_EQ(bits(a.half_width[i]), bits(b.half_width[i])) << i;
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.solver_iterations, b.solver_iterations);
  EXPECT_EQ(a.converged, b.converged);
}

/// A small, fast fixture point (lumped CTMC solves in milliseconds).
ahs::Parameters small_params(int n = 5, double lambda = 1e-5) {
  ahs::Parameters p;
  p.max_per_platoon = n;
  p.join_rate = 12.0;
  p.leave_rate = 4.0;
  p.base_failure_rate = lambda;
  return p;
}

ahs::StudyOptions lumped_study() {
  ahs::StudyOptions s;
  s.engine = ahs::Engine::kLumpedCtmc;
  return s;
}

/// Fresh scratch directory per test, short enough for sun_path.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ahs_serve_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

// ---- protocol ----------------------------------------------------------

TEST(ServeProtocol, ParamsRoundTripBitwise) {
  ahs::Parameters p = small_params(7, 3.14159265358979312e-5);
  p.q_intrinsic = 0.12345678901234567;
  p.change_rate = 55.5;
  p.strategy = ahs::parse_strategy("CC");
  p.failure_mode_enabled[1] = false;
  p.rate_multipliers[2] = 1.75e-3;
  const ahs::Parameters q =
      serve::decode_params(util::parse_json(serve::encode_params(p)));
  EXPECT_EQ(p.structural_fingerprint(), q.structural_fingerprint());
  EXPECT_EQ(bits(p.base_failure_rate), bits(q.base_failure_rate));
  EXPECT_EQ(bits(p.q_intrinsic), bits(q.q_intrinsic));
  EXPECT_EQ(bits(p.rate_multipliers[2]), bits(q.rate_multipliers[2]));
  EXPECT_EQ(p.max_per_platoon, q.max_per_platoon);
  EXPECT_EQ(p.strategy, q.strategy);
  EXPECT_EQ(p.failure_mode_enabled, q.failure_mode_enabled);
}

TEST(ServeProtocol, StudyRoundTrip) {
  ahs::StudyOptions s;
  s.engine = ahs::Engine::kSimulationIS;
  s.solver = ctmc::TransientSolver::kKrylov;
  s.seed = 991;
  s.min_replications = 123;
  s.max_replications = 456789;
  s.rel_half_width = 0.07;
  s.abs_half_width = 1e-9;
  s.confidence = 0.99;
  s.failure_boost = 33.25;
  s.fail_case_bias = 0.125;
  s.max_states = 54321;
  const ahs::StudyOptions t =
      serve::decode_study(util::parse_json(serve::encode_study(s)));
  EXPECT_EQ(s.engine, t.engine);
  EXPECT_EQ(s.solver, t.solver);
  EXPECT_EQ(s.seed, t.seed);
  EXPECT_EQ(s.min_replications, t.min_replications);
  EXPECT_EQ(s.max_replications, t.max_replications);
  EXPECT_EQ(bits(s.rel_half_width), bits(t.rel_half_width));
  EXPECT_EQ(bits(s.abs_half_width), bits(t.abs_half_width));
  EXPECT_EQ(bits(s.confidence), bits(t.confidence));
  EXPECT_EQ(bits(s.failure_boost), bits(t.failure_boost));
  EXPECT_EQ(bits(s.fail_case_bias), bits(t.fail_case_bias));
  EXPECT_EQ(s.max_states, t.max_states);
}

TEST(ServeProtocol, CurveRoundTripBitwise) {
  ahs::UnsafetyCurve c;
  c.times = {1.5, 6.0};
  c.unsafety = {1.2345678901234567e-7, 0.99999999999999989};
  c.half_width = {0.0, 3.5e-16};
  c.replications = 40000;
  c.solver_iterations = 777;
  c.converged = true;
  c.timed_out = false;
  const ahs::UnsafetyCurve d =
      serve::decode_curve_json(util::parse_json(serve::encode_curve_json(c)));
  expect_curves_bitwise_equal(c, d);
  EXPECT_EQ(c.cancelled, d.cancelled);
  EXPECT_EQ(c.resumed, d.resumed);
}

TEST(ServeProtocol, SubmitRoundTripPreservesPointIdentity) {
  serve::SubmitRequest req;
  req.client = "alice \"test\"";
  req.times = {2.0, 6.0};
  req.study = lumped_study();
  req.study.seed = 17;
  for (int n : {4, 5})
    req.points.push_back({"n=" + std::to_string(n), small_params(n)});
  const serve::SubmitRequest out =
      serve::decode_submit(util::parse_json(serve::encode_submit(req)));
  EXPECT_EQ(req.client, out.client);
  ASSERT_EQ(req.points.size(), out.points.size());
  for (std::size_t i = 0; i < req.points.size(); ++i) {
    EXPECT_EQ(req.points[i].label, out.points[i].label);
    // The served identity key — what the ResultStore merges on — must
    // survive the wire exactly.
    EXPECT_EQ(ahs::point_identity_hash(req.points[i].params, req.times,
                                       req.study),
              ahs::point_identity_hash(out.points[i].params, out.times,
                                       out.study));
  }
}

TEST(ServeProtocol, TaskRoundTripAndPaths) {
  serve::WorkerTask t;
  t.task_id = 42;
  t.point = {"p", small_params(6, 2e-6)};
  t.times = {6.0};
  t.study = lumped_study();
  t.debug_delay_seconds = 0.25;
  const serve::WorkerTask u =
      serve::decode_task(util::parse_json(serve::encode_task(t)));
  EXPECT_EQ(t.task_id, u.task_id);
  EXPECT_EQ(t.point.label, u.point.label);
  EXPECT_EQ(bits(t.debug_delay_seconds), bits(u.debug_delay_seconds));
  EXPECT_EQ(ahs::point_identity_hash(t.point.params, t.times, t.study),
            ahs::point_identity_hash(u.point.params, u.times, u.study));
  EXPECT_EQ(serve::task_path("/w", 42), "/w/point_42.task");
  EXPECT_EQ(serve::task_result_path("/w", 42), "/w/point_42.result");
}

// ---- schedule policies -------------------------------------------------

serve::PendingPoint pending(const std::string& client, double expected) {
  serve::PendingPoint p;
  p.client = client;
  p.expected_seconds = expected;
  return p;
}

TEST(Schedule, FifoDispatchesInArrivalOrder) {
  serve::Scheduler s(serve::make_policy("fifo"));
  for (int i = 0; i < 3; ++i) {
    serve::PendingPoint p = pending("a", 3.0 - i);
    p.point_index = static_cast<std::size_t>(i);
    s.enqueue(p, 0.0);
  }
  serve::PendingPoint out;
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.pop(&out, 1.0));
    EXPECT_EQ(out.point_index, i);
  }
  EXPECT_FALSE(s.pop(&out, 1.0));
}

TEST(Schedule, ShortestFirstOrdersByExpectedSecondsUnknownsLast) {
  serve::Scheduler s(serve::make_policy("sjf"));
  serve::PendingPoint slow = pending("a", 9.0);
  slow.point_index = 0;
  serve::PendingPoint unknown = pending("a", 0.0);  // no estimate yet
  unknown.point_index = 1;
  serve::PendingPoint fast = pending("a", 0.5);
  fast.point_index = 2;
  s.enqueue(slow, 0.0);
  s.enqueue(unknown, 0.0);
  s.enqueue(fast, 0.0);
  serve::PendingPoint out;
  ASSERT_TRUE(s.pop(&out, 0.0));
  EXPECT_EQ(out.point_index, 2u);  // fastest estimate first
  ASSERT_TRUE(s.pop(&out, 0.0));
  EXPECT_EQ(out.point_index, 0u);  // then the slow-but-known point
  ASSERT_TRUE(s.pop(&out, 0.0));
  EXPECT_EQ(out.point_index, 1u);  // unknown cost goes last
}

TEST(Schedule, FairShareRotatesAcrossClients) {
  serve::Scheduler s(serve::make_policy("fair"));
  // alice floods the queue before bob's probe arrives.
  for (int i = 0; i < 3; ++i) {
    serve::PendingPoint p = pending("alice", 0.0);
    p.point_index = static_cast<std::size_t>(i);
    s.enqueue(p, 0.0);
  }
  serve::PendingPoint probe = pending("bob", 0.0);
  probe.point_index = 99;
  s.enqueue(probe, 0.0);

  serve::PendingPoint out;
  ASSERT_TRUE(s.pop(&out, 0.0));
  EXPECT_EQ(out.client, "alice");  // ties (0 each) break by arrival
  ASSERT_TRUE(s.pop(&out, 0.0));
  EXPECT_EQ(out.client, "bob");  // bob (0 dispatched) beats alice (1)
  ASSERT_TRUE(s.pop(&out, 0.0));
  EXPECT_EQ(out.client, "alice");
}

TEST(Schedule, StatsAccountWaitingTimeAndThroughput) {
  serve::Scheduler s(serve::make_policy("fifo"));
  s.enqueue(pending("a", 0.0), 1.0);
  s.enqueue(pending("a", 0.0), 2.0);
  serve::PendingPoint out;
  ASSERT_TRUE(s.pop(&out, 3.0));  // waited 2 s
  ASSERT_TRUE(s.pop(&out, 5.0));  // waited 3 s
  const serve::Scheduler::Stats st = s.stats();
  EXPECT_EQ(st.policy, "fifo");
  EXPECT_EQ(st.enqueued, 2u);
  EXPECT_EQ(st.dispatched, 2u);
  EXPECT_DOUBLE_EQ(st.mean_wait_seconds(), 2.5);
  EXPECT_DOUBLE_EQ(st.max_wait_seconds, 3.0);
  // 2 dispatches over the 1 s → 5 s busy span.
  EXPECT_DOUBLE_EQ(st.dispatch_per_second(), 0.5);
}

TEST(Schedule, UnknownPolicyRejected) {
  EXPECT_THROW(serve::make_policy("lifo"), util::PreconditionError);
}

// ---- result store ------------------------------------------------------

serve::ResultIdentity identity(std::uint64_t a, std::uint64_t b,
                               std::uint64_t c) {
  serve::ResultIdentity id;
  id.params_hash = a;
  id.times_hash = b;
  id.seed = c;
  return id;
}

TEST(ResultStore, ComputeOnceProtocol) {
  serve::ResultStore store;
  const serve::ResultIdentity id = identity(1, 2, 3);
  EXPECT_EQ(store.claim(7, id), serve::ResultStore::Claim::kCompute);
  EXPECT_EQ(store.claim(7, id), serve::ResultStore::Claim::kWait);
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_EQ(store.hits(), 1u);

  ahs::UnsafetyCurve curve;
  curve.times = {6.0};
  curve.unsafety = {1.25e-6};
  store.publish(7, id, curve);
  EXPECT_EQ(store.claim(7, id), serve::ResultStore::Claim::kReady);
  ahs::UnsafetyCurve out;
  ASSERT_TRUE(store.find(7, &out));
  EXPECT_EQ(bits(out.unsafety[0]), bits(1.25e-6));
  ASSERT_TRUE(store.wait_for(7, &out));  // already done → returns at once
  EXPECT_EQ(store.size(), 1u);
}

TEST(ResultStore, AbandonWakesWaitersForRetry) {
  serve::ResultStore store;
  const serve::ResultIdentity id = identity(1, 2, 3);
  ASSERT_EQ(store.claim(9, id), serve::ResultStore::Claim::kCompute);

  bool woke_empty = false;
  std::thread waiter([&] {
    ahs::UnsafetyCurve out;
    woke_empty = !store.wait_for(9, &out);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  store.abandon(9);
  waiter.join();
  EXPECT_TRUE(woke_empty);
  // The failure is not cached: the next claimant computes.
  EXPECT_EQ(store.claim(9, id), serve::ResultStore::Claim::kCompute);
}

TEST(ResultStore, IdentityMismatchRejectedNotMerged) {
  serve::ResultStore store;
  ASSERT_EQ(store.claim(11, identity(1, 2, 3)),
            serve::ResultStore::Claim::kCompute);
  EXPECT_THROW(store.claim(11, identity(1, 2, 4)), util::SnapshotError);
  ahs::UnsafetyCurve curve;
  store.publish(11, identity(1, 2, 3), curve);
  EXPECT_THROW(store.publish(11, identity(9, 2, 3), curve),
               util::SnapshotError);
}

// ---- worker + supervisor (process level) -------------------------------

serve::WorkerTask make_task(std::uint64_t id, double delay = 0.0) {
  serve::WorkerTask t;
  t.task_id = id;
  t.point = {"t" + std::to_string(id), small_params()};
  t.times = {6.0};
  t.study = lumped_study();
  t.debug_delay_seconds = delay;
  return t;
}

TEST_F(ServeTest, WorkerProcessMatchesDirectComputationBitwise) {
  serve::WorkerSupervisor::Options opt;
  opt.work_dir = dir_.string();
  opt.worker_exe = util::self_exe_path();  // this test binary, --worker mode
  serve::WorkerSupervisor sup(opt);
  sup.dispatch(make_task(1));

  std::vector<serve::WorkerSupervisor::Completion> done;
  while (done.empty()) {
    done = sup.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].ok) << done[0].error;
  EXPECT_EQ(done[0].attempts, 1);

  const ahs::UnsafetyCurve direct =
      ahs::unsafety_curve(small_params(), {6.0}, lumped_study());
  expect_curves_bitwise_equal(done[0].curve, direct);
  EXPECT_EQ(sup.spawned(), 1u);
  EXPECT_EQ(sup.retries(), 0u);
}

TEST_F(ServeTest, SigkilledWorkerIsRetriedAndResultUnchanged) {
  serve::WorkerSupervisor::Options opt;
  opt.work_dir = dir_.string();
  opt.worker_exe = util::self_exe_path();
  serve::WorkerSupervisor sup(opt);
  // The delay guarantees the kill lands before the result file exists.
  sup.dispatch(make_task(2, /*delay=*/1.0));

  const std::vector<pid_t> pids = sup.active_pids();
  ASSERT_EQ(pids.size(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);

  std::vector<serve::WorkerSupervisor::Completion> done;
  while (done.empty()) {
    done = sup.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].ok) << done[0].error;
  EXPECT_EQ(done[0].attempts, 2);  // one kill, one clean rerun
  EXPECT_EQ(sup.retries(), 1u);

  const ahs::UnsafetyCurve direct =
      ahs::unsafety_curve(small_params(), {6.0}, lumped_study());
  expect_curves_bitwise_equal(done[0].curve, direct);
}

TEST_F(ServeTest, WorkerThatNeverWritesResultFailsAfterMaxAttempts) {
  serve::WorkerSupervisor::Options opt;
  opt.work_dir = dir_.string();
  opt.worker_exe = "/bin/true";  // exits 0, writes nothing
  opt.max_attempts = 2;
  serve::WorkerSupervisor sup(opt);
  sup.dispatch(make_task(3));

  std::vector<serve::WorkerSupervisor::Completion> done;
  while (done.empty()) {
    done = sup.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(done[0].ok);
  EXPECT_EQ(done[0].attempts, 2);
  EXPECT_NE(done[0].error.find("without writing"), std::string::npos)
      << done[0].error;
  EXPECT_EQ(sup.spawned(), 2u);
}

// ---- end-to-end server -------------------------------------------------

serve::SubmitRequest grid_request(const std::string& client,
                                  const std::vector<int>& sizes) {
  serve::SubmitRequest req;
  req.client = client;
  req.times = {6.0};
  req.study = lumped_study();
  for (int n : sizes)
    for (double lambda : {1e-5, 1e-4})
      req.points.push_back(
          {"n=" + std::to_string(n) + "_lam=" + std::to_string(lambda),
           small_params(n, lambda)});
  return req;
}

util::JsonValue submit_and_parse(const std::string& socket_path,
                                 const serve::SubmitRequest& req) {
  util::Socket s = util::Socket::connect_unix(socket_path);
  EXPECT_TRUE(s.send_line(serve::encode_submit(req)));
  std::string reply;
  EXPECT_TRUE(s.recv_line(&reply));
  return util::parse_json(reply);
}

TEST_F(ServeTest, OverlappingClientsSharePointsComputedOnce) {
  serve::ServerOptions opt;
  opt.socket_path = path("sock");
  opt.work_dir = path("work");
  opt.max_workers = 2;
  opt.policy = "fair";
  serve::Server server(opt);
  std::thread serving([&] { server.run(); });

  // n=5 (× both λ) is common to both grids: 12 claims, 10 unique points.
  const serve::SubmitRequest req_a = grid_request("alice", {4, 5, 6});
  const serve::SubmitRequest req_b = grid_request("bob", {5, 7, 8});

  util::JsonValue reply_a, reply_b;
  std::thread client_a(
      [&] { reply_a = submit_and_parse(opt.socket_path, req_a); });
  std::thread client_b(
      [&] { reply_b = submit_and_parse(opt.socket_path, req_b); });
  client_a.join();
  client_b.join();

  // stats before shutdown: the shared points were computed exactly once.
  util::Socket s = util::Socket::connect_unix(opt.socket_path);
  ASSERT_TRUE(s.send_line("{\"op\":\"stats\"}"));
  std::string line;
  ASSERT_TRUE(s.recv_line(&line));
  const util::JsonValue stats = util::parse_json(line);
  server.shutdown();
  serving.join();

  ASSERT_TRUE(reply_a.find("ok") != nullptr && reply_a.find("ok")->as_bool());
  ASSERT_TRUE(reply_b.find("ok") != nullptr && reply_b.find("ok")->as_bool());
  const util::JsonValue* results_a = reply_a.find("results");
  const util::JsonValue* results_b = reply_b.find("results");
  ASSERT_EQ(results_a->array.size(), req_a.points.size());
  ASSERT_EQ(results_b->array.size(), req_b.points.size());

  const util::JsonValue* store = stats.find("store");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->number_at("entries"), 10.0);  // unique points
  EXPECT_EQ(store->number_at("misses"), 10.0);   // one compute each
  EXPECT_GE(store->number_at("hits"), 2.0);      // the shared n=5 pair

  // No point was evaluated twice: one worker spawn per unique point (no
  // retries in this test) …
  const util::JsonValue* workers = stats.find("workers");
  ASSERT_NE(workers, nullptr);
  EXPECT_EQ(workers->number_at("spawned"), 10.0);
  EXPECT_EQ(workers->number_at("retries"), 0.0);

  // … and the shared points came back bitwise identical to both clients.
  const ahs::UnsafetyCurve direct_lo =
      ahs::unsafety_curve(small_params(5, 1e-5), {6.0}, lumped_study());
  const ahs::UnsafetyCurve direct_hi =
      ahs::unsafety_curve(small_params(5, 1e-4), {6.0}, lumped_study());
  int shared_checked = 0;
  for (const util::JsonValue* results : {results_a, results_b}) {
    for (const util::JsonValue& r : results->array) {
      const std::string label = r.string_at("label");
      if (label.rfind("n=5_", 0) != 0) continue;
      EXPECT_NE(r.string_at("outcome"), "failed") << label;
      const ahs::UnsafetyCurve got =
          serve::decode_curve_json(*r.find("curve"));
      expect_curves_bitwise_equal(
          got, label.find("0.000100") != std::string::npos ? direct_hi
                                                           : direct_lo);
      ++shared_checked;
    }
  }
  EXPECT_EQ(shared_checked, 4);  // 2 shared points × 2 clients
}

TEST_F(ServeTest, ServerSurvivesWorkerSigkillMidSubmit) {
  serve::ServerOptions opt;
  opt.socket_path = path("sock");
  opt.work_dir = path("work");
  opt.max_workers = 1;
  opt.debug_worker_delay_seconds = 0.8;  // window for the kill below
  serve::Server server(opt);
  std::thread serving([&] { server.run(); });

  serve::SubmitRequest req;
  req.client = "crash";
  req.times = {6.0};
  req.study = lumped_study();
  req.points.push_back({"p0", small_params(5)});

  util::JsonValue reply;
  std::thread client([&] { reply = submit_and_parse(opt.socket_path, req); });

  // Aim SIGKILL at the live worker pid from the stats op — exactly what
  // the CI job does with ahs_client --op stats.
  pid_t victim = -1;
  for (int tries = 0; tries < 200 && victim <= 0; ++tries) {
    util::Socket s = util::Socket::connect_unix(opt.socket_path);
    ASSERT_TRUE(s.send_line("{\"op\":\"stats\"}"));
    std::string line;
    ASSERT_TRUE(s.recv_line(&line));
    const util::JsonValue stats = util::parse_json(line);
    const util::JsonValue* workers = stats.find("workers");
    if (workers != nullptr) {
      const util::JsonValue* pids = workers->find("pids");
      if (pids != nullptr && !pids->array.empty())
        victim = static_cast<pid_t>(pids->array[0].as_number());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  client.join();
  server.shutdown();
  serving.join();

  ASSERT_TRUE(reply.find("ok") != nullptr && reply.find("ok")->as_bool());
  const util::JsonValue& r = reply.find("results")->array.at(0);
  EXPECT_EQ(r.string_at("outcome"), "computed");
  const ahs::UnsafetyCurve direct =
      ahs::unsafety_curve(small_params(5), {6.0}, lumped_study());
  expect_curves_bitwise_equal(serve::decode_curve_json(*r.find("curve")),
                              direct);
}

}  // namespace

int main(int argc, char** argv) {
  // Worker mode first — the supervisor re-execs this binary with
  // `--worker --task <file>` (same contract as examples/ahs_server.cpp).
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--worker") {
      std::string task;
      for (int j = 1; j + 1 < argc; ++j)
        if (std::string(argv[j]) == "--task") task = argv[j + 1];
      return task.empty() ? 2 : serve::run_worker(task);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
