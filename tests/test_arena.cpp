// util::Arena tests: alignment guarantees, block growth under exhaustion,
// and the reset-for-reuse lifetime the executor relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/arena.h"

namespace {

bool aligned(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, RespectsRequestedAlignment) {
  util::Arena arena;
  // Interleave odd sizes with strict alignments so the bump pointer is
  // forced off every natural boundary before each aligned request.
  for (std::size_t align : {std::size_t{1}, std::size_t{8}, std::size_t{16},
                            std::size_t{64}, std::size_t{128}}) {
    arena.allocate(3, 1);
    void* p = arena.allocate(24, align);
    EXPECT_TRUE(aligned(p, align)) << "align=" << align;
  }
}

TEST(Arena, TypedArraysAreValueInitializedAndAligned) {
  util::Arena arena;
  arena.allocate(1, 1);  // skew the cursor
  const std::span<double> d = arena.alloc_array<double>(37);
  ASSERT_EQ(d.size(), 37u);
  EXPECT_TRUE(aligned(d.data(), alignof(double)));
  for (double v : d) EXPECT_EQ(v, 0.0);
  const std::span<std::uint8_t> b = arena.alloc_array<std::uint8_t>(11);
  for (std::uint8_t v : b) EXPECT_EQ(v, 0u);
}

TEST(Arena, ZeroByteRequestsGetValidPointers) {
  util::Arena arena;
  void* a = arena.allocate(0);
  void* b = arena.allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);  // each request owns at least one byte
}

TEST(Arena, GrowsNewBlocksOnExhaustion) {
  util::Arena arena(256);
  EXPECT_EQ(arena.num_blocks(), 0u);
  arena.allocate(200);
  EXPECT_EQ(arena.num_blocks(), 1u);
  // The first block (256 B) can't hold another 200: a second, larger block
  // is chained and the old one is left as-is.
  arena.allocate(200);
  EXPECT_EQ(arena.num_blocks(), 2u);
  EXPECT_GE(arena.bytes_reserved(), 256u + 400u);
  EXPECT_EQ(arena.bytes_served(), 400u);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  util::Arena arena(256);
  const std::size_t big = 1 << 20;
  void* p = arena.allocate(big);
  std::memset(p, 0xAB, big);  // the whole extent must be writable
  EXPECT_GE(arena.bytes_reserved(), big);
}

TEST(Arena, ResetKeepsLargestBlockAndReusesIt) {
  util::Arena arena(256);
  for (int i = 0; i < 8; ++i) arena.allocate(200);
  ASSERT_GT(arena.num_blocks(), 1u);
  const std::size_t largest_before = [&] {
    // After reset only the largest block survives; growth is geometric so
    // the reserved total collapses to that one block.
    return arena.bytes_reserved();
  }();
  arena.reset();
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_LT(arena.bytes_reserved(), largest_before);
  EXPECT_EQ(arena.bytes_served(), 0u);

  // A long-lived arena converges: allocations that fit the retained block
  // must not chain new ones, and reset() recycles the same storage.
  // Conservative capacity estimate (256 per request covers the alignment
  // padding between 200-byte allocations).
  const std::size_t fits = arena.bytes_reserved() / 256;
  ASSERT_GT(fits, 0u);
  void* first = arena.allocate(200);
  for (std::size_t i = 1; i < fits; ++i) arena.allocate(200);
  EXPECT_EQ(arena.num_blocks(), 1u);
  arena.reset();
  EXPECT_EQ(arena.allocate(200), first);
}

}  // namespace
