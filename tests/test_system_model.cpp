// Integration tests of the full SAN system model: structure, initial
// configuration, and run-time invariants checked after every event of long
// simulated histories at elevated failure rates.
#include <gtest/gtest.h>

#include <set>

#include "ahs/model_common.h"
#include "ahs/severity.h"
#include "ahs/system_model.h"
#include "sim/executor.h"

namespace {

using namespace ahs;

Parameters fast_params(int n = 2, double lambda = 1e-2) {
  Parameters p;
  p.max_per_platoon = n;
  p.base_failure_rate = lambda;
  return p;
}

struct PlaceView {
  const san::FlatModel& model;
  std::uint32_t off;
  std::uint32_t size;
  PlaceView(const san::FlatModel& m, const std::string& name)
      : model(m),
        off(m.place_offset(m.place_index(name))),
        size(m.place_size(m.place_index(name))) {}
  int operator()(std::span<const std::int32_t> mk, std::uint32_t i = 0) const {
    return mk[off + i];
  }
};

TEST(SystemModel, StructureMatchesFig9) {
  const Parameters p = fast_params(3);
  const auto comp = build_system_composition(p);
  // Rep(2n vehicles) + configuration + dynamicity + severity.
  EXPECT_EQ(comp->kind(), san::Composition::Kind::kJoin);
  EXPECT_EQ(comp->join_children().size(), 4u);
  EXPECT_EQ(comp->instance_count(), 2u * 3u + 3u);
  const auto flat = build_system_model(p);
  // Shared places resolve uniquely.
  for (const auto& name : shared_place_names())
    EXPECT_NO_THROW(flat.place_index(name)) << name;
  EXPECT_TRUE(flat.all_exponential());
}

TEST(SystemModel, InitialConfigurationFillsBothPlatoons) {
  const Parameters p = fast_params(3);
  const auto flat = build_system_model(p);
  sim::Executor exec(flat, util::Rng(7));
  const PlaceView lanes(flat, "platoons"), out(flat, "OUT"),
      ko(flat, "KO_total"), ext(flat, "ext_id");
  const auto mk = exec.marking();
  std::set<int> ids;
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_GT(lanes(mk, i), 0);
    ids.insert(lanes(mk, i));
  }
  EXPECT_EQ(ids.size(), 6u) << "all six vehicles distinct";
  EXPECT_EQ(out(mk), 0);
  EXPECT_EQ(ko(mk), 0);
  EXPECT_EQ(ext(mk), 6);
}

// The long-run invariant suite: checked after every completion.
class SystemInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SystemInvariants, HoldOverLongHistories) {
  const Parameters p = fast_params(2, 2e-2);
  const auto flat = build_system_model(p);
  sim::Executor exec(flat, util::Rng(GetParam()));
  const PlaceView lanes(flat, "platoons"), out(flat, "OUT"),
      active(flat, "active_m"), ca(flat, "class_A"), cb(flat, "class_B"),
      cc(flat, "class_C"), ko(flat, "KO_total");
  const int n = p.max_per_platoon;
  const int cap = p.capacity();

  // Replica-local places, one per vehicle slot.
  std::vector<PlaceView> my_id, transiting;
  std::vector<std::array<PlaceView, 6>> sm;
  for (int r = 0; r < cap; ++r) {
    const std::string base = "ahs/vehicles[" + std::to_string(r) + "]/one_vehicle/";
    my_id.emplace_back(flat, base + "my_id");
    transiting.emplace_back(flat, base + "transiting");
    sm.push_back({PlaceView(flat, base + "SM1"), PlaceView(flat, base + "SM2"),
                  PlaceView(flat, base + "SM3"), PlaceView(flat, base + "SM4"),
                  PlaceView(flat, base + "SM5"),
                  PlaceView(flat, base + "SM6")});
  }

  std::uint64_t checks = 0;
  auto verify = [&] {
    const auto mk = exec.marking();
    ++checks;
    // (1) Platoon arrays are compacted, within capacity, ids in range and
    // globally unique.
    std::set<int> seen;
    for (int lane = 0; lane < 2; ++lane) {
      bool ended = false;
      for (int i = 0; i < n; ++i) {
        const int id = lanes(mk, static_cast<std::uint32_t>(lane * n + i));
        if (id == 0) {
          ended = true;
        } else {
          ASSERT_FALSE(ended) << "platoon array not compacted";
          ASSERT_GE(id, 1);
          ASSERT_LE(id, cap);
          ASSERT_TRUE(seen.insert(id).second) << "duplicate vehicle id";
        }
      }
    }
    // (2) Every platoon member is an active replica with matching my_id;
    // every active replica is in exactly one platoon or transiting or
    // mid-placement.
    int on_highway = 0;
    for (int r = 0; r < cap; ++r) {
      const int id = my_id[r](mk);
      if (id != 0) {
        ASSERT_EQ(id, r + 1) << "identity must equal replica+1";
        ++on_highway;
      } else {
        ASSERT_EQ(transiting[r](mk), 0);
        for (const auto& s : sm[r]) ASSERT_EQ(s(mk), 0);
      }
    }
    // (3) Slot conservation: active replicas + free slots + in-pipeline
    // tokens = capacity.
    const PlaceView in(flat, "IN"), joining(flat, "joining"),
        placing(flat, "placing"), init_count(flat, "init_count");
    const int pipeline = in(mk) + joining(mk) + (placing(mk) ? 1 : 0) +
                         init_count(mk);
    ASSERT_EQ(on_highway + out(mk) + pipeline, cap);
    // (4) active_m mirrors the SM places, and severity counters mirror the
    // active maneuvers by class.
    SeverityCounts counts;
    for (int r = 0; r < cap; ++r) {
      int stage = 0;
      for (int k = 0; k < 6; ++k) {
        const int tokens = sm[r][k](mk);
        ASSERT_GE(tokens, 0);
        ASSERT_LE(tokens, 1);
        if (tokens) {
          ASSERT_EQ(stage, 0) << "at most one maneuver per vehicle";
          stage = k + 1;
        }
      }
      ASSERT_EQ(active(mk, r), stage);
      if (stage > 0) {
        switch (maneuver_class(static_cast<Maneuver>(stage - 1))) {
          case SeverityClass::kA: ++counts.a; break;
          case SeverityClass::kB: ++counts.b; break;
          case SeverityClass::kC: ++counts.c; break;
        }
      }
    }
    ASSERT_EQ(ca(mk), counts.a);
    ASSERT_EQ(cb(mk), counts.b);
    ASSERT_EQ(cc(mk), counts.c);
    // (5) KO_total set exactly when the severity profile is catastrophic
    // (the marking is only observed *after* instantaneous stabilization).
    ASSERT_EQ(ko(mk) > 0, is_catastrophic(counts) || ko(mk) > 0);
    if (is_catastrophic(counts)) {
      ASSERT_GT(ko(mk), 0);
    }
  };

  verify();  // initial configuration
  for (int step = 0; step < 4000; ++step) {
    if (!exec.step()) break;
    verify();
  }
  EXPECT_GT(checks, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemInvariants,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SystemModel, UnsafeStateIsAbsorbingForFailures) {
  // After KO_total is set, no further failure-mode activity may fire.
  const Parameters p = fast_params(2, 5e-2);
  const auto flat = build_system_model(p);
  const auto reward = unsafety_reward(flat);
  util::Rng master(11);
  bool reached = false;
  for (int rep = 0; rep < 300 && !reached; ++rep) {
    sim::Executor exec(flat, master.split(rep));
    exec.run_until(50.0, [&] { return reward(exec.marking()) > 0; });
    if (reward(exec.marking()) > 0) {
      reached = true;
      // Failure and maneuver activities must all be disabled now.
      for (std::size_t ai = 0; ai < flat.activities().size(); ++ai) {
        const auto& a = flat.activities()[ai];
        if (a.source_name.size() == 2 &&
            (a.source_name[0] == 'L' || a.source_name[0] == 'M')) {
          std::vector<std::int32_t> m(exec.marking().begin(),
                                      exec.marking().end());
          EXPECT_FALSE(flat.enabled(ai, m)) << a.name;
        }
      }
    }
  }
  EXPECT_TRUE(reached) << "elevated rates should reach KO within 300 reps";
}

TEST(SystemModel, VehiclesKeepCirculating) {
  // Over a long window, exits and joins both happen (the Dynamicity loop
  // works) and ext_id counts every join.
  const Parameters p = fast_params(2, 1e-3);
  const auto flat = build_system_model(p);
  sim::Executor exec(flat, util::Rng(3));
  exec.run_until(200.0);
  const PlaceView ext(flat, "ext_id"), safe(flat, "safe_exits");
  const auto mk = exec.marking();
  EXPECT_GT(safe(mk), 100);
  EXPECT_GE(ext(mk), safe(mk));
}

TEST(SystemModel, StrategyChangesAssistantCoupling) {
  // Structural smoke test: the four strategies build distinct models that
  // all pass validation and simulate.
  for (Strategy s : kAllStrategies) {
    Parameters p = fast_params(2, 1e-2);
    p.strategy = s;
    const auto flat = build_system_model(p);
    EXPECT_NO_THROW(flat.validate());
    sim::Executor exec(flat, util::Rng(1));
    exec.run_until(5.0);
    EXPECT_GT(exec.events(), 0u);
  }
}

}  // namespace
