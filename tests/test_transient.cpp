// Transient-estimator tests: agreement with closed forms, sequential
// stopping, absorbing fast path, and importance-sampling unbiasedness.
#include <gtest/gtest.h>

#include <cmath>

#include "san/composition.h"
#include "san/rewards.h"
#include "sim/steady.h"
#include "sim/transient.h"
#include "util/error.h"

namespace {

// Pure-death absorption: P(absorbed by t) = 1 − e^{-rt}.
std::shared_ptr<san::AtomicModel> absorber(double rate) {
  auto m = std::make_shared<san::AtomicModel>("abs");
  const auto alive = m->place("alive", 1);
  const auto dead = m->place("dead");
  m->timed_activity("die")
      .distribution(util::Distribution::Exponential(rate))
      .input_arc(alive)
      .output_arc(dead);
  return m;
}

TEST(Transient, MatchesExponentialAbsorption) {
  const auto flat = san::flatten(absorber(0.5));
  const auto reward = san::indicator_nonzero(flat, "dead");
  sim::TransientOptions opts;
  opts.time_points = {0.5, 1.0, 2.0};
  opts.min_replications = 20000;
  opts.max_replications = 20000;
  opts.seed = 5;
  const auto res = sim::estimate_transient(flat, reward, opts);
  EXPECT_EQ(res.replications, 20000u);
  for (std::size_t i = 0; i < opts.time_points.size(); ++i) {
    const double exact = 1.0 - std::exp(-0.5 * opts.time_points[i]);
    EXPECT_NEAR(res.mean(i), exact, 3.0 * res.estimates[i].half_width)
        << "t=" << opts.time_points[i];
  }
}

TEST(Transient, SequentialStoppingConverges) {
  const auto flat = san::flatten(absorber(2.0));
  const auto reward = san::indicator_nonzero(flat, "dead");
  sim::TransientOptions opts;
  opts.time_points = {1.0};
  opts.min_replications = 100;
  opts.max_replications = 1'000'000;
  opts.rel_half_width = 0.05;
  opts.check_every = 100;
  const auto res = sim::estimate_transient(flat, reward, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.replications, 100000u);
  EXPECT_TRUE(res.estimates[0].converged(0.05));
}

TEST(Transient, RejectsBadOptions) {
  const auto flat = san::flatten(absorber(1.0));
  const auto reward = san::indicator_nonzero(flat, "dead");
  sim::TransientOptions opts;
  EXPECT_THROW(sim::estimate_transient(flat, reward, opts),
               util::PreconditionError);  // no time points
  opts.time_points = {2.0, 1.0};
  EXPECT_THROW(sim::estimate_transient(flat, reward, opts),
               util::PreconditionError);  // not increasing
}

TEST(Transient, ImportanceSamplingIsUnbiasedOnRareAbsorption) {
  // Rare absorption (rate 1e-4 against a fast competing cycle): plain MC
  // at these replication counts sees almost nothing; IS must recover the
  // closed form P(absorbed by t) ≈ int_0^t  p_fail(u) du with the failure
  // exponential racing a fast recycle.
  auto m = std::make_shared<san::AtomicModel>("rare");
  const auto alive = m->place("alive", 1);
  const auto dead = m->place("dead");
  // Competing activities from `alive`: fail (1e-4) vs recycle (10).
  m->timed_activity("fail")
      .distribution(util::Distribution::Exponential(1e-4))
      .input_arc(alive)
      .output_arc(dead);
  m->timed_activity("recycle")
      .distribution(util::Distribution::Exponential(10.0))
      .input_arc(alive)
      .output_arc(alive);
  const auto flat = san::flatten(m);
  const auto reward = san::indicator_nonzero(flat, "dead");

  // Exact: absorption hazard is constant 1e-4 (memoryless race), so
  // P(absorbed by 5) = 1 − exp(-5e-4) ≈ 4.99875e-4.
  const double exact = 1.0 - std::exp(-5e-4);

  sim::BiasPlan bias;
  bias.boost = 1e3;
  bias.boosted = {"fail"};
  sim::TransientOptions opts;
  opts.time_points = {5.0};
  opts.min_replications = 40000;
  opts.max_replications = 40000;
  opts.bias = &bias;
  opts.seed = 19;
  const auto res = sim::estimate_transient(flat, reward, opts);
  EXPECT_NEAR(res.mean(0) / exact, 1.0, 0.1);
  // And the CI must be far tighter than the plain-MC binomial CI would be.
  EXPECT_LT(res.estimates[0].half_width, 0.3 * exact);
}

TEST(Transient, CaseBiasIsUnbiased) {
  // Absorption requires the rare case (p = 1e-3) of a fast activity.
  auto m = std::make_shared<san::AtomicModel>("rarecase");
  const auto alive = m->place("alive", 1);
  const auto dead = m->place("dead");
  auto act = m->timed_activity("spin").distribution(
      util::Distribution::Exponential(2.0));
  act.input_arc(alive);
  act.add_case(0.999);
  act.add_case(0.001);
  act.output_arc(alive, 1, 0);
  act.output_arc(dead, 1, 1);
  const auto flat = san::flatten(m);
  const auto reward = san::indicator_nonzero(flat, "dead");
  // Hazard = 2 * 0.001 = 2e-3; P(absorbed by 2) = 1 - exp(-4e-3).
  const double exact = 1.0 - std::exp(-4e-3);

  sim::BiasPlan bias;
  bias.case_bias["spin"] = {0.6, 0.4};
  sim::TransientOptions opts;
  opts.time_points = {2.0};
  opts.min_replications = 30000;
  opts.max_replications = 30000;
  opts.bias = &bias;
  opts.seed = 23;
  const auto res = sim::estimate_transient(flat, reward, opts);
  EXPECT_NEAR(res.mean(0) / exact, 1.0, 0.1);
}

TEST(Steady, FlipflopOccupancy) {
  // up->down rate 3, down->up rate 1: long-run P(down) = 0.75.
  auto m = std::make_shared<san::AtomicModel>("ff");
  const auto up = m->place("up", 1);
  const auto down = m->place("down");
  m->timed_activity("fall")
      .distribution(util::Distribution::Exponential(3.0))
      .input_arc(up)
      .output_arc(down);
  m->timed_activity("rise")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(down)
      .output_arc(up);
  const auto flat = san::flatten(m);
  const auto reward = san::indicator_nonzero(flat, "down");
  sim::SteadyOptions opts;
  opts.warmup_time = 20.0;
  opts.batch_time = 50.0;
  opts.min_batches = 30;
  opts.max_batches = 2000;
  opts.rel_half_width = 0.02;
  const auto res = sim::estimate_steady_state(flat, reward, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.estimate.mean, 0.75, 0.03);
  EXPECT_LT(std::abs(res.lag1_autocorrelation), 0.5);
}

TEST(Steady, RejectsBadOptions) {
  const auto flat = san::flatten(absorber(1.0));
  const auto reward = san::indicator_nonzero(flat, "dead");
  sim::SteadyOptions opts;
  opts.batch_time = 0.0;
  EXPECT_THROW(sim::estimate_steady_state(flat, reward, opts),
               util::PreconditionError);
}

}  // namespace

// Appended: multithreaded estimation determinism and speed-path checks.
#include "util/rng.h"

namespace {

TEST(Transient, ThreadCountDoesNotChangeTrajectories) {
  auto model = std::make_shared<san::AtomicModel>("abs2");
  const auto alive = model->place("alive", 1);
  const auto dead = model->place("dead");
  model->timed_activity("die")
      .distribution(util::Distribution::Exponential(0.7))
      .input_arc(alive)
      .output_arc(dead);
  const auto flat = san::flatten(model);
  const auto reward = san::indicator_nonzero(flat, "dead");

  sim::TransientOptions opts;
  opts.time_points = {1.0, 2.0};
  opts.min_replications = 4000;
  opts.max_replications = 4000;
  opts.seed = 99;

  opts.threads = 1;
  const auto seq = sim::estimate_transient(flat, reward, opts);
  opts.threads = 4;
  const auto par = sim::estimate_transient(flat, reward, opts);

  ASSERT_EQ(seq.replications, par.replications);
  for (std::size_t i = 0; i < 2; ++i) {
    // Identical streams per replication => identical indicator sums; only
    // the merge order differs, which for 0/1 observations is exact.
    EXPECT_DOUBLE_EQ(seq.mean(i), par.mean(i));
  }
}

TEST(Transient, BatchSizeIsBitwiseIrrelevant) {
  // batch_size is a pure locality knob: streams stay (seed, r)-derived and
  // accumulators merge at the same round boundaries, so every batch size —
  // including degenerate 1 and oversized 64 — produces bitwise identical
  // estimates.  Also exercised with threads=2 so the shared DependencyIndex
  // batch path runs under the tsan label.
  const auto flat = san::flatten(absorber(0.9));
  const auto reward = san::indicator_nonzero(flat, "dead");

  sim::TransientOptions opts;
  opts.time_points = {0.5, 1.5};
  opts.min_replications = 3000;
  opts.max_replications = 3000;
  opts.seed = 7;

  for (std::uint32_t threads : {1u, 2u}) {
    opts.threads = threads;
    opts.batch_size = 16;
    const auto base = sim::estimate_transient(flat, reward, opts);
    for (std::uint32_t batch : {1u, 5u, 64u}) {
      opts.batch_size = batch;
      const auto other = sim::estimate_transient(flat, reward, opts);
      ASSERT_EQ(other.replications, base.replications);
      EXPECT_EQ(other.total_events, base.total_events);
      for (std::size_t i = 0; i < opts.time_points.size(); ++i) {
        EXPECT_EQ(other.mean(i), base.mean(i))
            << "batch=" << batch << " threads=" << threads << " t=" << i;
        EXPECT_EQ(other.estimates[i].half_width, base.estimates[i].half_width)
            << "batch=" << batch << " threads=" << threads << " t=" << i;
      }
    }
  }
}

TEST(Transient, ThreadsValidated) {
  auto model = std::make_shared<san::AtomicModel>("abs3");
  const auto alive = model->place("alive", 1);
  model->timed_activity("die")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(alive);
  const auto flat = san::flatten(model);
  const auto reward = san::place_value(flat, "alive");
  sim::TransientOptions opts;
  opts.time_points = {1.0};
  opts.threads = 0;
  EXPECT_THROW(sim::estimate_transient(flat, reward, opts),
               util::PreconditionError);
}

}  // namespace
