// DependencyIndex derivation tests: exact arc-only sets, the conservative
// all-instance-places fallback for undeclared callbacks, declared-set
// resolution through Rep/Join flattening (including extended and shared
// places), the affected_by composition, and the locality the index proves
// for the paper's vehicle model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "ahs/system_model.h"
#include "san/composition.h"
#include "san/dependency.h"

namespace {

std::vector<std::uint32_t> to_vec(std::span<const std::uint32_t> s) {
  return {s.begin(), s.end()};
}

std::size_t activity_index(const san::FlatModel& m, const std::string& name) {
  const auto& acts = m.activities();
  for (std::size_t i = 0; i < acts.size(); ++i)
    if (acts[i].name == name) return i;
  ADD_FAILURE() << "no activity named " << name;
  return SIZE_MAX;
}

TEST(DependencyIndex, ArcOnlyActivityIsExact) {
  auto m = std::make_shared<san::AtomicModel>("ff");
  const auto up = m->place("up", 1);
  const auto down = m->place("down");
  m->timed_activity("fall")
      .distribution(util::Distribution::Exponential(2.0))
      .input_arc(up)
      .output_arc(down);
  m->timed_activity("rise")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(down)
      .output_arc(up);
  const auto flat = san::flatten(m);
  const auto dep = san::DependencyIndex::build(flat);

  const std::size_t fall = activity_index(flat, "ff/fall");
  const std::size_t rise = activity_index(flat, "ff/rise");
  const auto up_slot = flat.place_offset(flat.place_index("up"));
  const auto down_slot = flat.place_offset(flat.place_index("down"));

  EXPECT_TRUE(dep.reads_exact(fall));
  EXPECT_TRUE(dep.writes_exact(fall));
  EXPECT_EQ(to_vec(dep.reads(fall)), std::vector<std::uint32_t>{up_slot});
  // Writes: the input arc decrements `up`, the output arc increments `down`.
  std::vector<std::uint32_t> w{up_slot, down_slot};
  std::sort(w.begin(), w.end());
  EXPECT_EQ(to_vec(dep.writes(fall)), w);

  // fall writes both slots, so both activities are affected (and the set
  // always contains the firing activity itself).
  std::vector<std::uint32_t> both{static_cast<std::uint32_t>(fall),
                                  static_cast<std::uint32_t>(rise)};
  std::sort(both.begin(), both.end());
  EXPECT_EQ(to_vec(dep.affected_by(fall)), both);
  EXPECT_EQ(to_vec(dep.affected_by(rise)), both);
}

TEST(DependencyIndex, UndeclaredPredicateFallsBackToAllInstancePlaces) {
  auto m = std::make_shared<san::AtomicModel>("fb");
  const auto a = m->place("a", 1);
  m->place("b");
  m->extended_place("c", 3);
  m->timed_activity("t")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(a)
      .input_gate([a](const san::MarkingRef& r) { return r.get(a) < 5; });
  const auto flat = san::flatten(m);
  const auto dep = san::DependencyIndex::build(flat);

  const std::size_t t = activity_index(flat, "fb/t");
  EXPECT_FALSE(dep.reads_exact(t));
  // 1 (a) + 1 (b) + 3 (c) slots: everything the instance can address.
  EXPECT_EQ(dep.reads(t).size(), 5u);
  // No gate functions, so writes stay exact (arcs only).
  EXPECT_TRUE(dep.writes_exact(t));
  EXPECT_EQ(dep.writes(t).size(), 1u);
}

TEST(DependencyIndex, DeclaredSetsTightenCallbacks) {
  auto m = std::make_shared<san::AtomicModel>("decl");
  const auto a = m->place("a", 1);
  const auto b = m->place("b");
  m->place("unrelated");
  const auto ext = m->extended_place("ext", 2);
  m->timed_activity("t")
      .marking_rate([a](const san::MarkingRef& r) {
        return 1.0 + r.get(a);
      })
      .reads({a})
      .writes({b, ext})
      .input_arc(a)
      .output_gate([b, ext](const san::MarkingRef& r) {
        r.add(b, 1);
        r.set(ext, 1, r.get(ext, 0));
      });
  const auto flat = san::flatten(m);
  const auto dep = san::DependencyIndex::build(flat);

  const std::size_t t = activity_index(flat, "decl/t");
  EXPECT_TRUE(dep.reads_exact(t));
  EXPECT_TRUE(dep.writes_exact(t));
  const auto a_slot = flat.place_offset(flat.place_index("a"));
  const auto b_slot = flat.place_offset(flat.place_index("b"));
  const auto ext_off = flat.place_offset(flat.place_index("ext"));
  EXPECT_EQ(to_vec(dep.reads(t)), std::vector<std::uint32_t>{a_slot});
  // Declared writes cover both slots of the extended place, plus b, plus
  // the input arc on a.
  std::vector<std::uint32_t> w{a_slot, b_slot, ext_off, ext_off + 1};
  std::sort(w.begin(), w.end());
  EXPECT_EQ(to_vec(dep.writes(t)), w);
}

TEST(DependencyIndex, ReplicaFallbackCoversOwnSlotsAndSharedOnly) {
  auto child = std::make_shared<san::AtomicModel>("cell");
  const auto local = child->place("local", 1);
  const auto shared = child->place("shared", 0);
  child->timed_activity("t")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(local)
      .input_gate([shared](const san::MarkingRef& r) {
        return r.get(shared) < 3;
      })
      .output_arc(shared);
  const auto flat =
      san::flatten(san::Rep("grid", san::Leaf(child), 4, {"shared"}));
  const auto dep = san::DependencyIndex::build(flat);

  // 4 local slots + 1 shared slot.
  ASSERT_EQ(flat.marking_size(), 5u);
  const auto shared_slot = flat.place_offset(flat.place_index("shared"));
  for (std::uint32_t rep = 0; rep < 4; ++rep) {
    const std::size_t t =
        activity_index(flat, "grid[" + std::to_string(rep) + "]/cell/t");
    EXPECT_FALSE(dep.reads_exact(t));
    // Fallback = the replica's own places + the shared place: 2 slots,
    // not the 5 of the whole model.
    const auto reads = to_vec(dep.reads(t));
    ASSERT_EQ(reads.size(), 2u);
    EXPECT_TRUE(std::count(reads.begin(), reads.end(), shared_slot));
    // Every replica writes `shared`, so every replica affects every other.
    EXPECT_EQ(dep.affected_by(t).size(), 4u);
  }
}

TEST(DependencyIndex, VehicleFailureActivityIsLocal) {
  // The paper's model, two platoons of three: veh[0]'s L1 failure must
  // depend on exactly its own my_id and CC1 plus the shared KO_total —
  // independent of every other vehicle.  This is the locality property the
  // incremental engine's speedup rests on.
  ahs::Parameters p;
  p.max_per_platoon = 3;
  const auto flat = ahs::build_system_model(p);
  const auto dep = san::DependencyIndex::build(flat);

  const std::size_t l1 = activity_index(flat, "ahs/vehicles[0]/one_vehicle/L1");
  ASSERT_TRUE(dep.reads_exact(l1));
  const auto reads = to_vec(dep.reads(l1));
  std::vector<std::uint32_t> want{
      flat.place_offset(flat.place_index("ahs/vehicles[0]/one_vehicle/my_id")),
      flat.place_offset(flat.place_index("ahs/vehicles[0]/one_vehicle/CC1")),
      flat.place_offset(flat.place_index("KO_total"))};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(reads, want);

  // The affected set must not drag in other vehicles' failure modes or
  // maneuvers.  (Their exit_transit legitimately appears: its predicate
  // consults the shared active_m array, which L1's recovery start writes.)
  const auto& acts = flat.activities();
  for (std::uint32_t b : dep.affected_by(l1)) {
    const std::string& name = acts[b].name;
    if (name.find("vehicles[") == std::string::npos ||
        name.find("vehicles[0]/") != std::string::npos)
      continue;
    EXPECT_NE(name.find("exit_transit"), std::string::npos)
        << "L1 of veh[0] must not affect another vehicle's " << name;
  }
  // ... and it stays far below "everything": the full-rescan engine would
  // re-examine every activity.
  EXPECT_LT(dep.affected_by(l1).size(), flat.activities().size() / 2);
}

TEST(DependencyIndex, SystemModelSummaryReportsFallbacks) {
  ahs::Parameters p;
  p.max_per_platoon = 2;
  const auto flat = ahs::build_system_model(p);
  const auto dep = san::DependencyIndex::build(flat);
  EXPECT_EQ(dep.num_activities(), flat.activities().size());
  EXPECT_EQ(dep.num_slots(), flat.marking_size());
  // All AHS activities carry declarations, so nothing falls back.
  for (std::size_t ai = 0; ai < dep.num_activities(); ++ai) {
    EXPECT_TRUE(dep.reads_exact(ai)) << flat.activities()[ai].name;
    EXPECT_TRUE(dep.writes_exact(ai)) << flat.activities()[ai].name;
  }
  EXPECT_NE(dep.summary().find("activities"), std::string::npos);
}

}  // namespace
