// Coordination-policy tests: strategy parsing, assistant sets per §2.2,
// and the orderings the paper's Fig 14 rests on.
#include <gtest/gtest.h>

#include <algorithm>

#include "ahs/coordination.h"
#include "util/error.h"

namespace {

using namespace ahs;

TEST(Strategy, ParseRoundTrip) {
  for (Strategy s : kAllStrategies)
    EXPECT_EQ(parse_strategy(to_string(s)), s);
  EXPECT_EQ(parse_strategy("dd"), Strategy::kDD);
  EXPECT_THROW(parse_strategy("XX"), util::PreconditionError);
}

TEST(Strategy, CentralizationFlags) {
  EXPECT_FALSE(CoordinationPolicy(Strategy::kDD).inter_centralized());
  EXPECT_FALSE(CoordinationPolicy(Strategy::kDD).intra_centralized());
  EXPECT_FALSE(CoordinationPolicy(Strategy::kDC).inter_centralized());
  EXPECT_TRUE(CoordinationPolicy(Strategy::kDC).intra_centralized());
  EXPECT_TRUE(CoordinationPolicy(Strategy::kCD).inter_centralized());
  EXPECT_FALSE(CoordinationPolicy(Strategy::kCD).intra_centralized());
  EXPECT_TRUE(CoordinationPolicy(Strategy::kCC).inter_centralized());
  EXPECT_TRUE(CoordinationPolicy(Strategy::kCC).intra_centralized());
}

TEST(Assistants, TieEDecentralizedInterMatchesSection221) {
  // "only the leaders of the two platoons and the vehicles just in front
  // and behind the faulty vehicle" — faulty at position 4 of 8: own-platoon
  // assistants {0, 3, 5} plus the neighbour leader.
  const CoordinationPolicy dd(Strategy::kDD);
  const auto set =
      dd.assistants(Maneuver::kTakeImmediateExitEscorted, 4, 8);
  EXPECT_EQ(set.own_platoon_positions, (std::vector<int>{0, 3, 5}));
  EXPECT_TRUE(set.neighbor_leader);
}

TEST(Assistants, TieECentralizedInterInvolvesAllAhead) {
  // "all the vehicles in front of the faulty vehicle (including the
  // leader) and the vehicle just behind it" + neighbour leader.
  const CoordinationPolicy cd(Strategy::kCD);
  const auto set =
      cd.assistants(Maneuver::kTakeImmediateExitEscorted, 4, 8);
  EXPECT_EQ(set.own_platoon_positions, (std::vector<int>{0, 1, 2, 3, 5}));
  EXPECT_TRUE(set.neighbor_leader);
}

TEST(Assistants, IntraCentralizedAddsLeaderEverywhere) {
  const CoordinationPolicy dd(Strategy::kDD);
  const CoordinationPolicy dc(Strategy::kDC);
  for (Maneuver m : kAllManeuvers) {
    const auto d = dd.assistants(m, 3, 6).own_platoon_positions;
    const auto c = dc.assistants(m, 3, 6).own_platoon_positions;
    EXPECT_TRUE(std::find(c.begin(), c.end(), 0) != c.end())
        << short_name(m) << ": centralized intra must include the leader";
    EXPECT_GE(c.size(), d.size());
  }
}

TEST(Assistants, UnassistedManeuversUnderDD) {
  const CoordinationPolicy dd(Strategy::kDD);
  for (Maneuver m : {Maneuver::kTakeImmediateExitNormal,
                     Maneuver::kGentleStop, Maneuver::kCrashStop}) {
    const auto set = dd.assistants(m, 2, 5);
    EXPECT_TRUE(set.own_platoon_positions.empty()) << short_name(m);
    EXPECT_FALSE(set.neighbor_leader);
  }
}

TEST(Assistants, AidedStopUsesVehicleAhead) {
  const CoordinationPolicy dd(Strategy::kDD);
  const auto set = dd.assistants(Maneuver::kAidedStop, 3, 5);
  EXPECT_EQ(set.own_platoon_positions, (std::vector<int>{2}));
  // The leader has no vehicle ahead.
  const auto leader = dd.assistants(Maneuver::kAidedStop, 0, 5);
  EXPECT_TRUE(leader.own_platoon_positions.empty());
}

TEST(Assistants, EdgePositionsClip) {
  const CoordinationPolicy dd(Strategy::kDD);
  // Last vehicle: no "behind".
  const auto tail = dd.assistants(Maneuver::kTakeImmediateExit, 4, 5);
  EXPECT_EQ(tail.own_platoon_positions, (std::vector<int>{3}));
  // Singleton platoon: nothing to assist with.
  const auto solo = dd.assistants(Maneuver::kTakeImmediateExit, 0, 1);
  EXPECT_TRUE(solo.own_platoon_positions.empty());
}

TEST(Assistants, PositionValidation) {
  const CoordinationPolicy dd(Strategy::kDD);
  EXPECT_THROW(dd.assistants(Maneuver::kGentleStop, 5, 5),
               util::PreconditionError);
  EXPECT_THROW(dd.assistants(Maneuver::kGentleStop, 0, 0),
               util::PreconditionError);
}

TEST(AssistantCount, CentralizedInterNeedsMoreForTieE) {
  // The load-bearing fact behind Fig 14: centralized inter-platoon
  // coordination involves more vehicles.
  for (double size : {4.0, 8.0, 12.0}) {
    const double dd = CoordinationPolicy(Strategy::kDD)
                          .assistant_count(
                              Maneuver::kTakeImmediateExitEscorted, size);
    const double cd = CoordinationPolicy(Strategy::kCD)
                          .assistant_count(
                              Maneuver::kTakeImmediateExitEscorted, size);
    EXPECT_GT(cd, dd) << "platoon size " << size;
  }
}

TEST(AssistantCount, GrowsWithPlatoonSizeOnlyWhenCentralizedInter) {
  const CoordinationPolicy dd(Strategy::kDD);
  const CoordinationPolicy cd(Strategy::kCD);
  const double dd4 =
      dd.assistant_count(Maneuver::kTakeImmediateExitEscorted, 4);
  const double dd12 =
      dd.assistant_count(Maneuver::kTakeImmediateExitEscorted, 12);
  const double cd4 =
      cd.assistant_count(Maneuver::kTakeImmediateExitEscorted, 4);
  const double cd12 =
      cd.assistant_count(Maneuver::kTakeImmediateExitEscorted, 12);
  EXPECT_NEAR(dd12, dd4, 0.8);  // decentralized: bounded participant set
  EXPECT_GT(cd12, cd4 + 2.0);   // centralized: ~half the platoon ahead
}

TEST(AssistantCount, InterSwingOnTieEDominatesIntraSwing) {
  // Switching the inter-platoon model D→C changes TIE-E's participant set
  // far more than switching the intra-platoon model does for any maneuver;
  // since TIE-E failures escalate into class A (the catastrophic path),
  // this is the mechanism behind the paper's "inter-platoon strategy has
  // more impact" finding — asserted at the unsafety level in test_lumped.
  const double size = 10.0;
  const double tie_e_swing =
      CoordinationPolicy(Strategy::kCD)
          .assistant_count(Maneuver::kTakeImmediateExitEscorted, size) -
      CoordinationPolicy(Strategy::kDD)
          .assistant_count(Maneuver::kTakeImmediateExitEscorted, size);
  for (Maneuver m : kAllManeuvers) {
    const double intra_swing =
        CoordinationPolicy(Strategy::kDC).assistant_count(m, size) -
        CoordinationPolicy(Strategy::kDD).assistant_count(m, size);
    EXPECT_GT(tie_e_swing, intra_swing) << short_name(m);
  }
}

}  // namespace
