// State-space generation from SANs: tangible/vanishing elimination,
// probabilistic instantaneous branching, absorbing truncation, and
// end-to-end agreement of the generated CTMC with closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/state_space.h"
#include "ctmc/uniformization.h"
#include "san/composition.h"
#include "util/error.h"

namespace {

std::shared_ptr<san::AtomicModel> flipflop(double a, double b) {
  auto m = std::make_shared<san::AtomicModel>("ff");
  const auto up = m->place("up", 1);
  const auto down = m->place("down");
  m->timed_activity("fall")
      .distribution(util::Distribution::Exponential(a))
      .input_arc(up)
      .output_arc(down);
  m->timed_activity("rise")
      .distribution(util::Distribution::Exponential(b))
      .input_arc(down)
      .output_arc(up);
  return m;
}

TEST(StateSpace, FlipflopHasTwoStates) {
  const auto flat = san::flatten(flipflop(3.0, 1.0));
  const auto space = ctmc::build_state_space(flat);
  EXPECT_EQ(space.chain.num_states, 2u);
  EXPECT_DOUBLE_EQ(space.chain.exit_rate[0], 3.0);
  // Transient solution must match the closed form.
  const auto down_off = flat.place_offset(flat.place_index("down"));
  const auto reward = space.state_rewards(
      [down_off](std::span<const std::int32_t> m) {
        return m[down_off] > 0 ? 1.0 : 0.0;
      });
  const std::vector<double> times = {0.5};
  const auto sol = ctmc::solve_transient(space.chain, reward, times);
  EXPECT_NEAR(sol.expected_reward[0], 0.75 * (1 - std::exp(-4 * 0.5)),
              1e-10);
}

TEST(StateSpace, BirthDeathMatchesErlangB) {
  // M/M/1/K queue, arrival 2, service 3, K = 4: stationary distribution is
  // geometric-truncated; check state count (K+1) and generator row sums.
  auto m = std::make_shared<san::AtomicModel>("mm1k");
  const auto q = m->place("q", 0);
  m->timed_activity("arrive")
      .distribution(util::Distribution::Exponential(2.0))
      .input_gate([q](const san::MarkingRef& r) { return r.get(q) < 4; })
      .output_arc(q);
  m->timed_activity("serve")
      .distribution(util::Distribution::Exponential(3.0))
      .input_arc(q);
  const auto flat = san::flatten(m);
  const auto space = ctmc::build_state_space(flat);
  EXPECT_EQ(space.chain.num_states, 5u);
}

TEST(StateSpace, VanishingEliminationWithBranching) {
  // Timed t fills `mid`; an instantaneous activity immediately splits the
  // token 30/70 into a/b.  Tangible states must never contain a `mid`
  // token, and the split rates must be 0.3 r and 0.7 r.
  auto m = std::make_shared<san::AtomicModel>("branch");
  const auto src = m->place("src", 1);
  const auto mid = m->place("mid");
  const auto a = m->place("a");
  const auto b = m->place("b");
  m->timed_activity("t")
      .distribution(util::Distribution::Exponential(5.0))
      .input_arc(src)
      .output_arc(mid);
  auto inst = m->instant_activity("split").input_arc(mid);
  inst.add_case(0.3);
  inst.add_case(0.7);
  inst.output_arc(a, 1, 0);
  inst.output_arc(b, 1, 1);
  const auto flat = san::flatten(m);
  const auto space = ctmc::build_state_space(flat);
  ASSERT_EQ(space.chain.num_states, 3u);  // {src}, {a}, {b}
  const auto mid_off = flat.place_offset(flat.place_index("mid"));
  for (const auto& st : space.states) EXPECT_EQ(st[mid_off], 0);
  // Initial state row: rates 1.5 and 3.5.
  double total = 0.0;
  for (double v : space.chain.rates.row_values(0)) total += v;
  EXPECT_NEAR(total, 5.0, 1e-12);
  EXPECT_NEAR(space.chain.exit_rate[0], 5.0, 1e-12);
  const auto vals = space.chain.rates.row_values(0);
  ASSERT_EQ(vals.size(), 2u);
  const double lo = std::min(vals[0], vals[1]);
  const double hi = std::max(vals[0], vals[1]);
  EXPECT_NEAR(lo, 1.5, 1e-12);
  EXPECT_NEAR(hi, 3.5, 1e-12);
}

TEST(StateSpace, AbsorbingPredicateTruncates) {
  // Unbounded counter, truncated by declaring count >= 3 absorbing.
  auto m = std::make_shared<san::AtomicModel>("counter");
  const auto c = m->place("c", 0);
  m->timed_activity("inc")
      .distribution(util::Distribution::Exponential(1.0))
      .output_arc(c);
  const auto flat = san::flatten(m);
  const auto c_off = flat.place_offset(flat.place_index("c"));
  ctmc::StateSpaceOptions opts;
  opts.absorbing = [c_off](std::span<const std::int32_t> mk) {
    return mk[c_off] >= 3;
  };
  const auto space = ctmc::build_state_space(flat, opts);
  EXPECT_EQ(space.chain.num_states, 4u);  // 0,1,2,3
  EXPECT_DOUBLE_EQ(space.chain.exit_rate[3], 0.0);
}

TEST(StateSpace, MaxStatesGuard) {
  auto m = std::make_shared<san::AtomicModel>("unbounded");
  const auto c = m->place("c", 0);
  // The (vacuous) input gate keeps the structural layer from *proving*
  // unboundedness — a bare producer would be rejected before exploration
  // (see ProvedUnboundedRejectedUpfront) and never reach the guard.
  m->timed_activity("inc")
      .distribution(util::Distribution::Exponential(1.0))
      .input_gate([](const san::MarkingRef&) { return true; })
      .output_arc(c);
  const auto flat = san::flatten(m);
  ctmc::StateSpaceOptions opts;
  opts.max_states = 100;
  EXPECT_THROW(ctmc::build_state_space(flat, opts), util::NumericalError);
}

TEST(StateSpace, ProvedUnboundedRejectedUpfront) {
  // A bare self-sustaining producer is *proved* unbounded by the
  // invariants layer; generation must refuse it immediately instead of
  // exploring max_states states first.
  auto m = std::make_shared<san::AtomicModel>("unbounded");
  const auto c = m->place("c", 0);
  m->timed_activity("inc")
      .distribution(util::Distribution::Exponential(1.0))
      .output_arc(c);
  const auto flat = san::flatten(m);
  ctmc::StateSpaceOptions opts;
  opts.max_states = 100;
  EXPECT_THROW(ctmc::build_state_space(flat, opts), util::ModelError);
}

TEST(StateSpace, RequiresExponential) {
  auto m = std::make_shared<san::AtomicModel>("det");
  const auto p = m->place("p", 1);
  m->timed_activity("t")
      .distribution(util::Distribution::Deterministic(1.0))
      .input_arc(p);
  const auto flat = san::flatten(m);
  EXPECT_THROW(ctmc::build_state_space(flat), util::PreconditionError);
}

TEST(StateSpace, SelfLoopsAreDropped) {
  // An activity that does not change the marking must not create an edge.
  auto m = std::make_shared<san::AtomicModel>("noop");
  const auto p = m->place("p", 1);
  m->timed_activity("spin")
      .distribution(util::Distribution::Exponential(4.0))
      .input_gate([p](const san::MarkingRef& r) { return r.get(p) > 0; });
  const auto flat = san::flatten(m);
  const auto space = ctmc::build_state_space(flat);
  EXPECT_EQ(space.chain.num_states, 1u);
  EXPECT_DOUBLE_EQ(space.chain.exit_rate[0], 0.0);
}

TEST(StateSpace, MarkingDependentRates) {
  // Death process: rate = population; generator entries must follow.
  auto m = std::make_shared<san::AtomicModel>("death");
  const auto pop = m->place("pop", 3);
  m->timed_activity("die")
      .marking_rate([pop](const san::MarkingRef& r) {
        return static_cast<double>(r.get(pop));
      })
      .input_gate([pop](const san::MarkingRef& r) { return r.get(pop) > 0; })
      .input_arc(pop);
  const auto flat = san::flatten(m);
  const auto space = ctmc::build_state_space(flat);
  ASSERT_EQ(space.chain.num_states, 4u);
  const auto pop_off = flat.place_offset(flat.place_index("pop"));
  for (std::uint32_t s = 0; s < 4; ++s) {
    const int k = space.states[s][pop_off];
    EXPECT_DOUBLE_EQ(space.chain.exit_rate[s], static_cast<double>(k));
  }
}

}  // namespace
