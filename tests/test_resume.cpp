// Kill/resume conformance: a run cut by cancellation or a wall-clock budget
// and resumed from its checkpoint must be *bitwise identical* to the
// uninterrupted run — for estimate_transient and for run_sweep — and a
// checkpoint that does not match the resuming run must be rejected.  Also
// covers the absolute half-width floor (the mean-zero trap) and the sweep's
// degraded-point path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "ahs/sweep.h"
#include "san/composition.h"
#include "san/rewards.h"
#include "sim/transient.h"
#include "util/logging.h"
#include "util/snapshot.h"

namespace {

namespace fs = std::filesystem;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// Pure-death absorption: P(absorbed by t) = 1 − e^{-rt}.
std::shared_ptr<san::AtomicModel> absorber(double rate) {
  auto m = std::make_shared<san::AtomicModel>("abs");
  const auto alive = m->place("alive", 1);
  const auto dead = m->place("dead");
  m->timed_activity("die")
      .distribution(util::Distribution::Exponential(rate))
      .input_arc(alive)
      .output_arc(dead);
  return m;
}

// Every double in the two results must match bit for bit — the resume
// guarantee is bitwise identity, not numeric closeness.
void expect_bitwise_equal(const sim::TransientResult& a,
                          const sim::TransientResult& b) {
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (std::size_t i = 0; i < a.estimates.size(); ++i) {
    EXPECT_EQ(bits(a.estimates[i].mean), bits(b.estimates[i].mean)) << i;
    EXPECT_EQ(bits(a.estimates[i].half_width), bits(b.estimates[i].half_width))
        << i;
  }
  EXPECT_EQ(bits(a.ess), bits(b.ess));
  EXPECT_EQ(bits(a.lr_variance), bits(b.lr_variance));
  ASSERT_EQ(a.rel_half_width_trajectory.size(),
            b.rel_half_width_trajectory.size());
  for (std::size_t i = 0; i < a.rel_half_width_trajectory.size(); ++i)
    EXPECT_EQ(bits(a.rel_half_width_trajectory[i]),
              bits(b.rel_half_width_trajectory[i]))
        << i;
}

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ahs_resume_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

sim::TransientOptions base_transient_options() {
  sim::TransientOptions opts;
  opts.time_points = {0.5, 1.0};
  opts.min_replications = 500;
  opts.max_replications = 6000;
  opts.rel_half_width = 1e-9;  // never converges: the run always hits max
  opts.check_every = 500;
  opts.seed = 7;
  return opts;
}

// Wraps `inner` so that the stop flag is raised after `cut` evaluations:
// a deterministic mid-run cancellation without touching the sampled values.
san::RewardFn cutting_reward(const san::RewardFn& inner,
                             std::shared_ptr<std::atomic<std::uint64_t>> calls,
                             std::uint64_t cut,
                             std::atomic<bool>* flag) {
  return [inner, calls, cut, flag](std::span<const std::int32_t> m) {
    if (calls->fetch_add(1, std::memory_order_relaxed) + 1 == cut)
      flag->store(true, std::memory_order_relaxed);
    return inner(m);
  };
}

TEST_F(ResumeTest, TransientCancelResumeIsBitwiseIdentical) {
  const auto flat = san::flatten(absorber(0.5));
  const auto reward = san::indicator_nonzero(flat, "dead");
  sim::TransientOptions opts = base_transient_options();

  const sim::TransientResult ref = sim::estimate_transient(flat, reward, opts);
  ASSERT_EQ(ref.replications, 6000u);

  // Cut: the counting reward raises the stop flag mid-round; the estimator
  // notices at the next round boundary and flushes a checkpoint.
  std::atomic<bool> flag{false};
  auto calls = std::make_shared<std::atomic<std::uint64_t>>(0);
  opts.checkpoint_path = path("transient.ckpt");
  opts.checkpoint_every = 1'000'000;  // only the cancel flush writes
  opts.stop = &flag;
  const sim::TransientResult cut = sim::estimate_transient(
      flat, cutting_reward(reward, calls, 1200, &flag), opts);
  EXPECT_EQ(cut.stop_reason, sim::TransientStop::kCancelled);
  EXPECT_FALSE(cut.converged);
  ASSERT_GT(cut.replications, 0u);
  ASSERT_LT(cut.replications, 6000u);
  ASSERT_TRUE(fs::exists(opts.checkpoint_path));

  // Resume with the identical estimation options (budgets and the stop
  // wiring are not part of the checkpoint identity).
  opts.stop = nullptr;
  opts.resume = true;
  const sim::TransientResult resumed =
      sim::estimate_transient(flat, reward, opts);
  EXPECT_TRUE(resumed.resumed);
  expect_bitwise_equal(ref, resumed);
}

TEST_F(ResumeTest, TransientCancelResumeIsBitwiseIdenticalThreaded) {
  const auto flat = san::flatten(absorber(0.5));
  const auto reward = san::indicator_nonzero(flat, "dead");
  sim::TransientOptions opts = base_transient_options();
  opts.threads = 3;

  const sim::TransientResult ref = sim::estimate_transient(flat, reward, opts);

  std::atomic<bool> flag{false};
  auto calls = std::make_shared<std::atomic<std::uint64_t>>(0);
  opts.checkpoint_path = path("transient.ckpt");
  opts.checkpoint_every = 1'000'000;
  opts.stop = &flag;
  const sim::TransientResult cut = sim::estimate_transient(
      flat, cutting_reward(reward, calls, 1200, &flag), opts);
  EXPECT_EQ(cut.stop_reason, sim::TransientStop::kCancelled);
  ASSERT_LT(cut.replications, 6000u);

  opts.stop = nullptr;
  opts.resume = true;
  const sim::TransientResult resumed =
      sim::estimate_transient(flat, reward, opts);
  EXPECT_TRUE(resumed.resumed);
  expect_bitwise_equal(ref, resumed);
}

TEST_F(ResumeTest, TransientTimeoutLadderConverges) {
  // Real-world shape: a sequence of budget-limited attempts, each resuming
  // the previous checkpoint, must land on the exact bits of a single
  // uninterrupted run no matter where the budgets happened to cut.
  const auto flat = san::flatten(absorber(0.5));
  const auto reward = san::indicator_nonzero(flat, "dead");
  sim::TransientOptions opts = base_transient_options();
  opts.min_replications = 200'000;
  opts.max_replications = 200'000;
  opts.check_every = 5000;

  const auto ref_start = std::chrono::steady_clock::now();
  const sim::TransientResult ref = sim::estimate_transient(flat, reward, opts);
  const double ref_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ref_start)
          .count();

  opts.checkpoint_path = path("ladder.ckpt");
  opts.checkpoint_every = 5000;
  // A budget of a fraction of the measured uninterrupted duration cuts the
  // run several times on any hardware; each leg still finishes the round
  // it started, so every leg makes progress.
  opts.max_seconds = std::max(0.002, ref_seconds / 6.0);
  int legs = 0;
  bool saw_timeout = false;
  sim::TransientResult last;
  for (;;) {
    last = sim::estimate_transient(flat, reward, opts);
    opts.resume = true;
    ASSERT_LT(++legs, 500) << "ladder is not making progress";
    if (last.stop_reason != sim::TransientStop::kTimedOut) break;
    saw_timeout = true;
  }
  EXPECT_TRUE(saw_timeout);  // the budget actually cut the run at least once
  EXPECT_TRUE(last.resumed);
  expect_bitwise_equal(ref, last);
}

TEST_F(ResumeTest, TransientResumeOfFinishedRunIsNoOp) {
  const auto flat = san::flatten(absorber(0.5));
  const auto reward = san::indicator_nonzero(flat, "dead");
  sim::TransientOptions opts = base_transient_options();
  opts.checkpoint_path = path("done.ckpt");
  const sim::TransientResult first = sim::estimate_transient(flat, reward, opts);

  opts.resume = true;
  const sim::TransientResult again = sim::estimate_transient(flat, reward, opts);
  EXPECT_TRUE(again.resumed);
  // No additional replications ran: everything, events included, is the
  // restored terminal state.
  expect_bitwise_equal(first, again);
}

TEST_F(ResumeTest, TransientRejectsMismatchedCheckpoints) {
  const auto flat = san::flatten(absorber(0.5));
  const auto reward = san::indicator_nonzero(flat, "dead");
  sim::TransientOptions opts = base_transient_options();
  opts.checkpoint_path = path("id.ckpt");
  opts.model_fingerprint = 0xfeed;
  (void)sim::estimate_transient(flat, reward, opts);
  opts.resume = true;

  // Different model.
  sim::TransientOptions other = opts;
  other.model_fingerprint = 0xbeef;
  EXPECT_THROW(sim::estimate_transient(flat, reward, other),
               util::SnapshotError);
  // Different seed.
  other = opts;
  other.seed = opts.seed + 1;
  EXPECT_THROW(sim::estimate_transient(flat, reward, other),
               util::SnapshotError);
  // Different result-determining option.
  other = opts;
  other.rel_half_width = 0.25;
  EXPECT_THROW(sim::estimate_transient(flat, reward, other),
               util::SnapshotError);
  // Different thread count (merge order differs, so it is part of the
  // identity).
  other = opts;
  other.threads = 2;
  EXPECT_THROW(sim::estimate_transient(flat, reward, other),
               util::SnapshotError);
  // The matching run still resumes fine.
  const sim::TransientResult ok = sim::estimate_transient(flat, reward, opts);
  EXPECT_TRUE(ok.resumed);
}

TEST(TransientAbsFloor, StopsMeanZeroRunAtFloorWithWarning) {
  // Absorption rate 1e-9 over a horizon of 1: every observation is 0, the
  // relative half-width is +inf forever, and without the floor the run
  // would burn max_replications (the satellite bug).
  const auto flat = san::flatten(absorber(1e-9));
  const auto reward = san::indicator_nonzero(flat, "dead");
  sim::TransientOptions opts;
  opts.time_points = {1.0};
  opts.min_replications = 1000;
  opts.max_replications = 50'000;
  opts.check_every = 500;
  opts.rel_half_width = 0.1;
  opts.abs_half_width = 1e-6;

  std::vector<std::string> lines;
  util::set_log_sink([&lines](const std::string& line) {
    lines.push_back(line);
  });
  const sim::TransientResult res = sim::estimate_transient(flat, reward, opts);
  util::set_log_sink(nullptr);

  EXPECT_EQ(res.stop_reason, sim::TransientStop::kAbsHalfWidth);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.replications, 1000u);  // stopped at the first eligible check
  bool warned = false;
  for (const auto& line : lines)
    warned = warned ||
             line.find("absolute half-width floor") != std::string::npos;
  EXPECT_TRUE(warned);
}

TEST(TransientAbsFloor, WithoutFloorMeanZeroBurnsTheBudget) {
  const auto flat = san::flatten(absorber(1e-9));
  const auto reward = san::indicator_nonzero(flat, "dead");
  sim::TransientOptions opts;
  opts.time_points = {1.0};
  opts.min_replications = 1000;
  opts.max_replications = 4000;
  opts.check_every = 500;
  opts.rel_half_width = 0.1;
  const sim::TransientResult res = sim::estimate_transient(flat, reward, opts);
  EXPECT_EQ(res.stop_reason, sim::TransientStop::kMaxReplications);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.replications, 4000u);
}

// ---- sweep-level resume ------------------------------------------------

ahs::Parameters small_params() {
  ahs::Parameters p;
  p.max_per_platoon = 2;
  p.base_failure_rate = 2e-3;
  return p;
}

void expect_curves_bitwise_equal(const ahs::UnsafetyCurve& a,
                                 const ahs::UnsafetyCurve& b) {
  ASSERT_EQ(a.times.size(), b.times.size());
  for (std::size_t j = 0; j < a.times.size(); ++j) {
    EXPECT_EQ(bits(a.times[j]), bits(b.times[j])) << j;
    EXPECT_EQ(bits(a.unsafety[j]), bits(b.unsafety[j])) << j;
    EXPECT_EQ(bits(a.half_width[j]), bits(b.half_width[j])) << j;
  }
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.converged, b.converged);
}

TEST_F(ResumeTest, SweepRestoresCompletedPointsBitwise) {
  const ahs::GridAxis lambda{"lambda",
                             {2e-3, 1e-3, 5e-4},
                             [](ahs::Parameters& p, double v) {
                               p.base_failure_rate = v;
                             }};
  const auto points = ahs::make_grid(small_params(), lambda);
  const std::vector<double> times = {1.0, 2.0, 4.0};

  ahs::SweepOptions opts;
  opts.threads = 1;
  opts.checkpoint_dir = path("ckpt");
  const ahs::SweepResult first = ahs::run_sweep(points, times, opts);
  ASSERT_TRUE(first.complete());
  for (const auto o : first.outcome)
    EXPECT_EQ(o, ahs::PointOutcome::kComputed);

  opts.resume = true;
  const ahs::SweepResult second = ahs::run_sweep(points, times, opts);
  ASSERT_TRUE(second.complete());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(second.outcome[i], ahs::PointOutcome::kRestored) << i;
    expect_curves_bitwise_equal(first.curves[i], second.curves[i]);
  }
}

TEST_F(ResumeTest, SweepRejectsMismatchedResume) {
  const auto points =
      ahs::make_grid(small_params(),
                     ahs::GridAxis{"lambda",
                                   {2e-3},
                                   [](ahs::Parameters& p, double v) {
                                     p.base_failure_rate = v;
                                   }});
  ahs::SweepOptions opts;
  opts.threads = 1;
  opts.checkpoint_dir = path("ckpt");
  (void)ahs::run_sweep(points, {1.0, 2.0}, opts);

  opts.resume = true;
  // Different evaluation grid: the durable result must be rejected, not
  // silently served for the wrong times.
  EXPECT_THROW(ahs::run_sweep(points, {1.0, 3.0}, opts), util::SnapshotError);
  // And a different seed is a different run.
  ahs::SweepOptions reseeded = opts;
  reseeded.study.seed = 777;
  EXPECT_THROW(ahs::run_sweep(points, {1.0, 2.0}, reseeded),
               util::SnapshotError);
}

TEST_F(ResumeTest, SweepResumesInFlightSimulationPoint) {
  // A simulation point cut by its per-point wall budget is recorded as
  // degraded with its progress checkpointed; the resume run continues the
  // estimate and the final curve is bitwise identical to an uninterrupted
  // sweep.
  const auto points =
      ahs::make_grid(small_params(),
                     ahs::GridAxis{"lambda",
                                   {2e-3},
                                   [](ahs::Parameters& p, double v) {
                                     p.base_failure_rate = v;
                                   }});
  const std::vector<double> times = {1.0, 2.0};

  ahs::SweepOptions opts;
  opts.threads = 1;
  opts.study.engine = ahs::Engine::kSimulation;
  opts.study.min_replications = 20'000;
  opts.study.max_replications = 20'000;
  opts.study.seed = 9;
  const ahs::SweepResult ref = ahs::run_sweep(points, times, opts);
  ASSERT_TRUE(ref.complete());

  ahs::SweepOptions robust = opts;
  robust.checkpoint_dir = path("ckpt");
  robust.study.checkpoint_every = 1000;
  // A fraction of the measured uninterrupted point duration guarantees the
  // budget fires mid-estimate on any hardware.
  robust.point_timeout_seconds = std::max(0.002, ref.point_seconds[0] / 6.0);
  const ahs::SweepResult cut = ahs::run_sweep(points, times, robust);
  EXPECT_EQ(cut.degraded_count(), 1u);
  EXPECT_NE(cut.degraded_reason[0].find("wall-clock budget"),
            std::string::npos);

  robust.resume = true;
  robust.point_timeout_seconds = 0.0;
  const ahs::SweepResult resumed = ahs::run_sweep(points, times, robust);
  ASSERT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.outcome[0], ahs::PointOutcome::kComputed);
  EXPECT_TRUE(resumed.curves[0].resumed);
  expect_curves_bitwise_equal(ref.curves[0], resumed.curves[0]);

  // One more resume restores the now-durable result without recomputing.
  const ahs::SweepResult restored = ahs::run_sweep(points, times, robust);
  EXPECT_EQ(restored.outcome[0], ahs::PointOutcome::kRestored);
  expect_curves_bitwise_equal(ref.curves[0], restored.curves[0]);
}

TEST_F(ResumeTest, WarmStartsSurviveKillAndResume) {
  // The satellite bug: a point's durable result file holds its curve but no
  // distribution, so after a kill the resumed sweep's *restored* cold build
  // published no warm shape and the recomputed followers fell back to the
  // cold plateau criteria — different iteration counts than the
  // uninterrupted run.  With the warm_starts.cache snapshot the resumed
  // followers must hit the warm criteria and match the uninterrupted run
  // exactly, iteration counts included.
  ahs::Parameters base;
  base.max_per_platoon = 6;
  base.join_rate = 12.0;
  base.leave_rate = 4.0;
  const ahs::GridAxis lambda{"lambda",
                             {1e-6, 1e-5, 1e-4},
                             [](ahs::Parameters& p, double v) {
                               p.base_failure_rate = v;
                             }};
  const auto points = ahs::make_grid(base, lambda);
  const std::vector<double> times = {6.0};

  ahs::SweepOptions opts;
  opts.threads = 1;
  const ahs::SweepResult ref = ahs::run_sweep(points, times, opts);
  ASSERT_TRUE(ref.complete());
  ASSERT_GT(ref.warm_start_hits, 0u)
      << "fixture must exercise the warm-start path";

  ahs::SweepOptions robust = opts;
  robust.checkpoint_dir = path("ckpt");
  const ahs::SweepResult full = ahs::run_sweep(points, times, robust);
  ASSERT_TRUE(full.complete());
  ASSERT_TRUE(fs::exists(path("ckpt/warm_starts.cache")));

  // Emulate a SIGKILL right after the cold build completed: the cold
  // point's result file and the warm snapshot survived; the followers'
  // results never landed.
  fs::remove(path("ckpt/point_1.result"));
  fs::remove(path("ckpt/point_2.result"));

  robust.resume = true;
  const ahs::SweepResult resumed = ahs::run_sweep(points, times, robust);
  ASSERT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.outcome[0], ahs::PointOutcome::kRestored);
  EXPECT_EQ(resumed.outcome[1], ahs::PointOutcome::kComputed);
  EXPECT_EQ(resumed.outcome[2], ahs::PointOutcome::kComputed);
  // The acceptance gauge: recomputed followers actually consumed the
  // preloaded shapes.
  EXPECT_GT(resumed.warm_start_hits, 0u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_curves_bitwise_equal(ref.curves[i], resumed.curves[i]);
    EXPECT_EQ(resumed.curves[i].solver_iterations,
              ref.curves[i].solver_iterations)
        << "follower " << i
        << " must reproduce the uninterrupted iteration count";
  }
}

TEST(SweepDegraded, FailingPointDoesNotAbortTheSweep) {
  std::vector<ahs::SweepPoint> points;
  points.push_back({"good", small_params()});
  ahs::Parameters bad = small_params();
  bad.base_failure_rate = -1.0;  // validate() rejects this at evaluation
  points.push_back({"bad", bad});

  ahs::SweepOptions opts;
  opts.threads = 1;
  opts.max_attempts = 2;
  std::vector<std::string> lines;
  util::set_log_sink([&lines](const std::string& line) {
    lines.push_back(line);
  });
  const ahs::SweepResult result = ahs::run_sweep(points, {1.0, 2.0}, opts);
  util::set_log_sink(nullptr);

  EXPECT_EQ(result.outcome[0], ahs::PointOutcome::kComputed);
  EXPECT_EQ(result.outcome[1], ahs::PointOutcome::kDegraded);
  EXPECT_NE(result.degraded_reason[1].find("failure rate"),
            std::string::npos);
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.degraded_count(), 1u);
  // The retry policy actually retried before giving up.
  bool retried = false;
  for (const auto& line : lines)
    retried = retried || line.find("retrying") != std::string::npos;
  EXPECT_TRUE(retried);
}

TEST(SweepCancel, PreSetStopFlagSkipsEveryPoint) {
  const auto points =
      ahs::make_grid(small_params(),
                     ahs::GridAxis{"lambda",
                                   {2e-3, 1e-3},
                                   [](ahs::Parameters& p, double v) {
                                     p.base_failure_rate = v;
                                   }});
  std::atomic<bool> flag{true};
  ahs::SweepOptions opts;
  opts.threads = 1;
  opts.stop = &flag;
  const ahs::SweepResult result = ahs::run_sweep(points, {1.0}, opts);
  EXPECT_TRUE(result.cancelled);
  for (const auto o : result.outcome)
    EXPECT_EQ(o, ahs::PointOutcome::kSkipped);
  EXPECT_FALSE(result.complete());
}

}  // namespace
