// Static-analysis suite tests: one seeded-defect fixture plus one clean
// fixture per diagnostic ID, engine-preflight wiring, the subsumption
// guarantee (static access sets ⊇ probed observations; a narrowed
// declaration is caught without running the simulator), and the shipped
// AHS configurations linting clean.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "ahs/parameters.h"
#include "ahs/system_model.h"
#include "ctmc/state_space.h"
#include "san/analyze/analysis.h"
#include "san/analyze/diagnostics.h"
#include "san/analyze/probe.h"
#include "san/analyze/structure.h"
#include "san/composition.h"
#include "san/dot.h"
#include "sim/executor.h"
#include "util/error.h"

namespace {

using san::analyze::LintOptions;
using san::analyze::LintReport;
using san::analyze::Severity;

LintReport lint(const san::FlatModel& flat, std::size_t budget = 4096) {
  LintOptions opts;
  opts.probe_budget = budget;
  return san::analyze::run_lint(flat, "fixture", opts);
}

LintReport lint(const std::shared_ptr<san::AtomicModel>& m) {
  return lint(san::flatten(m));
}

bool has_id(const LintReport& r, const std::string& id) {
  for (const auto& d : r.diagnostics)
    if (d.id == id) return true;
  return false;
}

std::string first_message(const LintReport& r, const std::string& id) {
  for (const auto& d : r.diagnostics)
    if (d.id == id) return d.message;
  return "";
}

// Shorthand: no declaration list at all.
constexpr std::initializer_list<san::PlaceToken> kNone = {};

// ---------------------------------------------------------------------------
// DEP001 — undeclared read
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> dep001_model(bool seeded) {
  auto m = std::make_shared<san::AtomicModel>("dep001");
  const auto src = m->place("src", 1);
  const auto q = m->place("q", 1);
  auto t = m->timed_activity("t")
               .distribution(util::Distribution::Exponential(1.0))
               .input_arc(src)
               .input_gate([q](const san::MarkingRef& mr) {
                 return mr.get(q) == 1;
               });
  if (seeded) t.reads(kNone);  // claims the predicate reads nothing
  else t.reads({q});
  return m;
}

TEST(AnalyzeDep, UndeclaredReadCaught) {
  const auto r = lint(dep001_model(true));
  EXPECT_TRUE(has_id(r, "DEP001")) << r.to_text();
  EXPECT_GE(r.errors(), 1u);
}

TEST(AnalyzeDep, DeclaredReadClean) {
  const auto r = lint(dep001_model(false));
  EXPECT_FALSE(has_id(r, "DEP001")) << r.to_text();
  EXPECT_EQ(r.errors(), 0u);
}

// ---------------------------------------------------------------------------
// DEP002 — undeclared write
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> dep002_model(bool seeded) {
  auto m = std::make_shared<san::AtomicModel>("dep002");
  const auto src = m->place("src", 1);
  const auto q = m->place("q");
  auto t = m->timed_activity("t")
               .distribution(util::Distribution::Exponential(1.0))
               .input_arc(src)
               .output_gate([q](const san::MarkingRef& mr) {
                 mr.set(q, 1);
               });
  if (seeded) t.writes(kNone);  // claims the gate writes nothing
  else t.writes({q});
  return m;
}

TEST(AnalyzeDep, UndeclaredWriteCaught) {
  const auto r = lint(dep002_model(true));
  EXPECT_TRUE(has_id(r, "DEP002")) << r.to_text();
  EXPECT_GE(r.errors(), 1u);
}

TEST(AnalyzeDep, DeclaredWriteClean) {
  const auto r = lint(dep002_model(false));
  EXPECT_FALSE(has_id(r, "DEP002")) << r.to_text();
  EXPECT_EQ(r.errors(), 0u);
}

// ---------------------------------------------------------------------------
// DEP003 — over-wide declaration (needs complete probe coverage)
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> dep003_model(bool seeded) {
  auto m = std::make_shared<san::AtomicModel>("dep003");
  const auto src = m->place("src", 1);
  const auto q = m->place("q", 1);
  const auto unused = m->place("unused", 1);
  auto t = m->timed_activity("t")
               .distribution(util::Distribution::Exponential(1.0))
               .input_arc(src)
               .input_gate([q](const san::MarkingRef& mr) {
                 return mr.get(q) == 1;
               });
  if (seeded) t.reads({q, unused});  // `unused` is never consulted
  else t.reads({q});
  return m;
}

TEST(AnalyzeDep, OverWideDeclarationFlagged) {
  const auto r = lint(dep003_model(true));
  ASSERT_TRUE(r.probe_complete) << "fixture must be fully explorable";
  EXPECT_TRUE(has_id(r, "DEP003")) << r.to_text();
  EXPECT_NE(first_message(r, "DEP003").find("unused"), std::string::npos);
  EXPECT_EQ(r.errors(), 0u);  // a perf smell, not an error
}

TEST(AnalyzeDep, TightDeclarationClean) {
  const auto r = lint(dep003_model(false));
  EXPECT_FALSE(has_id(r, "DEP003")) << r.to_text();
}

TEST(AnalyzeDep, OverWidthNotReportedUnderPartialCoverage) {
  const auto r = lint(san::flatten(dep003_model(true)), /*budget=*/1);
  ASSERT_FALSE(r.probe_complete);
  EXPECT_FALSE(has_id(r, "DEP003")) << r.to_text();
}

// ---------------------------------------------------------------------------
// DEP004 — conservative fallback
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> dep004_model(bool seeded) {
  auto m = std::make_shared<san::AtomicModel>("dep004");
  const auto src = m->place("src", 1);
  const auto q = m->place("q", 1);
  auto t = m->timed_activity("t")
               .distribution(util::Distribution::Exponential(1.0))
               .input_arc(src)
               .input_gate([q](const san::MarkingRef& mr) {
                 return mr.get(q) == 1;
               });
  if (!seeded) t.reads({q});  // seeded: no declaration at all
  return m;
}

TEST(AnalyzeDep, FallbackDiagnosed) {
  const auto r = lint(dep004_model(true));
  EXPECT_TRUE(has_id(r, "DEP004")) << r.to_text();
  EXPECT_EQ(r.errors(), 0u);  // sound, just slow — a warning
}

TEST(AnalyzeDep, DeclaredCallbacksNoFallback) {
  const auto r = lint(dep004_model(false));
  EXPECT_FALSE(has_id(r, "DEP004")) << r.to_text();
}

// ---------------------------------------------------------------------------
// DEP005 — impure predicate
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> dep005_model(bool seeded) {
  auto m = std::make_shared<san::AtomicModel>("dep005");
  const auto src = m->place("src", 1);
  const auto q = m->place("q");
  auto t = m->timed_activity("t").distribution(
      util::Distribution::Exponential(1.0));
  t.input_arc(src);
  if (seeded) {
    t.input_gate([q](const san::MarkingRef& mr) {
      mr.set(q, 1);  // side effect inside a predicate
      return true;
    });
  } else {
    t.input_gate([q](const san::MarkingRef& mr) { return mr.get(q) == 0; });
  }
  t.reads({q}).writes({q});
  return m;
}

TEST(AnalyzeDep, ImpurePredicateCaught) {
  const auto r = lint(dep005_model(true));
  EXPECT_TRUE(has_id(r, "DEP005")) << r.to_text();
  EXPECT_GE(r.errors(), 1u);
}

TEST(AnalyzeDep, PurePredicateClean) {
  const auto r = lint(dep005_model(false));
  EXPECT_FALSE(has_id(r, "DEP005")) << r.to_text();
}

// ---------------------------------------------------------------------------
// NET001 — dead activity
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> net001_model(bool seeded) {
  auto m = std::make_shared<san::AtomicModel>("net001");
  const auto a = m->place("a", 1);  // can never exceed one token
  const auto b = m->place("b");
  m->timed_activity("t")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(a, seeded ? 2 : 1)
      .output_arc(b);
  return m;
}

TEST(AnalyzeNet, DeadActivityFlagged) {
  const auto r = lint(net001_model(true));
  EXPECT_TRUE(has_id(r, "NET001")) << r.to_text();
}

TEST(AnalyzeNet, LiveActivityClean) {
  const auto r = lint(net001_model(false));
  EXPECT_FALSE(has_id(r, "NET001")) << r.to_text();
}

// ---------------------------------------------------------------------------
// NET002 — write-only place
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> net002_model(bool seeded) {
  auto m = std::make_shared<san::AtomicModel>("net002");
  const auto src = m->place("src", 1);
  const auto w = m->place("w");
  m->timed_activity("t")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(src)
      .output_arc(w);
  if (!seeded) {
    // A reader makes `w` load-bearing.
    m->timed_activity("u")
        .distribution(util::Distribution::Exponential(1.0))
        .input_arc(src)
        .input_gate([w](const san::MarkingRef& mr) { return mr.get(w) > 0; })
        .reads({w});
  }
  return m;
}

TEST(AnalyzeNet, WriteOnlyPlaceFlagged) {
  const auto r = lint(net002_model(true));
  EXPECT_TRUE(has_id(r, "NET002")) << r.to_text();
  EXPECT_EQ(r.errors(), 0u);
}

TEST(AnalyzeNet, ReadPlaceClean) {
  const auto r = lint(net002_model(false));
  EXPECT_FALSE(has_id(r, "NET002")) << r.to_text();
}

// ---------------------------------------------------------------------------
// NET003 — unbounded place
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> net003_model(bool seeded) {
  auto m = std::make_shared<san::AtomicModel>("net003");
  const auto src = m->place("src", 1);
  const auto w = m->place("w");
  // t recycles its token, so it can fire forever and `w` grows without
  // bound.  The gate keeps `w` read (suppresses NET002) without consuming.
  auto t = m->timed_activity("t")
               .distribution(util::Distribution::Exponential(1.0))
               .input_arc(src)
               .output_arc(src)
               .output_arc(w)
               .input_gate([w](const san::MarkingRef& mr) {
                 return mr.get(w) >= 0;
               });
  t.reads({w});
  if (!seeded) {
    // A consumer bounds nothing structurally, but "never consumed" is the
    // leak signature NET003 keys on.
    m->timed_activity("drain")
        .distribution(util::Distribution::Exponential(1.0))
        .input_arc(w);
  }
  return m;
}

TEST(AnalyzeNet, UnboundedPlaceFlagged) {
  const auto r = lint(net003_model(true));
  EXPECT_TRUE(has_id(r, "NET003")) << r.to_text();
}

TEST(AnalyzeNet, ConsumedPlaceClean) {
  const auto r = lint(net003_model(false));
  EXPECT_FALSE(has_id(r, "NET003")) << r.to_text();
}

// ---------------------------------------------------------------------------
// NET004 — instantaneous arc cycle
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> net004_model(bool seeded) {
  auto m = std::make_shared<san::AtomicModel>("net004");
  const auto a = m->place("a", 1);
  const auto b = m->place("b");
  const auto c = m->place("c");
  m->instant_activity("ab").input_arc(a).output_arc(b);
  if (seeded) m->instant_activity("ba").input_arc(b).output_arc(a);
  else m->instant_activity("bc").input_arc(b).output_arc(c);
  return m;
}

TEST(AnalyzeNet, UngatedVanishingLoopIsError) {
  const auto r = lint(net004_model(true));
  EXPECT_TRUE(has_id(r, "NET004")) << r.to_text();
  EXPECT_GE(r.errors(), 1u);
}

TEST(AnalyzeNet, InstantaneousChainClean) {
  const auto r = lint(net004_model(false));
  EXPECT_FALSE(has_id(r, "NET004")) << r.to_text();
}

TEST(AnalyzeNet, GatedVanishingLoopIsWarning) {
  auto m = std::make_shared<san::AtomicModel>("net004g");
  const auto a = m->place("a", 1);
  const auto b = m->place("b");
  const auto fuel = m->place("fuel", 3);
  // Each traversal burns fuel, so the predicate eventually breaks the loop.
  m->instant_activity("ab").input_arc(a).input_arc(fuel).output_arc(b);
  m->instant_activity("ba")
      .input_arc(b)
      .output_arc(a)
      .input_gate([fuel](const san::MarkingRef& mr) {
        return mr.get(fuel) > 0;
      })
      .reads({fuel});
  const auto r = lint(m);
  EXPECT_TRUE(has_id(r, "NET004")) << r.to_text();
  EXPECT_EQ(r.errors(), 0u) << r.to_text();  // gated: warning, not error
}

// ---------------------------------------------------------------------------
// NET005 — same-priority cross-instance writers of a shared place
// ---------------------------------------------------------------------------

san::FlatModel net005_model(bool seeded) {
  auto make_leaf = [&](const std::string& name, const std::string& act,
                       int priority) {
    auto m = std::make_shared<san::AtomicModel>(name);
    const auto trig = m->place("trig_" + name, 1);
    const auto shared = m->place("s");
    m->instant_activity(act).priority(priority).input_arc(trig).output_arc(
        shared);
    return san::Leaf(m);
  };
  return san::flatten(san::Join(
      "join", {make_leaf("m1", "u", 3), make_leaf("m2", "v", seeded ? 3 : 2)},
      {"s"}));
}

TEST(AnalyzeNet, SharedWriteTieFlagged) {
  const auto r = lint(net005_model(true));
  EXPECT_TRUE(has_id(r, "NET005")) << r.to_text();
  EXPECT_EQ(r.errors(), 0u);
}

TEST(AnalyzeNet, DistinctPrioritiesClean) {
  const auto r = lint(net005_model(false));
  EXPECT_FALSE(has_id(r, "NET005")) << r.to_text();
}

// ---------------------------------------------------------------------------
// NET006 — invalid rate at a reachable enabled marking
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> net006_model(bool seeded) {
  auto m = std::make_shared<san::AtomicModel>("net006");
  const auto src = m->place("src", 1);
  auto t = m->timed_activity("t").input_arc(src);
  if (seeded) t.marking_rate([](const san::MarkingRef&) { return 0.0; });
  else t.marking_rate([](const san::MarkingRef&) { return 2.0; });
  t.reads(kNone);
  return m;
}

TEST(AnalyzeNet, NonPositiveRateCaught) {
  const auto r = lint(net006_model(true));
  EXPECT_TRUE(has_id(r, "NET006")) << r.to_text();
  EXPECT_GE(r.errors(), 1u);
}

TEST(AnalyzeNet, PositiveRateClean) {
  const auto r = lint(net006_model(false));
  EXPECT_FALSE(has_id(r, "NET006")) << r.to_text();
}

// ---------------------------------------------------------------------------
// NET007 — invalid case weights
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> net007_model(bool seeded) {
  auto m = std::make_shared<san::AtomicModel>("net007");
  const auto src = m->place("src", 1);
  const auto l = m->place("l");
  const auto rr = m->place("r");
  auto t = m->timed_activity("t")
               .distribution(util::Distribution::Exponential(1.0));
  t.input_arc(src);
  const double w = seeded ? 0.0 : 0.5;
  t.add_case([w](const san::MarkingRef&) { return w; });
  t.add_case([w](const san::MarkingRef&) { return w; });
  t.output_arc(l, 1, 0);
  t.output_arc(rr, 1, 1);
  return m;
}

TEST(AnalyzeNet, ZeroTotalWeightCaught) {
  const auto r = lint(net007_model(true));
  EXPECT_TRUE(has_id(r, "NET007")) << r.to_text();
  EXPECT_GE(r.errors(), 1u);
}

TEST(AnalyzeNet, PositiveWeightsClean) {
  const auto r = lint(net007_model(false));
  EXPECT_FALSE(has_id(r, "NET007")) << r.to_text();
}

// ---------------------------------------------------------------------------
// NET008 — throwing callback
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> net008_model(bool seeded) {
  auto m = std::make_shared<san::AtomicModel>("net008");
  const auto src = m->place("src", 1);
  auto t = m->timed_activity("t")
               .distribution(util::Distribution::Exponential(1.0));
  t.input_arc(src);
  if (seeded) {
    t.input_gate([](const san::MarkingRef&) -> bool {
      throw std::runtime_error("boom at marking");
    });
  } else {
    t.input_gate([](const san::MarkingRef&) { return true; });
  }
  t.reads(kNone);
  return m;
}

TEST(AnalyzeNet, ThrowingCallbackCaught) {
  const auto r = lint(net008_model(true));
  EXPECT_TRUE(has_id(r, "NET008")) << r.to_text();
  EXPECT_NE(first_message(r, "NET008").find("boom"), std::string::npos);
}

TEST(AnalyzeNet, HealthyCallbackClean) {
  const auto r = lint(net008_model(false));
  EXPECT_FALSE(has_id(r, "NET008")) << r.to_text();
}

// ---------------------------------------------------------------------------
// Report plumbing: suppression, JSON schema, catalogue.
// ---------------------------------------------------------------------------

TEST(AnalyzeReport, SuppressionFiltersIds) {
  LintOptions opts;
  opts.disabled_ids = {"DEP001"};
  const auto flat = san::flatten(dep001_model(true));
  const auto r = san::analyze::run_lint(flat, "fixture", opts);
  EXPECT_FALSE(has_id(r, "DEP001"));
}

TEST(AnalyzeReport, UnknownSuppressionIdRejected) {
  LintOptions opts;
  opts.disabled_ids = {"NOPE42"};
  const auto flat = san::flatten(dep001_model(false));
  EXPECT_THROW(san::analyze::run_lint(flat, "fixture", opts),
               util::ModelError);
}

TEST(AnalyzeReport, JsonDocumentHasSchemaAndSummary) {
  const LintReport r = lint(dep002_model(true));
  const std::string doc = san::analyze::lint_json_document({&r, 1});
  EXPECT_NE(doc.find("\"schema\": \"ahs.lint.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"DEP002\""), std::string::npos);
  EXPECT_NE(doc.find("\"errors\": 1"), std::string::npos);
}

TEST(AnalyzeReport, CatalogueCoversAllEmittedIds) {
  for (const auto& info : san::analyze::diagnostic_catalog()) {
    EXPECT_NE(san::analyze::find_diagnostic(info.id), nullptr);
  }
  EXPECT_EQ(san::analyze::find_diagnostic("XXX999"), nullptr);
  EXPECT_EQ(san::analyze::diagnostic_catalog().size(), 20u);
}

TEST(AnalyzeReport, DotHighlightsFindings) {
  const auto flat = san::flatten(net001_model(true));
  const LintReport r = lint(flat);
  const std::string dot = san::to_dot(flat, &r);
  EXPECT_NE(dot.find("orange"), std::string::npos);  // NET001 is a warning
}

// ---------------------------------------------------------------------------
// Engine preflight wiring.
// ---------------------------------------------------------------------------

TEST(AnalyzePreflight, ExecutorRejectsUnsoundDeclarations) {
  const auto flat = san::flatten(dep002_model(true));
  EXPECT_THROW(sim::Executor(flat, util::Rng(1)), util::ModelError);
  sim::Executor::Options opts;
  opts.lint = false;  // opting out restores the old behaviour
  EXPECT_NO_THROW(sim::Executor(flat, util::Rng(1), opts));
}

TEST(AnalyzePreflight, StateSpaceRejectsUnsoundDeclarations) {
  const auto flat = san::flatten(dep002_model(true));
  EXPECT_THROW(ctmc::build_state_space(flat), util::ModelError);
  ctmc::StateSpaceOptions opts;
  opts.lint = false;
  EXPECT_NO_THROW(ctmc::build_state_space(flat, opts));
}

TEST(AnalyzePreflight, CleanModelPassesBothEngines) {
  const auto flat = san::flatten(dep002_model(false));
  EXPECT_NO_THROW(sim::Executor(flat, util::Rng(1)));
  EXPECT_NO_THROW(ctmc::build_state_space(flat));
}

// ---------------------------------------------------------------------------
// Subsumption: the static access sets over-approximate everything the
// probe (and hence any trajectory) observes, and narrowing a declared set
// is caught with no simulator in the loop.
// ---------------------------------------------------------------------------

TEST(AnalyzeSubsumption, StaticSetsContainAllObservedAccesses) {
  ahs::Parameters p;
  p.max_per_platoon = 3;
  const auto flat = ahs::build_system_model(p);
  const auto deps = san::DependencyIndex::build(flat);
  const auto probes =
      san::analyze::run_probe(flat, san::analyze::ProbeOptions{2048});
  ASSERT_GT(probes.probed_markings, 100u);
  for (std::size_t ai = 0; ai < flat.activities().size(); ++ai) {
    const auto& ap = probes.activities[ai];
    const auto reads = deps.reads(ai);
    const auto writes = deps.writes(ai);
    for (const std::uint32_t s : ap.pred_reads)
      EXPECT_TRUE(std::binary_search(reads.begin(), reads.end(), s))
          << flat.activities()[ai].name << " read slot " << s;
    for (const std::uint32_t s : ap.fire_writes)
      EXPECT_TRUE(std::binary_search(writes.begin(), writes.end(), s))
          << flat.activities()[ai].name << " wrote slot " << s;
    EXPECT_TRUE(ap.eval_writes.empty()) << flat.activities()[ai].name;
  }
}

TEST(AnalyzeSubsumption, NarrowedDeclarationCaughtStatically) {
  // The clean fixture passes the *runtime* validator on real trajectories…
  {
    const auto flat = san::flatten(dep001_model(false));
    sim::Executor::Options opts;
    opts.check_dependencies = true;
    sim::Executor exec(flat, util::Rng(7), opts);
    EXPECT_NO_THROW(exec.run_until(10.0));
  }
  // …and the narrowed variant is rejected by lint alone — no Executor, no
  // RNG, no trajectory.
  const auto r = lint(dep001_model(true));
  EXPECT_GE(r.errors(), 1u);
  EXPECT_TRUE(has_id(r, "DEP001"));
}

// ---------------------------------------------------------------------------
// The shipped AHS configurations lint clean (no errors, no warnings; the
// NET002 infos are the known write-only statistics counters).
// ---------------------------------------------------------------------------

TEST(AnalyzeAhs, AllStrategiesLintClean) {
  for (const ahs::Strategy s : ahs::kAllStrategies) {
    for (const int n : {2, 5}) {
      ahs::Parameters p;
      p.strategy = s;
      p.max_per_platoon = n;
      const auto flat = ahs::build_system_model(p);
      const auto r = lint(flat, /*budget=*/512);
      EXPECT_EQ(r.errors(), 0u)
          << ahs::to_string(s) << " n=" << n << "\n" << r.to_text();
      EXPECT_EQ(r.warnings(), 0u)
          << ahs::to_string(s) << " n=" << n << "\n" << r.to_text();
      // The write-only statistics counters are exactly the places the CTMC
      // path projects out via ignore_places.
      for (const auto& d : r.diagnostics) {
        if (d.id != "NET002") continue;
        const bool known = d.place.find("ext_id") != std::string::npos ||
                           d.place.find("safe_exits") != std::string::npos ||
                           d.place.find("ko_exits") != std::string::npos;
        EXPECT_TRUE(known) << d.place;
      }
    }
  }
}

TEST(AnalyzeAhs, AdjacencyRadiusVariantLintsClean) {
  ahs::Parameters p;
  p.max_per_platoon = 4;
  p.adjacency_radius = 2;
  const auto flat = ahs::build_system_model(p);
  const auto r = lint(flat, /*budget=*/512);
  EXPECT_EQ(r.errors(), 0u) << r.to_text();
}

// Structural facts sanity: the fixpoint proves small bounds and leaves the
// recycled fixture unbounded.
TEST(AnalyzeStructure, BoundsFixpointIsConservative) {
  const auto flat = san::flatten(net001_model(false));
  const auto info = san::analyze::build_structure(flat);
  const auto a_off = flat.place_offset(flat.place_index("a"));
  const auto b_off = flat.place_offset(flat.place_index("b"));
  EXPECT_EQ(info.slot_bound[a_off], 1u);
  EXPECT_EQ(info.slot_bound[b_off], 1u);

  const auto rec = san::flatten(net003_model(true));
  const auto rec_info = san::analyze::build_structure(rec);
  const auto w_off = rec.place_offset(rec.place_index("w"));
  EXPECT_EQ(rec_info.slot_bound[w_off], san::analyze::kUnbounded);
}

}  // namespace
