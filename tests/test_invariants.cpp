// Structural-verification layer tests: exact P/T-semiflows on textbook
// nets, invariant-implied and declared place bounds (with the overflow /
// truncation guard degrading soundly), siphon / never-markable detection,
// absorbing-class certificates, the nested-Rep NET005 symmetry exemption,
// crash-buffered JSON output, and the AHS cross-checks the issue's
// acceptance criteria name: proved bounds cover probe maxima and exact
// state-space markings on every shipped configuration.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ahs/parameters.h"
#include "ahs/system_model.h"
#include "ctmc/state_space.h"
#include "san/analyze/analysis.h"
#include "san/analyze/graph.h"
#include "san/analyze/invariants.h"
#include "san/analyze/probe.h"
#include "san/analyze/structure.h"
#include "san/composition.h"
#include "util/error.h"
#include "util/json.h"

namespace {

using san::analyze::BoundProvenance;
using san::analyze::LintOptions;
using san::analyze::LintReport;
using san::analyze::StructuralFacts;

LintReport lint(const san::FlatModel& flat, std::size_t budget = 4096) {
  LintOptions opts;
  opts.probe_budget = budget;
  return san::analyze::run_lint(flat, "fixture", opts);
}

bool has_id(const LintReport& r, const std::string& id) {
  for (const auto& d : r.diagnostics)
    if (d.id == id) return true;
  return false;
}

/// Slot -> flat place name (replica suffix ignored) for bound filtering.
std::string place_of_slot(const san::FlatModel& flat, std::uint32_t slot) {
  for (const auto& p : flat.places())
    if (slot >= p.offset && slot < p.offset + p.size) return p.name;
  return "";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Textbook nets
// ---------------------------------------------------------------------------

// A 3-place token ring is the canonical conservative net: the single
// P-semiflow a+b+c = 1 bounds every place by 1, and firing the whole ring
// once is a T-semiflow.
TEST(Invariants, ConservativeRingSemiflowAndBounds) {
  auto m = std::make_shared<san::AtomicModel>("ring");
  const auto a = m->place("a", 1);
  const auto b = m->place("b");
  const auto c = m->place("c");
  m->timed_activity("t0")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(a)
      .output_arc(b);
  m->timed_activity("t1")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(b)
      .output_arc(c);
  m->timed_activity("t2")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(c)
      .output_arc(a);
  const auto flat = san::flatten(m);
  const auto r = lint(flat);
  ASSERT_NE(r.facts, nullptr);
  const StructuralFacts& f = *r.facts;

  ASSERT_EQ(f.p_semiflows.size(), 1u);
  EXPECT_EQ(f.p_semiflows[0].terms.size(), 3u);
  for (const auto& [slot, coeff] : f.p_semiflows[0].terms)
    EXPECT_EQ(coeff, 1);
  EXPECT_EQ(f.p_semiflows[0].weighted_initial, 1);

  ASSERT_EQ(f.slot_bound.size(), 3u);
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(f.slot_bound[s], 1u);
    EXPECT_EQ(f.provenance[s], BoundProvenance::kInvariant);
  }

  // Firing t0, t1, t2 once each returns the net to its start.
  ASSERT_EQ(f.t_semiflows.size(), 1u);
  EXPECT_EQ(f.t_semiflows[0].terms.size(), 3u);

  EXPECT_TRUE(has_id(r, "STRUCT005")) << r.to_text();
  EXPECT_FALSE(has_id(r, "NET003")) << r.to_text();
  EXPECT_EQ(r.errors(), 0u) << r.to_text();
}

// Weighted conservation: 2 tokens of `ore` make 1 `ingot`, so the
// invariant is ore + 2*ingot = 4 and the proved bounds are 4 and 2.
TEST(Invariants, WeightedSemiflowBounds) {
  auto m = std::make_shared<san::AtomicModel>("smelter");
  const auto ore = m->place("ore", 4);
  const auto ingot = m->place("ingot");
  m->timed_activity("smelt")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(ore, 2)
      .output_arc(ingot);
  m->timed_activity("crush")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(ingot)
      .output_arc(ore, 2);
  const auto flat = san::flatten(m);
  const auto r = lint(flat);
  ASSERT_NE(r.facts, nullptr);
  const StructuralFacts& f = *r.facts;
  const auto ore_s = flat.place_offset(flat.place_index("ore"));
  const auto ingot_s = flat.place_offset(flat.place_index("ingot"));
  EXPECT_EQ(f.slot_bound[ore_s], 4u);
  EXPECT_EQ(f.slot_bound[ingot_s], 2u);
  EXPECT_EQ(f.provenance[ore_s], BoundProvenance::kInvariant);
  EXPECT_EQ(f.provenance[ingot_s], BoundProvenance::kInvariant);
}

// A bare producer is *proved* unbounded: NET003 escalates from a warning
// to an error naming the witness activity.
TEST(Invariants, UnboundedProducerWitness) {
  auto m = std::make_shared<san::AtomicModel>("producer");
  const auto q = m->place("q");
  m->timed_activity("make")
      .distribution(util::Distribution::Exponential(1.0))
      .output_arc(q);
  const auto flat = san::flatten(m);
  const auto r = lint(flat);
  ASSERT_NE(r.facts, nullptr);
  const StructuralFacts& f = *r.facts;
  ASSERT_EQ(f.unbounded_witnesses.size(), 1u);
  EXPECT_EQ(f.provenance[f.unbounded_witnesses[0].first],
            BoundProvenance::kProvedUnbounded);
  EXPECT_TRUE(has_id(r, "NET003")) << r.to_text();
  EXPECT_GE(r.errors(), 1u) << r.to_text();
}

// A doubling chain forces P-semiflow coefficients 2^k; past 63 stages the
// combination overflows int64 even after gcd reduction.  The guard must
// drop it and raise semiflow_truncated (STRUCT006) — degrading to *fewer*
// proved bounds, never wrong ones.
TEST(Invariants, OverflowTruncationStaysSound) {
  constexpr int kStages = 80;
  auto m = std::make_shared<san::AtomicModel>("doubling");
  std::vector<san::PlaceToken> p;
  p.reserve(kStages + 1);
  for (int i = 0; i <= kStages; ++i)
    p.push_back(m->place("p" + std::to_string(i), i == 0 ? 3 : 0));
  for (int i = 0; i < kStages; ++i)
    m->timed_activity("t" + std::to_string(i))
        .distribution(util::Distribution::Exponential(1.0))
        .input_arc(p[static_cast<std::size_t>(i)], 2)
        .output_arc(p[static_cast<std::size_t>(i) + 1]);
  const auto flat = san::flatten(m);
  const auto r = lint(flat);
  ASSERT_NE(r.facts, nullptr);
  const StructuralFacts& f = *r.facts;
  EXPECT_TRUE(f.semiflow_truncated);
  EXPECT_TRUE(has_id(r, "STRUCT006")) << r.to_text();

  // Soundness: every bound the layer *did* prove covers the probe maxima.
  const auto probes =
      san::analyze::run_probe(flat, san::analyze::ProbeOptions{4096});
  for (std::uint32_t s = 0; s < flat.marking_size(); ++s) {
    if (f.slot_bound[s] == san::analyze::kUnbounded) continue;
    EXPECT_GE(f.slot_bound[s],
              static_cast<std::uint64_t>(probes.slot_max[s]))
        << "slot " << s;
  }
}

// An empty siphon stays empty: a place with no producer that gates the
// rest of the net renders it dead (STRUCT003).
TEST(Invariants, SiphonNeverMarkable) {
  auto m = std::make_shared<san::AtomicModel>("siphon");
  const auto key = m->place("key");  // never marked
  const auto door = m->place("door");
  m->timed_activity("open")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(key)
      .output_arc(door);
  const auto flat = san::flatten(m);
  const auto r = lint(flat);
  ASSERT_NE(r.facts, nullptr);
  const auto key_s = flat.place_offset(flat.place_index("key"));
  const auto door_s = flat.place_offset(flat.place_index("door"));
  const auto& nm = r.facts->never_markable_slots;
  EXPECT_NE(std::find(nm.begin(), nm.end(), key_s), nm.end());
  EXPECT_NE(std::find(nm.begin(), nm.end(), door_s), nm.end());
  EXPECT_TRUE(has_id(r, "STRUCT003")) << r.to_text();
}

// ---------------------------------------------------------------------------
// Absorbing-class certificates
// ---------------------------------------------------------------------------

// A declared absorbing marker that only arcs feed and nothing consumes is
// certified structurally, with reachability witnessed by the probe.
TEST(Invariants, AbsorbingChainCertified) {
  auto m = std::make_shared<san::AtomicModel>("chain");
  const auto run = m->place("run", 1);
  const auto done = m->place("done");
  m->timed_activity("finish")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(run)
      .output_arc(done);
  m->capacity(done, 1).absorbing(done);
  const auto flat = san::flatten(m);
  const auto r = lint(flat);
  ASSERT_NE(r.facts, nullptr);
  ASSERT_EQ(r.facts->absorbing.size(), 1u);
  const auto& fact = r.facts->absorbing[0];
  EXPECT_TRUE(fact.certified) << fact.detail;
  EXPECT_EQ(fact.reach, san::analyze::AbsorbingFact::Reach::kWitnessed)
      << fact.detail;
  EXPECT_EQ(r.errors(), 0u) << r.to_text();
}

// An exact transition consuming the marker refutes the declaration: the
// certificate is withheld and the probe's observed decrease is STRUCT004.
TEST(Invariants, AbsorbingRefutedByConsumer) {
  auto m = std::make_shared<san::AtomicModel>("reset");
  const auto run = m->place("run", 1);
  const auto done = m->place("done");
  m->timed_activity("finish")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(run)
      .output_arc(done);
  m->timed_activity("restart")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(done)
      .output_arc(run);
  m->absorbing(done);
  const auto flat = san::flatten(m);
  const auto r = lint(flat);
  ASSERT_NE(r.facts, nullptr);
  ASSERT_EQ(r.facts->absorbing.size(), 1u);
  EXPECT_FALSE(r.facts->absorbing[0].certified);
  EXPECT_TRUE(has_id(r, "STRUCT004")) << r.to_text();
  EXPECT_GE(r.errors(), 1u);
}

// ---------------------------------------------------------------------------
// Checked capacity declarations
// ---------------------------------------------------------------------------

// A capacity the reachable behaviour exceeds is refuted empirically by the
// probe (STRUCT002) and exactly by state-space generation (ModelError) —
// declarations are verified, never trusted.
TEST(Invariants, CapacityRefutedByProbeAndStateSpace) {
  auto m = std::make_shared<san::AtomicModel>("overfull");
  const auto src = m->place("src", 2);
  const auto dst = m->place("dst");
  m->timed_activity("move")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(src)
      .output_arc(dst);
  m->capacity(dst, 1);  // wrong: dst reaches 2
  const auto flat = san::flatten(m);
  const auto r = lint(flat);
  EXPECT_TRUE(has_id(r, "STRUCT002")) << r.to_text();
  EXPECT_GE(r.errors(), 1u);
  EXPECT_THROW(ctmc::build_state_space(flat), util::ModelError);
}

// A correct declaration on a gate-opaque place is accepted and becomes the
// proved bound (provenance kDeclared) where no semiflow reaches.
TEST(Invariants, DeclaredCapacityBecomesBound) {
  auto m = std::make_shared<san::AtomicModel>("gated");
  const auto flag = m->place("flag");
  m->timed_activity("toggle")
      .distribution(util::Distribution::Exponential(1.0))
      .reads({flag})
      .writes({flag})
      .input_gate([flag](const san::MarkingRef& mr) { return true; },
                  [flag](const san::MarkingRef& mr) {
                    mr.set(flag, 1 - mr.get(flag));
                  });
  m->capacity(flag, 1);
  const auto flat = san::flatten(m);
  const auto r = lint(flat);
  ASSERT_NE(r.facts, nullptr);
  const auto s = flat.place_offset(flat.place_index("flag"));
  EXPECT_EQ(r.facts->slot_bound[s], 1u);
  EXPECT_EQ(r.facts->provenance[s], BoundProvenance::kDeclared);
  EXPECT_EQ(r.errors(), 0u) << r.to_text();
}

// ---------------------------------------------------------------------------
// NET005 Rep-symmetry exemption — nested Rep under the full instance path
// ---------------------------------------------------------------------------

std::shared_ptr<san::AtomicModel> gate_writer(const std::string& act) {
  auto m = std::make_shared<san::AtomicModel>("leaf");
  const auto sh = m->place("sh");
  m->instant_activity(act)
      .priority(3)
      .reads({sh})
      .writes({sh})
      .input_gate([sh](const san::MarkingRef& mr) { return false; },
                  [sh](const san::MarkingRef& mr) { mr.set(sh, 1); });
  return m;
}

TEST(AnalyzeNet005, NestedRepSymmetryExempt) {
  // Rep(Rep(leaf)): all four instances of `w` are replica positions of the
  // same leaf activity — the full-path normalization must exempt them even
  // though the outer Rep nests another Rep rather than a leaf.
  const auto comp = san::Rep(
      "outer", san::Rep("inner", san::Leaf(gate_writer("w")), 2, {"sh"}), 2,
      {"sh"});
  const auto r = lint(san::flatten(comp));
  EXPECT_FALSE(has_id(r, "NET005")) << r.to_text();
}

TEST(AnalyzeNet005, DistinctLeavesStillFlagged) {
  // Two *different* leaf activities writing the shared place at equal
  // priority are a real ordering hazard, not Rep symmetry.
  const auto comp =
      san::Join("sys",
                {san::Leaf(gate_writer("w1")), san::Leaf(gate_writer("w2"))},
                {"sh"});
  const auto r = lint(san::flatten(comp));
  EXPECT_TRUE(has_id(r, "NET005")) << r.to_text();
}

// ---------------------------------------------------------------------------
// Crash-buffered batch output
// ---------------------------------------------------------------------------

// run_lint_guarded turns an analyzer crash into a LINT001 finding on a
// partial report, so the batch JSON document stays well-formed — verified
// with the strict util::parse_json reader, not a substring check.
TEST(LintJson, CrashBufferedReportStaysParseable) {
  auto m = std::make_shared<san::AtomicModel>("ok");
  const auto p = m->place("p", 1);
  m->timed_activity("t")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(p)
      .output_arc(p);
  const auto flat = san::flatten(m);

  LintOptions bad;
  bad.disabled_ids = {"NOSUCH999"};  // rejected inside the pipeline
  std::vector<LintReport> reports;
  reports.push_back(san::analyze::run_lint_guarded(flat, "crashed", bad));
  reports.push_back(san::analyze::run_lint(flat, "clean", LintOptions{}));
  ASSERT_TRUE(has_id(reports[0], "LINT001")) << reports[0].to_text();
  EXPECT_GE(reports[0].errors(), 1u);

  const std::string doc = san::analyze::lint_json_document(reports);
  const util::JsonValue root = util::parse_json(doc);  // throws if torn
  EXPECT_EQ(root.string_at("schema"), "ahs.lint.v1");
  const util::JsonValue* models = root.find("reports");
  ASSERT_NE(models, nullptr);
  ASSERT_EQ(models->array.size(), 2u);
  bool found = false;
  const util::JsonValue* diags = models->array[0].find("diagnostics");
  ASSERT_NE(diags, nullptr);
  for (const auto& d : diags->array)
    found = found || d.string_at("id") == "LINT001";
  EXPECT_TRUE(found) << doc;
}

// ---------------------------------------------------------------------------
// AHS cross-checks (the issue's acceptance criteria)
// ---------------------------------------------------------------------------

std::vector<ahs::Parameters> all_shipped_configs() {
  std::vector<ahs::Parameters> out;
  for (const ahs::Strategy s : ahs::kAllStrategies)
    for (const int n : {2, 5, 10})
      for (const double join : {6.0, 12.0, 24.0}) {
        ahs::Parameters p;
        p.strategy = s;
        p.max_per_platoon = n;
        p.join_rate = join;
        out.push_back(p);
      }
  return out;
}

// Pure statistics counters: genuinely unbounded, projected out of CTMC
// generation (StateSpaceOptions::ignore_places); everything else must
// carry a proved bound.
bool is_stats_counter(const std::string& place) {
  return ends_with(place, "safe_exits") || ends_with(place, "ko_exits") ||
         ends_with(place, "ext_id");
}

// Every place of every shipped configuration gets an invariant-proved (or
// checked-declared) bound, and every proved bound covers the probe's
// observed maxima.  This is the empirical half of "facts agree with
// ctmc/state_space"; the exact half runs below and in the generator
// itself, which validates declared capacities on every interned marking.
TEST(InvariantsAhs, BoundsProvedAndCoverProbeMaxima) {
  for (const ahs::Parameters& params : all_shipped_configs()) {
    const san::FlatModel flat = ahs::build_system_model(params);
    const auto r = lint(flat, 1024);
    ASSERT_NE(r.facts, nullptr);
    const StructuralFacts& f = *r.facts;
    const auto probes =
        san::analyze::run_probe(flat, san::analyze::ProbeOptions{1024});
    const std::string label = std::string("strategy ") +
                              ahs::to_string(params.strategy) +
                              " n=" + std::to_string(params.max_per_platoon);
    EXPECT_EQ(r.errors(), 0u) << label << "\n" << r.to_text();
    EXPECT_EQ(r.warnings(), 0u) << label << "\n" << r.to_text();
    for (std::uint32_t s = 0; s < flat.marking_size(); ++s) {
      const std::string place = place_of_slot(flat, s);
      if (is_stats_counter(place)) continue;
      ASSERT_NE(f.slot_bound[s], san::analyze::kUnbounded)
          << label << ": no proved bound for " << place;
      EXPECT_GE(f.slot_bound[s],
                static_cast<std::uint64_t>(probes.slot_max[s]))
          << label << ": bound refuted at " << place;
    }
  }
}

// The KO_total absorbing-class certificate must be issued on every platoon
// size the paper sweeps: once the catastrophic marking is entered it is
// never left (the unsafety measure is a cumulative probability).
TEST(InvariantsAhs, AbsorbingClassCertified) {
  for (const int n : {2, 5, 10}) {
    ahs::Parameters params;
    params.max_per_platoon = n;
    const san::FlatModel flat = ahs::build_system_model(params);
    const auto r = lint(flat, 1024);
    ASSERT_NE(r.facts, nullptr);
    bool seen = false;
    for (const auto& fact : r.facts->absorbing) {
      if (!ends_with(flat.places()[fact.place].name, "KO_total")) continue;
      seen = true;
      EXPECT_TRUE(fact.certified) << "n=" << n << ": " << fact.detail;
      EXPECT_NE(fact.reach, san::analyze::AbsorbingFact::Reach::kRefuted)
          << "n=" << n << ": " << fact.detail;
    }
    EXPECT_TRUE(seen) << "n=" << n << ": no KO_total absorbing fact";
  }
}

// Exact agreement: every marking the full CTMC state space interns (the
// paper's smallest configuration) respects the proved bounds.  The
// generator additionally validates declared capacities on every marking
// internally; this asserts the facts end-to-end from the outside.
TEST(InvariantsAhs, StateSpaceMarkingsWithinProvedBounds) {
  ahs::Parameters params;
  params.max_per_platoon = 2;
  params.num_platoons = 1;  // smallest exactly-solvable configuration
  const san::FlatModel flat = ahs::build_system_model(params);
  const auto r = lint(flat, 1024);
  ASSERT_NE(r.facts, nullptr);
  const StructuralFacts& f = *r.facts;

  const auto ko_slot = flat.place_offset(flat.place_index("KO_total"));
  ctmc::StateSpaceOptions opts;
  opts.absorbing = [ko_slot](std::span<const std::int32_t> m) {
    return m[ko_slot] > 0;
  };
  opts.ignore_places = {"ext_id", "safe_exits", "ko_exits"};
  const auto space = ctmc::build_state_space(flat, opts);
  ASSERT_GT(space.chain.num_states, 1u);
  for (const auto& st : space.states)
    for (std::uint32_t s = 0; s < flat.marking_size(); ++s) {
      if (f.slot_bound[s] == san::analyze::kUnbounded) continue;
      ASSERT_LE(static_cast<std::uint64_t>(st[s]), f.slot_bound[s])
          << "state marking exceeds proved bound at "
          << place_of_slot(flat, s);
    }
}

}  // namespace
