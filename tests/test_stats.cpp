// Unit tests for the statistics layer: Welford accumulators, merging,
// confidence intervals, Wilson proportions, batch means, histograms.
#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

TEST(RunningStat, MeanVarianceKnownSequence) {
  util::RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.push(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyAndSingle) {
  util::RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.push(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.std_error()));
}

TEST(RunningStat, MergeMatchesSequential) {
  util::Rng rng(9);
  util::RunningStat all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10 - 3;
    all.push(x);
    (i % 2 ? a : b).push(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  util::RunningStat a, b;
  a.push(1.0);
  a.push(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(ConfidenceInterval, CoversTrueMeanAtNominalRate) {
  // 500 experiments of 200 U(0,1) samples; the 95% CI should cover 0.5
  // roughly 95% of the time.
  util::Rng rng(21);
  int covered = 0;
  const int experiments = 500;
  for (int e = 0; e < experiments; ++e) {
    util::RunningStat s;
    for (int i = 0; i < 200; ++i) s.push(rng.uniform01());
    const auto ci = s.interval(0.95);
    if (ci.lo() <= 0.5 && 0.5 <= ci.hi()) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(experiments * 0.91));
  EXPECT_LE(covered, static_cast<int>(experiments * 0.99));
}

TEST(NormalCriticalValue, KnownQuantiles) {
  EXPECT_NEAR(util::normal_critical_value(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(util::normal_critical_value(0.90), 1.644854, 1e-5);
  EXPECT_NEAR(util::normal_critical_value(0.99), 2.575829, 1e-5);
  EXPECT_NEAR(util::normal_critical_value(0.80), 1.281552, 1e-5);
}

TEST(InverseNormalCdf, SymmetryAndKnownValues) {
  EXPECT_NEAR(util::inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(util::inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(util::inverse_normal_cdf(0.025), -1.959964, 1e-5);
  EXPECT_THROW(util::inverse_normal_cdf(0.0), util::PreconditionError);
  EXPECT_THROW(util::inverse_normal_cdf(1.0), util::PreconditionError);
}

TEST(ConfidenceInterval, RelativeHalfWidth) {
  util::ConfidenceInterval ci;
  ci.mean = 2.0;
  ci.half_width = 0.1;
  EXPECT_DOUBLE_EQ(ci.relative_half_width(), 0.05);
  EXPECT_TRUE(ci.converged(0.1));
  EXPECT_FALSE(ci.converged(0.01));
  ci.mean = 0.0;
  EXPECT_TRUE(std::isinf(ci.relative_half_width()));
}

TEST(ProportionStat, WilsonIntervalBasics) {
  util::ProportionStat p;
  p.push_count(50, 100);
  EXPECT_DOUBLE_EQ(p.proportion(), 0.5);
  const auto ci = p.interval(0.95);
  EXPECT_NEAR(ci.mean, 0.5, 1e-9);  // symmetric at p = 0.5
  EXPECT_GT(ci.half_width, 0.08);
  EXPECT_LT(ci.half_width, 0.12);
}

TEST(ProportionStat, ZeroSuccessesStillInformative) {
  util::ProportionStat p;
  p.push_count(0, 1000);
  const auto ci = p.interval(0.95);
  EXPECT_GT(ci.mean, 0.0);  // Wilson center is pulled off zero
  EXPECT_LT(ci.hi(), 0.01);
}

TEST(ProportionStat, RejectsInvalidCounts) {
  util::ProportionStat p;
  EXPECT_THROW(p.push_count(5, 4), util::PreconditionError);
}

TEST(BatchMeans, GroupsCorrectly) {
  util::BatchMeans bm(10);
  for (int i = 0; i < 95; ++i) bm.push(1.0);
  EXPECT_EQ(bm.completed_batches(), 9u);  // 5 leftovers discarded so far
  EXPECT_DOUBLE_EQ(bm.mean(), 1.0);
}

TEST(BatchMeans, IidDataHasLowAutocorrelation) {
  util::Rng rng(33);
  util::BatchMeans bm(50);
  for (int i = 0; i < 50 * 200; ++i) bm.push(rng.uniform01());
  EXPECT_LT(std::abs(bm.lag1_autocorrelation()), 0.2);
}

TEST(BatchMeans, RejectsZeroBatch) {
  EXPECT_THROW(util::BatchMeans bm(0), util::PreconditionError);
}

TEST(Histogram, BinningAndDensity) {
  util::Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.push(i + 0.5);
  h.push(-1.0);
  h.push(42.0);
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.count(b), 1u);
    EXPECT_DOUBLE_EQ(h.bin_hi(b) - h.bin_lo(b), 1.0);
    EXPECT_NEAR(h.density(b), 1.0 / 12.0, 1e-12);
  }
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(util::Histogram(1.0, 1.0, 5), util::PreconditionError);
  EXPECT_THROW(util::Histogram(0.0, 1.0, 0), util::PreconditionError);
}

TEST(KahanSum, CompensatesSmallAdds) {
  util::KahanSum k;
  k.add(1e16);
  for (int i = 0; i < 10000; ++i) k.add(1.0);
  k.add(-1e16);
  EXPECT_DOUBLE_EQ(k.value(), 10000.0);
}

}  // namespace
