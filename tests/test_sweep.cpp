// Sweep engine: grid construction, the determinism contract (parallel
// output point-for-point bitwise identical to sequential), and structure
// cache reuse (hit curves equal to cold builds).
#include <gtest/gtest.h>

#include "ahs/sweep.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace {

using namespace ahs;

Parameters small_base() {
  Parameters p;
  p.max_per_platoon = 4;
  p.base_failure_rate = 1e-4;
  return p;
}

TEST(Sweep, MakeGrid1D) {
  const GridAxis lambda{"lambda",
                        {1e-5, 1e-4},
                        [](Parameters& p, double v) {
                          p.base_failure_rate = v;
                        }};
  const auto points = make_grid(small_base(), lambda);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].params.base_failure_rate, 1e-5);
  EXPECT_EQ(points[1].params.base_failure_rate, 1e-4);
  EXPECT_NE(points[0].label.find("lambda="), std::string::npos);
  // Everything else untouched.
  EXPECT_EQ(points[0].params.max_per_platoon, 4);
}

TEST(Sweep, MakeGrid2DRowMajor) {
  const GridAxis n{"n", {3, 4}, [](Parameters& p, double v) {
                     p.max_per_platoon = static_cast<int>(v);
                   }};
  const GridAxis lambda{"lambda",
                        {1e-5, 1e-4, 1e-3},
                        [](Parameters& p, double v) {
                          p.base_failure_rate = v;
                        }};
  const auto points = make_grid(small_base(), n, lambda);
  ASSERT_EQ(points.size(), 6u);
  // Outer (n) varies slowest.
  EXPECT_EQ(points[0].params.max_per_platoon, 3);
  EXPECT_EQ(points[2].params.max_per_platoon, 3);
  EXPECT_EQ(points[3].params.max_per_platoon, 4);
  EXPECT_EQ(points[1].params.base_failure_rate, 1e-4);
  EXPECT_EQ(points[4].params.base_failure_rate, 1e-4);
}

TEST(Sweep, GridAxisRequiresSetter) {
  EXPECT_THROW(make_grid(small_base(), GridAxis{"x", {1.0}, nullptr}),
               util::PreconditionError);
}

TEST(Sweep, EmptyPointListIsFine) {
  const auto result = run_sweep({}, {1.0}, {});
  EXPECT_TRUE(result.curves.empty());
}

TEST(Sweep, RejectsInnerPool) {
  util::ThreadPool pool(1);
  SweepOptions opts;
  opts.study.pool = &pool;
  const std::vector<SweepPoint> points = {{"p", small_base()}};
  EXPECT_THROW(run_sweep(points, {1.0}, opts), util::PreconditionError);
}

TEST(Sweep, ParallelBitwiseIdenticalToSequential) {
  // The acceptance contract: the parallel sweep's output is point-for-point
  // identical to the sequential one — not approximately, bitwise.
  const GridAxis lambda{"lambda",
                        {1e-5, 1e-4, 1e-3, 5e-4},
                        [](Parameters& p, double v) {
                          p.base_failure_rate = v;
                        }};
  const auto points = make_grid(small_base(), lambda);
  const std::vector<double> times = {2.0, 6.0, 10.0};

  SweepOptions seq;
  seq.threads = 1;
  SweepOptions par;
  par.threads = 8;
  const SweepResult a = run_sweep(points, times, seq);
  const SweepResult b = run_sweep(points, times, par);

  ASSERT_EQ(a.curves.size(), points.size());
  ASSERT_EQ(b.curves.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_EQ(a.curves[i].unsafety.size(), times.size());
    for (std::size_t t = 0; t < times.size(); ++t)
      EXPECT_EQ(a.curves[i].unsafety[t], b.curves[i].unsafety[t])
          << "point " << i << " time " << t;
  }
}

TEST(Sweep, StructureCacheHitsMatchColdBuilds) {
  // Same-fingerprint λ sweep: with reuse on, only the first point explores;
  // every follower must flag a hit and agree with the cache-off run.
  const GridAxis lambda{"lambda",
                        {1e-5, 1e-4, 1e-3},
                        [](Parameters& p, double v) {
                          p.base_failure_rate = v;
                        }};
  const auto points = make_grid(small_base(), lambda);
  const std::vector<double> times = {2.0, 6.0};

  SweepOptions with_cache;
  with_cache.threads = 2;
  SweepOptions no_cache;
  no_cache.threads = 2;
  no_cache.reuse_structure = false;
  const SweepResult cached = run_sweep(points, times, with_cache);
  const SweepResult cold = run_sweep(points, times, no_cache);

  int hits = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    hits += cached.structure_cache_hit[i] ? 1 : 0;
    EXPECT_FALSE(cold.structure_cache_hit[i]);
    for (std::size_t t = 0; t < times.size(); ++t)
      EXPECT_NEAR(cached.curves[i].unsafety[t], cold.curves[i].unsafety[t],
                  1e-12);
  }
  // One cold build per fingerprint group; all λ share one group.
  EXPECT_EQ(hits, static_cast<int>(points.size()) - 1);
}

TEST(Sweep, MixedFingerprintsGroupCorrectly) {
  // Two platoon sizes × two λ: exactly one cold build per size.
  const GridAxis n{"n", {3, 4}, [](Parameters& p, double v) {
                     p.max_per_platoon = static_cast<int>(v);
                   }};
  const GridAxis lambda{"lambda",
                        {1e-4, 1e-3},
                        [](Parameters& p, double v) {
                          p.base_failure_rate = v;
                        }};
  const auto points = make_grid(small_base(), n, lambda);
  SweepOptions opts;
  opts.threads = 2;
  const SweepResult result = run_sweep(points, {6.0}, opts);
  int hits = 0;
  for (std::size_t i = 0; i < points.size(); ++i)
    hits += result.structure_cache_hit[i] ? 1 : 0;
  EXPECT_EQ(hits, 2);  // 4 points, 2 fingerprint groups
  // Timing slots are populated.
  ASSERT_EQ(result.point_seconds.size(), points.size());
  for (double s : result.point_seconds) EXPECT_GE(s, 0.0);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(Sweep, SimulationEngineSweepMatchesSequential) {
  // Simulation points carry their own seeded RNG, so the parallel sweep is
  // reproducible there too (and never reports structure hits).
  Parameters p = small_base();
  p.base_failure_rate = 5e-3;
  const GridAxis lambda{"lambda",
                        {5e-3, 1e-2},
                        [](Parameters& p2, double v) {
                          p2.base_failure_rate = v;
                        }};
  const auto points = make_grid(p, lambda);
  SweepOptions seq;
  seq.threads = 1;
  seq.study.engine = Engine::kSimulation;
  seq.study.min_replications = 200;
  seq.study.max_replications = 200;
  SweepOptions par = seq;
  par.threads = 4;
  const SweepResult a = run_sweep(points, {2.0}, seq);
  const SweepResult b = run_sweep(points, {2.0}, par);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(a.curves[i].unsafety[0], b.curves[i].unsafety[0]);
    EXPECT_FALSE(a.structure_cache_hit[i]);
    EXPECT_FALSE(b.structure_cache_hit[i]);
  }
}

}  // namespace
