file(REMOVE_RECURSE
  "CMakeFiles/rare_event.dir/rare_event.cpp.o"
  "CMakeFiles/rare_event.dir/rare_event.cpp.o.d"
  "rare_event"
  "rare_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rare_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
