# Empty compiler generated dependencies file for rare_event.
# This may be replaced when dependencies are built.
