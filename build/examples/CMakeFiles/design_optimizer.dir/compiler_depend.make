# Empty compiler generated dependencies file for design_optimizer.
# This may be replaced when dependencies are built.
