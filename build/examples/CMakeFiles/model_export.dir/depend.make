# Empty dependencies file for model_export.
# This may be replaced when dependencies are built.
