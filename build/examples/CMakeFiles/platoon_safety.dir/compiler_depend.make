# Empty compiler generated dependencies file for platoon_safety.
# This may be replaced when dependencies are built.
