file(REMOVE_RECURSE
  "CMakeFiles/platoon_safety.dir/platoon_safety.cpp.o"
  "CMakeFiles/platoon_safety.dir/platoon_safety.cpp.o.d"
  "platoon_safety"
  "platoon_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platoon_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
