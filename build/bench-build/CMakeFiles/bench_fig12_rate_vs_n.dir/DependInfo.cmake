
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_rate_vs_n.cpp" "bench-build/CMakeFiles/bench_fig12_rate_vs_n.dir/bench_fig12_rate_vs_n.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig12_rate_vs_n.dir/bench_fig12_rate_vs_n.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ahs/CMakeFiles/ahs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/ahs_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ahs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/san/CMakeFiles/ahs_san.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
