# Empty compiler generated dependencies file for bench_fig12_rate_vs_n.
# This may be replaced when dependencies are built.
