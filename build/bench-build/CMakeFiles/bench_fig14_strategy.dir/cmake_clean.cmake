file(REMOVE_RECURSE
  "../bench/bench_fig14_strategy"
  "../bench/bench_fig14_strategy.pdb"
  "CMakeFiles/bench_fig14_strategy.dir/bench_fig14_strategy.cpp.o"
  "CMakeFiles/bench_fig14_strategy.dir/bench_fig14_strategy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
