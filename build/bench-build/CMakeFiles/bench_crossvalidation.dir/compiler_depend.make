# Empty compiler generated dependencies file for bench_crossvalidation.
# This may be replaced when dependencies are built.
