file(REMOVE_RECURSE
  "../bench/bench_crossvalidation"
  "../bench/bench_crossvalidation.pdb"
  "CMakeFiles/bench_crossvalidation.dir/bench_crossvalidation.cpp.o"
  "CMakeFiles/bench_crossvalidation.dir/bench_crossvalidation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossvalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
