# Empty compiler generated dependencies file for bench_fig11_failure_rate.
# This may be replaced when dependencies are built.
