file(REMOVE_RECURSE
  "../bench/bench_fig11_failure_rate"
  "../bench/bench_fig11_failure_rate.pdb"
  "CMakeFiles/bench_fig11_failure_rate.dir/bench_fig11_failure_rate.cpp.o"
  "CMakeFiles/bench_fig11_failure_rate.dir/bench_fig11_failure_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_failure_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
