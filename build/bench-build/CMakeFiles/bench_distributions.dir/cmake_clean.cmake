file(REMOVE_RECURSE
  "../bench/bench_distributions"
  "../bench/bench_distributions.pdb"
  "CMakeFiles/bench_distributions.dir/bench_distributions.cpp.o"
  "CMakeFiles/bench_distributions.dir/bench_distributions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
