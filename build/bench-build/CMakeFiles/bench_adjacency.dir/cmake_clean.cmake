file(REMOVE_RECURSE
  "../bench/bench_adjacency"
  "../bench/bench_adjacency.pdb"
  "CMakeFiles/bench_adjacency.dir/bench_adjacency.cpp.o"
  "CMakeFiles/bench_adjacency.dir/bench_adjacency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adjacency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
