file(REMOVE_RECURSE
  "../bench/bench_multiplatoon"
  "../bench/bench_multiplatoon.pdb"
  "CMakeFiles/bench_multiplatoon.dir/bench_multiplatoon.cpp.o"
  "CMakeFiles/bench_multiplatoon.dir/bench_multiplatoon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiplatoon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
