# Empty dependencies file for bench_multiplatoon.
# This may be replaced when dependencies are built.
