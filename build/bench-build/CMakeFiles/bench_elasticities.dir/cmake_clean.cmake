file(REMOVE_RECURSE
  "../bench/bench_elasticities"
  "../bench/bench_elasticities.pdb"
  "CMakeFiles/bench_elasticities.dir/bench_elasticities.cpp.o"
  "CMakeFiles/bench_elasticities.dir/bench_elasticities.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elasticities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
