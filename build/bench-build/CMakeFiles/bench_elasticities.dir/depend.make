# Empty dependencies file for bench_elasticities.
# This may be replaced when dependencies are built.
