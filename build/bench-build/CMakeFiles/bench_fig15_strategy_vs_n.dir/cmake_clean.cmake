file(REMOVE_RECURSE
  "../bench/bench_fig15_strategy_vs_n"
  "../bench/bench_fig15_strategy_vs_n.pdb"
  "CMakeFiles/bench_fig15_strategy_vs_n.dir/bench_fig15_strategy_vs_n.cpp.o"
  "CMakeFiles/bench_fig15_strategy_vs_n.dir/bench_fig15_strategy_vs_n.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_strategy_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
