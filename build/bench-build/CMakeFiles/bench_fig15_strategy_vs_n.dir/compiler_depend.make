# Empty compiler generated dependencies file for bench_fig15_strategy_vs_n.
# This may be replaced when dependencies are built.
