
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_atomic_model.cpp" "tests/CMakeFiles/ahs_tests.dir/test_atomic_model.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_atomic_model.cpp.o.d"
  "/root/repo/tests/test_composition.cpp" "tests/CMakeFiles/ahs_tests.dir/test_composition.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_composition.cpp.o.d"
  "/root/repo/tests/test_conformance.cpp" "tests/CMakeFiles/ahs_tests.dir/test_conformance.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_conformance.cpp.o.d"
  "/root/repo/tests/test_coordination.cpp" "tests/CMakeFiles/ahs_tests.dir/test_coordination.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_coordination.cpp.o.d"
  "/root/repo/tests/test_ctmc.cpp" "tests/CMakeFiles/ahs_tests.dir/test_ctmc.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_ctmc.cpp.o.d"
  "/root/repo/tests/test_distributions.cpp" "tests/CMakeFiles/ahs_tests.dir/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_distributions.cpp.o.d"
  "/root/repo/tests/test_executor.cpp" "tests/CMakeFiles/ahs_tests.dir/test_executor.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_executor.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/ahs_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_flat_model.cpp" "tests/CMakeFiles/ahs_tests.dir/test_flat_model.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_flat_model.cpp.o.d"
  "/root/repo/tests/test_lumped.cpp" "tests/CMakeFiles/ahs_tests.dir/test_lumped.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_lumped.cpp.o.d"
  "/root/repo/tests/test_lumping.cpp" "tests/CMakeFiles/ahs_tests.dir/test_lumping.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_lumping.cpp.o.d"
  "/root/repo/tests/test_multiplatoon.cpp" "tests/CMakeFiles/ahs_tests.dir/test_multiplatoon.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_multiplatoon.cpp.o.d"
  "/root/repo/tests/test_parameters.cpp" "tests/CMakeFiles/ahs_tests.dir/test_parameters.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_parameters.cpp.o.d"
  "/root/repo/tests/test_rewards_dot.cpp" "tests/CMakeFiles/ahs_tests.dir/test_rewards_dot.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_rewards_dot.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/ahs_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sensitivity.cpp" "tests/CMakeFiles/ahs_tests.dir/test_sensitivity.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_sensitivity.cpp.o.d"
  "/root/repo/tests/test_severity.cpp" "tests/CMakeFiles/ahs_tests.dir/test_severity.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_severity.cpp.o.d"
  "/root/repo/tests/test_state_space.cpp" "tests/CMakeFiles/ahs_tests.dir/test_state_space.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_state_space.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/ahs_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_study.cpp" "tests/CMakeFiles/ahs_tests.dir/test_study.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_study.cpp.o.d"
  "/root/repo/tests/test_system_model.cpp" "tests/CMakeFiles/ahs_tests.dir/test_system_model.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_system_model.cpp.o.d"
  "/root/repo/tests/test_transient.cpp" "tests/CMakeFiles/ahs_tests.dir/test_transient.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_transient.cpp.o.d"
  "/root/repo/tests/test_types.cpp" "tests/CMakeFiles/ahs_tests.dir/test_types.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_types.cpp.o.d"
  "/root/repo/tests/test_util_io.cpp" "tests/CMakeFiles/ahs_tests.dir/test_util_io.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_util_io.cpp.o.d"
  "/root/repo/tests/test_vehicle_gates.cpp" "tests/CMakeFiles/ahs_tests.dir/test_vehicle_gates.cpp.o" "gcc" "tests/CMakeFiles/ahs_tests.dir/test_vehicle_gates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ahs/CMakeFiles/ahs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/ahs_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ahs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/san/CMakeFiles/ahs_san.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
