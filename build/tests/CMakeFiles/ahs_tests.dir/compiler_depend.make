# Empty compiler generated dependencies file for ahs_tests.
# This may be replaced when dependencies are built.
