# CMake generated Testfile for 
# Source directory: /root/repo/src/ahs
# Build directory: /root/repo/build/src/ahs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
