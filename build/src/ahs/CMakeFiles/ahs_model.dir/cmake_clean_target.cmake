file(REMOVE_RECURSE
  "libahs_model.a"
)
