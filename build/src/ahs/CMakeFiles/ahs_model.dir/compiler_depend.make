# Empty compiler generated dependencies file for ahs_model.
# This may be replaced when dependencies are built.
