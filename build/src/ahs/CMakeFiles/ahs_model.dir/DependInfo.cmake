
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ahs/configuration_model.cpp" "src/ahs/CMakeFiles/ahs_model.dir/configuration_model.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/configuration_model.cpp.o.d"
  "/root/repo/src/ahs/coordination.cpp" "src/ahs/CMakeFiles/ahs_model.dir/coordination.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/coordination.cpp.o.d"
  "/root/repo/src/ahs/dynamicity_model.cpp" "src/ahs/CMakeFiles/ahs_model.dir/dynamicity_model.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/dynamicity_model.cpp.o.d"
  "/root/repo/src/ahs/lumped.cpp" "src/ahs/CMakeFiles/ahs_model.dir/lumped.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/lumped.cpp.o.d"
  "/root/repo/src/ahs/model_common.cpp" "src/ahs/CMakeFiles/ahs_model.dir/model_common.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/model_common.cpp.o.d"
  "/root/repo/src/ahs/parameters.cpp" "src/ahs/CMakeFiles/ahs_model.dir/parameters.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/parameters.cpp.o.d"
  "/root/repo/src/ahs/sensitivity.cpp" "src/ahs/CMakeFiles/ahs_model.dir/sensitivity.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/sensitivity.cpp.o.d"
  "/root/repo/src/ahs/severity.cpp" "src/ahs/CMakeFiles/ahs_model.dir/severity.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/severity.cpp.o.d"
  "/root/repo/src/ahs/severity_model.cpp" "src/ahs/CMakeFiles/ahs_model.dir/severity_model.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/severity_model.cpp.o.d"
  "/root/repo/src/ahs/study.cpp" "src/ahs/CMakeFiles/ahs_model.dir/study.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/study.cpp.o.d"
  "/root/repo/src/ahs/system_model.cpp" "src/ahs/CMakeFiles/ahs_model.dir/system_model.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/system_model.cpp.o.d"
  "/root/repo/src/ahs/types.cpp" "src/ahs/CMakeFiles/ahs_model.dir/types.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/types.cpp.o.d"
  "/root/repo/src/ahs/vehicle_model.cpp" "src/ahs/CMakeFiles/ahs_model.dir/vehicle_model.cpp.o" "gcc" "src/ahs/CMakeFiles/ahs_model.dir/vehicle_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/san/CMakeFiles/ahs_san.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ahs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/ahs_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
