file(REMOVE_RECURSE
  "CMakeFiles/ahs_model.dir/configuration_model.cpp.o"
  "CMakeFiles/ahs_model.dir/configuration_model.cpp.o.d"
  "CMakeFiles/ahs_model.dir/coordination.cpp.o"
  "CMakeFiles/ahs_model.dir/coordination.cpp.o.d"
  "CMakeFiles/ahs_model.dir/dynamicity_model.cpp.o"
  "CMakeFiles/ahs_model.dir/dynamicity_model.cpp.o.d"
  "CMakeFiles/ahs_model.dir/lumped.cpp.o"
  "CMakeFiles/ahs_model.dir/lumped.cpp.o.d"
  "CMakeFiles/ahs_model.dir/model_common.cpp.o"
  "CMakeFiles/ahs_model.dir/model_common.cpp.o.d"
  "CMakeFiles/ahs_model.dir/parameters.cpp.o"
  "CMakeFiles/ahs_model.dir/parameters.cpp.o.d"
  "CMakeFiles/ahs_model.dir/sensitivity.cpp.o"
  "CMakeFiles/ahs_model.dir/sensitivity.cpp.o.d"
  "CMakeFiles/ahs_model.dir/severity.cpp.o"
  "CMakeFiles/ahs_model.dir/severity.cpp.o.d"
  "CMakeFiles/ahs_model.dir/severity_model.cpp.o"
  "CMakeFiles/ahs_model.dir/severity_model.cpp.o.d"
  "CMakeFiles/ahs_model.dir/study.cpp.o"
  "CMakeFiles/ahs_model.dir/study.cpp.o.d"
  "CMakeFiles/ahs_model.dir/system_model.cpp.o"
  "CMakeFiles/ahs_model.dir/system_model.cpp.o.d"
  "CMakeFiles/ahs_model.dir/types.cpp.o"
  "CMakeFiles/ahs_model.dir/types.cpp.o.d"
  "CMakeFiles/ahs_model.dir/vehicle_model.cpp.o"
  "CMakeFiles/ahs_model.dir/vehicle_model.cpp.o.d"
  "libahs_model.a"
  "libahs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
