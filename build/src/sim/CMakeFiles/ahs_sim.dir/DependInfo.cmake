
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/executor.cpp" "src/sim/CMakeFiles/ahs_sim.dir/executor.cpp.o" "gcc" "src/sim/CMakeFiles/ahs_sim.dir/executor.cpp.o.d"
  "/root/repo/src/sim/steady.cpp" "src/sim/CMakeFiles/ahs_sim.dir/steady.cpp.o" "gcc" "src/sim/CMakeFiles/ahs_sim.dir/steady.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/ahs_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/ahs_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/sim/CMakeFiles/ahs_sim.dir/transient.cpp.o" "gcc" "src/sim/CMakeFiles/ahs_sim.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/san/CMakeFiles/ahs_san.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
