# Empty compiler generated dependencies file for ahs_sim.
# This may be replaced when dependencies are built.
