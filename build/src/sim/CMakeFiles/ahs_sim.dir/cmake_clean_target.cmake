file(REMOVE_RECURSE
  "libahs_sim.a"
)
