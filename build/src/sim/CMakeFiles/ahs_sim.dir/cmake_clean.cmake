file(REMOVE_RECURSE
  "CMakeFiles/ahs_sim.dir/executor.cpp.o"
  "CMakeFiles/ahs_sim.dir/executor.cpp.o.d"
  "CMakeFiles/ahs_sim.dir/steady.cpp.o"
  "CMakeFiles/ahs_sim.dir/steady.cpp.o.d"
  "CMakeFiles/ahs_sim.dir/trace.cpp.o"
  "CMakeFiles/ahs_sim.dir/trace.cpp.o.d"
  "CMakeFiles/ahs_sim.dir/transient.cpp.o"
  "CMakeFiles/ahs_sim.dir/transient.cpp.o.d"
  "libahs_sim.a"
  "libahs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
