file(REMOVE_RECURSE
  "CMakeFiles/ahs_ctmc.dir/chain.cpp.o"
  "CMakeFiles/ahs_ctmc.dir/chain.cpp.o.d"
  "CMakeFiles/ahs_ctmc.dir/lumping.cpp.o"
  "CMakeFiles/ahs_ctmc.dir/lumping.cpp.o.d"
  "CMakeFiles/ahs_ctmc.dir/sparse.cpp.o"
  "CMakeFiles/ahs_ctmc.dir/sparse.cpp.o.d"
  "CMakeFiles/ahs_ctmc.dir/state_space.cpp.o"
  "CMakeFiles/ahs_ctmc.dir/state_space.cpp.o.d"
  "CMakeFiles/ahs_ctmc.dir/stationary.cpp.o"
  "CMakeFiles/ahs_ctmc.dir/stationary.cpp.o.d"
  "CMakeFiles/ahs_ctmc.dir/uniformization.cpp.o"
  "CMakeFiles/ahs_ctmc.dir/uniformization.cpp.o.d"
  "libahs_ctmc.a"
  "libahs_ctmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahs_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
