
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctmc/chain.cpp" "src/ctmc/CMakeFiles/ahs_ctmc.dir/chain.cpp.o" "gcc" "src/ctmc/CMakeFiles/ahs_ctmc.dir/chain.cpp.o.d"
  "/root/repo/src/ctmc/lumping.cpp" "src/ctmc/CMakeFiles/ahs_ctmc.dir/lumping.cpp.o" "gcc" "src/ctmc/CMakeFiles/ahs_ctmc.dir/lumping.cpp.o.d"
  "/root/repo/src/ctmc/sparse.cpp" "src/ctmc/CMakeFiles/ahs_ctmc.dir/sparse.cpp.o" "gcc" "src/ctmc/CMakeFiles/ahs_ctmc.dir/sparse.cpp.o.d"
  "/root/repo/src/ctmc/state_space.cpp" "src/ctmc/CMakeFiles/ahs_ctmc.dir/state_space.cpp.o" "gcc" "src/ctmc/CMakeFiles/ahs_ctmc.dir/state_space.cpp.o.d"
  "/root/repo/src/ctmc/stationary.cpp" "src/ctmc/CMakeFiles/ahs_ctmc.dir/stationary.cpp.o" "gcc" "src/ctmc/CMakeFiles/ahs_ctmc.dir/stationary.cpp.o.d"
  "/root/repo/src/ctmc/uniformization.cpp" "src/ctmc/CMakeFiles/ahs_ctmc.dir/uniformization.cpp.o" "gcc" "src/ctmc/CMakeFiles/ahs_ctmc.dir/uniformization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/san/CMakeFiles/ahs_san.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
