# Empty dependencies file for ahs_ctmc.
# This may be replaced when dependencies are built.
