file(REMOVE_RECURSE
  "libahs_ctmc.a"
)
