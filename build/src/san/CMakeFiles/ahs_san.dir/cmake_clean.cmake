file(REMOVE_RECURSE
  "CMakeFiles/ahs_san.dir/atomic_model.cpp.o"
  "CMakeFiles/ahs_san.dir/atomic_model.cpp.o.d"
  "CMakeFiles/ahs_san.dir/composition.cpp.o"
  "CMakeFiles/ahs_san.dir/composition.cpp.o.d"
  "CMakeFiles/ahs_san.dir/dot.cpp.o"
  "CMakeFiles/ahs_san.dir/dot.cpp.o.d"
  "CMakeFiles/ahs_san.dir/flat_model.cpp.o"
  "CMakeFiles/ahs_san.dir/flat_model.cpp.o.d"
  "CMakeFiles/ahs_san.dir/rewards.cpp.o"
  "CMakeFiles/ahs_san.dir/rewards.cpp.o.d"
  "libahs_san.a"
  "libahs_san.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahs_san.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
