file(REMOVE_RECURSE
  "libahs_san.a"
)
