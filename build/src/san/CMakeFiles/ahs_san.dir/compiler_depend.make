# Empty compiler generated dependencies file for ahs_san.
# This may be replaced when dependencies are built.
