
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/san/atomic_model.cpp" "src/san/CMakeFiles/ahs_san.dir/atomic_model.cpp.o" "gcc" "src/san/CMakeFiles/ahs_san.dir/atomic_model.cpp.o.d"
  "/root/repo/src/san/composition.cpp" "src/san/CMakeFiles/ahs_san.dir/composition.cpp.o" "gcc" "src/san/CMakeFiles/ahs_san.dir/composition.cpp.o.d"
  "/root/repo/src/san/dot.cpp" "src/san/CMakeFiles/ahs_san.dir/dot.cpp.o" "gcc" "src/san/CMakeFiles/ahs_san.dir/dot.cpp.o.d"
  "/root/repo/src/san/flat_model.cpp" "src/san/CMakeFiles/ahs_san.dir/flat_model.cpp.o" "gcc" "src/san/CMakeFiles/ahs_san.dir/flat_model.cpp.o.d"
  "/root/repo/src/san/rewards.cpp" "src/san/CMakeFiles/ahs_san.dir/rewards.cpp.o" "gcc" "src/san/CMakeFiles/ahs_san.dir/rewards.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ahs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
