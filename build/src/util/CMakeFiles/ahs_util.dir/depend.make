# Empty dependencies file for ahs_util.
# This may be replaced when dependencies are built.
