file(REMOVE_RECURSE
  "CMakeFiles/ahs_util.dir/cli.cpp.o"
  "CMakeFiles/ahs_util.dir/cli.cpp.o.d"
  "CMakeFiles/ahs_util.dir/csv.cpp.o"
  "CMakeFiles/ahs_util.dir/csv.cpp.o.d"
  "CMakeFiles/ahs_util.dir/distributions.cpp.o"
  "CMakeFiles/ahs_util.dir/distributions.cpp.o.d"
  "CMakeFiles/ahs_util.dir/logging.cpp.o"
  "CMakeFiles/ahs_util.dir/logging.cpp.o.d"
  "CMakeFiles/ahs_util.dir/rng.cpp.o"
  "CMakeFiles/ahs_util.dir/rng.cpp.o.d"
  "CMakeFiles/ahs_util.dir/stats.cpp.o"
  "CMakeFiles/ahs_util.dir/stats.cpp.o.d"
  "CMakeFiles/ahs_util.dir/string_util.cpp.o"
  "CMakeFiles/ahs_util.dir/string_util.cpp.o.d"
  "CMakeFiles/ahs_util.dir/table.cpp.o"
  "CMakeFiles/ahs_util.dir/table.cpp.o.d"
  "libahs_util.a"
  "libahs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
