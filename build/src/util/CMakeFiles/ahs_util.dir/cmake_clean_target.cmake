file(REMOVE_RECURSE
  "libahs_util.a"
)
