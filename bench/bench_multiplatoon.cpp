// Extension bench: highways with more than two platoons — the scaling the
// paper's conclusion names as the natural extension of its models
// ("highways composed of a larger number of platoons").
//
// Reports S(6 h), the per-vehicle unsafety hazard (does adding lanes make
// each vehicle's trip riskier, or only add exposure?), and the strategy
// gap as the lane count grows.
#include "ahs/lumped.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  unsigned threads = 0;  // accepted for CLI uniformity
  if (!bench::parse_bench_flags(argc, argv, "bench_multiplatoon", threads))
    return 0;
  (void)threads;
  using namespace ahs;
  std::cout << "==========================================================\n"
               "Extension: multi-platoon highways (paper §5 future work)\n"
               "n = 6 vehicles/platoon, lambda = 1e-5/h, t = 6 h\n"
               "==========================================================\n";

  util::Table t({"platoons", "capacity", "lumped states", "S(6h) DD",
                 "S(6h) CC", "S/vehicle DD"});
  std::vector<std::vector<std::string>> csv_rows;
  for (int lanes = 1; lanes <= 3; ++lanes) {
    Parameters p;
    p.num_platoons = lanes;
    p.max_per_platoon = 6;
    p.base_failure_rate = 1e-5;
    LumpedModel dd(p);
    Parameters pc = p;
    pc.strategy = Strategy::kCC;
    LumpedModel cc(pc);
    const double sdd = dd.unsafety({6.0})[0];
    const double scc = cc.unsafety({6.0})[0];
    std::vector<std::string> row = {
        std::to_string(lanes), std::to_string(p.capacity()),
        std::to_string(dd.num_states()), bench::fmt(sdd), bench::fmt(scc),
        bench::fmt(sdd / p.capacity())};
    t.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << t;
  std::cout
      << "\nobservations:\n"
         "  * a single-lane AHS has no escort partner: TIE-E always\n"
         "    escalates, yet unsafety per vehicle stays lowest because\n"
         "    fewer vehicles share the catastrophic neighbourhood;\n"
         "  * S grows faster than linearly in the lane count (more\n"
         "    concurrent-failure pairs), so widening an AHS trades\n"
         "    throughput against safety exactly like lengthening\n"
         "    platoons does in Fig 10.\n";
  bench::write_csv("bench_multiplatoon.csv",
                   {"platoons", "capacity", "states", "S_DD", "S_CC",
                    "S_per_vehicle"},
                   csv_rows);
  bench::finish_telemetry();
  return 0;
}
