// Figure 14: S(t) versus trip duration for the four coordination strategies
// of Table 3 (DD, DC, CD, CC) at n = 10, λ = 1e-5/h.
//
// Paper shape to reproduce: decentralized inter-platoon coordination is
// safer; the inter-platoon model matters more than the intra-platoon model;
// the overall impact of the strategy is small.
//
// The strategy changes the reachable structure (it is part of the
// fingerprint), so all four points are cold builds — the sweep still runs
// them concurrently.
#include "ahs/sweep.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  unsigned threads = 0;
  if (!bench::parse_bench_flags(argc, argv, "bench_fig14", threads)) return 0;

  ahs::Parameters base;
  base.max_per_platoon = 10;
  base.base_failure_rate = 1e-5;
  base.join_rate = 12.0;
  base.leave_rate = 4.0;

  bench::print_header(
      "Figure 14", "unsafety S(t) vs trip duration per coordination strategy",
      "n = 10, lambda = 1e-5/h, join = 12/h, leave = 4/h");

  std::vector<ahs::SweepPoint> points;
  for (ahs::Strategy s : ahs::kAllStrategies) {
    ahs::SweepPoint pt{std::string("strategy=") + ahs::to_string(s), base};
    pt.params.strategy = s;
    points.push_back(std::move(pt));
  }

  const std::vector<double> times = ahs::trip_duration_grid();
  ahs::SweepOptions opts;
  opts.threads = threads;
  bench::robustness().apply(opts, "bench_fig14");
  const ahs::SweepResult sweep = ahs::run_sweep(points, times, opts);
  if (bench::interrupted(sweep)) return 130;

  util::Table table({"t (h)", "DD", "DC", "CD", "CC"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t i = 0; i < times.size(); ++i) {
    std::vector<std::string> row = {util::format_fixed(times[i])};
    for (const auto& curve : sweep.curves)
      row.push_back(bench::fmt(curve.unsafety[i]));
    table.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << table;

  const std::size_t t6 = 2;
  const double dd = sweep.curves[0].unsafety[t6],
               dc = sweep.curves[1].unsafety[t6],
               cd = sweep.curves[2].unsafety[t6],
               cc = sweep.curves[3].unsafety[t6];
  std::cout << "\nshape checks at t = 6 h:\n"
            << "  ordering: DD < DC < CD < CC ? "
            << ((dd < dc && dc < cd && cd < cc) ? "yes" : "NO — check")
            << "\n"
            << "  inter impact (CD-DD) = " << bench::fmt(cd - dd)
            << "  vs intra impact (DC-DD) = " << bench::fmt(dc - dd)
            << " (paper: inter-platoon dominates)\n"
            << "  worst/best = " << util::format_fixed(cc / dd, 3)
            << " (paper: the strategy impact is low)\n";

  bench::write_csv("bench_fig14.csv", {"t_hours", "DD", "DC", "CD", "CC"},
                   csv_rows);
  bench::log_sweep_timings("bench_fig14", threads, points, sweep);
  bench::finish_telemetry();
  return 0;
}
