// Figure 12: S(t = 6 h) versus the maximum platoon size n (10..18) for
// several base failure rates.
//
// Paper shape to reproduce: S grows with n at every λ, and the *relative*
// effect of λ is larger for smaller platoons.
//
// A 2-D sweep (n outer, λ inner): within each n the three λ points share a
// structure, so 10 of the 15 points are structure-cache hits.
#include "ahs/sweep.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  unsigned threads = 0;
  if (!bench::parse_bench_flags(argc, argv, "bench_fig12", threads)) return 0;

  ahs::Parameters base;
  base.join_rate = 12.0;
  base.leave_rate = 4.0;

  bench::print_header("Figure 12",
                      "unsafety S(6h) vs platoon size for several lambda",
                      "t = 6 h, join = 12/h, leave = 4/h, strategy DD");

  const std::vector<int> sizes = {10, 12, 14, 16, 18};
  const std::vector<double> lambdas = {1e-6, 1e-5, 1e-4};
  const std::vector<double> t6 = {6.0};

  const ahs::GridAxis n_axis{
      "n",
      {10, 12, 14, 16, 18},
      [](ahs::Parameters& p, double v) {
        p.max_per_platoon = static_cast<int>(v);
      }};
  const ahs::GridAxis lambda_axis{
      "lambda", lambdas,
      [](ahs::Parameters& p, double v) { p.base_failure_rate = v; }};
  const std::vector<ahs::SweepPoint> points =
      ahs::make_grid(base, n_axis, lambda_axis);

  ahs::SweepOptions opts;
  opts.threads = threads;
  bench::robustness().apply(opts, "bench_fig12");
  const ahs::SweepResult sweep = ahs::run_sweep(points, t6, opts);
  if (bench::interrupted(sweep)) return 130;

  util::Table table({"n", "S(6h) 1e-6/h", "S(6h) 1e-5/h", "S(6h) 1e-4/h"});
  std::vector<std::vector<std::string>> csv_rows;
  std::vector<std::vector<double>> values(lambdas.size());
  for (std::size_t ni = 0; ni < sizes.size(); ++ni) {
    std::vector<std::string> row = {std::to_string(sizes[ni])};
    for (std::size_t l = 0; l < lambdas.size(); ++l) {
      const double s = sweep.curves[ni * lambdas.size() + l].unsafety[0];
      values[l].push_back(s);
      row.push_back(bench::fmt(s));
    }
    table.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << table;

  std::cout << "\nshape checks:\n";
  for (std::size_t l = 0; l < lambdas.size(); ++l)
    std::cout << "  lambda = " << util::format_sci(lambdas[l], 1)
              << ": S(n=18)/S(n=10) = "
              << util::format_fixed(values[l].back() / values[l].front(), 2)
              << "\n";
  std::cout << "  lambda leverage 1e-4/1e-6 at n=10: "
            << util::format_fixed(values[2].front() / values[0].front(), 0)
            << "  vs at n=18: "
            << util::format_fixed(values[2].back() / values[0].back(), 0)
            << "\n  (paper: failure rate has more impact for smaller n;"
               " in this reproduction the\n   leverage is n-independent —"
               " unsafety is two-concurrent-failure dominated at\n"
               "   these rates; see EXPERIMENTS.md)\n";

  bench::write_csv("bench_fig12.csv",
                   {"n", "S_lam1e6", "S_lam1e5", "S_lam1e4"}, csv_rows);
  bench::log_sweep_timings("bench_fig12", threads, points, sweep);
  bool floor_ok = true;
  {
    const double pps = sweep.total_seconds > 0.0
                           ? static_cast<double>(points.size()) /
                                 sweep.total_seconds
                           : 0.0;
    const std::uint64_t lookups =
        sweep.poisson_cache_hits + sweep.poisson_cache_misses;
    const std::uint64_t warm_lookups =
        sweep.warm_start_hits + sweep.warm_start_misses;
    std::ostringstream fields;
    fields << "\"threads\": " << threads << ", \"points\": " << points.size()
           << ", \"total_seconds\": "
           << util::format_sci(sweep.total_seconds, 6)
           << ", \"points_per_sec\": " << util::format_sci(pps, 6)
           << ", \"total_iterations\": " << sweep.total_solver_iterations
           << ", \"iterations_per_point\": "
           << util::format_sci(
                  static_cast<double>(sweep.total_solver_iterations) /
                      static_cast<double>(points.size()),
                  6)
           << ", \"poisson_cache_hit_rate\": "
           << util::format_sci(
                  lookups > 0 ? static_cast<double>(
                                    sweep.poisson_cache_hits) /
                                    static_cast<double>(lookups)
                              : 0.0,
                  4)
           << ", \"warm_start_hit_rate\": "
           << util::format_sci(
                  warm_lookups > 0
                      ? static_cast<double>(sweep.warm_start_hits) /
                            static_cast<double>(warm_lookups)
                      : 0.0,
                  4);
    // The baseline is read before this run's record is merged, so pointing
    // --assert-floor at the merge target compares against the *committed*
    // throughput, not this run's own.
    const double floor =
        bench::floor_check().read("bench_fig12", "points_per_sec");
    bench::write_bench_perf("bench_fig12", fields.str());
    floor_ok = bench::floor_check().check("bench_fig12", "points/s", floor,
                                          pps);
  }
  bench::finish_telemetry();
  return floor_ok ? 0 : 1;
}
