// Figure 11: S(t) versus trip duration for base failure rates
// λ ∈ {1e-6, 1e-5, 1e-4}/h at n = 10.
//
// Paper shape to reproduce: unsafety is very sensitive to λ (paper: ×~175
// from 1e-6 to 1e-5 and ×~40 from 1e-5 to 1e-4 at t = 6 h — i.e. roughly
// two orders of magnitude per decade of λ); λ = 1e-7 gives ≈1e-13, which
// the paper leaves off the plot and we print here because the CTMC engine
// reaches it.
#include "ahs/lumped.h"
#include "bench_common.h"

int main() {
  ahs::Parameters base;
  base.max_per_platoon = 10;
  base.join_rate = 12.0;
  base.leave_rate = 4.0;

  bench::print_header(
      "Figure 11", "unsafety S(t) vs trip duration for three failure rates",
      "n = 10, join = 12/h, leave = 4/h, strategy DD");

  const std::vector<double> times = ahs::trip_duration_grid();
  const std::vector<double> lambdas = {1e-6, 1e-5, 1e-4};

  std::vector<std::vector<double>> series;
  for (double lam : lambdas) {
    ahs::Parameters p = base;
    p.base_failure_rate = lam;
    series.push_back(ahs::LumpedModel(p).unsafety(times));
  }

  util::Table table(
      {"t (h)", "S(t) 1e-6/h", "S(t) 1e-5/h", "S(t) 1e-4/h"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t i = 0; i < times.size(); ++i) {
    std::vector<std::string> row = {util::format_fixed(times[i])};
    for (std::size_t s = 0; s < lambdas.size(); ++s)
      row.push_back(bench::fmt(series[s][i]));
    table.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << table;

  const std::size_t t6 = 2;  // index of t = 6 h in the grid
  std::cout << "\nshape checks at t = 6 h:\n"
            << "  S(1e-5)/S(1e-6) = "
            << util::format_fixed(series[1][t6] / series[0][t6], 1)
            << " (paper: about 175)\n"
            << "  S(1e-4)/S(1e-5) = "
            << util::format_fixed(series[2][t6] / series[1][t6], 1)
            << " (paper: about 40)\n";

  // The paper's off-plot remark: λ = 1e-7 ⇒ unsafety ≈ 1e-13.
  ahs::Parameters p7 = base;
  p7.base_failure_rate = 1e-7;
  const double s7 = ahs::LumpedModel(p7).unsafety({6.0})[0];
  std::cout << "  lambda = 1e-7/h: S(6h) = " << bench::fmt(s7)
            << " (paper: about 1e-13)\n";

  bench::write_csv("bench_fig11.csv",
                   {"t_hours", "S_lam1e6", "S_lam1e5", "S_lam1e4"},
                   csv_rows);
  return 0;
}
