// Figure 11: S(t) versus trip duration for base failure rates
// λ ∈ {1e-6, 1e-5, 1e-4}/h at n = 10.
//
// Paper shape to reproduce: unsafety is very sensitive to λ (paper: ×~175
// from 1e-6 to 1e-5 and ×~40 from 1e-5 to 1e-4 at t = 6 h — i.e. roughly
// two orders of magnitude per decade of λ); λ = 1e-7 gives ≈1e-13, which
// the paper leaves off the plot and we print here because the CTMC engine
// reaches it.
//
// All four λ points share one structural fingerprint, so the sweep builds
// the lumped state space once and every later point is a structure-cache
// hit; the four solves run concurrently under --threads.
#include "ahs/sweep.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  unsigned threads = 0;
  if (!bench::parse_bench_flags(argc, argv, "bench_fig11", threads)) return 0;

  ahs::Parameters base;
  base.max_per_platoon = 10;
  base.join_rate = 12.0;
  base.leave_rate = 4.0;

  bench::print_header(
      "Figure 11", "unsafety S(t) vs trip duration for three failure rates",
      "n = 10, join = 12/h, leave = 4/h, strategy DD");

  const std::vector<double> times = ahs::trip_duration_grid();
  const ahs::GridAxis lambda{
      "lambda",
      {1e-6, 1e-5, 1e-4, 1e-7},  // 1e-7 is the paper's off-plot remark
      [](ahs::Parameters& p, double v) { p.base_failure_rate = v; }};
  const std::vector<ahs::SweepPoint> points = ahs::make_grid(base, lambda);

  ahs::SweepOptions opts;
  opts.threads = threads;
  bench::robustness().apply(opts, "bench_fig11");
  const ahs::SweepResult sweep = ahs::run_sweep(points, times, opts);
  if (bench::interrupted(sweep)) return 130;

  util::Table table(
      {"t (h)", "S(t) 1e-6/h", "S(t) 1e-5/h", "S(t) 1e-4/h"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t i = 0; i < times.size(); ++i) {
    std::vector<std::string> row = {util::format_fixed(times[i])};
    for (std::size_t s = 0; s < 3; ++s)
      row.push_back(bench::fmt(sweep.curves[s].unsafety[i]));
    table.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << table;

  const std::size_t t6 = 2;  // index of t = 6 h in the grid
  const auto& s6 = sweep.curves;
  std::cout << "\nshape checks at t = 6 h:\n"
            << "  S(1e-5)/S(1e-6) = "
            << util::format_fixed(s6[1].unsafety[t6] / s6[0].unsafety[t6], 1)
            << " (paper: about 175)\n"
            << "  S(1e-4)/S(1e-5) = "
            << util::format_fixed(s6[2].unsafety[t6] / s6[1].unsafety[t6], 1)
            << " (paper: about 40)\n"
            // The paper's off-plot remark: λ = 1e-7 ⇒ unsafety ≈ 1e-13.
            << "  lambda = 1e-7/h: S(6h) = " << bench::fmt(s6[3].unsafety[t6])
            << " (paper: about 1e-13)\n";

  bench::write_csv("bench_fig11.csv",
                   {"t_hours", "S_lam1e6", "S_lam1e5", "S_lam1e4"},
                   csv_rows);
  bench::log_sweep_timings("bench_fig11", threads, points, sweep);
  bench::finish_telemetry();
  return 0;
}
