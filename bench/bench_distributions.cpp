// Extension bench: sensitivity of S(t) to the maneuver-duration law.
//
// The paper assumes exponential maneuver times "to facilitate sensitivity
// analyses" (§4.1).  The discrete-event engine supports general
// distributions, so the assumption itself can be tested: same means, four
// different laws.  Less-variable execution times shorten the long right
// tail during which a maneuvering vehicle is exposed to a second failure,
// so unsafety should decrease from exponential → uniform → Erlang-3 →
// deterministic.
#include "ahs/lumped.h"
#include "ahs/study.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  unsigned threads = 0;  // accepted for CLI uniformity
  if (!bench::parse_bench_flags(argc, argv, "bench_distributions", threads))
    return 0;
  (void)threads;
  using namespace ahs;
  std::cout << "==========================================================\n"
               "Extension: maneuver-duration distribution sensitivity\n"
               "n = 2, lambda = 1e-2/h (elevated so simulation converges),\n"
               "30 000 replications per law, identical means 1/mu\n"
               "==========================================================\n";

  Parameters base;
  base.max_per_platoon = 2;
  base.base_failure_rate = 1e-2;

  const std::vector<double> times = {6.0};
  {
    LumpedModel exact(base);
    std::cout << "exact CTMC reference (exponential law): S(6h) = "
              << bench::fmt(exact.unsafety({6.0})[0]) << "\n\n";
  }

  util::Table t({"maneuver-time law", "S(6h)", "95% +-"});
  std::vector<std::vector<std::string>> csv_rows;
  for (ManeuverTimeModel law :
       {ManeuverTimeModel::kExponential, ManeuverTimeModel::kUniform,
        ManeuverTimeModel::kErlang3, ManeuverTimeModel::kDeterministic}) {
    Parameters p = base;
    p.maneuver_time_model = law;
    StudyOptions so;
    so.engine = Engine::kSimulation;
    so.min_replications = 30000;
    so.max_replications = 30000;
    const auto c = unsafety_curve(p, times, so);
    std::vector<std::string> row = {to_string(law),
                                    bench::fmt(c.unsafety[0]),
                                    bench::fmt(c.half_width[0])};
    t.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << t
            << "\nexpected ordering (same mean, decreasing variance):\n"
               "  exponential >= uniform >= erlang3 >= deterministic —\n"
               "  the paper's exponential assumption is mildly\n"
               "  conservative for the unsafety measure.\n";
  bench::write_csv("bench_distributions.csv", {"law", "S_6h", "ci"},
                   csv_rows);
  bench::finish_telemetry();
  return 0;
}
