// Figure 13: S(t) versus trip duration under different join/leave rates,
// grouped by the load ρ = join_rate / leave_rate (ρ = 1 and ρ = 2), at
// λ = 1e-5/h and n = 8.
//
// Paper shape to reproduce: curves with the same ρ trend together; the
// highest unsafety within a ρ group belongs to the highest join rate; a
// higher ρ gives higher unsafety at a fixed leave rate, but the results
// stay within the same order of magnitude.
//
// All four (join, leave) points keep both rates nonzero, so they share one
// structural fingerprint: one cold BFS, three cache hits.
#include "ahs/sweep.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  unsigned threads = 0;
  if (!bench::parse_bench_flags(argc, argv, "bench_fig13", threads)) return 0;

  ahs::Parameters base;
  base.max_per_platoon = 8;
  base.base_failure_rate = 1e-5;

  bench::print_header(
      "Figure 13", "unsafety S(t) vs trip duration for join/leave loads",
      "n = 8, lambda = 1e-5/h, strategy DD, rho = join/leave");

  struct Config {
    double join, leave;
    const char* label;
  };
  const std::vector<Config> configs = {
      {4, 4, "rho=1 join=4 leave=4"},
      {12, 12, "rho=1 join=12 leave=12"},
      {8, 4, "rho=2 join=8 leave=4"},
      {24, 12, "rho=2 join=24 leave=12"},
  };

  std::vector<ahs::SweepPoint> points;
  for (const auto& c : configs) {
    ahs::SweepPoint pt{c.label, base};
    pt.params.join_rate = c.join;
    pt.params.leave_rate = c.leave;
    points.push_back(std::move(pt));
  }

  const std::vector<double> times = ahs::trip_duration_grid();
  ahs::SweepOptions opts;
  opts.threads = threads;
  bench::robustness().apply(opts, "bench_fig13");
  const ahs::SweepResult sweep = ahs::run_sweep(points, times, opts);
  if (bench::interrupted(sweep)) return 130;

  std::vector<std::string> headers = {"t (h)"};
  for (const auto& c : configs) headers.push_back(c.label);
  util::Table table(headers);
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t i = 0; i < times.size(); ++i) {
    std::vector<std::string> row = {util::format_fixed(times[i])};
    for (const auto& curve : sweep.curves)
      row.push_back(bench::fmt(curve.unsafety[i]));
    table.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << table;

  const std::size_t t10 = times.size() - 1;
  const auto& s = sweep.curves;
  std::cout << "\nshape checks at t = 10 h:\n"
            << "  within rho=1: S(join=12)/S(join=4) = "
            << util::format_fixed(s[1].unsafety[t10] / s[0].unsafety[t10], 2)
            << " (paper: same-rho curves show similar trends, the highest\n"
               "   join rate marginally worst; here the same-rho curves are"
               " near-identical — see EXPERIMENTS.md)\n"
            << "  rho=2 vs rho=1 at leave=4: S = "
            << bench::fmt(s[2].unsafety[t10]) << " vs "
            << bench::fmt(s[0].unsafety[t10])
            << " (paper: higher rho worse, same order of magnitude)\n"
            << "  rho=2 vs rho=1 at leave=12: S = "
            << bench::fmt(s[3].unsafety[t10]) << " vs "
            << bench::fmt(s[1].unsafety[t10]) << "\n";

  bench::write_csv("bench_fig13.csv",
                   {"t_hours", "r1_j4_l4", "r1_j12_l12", "r2_j8_l4",
                    "r2_j24_l12"},
                   csv_rows);
  bench::log_sweep_timings("bench_fig13", threads, points, sweep);
  bench::finish_telemetry();
  return 0;
}
