// Figure 13: S(t) versus trip duration under different join/leave rates,
// grouped by the load ρ = join_rate / leave_rate (ρ = 1 and ρ = 2), at
// λ = 1e-5/h and n = 8.
//
// Paper shape to reproduce: curves with the same ρ trend together; the
// highest unsafety within a ρ group belongs to the highest join rate; a
// higher ρ gives higher unsafety at a fixed leave rate, but the results
// stay within the same order of magnitude.
#include "ahs/lumped.h"
#include "bench_common.h"

int main() {
  ahs::Parameters base;
  base.max_per_platoon = 8;
  base.base_failure_rate = 1e-5;

  bench::print_header(
      "Figure 13", "unsafety S(t) vs trip duration for join/leave loads",
      "n = 8, lambda = 1e-5/h, strategy DD, rho = join/leave");

  struct Config {
    double join, leave;
    const char* label;
  };
  const std::vector<Config> configs = {
      {4, 4, "rho=1 join=4 leave=4"},
      {12, 12, "rho=1 join=12 leave=12"},
      {8, 4, "rho=2 join=8 leave=4"},
      {24, 12, "rho=2 join=24 leave=12"},
  };

  const std::vector<double> times = ahs::trip_duration_grid();
  std::vector<std::vector<double>> series;
  for (const auto& c : configs) {
    ahs::Parameters p = base;
    p.join_rate = c.join;
    p.leave_rate = c.leave;
    series.push_back(ahs::LumpedModel(p).unsafety(times));
  }

  std::vector<std::string> headers = {"t (h)"};
  for (const auto& c : configs) headers.push_back(c.label);
  util::Table table(headers);
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t i = 0; i < times.size(); ++i) {
    std::vector<std::string> row = {util::format_fixed(times[i])};
    for (const auto& s : series) row.push_back(bench::fmt(s[i]));
    table.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << table;

  const std::size_t t10 = times.size() - 1;
  std::cout << "\nshape checks at t = 10 h:\n"
            << "  within rho=1: S(join=12)/S(join=4) = "
            << util::format_fixed(series[1][t10] / series[0][t10], 2)
            << " (paper: same-rho curves show similar trends, the highest\n"
               "   join rate marginally worst; here the same-rho curves are"
               " near-identical — see EXPERIMENTS.md)\n"
            << "  rho=2 vs rho=1 at leave=4: S = "
            << bench::fmt(series[2][t10]) << " vs " << bench::fmt(series[0][t10])
            << " (paper: higher rho worse, same order of magnitude)\n"
            << "  rho=2 vs rho=1 at leave=12: S = "
            << bench::fmt(series[3][t10]) << " vs "
            << bench::fmt(series[1][t10]) << "\n";

  bench::write_csv("bench_fig13.csv",
                   {"t_hours", "r1_j4_l4", "r1_j12_l12", "r2_j8_l4",
                    "r2_j24_l12"},
                   csv_rows);
  return 0;
}
