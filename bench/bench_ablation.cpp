// Ablation bench for the calibration choices DESIGN.md §4 documents:
//
//  (a) q_intrinsic — the paper never publishes the intrinsic maneuver
//      success probability; show how S(6h) and the strategy gap move with
//      it.
//  (b) assistant coupling — disable the assistant-health requirement
//      (q = q_intrinsic always) to isolate how much of the unsafety and of
//      the strategy effect comes from the coordination coupling.
//  (c) maneuver speed — the paper bounds μ to [15, 30]/h; sweep the band.
//  (d) the system MTTF (mean time to a catastrophic situation), the
//      "future work" measure the CTMC engine gets for free.
#include "ahs/lumped.h"
#include "bench_common.h"

namespace {

double s6(const ahs::Parameters& p) {
  return ahs::LumpedModel(p).unsafety({6.0})[0];
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 0;  // accepted for CLI uniformity
  if (!bench::parse_bench_flags(argc, argv, "bench_ablation", threads))
    return 0;
  (void)threads;
  using namespace ahs;
  Parameters base;
  base.max_per_platoon = 10;
  base.base_failure_rate = 1e-5;

  std::cout << "==========================================================\n"
               "Ablations of the reproduction's calibration choices\n"
               "n = 10, lambda = 1e-5/h, t = 6 h unless stated\n"
               "==========================================================\n";

  // (a) q_intrinsic sweep, with the DD->CC strategy gap at each value.
  {
    util::Table t({"q_intrinsic", "S(6h) DD", "S(6h) CC", "CC/DD"});
    for (double q : {0.90, 0.95, 0.98, 0.995, 1.0}) {
      Parameters pd = base;
      pd.q_intrinsic = q;
      Parameters pc = pd;
      pc.strategy = Strategy::kCC;
      const double sd = s6(pd), sc = s6(pc);
      t.add_row({util::format_fixed(q, 3), bench::fmt(sd), bench::fmt(sc),
                 util::format_fixed(sc / sd, 3)});
    }
    std::cout << "\n(a) intrinsic maneuver success probability\n" << t;
  }

  // (b) assistant coupling on/off: q_intrinsic = 1 removes intrinsic
  // failures, leaving only assistant-driven escalation; compare against the
  // default to split the two escalation sources.
  {
    Parameters no_intrinsic = base;
    no_intrinsic.q_intrinsic = 1.0;
    Parameters cc = base;
    cc.strategy = Strategy::kCC;
    Parameters cc_no_intrinsic = cc;
    cc_no_intrinsic.q_intrinsic = 1.0;
    util::Table t({"configuration", "S(6h)"});
    t.add_row({"DD, default q=0.98 (both escalation sources)",
               bench::fmt(s6(base))});
    t.add_row({"DD, q=1.0 (assistant-driven escalation only)",
               bench::fmt(s6(no_intrinsic))});
    t.add_row({"CC, default q=0.98", bench::fmt(s6(cc))});
    t.add_row({"CC, q=1.0 (assistant-driven only)",
               bench::fmt(s6(cc_no_intrinsic))});
    std::cout << "\n(b) escalation-source split\n" << t;
  }

  // (c) maneuver execution speed across the paper's [15, 30]/h band.
  {
    util::Table t({"maneuver rates (/h)", "S(6h)"});
    for (double mu : {15.0, 20.0, 25.0, 30.0}) {
      Parameters p = base;
      p.maneuver_rates = {mu, mu, mu, mu, mu, mu};
      t.add_row({util::format_fixed(mu), bench::fmt(s6(p))});
    }
    std::cout << "\n(c) maneuver execution rate (uniform across maneuvers)\n"
              << t;
  }

  // (d) MTTF extension measure.
  {
    util::Table t({"lambda (/h)", "mean time to unsafe (h)"});
    for (double lam : {1e-6, 1e-5, 1e-4}) {
      Parameters p = base;
      p.base_failure_rate = lam;
      t.add_row({util::format_sci(lam, 1),
                 util::format_sci(LumpedModel(p).mean_time_to_unsafe(), 3)});
    }
    std::cout << "\n(d) system MTTF (extension measure; paper lists safety-"
                 "optimal control as future work)\n"
              << t;
  }
  bench::finish_telemetry();
  return 0;
}
