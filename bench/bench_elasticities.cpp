// Extension bench: elasticities of S(6 h) — the paper's §4 sensitivity
// study condensed to one comparable number per parameter
// (∂ln S / ∂ln θ, exact lumped-CTMC central differences).
#include "ahs/sensitivity.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ahs;
  unsigned threads = 0;
  if (!bench::parse_bench_flags(argc, argv, "bench_elasticities", threads))
    return 0;

  Parameters p;
  p.max_per_platoon = 6;  // small enough that 26 solves stay quick
  p.base_failure_rate = 1e-5;

  std::cout << "==========================================================\n"
               "Extension: unsafety elasticities  e = dln S(6h) / dln theta\n"
               "n = 6, lambda = 1e-5/h, strategy DD\n"
               "==========================================================\n";

  SensitivityOptions options;
  options.threads = threads;
  const auto es = unsafety_elasticities(p, 6.0, all_scalar_params(), options);
  util::Table t({"parameter", "value", "elasticity"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& e : es) {
    std::vector<std::string> row = {to_string(e.param),
                                    util::format_sci(e.value, 3),
                                    util::format_fixed(e.elasticity, 3)};
    t.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << t;
  std::cout
      << "\nreadings (cross-checks of the paper's qualitative findings):\n"
         "  * e(lambda) ~ +2: catastrophes need two concurrent failures\n"
         "    (Fig 11's two-orders-per-decade sensitivity);\n"
         "  * e(mu all) ~ -1: overlap windows shrink linearly with\n"
         "    maneuver speed;\n"
         "  * e(q_intrinsic) ~ -1.8: steep per percent, but q can only\n"
         "    move 2% before hitting 1.0, so escalation contributes a few\n"
         "    percent of S in total (consistent with bench_ablation's\n"
         "    q = 1 run);\n"
         "  * occupancy knobs (join/leave/change/transit) are an order\n"
         "    below the failure/maneuver knobs — the dynamics matter\n"
         "    mostly through how full the highway is (Fig 13's 'same\n"
         "    order of magnitude').\n";
  bench::write_csv("bench_elasticities.csv",
                   {"parameter", "value", "elasticity"}, csv_rows);
  bench::finish_telemetry();
  return 0;
}
