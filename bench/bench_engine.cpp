// Engine microbenchmarks (google-benchmark): SAN flattening, discrete-event
// stepping on a small net and on the full AHS model, state-space
// generation, and uniformization.
#include <benchmark/benchmark.h>

#include "ahs/lumped.h"
#include "ahs/system_model.h"
#include "ctmc/state_space.h"
#include "ctmc/uniformization.h"
#include "san/composition.h"
#include "sim/executor.h"

namespace {

std::shared_ptr<san::AtomicModel> flipflop() {
  auto m = std::make_shared<san::AtomicModel>("ff");
  const auto up = m->place("up", 1);
  const auto down = m->place("down");
  m->timed_activity("fall")
      .distribution(util::Distribution::Exponential(3.0))
      .input_arc(up)
      .output_arc(down);
  m->timed_activity("rise")
      .distribution(util::Distribution::Exponential(1.0))
      .input_arc(down)
      .output_arc(up);
  return m;
}

void BM_FlattenAhsSystem(benchmark::State& state) {
  ahs::Parameters p;
  p.max_per_platoon = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto flat = ahs::build_system_model(p);
    benchmark::DoNotOptimize(flat.marking_size());
  }
}
BENCHMARK(BM_FlattenAhsSystem)->Arg(4)->Arg(10);

void BM_ExecutorStepFlipflop(benchmark::State& state) {
  const auto flat = san::flatten(flipflop());
  sim::Executor exec(flat, util::Rng(1));
  for (auto _ : state) {
    if (!exec.step()) exec.reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutorStepFlipflop);

void BM_ExecutorStepAhs(benchmark::State& state) {
  ahs::Parameters p;
  p.max_per_platoon = static_cast<int>(state.range(0));
  p.base_failure_rate = 1e-3;
  const auto flat = ahs::build_system_model(p);
  sim::Executor exec(flat, util::Rng(1));
  for (auto _ : state) {
    if (!exec.step()) exec.reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutorStepAhs)->Arg(2)->Arg(10);

void BM_AhsReplicationTo10h(benchmark::State& state) {
  ahs::Parameters p;
  p.max_per_platoon = 10;
  p.base_failure_rate = 1e-5;
  const auto flat = ahs::build_system_model(p);
  util::Rng master(7);
  sim::Executor exec(flat, master);
  std::uint64_t rep = 0;
  for (auto _ : state) {
    exec.reset(master.split(rep++));
    exec.run_until(10.0);
    benchmark::DoNotOptimize(exec.events());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AhsReplicationTo10h);

void BM_LumpedBuild(benchmark::State& state) {
  ahs::Parameters p;
  p.max_per_platoon = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ahs::LumpedModel m(p);
    benchmark::DoNotOptimize(m.num_states());
  }
}
BENCHMARK(BM_LumpedBuild)->Arg(4)->Arg(10);

void BM_LumpedUnsafety6h(benchmark::State& state) {
  ahs::Parameters p;
  p.max_per_platoon = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ahs::LumpedModel m(p);
    benchmark::DoNotOptimize(m.unsafety({6.0})[0]);
  }
}
BENCHMARK(BM_LumpedUnsafety6h)->Arg(4)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_StateSpaceFlipflopChain(benchmark::State& state) {
  // Chain of N independent flipflops via Rep (no sharing): 2^N states.
  const auto rep =
      san::Rep("r", san::Leaf(flipflop()),
               static_cast<std::uint32_t>(state.range(0)), {});
  const auto flat = san::flatten(rep);
  for (auto _ : state) {
    const auto space = ctmc::build_state_space(flat);
    benchmark::DoNotOptimize(space.chain.num_states);
  }
}
BENCHMARK(BM_StateSpaceFlipflopChain)->Arg(8)->Arg(12);

void BM_Uniformization(benchmark::State& state) {
  const auto rep = san::Rep("r", san::Leaf(flipflop()), 10, {});
  const auto flat = san::flatten(rep);
  const auto space = ctmc::build_state_space(flat);
  const std::vector<double> reward(space.chain.num_states, 1.0);
  const std::vector<double> times = {10.0};
  for (auto _ : state) {
    const auto sol = ctmc::solve_transient(space.chain, reward, times);
    benchmark::DoNotOptimize(sol.expected_reward[0]);
  }
  state.SetLabel(std::to_string(space.chain.num_states) + " states");
}
BENCHMARK(BM_Uniformization)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
