// Shared helpers for the figure-regeneration benches.
//
// Every bench prints (a) the experiment header with the paper reference and
// the parameters in force, (b) a paper-style series table on stdout, and
// (c) a machine-readable CSV next to the binary (./<bench>.csv) for
// replotting.  Values are computed with the lumped-CTMC engine unless the
// bench says otherwise; EXPERIMENTS.md records paper-vs-measured per figure.
#pragma once

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "ahs/study.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table.h"

namespace bench {

inline void print_header(const std::string& figure,
                         const std::string& what,
                         const std::string& params) {
  std::cout << "==========================================================\n"
            << figure << " — " << what << "\n"
            << "(Hamouda, Kaâniche, Kanoun: \"Safety Modeling and Evaluation"
               " of Automated Highway Systems\", DSN 2009)\n"
            << params << "\n"
            << "==========================================================\n";
}

/// Formats an unsafety value the way the paper's log-scale plots read.
inline std::string fmt(double v) { return util::format_sci(v, 4); }

/// Writes a CSV (header + rows) into ./results/ for external replotting.
inline void write_csv(const std::string& name,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  std::filesystem::create_directories("results");
  const std::string path = "results/" + name;
  util::CsvWriter csv(path);
  csv.write_row(header);
  for (const auto& r : rows) csv.write_row(r);
  std::cout << "series written to " << path << "\n";
}

}  // namespace bench
