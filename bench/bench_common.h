// Shared helpers for the figure-regeneration benches.
//
// Every bench prints (a) the experiment header with the paper reference and
// the parameters in force, (b) a paper-style series table on stdout, and
// (c) a machine-readable CSV next to the binary (./<bench>.csv) for
// replotting.  Values are computed with the lumped-CTMC engine unless the
// bench says otherwise; EXPERIMENTS.md records paper-vs-measured per figure.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ahs/study.h"
#include "ahs/sweep.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/snapshot.h"
#include "util/stopflag.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/telemetry.h"

namespace bench {

/// Run-telemetry for a bench driver: the --metrics-out/--progress/--log-json
/// flags plus the observability taps --trace-out (flight recorder with
/// Perfetto export, docs/OBSERVABILITY.md "Flight recorder") and
/// --tap/--tap-interval (live telemetry snapshot file for ahs_top).
/// parse_bench_flags() registers the flags and starts the session; the
/// driver calls finish_telemetry() once after its workload.  One
/// process-wide instance (telemetry()) keeps the driver wiring to those two
/// calls.
class BenchTelemetry {
 public:
  void add_flags(util::Cli& cli) {
    metrics_out_ = cli.add_string(
        "metrics-out", "",
        "write run telemetry JSON (schema ahs.telemetry.v1) to this file");
    progress_ = cli.add_flag(
        "progress", "print the telemetry summary (span tree, metric tables)");
    log_json_ = cli.add_flag("log-json",
                             "emit log lines as JSON objects (one per line)");
    trace_out_ = cli.add_string(
        "trace-out", "",
        "record a flight-recorder event trace and write it as "
        "Chrome/Perfetto trace-event JSON (schema ahs.trace.v1)");
    tap_path_ = cli.add_string(
        "tap", "",
        "atomically publish a live telemetry snapshot (schema "
        "ahs.telemetry.live.v1) to this file every --tap-interval seconds "
        "(tail it with ahs_top)");
    tap_interval_ = cli.add_double(
        "tap-interval", 1.0, "seconds between --tap snapshots");
  }

  /// Applies the parsed flags: switches the log format and attaches the
  /// process-wide metrics registry + span tree (and, with --trace-out, the
  /// flight recorder; with --tap, the live publisher) when any output was
  /// asked for.  Must run before the instrumented workload starts.
  void start() {
    if (log_json_ && *log_json_) util::set_log_format(util::LogFormat::kJson);
    const bool tracing = trace_out_ && !trace_out_->empty();
    const bool tapping = tap_path_ && !tap_path_->empty();
    if ((metrics_out_ && !metrics_out_->empty()) || (progress_ && *progress_) ||
        tracing || tapping)
      session_ = std::make_unique<util::TelemetrySession>();
    if (tracing) {
      recorder_ = std::make_unique<util::TraceRecorder>();
      util::TraceRecorder::set_global(recorder_.get());
    }
    if (tapping)
      tap_ = std::make_unique<util::TelemetryTap>(*tap_path_, *tap_interval_);
  }

  bool active() const { return session_ != nullptr; }

  /// Live {"metrics": ..., "spans": ...} fragment for embedding into a
  /// bench_timings.json record; empty when telemetry is off.
  std::string record_fragment() const {
    return session_ ? session_->report().to_json_fragment() : std::string();
  }

  /// Emits the requested outputs (summary table, JSON file, trace export,
  /// final tap snapshot).
  void finish() {
    if (!session_) return;
    tap_.reset();  // publishes the terminal snapshot
    const util::TelemetryReport report = session_->report();
    if (*progress_) report.render_summary(std::cout);
    if (!metrics_out_->empty()) {
      report.write_json_file(*metrics_out_);
      std::cout << "telemetry written to " << *metrics_out_ << "\n";
    }
    if (recorder_ != nullptr) {
      recorder_->write_chrome_trace(*trace_out_);
      const util::TraceRecorder::Summary s = recorder_->summary();
      std::cout << "trace written to " << *trace_out_ << " (" << s.retained
                << " events retained, " << s.dropped << " dropped, "
                << s.threads << " threads)\n";
      util::TraceRecorder::set_global(nullptr);
      recorder_.reset();
    }
  }

 private:
  std::shared_ptr<std::string> metrics_out_;
  std::shared_ptr<bool> progress_;
  std::shared_ptr<bool> log_json_;
  std::shared_ptr<std::string> trace_out_;
  std::shared_ptr<std::string> tap_path_;
  std::shared_ptr<double> tap_interval_;
  std::unique_ptr<util::TelemetrySession> session_;
  std::unique_ptr<util::TraceRecorder> recorder_;
  std::unique_ptr<util::TelemetryTap> tap_;
};

/// The driver's telemetry instance (one per process).
inline BenchTelemetry& telemetry() {
  static BenchTelemetry instance;
  return instance;
}

/// Crash-safety for a bench driver: the --checkpoint-dir/--resume flags
/// (docs/ROBUSTNESS.md).  parse_bench_flags() registers the flags and
/// installs the SIGINT/SIGTERM cooperative-stop handlers; each driver
/// applies the flags to its SweepOptions via apply().
class BenchRobustness {
 public:
  void add_flags(util::Cli& cli) {
    dir_ = cli.add_string(
        "checkpoint-dir", "",
        "directory for durable per-point results and in-flight checkpoints "
        "(empty = no persistence)");
    resume_ = cli.add_flag(
        "resume",
        "resume from --checkpoint-dir: completed points are restored "
        "bit-for-bit, in-flight points continue from their checkpoint");
  }

  /// Wires the sweep to the process stop flag and, when --checkpoint-dir
  /// was given, to a per-bench checkpoint subdirectory.
  void apply(ahs::SweepOptions& opts, const std::string& bench_name) const {
    opts.stop = &util::stop_flag();
    if (dir_ && !dir_->empty()) {
      opts.checkpoint_dir = *dir_ + "/" + bench_name;
      opts.resume = resume_ && *resume_;
    }
  }

 private:
  std::shared_ptr<std::string> dir_;
  std::shared_ptr<bool> resume_;
};

/// The driver's robustness flags (one per process).
inline BenchRobustness& robustness() {
  static BenchRobustness instance;
  return instance;
}

/// Throughput-floor assertion for benches that merge a record into
/// BENCH_PERF.json (currently bench_fig12; bench_executor carries its own
/// copy of the same flags).  parse_bench_flags() registers
/// --assert-floor/--floor-tolerance; a driver reads the committed baseline
/// with read() *before* merging its fresh record — the flag usually points
/// at the merge target — and gates its exit status on check().
class BenchFloor {
 public:
  void add_flags(util::Cli& cli) {
    path_ = cli.add_string(
        "assert-floor", "",
        "exit 1 unless this run's throughput is at least "
        "(1 - floor-tolerance) x this bench's record in the given "
        "BENCH_PERF.json (benches that record one; absent baselines pass)");
    tolerance_ = cli.add_double(
        "floor-tolerance", 0.25,
        "allowed fractional throughput regression against the "
        "--assert-floor baseline");
  }

  bool enabled() const { return path_ && !path_->empty(); }

  /// The committed floor for `field` of `bench_name`'s record (plain string
  /// scan of the single-line format merge_record_into writes).  Returns 0
  /// when the flag is off or the file/record/field is absent — an absent
  /// baseline never fails the assertion, so the first run on a fresh
  /// checkout records rather than rejects.
  double read(const std::string& bench_name, const std::string& field) const {
    if (!enabled()) return 0.0;
    std::ifstream in(*path_);
    std::string line;
    const std::string tag = "{\"bench\": \"" + bench_name + "\"";
    const std::string key = "\"" + field + "\": ";
    while (std::getline(in, line)) {
      if (line.rfind(tag, 0) != 0) continue;
      const auto pos = line.find(key);
      if (pos == std::string::npos) return 0.0;
      return std::atof(line.c_str() + pos + key.size());
    }
    return 0.0;
  }

  /// Prints the PASS/FAIL verdict for `measured` against `floor` (from
  /// read()); false means the driver should exit non-zero.  No-op (true)
  /// when the flag is off.
  bool check(const std::string& bench_name, const std::string& unit,
             double floor, double measured) const {
    if (!enabled()) return true;
    if (floor <= 0.0) {
      std::cout << "perf floor: no " << bench_name << " baseline in "
                << *path_ << " — recorded, nothing to assert\n";
      return true;
    }
    const double bar = floor * (1.0 - *tolerance_);
    const bool ok = measured >= bar;
    std::cout << "perf floor (vs " << *path_ << "): baseline "
              << util::format_sci(floor, 4) << " " << unit << ", bar "
              << util::format_sci(bar, 4) << " " << unit << ", measured "
              << util::format_sci(measured, 4) << " " << unit << ": "
              << (ok ? "PASS" : "FAIL") << "\n";
    if (!ok)
      std::cerr << "perf floor FAILED — " << bench_name
                << " regressed more than "
                << util::format_fixed(100.0 * *tolerance_, 0)
                << " % below the committed baseline\n";
    return ok;
  }

 private:
  std::shared_ptr<std::string> path_;
  std::shared_ptr<double> tolerance_;
};

/// The driver's floor flags (one per process).
inline BenchFloor& floor_check() {
  static BenchFloor instance;
  return instance;
}

/// Call after run_sweep: when the sweep was interrupted (SIGINT/SIGTERM),
/// tells the operator how to finish the run and returns true — the driver
/// should skip its series output and exit 130 (the conventional
/// interrupted-by-signal status).
inline bool interrupted(const ahs::SweepResult& result) {
  if (!result.cancelled) return false;
  std::cout << "\ninterrupted — completed points and in-flight progress are "
               "checkpointed;\nrerun with --checkpoint-dir=<dir> --resume "
               "to finish\n";
  return true;
}

/// Driver epilogue: prints/writes the telemetry outputs if requested.
inline void finish_telemetry() { telemetry().finish(); }

inline void print_header(const std::string& figure,
                         const std::string& what,
                         const std::string& params) {
  std::cout << "==========================================================\n"
            << figure << " — " << what << "\n"
            << "(Hamouda, Kaâniche, Kanoun: \"Safety Modeling and Evaluation"
               " of Automated Highway Systems\", DSN 2009)\n"
            << params << "\n"
            << "==========================================================\n";
}

/// Formats an unsafety value the way the paper's log-scale plots read.
inline std::string fmt(double v) { return util::format_sci(v, 4); }

/// Writes a CSV (header + rows) into ./results/ for external replotting.
inline void write_csv(const std::string& name,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  std::filesystem::create_directories("results");
  const std::string path = "results/" + name;
  util::CsvWriter csv(path);
  csv.write_row(header);
  for (const auto& r : rows) csv.write_row(r);
  std::cout << "series written to " << path << "\n";
}

/// Parses the flags shared by every bench (--threads plus the telemetry
/// flags --metrics-out/--progress/--log-json) and starts the telemetry
/// session when one was requested.  Returns false when --help was requested
/// — the caller should exit 0.
inline bool parse_bench_flags(int argc, const char* const* argv,
                              const std::string& program, unsigned& threads) {
  util::Cli cli(program, "Regenerates the figure series (sweep engine).");
  const auto t = cli.add_int(
      "threads", 0, "sweep worker threads (0 = all cores, 1 = sequential)");
  telemetry().add_flags(cli);
  robustness().add_flags(cli);
  floor_check().add_flags(cli);
  try {
    if (!cli.parse(argc, argv)) return false;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
  threads = *t < 0 ? 0u : static_cast<unsigned>(*t);
  telemetry().start();
  util::install_stop_handlers();
  return true;
}

/// Short git revision of the tree this binary was launched in, resolved
/// once per process; "unknown" outside a repository or without git on
/// PATH.  Recorded in every timing/perf record so throughput numbers are
/// attributable to the code they measured.
inline const std::string& git_revision() {
  static const std::string rev = [] {
    std::string r = "unknown";
    if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
      char buf[64] = {};
      if (std::fgets(buf, sizeof buf, p) != nullptr) {
        std::string s(buf);
        while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
          s.pop_back();
        if (!s.empty()) r = s;
      }
      ::pclose(p);
    }
    return r;
  }();
  return rev;
}

/// Merges one single-line JSON record (which must start with
/// `{"bench": "<name>"`) into `path`, replacing any previous record of the
/// same bench and keeping every other bench's line.  The merge is a
/// read-modify-write cycle on a file shared by every bench binary: the
/// advisory lock serializes concurrent bench runs (so two processes can't
/// drop each other's records), and the atomic replace guarantees a reader
/// — or a crash mid-merge — never sees a truncated document.
inline void merge_record_into(const std::string& path,
                              const std::string& bench_name,
                              const std::string& record) {
  util::FileLock lock(path + ".lock");
  std::vector<std::string> records;
  {
    std::ifstream in(path);
    std::string line;
    const std::string own_tag = "{\"bench\": \"" + bench_name + "\"";
    while (std::getline(in, line)) {
      if (line.rfind("{\"bench\": ", 0) != 0) continue;  // header/footer
      if (!line.empty() && line.back() == ',') line.pop_back();
      if (line.rfind(own_tag, 0) == 0) continue;
      records.push_back(line);
    }
  }
  records.push_back(record);
  std::ostringstream out;
  out << "{\"benches\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i)
    out << records[i] << (i + 1 < records.size() ? "," : "") << "\n";
  out << "]}\n";
  util::atomic_write_file(path, out.str());
}

/// Merges one bench's record into results/bench_timings.json.  Every
/// record gains the git revision; with an active telemetry session it also
/// gains a live `telemetry` field (the registry + span snapshot at merge
/// time).
inline void merge_timing_record(const std::string& bench_name,
                                const std::string& record) {
  std::filesystem::create_directories("results");
  const std::string path = "results/bench_timings.json";
  std::string merged = record;
  if (!merged.empty() && merged.back() == '}') {
    merged.pop_back();
    merged += ", \"git_rev\": \"" + git_revision() + "\"";
    const std::string fragment = telemetry().record_fragment();
    if (!fragment.empty()) merged += ", \"telemetry\": " + fragment;
    merged += "}";
  }
  merge_record_into(path, bench_name, merged);
  std::cout << "timings merged into " << path << "\n";
}

/// Merges one bench's throughput summary into ./BENCH_PERF.json — the
/// top-level machine-readable performance document.  `fields` is a JSON
/// fragment of key/value pairs (no braces); the record automatically
/// carries the bench name and git revision.  The CI perf job asserts the
/// current run against the committed baseline (repo-root BENCH_PERF.json)
/// with bench_executor's --assert-floor flag.
inline void write_bench_perf(const std::string& bench_name,
                             const std::string& fields) {
  const std::string record = "{\"bench\": \"" + bench_name +
                             "\", \"git_rev\": \"" + git_revision() + "\", " +
                             fields + "}";
  merge_record_into("BENCH_PERF.json", bench_name, record);
  std::cout << "perf summary merged into BENCH_PERF.json\n";
}

/// Prints the per-point wall-clock summary of a sweep and merges it into
/// results/bench_timings.json — one single-line JSON record per bench, so a
/// rerun of one bench replaces only its own record.
inline void log_sweep_timings(const std::string& bench_name, unsigned threads,
                              const std::vector<ahs::SweepPoint>& points,
                              const ahs::SweepResult& result) {
  auto secs = [](double s) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", s);
    return std::string(buf);
  };

  std::uint64_t replications = 0;
  for (const ahs::UnsafetyCurve& c : result.curves)
    replications += c.replications;
  const double points_per_sec =
      result.total_seconds > 0.0
          ? static_cast<double>(points.size()) / result.total_seconds
          : 0.0;
  const double replications_per_sec =
      result.total_seconds > 0.0
          ? static_cast<double>(replications) / result.total_seconds
          : 0.0;

  std::cout << "\nsweep timing (threads="
            << (threads == 0 ? "all" : std::to_string(threads))
            << "): total " << secs(result.total_seconds) << " s, "
            << util::format_sci(points_per_sec, 3) << " points/s";
  if (replications > 0)
    std::cout << ", " << util::format_sci(replications_per_sec, 3)
              << " replications/s";
  std::cout << "\n";
  if (result.poisson_cache_hits + result.poisson_cache_misses > 0) {
    const double rate =
        static_cast<double>(result.poisson_cache_hits) /
        static_cast<double>(result.poisson_cache_hits +
                            result.poisson_cache_misses);
    std::cout << "poisson window cache: " << result.poisson_cache_hits
              << " hits / " << result.poisson_cache_misses << " misses ("
              << util::format_sci(100.0 * rate, 3) << " % hit rate)\n";
  }
  if (result.warm_start_hits + result.warm_start_misses > 0) {
    const double rate =
        static_cast<double>(result.warm_start_hits) /
        static_cast<double>(result.warm_start_hits +
                            result.warm_start_misses);
    std::cout << "warm-start cache: " << result.warm_start_hits
              << " hits / " << result.warm_start_misses << " misses ("
              << util::format_sci(100.0 * rate, 3) << " % hit rate)\n";
  }
  if (result.total_solver_iterations > 0)
    std::cout << "solver iterations (vector-matrix products): "
              << result.total_solver_iterations << " total, "
              << util::format_sci(
                     static_cast<double>(result.total_solver_iterations) /
                         static_cast<double>(points.size()),
                     3)
              << " per point\n";
  std::ostringstream record;
  record << "{\"bench\": \"" << bench_name << "\", \"threads\": " << threads
         << ", \"total_seconds\": " << secs(result.total_seconds)
         << ", \"points_per_sec\": " << util::format_sci(points_per_sec, 6)
         << ", \"replications\": " << replications
         << ", \"replications_per_sec\": "
         << util::format_sci(replications_per_sec, 6)
         << ", \"poisson_cache\": {\"hits\": " << result.poisson_cache_hits
         << ", \"misses\": " << result.poisson_cache_misses << "}"
         << ", \"warm_start\": {\"hits\": " << result.warm_start_hits
         << ", \"misses\": " << result.warm_start_misses << "}"
         << ", \"total_solver_iterations\": "
         << result.total_solver_iterations << ", \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const bool hit = result.structure_cache_hit[i];
    const ahs::PointOutcome outcome = result.outcome[i];
    std::cout << "  " << points[i].label << ": "
              << secs(result.point_seconds[i]) << " s ("
              << (hit ? "structure cache hit" : "cold build");
    if (outcome != ahs::PointOutcome::kComputed)
      std::cout << ", " << ahs::to_string(outcome);
    std::cout << ")\n";
    if (outcome == ahs::PointOutcome::kDegraded)
      std::cout << "    degraded: " << result.degraded_reason[i] << "\n";
    record << (i ? ", " : "") << "{\"label\": \"" << points[i].label
           << "\", \"seconds\": " << secs(result.point_seconds[i])
           << ", \"structure_cache_hit\": " << (hit ? "true" : "false")
           << ", \"outcome\": \"" << ahs::to_string(outcome) << "\"}";
  }
  record << "]}";
  merge_timing_record(bench_name, record.str());
}

}  // namespace bench
