// Extension bench: spatial scope of the catastrophic-situation predicate.
//
// §2.1.3 says catastrophic situations "require the occurrence of
// simultaneous failures affecting multiple adjacent vehicles in a small
// neighborhood in space and in time".  The reproduction's default (and the
// only reading the lumped model supports) counts failures anywhere in the
// two-platoon neighbourhood together; this bench quantifies the stricter
// positional reading: failures combine only within ±radius positions
// (adjacent lanes included).  Tight windows discard distant pairs, so S(t)
// drops as the radius shrinks — bounding how much the global-scope choice
// can overstate unsafety.
#include "ahs/study.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  unsigned threads = 0;  // accepted for CLI uniformity
  if (!bench::parse_bench_flags(argc, argv, "bench_adjacency", threads))
    return 0;
  (void)threads;
  using namespace ahs;
  std::cout << "==========================================================\n"
               "Extension: adjacency-scoped severity (vs the global scope\n"
               "used for the figure reproductions)\n"
               "n = 4, lambda = 1e-2/h, full-SAN simulation, 30 000 reps\n"
               "==========================================================\n";

  Parameters base;
  base.max_per_platoon = 4;
  base.base_failure_rate = 1e-2;

  const std::vector<double> times = {6.0};
  util::Table t({"severity scope", "S(6h)", "95% +-", "vs global"});
  std::vector<std::vector<std::string>> csv_rows;
  double global = 0.0;
  for (int radius : {0, 3, 2, 1}) {
    Parameters p = base;
    p.adjacency_radius = radius;
    StudyOptions so;
    so.engine = Engine::kSimulation;
    so.min_replications = 30000;
    so.max_replications = 30000;
    const auto c = unsafety_curve(p, times, so);
    if (radius == 0) global = c.unsafety[0];
    const std::string label =
        radius == 0 ? "global (reproduction default)"
                    : "+-" + std::to_string(radius) + " positions";
    std::vector<std::string> row = {
        label, bench::fmt(c.unsafety[0]), bench::fmt(c.half_width[0]),
        util::format_fixed(c.unsafety[0] / global, 3)};
    t.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << t
            << "\nreading: the global scope is an upper bound; at n = 4\n"
               "platoons the window restriction trims the unsafety by the\n"
               "printed factors.  At the paper's n = 10 the trim would be\n"
               "larger, which is one candidate explanation for the\n"
               "stronger n-dependence the paper reports (EXPERIMENTS.md).\n";
  bench::write_csv("bench_adjacency.csv",
                   {"radius", "S_6h", "ci", "vs_global"}, csv_rows);
  bench::finish_telemetry();
  return 0;
}
