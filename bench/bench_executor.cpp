// Simulation-engine microbenchmark: events/sec of the dependency-tracked
// incremental engine vs the full-rescan reference engine on the paper's AHS
// model, in scheduled mode and in embedded (importance-sampling) mode, as
// the system grows.  The incremental engine re-examines only the activities
// the dependency index marks as affected by a completion, so its advantage
// widens with n while the reference engine's per-event cost is linear in
// the activity count.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ahs/system_model.h"
#include "bench_common.h"
#include "sim/executor.h"
#include "util/rng.h"

namespace {

struct Measurement {
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  }
};

/// Runs `reps` independent replications to `t_end` and times the whole
/// batch, executor construction excluded (the dependency index is built
/// once per study, not per replication).
Measurement run_batch(const san::FlatModel& flat, sim::Executor::Engine eng,
                      const sim::BiasPlan* bias, int reps, double t_end,
                      std::uint64_t seed) {
  sim::Executor::Options opts;
  opts.engine = eng;
  opts.bias = bias;
  sim::Executor exec(flat, util::Rng(seed), opts);

  Measurement m;
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    exec.reset(util::Rng(seed + static_cast<std::uint64_t>(rep)));
    exec.run_until(t_end);
    m.events += exec.events();
  }
  m.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  return m;
}

std::string fixed(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 0;  // accepted for CLI uniformity; bench is sequential
  if (!bench::parse_bench_flags(argc, argv, "bench_executor", threads))
    return 0;

  bench::print_header(
      "Engine microbenchmark", "incremental vs full-rescan executor",
      "two platoons, busy failure rates, scheduled + embedded/IS modes");

  struct Case {
    std::string mode;
    int n;
    int reps;
    double t_end;
    double failure_rate;
    bool use_bias;
  };
  const std::vector<Case> cases = {
      {"scheduled", 2, 60, 10.0, 0.3, false},
      {"scheduled", 4, 40, 10.0, 0.3, false},
      {"scheduled", 10, 20, 10.0, 0.3, false},
      {"embedded/IS", 2, 60, 10.0, 0.05, true},
      {"embedded/IS", 4, 40, 10.0, 0.05, true},
      {"embedded/IS", 10, 20, 10.0, 0.05, true},
  };

  util::Table table({"mode", "n", "activities", "events", "full-rescan ev/s",
                     "incremental ev/s", "speedup"});
  std::ostringstream record;
  record << "{\"bench\": \"bench_executor\", \"threads\": 0, \"points\": [";

  bool first = true;
  for (const auto& c : cases) {
    ahs::Parameters p;
    p.max_per_platoon = c.n;
    p.base_failure_rate = c.failure_rate;
    const auto flat = ahs::build_system_model(p);

    sim::BiasPlan bias;
    bias.boost = 5.0;
    bias.boosted = {"L1", "L2", "L3", "L4", "L5", "L6"};
    const sim::BiasPlan* plan = c.use_bias ? &bias : nullptr;

    const auto ref = run_batch(flat, sim::Executor::Engine::kFullRescan, plan,
                               c.reps, c.t_end, 1234);
    const auto inc = run_batch(flat, sim::Executor::Engine::kIncremental,
                               plan, c.reps, c.t_end, 1234);
    if (inc.events != ref.events) {
      std::cerr << "ENGINE MISMATCH at n=" << c.n << " (" << c.mode
                << "): " << inc.events << " vs " << ref.events << " events\n";
      return 1;
    }

    const double speedup = inc.events_per_sec() / ref.events_per_sec();
    table.add_row({c.mode, std::to_string(c.n),
                   std::to_string(flat.activities().size()),
                   std::to_string(inc.events),
                   fixed(ref.events_per_sec(), 0),
                   fixed(inc.events_per_sec(), 0), fixed(speedup, 2) + "x"});

    record << (first ? "" : ", ") << "{\"label\": \"" << c.mode
           << ",n=" << c.n << "\", \"events\": " << inc.events
           << ", \"full_rescan_seconds\": " << fixed(ref.seconds, 6)
           << ", \"incremental_seconds\": " << fixed(inc.seconds, 6)
           << ", \"speedup\": " << fixed(speedup, 3) << "}";
    first = false;
  }
  record << "]}";

  std::cout << table << "\n(identical event counts across engines are "
                        "asserted per case; trajectories are bitwise-checked "
                        "by tests/test_engine_conformance.cpp)\n\n";
  bench::merge_timing_record("bench_executor", record.str());
  return 0;
}
