// Simulation-engine microbenchmark: events/sec of the dependency-tracked
// incremental engine vs the full-rescan reference engine on the paper's AHS
// model, in scheduled mode and in embedded (importance-sampling) mode, as
// the system grows.  The incremental engine re-examines only the activities
// the dependency index marks as affected by a completion, so its advantage
// widens with n while the reference engine's per-event cost is linear in
// the activity count.
//
// This bench also enforces the telemetry overhead guard: with no metrics
// registry attached every instrumentation site in the executor is a single
// predictable branch, and the detached incremental events/sec must stay
// within --overhead-tolerance (default 2%) of the baseline recorded in
// results/bench_timings.json.  The timing loops always run detached (the
// process-wide registry is unhooked around them), so `--metrics-out` does
// not perturb the measurement; the telemetry JSON instead comes from a
// separate instrumented smoke workload that exercises the executor, the
// uniformization solver, and the sweep structure cache.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ahs/sweep.h"
#include "ahs/system_model.h"
#include "bench_common.h"
#include "sim/executor.h"
#include "sim/transient.h"
#include "util/rng.h"
#include "util/trace.h"

namespace {

struct Measurement {
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
  }
};

/// Runs `reps` independent replications to `t_end` and times the whole
/// batch, executor construction excluded (the dependency index is built
/// once per study, not per replication).
Measurement run_batch(const san::FlatModel& flat, sim::Executor::Engine eng,
                      const sim::BiasPlan* bias, int reps, double t_end,
                      std::uint64_t seed) {
  sim::Executor::Options opts;
  opts.engine = eng;
  opts.bias = bias;
  sim::Executor exec(flat, util::Rng(seed), opts);

  Measurement m;
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    exec.reset(util::Rng(seed + static_cast<std::uint64_t>(rep)));
    exec.run_until(t_end);
    m.events += exec.events();
  }
  m.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  return m;
}

std::string fixed(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

/// Detaches the process-wide telemetry — metrics registry, span tree, AND
/// the flight recorder — for its lifetime, so the timing loops measure the
/// instrumented-but-unattached fast path even when the bench itself was
/// started with --metrics-out/--progress/--trace-out.  The 2% overhead
/// guard therefore asserts the tracing-detached path too.
class DetachTelemetry {
 public:
  DetachTelemetry()
      : registry_(util::MetricsRegistry::global()),
        spans_(util::SpanTree::global()),
        trace_(util::TraceRecorder::global()) {
    util::MetricsRegistry::set_global(nullptr);
    util::SpanTree::set_global(nullptr);
    util::TraceRecorder::set_global(nullptr);
  }
  ~DetachTelemetry() {
    util::MetricsRegistry::set_global(registry_);
    util::SpanTree::set_global(spans_);
    util::TraceRecorder::set_global(trace_);
  }

 private:
  util::MetricsRegistry* registry_;
  util::SpanTree* spans_;
  util::TraceRecorder* trace_;
};

/// Pulls this label's guard bar out of results/bench_timings.json by plain
/// string scanning (the records are single-line JSON with a fixed field
/// order).  The bar is the *original* (pre-instrumentation) measurement: a
/// record that already carries an `overhead_guard` propagates its
/// `baseline_events_per_sec` unchanged, so rewriting the record with each
/// run's timings never ratchets the bar up to the fastest run ever seen.
/// Records from before the guard existed seed the bar from their
/// events/incremental_seconds.  Returns 0 when no baseline exists.
double baseline_events_per_sec(const std::string& label) {
  std::ifstream in("results/bench_timings.json");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("{\"bench\": \"bench_executor\"", 0) != 0) continue;
    const auto at = line.find("\"label\": \"" + label + "\"");
    if (at == std::string::npos) return 0.0;
    const auto grab = [&](const std::string& key) {
      const auto pos = line.find("\"" + key + "\": ", at);
      if (pos == std::string::npos) return 0.0;
      return std::atof(line.c_str() + pos + key.size() + 4);
    };
    // The guard fields of the *next* label (if any) must not shadow a
    // missing one here; all of this label's fields precede it, so a found
    // position past the next label means "absent".
    const auto next = line.find("\"label\": ", at + 1);
    const auto bar_pos = line.find("\"baseline_events_per_sec\": ", at);
    if (bar_pos != std::string::npos &&
        (next == std::string::npos || bar_pos < next)) {
      const double bar = std::atof(line.c_str() + bar_pos +
                                   sizeof("\"baseline_events_per_sec\": ") - 1);
      if (bar > 0.0) return bar;
    }
    const double events = grab("events");
    const double seconds = grab("incremental_seconds");
    return seconds > 0.0 ? events / seconds : 0.0;
  }
  return 0.0;
}

/// Pulls the committed bench_executor events_per_sec floor out of a
/// BENCH_PERF.json document (plain string scan, same single-line record
/// format merge_record_into writes).  Returns 0 when the file or the
/// record is absent — an absent baseline never fails the floor assertion,
/// so the first run on a fresh checkout records rather than rejects.
double perf_floor_events_per_sec(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("{\"bench\": \"bench_executor\"", 0) != 0) continue;
    const auto pos = line.find("\"events_per_sec\": ");
    if (pos == std::string::npos) return 0.0;
    return std::atof(line.c_str() + pos + sizeof("\"events_per_sec\": ") - 1);
  }
  return 0.0;
}

/// Instrumented smoke workload for --metrics-out/--progress: a small lumped
/// sweep (twice, so the structure cache reports both misses and hits), and a
/// short importance-sampling estimation (executor counters, IS health
/// gauges).  Runs only when a telemetry session is attached.
void telemetry_smoke() {
  ahs::Parameters base;
  base.max_per_platoon = 4;

  ahs::GridAxis axis;
  axis.name = "lambda";
  axis.values = {1e-5, 2e-5};
  axis.set = [](ahs::Parameters& p, double v) { p.base_failure_rate = v; };
  const auto points = ahs::make_grid(base, axis);

  ahs::SweepOptions sweep_opts;
  sweep_opts.study.engine = ahs::Engine::kLumpedCtmc;
  sweep_opts.threads = 2;
  const std::vector<double> times = {2, 4};
  // Both points share a structural fingerprint (only a rate differs), so
  // one sweep reports a cache miss (cold build) and a hit (follower).
  ahs::run_sweep(points, times, sweep_opts);

  ahs::StudyOptions study;
  study.engine = ahs::Engine::kSimulationIS;
  study.min_replications = 200;
  study.max_replications = 200;
  ahs::unsafety_curve(base, times, study);
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 0;  // accepted for CLI uniformity; bench is sequential
  util::Cli cli("bench_executor",
                "Engine microbenchmark with telemetry overhead guard.");
  const auto t = cli.add_int("threads", 0, "accepted for CLI uniformity");
  const auto tolerance = cli.add_double(
      "overhead-tolerance", 0.02,
      "allowed fractional slowdown of detached incremental ev/s vs the "
      "recorded baseline");
  const auto no_guard = cli.add_flag(
      "no-overhead-guard",
      "measure and record, but do not fail on a guard violation (for runs "
      "on hardware other than the baseline's)");
  const auto floor_path = cli.add_string(
      "assert-floor", "",
      "fail if aggregate incremental events/sec drops below "
      "(1 - floor-tolerance) x the bench_executor record in this "
      "BENCH_PERF.json (empty = no assertion)");
  const auto floor_tolerance = cli.add_double(
      "floor-tolerance", 0.25,
      "allowed fractional regression of aggregate events/sec vs the "
      "--assert-floor baseline");
  bench::telemetry().add_flags(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  threads = static_cast<unsigned>(*t > 0 ? *t : 0);
  (void)threads;
  bench::telemetry().start();

  bench::print_header(
      "Engine microbenchmark", "incremental vs full-rescan executor",
      "two platoons, busy failure rates, scheduled + embedded/IS modes");

  struct Case {
    std::string mode;
    int n;
    int reps;
    double t_end;
    double failure_rate;
    bool use_bias;
  };
  const std::vector<Case> cases = {
      {"scheduled", 2, 60, 10.0, 0.3, false},
      {"scheduled", 4, 40, 10.0, 0.3, false},
      {"scheduled", 10, 20, 10.0, 0.3, false},
      {"embedded/IS", 2, 60, 10.0, 0.05, true},
      {"embedded/IS", 4, 40, 10.0, 0.05, true},
      {"embedded/IS", 10, 20, 10.0, 0.05, true},
  };
  constexpr int kGuardTrials = 5;  // best-of, to shed scheduler noise

  util::Table table({"mode", "n", "activities", "events", "full-rescan ev/s",
                     "incremental ev/s", "speedup", "vs baseline"});
  std::ostringstream record;
  record << "{\"bench\": \"bench_executor\", \"threads\": 0, \"points\": [";

  bool first = true;
  bool guard_ok = true;
  std::uint64_t agg_events = 0;
  double agg_seconds = 0.0;
  for (const auto& c : cases) {
    ahs::Parameters p;
    p.max_per_platoon = c.n;
    p.base_failure_rate = c.failure_rate;
    const auto flat = ahs::build_system_model(p);

    sim::BiasPlan bias;
    bias.boost = 5.0;
    bias.boosted = {"L1", "L2", "L3", "L4", "L5", "L6"};
    const sim::BiasPlan* plan = c.use_bias ? &bias : nullptr;

    Measurement ref, inc;
    {
      const DetachTelemetry detached;
      ref = run_batch(flat, sim::Executor::Engine::kFullRescan, plan, c.reps,
                      c.t_end, 1234);
      inc = run_batch(flat, sim::Executor::Engine::kIncremental, plan,
                      c.reps, c.t_end, 1234);
      // Overhead guard: keep the best of a few more detached trials.
      for (int trial = 1; trial < kGuardTrials; ++trial) {
        const auto again = run_batch(flat, sim::Executor::Engine::kIncremental,
                                     plan, c.reps, c.t_end, 1234);
        if (again.seconds < inc.seconds) inc = again;
      }
    }
    if (inc.events != ref.events) {
      std::cerr << "ENGINE MISMATCH at n=" << c.n << " (" << c.mode
                << "): " << inc.events << " vs " << ref.events << " events\n";
      return 1;
    }

    const std::string label = c.mode + ",n=" + std::to_string(c.n);
    const double baseline = baseline_events_per_sec(label);
    const double ratio =
        baseline > 0.0 ? inc.events_per_sec() / baseline : 0.0;
    const bool pass = baseline <= 0.0 || ratio >= 1.0 - *tolerance;
    if (!pass) guard_ok = false;

    const double speedup = inc.events_per_sec() / ref.events_per_sec();
    table.add_row({c.mode, std::to_string(c.n),
                   std::to_string(flat.activities().size()),
                   std::to_string(inc.events),
                   fixed(ref.events_per_sec(), 0),
                   fixed(inc.events_per_sec(), 0), fixed(speedup, 2) + "x",
                   baseline > 0.0
                       ? fixed(100.0 * ratio, 1) + "%" + (pass ? "" : " FAIL")
                       : "n/a"});

    agg_events += inc.events;
    agg_seconds += inc.seconds;
    record << (first ? "" : ", ") << "{\"label\": \"" << label
           << "\", \"events\": " << inc.events
           << ", \"full_rescan_seconds\": " << fixed(ref.seconds, 6)
           << ", \"incremental_seconds\": " << fixed(inc.seconds, 6)
           << ", \"events_per_sec\": " << fixed(inc.events_per_sec(), 0)
           << ", \"speedup\": " << fixed(speedup, 3)
           << ", \"overhead_guard\": {\"baseline_events_per_sec\": "
           << fixed(baseline, 0)
           << ", \"detached_events_per_sec\": " << fixed(inc.events_per_sec(), 0)
           << ", \"pass\": " << (pass ? "true" : "false") << "}}";
    first = false;
  }

  // Tracing-enabled bound (documented in docs/OBSERVABILITY.md): the same
  // incremental workload with a flight recorder attached, plus the raw
  // recorder emit rate.  Measured and recorded, never a failure gate — the
  // enforced guard covers the tracing-*detached* path above.
  Measurement trace_plain, trace_on;
  double emit_per_sec = 0.0;
  {
    ahs::Parameters p;
    p.max_per_platoon = 10;
    p.base_failure_rate = 0.3;
    const auto flat = ahs::build_system_model(p);
    const DetachTelemetry detached;
    trace_plain = run_batch(flat, sim::Executor::Engine::kIncremental, nullptr,
                            20, 10.0, 1234);
    util::TraceRecorder recorder;
    util::TraceRecorder::set_global(&recorder);
    trace_on = run_batch(flat, sim::Executor::Engine::kIncremental, nullptr,
                         20, 10.0, 1234);
    for (int trial = 1; trial < kGuardTrials; ++trial) {
      const auto again = run_batch(flat, sim::Executor::Engine::kIncremental,
                                   nullptr, 20, 10.0, 1234);
      if (again.seconds < trace_on.seconds) trace_on = again;
    }
    // Raw emit throughput: how many begin/end pairs the recorder absorbs
    // per second on one thread.
    const util::TraceName span = recorder.name("bench.emit");
    constexpr std::uint64_t kEmits = 1u << 20;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kEmits; ++i) {
      span.begin(i);
      span.end();
    }
    const double emit_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    emit_per_sec =
        emit_seconds > 0.0 ? 2.0 * static_cast<double>(kEmits) / emit_seconds
                           : 0.0;
    util::TraceRecorder::set_global(nullptr);
  }
  const double trace_ratio =
      trace_plain.events_per_sec() > 0.0
          ? trace_on.events_per_sec() / trace_plain.events_per_sec()
          : 0.0;
  record << "], \"tracing\": {\"detached_events_per_sec\": "
         << fixed(trace_plain.events_per_sec(), 0)
         << ", \"attached_events_per_sec\": "
         << fixed(trace_on.events_per_sec(), 0)
         << ", \"ratio\": " << fixed(trace_ratio, 3)
         << ", \"recorder_emits_per_sec\": " << fixed(emit_per_sec, 0) << "}";
  record << "}";

  std::cout << table << "\n(identical event counts across engines are "
                        "asserted per case; trajectories are bitwise-checked "
                        "by tests/test_engine_conformance.cpp)\n";
  std::cout << "overhead guard (detached ev/s >= "
            << fixed(100.0 * (1.0 - *tolerance), 1)
            << "% of recorded baseline): "
            << (guard_ok ? "PASS" : "FAIL") << "\n";
  std::cout << "tracing-enabled bound (recorder attached, scheduled n=10): "
            << fixed(trace_on.events_per_sec(), 0) << " ev/s ("
            << fixed(100.0 * trace_ratio, 1) << "% of detached), raw emit "
            << fixed(emit_per_sec / 1e6, 1) << " M events/s\n\n";

  if (bench::telemetry().active()) telemetry_smoke();

  bench::merge_timing_record("bench_executor", record.str());

  // Aggregate incremental throughput across every case — the single number
  // the CI perf floor tracks.  The floor baseline is read *before* this
  // run's record is merged, so pointing --assert-floor at the merge target
  // still asserts against the committed value, not the fresh one.
  const double agg_eps =
      agg_seconds > 0.0 ? static_cast<double>(agg_events) / agg_seconds : 0.0;
  const double floor =
      floor_path->empty() ? 0.0 : perf_floor_events_per_sec(*floor_path);
  std::cout << "aggregate incremental throughput: " << fixed(agg_eps, 0)
            << " events/s over " << agg_events << " events\n";
  {
    std::ostringstream fields;
    fields << "\"events\": " << agg_events
           << ", \"seconds\": " << fixed(agg_seconds, 6)
           << ", \"events_per_sec\": " << fixed(agg_eps, 0);
    bench::write_bench_perf("bench_executor", fields.str());
  }

  bench::finish_telemetry();

  bool floor_ok = true;
  if (!floor_path->empty()) {
    if (floor > 0.0) {
      const double bar = floor * (1.0 - *floor_tolerance);
      floor_ok = agg_eps >= bar;
      std::cout << "perf floor (vs " << *floor_path
                << "): baseline " << fixed(floor, 0) << " ev/s, bar "
                << fixed(bar, 0) << " ev/s, measured " << fixed(agg_eps, 0)
                << " ev/s: " << (floor_ok ? "PASS" : "FAIL") << "\n";
    } else {
      std::cout << "perf floor: no bench_executor baseline in " << *floor_path
                << " — skipping assertion\n";
    }
  }

  if (!guard_ok && !*no_guard) {
    std::cerr << "telemetry overhead guard FAILED — detached instrumentation "
                 "cost exceeds tolerance (rerun with --no-overhead-guard on "
                 "non-baseline hardware)\n";
    return 1;
  }
  if (!floor_ok) {
    std::cerr << "perf floor FAILED — aggregate events/sec regressed more "
                 "than " << fixed(100.0 * *floor_tolerance, 0)
              << "% vs the committed BENCH_PERF.json baseline\n";
    return 1;
  }
  return 0;
}
