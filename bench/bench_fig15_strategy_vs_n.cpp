// Figure 15: S(t = 6 h) versus the maximum platoon size n for the four
// coordination strategies, λ = 1e-5/h.
//
// Paper shape to reproduce: the strategy ordering of Fig 14 persists across
// n, and the strategy impact stays low even for larger platoons.
#include "ahs/lumped.h"
#include "bench_common.h"

int main() {
  ahs::Parameters base;
  base.base_failure_rate = 1e-5;
  base.join_rate = 12.0;
  base.leave_rate = 4.0;

  bench::print_header("Figure 15",
                      "unsafety S(6h) vs platoon size per strategy",
                      "t = 6 h, lambda = 1e-5/h, join = 12/h, leave = 4/h");

  const std::vector<int> sizes = {6, 10, 14};
  const std::vector<double> t6 = {6.0};

  util::Table table({"n", "DD", "DC", "CD", "CC", "CC/DD"});
  std::vector<std::vector<std::string>> csv_rows;
  bool ordering_holds = true;
  for (int n : sizes) {
    std::vector<double> s;
    for (ahs::Strategy st : ahs::kAllStrategies) {
      ahs::Parameters p = base;
      p.max_per_platoon = n;
      p.strategy = st;
      s.push_back(ahs::LumpedModel(p).unsafety(t6)[0]);
    }
    ordering_holds &= (s[0] < s[1] && s[1] < s[3] && s[0] < s[2] && s[2] < s[3]);
    std::vector<std::string> row = {std::to_string(n)};
    for (double v : s) row.push_back(bench::fmt(v));
    row.push_back(util::format_fixed(s[3] / s[0], 3));
    table.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << table;
  std::cout << "\nshape checks:\n"
            << "  DD is safest and CC least safe at every n ? "
            << (ordering_holds ? "yes" : "NO — check") << "\n"
            << "  CC/DD stays close to 1 (paper: strategy impact low even"
               " for higher n)\n";

  bench::write_csv("bench_fig15.csv",
                   {"n", "DD", "DC", "CD", "CC", "CC_over_DD"}, csv_rows);
  return 0;
}
