// Figure 15: S(t = 6 h) versus the maximum platoon size n for the four
// coordination strategies, λ = 1e-5/h.
//
// Paper shape to reproduce: the strategy ordering of Fig 14 persists across
// n, and the strategy impact stays low even for larger platoons.
//
// 12 points (3 sizes × 4 strategies), each a distinct structure — a pure
// concurrency sweep.
#include "ahs/sweep.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  unsigned threads = 0;
  if (!bench::parse_bench_flags(argc, argv, "bench_fig15", threads)) return 0;

  ahs::Parameters base;
  base.base_failure_rate = 1e-5;
  base.join_rate = 12.0;
  base.leave_rate = 4.0;

  bench::print_header("Figure 15",
                      "unsafety S(6h) vs platoon size per strategy",
                      "t = 6 h, lambda = 1e-5/h, join = 12/h, leave = 4/h");

  const std::vector<int> sizes = {6, 10, 14};
  const std::vector<double> t6 = {6.0};

  std::vector<ahs::SweepPoint> points;
  for (int n : sizes) {
    for (ahs::Strategy st : ahs::kAllStrategies) {
      ahs::SweepPoint pt{"n=" + std::to_string(n) + ",strategy=" +
                             ahs::to_string(st),
                         base};
      pt.params.max_per_platoon = n;
      pt.params.strategy = st;
      points.push_back(std::move(pt));
    }
  }

  ahs::SweepOptions opts;
  opts.threads = threads;
  bench::robustness().apply(opts, "bench_fig15");
  const ahs::SweepResult sweep = ahs::run_sweep(points, t6, opts);
  if (bench::interrupted(sweep)) return 130;

  const std::size_t num_strategies = ahs::kAllStrategies.size();
  util::Table table({"n", "DD", "DC", "CD", "CC", "CC/DD"});
  std::vector<std::vector<std::string>> csv_rows;
  bool ordering_holds = true;
  for (std::size_t ni = 0; ni < sizes.size(); ++ni) {
    std::vector<double> s;
    for (std::size_t si = 0; si < num_strategies; ++si)
      s.push_back(sweep.curves[ni * num_strategies + si].unsafety[0]);
    ordering_holds &=
        (s[0] < s[1] && s[1] < s[3] && s[0] < s[2] && s[2] < s[3]);
    std::vector<std::string> row = {std::to_string(sizes[ni])};
    for (double v : s) row.push_back(bench::fmt(v));
    row.push_back(util::format_fixed(s[3] / s[0], 3));
    table.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << table;
  std::cout << "\nshape checks:\n"
            << "  DD is safest and CC least safe at every n ? "
            << (ordering_holds ? "yes" : "NO — check") << "\n"
            << "  CC/DD stays close to 1 (paper: strategy impact low even"
               " for higher n)\n";

  bench::write_csv("bench_fig15.csv",
                   {"n", "DD", "DC", "CD", "CC", "CC_over_DD"}, csv_rows);
  bench::log_sweep_timings("bench_fig15", threads, points, sweep);
  bench::finish_telemetry();
  return 0;
}
