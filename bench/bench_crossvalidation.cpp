// Cross-validation harness — the paper's §4.1 estimation protocol applied
// to this reproduction's engines:
//
//  (1) full-SAN terminating simulation (plain Monte Carlo) vs the lumped
//      CTMC at an elevated failure rate where MC converges;
//  (2) full-SAN simulation with failure-biasing importance sampling vs the
//      lumped CTMC one decade lower;
//  (3) the exact CTMC of the full SAN model (small configuration) vs the
//      lumped CTMC, quantifying the lumping approximation directly.
#include <iostream>

#include "ahs/lumped.h"
#include "ahs/study.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  unsigned threads = 0;  // accepted for CLI uniformity
  if (!bench::parse_bench_flags(argc, argv, "bench_crossvalidation", threads))
    return 0;
  (void)threads;
  using namespace ahs;
  std::cout << "==========================================================\n"
               "Cross-validation: simulation vs lumped CTMC vs exact CTMC\n"
               "==========================================================\n";
  const std::vector<double> times = {2, 6};

  // (1) Plain MC at lambda = 1e-2, n = 2.
  {
    Parameters p;
    p.max_per_platoon = 2;
    p.base_failure_rate = 1e-2;
    LumpedModel lumped(p);
    const auto lu = lumped.unsafety(times);
    StudyOptions so;
    so.engine = Engine::kSimulation;
    so.min_replications = 20000;
    so.max_replications = 20000;
    const auto sim = unsafety_curve(p, times, so);
    util::Table t({"t (h)", "lumped CTMC", "simulation", "95% +-", "ratio"});
    for (std::size_t i = 0; i < times.size(); ++i)
      t.add_row({util::format_fixed(times[i]), bench::fmt(lu[i]),
                 bench::fmt(sim.unsafety[i]), bench::fmt(sim.half_width[i]),
                 util::format_fixed(sim.unsafety[i] / lu[i], 3)});
    std::cout << "\n(1) plain Monte Carlo, lambda = 1e-2/h, n = 2, "
              << sim.replications << " replications\n"
              << t;
  }

  // (2) Importance sampling at lambda = 1e-3, n = 2.
  {
    Parameters p;
    p.max_per_platoon = 2;
    p.base_failure_rate = 1e-3;
    LumpedModel lumped(p);
    const auto lu = lumped.unsafety(times);
    StudyOptions so;
    so.engine = Engine::kSimulationIS;
    so.min_replications = 40000;
    so.max_replications = 40000;
    so.failure_boost = 20.0;
    so.fail_case_bias = 0.2;
    const auto sim = unsafety_curve(p, times, so);
    util::Table t({"t (h)", "lumped CTMC", "IS simulation", "95% +-",
                   "ratio"});
    for (std::size_t i = 0; i < times.size(); ++i)
      t.add_row({util::format_fixed(times[i]), bench::fmt(lu[i]),
                 bench::fmt(sim.unsafety[i]), bench::fmt(sim.half_width[i]),
                 util::format_fixed(sim.unsafety[i] / lu[i], 3)});
    std::cout << "\n(2) failure-biasing importance sampling, lambda = 1e-3/h,"
              << " n = 2, boost = 20, " << sim.replications
              << " replications\n"
              << t;
  }

  // (3) Exact CTMC of the full SAN (n = 1, two failure modes) vs lumped.
  {
    Parameters p;
    p.max_per_platoon = 1;
    p.base_failure_rate = 1e-3;
    p.failure_mode_enabled = {false, false, true, false, false, true};
    StudyOptions so;
    so.engine = Engine::kFullCtmc;
    const auto exact = unsafety_curve(p, times, so);
    LumpedModel lumped(p);
    const auto lu = lumped.unsafety(times);
    util::Table t({"t (h)", "exact full-SAN CTMC", "lumped CTMC", "ratio"});
    for (std::size_t i = 0; i < times.size(); ++i)
      t.add_row({util::format_fixed(times[i]), bench::fmt(exact.unsafety[i]),
                 bench::fmt(lu[i]),
                 util::format_fixed(lu[i] / exact.unsafety[i], 3)});
    std::cout << "\n(3) exact CTMC of the full SAN model (n = 1, failure"
                 " modes FM3+FM6 only) vs lumped CTMC\n"
              << t;
  }

  std::cout
      << "\nreading the ratios: the lumped model ignores per-vehicle\n"
         "multi-failure merging and positional detail, an O((lambda *\n"
         "horizon)^2) relative bias — visible (~25%) at the stress rate\n"
         "1e-2/h of panel (1), shrinking to <10% at 1e-3/h (panels 2-3),\n"
         "and negligible at the paper's 1e-6..1e-4/h (see EXPERIMENTS.md).\n";
  bench::finish_telemetry();
  return 0;
}
