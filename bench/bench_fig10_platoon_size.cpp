// Figure 10: S(t) versus trip duration for different maximum platoon sizes
// n, at λ = 1e-5/h, join rate 12/h, leave rate 4/h.
//
// Paper shape to reproduce: S(t) grows with trip duration (the paper calls
// the 2 h → 10 h growth "one order of magnitude") and grows significantly
// with n; safety is considered acceptable for n below ~10.
//
// Each n is its own state space (different fingerprint), so the sweep wins
// here purely by running the three solves concurrently.
#include "ahs/sweep.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  unsigned threads = 0;
  if (!bench::parse_bench_flags(argc, argv, "bench_fig10", threads)) return 0;

  ahs::Parameters base;
  base.base_failure_rate = 1e-5;
  base.join_rate = 12.0;
  base.leave_rate = 4.0;

  bench::print_header(
      "Figure 10", "unsafety S(t) vs trip duration for n = 8, 10, 12",
      "lambda = 1e-5/h, join = 12/h, leave = 4/h, strategy DD");

  const std::vector<double> times = ahs::trip_duration_grid();
  const ahs::GridAxis size{
      "n",
      {8, 10, 12},
      [](ahs::Parameters& p, double v) {
        p.max_per_platoon = static_cast<int>(v);
      }};
  const std::vector<ahs::SweepPoint> points = ahs::make_grid(base, size);

  ahs::SweepOptions opts;
  opts.threads = threads;
  bench::robustness().apply(opts, "bench_fig10");
  const ahs::SweepResult sweep = ahs::run_sweep(points, times, opts);
  if (bench::interrupted(sweep)) return 130;

  util::Table table({"t (h)", "S(t) n=8", "S(t) n=10", "S(t) n=12"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t i = 0; i < times.size(); ++i) {
    std::vector<std::string> row = {util::format_fixed(times[i])};
    for (const auto& curve : sweep.curves)
      row.push_back(bench::fmt(curve.unsafety[i]));
    table.add_row(row);
    csv_rows.push_back(row);
  }
  std::cout << table;

  std::cout << "\nshape checks:\n";
  const std::vector<int> sizes = {8, 10, 12};
  for (std::size_t s = 0; s < sizes.size(); ++s)
    std::cout << "  n=" << sizes[s] << ": S(10h)/S(2h) = "
              << util::format_fixed(sweep.curves[s].unsafety.back() /
                                        sweep.curves[s].unsafety.front(),
                                    2)
              << " (paper: about one order of magnitude)\n";
  std::cout << "  S(10h) n=12 / n=8 = "
            << util::format_fixed(sweep.curves[2].unsafety.back() /
                                      sweep.curves[0].unsafety.back(),
                                  2)
            << " (paper: about one order of magnitude; see EXPERIMENTS.md"
               " on the weaker coupling in this reproduction)\n";

  bench::write_csv("bench_fig10.csv",
                   {"t_hours", "S_n8", "S_n10", "S_n12"}, csv_rows);
  bench::log_sweep_timings("bench_fig10", threads, points, sweep);
  bench::finish_telemetry();
  return 0;
}
