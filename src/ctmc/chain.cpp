#include "ctmc/chain.h"

#include <cmath>

#include "util/error.h"

namespace ctmc {

double MarkovChain::max_exit_rate() const {
  double m = 0.0;
  for (double r : exit_rate) m = std::max(m, r);
  return m;
}

void MarkovChain::validate() const {
  if (rates.rows() != num_states || rates.cols() != num_states)
    throw util::ModelError("rate matrix dimensions disagree with num_states");
  if (exit_rate.size() != num_states)
    throw util::ModelError("exit_rate size disagrees with num_states");
  if (initial.size() != num_states)
    throw util::ModelError("initial distribution size disagrees");
  double total = 0.0;
  for (double p : initial) {
    if (p < 0.0) throw util::ModelError("negative initial probability");
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-9)
    throw util::ModelError("initial distribution sums to " +
                           std::to_string(total));
  for (std::uint32_t s = 0; s < num_states; ++s) {
    const auto vals = rates.row_values(s);
    double sum = 0.0;
    for (double v : vals) {
      if (v < 0.0) throw util::ModelError("negative transition rate");
      sum += v;
    }
    if (std::abs(sum - exit_rate[s]) > 1e-9 * std::max(1.0, sum))
      throw util::ModelError("exit_rate inconsistent with rate rows");
  }
}

}  // namespace ctmc
