// State-space generation: all-exponential SAN → finite CTMC.
//
// Breadth-first exploration over tangible markings.  After each timed
// completion the generator eliminates *vanishing* markings (markings with an
// enabled instantaneous activity) by firing the highest-priority enabled
// instantaneous activity and branching over its cases, accumulating case
// probabilities — the standard vanishing-marking elimination of stochastic
// Petri-net tools.  Probabilistic instantaneous branching (the paper's JP
// activity chooses platoon 1 or 2 with probability ½ each) is therefore
// handled exactly.
//
// An optional `absorbing` predicate truncates exploration: markings
// satisfying it get no outgoing transitions.  This is how first-passage
// measures such as the paper's S(t) are computed — `KO_total > 0` is
// declared absorbing and S(t) is the transient probability of the absorbing
// class.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ctmc/chain.h"
#include "san/flat_model.h"

namespace ctmc {

struct StateSpaceOptions {
  /// Exploration aborts (throws util::NumericalError) past this many
  /// tangible states.
  std::size_t max_states = 2'000'000;
  /// Abort threshold for vanishing-marking chains (loop detection).
  std::size_t max_vanishing_depth = 10'000;
  /// Optional: markings where this returns true become absorbing.
  std::function<bool(std::span<const std::int32_t>)> absorbing;
  /// Place-name suffixes whose slots are zeroed before a marking is
  /// interned.  ONLY sound for write-only statistics counters (places no
  /// gate, arc, or rate reads — e.g. the AHS model's ext_id / safe_exits /
  /// ko_exits); projecting those out is an exact lumping and keeps pure
  /// counters from blowing up the state space.
  std::vector<std::string> ignore_places;
  /// Also record the exploration skeleton (StateSpace::skeleton) so a model
  /// with identical structure but different exponential rates can be
  /// re-evaluated via rebuild_rates without BFS re-exploration.
  bool capture_structure = false;
  /// Static-analysis preflight (san::analyze::preflight_lint): reject
  /// models with error-severity lint findings before exploring.  Runs in
  /// build_state_space only — rebuild_rates reuses the vetted structure.
  bool lint = true;
};

struct StateSpace {
  MarkovChain chain;
  /// Tangible markings, indexed by state id.
  std::vector<std::vector<std::int32_t>> states;

  /// One tangible transition contribution, with the source activity's
  /// exponential rate factored out: the numeric rate is
  /// rate(activity, states[from]) × weight, where weight folds the case
  /// probability and the vanishing-chain elimination probability.  Arcs are
  /// grouped by (from, activity) in exploration order.
  struct SkeletonArc {
    std::uint32_t from;
    std::uint32_t activity;
    std::uint32_t to;
    double weight;
  };
  /// Present only when StateSpaceOptions::capture_structure was set.
  std::shared_ptr<const std::vector<SkeletonArc>> skeleton;

  /// Evaluates a reward function over every state.
  std::vector<double> state_rewards(
      const std::function<double(std::span<const std::int32_t>)>& reward)
      const;
};

/// Explores the reachable tangible state space and builds the CTMC.
/// Requires model.all_exponential().
StateSpace build_state_space(const san::FlatModel& model,
                             const StateSpaceOptions& options = {});

/// Rebuilds the generator of `cached` for a model whose *structure* —
/// places, activities, gates, case weights, instantaneous behaviour — is
/// identical to the one `cached` was explored from and whose timed
/// activities differ only in their exponential rates (e.g. the same AHS
/// system model at another failure rate λ).  Each timed activity's rate is
/// re-evaluated in each cached source marking and the skeleton rescaled:
/// one pass over the arcs, no hashing, no BFS.  Requires
/// `cached.skeleton != nullptr` (explored with capture_structure); the
/// caller owns the structural-equality precondition — rates that change
/// which activities are *enabled* invalidate the cache.
MarkovChain rebuild_rates(const san::FlatModel& model,
                          const StateSpace& cached);

}  // namespace ctmc
