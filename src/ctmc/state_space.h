// State-space generation: all-exponential SAN → finite CTMC.
//
// Breadth-first exploration over tangible markings.  After each timed
// completion the generator eliminates *vanishing* markings (markings with an
// enabled instantaneous activity) by firing the highest-priority enabled
// instantaneous activity and branching over its cases, accumulating case
// probabilities — the standard vanishing-marking elimination of stochastic
// Petri-net tools.  Probabilistic instantaneous branching (the paper's JP
// activity chooses platoon 1 or 2 with probability ½ each) is therefore
// handled exactly.
//
// An optional `absorbing` predicate truncates exploration: markings
// satisfying it get no outgoing transitions.  This is how first-passage
// measures such as the paper's S(t) are computed — `KO_total > 0` is
// declared absorbing and S(t) is the transient probability of the absorbing
// class.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ctmc/chain.h"
#include "san/flat_model.h"

namespace ctmc {

struct StateSpaceOptions {
  /// Exploration aborts (throws util::NumericalError) past this many
  /// tangible states.
  std::size_t max_states = 2'000'000;
  /// Abort threshold for vanishing-marking chains (loop detection).
  std::size_t max_vanishing_depth = 10'000;
  /// Optional: markings where this returns true become absorbing.
  std::function<bool(std::span<const std::int32_t>)> absorbing;
  /// Place-name suffixes whose slots are zeroed before a marking is
  /// interned.  ONLY sound for write-only statistics counters (places no
  /// gate, arc, or rate reads — e.g. the AHS model's ext_id / safe_exits /
  /// ko_exits); projecting those out is an exact lumping and keeps pure
  /// counters from blowing up the state space.
  std::vector<std::string> ignore_places;
};

struct StateSpace {
  MarkovChain chain;
  /// Tangible markings, indexed by state id.
  std::vector<std::vector<std::int32_t>> states;

  /// Evaluates a reward function over every state.
  std::vector<double> state_rewards(
      const std::function<double(std::span<const std::int32_t>)>& reward)
      const;
};

/// Explores the reachable tangible state space and builds the CTMC.
/// Requires model.all_exponential().
StateSpace build_state_space(const san::FlatModel& model,
                             const StateSpaceOptions& options = {});

}  // namespace ctmc
