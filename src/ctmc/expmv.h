// Krylov (Arnoldi) matrix-exponential propagation for transient CTMC
// solution — the kKrylov engine behind ctmc::solve_transient.
//
// π(t)ᵀ = exp(Qᵀ t) · π(0)ᵀ is approximated in a Krylov subspace
// K_m(Qᵀ, v) with adaptive sub-stepping in the style of Expokit's dgexpv:
// per step, an Arnoldi factorization Qᵀ·V_m = V_{m+1}·H̄_m, a dense
// exponential of the small augmented matrix (scaling-and-squaring
// Padé(13)), and an a-posteriori local error estimate from the two extra
// rows of the augmented exponential that drives the step-size control.
//
// This is an *independent numerical method* from uniformization — no
// Poisson weights, no DTMC powers — which is exactly why it exists here:
// it is the cross-check oracle the adaptive uniformization engine is
// certified against (tests/test_solvers.cpp).  The iteration unit reported
// in TransientSolution::total_iterations is matrix-vector products, the
// same unit the uniformization engines report.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ctmc/chain.h"
#include "ctmc/uniformization.h"

namespace util {
class ThreadPool;
}

namespace ctmc {

struct ExpmvResult {
  /// exp(Qᵀ t) · v.
  std::vector<double> w;
  /// Matrix-vector products performed (Arnoldi + error-estimate products).
  std::uint64_t matvecs = 0;
};

/// w = exp(Qᵀ t) · v with local error ≲ `tol` (absolute, on the vector).
/// A `tol` below expmv_tol_floor(anorm, t) cannot be honoured in double
/// precision — callers certifying 1e-12 tails must check the floor (the
/// Krylov transient solver does, and flags the solve; see
/// docs/PERFORMANCE.md).  The product kernel runs gather-style over the
/// column-blocked transpose, so results are bitwise independent of the
/// pool size.
ExpmvResult expmv(const MarkovChain& chain, std::span<const double> v,
                  double t, double tol, int krylov_dim,
                  util::ThreadPool* pool);

/// The absolute-error round-off floor of a Krylov propagation over horizon
/// `t` with operator norm bound `anorm` (‖Qᵀ‖ estimate): the local-error
/// estimator measures Krylov *truncation* error only, so a requested
/// tolerance below ε_mach·max(1, anorm·t) is noise — the solve silently
/// carries O(floor) round-off no matter what the estimator claims.  The
/// Krylov transient solver compares its tolerance against this and raises
/// TransientSolution::tol_floor_hit instead of certifying the impossible.
double expmv_tol_floor(double anorm, double t);

/// solve_transient with the Krylov engine; ctmc::solve_transient dispatches
/// here for UniformizationOptions::solver == kKrylov.  Uses
/// options.krylov_tol (or options.epsilon when 0) as the per-interval
/// error budget and options.krylov_dim as the Arnoldi subspace size.
TransientSolution solve_transient_krylov(const MarkovChain& chain,
                                         std::span<const double> reward,
                                         std::span<const double> time_points,
                                         const UniformizationOptions& options);

/// Dense exp(A) for a row-major m×m matrix by scaling-and-squaring
/// Padé(13) (Higham 2005).  Exposed for testing; the solver only ever
/// calls it with (krylov_dim + 2)-sized matrices.
std::vector<double> dense_expm(const std::vector<double>& a, int m);

}  // namespace ctmc
