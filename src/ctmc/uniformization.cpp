#include "ctmc/uniformization.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/metrics.h"
#include "util/spans.h"
#include "util/thread_pool.h"

namespace ctmc {

namespace {

/// Solver telemetry ("ctmc.uniformization.*"), resolved per solve from the
/// process-wide registry; every site is one predictable branch when no
/// registry is attached.
struct UnifTelemetry {
  bool on = false;
  util::Counter solves;
  util::Counter iterations;  ///< DTMC vector-matrix products
  util::Counter memo_hits;   ///< PoissonMemo served a cached window
  util::Counter memo_misses;
  util::Counter steady_cutoffs;  ///< steady-state detection fired
  util::HistogramHandle window_size;  ///< Poisson window width per miss
  util::Gauge truncation;  ///< Poisson mass left outside the last window

  UnifTelemetry() {
    if (util::MetricsRegistry* reg = util::MetricsRegistry::global()) {
      on = true;
      solves = reg->counter("ctmc.uniformization.solves");
      iterations = reg->counter("ctmc.uniformization.iterations");
      memo_hits = reg->counter("ctmc.uniformization.poisson_memo_hits");
      memo_misses = reg->counter("ctmc.uniformization.poisson_memo_misses");
      steady_cutoffs = reg->counter("ctmc.uniformization.steady_cutoffs");
      window_size = reg->histogram(
          "ctmc.uniformization.poisson_window_size",
          {0, 8, 16, 32, 64, 128, 256, 512, 1024, 4096});
      truncation = reg->gauge("ctmc.uniformization.truncation_remaining");
    }
  }
};

/// Memoizes poisson_window within one solve: incremental time grids almost
/// always step by a constant Δt, so consecutive intervals ask for the same
/// Λ·Δt and the window (potentially thousands of weights) need not be
/// recomputed.
class PoissonMemo {
 public:
  PoissonMemo(double epsilon, UnifTelemetry* tm)
      : epsilon_(epsilon), tm_(tm) {}

  const PoissonWindow& get(double lambda) {
    if (!valid_ || lambda != lambda_) {
      window_ = poisson_window(lambda, epsilon_);
      lambda_ = lambda;
      valid_ = true;
      if (tm_->on) {
        tm_->memo_misses.inc();
        tm_->window_size.record(static_cast<double>(window_.weight.size()));
      }
    } else if (tm_->on) {
      tm_->memo_hits.inc();
    }
    return window_;
  }

 private:
  double epsilon_;
  UnifTelemetry* tm_;
  double lambda_ = 0.0;
  bool valid_ = false;
  PoissonWindow window_;
};

/// The uniformized DTMC step y := x P, P = I + Q/Λ, shared by both solvers.
/// With a pool the product runs gather-style over the transposed rate
/// matrix, row-partitioned; the transpose preserves the sequential
/// accumulation order, so the result is bitwise identical for any pool
/// size (including none).
class DtmcStepper {
 public:
  DtmcStepper(const MarkovChain& chain, double unif_rate,
              util::ThreadPool* pool)
      : chain_(chain), unif_rate_(unif_rate), pool_(pool) {
    const std::uint32_t n = chain.num_states;
    self_prob_.resize(n);
    for (std::uint32_t s = 0; s < n; ++s)
      self_prob_[s] = 1.0 - chain.exit_rate[s] / unif_rate;
    if (pool_ != nullptr) transposed_ = chain.rates.transposed();
  }

  void operator()(const std::vector<double>& x, std::vector<double>& y) const {
    if (pool_ != nullptr) {
      transposed_.right_multiply(x, y, *pool_);
    } else {
      chain_.rates.left_multiply(x, y);
    }
    const std::uint32_t n = chain_.num_states;
    for (std::uint32_t s = 0; s < n; ++s) {
      y[s] /= unif_rate_;
      y[s] += x[s] * self_prob_[s];
    }
  }

 private:
  const MarkovChain& chain_;
  double unif_rate_;
  util::ThreadPool* pool_;
  std::vector<double> self_prob_;
  CsrMatrix transposed_;
};

}  // namespace

PoissonWindow poisson_window(double lambda, double epsilon) {
  AHS_REQUIRE(lambda >= 0.0, "Poisson rate must be >= 0");
  AHS_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
  PoissonWindow w;
  if (lambda == 0.0) {
    w.left = w.right = 0;
    w.weight = {1.0};
    return w;
  }
  const auto mode = static_cast<std::uint64_t>(std::floor(lambda));
  // log P(k) = -lambda + k log lambda - lgamma(k+1).  glibc's lgamma writes
  // the global signgam, which races when sweeps solve concurrently; the
  // argument k+1 is positive so Stirling via lgamma_r (reentrant) — or the
  // identity lgamma(n) = Σ log — is required.  lgamma_r is POSIX and
  // present on the toolchains this builds on.
  auto log_pmf = [lambda](std::uint64_t k) {
    int sign = 0;
    return -lambda + static_cast<double>(k) * std::log(lambda) -
           lgamma_r(static_cast<double>(k) + 1.0, &sign);
  };
  const double log_mode = log_pmf(mode);

  // Expand left and right until the *relative* tail terms are negligible.
  // Work with weights scaled by exp(-log_mode) to avoid underflow.
  std::vector<double> right_w;
  double scaled = 1.0;  // mode term
  std::uint64_t right = mode;
  right_w.push_back(scaled);
  const double cut = epsilon / 4.0;
  while (true) {
    ++right;
    scaled *= lambda / static_cast<double>(right);
    if (scaled < cut * 1e-4 && right > mode + 2) break;
    right_w.push_back(scaled);
    if (right > mode + 100000000)
      throw util::NumericalError("Poisson window expansion runaway");
  }

  std::vector<double> left_w;  // mode-1 downwards
  scaled = 1.0;
  std::uint64_t left = mode;
  while (left > 0) {
    scaled *= static_cast<double>(left) / lambda;
    --left;
    if (scaled < cut * 1e-4 && left + 2 < mode) break;
    left_w.push_back(scaled);
  }

  w.left = left + ((left == 0 && !left_w.empty() &&
                    left_w.size() == mode)  // reached k = 0
                       ? 0
                       : (left_w.size() < mode ? 1 : 0));
  // Simpler: recompute left boundary from sizes.
  w.left = mode - left_w.size();
  w.right = mode + right_w.size() - 1;

  w.weight.resize(right_w.size() + left_w.size());
  for (std::size_t i = 0; i < left_w.size(); ++i)
    w.weight[left_w.size() - 1 - i] = left_w[i];
  for (std::size_t i = 0; i < right_w.size(); ++i)
    w.weight[left_w.size() + i] = right_w[i];

  // Normalize: the true weights are weight[i] * exp(log_mode); dividing by
  // the window total both normalizes and absorbs that factor (the discarded
  // tail mass is within epsilon by construction).
  (void)log_mode;
  double total = 0.0;
  for (double x : w.weight) total += x;
  AHS_ASSERT(total > 0.0, "Poisson window has zero mass");
  for (double& x : w.weight) x /= total;
  return w;
}

AccumulatedSolution solve_accumulated(const MarkovChain& chain,
                                      std::span<const double> reward,
                                      std::span<const double> time_points,
                                      const UniformizationOptions& options) {
  AHS_REQUIRE(reward.size() == chain.num_states,
              "reward vector size mismatch");
  AHS_REQUIRE(!time_points.empty(), "need at least one time point");
  double prev_t = 0.0;
  for (double t : time_points) {
    AHS_REQUIRE(t >= prev_t,
                "time points must be non-decreasing and non-negative");
    prev_t = t;
  }

  AHS_SPAN("uniformization.accumulated");
  UnifTelemetry tm;
  if (tm.on) tm.solves.inc();

  const std::uint32_t n = chain.num_states;
  const double unif_rate =
      std::max(chain.max_exit_rate() * options.rate_factor, 1e-12);
  const DtmcStepper dtmc_step(chain, unif_rate, options.pool);
  PoissonMemo memo(options.epsilon, &tm);

  AccumulatedSolution sol;
  sol.time_points.assign(time_points.begin(), time_points.end());

  std::vector<double> pi = chain.initial;
  double pi_time = 0.0;
  double total = 0.0;

  std::vector<double> v(n), v_next(n), pi_next(n), pi_acc(n);
  for (double t : time_points) {
    const double dt = t - pi_time;
    if (dt > 0.0) {
      const PoissonWindow& win = memo.get(unif_rate * dt);
      // Survival function of the Poisson count: P(N ≥ k+1).  Below the
      // window it is ≈ 1; inside it decreases by the pmf weights; above
      // it is ≈ 0.
      v = pi;
      std::fill(pi_acc.begin(), pi_acc.end(), 0.0);
      double survival = 1.0;
      double interval_acc = 0.0;
      for (std::uint64_t k = 0; k <= win.right; ++k) {
        if (k >= win.left) survival -= win.weight[k - win.left];
        const double coeff = std::max(0.0, survival);
        if (coeff > 0.0) {
          double vr = 0.0;
          for (std::uint32_t s = 0; s < n; ++s) vr += v[s] * reward[s];
          interval_acc += coeff * vr;
        }
        // Advance the transient distribution weights alongside.
        if (k >= win.left)
          for (std::uint32_t s = 0; s < n; ++s)
            pi_acc[s] += win.weight[k - win.left] * v[s];
        ++sol.total_iterations;
        if (k == win.right) break;
        dtmc_step(v, v_next);
        v.swap(v_next);
      }
      total += interval_acc / unif_rate;
      pi = pi_acc;
      double mass = 0.0;
      for (double p : pi) mass += p;
      if (mass > 0.0 && std::abs(mass - 1.0) < 1e-6)
        for (double& p : pi) p /= mass;
      pi_time = t;
    }
    sol.accumulated.push_back(total);
  }
  if (tm.on) tm.iterations.add(sol.total_iterations);
  return sol;
}

TransientSolution solve_transient(const MarkovChain& chain,
                                  std::span<const double> reward,
                                  std::span<const double> time_points,
                                  const UniformizationOptions& options) {
  AHS_REQUIRE(reward.size() == chain.num_states,
              "reward vector size mismatch");
  AHS_REQUIRE(!time_points.empty(), "need at least one time point");
  double prev_t = 0.0;
  for (double t : time_points) {
    AHS_REQUIRE(t >= prev_t,
                "time points must be non-decreasing and non-negative");
    prev_t = t;
  }

  AHS_SPAN("uniformization.transient");
  UnifTelemetry tm;
  if (tm.on) tm.solves.inc();

  const std::uint32_t n = chain.num_states;
  const double lambda_max = chain.max_exit_rate();
  // Λ must be positive even for an all-absorbing chain.
  const double unif_rate = std::max(lambda_max * options.rate_factor, 1e-12);
  const DtmcStepper dtmc_step(chain, unif_rate, options.pool);
  PoissonMemo memo(options.epsilon, &tm);

  TransientSolution sol;
  sol.time_points.assign(time_points.begin(), time_points.end());

  std::vector<double> pi = chain.initial;
  double pi_time = 0.0;

  std::vector<double> v = pi, v_next(n), acc(n);
  for (double t : time_points) {
    const double dt = t - pi_time;
    if (dt > 0.0) {
      const PoissonWindow& win = memo.get(unif_rate * dt);
      std::fill(acc.begin(), acc.end(), 0.0);
      v = pi;
      double remaining = 1.0;
      bool steady = false;
      for (std::uint64_t k = 0; k <= win.right; ++k) {
        if (k >= win.left) {
          const double w = win.weight[k - win.left];
          for (std::uint32_t s = 0; s < n; ++s) acc[s] += w * v[s];
          remaining -= w;
        }
        ++sol.total_iterations;
        if (k == win.right) break;
        dtmc_step(v, v_next);
        if (options.steady_state_tol > 0.0) {
          double diff = 0.0;
          for (std::uint32_t s = 0; s < n; ++s)
            diff = std::max(diff, std::abs(v_next[s] - v[s]));
          if (diff < options.steady_state_tol) {
            steady = true;
            v.swap(v_next);
            break;
          }
        }
        v.swap(v_next);
      }
      if (steady && remaining > 0.0) {
        // The DTMC iterate has converged; the rest of the Poisson mass sees
        // the same vector.
        for (std::uint32_t s = 0; s < n; ++s) acc[s] += remaining * v[s];
      }
      if (tm.on) {
        if (steady) tm.steady_cutoffs.inc();
        tm.truncation.set(std::max(0.0, remaining));
      }
      pi = acc;
      pi_time = t;
      // Guard against accumulated round-off: renormalize gently.
      double total = 0.0;
      for (double p : pi) total += p;
      if (total > 0.0 && std::abs(total - 1.0) < 1e-6)
        for (double& p : pi) p /= total;
    }
    double expect = 0.0;
    for (std::uint32_t s = 0; s < n; ++s) expect += pi[s] * reward[s];
    sol.expected_reward.push_back(expect);
    sol.distributions.push_back(pi);
  }
  if (tm.on) tm.iterations.add(sol.total_iterations);
  return sol;
}

}  // namespace ctmc
