#include "ctmc/uniformization.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <memory>
#include <utility>

#include "ctmc/expmv.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/snapshot.h"
#include "util/spans.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace ctmc {

std::size_t PoissonKeyHash::operator()(
    const std::pair<std::uint64_t, std::uint64_t>& key) const {
  return static_cast<std::size_t>(
      util::hash_mix(util::hash_mix(0x9e3779b97f4a7c15ull, key.first),
                     key.second));
}

std::shared_ptr<const PoissonWindow> PoissonCache::find(
    double lambda, double epsilon) const {
  const std::pair<std::uint64_t, std::uint64_t> key{
      std::bit_cast<std::uint64_t>(lambda),
      std::bit_cast<std::uint64_t>(epsilon)};
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = windows_.find(key);
  if (it == windows_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void PoissonCache::store(double lambda, double epsilon,
                         std::shared_ptr<const PoissonWindow> window) {
  const std::pair<std::uint64_t, std::uint64_t> key{
      std::bit_cast<std::uint64_t>(lambda),
      std::bit_cast<std::uint64_t>(epsilon)};
  const std::lock_guard<std::mutex> lock(mutex_);
  windows_.emplace(key, std::move(window));
}

std::uint64_t PoissonCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t PoissonCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

double PoissonCache::hit_rate() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
}

std::shared_ptr<const WarmStart> WarmStartCache::find(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void WarmStartCache::store(std::uint64_t key,
                           std::shared_ptr<const WarmStart> entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.emplace(key, std::move(entry));
}

std::vector<std::pair<std::uint64_t, std::shared_ptr<const WarmStart>>>
WarmStartCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const WarmStart>>> out(
      entries_.begin(), entries_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::size_t WarmStartCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t WarmStartCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t WarmStartCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

double WarmStartCache::hit_rate() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
}

const char* to_string(TransientSolver s) {
  switch (s) {
    case TransientSolver::kStandard:
      return "standard";
    case TransientSolver::kAdaptive:
      return "adaptive";
    case TransientSolver::kKrylov:
      return "krylov";
  }
  return "unknown";
}

namespace {

/// Solver telemetry ("ctmc.uniformization.*"), resolved per solve from the
/// process-wide registry; every site is one predictable branch when no
/// registry is attached.
struct UnifTelemetry {
  bool on = false;
  util::Counter solves;
  util::Counter iterations;  ///< DTMC vector-matrix products
  util::Counter memo_hits;   ///< PoissonMemo served a cached window
  util::Counter memo_misses;
  util::Counter cache_hits;    ///< shared PoissonCache served a window
  util::Counter cache_misses;  ///< shared PoissonCache consulted, computed
  util::Counter steady_cutoffs;  ///< steady-state detection fired
  util::Counter qs_extrapolations;  ///< adaptive plateau closures fired
  util::Counter ramp_segments;      ///< adaptive reduced-rate segments run
  util::HistogramHandle window_size;  ///< Poisson window width per miss
  util::Gauge truncation;  ///< Poisson mass left outside the last window

  // Flight-recorder milestones (util/trace.h) — independent of the metrics
  // registry; each emit is one branch when no recorder is attached.
  util::TraceName tr_window;    ///< instant per interval (a=interval, b=right)
  util::TraceName tr_steady;    ///< steady-state cutoff fired (a=k)
  util::TraceName tr_qs;        ///< quasi-stationary extrapolation (a=k)
  util::TraceName tr_warm;      ///< warm-start shape validated (a=k)
  util::TraceName tr_ramp;      ///< rate-ramp segments run (a=segments)

  UnifTelemetry() {
    if (util::TraceRecorder* trc = util::TraceRecorder::global()) {
      tr_window = trc->name("unif.window_start");
      tr_steady = trc->name("unif.steady_cutoff");
      tr_qs = trc->name("unif.qs_extrapolation");
      tr_warm = trc->name("unif.warm_start_hit");
      tr_ramp = trc->name("unif.ramp_segments");
    }
    if (util::MetricsRegistry* reg = util::MetricsRegistry::global()) {
      on = true;
      solves = reg->counter("ctmc.uniformization.solves");
      iterations = reg->counter("ctmc.uniformization.iterations");
      memo_hits = reg->counter("ctmc.uniformization.poisson_memo_hits");
      memo_misses = reg->counter("ctmc.uniformization.poisson_memo_misses");
      cache_hits = reg->counter("ctmc.uniformization.poisson_cache_hits");
      cache_misses = reg->counter("ctmc.uniformization.poisson_cache_misses");
      steady_cutoffs = reg->counter("ctmc.uniformization.steady_cutoffs");
      qs_extrapolations =
          reg->counter("ctmc.uniformization.qs_extrapolations");
      ramp_segments = reg->counter("ctmc.uniformization.ramp_segments");
      window_size = reg->histogram(
          "ctmc.uniformization.poisson_window_size",
          {0, 8, 16, 32, 64, 128, 256, 512, 1024, 4096});
      truncation = reg->gauge("ctmc.uniformization.truncation_remaining");
    }
  }
};

/// Memoizes poisson_window within one solve: incremental time grids almost
/// always step by a constant Δt, so consecutive intervals ask for the same
/// Λ·Δt and the window (potentially thousands of weights) need not be
/// recomputed.  With a shared PoissonCache attached, a last-λ miss consults
/// the cache before computing, and computed windows are published to it —
/// adjacent sweep points then reuse each other's windows (and truncation
/// bounds) across solves.
class PoissonMemo {
 public:
  PoissonMemo(double epsilon, UnifTelemetry* tm, PoissonCache* cache)
      : epsilon_(epsilon), tm_(tm), cache_(cache) {}

  const PoissonWindow& get(double lambda) {
    if (window_ != nullptr && lambda == lambda_) {
      if (tm_->on) tm_->memo_hits.inc();
      return *window_;
    }
    if (cache_ != nullptr) {
      if (std::shared_ptr<const PoissonWindow> cached =
              cache_->find(lambda, epsilon_)) {
        window_ = std::move(cached);
        lambda_ = lambda;
        if (tm_->on) {
          tm_->memo_hits.inc();
          tm_->cache_hits.inc();
        }
        return *window_;
      }
    }
    auto computed =
        std::make_shared<PoissonWindow>(poisson_window(lambda, epsilon_));
    if (tm_->on) {
      tm_->memo_misses.inc();
      if (cache_ != nullptr) tm_->cache_misses.inc();
      tm_->window_size.record(static_cast<double>(computed->weight.size()));
    }
    if (cache_ != nullptr) cache_->store(lambda, epsilon_, computed);
    window_ = std::move(computed);
    lambda_ = lambda;
    return *window_;
  }

 private:
  double epsilon_;
  UnifTelemetry* tm_;
  PoissonCache* cache_;
  double lambda_ = 0.0;
  std::shared_ptr<const PoissonWindow> window_;
};

/// Rounds a uniformization rate up to the next multiple of 2^(e-8) (e the
/// rate's binary exponent): at most 0.4 % overshoot, and any two rates
/// within one step of each other quantize to the *same* double — the key
/// property that lets neighboring sweep points share PoissonCache entries.
double quantize_rate_up(double rate) {
  int e = 0;
  std::frexp(rate, &e);
  const double step = std::ldexp(1.0, e - 8);
  return std::ceil(rate / step) * step;
}

/// Uniformization rate for a chain under `options`: Λ = factor · max exit
/// rate (positive even for an all-absorbing chain), quantized when a
/// Poisson cache is attached so adjacent solves land on shared cache keys.
double uniformization_rate(const MarkovChain& chain,
                           const UniformizationOptions& options) {
  const double rate =
      std::max(chain.max_exit_rate() * options.rate_factor, 1e-12);
  return options.poisson_cache != nullptr ? quantize_rate_up(rate) : rate;
}

/// The uniformized DTMC step y := x P, P = I + Q/Λ, shared by all solvers,
/// plus the steady-state detector both solve_transient and
/// solve_accumulated consult (the detection used to live separately in each
/// loop; the shared flag keeps the cutoff semantics identical).
///
/// The product runs gather-style over the column-blocked transpose of the
/// rate matrix (see BlockedCsr): each output accumulates its contributions
/// in the sequential scatter order, so the result is bitwise identical to
/// the historical sequential left_multiply — for any block count and any
/// pool size (a pool partitions each block's output rows; every output is
/// still written by exactly one thread in the same per-element order).
///
/// The final block's pass is fused with the rest of the per-iteration
/// element work: the /Λ scaling and I·self_prob term, the Poisson
/// accumulation acc[s] += w·x[s], and the steady-state max-norm diff all
/// happen while y[s] and x[s] are in registers, replacing what used to be
/// four extra O(n) passes over the state vectors per iteration.
class DtmcStepper {
 public:
  /// Column block width: 192 Ki columns = 1.5 MiB of gathered x per block,
  /// sized to keep the block's x slice resident in a ≥ 2 MiB L2 alongside
  /// the streamed CSR entries.  Chains up to ~196 K states get one block.
  static constexpr std::uint32_t kBlockCols = 192 * 1024;

  DtmcStepper(const MarkovChain& chain, double unif_rate,
              util::ThreadPool* pool, double steady_tol)
      : unif_rate_(unif_rate), steady_tol_(steady_tol), pool_(pool) {
    const std::uint32_t n = chain.num_states;
    self_prob_.resize(n);
    for (std::uint32_t s = 0; s < n; ++s)
      self_prob_[s] = 1.0 - chain.exit_rate[s] / unif_rate;
    blocked_ = make_blocked(chain.rates.transposed(), kBlockCols);
  }

  /// Fused step: y := x P; when `acc` is non-null, acc[s] += w·x[s] rides
  /// along.  Returns ‖y − x‖∞ and latches steady() when the diff drops
  /// below the construction-time tolerance.
  double step(const std::vector<double>& x, std::vector<double>& y, double w,
              std::vector<double>* acc) {
    const double diff = acc != nullptr ? run<true>(x, y, w, acc->data())
                                       : run<false>(x, y, 0.0, nullptr);
    if (steady_tol_ > 0.0 && diff < steady_tol_) steady_ = true;
    return diff;
  }

  /// The DTMC iterate has converged (‖ΔΠ‖∞ below the tolerance).  Latched
  /// until reset_steady(); callers reset at each interval boundary.
  bool steady() const { return steady_; }
  void reset_steady() { steady_ = false; }

 private:
  template <bool kWithAcc>
  double run(const std::vector<double>& x, std::vector<double>& y, double w,
             double* acc) const {
    const std::uint32_t n = static_cast<std::uint32_t>(self_prob_.size());
    const std::size_t blocks = blocked_.blocks();
    const std::uint32_t stride = n + 1;
    double max_diff = 0.0;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      const bool first = blk == 0;
      const bool last = blk + 1 == blocks;
      const std::size_t* ptr = blocked_.row_ptr.data() + blk * stride;
      const std::uint32_t* col = blocked_.col.data();
      const double* val = blocked_.val.data();
      const double* xs = x.data();
      const double* sp = self_prob_.data();
      double* ys = y.data();
      const auto kernel = [&](std::uint32_t lo, std::uint32_t hi) {
        double diff = 0.0;
        for (std::uint32_t r = lo; r < hi; ++r) {
          double g = first ? 0.0 : ys[r];
          for (std::size_t k = ptr[r]; k < ptr[r + 1]; ++k)
            g += val[k] * xs[col[k]];
          if (last) {
            g /= unif_rate_;
            g += xs[r] * sp[r];
            diff = std::max(diff, std::abs(g - xs[r]));
            if constexpr (kWithAcc) acc[r] += w * xs[r];
          }
          ys[r] = g;
        }
        return diff;
      };
      if (pool_ == nullptr) {
        max_diff = std::max(max_diff, kernel(0, n));
      } else {
        // One diff slot per parallel_for chunk; chunk boundaries are fixed
        // by (n, pool size), and max is exactly associative, so the
        // reduction is bitwise pool-size independent.
        std::vector<double> diffs(pool_->size() + 2, 0.0);
        std::atomic<std::size_t> slot{0};
        pool_->parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
          const double d = kernel(static_cast<std::uint32_t>(lo),
                                  static_cast<std::uint32_t>(hi));
          diffs[slot.fetch_add(1, std::memory_order_relaxed)] = d;
        });
        for (double d : diffs) max_diff = std::max(max_diff, d);
      }
    }
    return max_diff;
  }

  double unif_rate_;
  double steady_tol_;
  bool steady_ = false;
  util::ThreadPool* pool_;
  std::vector<double> self_prob_;
  BlockedCsr blocked_;
};

// ---- kAdaptive machinery -------------------------------------------------

/// Length of the diff-history ring buffer backing the plateau lookback
/// check: a slowly decaying flux passes the consecutive-step flatness test
/// long before it passes |diff_k − diff_{k−64}| ≤ tol·diff.
constexpr std::uint64_t kQsLookback = 64;

/// Minimum window tail (in DTMC steps) left for a plateau closure to fire:
/// below this the exact iterations are cheap and the extrapolation only
/// adds (tiny, but nonzero) model error.
constexpr std::uint64_t kQsMinTail = 128;

/// Cap on reduced-rate ramp segments per solve.
constexpr std::uint64_t kMaxRampSegments = 8;

/// Max exit rate over states within d jumps of the initial support:
/// profile[d] is nondecreasing and expansion stops once the chain's global
/// max is reached, so the vector stays short for chains whose support heats
/// up quickly (the AHS models reach their max within a couple of jumps —
/// the ramp is then inert, see docs/PERFORMANCE.md).
std::vector<double> reach_profile(const MarkovChain& chain) {
  const std::uint32_t n = chain.num_states;
  const double global_max = chain.max_exit_rate();
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<std::uint32_t> frontier, next;
  double level_max = 0.0;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (chain.initial[s] > 0.0) {
      seen[s] = 1;
      frontier.push_back(s);
      level_max = std::max(level_max, chain.exit_rate[s]);
    }
  }
  std::vector<double> profile{level_max};
  while (!frontier.empty() && profile.back() < global_max) {
    next.clear();
    for (std::uint32_t s : frontier) {
      for (std::uint32_t c : chain.rates.row_cols(s)) {
        if (!seen[c]) {
          seen[c] = 1;
          next.push_back(c);
          level_max = std::max(level_max, chain.exit_rate[c]);
        }
      }
    }
    if (next.empty()) break;
    profile.push_back(level_max);
    frontier.swap(next);
  }
  return profile;
}

/// Runs reduced-rate uniformization segments over the head of the first
/// time interval while the reachable support's exit rates are still below
/// the global maximum.  Each segment is an exact ε-truncated uniformization
/// solve at Λ_seg = factor·profile[D]; its Poisson window is sized so the
/// window right edge fits in the depth budget D − depth the segment rate is
/// valid for — probability mass cannot outrun the states whose exit rates
/// Λ_seg dominates, so only the rate (and with it the iteration count)
/// changes, not the answer beyond the usual ε truncation.  Advances
/// pi/pi_time; returns the number of segments run.
std::uint64_t run_rate_ramp(const MarkovChain& chain,
                            const UniformizationOptions& options,
                            double global_rate, PoissonMemo& memo,
                            std::vector<double>& pi, double& pi_time,
                            double first_t, std::uint64_t& iterations) {
  const std::vector<double> profile = reach_profile(chain);
  if (profile.size() < 2) return 0;
  const std::uint32_t n = chain.num_states;
  std::uint64_t segments = 0;
  std::size_t depth = 0;  // support is within `depth` jumps of the initial set
  std::vector<double> v(n), v_next(n), acc(n);
  while (segments < kMaxRampSegments) {
    const double t_left = first_t - pi_time;
    if (t_left <= 0.0) break;
    // Pick the depth budget D maximizing saved products: running Δt at
    // Λ_seg instead of the global rate saves ≈ (Λ − Λ_seg)·Δt products, and
    // Δt is capped by the Poisson right edge λ + 8√λ + 16 ≲ D − depth.
    std::size_t best_d = 0;
    double best_saved = 0.0, best_dt = 0.0, best_rate = 0.0;
    for (std::size_t d = depth + 1; d < profile.size(); ++d) {
      const double raw = std::max(profile[d] * options.rate_factor, 1e-12);
      const double seg_rate =
          options.poisson_cache != nullptr ? quantize_rate_up(raw) : raw;
      if (seg_rate >= global_rate) break;
      const double budget = static_cast<double>(d - depth);
      if (budget <= 16.0) continue;
      const double x = (-8.0 + std::sqrt(64.0 + 4.0 * (budget - 16.0))) / 2.0;
      const double lam = x * x;
      if (lam <= 0.0) continue;
      const double dt = std::min(lam / seg_rate, t_left);
      // The constant amortizes per-segment overhead (BFS already paid, but
      // each segment rebuilds a blocked stepper and runs window edges).
      const double saved = (global_rate - seg_rate) * dt - 64.0;
      if (saved > best_saved) {
        best_saved = saved;
        best_d = d;
        best_dt = dt;
        best_rate = seg_rate;
      }
    }
    if (best_d == 0) break;
    // The λ→right-edge inversion above is approximate; verify against the
    // actual computed window and shrink Δt until the edge honestly fits.
    const std::uint64_t budget = static_cast<std::uint64_t>(best_d - depth);
    double dt = best_dt;
    bool fits = false;
    for (int shrink = 0; shrink < 8; ++shrink) {
      if (memo.get(best_rate * dt).right <= budget) {
        fits = true;
        break;
      }
      dt *= 0.5;
    }
    if (!fits) break;
    const PoissonWindow& win = memo.get(best_rate * dt);  // memo hit
    DtmcStepper step(chain, best_rate, options.pool, 0.0);
    v = pi;
    std::fill(acc.begin(), acc.end(), 0.0);
    for (std::uint64_t k = 0; k <= win.right; ++k) {
      const bool in_window = k >= win.left;
      const double w = in_window ? win.weight[k - win.left] : 0.0;
      ++iterations;
      if (k == win.right) {
        if (in_window)
          for (std::uint32_t s = 0; s < n; ++s) acc[s] += w * v[s];
        break;
      }
      (void)step.step(v, v_next, w, in_window ? &acc : nullptr);
      v.swap(v_next);
    }
    pi = acc;
    double mass = 0.0;
    for (double p : pi) mass += p;
    if (mass > 0.0 && std::abs(mass - 1.0) < 1e-6)
      for (double& p : pi) p /= mass;
    pi_time += dt;
    depth += win.right;  // mass can have spread this many jumps
    ++segments;
  }
  return segments;
}

/// Normalized transient shape of a distribution: transient entries divided
/// by their total mass, absorbing entries zero (what WarmStart stores).
std::vector<double> normalized_shape(const std::vector<double>& exit_rate,
                                     const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<double> shape(n, 0.0);
  double mass = 0.0;
  for (std::size_t s = 0; s < n; ++s)
    if (exit_rate[s] > 0.0) mass += v[s];
  if (mass <= 0.0) return shape;
  for (std::size_t s = 0; s < n; ++s)
    if (exit_rate[s] > 0.0) shape[s] = v[s] / mass;
  return shape;
}

/// ∞-norm comparison of v's normalized transient shape against a published
/// warm-start shape.
bool shape_matches(const std::vector<double>& exit_rate,
                   const std::vector<double>& v,
                   const std::vector<double>& shape, double tol) {
  if (shape.size() != v.size()) return false;
  double mass = 0.0;
  for (std::size_t s = 0; s < v.size(); ++s)
    if (exit_rate[s] > 0.0) mass += v[s];
  if (mass <= 0.0) return false;
  double dev = 0.0;
  for (std::size_t s = 0; s < v.size(); ++s)
    if (exit_rate[s] > 0.0)
      dev = std::max(dev, std::abs(v[s] / mass - shape[s]));
  return dev <= tol;
}

/// Closes Poisson window indices [k+1, right] analytically from the plateau
/// pair (v_k, v_{k+1}).  Post-mixing the distribution sits on its
/// quasi-stationary mode: transient states scale by ρ = 1 − κ per DTMC step
/// (κ measured as the pair's one-step transient-mass loss fraction) and
/// each absorbing state a gains its measured one-step inflow
/// φ_a = v_{k+1}[a] − v_k[a] scaled by the same geometric decay.  The
/// scalars go through log1p/expm1 — κ is routinely ~1e-16·Λt, where forming
/// ρ = 1 − κ directly would round to 1.0 and silently stop the decay.
void qs_close_window(const std::vector<double>& exit_rate,
                     const PoissonWindow& win, std::uint64_t k,
                     const std::vector<double>& v_k,
                     const std::vector<double>& v_k1, std::vector<double>& acc,
                     double& remaining) {
  const std::size_t n = exit_rate.size();
  double m0 = 0.0, m1 = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    if (exit_rate[s] > 0.0) {
      m0 += v_k[s];
      m1 += v_k1[s];
    }
  }
  const double kappa =
      m0 > 0.0 ? std::clamp((m0 - m1) / m0, 0.0, 1.0) : 0.0;
  const double log_rho = kappa < 1.0 ? std::log1p(-kappa) : -1e300;
  double mass = 0.0, geo = 0.0, tail = 0.0;
  for (std::uint64_t kp = std::max(k + 1, win.left); kp <= win.right; ++kp) {
    const double w = win.weight[kp - win.left];
    const double j = static_cast<double>(kp - (k + 1));
    const double rho_j = std::exp(j * log_rho);
    const double tail_j =
        kappa > 0.0 ? -std::expm1(j * log_rho) / kappa : j;
    mass += w;
    geo += w * rho_j;
    tail += w * tail_j;
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (exit_rate[s] > 0.0)
      acc[s] += geo * v_k1[s];
    else
      acc[s] += mass * v_k1[s] + tail * (v_k1[s] - v_k[s]);
  }
  remaining = std::max(0.0, remaining - mass);
}

}  // namespace

PoissonWindow poisson_window(double lambda, double epsilon) {
  AHS_REQUIRE(lambda >= 0.0, "Poisson rate must be >= 0");
  AHS_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
  PoissonWindow w;
  if (lambda == 0.0) {
    w.left = w.right = 0;
    w.weight = {1.0};
    return w;
  }
  const auto mode = static_cast<std::uint64_t>(std::floor(lambda));
  // log P(k) = -lambda + k log lambda - lgamma(k+1).  glibc's lgamma writes
  // the global signgam, which races when sweeps solve concurrently; the
  // argument k+1 is positive so Stirling via lgamma_r (reentrant) — or the
  // identity lgamma(n) = Σ log — is required.  lgamma_r is POSIX and
  // present on the toolchains this builds on.
  auto log_pmf = [lambda](std::uint64_t k) {
    int sign = 0;
    return -lambda + static_cast<double>(k) * std::log(lambda) -
           lgamma_r(static_cast<double>(k) + 1.0, &sign);
  };
  const double log_mode = log_pmf(mode);

  // Expand left and right until the *relative* tail terms are negligible.
  // Work with weights scaled by exp(-log_mode) to avoid underflow.
  std::vector<double> right_w;
  double scaled = 1.0;  // mode term
  std::uint64_t right = mode;
  right_w.push_back(scaled);
  const double cut = epsilon / 4.0;
  while (true) {
    ++right;
    scaled *= lambda / static_cast<double>(right);
    if (scaled < cut * 1e-4 && right > mode + 2) break;
    right_w.push_back(scaled);
    if (right > mode + 100000000)
      throw util::NumericalError("Poisson window expansion runaway");
  }

  std::vector<double> left_w;  // mode-1 downwards
  scaled = 1.0;
  std::uint64_t left = mode;
  while (left > 0) {
    scaled *= static_cast<double>(left) / lambda;
    --left;
    if (scaled < cut * 1e-4 && left + 2 < mode) break;
    left_w.push_back(scaled);
  }

  w.left = left + ((left == 0 && !left_w.empty() &&
                    left_w.size() == mode)  // reached k = 0
                       ? 0
                       : (left_w.size() < mode ? 1 : 0));
  // Simpler: recompute left boundary from sizes.
  w.left = mode - left_w.size();
  w.right = mode + right_w.size() - 1;

  w.weight.resize(right_w.size() + left_w.size());
  for (std::size_t i = 0; i < left_w.size(); ++i)
    w.weight[left_w.size() - 1 - i] = left_w[i];
  for (std::size_t i = 0; i < right_w.size(); ++i)
    w.weight[left_w.size() + i] = right_w[i];

  // Normalize: the true weights are weight[i] * exp(log_mode); dividing by
  // the window total both normalizes and absorbs that factor (the discarded
  // tail mass is within epsilon by construction).
  (void)log_mode;
  double total = 0.0;
  for (double x : w.weight) total += x;
  AHS_ASSERT(total > 0.0, "Poisson window has zero mass");
  for (double& x : w.weight) x /= total;
  return w;
}

AccumulatedSolution solve_accumulated(const MarkovChain& chain,
                                      std::span<const double> reward,
                                      std::span<const double> time_points,
                                      const UniformizationOptions& options) {
  AHS_REQUIRE(reward.size() == chain.num_states,
              "reward vector size mismatch");
  AHS_REQUIRE(!time_points.empty(), "need at least one time point");
  double prev_t = 0.0;
  for (double t : time_points) {
    AHS_REQUIRE(t >= prev_t,
                "time points must be non-decreasing and non-negative");
    prev_t = t;
  }

  AHS_SPAN("uniformization.accumulated");
  UnifTelemetry tm;
  if (tm.on) tm.solves.inc();

  const std::uint32_t n = chain.num_states;
  const double unif_rate = uniformization_rate(chain, options);
  DtmcStepper dtmc_step(chain, unif_rate, options.pool,
                        options.steady_state_tol);
  PoissonMemo memo(options.epsilon, &tm, options.poisson_cache);

  AccumulatedSolution sol;
  sol.time_points.assign(time_points.begin(), time_points.end());

  std::vector<double> pi = chain.initial;
  double pi_time = 0.0;
  double total = 0.0;

  std::vector<double> v(n), v_next(n), pi_acc(n);
  for (double t : time_points) {
    const double dt = t - pi_time;
    if (dt > 0.0) {
      const PoissonWindow& win = memo.get(unif_rate * dt);
      tm.tr_window.instant(sol.accumulated.size(), win.right);
      // Survival function of the Poisson count: P(N ≥ k+1).  Below the
      // window it is ≈ 1; inside it decreases by the pmf weights; above
      // it is ≈ 0.
      v = pi;
      std::fill(pi_acc.begin(), pi_acc.end(), 0.0);
      double survival = 1.0;
      double interval_acc = 0.0;
      bool steady = false;
      dtmc_step.reset_steady();
      for (std::uint64_t k = 0; k <= win.right; ++k) {
        if (k >= win.left) survival -= win.weight[k - win.left];
        const double coeff = std::max(0.0, survival);
        if (coeff > 0.0) {
          double vr = 0.0;
          for (std::uint32_t s = 0; s < n; ++s) vr += v[s] * reward[s];
          interval_acc += coeff * vr;
        }
        // Advance the transient distribution weights alongside.
        if (k >= win.left)
          for (std::uint32_t s = 0; s < n; ++s)
            pi_acc[s] += win.weight[k - win.left] * v[s];
        ++sol.total_iterations;
        if (k == win.right) break;
        (void)dtmc_step.step(v, v_next, 0.0, nullptr);
        v.swap(v_next);
        if (dtmc_step.steady()) {
          // The DTMC iterate has converged (same detector solve_transient
          // uses): every remaining term sees the same vector, so the rest
          // of the interval closes in one scalar pass over the survival
          // weights instead of win.right − k more products.
          steady = true;
          tm.tr_steady.instant(k);
          double vr = 0.0;
          for (std::uint32_t s = 0; s < n; ++s) vr += v[s] * reward[s];
          double wsum = 0.0;
          for (std::uint64_t k2 = k + 1; k2 <= win.right; ++k2) {
            if (k2 >= win.left) {
              const double wk = win.weight[k2 - win.left];
              survival -= wk;
              wsum += wk;
            }
            const double coeff2 = std::max(0.0, survival);
            if (coeff2 > 0.0) interval_acc += coeff2 * vr;
          }
          for (std::uint32_t s = 0; s < n; ++s) pi_acc[s] += wsum * v[s];
          break;
        }
      }
      if (tm.on && steady) tm.steady_cutoffs.inc();
      total += interval_acc / unif_rate;
      pi = pi_acc;
      double mass = 0.0;
      for (double p : pi) mass += p;
      if (mass > 0.0 && std::abs(mass - 1.0) < 1e-6)
        for (double& p : pi) p /= mass;
      pi_time = t;
    }
    sol.accumulated.push_back(total);
  }
  if (tm.on) tm.iterations.add(sol.total_iterations);
  return sol;
}

TransientSolution solve_transient(const MarkovChain& chain,
                                  std::span<const double> reward,
                                  std::span<const double> time_points,
                                  const UniformizationOptions& options) {
  AHS_REQUIRE(reward.size() == chain.num_states,
              "reward vector size mismatch");
  AHS_REQUIRE(!time_points.empty(), "need at least one time point");
  double prev_t = 0.0;
  for (double t : time_points) {
    AHS_REQUIRE(t >= prev_t,
                "time points must be non-decreasing and non-negative");
    prev_t = t;
  }

  if (options.solver == TransientSolver::kKrylov)
    return solve_transient_krylov(chain, reward, time_points, options);

  AHS_SPAN("uniformization.transient");
  UnifTelemetry tm;
  if (tm.on) tm.solves.inc();

  const std::uint32_t n = chain.num_states;
  const double unif_rate = uniformization_rate(chain, options);
  const bool adaptive = options.solver == TransientSolver::kAdaptive;
  PoissonMemo memo(options.epsilon, &tm, options.poisson_cache);

  TransientSolution sol;
  sol.time_points.assign(time_points.begin(), time_points.end());

  std::vector<double> pi = chain.initial;
  double pi_time = 0.0;

  if (adaptive && time_points.front() > 0.0) {
    sol.ramp_segments =
        run_rate_ramp(chain, options, unif_rate, memo, pi, pi_time,
                      time_points.front(), sol.total_iterations);
    if (tm.on && sol.ramp_segments > 0) tm.ramp_segments.add(sol.ramp_segments);
    if (sol.ramp_segments > 0) tm.tr_ramp.instant(sol.ramp_segments);
  }

  DtmcStepper dtmc_step(chain, unif_rate, options.pool,
                        options.steady_state_tol);

  std::vector<double> v = pi, v_next(n), acc(n);
  std::uint64_t interval = 0;
  for (double t : time_points) {
    const double dt = t - pi_time;
    if (dt > 0.0) {
      const PoissonWindow& win = memo.get(unif_rate * dt);
      tm.tr_window.instant(interval, win.right);
      std::fill(acc.begin(), acc.end(), 0.0);
      v = pi;
      double remaining = 1.0;
      bool steady = false;
      bool qs_fired = false;
      dtmc_step.reset_steady();

      // Plateau-detection state (kAdaptive only; one cold ring fill per
      // interval is noise next to a single matrix product).
      double prev_diff = -1.0;
      int stable = 0;
      std::array<double, kQsLookback> ring{};
      bool warm_ok = false;
      std::shared_ptr<const WarmStart> warm;
      std::uint64_t warm_key = 0;
      if (adaptive && options.warm_cache != nullptr) {
        warm_key = util::hash_mix(options.warm_key, interval);
        warm = options.warm_cache->find(warm_key);
      }

      for (std::uint64_t k = 0; k <= win.right; ++k) {
        const bool in_window = k >= win.left;
        const double w = in_window ? win.weight[k - win.left] : 0.0;
        ++sol.total_iterations;
        if (k == win.right) {
          // Final weight: no step left to fuse its accumulation into.
          if (in_window) {
            for (std::uint32_t s = 0; s < n; ++s) acc[s] += w * v[s];
            remaining -= w;
          }
          break;
        }
        // Fused iteration: the step carries this k's Poisson accumulation
        // acc[s] += w·v[s] along with the product and returns ‖v' − v‖∞
        // for steady-state detection — one pass over the vectors instead
        // of three.
        const double diff =
            dtmc_step.step(v, v_next, w, in_window ? &acc : nullptr);
        if (in_window) remaining -= w;
        if (dtmc_step.steady()) {
          steady = true;
          tm.tr_steady.instant(k);
          v.swap(v_next);
          break;
        }
        if (adaptive && win.right - k >= kQsMinTail) {
          // Quasi-stationary plateau: after mixing, the ∞-norm step diff
          // equals the constant absorption flux.  Cold evidence is
          // qs_confirm consecutive flat steps PLUS flatness against the
          // diff kQsLookback steps back — the lookback rejects fluxes that
          // are decaying smoothly but slowly, which satisfy the
          // consecutive test long before the plateau is real.  A validated
          // warm-start shape replaces the lookback (that is where the
          // warm savings come from).
          const bool flat = diff > 0.0 && prev_diff >= 0.0 &&
                            std::abs(diff - prev_diff) <=
                                options.qs_rel_tol * diff;
          stable = flat ? stable + 1 : 0;
          const bool long_flat =
              k >= kQsLookback && std::abs(diff - ring[k % kQsLookback]) <=
                                      options.qs_rel_tol * diff;
          ring[k % kQsLookback] = diff;
          prev_diff = diff;
          if (warm != nullptr && !warm_ok && stable > 0 && (k & 15u) == 0u)
            warm_ok = shape_matches(chain.exit_rate, v_next, warm->shape,
                                    options.warm_shape_tol);
          const bool fire =
              warm_ok ? stable >= options.qs_confirm_warm
                      : (stable >= options.qs_confirm && long_flat);
          if (fire) {
            qs_close_window(chain.exit_rate, win, k, v, v_next, acc,
                            remaining);
            qs_fired = true;
            tm.tr_qs.instant(k, win.right);
            if (warm_ok) tm.tr_warm.instant(k);
            ++sol.qs_extrapolations;
            sol.warm_start_hit = sol.warm_start_hit || warm_ok;
            if (options.warm_cache != nullptr && options.warm_publish) {
              auto entry = std::make_shared<WarmStart>();
              entry->fired_at = k;
              entry->shape = normalized_shape(chain.exit_rate, v_next);
              options.warm_cache->store(warm_key, std::move(entry));
            }
            v.swap(v_next);
            break;
          }
        }
        v.swap(v_next);
      }
      if (steady && remaining > 0.0) {
        // The DTMC iterate has converged; the rest of the Poisson mass sees
        // the same vector.
        for (std::uint32_t s = 0; s < n; ++s) acc[s] += remaining * v[s];
      }
      if (tm.on) {
        if (steady) tm.steady_cutoffs.inc();
        if (qs_fired) tm.qs_extrapolations.inc();
        tm.truncation.set(std::max(0.0, remaining));
      }
      pi = acc;
      pi_time = t;
      // Guard against accumulated round-off: renormalize gently.
      double total = 0.0;
      for (double p : pi) total += p;
      if (total > 0.0 && std::abs(total - 1.0) < 1e-6)
        for (double& p : pi) p /= total;
    }
    double expect = 0.0;
    for (std::uint32_t s = 0; s < n; ++s) expect += pi[s] * reward[s];
    sol.expected_reward.push_back(expect);
    sol.distributions.push_back(pi);
    ++interval;
  }
  if (tm.on) tm.iterations.add(sol.total_iterations);
  return sol;
}

}  // namespace ctmc
