#include "ctmc/stationary.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace ctmc {

StationaryResult solve_stationary(const MarkovChain& chain,
                                  const StationaryOptions& options) {
  const std::uint32_t n = chain.num_states;
  const double unif_rate =
      std::max(chain.max_exit_rate() * options.rate_factor, 1e-12);

  std::vector<double> self_prob(n);
  for (std::uint32_t s = 0; s < n; ++s)
    self_prob[s] = 1.0 - chain.exit_rate[s] / unif_rate;

  StationaryResult res;
  std::vector<double> x = chain.initial, y(n);
  for (std::uint64_t it = 0; it < options.max_iterations; ++it) {
    chain.rates.left_multiply(x, y);
    for (std::uint32_t s = 0; s < n; ++s)
      y[s] = y[s] / unif_rate + x[s] * self_prob[s];
    double diff = 0.0;
    for (std::uint32_t s = 0; s < n; ++s) diff += std::abs(y[s] - x[s]);
    x.swap(y);
    ++res.iterations;
    if (diff < options.tolerance) {
      res.converged = true;
      break;
    }
  }
  // Renormalize against round-off drift.
  double total = 0.0;
  for (double p : x) total += p;
  if (total > 0.0)
    for (double& p : x) p /= total;
  res.distribution = std::move(x);
  return res;
}

QuasiStationaryResult quasi_stationary_absorption(
    const MarkovChain& chain, const std::vector<bool>& absorbing,
    const QuasiStationaryOptions& options) {
  const std::uint32_t n = chain.num_states;
  AHS_REQUIRE(absorbing.size() == n, "absorbing mask size mismatch");
  const double unif_rate =
      std::max(chain.max_exit_rate() * options.rate_factor, 1e-12);

  std::vector<double> self_prob(n);
  std::vector<bool> absorb(absorbing);
  for (std::uint32_t s = 0; s < n; ++s) {
    self_prob[s] = 1.0 - chain.exit_rate[s] / unif_rate;
    if (chain.exit_rate[s] <= 0.0) absorb[s] = true;
  }

  // Start from the initial distribution restricted to transient states.
  std::vector<double> x(n, 0.0);
  double mass = 0.0;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!absorb[s]) {
      x[s] = chain.initial[s];
      mass += x[s];
    }
  }
  AHS_REQUIRE(mass > 0.0, "initial distribution is entirely absorbing");
  for (double& v : x) v /= mass;

  QuasiStationaryResult res;
  std::vector<double> y(n);
  double prev_rate = -1.0;
  for (std::uint64_t it = 0; it < options.max_iterations; ++it) {
    chain.rates.left_multiply(x, y);
    double absorbed = 0.0;
    double kept = 0.0;
    for (std::uint32_t s = 0; s < n; ++s) {
      y[s] = y[s] / unif_rate + x[s] * self_prob[s];
      if (absorb[s]) {
        absorbed += y[s];
        y[s] = 0.0;
      } else {
        kept += y[s];
      }
    }
    ++res.iterations;
    if (kept <= 0.0) break;  // everything absorbed in one step
    for (std::uint32_t s = 0; s < n; ++s) y[s] /= kept;
    x.swap(y);
    // Per uniformized step of mean length 1/Λ the absorbed fraction is
    // `absorbed`, so the continuous-time hazard is absorbed · Λ.
    const double rate = absorbed * unif_rate;
    if (prev_rate >= 0.0 &&
        std::abs(rate - prev_rate) <=
            options.tolerance * std::max(rate, 1e-300)) {
      res.absorption_rate = rate;
      res.converged = true;
      break;
    }
    prev_rate = rate;
    res.absorption_rate = rate;
  }
  res.distribution = std::move(x);
  return res;
}

AbsorptionResult mean_time_to_absorption(const MarkovChain& chain,
                                         const AbsorptionOptions& options) {
  const std::uint32_t n = chain.num_states;
  AbsorptionResult res;
  res.hitting_time.assign(n, 0.0);

  // Gauss–Seidel sweeps over transient states:
  //   h(s) = (1 + Σ rate(s→s') h(s')) / exit(s).
  for (std::uint64_t it = 0; it < options.max_iterations; ++it) {
    double max_change = 0.0;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (chain.exit_rate[s] <= 0.0) continue;  // absorbing: h = 0
      const auto cols = chain.rates.row_cols(s);
      const auto vals = chain.rates.row_values(s);
      double acc = 1.0;
      for (std::size_t k = 0; k < cols.size(); ++k)
        acc += vals[k] * res.hitting_time[cols[k]];
      const double h_new = acc / chain.exit_rate[s];
      max_change = std::max(max_change,
                            std::abs(h_new - res.hitting_time[s]) /
                                std::max(1.0, std::abs(h_new)));
      res.hitting_time[s] = h_new;
    }
    ++res.iterations;
    if (max_change < options.tolerance) {
      res.converged = true;
      break;
    }
  }

  double mean = 0.0;
  for (std::uint32_t s = 0; s < n; ++s)
    mean += chain.initial[s] * res.hitting_time[s];
  res.mean_time = mean;
  return res;
}

}  // namespace ctmc
