#include "ctmc/expmv.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "ctmc/sparse.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/spans.h"
#include "util/thread_pool.h"

namespace ctmc {
namespace {

/// Same column-block width as the uniformization stepper (192 Ki columns =
/// 1.5 MiB of gathered x per block).
constexpr std::uint32_t kBlockCols = 192 * 1024;

/// y := Qᵀ x = Rᵀ x − exit ∘ x over the column-blocked transpose of the
/// off-diagonal rate matrix.  Row-partitioned gather: every output entry is
/// accumulated by exactly one thread in the sequential per-element order,
/// so the product is bitwise independent of the pool size — the same
/// guarantee the uniformization stepper gives.
class AdjointOp {
 public:
  AdjointOp(const MarkovChain& chain, util::ThreadPool* pool)
      : n_(chain.num_states), exit_(&chain.exit_rate), pool_(pool) {
    blocked_ = make_blocked(chain.rates.transposed(), kBlockCols);
  }

  void apply(const std::vector<double>& x, std::vector<double>& y) const {
    const std::uint32_t n = n_;
    const std::size_t blocks = blocked_.blocks();
    const std::uint32_t stride = n + 1;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      const bool first = blk == 0;
      const bool last = blk + 1 == blocks;
      const std::size_t* ptr = blocked_.row_ptr.data() + blk * stride;
      const std::uint32_t* col = blocked_.col.data();
      const double* val = blocked_.val.data();
      const double* xs = x.data();
      const double* ex = exit_->data();
      double* ys = y.data();
      const auto kernel = [&](std::uint32_t lo, std::uint32_t hi) {
        for (std::uint32_t r = lo; r < hi; ++r) {
          double g = first ? 0.0 : ys[r];
          for (std::size_t k = ptr[r]; k < ptr[r + 1]; ++k)
            g += val[k] * xs[col[k]];
          if (last) g -= ex[r] * xs[r];
          ys[r] = g;
        }
      };
      if (pool_ == nullptr) {
        kernel(0, n);
      } else {
        pool_->parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
          kernel(static_cast<std::uint32_t>(lo),
                 static_cast<std::uint32_t>(hi));
        });
      }
    }
  }

 private:
  std::uint32_t n_;
  const std::vector<double>* exit_;
  util::ThreadPool* pool_;
  BlockedCsr blocked_;
};

// ---- dense p×p helpers (p ≤ krylov_dim + 2, so cubic cost is noise) -----

std::vector<double> matmul(const std::vector<double>& a,
                           const std::vector<double>& b, int p) {
  std::vector<double> c(static_cast<std::size_t>(p) * p, 0.0);
  for (int i = 0; i < p; ++i)
    for (int k = 0; k < p; ++k) {
      const double aik = a[i * p + k];
      if (aik == 0.0) continue;
      for (int j = 0; j < p; ++j) c[i * p + j] += aik * b[k * p + j];
    }
  return c;
}

void add_scaled(std::vector<double>& dst, const std::vector<double>& src,
                double f) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += f * src[i];
}

/// Solves A·X = B (both p×p row-major) by partial-pivot LU; returns X.
std::vector<double> lu_solve(std::vector<double> a, std::vector<double> b,
                             int p) {
  for (int c = 0; c < p; ++c) {
    int best = c;
    for (int r = c + 1; r < p; ++r)
      if (std::abs(a[r * p + c]) > std::abs(a[best * p + c])) best = r;
    if (best != c) {
      for (int j = 0; j < p; ++j) std::swap(a[c * p + j], a[best * p + j]);
      for (int j = 0; j < p; ++j) std::swap(b[c * p + j], b[best * p + j]);
    }
    const double d = a[c * p + c];
    if (d == 0.0)
      throw util::NumericalError("dense_expm: singular Padé denominator");
    for (int r = c + 1; r < p; ++r) {
      const double f = a[r * p + c] / d;
      if (f == 0.0) continue;
      for (int j = c; j < p; ++j) a[r * p + j] -= f * a[c * p + j];
      for (int j = 0; j < p; ++j) b[r * p + j] -= f * b[c * p + j];
    }
  }
  for (int c = p - 1; c >= 0; --c) {
    const double d = a[c * p + c];
    for (int j = 0; j < p; ++j) {
      double s = b[c * p + j];
      for (int r = c + 1; r < p; ++r) s -= a[c * p + r] * b[r * p + j];
      b[c * p + j] = s / d;
    }
  }
  return b;
}

}  // namespace

std::vector<double> dense_expm(const std::vector<double>& a_in, int p) {
  AHS_REQUIRE(a_in.size() == static_cast<std::size_t>(p) * p,
              "dense_expm: size mismatch");
  // Padé(13) is backward stable for ‖A‖₁ ≤ θ₁₃; larger norms are halved
  // into range and squared back (Higham 2005).
  constexpr double kTheta13 = 5.371920351148152;
  std::vector<double> a = a_in;
  double norm = 0.0;
  for (int i = 0; i < p; ++i) {
    double row = 0.0;
    for (int j = 0; j < p; ++j) row += std::abs(a[i * p + j]);
    norm = std::max(norm, row);
  }
  int squarings = 0;
  if (norm > kTheta13) {
    squarings = static_cast<int>(std::ceil(std::log2(norm / kTheta13)));
    const double scale = std::ldexp(1.0, -squarings);
    for (double& x : a) x *= scale;
  }
  static constexpr double b[14] = {
      64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
      1187353796428800.0,  129060195264000.0,   10559470521600.0,
      670442572800.0,      33522128640.0,       1323241920.0,
      40840800.0,          960960.0,            16380.0,
      182.0,               1.0};
  std::vector<double> id(static_cast<std::size_t>(p) * p, 0.0);
  for (int i = 0; i < p; ++i) id[i * p + i] = 1.0;
  const std::vector<double> a2 = matmul(a, a, p);
  const std::vector<double> a4 = matmul(a2, a2, p);
  const std::vector<double> a6 = matmul(a2, a4, p);

  std::vector<double> t(static_cast<std::size_t>(p) * p, 0.0);
  add_scaled(t, a6, b[13]);
  add_scaled(t, a4, b[11]);
  add_scaled(t, a2, b[9]);
  std::vector<double> u = matmul(a6, t, p);
  add_scaled(u, a6, b[7]);
  add_scaled(u, a4, b[5]);
  add_scaled(u, a2, b[3]);
  add_scaled(u, id, b[1]);
  u = matmul(a, u, p);

  std::fill(t.begin(), t.end(), 0.0);
  add_scaled(t, a6, b[12]);
  add_scaled(t, a4, b[10]);
  add_scaled(t, a2, b[8]);
  std::vector<double> v = matmul(a6, t, p);
  add_scaled(v, a6, b[6]);
  add_scaled(v, a4, b[4]);
  add_scaled(v, a2, b[2]);
  add_scaled(v, id, b[0]);

  std::vector<double> num = v;
  add_scaled(num, u, 1.0);
  std::vector<double> den = std::move(v);
  add_scaled(den, u, -1.0);
  std::vector<double> x = lu_solve(std::move(den), std::move(num), p);
  for (int s = 0; s < squarings; ++s) x = matmul(x, x, p);
  return x;
}

namespace {

/// One full expmv drive over a prebuilt operator (so multi-interval solves
/// build the blocked transpose once).
ExpmvResult run_expmv(const AdjointOp& op, std::uint32_t n, double anorm,
                      std::span<const double> v0, double t, double tol,
                      int krylov_dim) {
  ExpmvResult res;
  res.w.assign(v0.begin(), v0.end());
  if (t <= 0.0 || n == 0) return res;
  if (tol <= 0.0) tol = 1e-12;
  const int m = std::clamp(
      krylov_dim, 1, static_cast<int>(std::min<std::uint32_t>(n, 60)));
  const int pdim = m + 2;
  const double tol_rate = tol / t;  // local error budget per unit time
  std::vector<std::vector<double>> V(
      static_cast<std::size_t>(m) + 1, std::vector<double>(n, 0.0));
  std::vector<double> p_vec(n), w_next(n);
  std::vector<double> H(static_cast<std::size_t>(pdim) * pdim, 0.0);
  double t_done = 0.0;
  double tau = t;
  int outer = 0;
  while (t_done < t) {
    if (++outer > 100000)
      throw util::NumericalError("expmv: step control failed to advance");
    double beta = 0.0;
    for (double x : res.w) beta += x * x;
    beta = std::sqrt(beta);
    if (beta == 0.0) break;
    for (std::uint32_t s = 0; s < n; ++s) V[0][s] = res.w[s] / beta;
    std::fill(H.begin(), H.end(), 0.0);

    // Arnoldi with modified Gram–Schmidt.
    int mb = m;
    bool happy = false;
    for (int j = 0; j < m; ++j) {
      op.apply(V[j], p_vec);
      ++res.matvecs;
      for (int i = 0; i <= j; ++i) {
        double h = 0.0;
        for (std::uint32_t s = 0; s < n; ++s) h += V[i][s] * p_vec[s];
        H[i * pdim + j] = h;
        for (std::uint32_t s = 0; s < n; ++s) p_vec[s] -= h * V[i][s];
      }
      double hs = 0.0;
      for (double x : p_vec) hs += x * x;
      hs = std::sqrt(hs);
      if (hs <= 1e-14 * std::max(1.0, anorm)) {
        // Happy breakdown: the subspace is invariant, the small
        // exponential is exact — take the rest of the horizon in one step.
        happy = true;
        mb = j + 1;
        break;
      }
      H[(j + 1) * pdim + j] = hs;
      for (std::uint32_t s = 0; s < n; ++s) V[j + 1][s] = p_vec[s] / hs;
    }
    double avnorm = 0.0;
    if (!happy) {
      op.apply(V[m], p_vec);
      ++res.matvecs;
      for (double x : p_vec) avnorm += x * x;
      avnorm = std::sqrt(avnorm);
    }

    double tau_step = happy ? t - t_done : std::min(tau, t - t_done);
    const int pb = mb + 2;
    std::vector<double> F;
    double err_loc = 0.0;
    for (;;) {
      // Augmented (mb+2)² matrix (Sidje 1998): the two extra columns turn
      // exp into the φ-functions the error estimate reads off rows mb and
      // mb+1 of the first column.
      std::vector<double> Hb(static_cast<std::size_t>(pb) * pb, 0.0);
      for (int i = 0; i <= mb && i < pb; ++i)
        for (int j = 0; j < mb; ++j)
          Hb[i * pb + j] = tau_step * H[i * pdim + j];
      Hb[(mb + 1) * pb + mb] = tau_step * 1.0;
      F = dense_expm(Hb, pb);
      if (happy) break;
      const double err1 = std::abs(beta * F[mb * pb + 0]);
      const double err2 = std::abs(beta * F[(mb + 1) * pb + 0]) * avnorm;
      if (err1 > 10.0 * err2)
        err_loc = err2;
      else if (err1 > err2)
        err_loc = err1 * err2 / (err1 - err2);
      else
        err_loc = err1;
      if (err_loc <= 1.2 * tau_step * tol_rate) break;
      tau_step *= 0.5;
      if (tau_step < t * 1e-12)
        throw util::NumericalError("expmv: step size collapsed");
    }

    const int mx = happy ? mb : mb + 1;
    std::fill(w_next.begin(), w_next.end(), 0.0);
    for (int i = 0; i < mx; ++i) {
      const double f = beta * F[i * pb + 0];
      if (f == 0.0) continue;
      const double* vi = V[i].data();
      for (std::uint32_t s = 0; s < n; ++s) w_next[s] += f * vi[s];
    }
    res.w.swap(w_next);
    t_done += tau_step;
    if (!happy) {
      const double grow =
          0.9 * std::pow(1.2 * tau_step * tol_rate /
                             std::max(err_loc, 1e-300),
                         1.0 / static_cast<double>(m));
      tau = tau_step * std::clamp(grow, 0.2, 5.0);
    }
  }
  return res;
}

}  // namespace

ExpmvResult expmv(const MarkovChain& chain, std::span<const double> v,
                  double t, double tol, int krylov_dim,
                  util::ThreadPool* pool) {
  AHS_REQUIRE(v.size() == chain.num_states, "expmv: vector size mismatch");
  const AdjointOp op(chain, pool);
  const double anorm = 2.0 * chain.max_exit_rate();
  return run_expmv(op, chain.num_states, anorm, v, t, tol, krylov_dim);
}

double expmv_tol_floor(double anorm, double t) {
  // One matvec loses ~ε_mach·‖A‖·‖x‖; over a horizon the losses compound
  // proportionally to anorm·t (the number of unit-norm sub-steps the
  // controller needs).  The factor 4 covers the Gram–Schmidt and dense-expm
  // round-off on top of the products — deliberately a *lower* bound on the
  // real error, so a flagged solve is certainly degraded.
  constexpr double kEps = 2.220446049250313e-16;
  return 4.0 * kEps * std::max(1.0, anorm * t);
}

TransientSolution solve_transient_krylov(const MarkovChain& chain,
                                         std::span<const double> reward,
                                         std::span<const double> time_points,
                                         const UniformizationOptions& options) {
  AHS_REQUIRE(reward.size() == chain.num_states,
              "reward vector size mismatch");
  AHS_REQUIRE(!time_points.empty(), "need at least one time point");
  double prev_t = 0.0;
  for (double t : time_points) {
    AHS_REQUIRE(t >= prev_t,
                "time points must be non-decreasing and non-negative");
    prev_t = t;
  }

  AHS_SPAN("uniformization.krylov");
  bool on = false;
  util::Counter solves, iterations;
  if (util::MetricsRegistry* reg = util::MetricsRegistry::global()) {
    on = true;
    solves = reg->counter("ctmc.uniformization.solves");
    iterations = reg->counter("ctmc.uniformization.iterations");
    solves.inc();
  }

  const std::uint32_t n = chain.num_states;
  const double tol =
      options.krylov_tol > 0.0 ? options.krylov_tol : options.epsilon;
  const AdjointOp op(chain, options.pool);
  const double anorm = 2.0 * chain.max_exit_rate();

  TransientSolution sol;
  sol.time_points.assign(time_points.begin(), time_points.end());

  std::vector<double> pi = chain.initial;
  double pi_time = 0.0;
  for (double t : time_points) {
    const double dt = t - pi_time;
    if (dt > 0.0) {
      // Tolerance-floor check (per interval — the floor grows with the
      // horizon): a request below the round-off floor is recorded as a
      // degraded certification, never silently passed.  The solve itself
      // still runs at the requested tolerance so results are unchanged.
      const double floor = expmv_tol_floor(anorm, dt);
      if (tol < floor) {
        sol.tol_floor_hit = true;
        sol.achievable_tol = std::max(sol.achievable_tol, floor);
      }
      ExpmvResult r = run_expmv(op, n, anorm, pi, dt, tol,
                                options.krylov_dim);
      pi = std::move(r.w);
      sol.total_iterations += r.matvecs;
      double total = 0.0;
      for (double p : pi) total += p;
      if (total > 0.0 && std::abs(total - 1.0) < 1e-6)
        for (double& p : pi) p /= total;
      pi_time = t;
    }
    double expect = 0.0;
    for (std::uint32_t s = 0; s < n; ++s) expect += pi[s] * reward[s];
    sol.expected_reward.push_back(expect);
    sol.distributions.push_back(pi);
  }
  if (on) iterations.add(sol.total_iterations);
  if (sol.tol_floor_hit) {
    // The explicit signal the 1e-12 tail certifications need: the
    // estimator's "error ≤ tol" claim is only good to the round-off floor.
    if (util::MetricsRegistry* reg = util::MetricsRegistry::global()) {
      reg->counter("ctmc.expmv.tol_floor_hits").inc();
      reg->gauge("ctmc.expmv.tol_floor").set(sol.achievable_tol);
    }
    AHS_LOGM_WARN("ctmc")
        << "krylov: requested tolerance " << tol
        << " is below the round-off floor " << sol.achievable_tol
        << " for this solve (‖Qᵀ‖·t ≈ " << anorm * time_points.back()
        << "); the certification is degraded to the floor — use the "
           "adaptive/standard engine for tails beyond it";
  }
  return sol;
}

}  // namespace ctmc
