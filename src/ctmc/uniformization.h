// Transient CTMC solution by uniformization (Jensen's method).
//
// π(t) = Σ_k  Poisson(Λt; k) · π(0) P^k,   P = I + Q/Λ,   Λ ≥ max exit rate.
//
// Poisson weights are computed with a Fox–Glynn-style stable scheme
// (log-space mode anchoring, left/right truncation at a configurable mass
// tolerance), so horizons with Λt in the thousands are fine.  Multiple time
// points are solved incrementally: π(t_{i+1}) starts from π(t_i).
//
// Three solver engines share this interface (UniformizationOptions::solver):
//
//   kStandard  the fixed-Λ loop above — the bitwise reference every other
//              engine is certified against;
//   kAdaptive  the same loop with two iteration-count reducers: a
//              support-based rate ramp (early phases whose reachable
//              support has small exit rates run at a smaller Λ) and a
//              quasi-stationary flux-plateau extrapolation that closes the
//              post-mixing tail of the Poisson window analytically (the
//              docs/PERFORMANCE.md "Iteration counts" section quantifies
//              both);
//   kKrylov    an Arnoldi expmv solver (ctmc/expmv.h) — an independent
//              numerical method used as the cross-check oracle for the
//              adaptive path.
//
// This solver is what replaces Möbius simulation for the paper's smallest
// probabilities (S(t) ~ 1e-13 for λ = 1e-7/h), which no Monte Carlo scheme
// reaches at the paper's stated batch counts.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ctmc/chain.h"

namespace util {
class ThreadPool;
}

namespace ctmc {

struct PoissonWindow;

/// Hashes the exact (λ, ε) bit-pattern pair of a cache key through
/// util::hash_mix (defined in the .cpp so this header stays light).
struct PoissonKeyHash {
  std::size_t operator()(
      const std::pair<std::uint64_t, std::uint64_t>& key) const;
};

/// Thread-safe cross-solve cache of Poisson windows, keyed on the exact bit
/// patterns of (λ = Λ·Δt, ε).  One cache shared across the points of a
/// sweep carries each window — weights plus left/right truncation bounds —
/// from the first point that computes it to every neighbor that asks for
/// the same key, instead of re-expanding thousands of weights per point.
///
/// Exact keys only match if the uniformization rates match, so setting a
/// cache also switches the solvers to a *quantized* Λ (rounded up to the
/// next 2⁻⁸ mantissa step, < 0.4 % overshoot): neighboring sweep points
/// whose max exit rates differ only in low-order bits then land on the
/// same key.  A cached window is byte-identical to a fresh computation for
/// its key, so solves are deterministic and independent of cache history,
/// pool size, and sweep thread count — but a cache-enabled solve is not
/// bitwise comparable to a cache-less one (different Λ).
class PoissonCache {
 public:
  /// The cached window for (lambda, epsilon), or nullptr.  Counts the
  /// lookup toward hits()/misses().
  std::shared_ptr<const PoissonWindow> find(double lambda,
                                            double epsilon) const;
  void store(double lambda, double epsilon,
             std::shared_ptr<const PoissonWindow> window);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// hits / (hits + misses), 0 when never consulted.
  double hit_rate() const;

 private:
  mutable std::mutex mutex_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>,
                     std::shared_ptr<const PoissonWindow>, PoissonKeyHash>
      windows_;
};

/// What a completed adaptive solve publishes for its sweep neighbors: the
/// evidence that one (structure, time-grid) group's quasi-stationary
/// plateau has been reached, so a follower can confirm its own plateau
/// against a converged neighbor instead of accumulating the slow
/// self-evidence from scratch (see UniformizationOptions::warm_cache).
struct WarmStart {
  /// Normalized transient shape at the plateau: transient entries divided
  /// by the remaining transient mass, absorbing entries zero.
  std::vector<double> shape;
  /// DTMC step index at which the publishing solve confirmed its plateau.
  std::uint64_t fired_at = 0;
};

/// Thread-safe cross-solve cache of WarmStart entries, keyed on a
/// caller-chosen 64-bit identity (the sweep engine keys on the structure
/// group and the time grid).  store() is first-writer-wins, so with the
/// sweep's cold-builds-before-followers barrier the entry every follower
/// observes is deterministic for any thread count.
class WarmStartCache {
 public:
  /// The cached entry, or nullptr.  Counts toward hits()/misses().
  std::shared_ptr<const WarmStart> find(std::uint64_t key) const;
  /// Publishes an entry; an existing entry for `key` wins and is kept.
  void store(std::uint64_t key, std::shared_ptr<const WarmStart> entry);

  /// Every entry currently in the cache, sorted by key (deterministic
  /// order).  The sweep engine persists these into its checkpoint
  /// directory so a resumed sweep rewarms followers whose structure
  /// group's cold build was *restored* (a result file holds no
  /// distribution, so without the persisted shapes those followers would
  /// fall back to the cold plateau criteria).
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const WarmStart>>>
  entries() const;
  std::size_t size() const;

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// hits / (hits + misses), 0 when never consulted.
  double hit_rate() const;

 private:
  mutable std::mutex mutex_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::unordered_map<std::uint64_t, std::shared_ptr<const WarmStart>>
      entries_;
};

/// Transient solver engine (see the file comment).  kStandard stays
/// byte-identical to the historical solver; kAdaptive trades last-ulp
/// equality for a large iteration-count reduction on absorption-dominated
/// chains; kKrylov is an independent method for cross-checking.
enum class TransientSolver : std::uint8_t { kStandard, kAdaptive, kKrylov };

const char* to_string(TransientSolver s);

struct UniformizationOptions {
  /// Truncation mass tolerance: left+right discarded Poisson mass ≤ epsilon.
  double epsilon = 1e-12;
  /// Uniformization rate safety factor (Λ = factor · max exit rate).
  double rate_factor = 1.02;
  /// Steady-state detection tolerance on ‖πP^k − πP^{k-1}‖∞ (0 disables).
  double steady_state_tol = 1e-14;
  /// Optional pool for the per-iteration matrix-vector products.  The solver
  /// multiplies over the transposed DTMC row-partitioned, which accumulates
  /// every output entry in the sequential order — results are bitwise
  /// independent of the pool size.  nullptr = sequential.
  util::ThreadPool* pool = nullptr;
  /// Optional shared Poisson-window cache (see PoissonCache).  Setting it
  /// quantizes the uniformization rate so adjacent solves share windows;
  /// results stay deterministic but differ in low-order bits from a
  /// cache-less solve.  The sweep engine wires one per sweep.
  PoissonCache* poisson_cache = nullptr;

  /// Engine selection.  kStandard (default) keeps the historical behavior
  /// bit-for-bit; callers that can tolerate the documented extrapolation
  /// error (ahs::StudyOptions does) select kAdaptive.
  TransientSolver solver = TransientSolver::kStandard;

  // ---- kAdaptive knobs ------------------------------------------------

  /// Relative flatness tolerance for the quasi-stationary flux plateau:
  /// |diff_k − diff_{k−1}| ≤ qs_rel_tol·diff_k counts as a stable step.
  double qs_rel_tol = 1e-4;
  /// Consecutive stable steps (plus a lookback check over 2× this span)
  /// required before the plateau extrapolation fires on a cold solve.
  int qs_confirm = 32;
  /// Consecutive stable steps required once the current shape has been
  /// validated against a warm-start neighbor (the neighbor's converged
  /// shape replaces the slow self-evidence).
  int qs_confirm_warm = 4;
  /// ∞-norm tolerance for validating the normalized transient shape
  /// against a warm-start entry.
  double warm_shape_tol = 1e-3;
  /// Optional shared warm-start cache; consulted under warm_key.
  WarmStartCache* warm_cache = nullptr;
  /// Cache key for warm_cache lookups (the caller encodes the structure
  /// group and time grid; the solver mixes in the interval index).
  std::uint64_t warm_key = 0;
  /// Publish this solve's plateau evidence to warm_cache (the sweep engine
  /// sets it on each structure group's cold build only, so the published
  /// entry is deterministic for any thread count).
  bool warm_publish = false;

  // ---- kKrylov knobs --------------------------------------------------

  /// Arnoldi subspace dimension.
  int krylov_dim = 30;
  /// Local error tolerance per unit time (0 = use epsilon).  Note this is
  /// an *absolute* tolerance on the distribution vector; a request below
  /// the solve's round-off floor (≈ ε_mach·‖Qᵀ‖·t) cannot be honoured —
  /// the solver detects that, raises TransientSolution::tol_floor_hit,
  /// logs a warning, and reports the achievable floor instead of silently
  /// passing a degraded certification (see ctmc::expmv_tol_floor).
  double krylov_tol = 0.0;
};

struct TransientSolution {
  std::vector<double> time_points;
  /// expected_reward[i] = Σ_s π(t_i)[s] · reward[s].
  std::vector<double> expected_reward;
  /// Full distributions at each time point (row per time point).
  std::vector<std::vector<double>> distributions;
  /// Matrix-vector products performed (the unit every engine shares; the
  /// adaptive and Krylov engines exist to make this number small).
  std::uint64_t total_iterations = 0;
  /// kAdaptive: quasi-stationary extrapolations fired (≤ #intervals).
  std::uint64_t qs_extrapolations = 0;
  /// kAdaptive: rate-ramp segments run before the final full-rate phase.
  std::uint64_t ramp_segments = 0;
  /// kAdaptive: the solve validated its shape against a warm-start entry.
  bool warm_start_hit = false;
  /// kKrylov: the requested tolerance sat below the solver's achievable
  /// absolute-error floor for this solve's magnitude (ε_mach·‖Qᵀ‖·t); the
  /// certification is only good to `achievable_tol`, not the request.
  /// Also surfaced as the ctmc.expmv.tol_floor_hits counter, the
  /// ctmc.expmv.tol_floor gauge, and a warning log line.
  bool tol_floor_hit = false;
  /// kKrylov: the round-off floor of this solve (max over its intervals);
  /// 0 when the requested tolerance was achievable.
  double achievable_tol = 0.0;
};

/// Expected reward at each (strictly increasing, non-negative) time point.
TransientSolution solve_transient(const MarkovChain& chain,
                                  std::span<const double> reward,
                                  std::span<const double> time_points,
                                  const UniformizationOptions& options = {});

struct AccumulatedSolution {
  std::vector<double> time_points;
  /// accumulated[i] = E[ ∫₀^{t_i} reward(X_u) du ].
  std::vector<double> accumulated;
  std::uint64_t total_iterations = 0;
};

/// Interval-of-time (accumulated) rewards:
///   E[∫₀ᵗ r(X_u) du] = (1/Λ) Σ_k P(N_t ≥ k+1) · ⟨π P^k, r⟩
/// where N_t is the uniformized Poisson count — the standard accumulated-
/// reward uniformization.  Time points are handled incrementally:
/// the distribution is advanced to t_i with solve_transient's machinery
/// and each interval's accumulation starts from it.  Steady-state cutoff
/// shares solve_transient's detector: once the DTMC iterate converges the
/// remaining survival-weighted terms are closed in one scalar pass.
AccumulatedSolution solve_accumulated(const MarkovChain& chain,
                                      std::span<const double> reward,
                                      std::span<const double> time_points,
                                      const UniformizationOptions& options =
                                          {});

/// Poisson(λ) weights for k in [left, right] with total discarded mass
/// ≤ epsilon; weights are normalized to sum to 1 over the window.
/// Exposed for testing.
struct PoissonWindow {
  std::uint64_t left = 0;
  std::uint64_t right = 0;
  std::vector<double> weight;  ///< weight[k - left]
};
PoissonWindow poisson_window(double lambda, double epsilon);

}  // namespace ctmc
