// Transient CTMC solution by uniformization (Jensen's method).
//
// π(t) = Σ_k  Poisson(Λt; k) · π(0) P^k,   P = I + Q/Λ,   Λ ≥ max exit rate.
//
// Poisson weights are computed with a Fox–Glynn-style stable scheme
// (log-space mode anchoring, left/right truncation at a configurable mass
// tolerance), so horizons with Λt in the thousands are fine.  Multiple time
// points are solved incrementally: π(t_{i+1}) starts from π(t_i).
//
// This solver is what replaces Möbius simulation for the paper's smallest
// probabilities (S(t) ~ 1e-13 for λ = 1e-7/h), which no Monte Carlo scheme
// reaches at the paper's stated batch counts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "ctmc/chain.h"

namespace util {
class ThreadPool;
}

namespace ctmc {

struct PoissonWindow;

/// Thread-safe cross-solve cache of Poisson windows, keyed on the exact bit
/// patterns of (λ = Λ·Δt, ε).  One cache shared across the points of a
/// sweep carries each window — weights plus left/right truncation bounds —
/// from the first point that computes it to every neighbor that asks for
/// the same key, instead of re-expanding thousands of weights per point.
///
/// Exact keys only match if the uniformization rates match, so setting a
/// cache also switches the solvers to a *quantized* Λ (rounded up to the
/// next 2⁻⁸ mantissa step, < 0.4 % overshoot): neighboring sweep points
/// whose max exit rates differ only in low-order bits then land on the
/// same key.  A cached window is byte-identical to a fresh computation for
/// its key, so solves are deterministic and independent of cache history,
/// pool size, and sweep thread count — but a cache-enabled solve is not
/// bitwise comparable to a cache-less one (different Λ).
class PoissonCache {
 public:
  /// The cached window for (lambda, epsilon), or nullptr.  Counts the
  /// lookup toward hits()/misses().
  std::shared_ptr<const PoissonWindow> find(double lambda,
                                            double epsilon) const;
  void store(double lambda, double epsilon,
             std::shared_ptr<const PoissonWindow> window);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// hits / (hits + misses), 0 when never consulted.
  double hit_rate() const;

 private:
  mutable std::mutex mutex_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::shared_ptr<const PoissonWindow>>
      windows_;
};

struct UniformizationOptions {
  /// Truncation mass tolerance: left+right discarded Poisson mass ≤ epsilon.
  double epsilon = 1e-12;
  /// Uniformization rate safety factor (Λ = factor · max exit rate).
  double rate_factor = 1.02;
  /// Steady-state detection tolerance on ‖πP^k − πP^{k-1}‖∞ (0 disables).
  double steady_state_tol = 1e-14;
  /// Optional pool for the per-iteration matrix-vector products.  The solver
  /// multiplies over the transposed DTMC row-partitioned, which accumulates
  /// every output entry in the sequential order — results are bitwise
  /// independent of the pool size.  nullptr = sequential.
  util::ThreadPool* pool = nullptr;
  /// Optional shared Poisson-window cache (see PoissonCache).  Setting it
  /// quantizes the uniformization rate so adjacent solves share windows;
  /// results stay deterministic but differ in low-order bits from a
  /// cache-less solve.  The sweep engine wires one per sweep.
  PoissonCache* poisson_cache = nullptr;
};

struct TransientSolution {
  std::vector<double> time_points;
  /// expected_reward[i] = Σ_s π(t_i)[s] · reward[s].
  std::vector<double> expected_reward;
  /// Full distributions at each time point (row per time point).
  std::vector<std::vector<double>> distributions;
  std::uint64_t total_iterations = 0;
};

/// Expected reward at each (strictly increasing, non-negative) time point.
TransientSolution solve_transient(const MarkovChain& chain,
                                  std::span<const double> reward,
                                  std::span<const double> time_points,
                                  const UniformizationOptions& options = {});

struct AccumulatedSolution {
  std::vector<double> time_points;
  /// accumulated[i] = E[ ∫₀^{t_i} reward(X_u) du ].
  std::vector<double> accumulated;
  std::uint64_t total_iterations = 0;
};

/// Interval-of-time (accumulated) rewards:
///   E[∫₀ᵗ r(X_u) du] = (1/Λ) Σ_k P(N_t ≥ k+1) · ⟨π P^k, r⟩
/// where N_t is the uniformized Poisson count — the standard accumulated-
/// reward uniformization.  Time points are handled incrementally:
/// the distribution is advanced to t_i with solve_transient's machinery
/// and each interval's accumulation starts from it.
AccumulatedSolution solve_accumulated(const MarkovChain& chain,
                                      std::span<const double> reward,
                                      std::span<const double> time_points,
                                      const UniformizationOptions& options =
                                          {});

/// Poisson(λ) weights for k in [left, right] with total discarded mass
/// ≤ epsilon; weights are normalized to sum to 1 over the window.
/// Exposed for testing.
struct PoissonWindow {
  std::uint64_t left = 0;
  std::uint64_t right = 0;
  std::vector<double> weight;  ///< weight[k - left]
};
PoissonWindow poisson_window(double lambda, double epsilon);

}  // namespace ctmc
