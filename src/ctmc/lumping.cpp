#include "ctmc/lumping.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "util/error.h"

namespace ctmc {

namespace {

/// Renumbers arbitrary block labels to dense 0..m-1.
std::uint32_t normalize(std::vector<std::uint32_t>& blocks) {
  std::map<std::uint32_t, std::uint32_t> remap;
  for (std::uint32_t& b : blocks) {
    const auto [it, inserted] =
        remap.emplace(b, static_cast<std::uint32_t>(remap.size()));
    b = it->second;
  }
  return static_cast<std::uint32_t>(remap.size());
}

}  // namespace

LumpingResult lump_ordinary(const MarkovChain& chain,
                            const std::vector<std::uint32_t>&
                                initial_partition,
                            const LumpingOptions& options) {
  const std::uint32_t n = chain.num_states;
  AHS_REQUIRE(initial_partition.size() == n,
              "initial partition size mismatch");
  AHS_REQUIRE(options.tolerance >= 0.0, "tolerance must be >= 0");

  LumpingResult res;
  res.block_of = initial_partition;
  std::uint32_t m = normalize(res.block_of);

  // Refinement loop: recompute each state's signature — the vector of
  // rate sums into every current block — and split blocks whose members
  // disagree.  Repeat until no split occurs.
  std::vector<double> sums(m, 0.0);
  bool changed = true;
  while (changed) {
    AHS_REQUIRE(++res.passes <= options.max_passes,
                "lumping refinement did not converge");
    changed = false;

    // signature[s]: sorted (block, rate) pairs with near-equal rates
    // quantized through the comparator below.
    std::vector<std::vector<std::pair<std::uint32_t, double>>> signature(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      sums.assign(m, 0.0);
      const auto cols = chain.rates.row_cols(s);
      const auto vals = chain.rates.row_values(s);
      for (std::size_t k = 0; k < cols.size(); ++k)
        sums[res.block_of[cols[k]]] += vals[k];
      // Exclude the state's own block: ordinary lumpability constrains
      // only the rates *leaving* the block (within-block moves collapse).
      for (std::uint32_t b = 0; b < m; ++b)
        if (b != res.block_of[s] && sums[b] > 0.0)
          signature[s].emplace_back(b, sums[b]);
    }

    auto equal_sig = [&](std::uint32_t a, std::uint32_t b) {
      const auto& sa = signature[a];
      const auto& sb = signature[b];
      if (sa.size() != sb.size()) return false;
      for (std::size_t i = 0; i < sa.size(); ++i) {
        if (sa[i].first != sb[i].first) return false;
        const double x = sa[i].second, y = sb[i].second;
        if (std::abs(x - y) >
            options.tolerance * std::max({1.0, std::abs(x), std::abs(y)}))
          return false;
      }
      return true;
    };

    // Within each block, group states by signature equality.
    std::vector<std::vector<std::uint32_t>> members(m);
    for (std::uint32_t s = 0; s < n; ++s)
      members[res.block_of[s]].push_back(s);

    std::uint32_t next_label = m;
    for (std::uint32_t b = 0; b < m; ++b) {
      auto& states = members[b];
      if (states.size() <= 1) continue;
      // Representative-based grouping (quadratic in block size in the
      // worst case; blocks are small in the symmetric models this serves).
      std::vector<std::uint32_t> reps;
      std::vector<std::uint32_t> group_label;
      for (std::uint32_t s : states) {
        bool found = false;
        for (std::size_t g = 0; g < reps.size(); ++g) {
          if (equal_sig(s, reps[g])) {
            if (group_label[g] != res.block_of[s]) {
              res.block_of[s] = group_label[g];
              changed = true;
            }
            found = true;
            break;
          }
        }
        if (!found) {
          reps.push_back(s);
          // First group keeps the old label; later groups get fresh ones.
          const std::uint32_t label =
              reps.size() == 1 ? b : next_label++;
          group_label.push_back(label);
          if (label != res.block_of[s]) {
            res.block_of[s] = label;
            changed = true;
          }
        }
      }
    }
    if (changed) {
      m = normalize(res.block_of);
      sums.assign(m, 0.0);
    }
  }

  // Build the quotient from one representative per block.
  res.num_blocks = m;
  std::vector<std::uint32_t> rep(m, UINT32_MAX);
  for (std::uint32_t s = 0; s < n; ++s)
    if (rep[res.block_of[s]] == UINT32_MAX) rep[res.block_of[s]] = s;

  std::vector<Triplet> triplets;
  for (std::uint32_t b = 0; b < m; ++b) {
    const std::uint32_t s = rep[b];
    sums.assign(m, 0.0);
    const auto cols = chain.rates.row_cols(s);
    const auto vals = chain.rates.row_values(s);
    for (std::size_t k = 0; k < cols.size(); ++k)
      sums[res.block_of[cols[k]]] += vals[k];
    for (std::uint32_t c = 0; c < m; ++c)
      if (c != b && sums[c] > 0.0) triplets.push_back({b, c, sums[c]});
  }
  res.quotient.num_states = m;
  res.quotient.rates = CsrMatrix::from_triplets(m, m, std::move(triplets));
  res.quotient.exit_rate.resize(m);
  for (std::uint32_t b = 0; b < m; ++b)
    res.quotient.exit_rate[b] = res.quotient.rates.row_sum(b);
  res.quotient.initial.assign(m, 0.0);
  for (std::uint32_t s = 0; s < n; ++s)
    res.quotient.initial[res.block_of[s]] += chain.initial[s];
  res.quotient.validate();
  return res;
}

LumpingResult lump_by_reward(const MarkovChain& chain,
                             const std::vector<double>& reward,
                             const LumpingOptions& options) {
  AHS_REQUIRE(reward.size() == chain.num_states, "reward size mismatch");
  // Group by quantized reward value.
  std::map<long long, std::uint32_t> value_block;
  std::vector<std::uint32_t> partition(chain.num_states);
  for (std::uint32_t s = 0; s < chain.num_states; ++s) {
    const auto key = static_cast<long long>(
        std::llround(reward[s] / std::max(options.tolerance, 1e-12)));
    const auto [it, inserted] = value_block.emplace(
        key, static_cast<std::uint32_t>(value_block.size()));
    partition[s] = it->second;
  }
  return lump_ordinary(chain, partition, options);
}

}  // namespace ctmc
