#include "ctmc/sparse.h"

#include <algorithm>

#include "util/error.h"

namespace ctmc {

CsrMatrix CsrMatrix::from_triplets(std::uint32_t rows, std::uint32_t cols,
                                   std::vector<Triplet> triplets) {
  for (const auto& t : triplets) {
    AHS_REQUIRE(t.row < rows, "triplet row out of range");
    AHS_REQUIRE(t.col < cols, "triplet column out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_.reserve(triplets.size());
  m.val_.reserve(triplets.size());

  std::size_t i = 0;
  for (std::uint32_t r = 0; r < rows; ++r) {
    m.row_ptr_[r] = m.col_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      const std::uint32_t c = triplets[i].col;
      double v = 0.0;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.col_.push_back(c);
      m.val_.push_back(v);
    }
  }
  m.row_ptr_[rows] = m.col_.size();
  return m;
}

std::span<const std::uint32_t> CsrMatrix::row_cols(std::uint32_t r) const {
  AHS_REQUIRE(r < rows_, "row out of range");
  return {col_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

std::span<const double> CsrMatrix::row_values(std::uint32_t r) const {
  AHS_REQUIRE(r < rows_, "row out of range");
  return {val_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

void CsrMatrix::left_multiply(std::span<const double> x,
                              std::span<double> y) const {
  AHS_REQUIRE(x.size() == rows_ && y.size() == cols_,
              "left_multiply dimension mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::uint32_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      y[col_[k]] += xr * val_[k];
  }
}

void CsrMatrix::right_multiply(std::span<const double> x,
                               std::span<double> y) const {
  AHS_REQUIRE(x.size() == cols_ && y.size() == rows_,
              "right_multiply dimension mismatch");
  for (std::uint32_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      acc += val_[k] * x[col_[k]];
    y[r] = acc;
  }
}

double CsrMatrix::row_sum(std::uint32_t r) const {
  AHS_REQUIRE(r < rows_, "row out of range");
  double s = 0.0;
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) s += val_[k];
  return s;
}

}  // namespace ctmc
