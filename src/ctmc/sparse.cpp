#include "ctmc/sparse.h"

#include <algorithm>

#include "util/error.h"
#include "util/thread_pool.h"

namespace ctmc {

CsrMatrix CsrMatrix::from_triplets(std::uint32_t rows, std::uint32_t cols,
                                   std::vector<Triplet> triplets) {
  for (const auto& t : triplets) {
    AHS_REQUIRE(t.row < rows, "triplet row out of range");
    AHS_REQUIRE(t.col < cols, "triplet column out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_.reserve(triplets.size());
  m.val_.reserve(triplets.size());

  std::size_t i = 0;
  for (std::uint32_t r = 0; r < rows; ++r) {
    m.row_ptr_[r] = m.col_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      const std::uint32_t c = triplets[i].col;
      double v = 0.0;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.col_.push_back(c);
      m.val_.push_back(v);
    }
  }
  m.row_ptr_[rows] = m.col_.size();
  return m;
}

std::span<const std::uint32_t> CsrMatrix::row_cols(std::uint32_t r) const {
  AHS_REQUIRE(r < rows_, "row out of range");
  return {col_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

std::span<const double> CsrMatrix::row_values(std::uint32_t r) const {
  AHS_REQUIRE(r < rows_, "row out of range");
  return {val_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  // Counting sort by column keeps each transposed row ordered by the
  // original row index (the accumulation-order guarantee in the header).
  for (std::uint32_t c : col_) ++t.row_ptr_[c + 1];
  for (std::uint32_t c = 0; c < cols_; ++c) t.row_ptr_[c + 1] += t.row_ptr_[c];
  t.col_.resize(col_.size());
  t.val_.resize(val_.size());
  std::vector<std::size_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::uint32_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t slot = cursor[col_[k]]++;
      t.col_[slot] = r;
      t.val_[slot] = val_[k];
    }
  }
  return t;
}

std::vector<std::uint32_t> CsrMatrix::row_blocks(std::size_t blocks) const {
  std::vector<std::uint32_t> bounds;
  bounds.reserve(blocks + 1);
  bounds.push_back(0);
  const std::size_t nnz = col_.size();
  for (std::size_t b = 1; b < blocks; ++b) {
    const std::size_t target = nnz * b / blocks;
    const auto it = std::lower_bound(row_ptr_.begin(), row_ptr_.end(), target);
    auto r = static_cast<std::uint32_t>(it - row_ptr_.begin());
    r = std::max(r, bounds.back());  // keep boundaries monotone
    bounds.push_back(std::min(r, rows_));
  }
  bounds.push_back(rows_);
  return bounds;
}

void CsrMatrix::left_multiply(std::span<const double> x,
                              std::span<double> y) const {
  AHS_REQUIRE(x.size() == rows_ && y.size() == cols_,
              "left_multiply dimension mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::uint32_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      y[col_[k]] += xr * val_[k];
  }
}

void CsrMatrix::right_multiply(std::span<const double> x,
                               std::span<double> y) const {
  AHS_REQUIRE(x.size() == cols_ && y.size() == rows_,
              "right_multiply dimension mismatch");
  for (std::uint32_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      acc += val_[k] * x[col_[k]];
    y[r] = acc;
  }
}

void CsrMatrix::left_multiply(std::span<const double> x, std::span<double> y,
                              util::ThreadPool& pool) const {
  AHS_REQUIRE(x.size() == rows_ && y.size() == cols_,
              "left_multiply dimension mismatch");
  const std::vector<std::uint32_t> bounds = row_blocks(pool.size() + 1);
  const std::size_t blocks = bounds.size() - 1;
  if (blocks <= 1) {
    left_multiply(x, y);
    return;
  }
  // Private scatter buffer per block, reduced in block order below.
  std::vector<std::vector<double>> partial(blocks);
  pool.parallel_for(0, blocks, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      partial[b].assign(cols_, 0.0);
      double* out = partial[b].data();
      for (std::uint32_t r = bounds[b]; r < bounds[b + 1]; ++r) {
        const double xr = x[r];
        if (xr == 0.0) continue;
        for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
          out[col_[k]] += xr * val_[k];
      }
    }
  });
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t b = 0; b < blocks; ++b)
    for (std::uint32_t c = 0; c < cols_; ++c) y[c] += partial[b][c];
}

void CsrMatrix::right_multiply(std::span<const double> x, std::span<double> y,
                               util::ThreadPool& pool) const {
  AHS_REQUIRE(x.size() == cols_ && y.size() == rows_,
              "right_multiply dimension mismatch");
  const std::vector<std::uint32_t> bounds = row_blocks(pool.size() + 1);
  pool.parallel_for(0, bounds.size() - 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      for (std::uint32_t r = bounds[b]; r < bounds[b + 1]; ++r) {
        double acc = 0.0;
        for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
          acc += val_[k] * x[col_[k]];
        y[r] = acc;
      }
    }
  });
}

BlockedCsr make_blocked(const CsrMatrix& m, std::uint32_t block_cols) {
  AHS_REQUIRE(block_cols >= 1, "block_cols must be >= 1");
  BlockedCsr b;
  b.rows = m.rows();
  const std::uint32_t cols = std::max<std::uint32_t>(m.cols(), 1);
  const std::size_t blocks = (cols + block_cols - 1) / block_cols;
  b.bounds.reserve(blocks + 1);
  for (std::size_t i = 0; i < blocks; ++i)
    b.bounds.push_back(static_cast<std::uint32_t>(i * block_cols));
  b.bounds.push_back(m.cols());

  const std::span<const std::size_t> row_ptr = m.row_ptr();
  const std::span<const std::uint32_t> col = m.col_index();
  const std::span<const double> val = m.values();
  b.row_ptr.assign(blocks * (b.rows + 1), 0);
  b.col.resize(col.size());
  b.val.resize(val.size());

  // Entries of a CSR row are column-sorted, so each row splits into one
  // contiguous segment per block; a single pass with a per-row cursor
  // copies them out block-major.
  std::size_t out = 0;
  std::vector<std::size_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::uint32_t hi = b.bounds[blk + 1];
    std::size_t* ptr = b.row_ptr.data() + blk * (b.rows + 1);
    for (std::uint32_t r = 0; r < b.rows; ++r) {
      ptr[r] = out;
      std::size_t k = cursor[r];
      while (k < row_ptr[r + 1] && col[k] < hi) {
        b.col[out] = col[k];
        b.val[out] = val[k];
        ++out;
        ++k;
      }
      cursor[r] = k;
    }
    ptr[b.rows] = out;
  }
  AHS_ASSERT(out == col.size(), "blocked CSR lost entries");
  return b;
}

double CsrMatrix::row_sum(std::uint32_t r) const {
  AHS_REQUIRE(r < rows_, "row out of range");
  double s = 0.0;
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) s += val_[k];
  return s;
}

}  // namespace ctmc
