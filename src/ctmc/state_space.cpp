#include "ctmc/state_space.h"

#include <deque>
#include <unordered_map>

#include "san/analyze/analysis.h"
#include "san/analyze/invariants.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/spans.h"

namespace ctmc {

namespace {

struct VecHash {
  std::size_t operator()(const std::vector<std::int32_t>& v) const {
    // FNV-1a over the raw words.
    std::size_t h = 1469598103934665603ull;
    for (std::int32_t x : v) {
      h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(x));
      h *= 1099511628211ull;
    }
    return h;
  }
};

using Marking = std::vector<std::int32_t>;

class Generator {
 public:
  Generator(const san::FlatModel& model, const StateSpaceOptions& options,
            std::shared_ptr<const san::analyze::StructuralFacts> facts)
      : model_(model), opts_(options), facts_(std::move(facts)) {
    AHS_REQUIRE(model_.all_exponential(),
                "CTMC generation requires an all-exponential model");
    for (const std::string& suffix : opts_.ignore_places) {
      const auto indices = model_.place_indices(suffix);
      AHS_REQUIRE(!indices.empty(),
                  "ignore_places: no place matches '" + suffix + "'");
      for (std::size_t pi : indices)
        for (std::uint32_t k = 0; k < model_.place_size(pi); ++k)
          ignored_slots_.push_back(model_.place_offset(pi) + k);
    }
    std::vector<std::uint8_t> ignored(model_.marking_size(), 0);
    for (std::uint32_t s : ignored_slots_) ignored[s] = 1;

    // Exact validation of declared place capacities: every interned (i.e.
    // reachable tangible) marking is checked, so a wrong declaration fails
    // the exploration loudly instead of silently corrupting results that
    // relied on it (probe validation is only as deep as its budget).
    for (std::size_t pi = 0; pi < model_.places().size(); ++pi) {
      const san::FlatPlace& p = model_.places()[pi];
      if (p.capacity < 0) continue;
      for (std::uint32_t k = 0; k < p.size; ++k)
        if (!ignored[p.offset + k])
          capacity_checks_.push_back({p.offset + k, p.capacity,
                                      static_cast<std::uint32_t>(pi)});
    }

    // Reject provably infinite explorations before interning a single
    // state: a tracked slot with a proved-unbounded witness can only end
    // in a max_states abort after minutes of futile BFS.  An absorbing
    // predicate exempts the model — it may truncate the growth, and the
    // predicate is opaque to the structural layer.
    if (facts_ != nullptr && !opts_.absorbing)
      for (std::uint32_t s = 0; s < model_.marking_size(); ++s)
        if (!ignored[s] &&
            facts_->provenance[s] ==
                san::analyze::BoundProvenance::kProvedUnbounded)
          throw util::ModelError(
              "state space is provably infinite: tracked place '" +
              model_.places()[model_.place_of_slot(s)].name +
              "' has a self-sustaining producer (see NET003); make the "
              "place ignored or bound it");

    if (facts_ != nullptr) {
      // Pre-size the interning containers from the proved bounds: the
      // reachable tangible set is at most prod(bound+1) over tracked slots.
      double product = 1.0;
      bool all_bounded = true;
      for (std::uint32_t s = 0; s < model_.marking_size(); ++s) {
        if (ignored[s]) continue;
        if (facts_->slot_bound[s] == san::analyze::kUnbounded) {
          all_bounded = false;
          break;
        }
        product *= static_cast<double>(facts_->slot_bound[s]) + 1.0;
        if (product > static_cast<double>(opts_.max_states)) break;
      }
      if (all_bounded &&
          product <= static_cast<double>(opts_.max_states)) {
        const auto cap = static_cast<std::size_t>(product);
        states_.reserve(cap);
        index_.reserve(cap);
      }
    }

    for (std::size_t i = 0; i < model_.activities().size(); ++i) {
      if (model_.activities()[i].timed) timed_.push_back(i);
      else instant_.push_back(i);
    }
    std::stable_sort(instant_.begin(), instant_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return model_.activities()[a].priority >
                              model_.activities()[b].priority;
                     });
  }

  StateSpace run() {
    AHS_SPAN("state_space.build");
    StateSpace out;

    // BFS telemetry ("ctmc.state_space.*"): counted locally during the
    // exploration, flushed once at the end.  The frontier histogram samples
    // the queue length at every pop.
    util::MetricsRegistry* reg = util::MetricsRegistry::global();
    util::HistogramHandle frontier_hist;
    if (reg != nullptr)
      frontier_hist = reg->histogram(
          "ctmc.state_space.frontier_size",
          {0, 16, 64, 256, 1024, 4096, 16384, 65536});

    std::vector<std::pair<Marking, double>> initial_dist;
    eliminate_vanishing(model_.initial_marking(), 1.0, 0, initial_dist);

    std::deque<std::uint32_t> frontier;
    for (auto& [m, p] : initial_dist) {
      const std::uint32_t s = intern(std::move(m), frontier);
      initial_prob_[s] += p;
    }

    std::vector<Triplet> triplets;
    std::vector<StateSpace::SkeletonArc> skeleton;
    while (!frontier.empty()) {
      const std::uint32_t s = frontier.front();
      frontier.pop_front();
      if (reg != nullptr)
        frontier_hist.record(static_cast<double>(frontier.size()));
      // Copy: fire() mutates, and `states_` may reallocate during intern.
      const Marking m = states_[s];
      if (opts_.absorbing && opts_.absorbing(m)) continue;

      for (std::size_t ai : timed_) {
        Marking probe = m;
        if (!model_.enabled(ai, probe)) continue;
        const double rate = model_.exponential_rate(ai, probe);
        std::vector<double> weights = model_.case_weights(ai, probe);
        double total_w = 0.0;
        for (double w : weights) total_w += w;
        AHS_REQUIRE(total_w > 0.0,
                    "activity '" + model_.activities()[ai].name +
                        "' has zero total case weight in a reachable state");
        for (std::size_t ci = 0; ci < weights.size(); ++ci) {
          if (weights[ci] <= 0.0) continue;
          Marking next = m;
          model_.fire(ai, ci, next);
          std::vector<std::pair<Marking, double>> tangibles;
          eliminate_vanishing(std::move(next), 1.0, 0, tangibles);
          const double branch_prob = weights[ci] / total_w;
          for (auto& [tm, tp] : tangibles) {
            const std::uint32_t to = intern(std::move(tm), frontier);
            if (to == s) continue;  // CTMC self-loops are no-ops
            triplets.push_back({s, to, rate * branch_prob * tp});
            if (opts_.capture_structure)
              skeleton.push_back({s, static_cast<std::uint32_t>(ai), to,
                                  branch_prob * tp});
          }
        }
      }
    }
    if (opts_.capture_structure)
      out.skeleton = std::make_shared<const std::vector<StateSpace::SkeletonArc>>(
          std::move(skeleton));

    const auto n = static_cast<std::uint32_t>(states_.size());
    out.chain.num_states = n;
    out.chain.rates = CsrMatrix::from_triplets(n, n, std::move(triplets));
    out.chain.exit_rate.resize(n);
    for (std::uint32_t s = 0; s < n; ++s)
      out.chain.exit_rate[s] = out.chain.rates.row_sum(s);
    out.chain.initial.assign(n, 0.0);
    for (const auto& [s, p] : initial_prob_) out.chain.initial[s] = p;
    out.states = std::move(states_);
    out.chain.validate();
    if (reg != nullptr) {
      reg->counter("ctmc.state_space.states").add(out.chain.num_states);
      reg->counter("ctmc.state_space.arcs").add(out.chain.rates.nonzeros());
      reg->counter("ctmc.state_space.vanishing_eliminations")
          .add(vanishing_eliminations_);
    }
    return out;
  }

 private:
  std::uint32_t intern(Marking m, std::deque<std::uint32_t>& frontier) {
    for (std::uint32_t slot : ignored_slots_) m[slot] = 0;
    const auto it = index_.find(m);
    if (it != index_.end()) return it->second;
    for (const CapacityCheck& c : capacity_checks_)
      if (m[c.slot] > c.capacity)
        throw util::ModelError(
            "declared capacity refuted: place '" +
            model_.places()[c.place].name + "' holds " +
            std::to_string(m[c.slot]) + " token(s) in a reachable marking "
            "but declares capacity " + std::to_string(c.capacity) +
            " — fix the AtomicModel::capacity declaration");
    if (states_.size() >= opts_.max_states)
      throw util::NumericalError(
          "state space exceeds max_states = " +
          std::to_string(opts_.max_states) +
          " — raise StateSpaceOptions::max_states or shrink the model");
    const auto id = static_cast<std::uint32_t>(states_.size());
    index_.emplace(m, id);
    states_.push_back(std::move(m));
    frontier.push_back(id);
    return id;
  }

  /// Depth-first elimination of instantaneous activity chains.  Appends
  /// (tangible marking, probability) pairs scaled by `prob`.
  void eliminate_vanishing(Marking m, double prob, std::size_t depth,
                           std::vector<std::pair<Marking, double>>& out) {
    if (depth > opts_.max_vanishing_depth)
      throw util::ModelError(
          "vanishing-marking chain exceeds max depth — instantaneous loop?");
    for (std::size_t ai : instant_) {
      if (!model_.enabled(ai, m)) continue;
      ++vanishing_eliminations_;
      std::vector<double> weights = model_.case_weights(ai, m);
      double total_w = 0.0;
      for (double w : weights) total_w += w;
      AHS_REQUIRE(total_w > 0.0,
                  "instantaneous activity '" + model_.activities()[ai].name +
                      "' has zero total case weight");
      for (std::size_t ci = 0; ci < weights.size(); ++ci) {
        if (weights[ci] <= 0.0) continue;
        Marking next = m;
        model_.fire(ai, ci, next);
        eliminate_vanishing(std::move(next), prob * weights[ci] / total_w,
                            depth + 1, out);
      }
      return;  // only the highest-priority enabled activity fires
    }
    out.emplace_back(std::move(m), prob);  // tangible
  }

  struct CapacityCheck {
    std::uint32_t slot;
    std::int32_t capacity;
    std::uint32_t place;
  };

  const san::FlatModel& model_;
  const StateSpaceOptions& opts_;
  std::shared_ptr<const san::analyze::StructuralFacts> facts_;
  std::vector<CapacityCheck> capacity_checks_;
  std::vector<std::uint32_t> ignored_slots_;
  std::vector<std::size_t> timed_;
  std::vector<std::size_t> instant_;
  std::vector<Marking> states_;
  std::unordered_map<Marking, std::uint32_t, VecHash> index_;
  std::unordered_map<std::uint32_t, double> initial_prob_;
  std::uint64_t vanishing_eliminations_ = 0;
};

}  // namespace

std::vector<double> StateSpace::state_rewards(
    const std::function<double(std::span<const std::int32_t>)>& reward)
    const {
  std::vector<double> r(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) r[i] = reward(states[i]);
  return r;
}

StateSpace build_state_space(const san::FlatModel& model,
                             const StateSpaceOptions& options) {
  std::shared_ptr<const san::analyze::StructuralFacts> facts;
  if (options.lint) {
    // With an absorbing predicate the user has declared that exploration
    // truncates, so a proved-unbounded place (NET003) is not fatal here.
    std::vector<std::string> nonfatal;
    if (options.absorbing) nonfatal.push_back("NET003");
    const san::analyze::LintReport report = san::analyze::preflight_lint_report(
        model, "state-space lint preflight", 128, nonfatal);
    facts = report.facts;
  }
  Generator gen(model, options, std::move(facts));
  return gen.run();
}

MarkovChain rebuild_rates(const san::FlatModel& model,
                          const StateSpace& cached) {
  AHS_REQUIRE(cached.skeleton != nullptr,
              "rebuild_rates requires a state space explored with "
              "StateSpaceOptions::capture_structure");
  AHS_REQUIRE(model.all_exponential(),
              "rebuild_rates requires an all-exponential model");
  const std::vector<StateSpace::SkeletonArc>& arcs = *cached.skeleton;

  std::vector<Triplet> triplets;
  triplets.reserve(arcs.size());
  // Arcs are grouped by (from, activity); the rate is re-evaluated once per
  // group in the cached source marking.
  double rate = 0.0;
  std::uint32_t cur_from = 0, cur_act = 0;
  bool have_group = false;
  for (const StateSpace::SkeletonArc& arc : arcs) {
    if (!have_group || arc.from != cur_from || arc.activity != cur_act) {
      have_group = true;
      cur_from = arc.from;
      cur_act = arc.activity;
      Marking probe = cached.states[arc.from];
      AHS_REQUIRE(model.enabled(arc.activity, probe),
                  "rebuild_rates: cached transition disabled under the new "
                  "parameters — the model structure differs; rebuild the "
                  "state space instead");
      rate = model.exponential_rate(arc.activity, probe);
    }
    triplets.push_back({arc.from, arc.to, rate * arc.weight});
  }

  const auto n = static_cast<std::uint32_t>(cached.states.size());
  MarkovChain chain;
  chain.num_states = n;
  chain.rates = CsrMatrix::from_triplets(n, n, std::move(triplets));
  chain.exit_rate.resize(n);
  for (std::uint32_t s = 0; s < n; ++s)
    chain.exit_rate[s] = chain.rates.row_sum(s);
  // The initial distribution only involves instantaneous case weights, which
  // the structural-equality precondition pins; reuse it unchanged.
  chain.initial = cached.chain.initial;
  chain.validate();
  return chain;
}

}  // namespace ctmc
