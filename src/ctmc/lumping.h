// Ordinary lumpability by partition refinement.
//
// A partition {B₁,…,B_m} of the state space is *ordinarily lumpable* when
// every state of a block has the same total rate into every (other) block;
// the quotient process is then a CTMC for any initial distribution, and
// block probabilities are exact.  This is the formal device behind both
// Möbius' Rep symmetry reduction and this repository's hand-lumped AHS
// model (src/ahs/lumped.*): replicated submodels induce a permutation
// symmetry whose orbits are a lumpable partition.
//
// `lump_ordinary` refines a caller-supplied initial partition (typically:
// states grouped by reward value, so the measure is preserved) to the
// coarsest lumpable partition finer than it, and returns the quotient
// chain.  Complexity of this splitter-loop implementation is
// O(iterations · nnz); fine for the ≤1e6-edge chains the test models
// produce (Paige–Tarjan bookkeeping would be the next step for bigger
// chains).
#pragma once

#include <cstdint>
#include <vector>

#include "ctmc/chain.h"

namespace ctmc {

struct LumpingOptions {
  /// Two rate sums are considered equal within this relative tolerance.
  double tolerance = 1e-9;
  /// Guard against pathological refinement loops.
  std::uint64_t max_passes = 100000;
};

struct LumpingResult {
  MarkovChain quotient;
  /// block_of[s] = quotient state of original state s.
  std::vector<std::uint32_t> block_of;
  std::uint32_t num_blocks = 0;
  std::uint64_t passes = 0;
};

/// Refines `initial_partition` (block ids, any labeling) to the coarsest
/// ordinarily-lumpable partition refining it and builds the quotient.
/// The quotient's initial distribution aggregates the original one.
LumpingResult lump_ordinary(const MarkovChain& chain,
                            const std::vector<std::uint32_t>&
                                initial_partition,
                            const LumpingOptions& options = {});

/// Convenience: partition states by (quantized) reward value, refine, and
/// lump — the reward is then exactly representable on the quotient.
LumpingResult lump_by_reward(const MarkovChain& chain,
                             const std::vector<double>& reward,
                             const LumpingOptions& options = {});

}  // namespace ctmc
