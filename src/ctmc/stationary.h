// Stationary and absorption analyses.
//
//  * `solve_stationary` — long-run distribution of an irreducible chain by
//    power iteration on the uniformized DTMC.
//  * `mean_time_to_absorption` — expected first-passage time into the
//    absorbing class from the initial distribution, by Gauss–Seidel on the
//    linear system (restricted to transient states):  exit(s)·h(s) −
//    Σ_{s'} rate(s→s')·h(s') = 1.  For the AHS model this is the mean time
//    to a catastrophic situation (the system's MTTF), a measure the paper
//    lists as future work and that our benches report as an extension.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmc/chain.h"

namespace ctmc {

struct StationaryOptions {
  double tolerance = 1e-12;     ///< L1 change per iteration
  std::uint64_t max_iterations = 1'000'000;
  double rate_factor = 1.02;
};

struct StationaryResult {
  std::vector<double> distribution;
  std::uint64_t iterations = 0;
  bool converged = false;
};

/// Power iteration on P = I + Q/Λ from the chain's initial distribution.
/// For a chain with absorbing states this converges to the absorption
/// distribution.
StationaryResult solve_stationary(const MarkovChain& chain,
                                  const StationaryOptions& options = {});

struct AbsorptionOptions {
  double tolerance = 1e-12;
  std::uint64_t max_iterations = 1'000'000;
};

struct AbsorptionResult {
  /// h[s]: expected time to absorption starting from state s (0 for
  /// absorbing states).
  std::vector<double> hitting_time;
  /// Σ_s initial[s] · h[s].
  double mean_time = 0.0;
  std::uint64_t iterations = 0;
  bool converged = false;
};

/// Requires at least one absorbing state reachable from every transient
/// state; diverging iterations (no absorbing state) hit max_iterations with
/// converged = false.
///
/// NOTE: Gauss–Seidel converges at a rate governed by the absorption flow;
/// for *rarely*-absorbing chains (the AHS at realistic failure rates, where
/// absorption takes ~1e7 hours) use `quasi_stationary_absorption` instead.
AbsorptionResult mean_time_to_absorption(const MarkovChain& chain,
                                         const AbsorptionOptions& options = {});

struct QuasiStationaryOptions {
  double tolerance = 1e-10;  ///< relative change of the absorption rate
  std::uint64_t max_iterations = 10'000'000;
  double rate_factor = 1.02;
};

struct QuasiStationaryResult {
  /// Quasi-stationary distribution over transient states (0 on absorbing).
  std::vector<double> distribution;
  /// Long-run hazard κ of absorption from the quasi-stationary regime.
  /// When mixing is much faster than absorption (the dependability case),
  /// the time to absorption is ≈ Exponential(κ), so MTTA ≈ 1/κ.
  double absorption_rate = 0.0;
  std::uint64_t iterations = 0;
  bool converged = false;
};

/// Power iteration on the uniformized DTMC with renormalization over the
/// transient states.  `absorbing[s]` marks the absorbing class (states with
/// zero exit rate are treated as absorbing automatically).
QuasiStationaryResult quasi_stationary_absorption(
    const MarkovChain& chain, const std::vector<bool>& absorbing,
    const QuasiStationaryOptions& options = {});

}  // namespace ctmc
