// A finite continuous-time Markov chain in the form the solvers consume.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmc/sparse.h"

namespace ctmc {

/// Off-diagonal rates in CSR; the diagonal is implied (−exit_rate).
/// Absorbing states simply have an empty row.
struct MarkovChain {
  std::uint32_t num_states = 0;
  CsrMatrix rates;                ///< rates[i][j] = transition rate i→j (i≠j)
  std::vector<double> exit_rate;  ///< row sums of `rates`
  std::vector<double> initial;    ///< initial distribution, sums to 1

  /// Largest exit rate (uniformization constant base).
  double max_exit_rate() const;

  /// Checks structural sanity: dimensions agree, rates non-negative,
  /// initial distribution sums to 1 within tolerance.  Throws.
  void validate() const;
};

}  // namespace ctmc
