// Compressed-sparse-row matrices for Markov-chain numerics.
//
// The solvers only need row-major iteration and (row-vector × matrix)
// products — distributions are propagated as x := x P — so the interface is
// deliberately small.  Both products have row-partitioned parallel
// overloads: blocks are balanced by nonzero count and fixed by the matrix
// shape and pool size alone, so repeated runs are deterministic.  For
// bitwise thread-count independence, multiply over the transpose:
// transposed().right_multiply(x, y, pool) accumulates every output entry in
// the same order as the sequential left_multiply, for any pool size — the
// uniformization solver relies on exactly this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace util {
class ThreadPool;
}

namespace ctmc {

struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicates (same row, col) are summed.
  static CsrMatrix from_triplets(std::uint32_t rows, std::uint32_t cols,
                                 std::vector<Triplet> triplets);

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::size_t nonzeros() const { return col_.size(); }

  /// Entries of row r as parallel spans (columns, values).
  std::span<const std::uint32_t> row_cols(std::uint32_t r) const;
  std::span<const double> row_values(std::uint32_t r) const;

  /// Transposed copy.  Row r of the result holds column r of *this with
  /// entries ordered by the original row index, so gather products over the
  /// transpose reproduce left_multiply's scatter accumulation order exactly.
  CsrMatrix transposed() const;

  /// y := x * M  (x is a row vector of length rows(); y of length cols()).
  void left_multiply(std::span<const double> x, std::span<double> y) const;

  /// Parallel y := x * M over contiguous row blocks balanced by nonzeros.
  /// Each block scatters into a private buffer; buffers are reduced in
  /// block order, so the result is deterministic for a fixed pool size but
  /// may differ from the sequential product in the last ulps (summation
  /// order).  Prefer transposed().right_multiply for bitwise stability.
  void left_multiply(std::span<const double> x, std::span<double> y,
                     util::ThreadPool& pool) const;

  /// y := M * x  (column-vector product; x length cols(), y length rows()).
  void right_multiply(std::span<const double> x, std::span<double> y) const;

  /// Parallel y := M * x, row-partitioned.  Every y[r] is written by exactly
  /// one thread accumulating in column order — bitwise identical to the
  /// sequential product for any pool size.
  void right_multiply(std::span<const double> x, std::span<double> y,
                      util::ThreadPool& pool) const;

  /// Sum of row r's values.
  double row_sum(std::uint32_t r) const;

 private:
  /// Row boundaries of `blocks` contiguous partitions with roughly equal
  /// nonzero counts (size blocks + 1, first 0, last rows_).
  std::vector<std::uint32_t> row_blocks(std::size_t blocks) const;

  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_;
  std::vector<double> val_;
};

}  // namespace ctmc
