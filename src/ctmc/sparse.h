// Compressed-sparse-row matrices for Markov-chain numerics.
//
// The solvers only need row-major iteration and (row-vector × matrix)
// products — distributions are propagated as x := x P — so the interface is
// deliberately small.  Both products have row-partitioned parallel
// overloads: blocks are balanced by nonzero count and fixed by the matrix
// shape and pool size alone, so repeated runs are deterministic.  For
// bitwise thread-count independence, multiply over the transpose:
// transposed().right_multiply(x, y, pool) accumulates every output entry in
// the same order as the sequential left_multiply, for any pool size — the
// uniformization solver relies on exactly this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace util {
class ThreadPool;
}

namespace ctmc {

struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicates (same row, col) are summed.
  static CsrMatrix from_triplets(std::uint32_t rows, std::uint32_t cols,
                                 std::vector<Triplet> triplets);

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::size_t nonzeros() const { return col_.size(); }

  /// Entries of row r as parallel spans (columns, values).
  std::span<const std::uint32_t> row_cols(std::uint32_t r) const;
  std::span<const double> row_values(std::uint32_t r) const;

  /// Transposed copy.  Row r of the result holds column r of *this with
  /// entries ordered by the original row index, so gather products over the
  /// transpose reproduce left_multiply's scatter accumulation order exactly.
  CsrMatrix transposed() const;

  /// y := x * M  (x is a row vector of length rows(); y of length cols()).
  void left_multiply(std::span<const double> x, std::span<double> y) const;

  /// Parallel y := x * M over contiguous row blocks balanced by nonzeros.
  /// Each block scatters into a private buffer; buffers are reduced in
  /// block order, so the result is deterministic for a fixed pool size but
  /// may differ from the sequential product in the last ulps (summation
  /// order).  Prefer transposed().right_multiply for bitwise stability.
  void left_multiply(std::span<const double> x, std::span<double> y,
                     util::ThreadPool& pool) const;

  /// y := M * x  (column-vector product; x length cols(), y length rows()).
  void right_multiply(std::span<const double> x, std::span<double> y) const;

  /// Parallel y := M * x, row-partitioned.  Every y[r] is written by exactly
  /// one thread accumulating in column order — bitwise identical to the
  /// sequential product for any pool size.
  void right_multiply(std::span<const double> x, std::span<double> y,
                      util::ThreadPool& pool) const;

  /// Sum of row r's values.
  double row_sum(std::uint32_t r) const;

  /// Raw CSR views for fused solver kernels that stream the whole structure
  /// (per-row accessors cost a bounds check per row).  Row r's entries live
  /// at indices [row_ptr()[r], row_ptr()[r+1]) of col_index()/values().
  std::span<const std::size_t> row_ptr() const { return row_ptr_; }
  std::span<const std::uint32_t> col_index() const { return col_; }
  std::span<const double> values() const { return val_; }

  /// Row boundaries of `blocks` contiguous partitions with roughly equal
  /// nonzero counts (size blocks + 1, first 0, last rows()).  Used to
  /// partition gather products across a pool deterministically.
  std::vector<std::uint32_t> row_blocks(std::size_t blocks) const;

 private:

  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_;
  std::vector<double> val_;
};

/// Column-blocked copy of a CSR matrix for cache-blocked gather products.
/// Block b holds exactly the entries whose column lies in
/// [bounds[b], bounds[b+1]); within a block the layout is CSR over the
/// original rows with entries in the original per-row order.  A gather
/// product that processes the blocks in order and accumulates block b's
/// contribution of row r directly into y[r] (load, add entries one by one,
/// store) performs each output's additions in exactly the unblocked entry
/// order — the result is bitwise identical to CsrMatrix::right_multiply
/// while the gathered slice of x stays cache-resident.
struct BlockedCsr {
  std::vector<std::uint32_t> bounds;  ///< column block boundaries (blocks+1)
  /// Block-major row pointers: block b's row r spans
  /// [row_ptr[b*(rows+1)+r], row_ptr[b*(rows+1)+r+1]) of col/val.
  std::vector<std::size_t> row_ptr;
  std::vector<std::uint32_t> col;
  std::vector<double> val;
  std::uint32_t rows = 0;

  std::size_t blocks() const { return bounds.empty() ? 0 : bounds.size() - 1; }
};

/// Splits `m` into column blocks of at most `block_cols` columns (always at
/// least one block).  With one block the layout degenerates to a plain copy
/// of `m`.
BlockedCsr make_blocked(const CsrMatrix& m, std::uint32_t block_cols);

}  // namespace ctmc
