// Compressed-sparse-row matrices for Markov-chain numerics.
//
// The solvers only need row-major iteration and (row-vector × matrix)
// products — distributions are propagated as x := x P — so the interface is
// deliberately small.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ctmc {

struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicates (same row, col) are summed.
  static CsrMatrix from_triplets(std::uint32_t rows, std::uint32_t cols,
                                 std::vector<Triplet> triplets);

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::size_t nonzeros() const { return col_.size(); }

  /// Entries of row r as parallel spans (columns, values).
  std::span<const std::uint32_t> row_cols(std::uint32_t r) const;
  std::span<const double> row_values(std::uint32_t r) const;

  /// y := x * M  (x is a row vector of length rows(); y of length cols()).
  void left_multiply(std::span<const double> x, std::span<double> y) const;

  /// y := M * x  (column-vector product; x length cols(), y length rows()).
  void right_multiply(std::span<const double> x, std::span<double> y) const;

  /// Sum of row r's values.
  double row_sum(std::uint32_t r) const;

 private:
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_;
  std::vector<double> val_;
};

}  // namespace ctmc
