#include "sim/trace.h"

#include <ostream>

namespace sim {

TraceRecorder::TraceRecorder(Executor& exec, const san::FlatModel& model)
    : model_(model), exec_(exec) {
  exec_.on_fire = [this](std::size_t ai, std::size_t ci) {
    events_.push_back({exec_.time(), ai, ci});
  };
}

const std::string& TraceRecorder::activity_name(const TraceEvent& e) const {
  return model_.activities()[e.activity_index].name;
}

const std::string& TraceRecorder::source_name(const TraceEvent& e) const {
  return model_.activities()[e.activity_index].source_name;
}

std::size_t TraceRecorder::count_source(const std::string& source_name) const {
  std::size_t n = 0;
  for (const auto& e : events_)
    if (model_.activities()[e.activity_index].source_name == source_name) ++n;
  return n;
}

void TraceRecorder::dump(std::ostream& os) const {
  for (const auto& e : events_)
    os << "t=" << e.time << ' ' << activity_name(e) << " case=" << e.case_index
       << '\n';
}

}  // namespace sim
