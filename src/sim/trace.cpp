#include "sim/trace.h"

#include <ostream>

namespace sim {

TraceRecorder::TraceRecorder(Executor& exec, const san::FlatModel& model)
    : model_(model), exec_(exec) {
  exec_.on_fire = [this](std::size_t ai, std::size_t ci) {
    const auto& act = model_.activities()[ai];
    events_.push_back({exec_.time(), act.name, act.source_name, ci});
  };
}

std::size_t TraceRecorder::count_source(const std::string& source_name) const {
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.source == source_name) ++n;
  return n;
}

void TraceRecorder::dump(std::ostream& os) const {
  for (const auto& e : events_)
    os << "t=" << e.time << ' ' << e.activity << " case=" << e.case_index
       << '\n';
}

}  // namespace sim
