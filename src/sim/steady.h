// Steady-state estimation by the method of batch means over one long run.
//
// The paper's headline measure is transient, but steady-state rewards are
// needed for the supporting analyses (expected number of active maneuvers,
// mean platoon occupancy) and for validating the Dynamicity submodel against
// closed-form birth–death results.
#pragma once

#include <cstdint>

#include "san/rewards.h"
#include "sim/executor.h"
#include "util/stats.h"

namespace sim {

struct SteadyOptions {
  /// Simulated time discarded before measurement starts.
  double warmup_time = 10.0;
  /// Length of one batch in simulated time.
  double batch_time = 100.0;
  std::uint64_t min_batches = 20;
  std::uint64_t max_batches = 10'000;
  double rel_half_width = 0.05;
  double confidence = 0.95;
  std::uint64_t seed = 42;
};

struct SteadyResult {
  util::ConfidenceInterval estimate;
  std::uint64_t batches = 0;
  std::uint64_t total_events = 0;
  double lag1_autocorrelation = 0.0;
  bool converged = false;
};

/// Estimates the long-run time average of `reward` — each batch contributes
/// (1/batch_time) * integral of reward over the batch.
SteadyResult estimate_steady_state(const san::FlatModel& model,
                                   const san::RewardFn& reward,
                                   const SteadyOptions& options);

}  // namespace sim
