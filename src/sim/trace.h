// Execution tracing: records (time, activity, case) tuples for debugging and
// for the behavioural assertions in the integration tests.
//
// The recorder stays off the allocator on the hot on_fire path: each event
// stores the interned activity index (the FlatModel's index IS the interned
// id — names live once in the model), and names are resolved lazily when a
// reader asks via dump() / TraceRecorder::activity_name().
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/executor.h"

namespace sim {

struct TraceEvent {
  double time;
  std::size_t activity_index;  ///< index into FlatModel::activities()
  std::size_t case_index;
};

/// Attaches to an executor's on_fire hook and accumulates events.
class TraceRecorder {
 public:
  explicit TraceRecorder(Executor& exec, const san::FlatModel& model);

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Hierarchical activity name of a recorded event (lazy resolution).
  const std::string& activity_name(const TraceEvent& e) const;
  /// Atomic-model ("source") activity name of a recorded event.
  const std::string& source_name(const TraceEvent& e) const;

  /// Number of recorded completions of activities with this source name.
  std::size_t count_source(const std::string& source_name) const;

  /// Writes one line per event: "t=<time> <activity> case=<i>".
  void dump(std::ostream& os) const;

 private:
  const san::FlatModel& model_;
  Executor& exec_;
  std::vector<TraceEvent> events_;
};

}  // namespace sim
