// Execution tracing: records (time, activity, case) tuples for debugging and
// for the behavioural assertions in the integration tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/executor.h"

namespace sim {

struct TraceEvent {
  double time;
  std::string activity;  ///< hierarchical activity name
  std::string source;    ///< atomic-model activity name
  std::size_t case_index;
};

/// Attaches to an executor's on_fire hook and accumulates events.
class TraceRecorder {
 public:
  explicit TraceRecorder(Executor& exec, const san::FlatModel& model);

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Number of recorded completions of activities with this source name.
  std::size_t count_source(const std::string& source_name) const;

  /// Writes one line per event: "t=<time> <activity> case=<i>".
  void dump(std::ostream& os) const;

 private:
  const san::FlatModel& model_;
  Executor& exec_;
  std::vector<TraceEvent> events_;
};

}  // namespace sim
