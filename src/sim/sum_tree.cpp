#include "sim/sum_tree.h"

#include <algorithm>

#include "util/error.h"

namespace sim {

namespace {
std::size_t ceil_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

SumTree::SumTree(std::size_t n)
    : n_(n), base_(ceil_pow2(std::max<std::size_t>(n, 1))) {
  tree_.assign(2 * base_, 0.0);
}

void SumTree::set(std::size_t i, double v) {
  std::size_t k = base_ + i;
  tree_[k] = v;
  for (k >>= 1; k >= 1; k >>= 1) tree_[k] = tree_[2 * k] + tree_[2 * k + 1];
}

void SumTree::rebuild(std::span<const double> values) {
  AHS_REQUIRE(values.size() == n_, "rebuild size mismatch");
  std::copy(values.begin(), values.end(), tree_.begin() + base_);
  std::fill(tree_.begin() + base_ + n_, tree_.end(), 0.0);
  for (std::size_t k = base_ - 1; k >= 1; --k)
    tree_[k] = tree_[2 * k] + tree_[2 * k + 1];
}

void SumTree::clear() { std::fill(tree_.begin(), tree_.end(), 0.0); }

std::size_t SumTree::find_prefix(double u) const {
  AHS_REQUIRE(total() > 0.0, "find_prefix on an empty tree");
  std::size_t k = 1;
  while (k < base_) {
    k <<= 1;  // left child
    if (u >= tree_[k]) {
      u -= tree_[k];
      ++k;  // right child
    }
  }
  std::size_t i = k - base_;
  if (i >= n_ || tree_[k] <= 0.0) {
    // Rounding overshoot landed past the last positive leaf; step back to
    // the nearest preceding positive one (deterministic in the tree state).
    if (i >= n_) i = n_ - 1;
    while (i > 0 && tree_[base_ + i] <= 0.0) --i;
  }
  return i;
}

DualSumTree::DualSumTree(std::size_t n)
    : n_(n), base_(ceil_pow2(std::max<std::size_t>(n, 1))) {
  tree_.assign(4 * base_, 0.0);
}

void DualSumTree::set(std::size_t i, double rate, double weight) {
  std::size_t k = base_ + i;
  tree_[2 * k] = rate;
  tree_[2 * k + 1] = weight;
  for (k >>= 1; k >= 1; k >>= 1) {
    tree_[2 * k] = tree_[4 * k] + tree_[4 * k + 2];
    tree_[2 * k + 1] = tree_[4 * k + 1] + tree_[4 * k + 3];
  }
}

void DualSumTree::rebuild(std::span<const double> rates,
                          std::span<const double> weights) {
  AHS_REQUIRE(rates.size() == n_ && weights.size() == n_,
              "rebuild size mismatch");
  for (std::size_t i = 0; i < n_; ++i) {
    tree_[2 * (base_ + i)] = rates[i];
    tree_[2 * (base_ + i) + 1] = weights[i];
  }
  std::fill(tree_.begin() + 2 * (base_ + n_), tree_.end(), 0.0);
  for (std::size_t k = base_ - 1; k >= 1; --k) {
    tree_[2 * k] = tree_[4 * k] + tree_[4 * k + 2];
    tree_[2 * k + 1] = tree_[4 * k + 1] + tree_[4 * k + 3];
  }
}

void DualSumTree::clear() { std::fill(tree_.begin(), tree_.end(), 0.0); }

std::size_t DualSumTree::find_prefix_weight(double u) const {
  AHS_REQUIRE(total_weight() > 0.0, "find_prefix on an empty tree");
  std::size_t k = 1;
  while (k < base_) {
    k <<= 1;  // left child
    if (u >= tree_[2 * k + 1]) {
      u -= tree_[2 * k + 1];
      ++k;  // right child
    }
  }
  std::size_t i = k - base_;
  if (i >= n_ || tree_[2 * k + 1] <= 0.0) {
    if (i >= n_) i = n_ - 1;
    while (i > 0 && tree_[2 * (base_ + i) + 1] <= 0.0) --i;
  }
  return i;
}

}  // namespace sim
