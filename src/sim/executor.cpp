#include "sim/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "san/analyze/analysis.h"
#include "util/distributions.h"
#include "util/error.h"

namespace sim {

namespace {
constexpr double kNotScheduled = std::numeric_limits<double>::quiet_NaN();
inline bool is_scheduled(double t) { return !std::isnan(t); }

/// Domain tag separating per-activity streams from per-replication streams
/// (see util::Rng::split(idx, domain)).
constexpr std::uint64_t kActivityStreamDomain = 0x414354ull;  // "ACT"

bool contains_slot(std::span<const std::uint32_t> sorted, std::uint32_t s) {
  return std::binary_search(sorted.begin(), sorted.end(), s);
}
}  // namespace

Executor::Executor(const san::FlatModel& model, util::Rng rng, Options opts)
    : model_(model),
      rng_(rng),
      opts_(opts),
      heap_(model.activities().size()),
      tree_rate_(model.activities().size()),
      tree_weight_(model.activities().size()) {
  const auto& acts = model_.activities();
  const std::size_t n = acts.size();
  bias_boost_.assign(n, 1.0);
  bias_cases_.assign(n, nullptr);

  for (std::size_t i = 0; i < n; ++i) {
    if (acts[i].timed) timed_.push_back(i);
    else instant_by_priority_.push_back(i);
  }
  std::stable_sort(instant_by_priority_.begin(), instant_by_priority_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return acts[a].priority > acts[b].priority;
                   });
  instant_pos_.assign(n, UINT32_MAX);
  for (std::size_t p = 0; p < instant_by_priority_.size(); ++p)
    instant_pos_[instant_by_priority_[p]] = static_cast<std::uint32_t>(p);
  instant_in_cand_.assign(instant_by_priority_.size(), 0);

  if (opts_.bias != nullptr && opts_.bias->active()) {
    AHS_REQUIRE(model_.all_exponential(),
                "importance sampling requires an all-exponential model");
    AHS_REQUIRE(opts_.bias->boost > 0.0, "bias boost must be > 0");
    embedded_mode_ = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (opts_.bias->boosted.count(acts[i].source_name))
        bias_boost_[i] = opts_.bias->boost;
      const auto it = opts_.bias->case_bias.find(acts[i].source_name);
      if (it != opts_.bias->case_bias.end()) {
        AHS_REQUIRE(it->second.size() == acts[i].cases.size(),
                    "case_bias for '" + acts[i].source_name +
                        "' must list one weight per case");
        bias_cases_[i] = &it->second;
      }
    }
  }

  dep_ = std::make_unique<san::DependencyIndex>(
      san::DependencyIndex::build(model_));

  if (opts_.lint)
    san::analyze::preflight_lint(model_, "Executor lint preflight");

  // Split each affected_by set by activity kind once, so per-event
  // propagation walks plain index lists.
  aff_timed_off_.assign(n + 1, 0);
  aff_inst_off_.assign(n + 1, 0);
  for (std::size_t ai = 0; ai < n; ++ai) {
    for (std::uint32_t b : dep_->affected_by(ai)) {
      if (acts[b].timed) aff_timed_.push_back(b);
      else aff_inst_pos_.push_back(instant_pos_[b]);
    }
    aff_timed_off_[ai + 1] = static_cast<std::uint32_t>(aff_timed_.size());
    aff_inst_off_[ai + 1] = static_cast<std::uint32_t>(aff_inst_pos_.size());
  }

  sched_.assign(n, kNotScheduled);
  was_enabled_.assign(n, false);
  cached_rate_.assign(n, 0.0);
  dirty_mark_.assign(n, 0);
  dirty_.reserve(n);
  scratch_rates_.assign(n, 0.0);
  scratch_weights_.assign(n, 0.0);
  act_rng_.reserve(n);
  reset();
}

void Executor::resolve_telemetry() {
  util::MetricsRegistry* reg = util::MetricsRegistry::global();
  if (reg == tm_registry_) return;
  tm_registry_ = reg;
  if (reg == nullptr) {
    tm_ = Telemetry{};
    return;
  }
  tm_.on = true;
  tm_.events = reg->counter("sim.executor.events");
  tm_.instant_firings = reg->counter("sim.executor.instant_firings");
  tm_.heap_ops = reg->counter("sim.executor.heap_ops");
  tm_.sumtree_ops = reg->counter("sim.executor.sumtree_ops");
  tm_.rng_draws = reg->counter("sim.executor.rng_draws");
  tm_.dirty_set = reg->histogram("sim.executor.dirty_set_size",
                                 {0, 1, 2, 4, 8, 16, 32, 64, 128});
  tm_.stabilization = reg->histogram("sim.executor.stabilization_depth",
                                     {0, 1, 2, 4, 8, 16, 32});
}

void Executor::reset() {
  resolve_telemetry();
  marking_ = model_.initial_marking();
  time_ = 0.0;
  lr_ = 1.0;
  events_ = 0;

  // Per-activity streams are a pure function of (replication stream,
  // activity index), so trajectories do not depend on which activities an
  // engine happens to re-examine.
  const std::size_t n = model_.activities().size();
  act_rng_.clear();
  for (std::size_t ai = 0; ai < n; ++ai)
    act_rng_.push_back(rng_.split(ai, kActivityStreamDomain));

  std::fill(sched_.begin(), sched_.end(), kNotScheduled);
  std::fill(was_enabled_.begin(), was_enabled_.end(), false);
  heap_.clear();
  dirty_.clear();
  ++dirty_epoch_;
  instant_cand_.clear();
  std::fill(instant_in_cand_.begin(), instant_in_cand_.end(), 0);

  stabilize_instantaneous(SIZE_MAX);
  // The stabilization queued affected timed activities; the full (re)build
  // below subsumes that.
  dirty_.clear();
  ++dirty_epoch_;
  if (embedded_mode_) refresh_rates_full();
  else refresh_schedule_full();
}

void Executor::reset(util::Rng rng) {
  rng_ = rng;
  reset();
}

bool Executor::enabled_checked(std::size_t ai) {
  if (!opts_.check_dependencies) return model_.enabled(ai, marking_);
  access_log_.clear();
  const bool en = model_.enabled(ai, marking_, &access_log_);
  verify_access(ai, /*is_fire=*/false);
  return en;
}

double Executor::rate_checked(std::size_t ai) {
  if (!opts_.check_dependencies) return model_.exponential_rate(ai, marking_);
  access_log_.clear();
  const double r = model_.exponential_rate(ai, marking_, &access_log_);
  verify_access(ai, /*is_fire=*/false);
  return r;
}

void Executor::verify_access(std::size_t ai, bool is_fire) {
  const std::string& name = model_.activities()[ai].name;
  if (is_fire) {
    const auto declared = dep_->writes(ai);
    for (std::uint32_t s : access_log_.writes)
      if (!contains_slot(declared, s))
        throw util::ModelError("dependency violation: completion of '" + name +
                               "' wrote marking slot " + std::to_string(s) +
                               " outside its declared write set");
    return;
  }
  if (!access_log_.writes.empty())
    throw util::ModelError("dependency violation: predicate/rate of '" + name +
                           "' modified the marking (slot " +
                           std::to_string(access_log_.writes.front()) + ")");
  const auto declared = dep_->reads(ai);
  for (std::uint32_t s : access_log_.reads)
    if (!contains_slot(declared, s))
      throw util::ModelError("dependency violation: predicate/rate of '" +
                             name + "' read marking slot " + std::to_string(s) +
                             " outside its declared read set");
}

std::size_t Executor::choose_case(std::size_t ai) {
  const auto& act = model_.activities()[ai];
  if (act.cases.size() == 1) return 0;
  if (tm_.on) tm_.rng_draws.inc();
  // Case choices draw from the activity's own stream so both engines
  // consume replication-stream randomness identically.
  util::Rng& rng = act_rng_[ai];
  const std::vector<double> w = model_.case_weights(ai, marking_);
  if (embedded_mode_ && bias_cases_[ai] != nullptr) {
    const std::vector<double>& bw = *bias_cases_[ai];
    const std::size_t ci = util::sample_discrete(rng, bw);
    double tw = 0.0, tb = 0.0;
    for (double x : w) tw += x;
    for (double x : bw) tb += x;
    AHS_REQUIRE(tw > 0.0,
                "true case weights sum to zero for '" + act.name + "'");
    const double true_p = w[ci] / tw;
    const double bias_p = bw[ci] / tb;
    AHS_REQUIRE(bias_p > 0.0, "biased case with zero weight was sampled");
    lr_ *= true_p / bias_p;
    return ci;
  }
  return util::sample_discrete(rng, w);
}

void Executor::fire_activity(std::size_t ai) {
  const std::size_t ci = choose_case(ai);
  if (opts_.check_dependencies) {
    access_log_.clear();
    model_.fire(ai, ci, marking_, &access_log_);
    verify_access(ai, /*is_fire=*/true);
  } else {
    model_.fire(ai, ci, marking_);
  }
  if (on_fire) on_fire(ai, ci);
  if (incremental()) mark_affected_dirty(ai);
}

void Executor::mark_affected_dirty(std::size_t ai) {
  for (std::uint32_t k = aff_timed_off_[ai]; k < aff_timed_off_[ai + 1]; ++k) {
    const std::uint32_t b = aff_timed_[k];
    if (dirty_mark_[b] != dirty_epoch_) {
      dirty_mark_[b] = dirty_epoch_;
      dirty_.push_back(b);
    }
  }
  for (std::uint32_t k = aff_inst_off_[ai]; k < aff_inst_off_[ai + 1]; ++k) {
    const std::uint32_t p = aff_inst_pos_[k];
    if (!instant_in_cand_[p]) {
      instant_in_cand_[p] = 1;
      instant_cand_.push_back(p);
      std::push_heap(instant_cand_.begin(), instant_cand_.end(),
                     std::greater<std::uint32_t>());
    }
  }
}

void Executor::stabilize_instantaneous(std::size_t trigger) {
  if (instant_by_priority_.empty()) return;
  std::uint64_t firings = 0;
  const auto count_firing = [&] {
    if (++firings > opts_.max_instant_firings)
      throw util::ModelError(
          "instantaneous-activity loop detected (more than " +
          std::to_string(opts_.max_instant_firings) + " firings)");
  };

  if (!incremental()) {
    // Reference: restart the priority scan from the top after every firing.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t ai : instant_by_priority_) {
        if (!enabled_checked(ai)) continue;
        fire_activity(ai);
        count_firing();
        progress = true;
        break;
      }
    }
    if (tm_.on) {
      tm_.instant_firings.add(firings);
      tm_.stabilization.record(static_cast<double>(firings));
    }
    return;
  }

  // Incremental: only candidates — activities affected by the triggering
  // completion or by a previous instantaneous firing — can be enabled (after
  // a stabilization no instantaneous activity is enabled, so a fresh
  // enablement needs one of its read slots written).  Popping the minimum
  // position yields exactly the activity the reference scan would pick.
  if (trigger == SIZE_MAX) {
    // From reset: no triggering completion, every activity is a candidate.
    // 0..n-1 ascending already satisfies the min-heap property.
    instant_cand_.resize(instant_by_priority_.size());
    for (std::uint32_t p = 0; p < instant_cand_.size(); ++p)
      instant_cand_[p] = p;
    std::fill(instant_in_cand_.begin(), instant_in_cand_.end(), 1);
  }
  while (!instant_cand_.empty()) {
    std::pop_heap(instant_cand_.begin(), instant_cand_.end(),
                  std::greater<std::uint32_t>());
    const std::uint32_t p = instant_cand_.back();
    instant_cand_.pop_back();
    instant_in_cand_[p] = 0;
    const std::size_t ai = instant_by_priority_[p];
    if (!enabled_checked(ai)) continue;
    fire_activity(ai);  // re-queues p itself and everything it affected
    count_firing();
  }
  if (tm_.on) {
    tm_.instant_firings.add(firings);
    tm_.stabilization.record(static_cast<double>(firings));
  }
}

void Executor::reschedule(std::size_t ai) {
  if (!enabled_checked(ai)) {
    was_enabled_[ai] = false;
    if (is_scheduled(sched_[ai])) {
      sched_[ai] = kNotScheduled;
      if (incremental()) {
        heap_.erase(ai);
        if (tm_.on) tm_.heap_ops.inc();
      }
    }
    return;
  }
  const bool md = model_.marking_dependent(ai);
  bool resample = !was_enabled_[ai] || !is_scheduled(sched_[ai]);
  double rate = 0.0;
  if (md) {
    // Resample on a rate-value change: exact for exponential delays
    // (memorylessness) and identical across engines because an unexamined
    // activity's rate cannot have changed (its reads were not written).
    rate = rate_checked(ai);
    resample = resample || rate != cached_rate_[ai];
  }
  if (resample) {
    cached_rate_[ai] = rate;
    const double delay = md ? act_rng_[ai].exponential(rate)
                            : model_.sample_delay(ai, marking_, act_rng_[ai]);
    sched_[ai] = time_ + delay;
    if (incremental()) heap_.push_or_update(ai, sched_[ai]);
    if (tm_.on) {
      tm_.rng_draws.inc();
      if (incremental()) tm_.heap_ops.inc();
    }
  }
  was_enabled_[ai] = true;
}

void Executor::refresh_schedule_full() {
  for (std::size_t ai : timed_) reschedule(ai);
}

void Executor::refresh_rate_leaf(std::size_t ai) {
  const double r = enabled_checked(ai) ? rate_checked(ai) : 0.0;
  tree_rate_.set(ai, r);
  tree_weight_.set(ai, r * bias_boost_[ai]);
  if (tm_.on) tm_.sumtree_ops.add(2);
}

void Executor::refresh_rates_full() {
  std::fill(scratch_rates_.begin(), scratch_rates_.end(), 0.0);
  for (std::size_t ai : timed_)
    if (enabled_checked(ai)) scratch_rates_[ai] = rate_checked(ai);
  for (std::size_t ai = 0; ai < scratch_rates_.size(); ++ai)
    scratch_weights_[ai] = scratch_rates_[ai] * bias_boost_[ai];
  tree_rate_.rebuild(scratch_rates_);
  tree_weight_.rebuild(scratch_weights_);
}

std::optional<double> Executor::next_completion_time() {
  if (embedded_mode_) {
    // Delays are drawn at step time; this only reports whether the chain
    // can still move.  The rate tree is kept current by reset()/step().
    if (tree_rate_.total() <= 0.0) return std::nullopt;
    return time_;
  }
  if (incremental()) {
    if (heap_.empty()) return std::nullopt;
    return heap_.top().second;
  }
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t ai : timed_)
    if (is_scheduled(sched_[ai])) best = std::min(best, sched_[ai]);
  if (!std::isfinite(best)) return std::nullopt;
  return best;
}

bool Executor::step_scheduled() {
  std::size_t ai;
  if (incremental()) {
    if (heap_.empty()) return false;
    const auto [top_ai, top_t] = heap_.top();
    ai = top_ai;
    time_ = top_t;
    heap_.erase(ai);
  } else {
    // First strict minimum in activity-index order — the (time, index)
    // lexicographic rule the heap implements.
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_ai = SIZE_MAX;
    for (std::size_t a : timed_) {
      if (is_scheduled(sched_[a]) && sched_[a] < best) {
        best = sched_[a];
        best_ai = a;
      }
    }
    if (best_ai == SIZE_MAX) return false;
    ai = best_ai;
    time_ = best;
  }
  sched_[ai] = kNotScheduled;
  was_enabled_[ai] = false;  // the activation ends with this completion
  if (tm_.on && incremental()) tm_.heap_ops.inc();  // the top erase
  fire_activity(ai);
  ++events_;
  stabilize_instantaneous(ai);
  if (tm_.on) {
    tm_.events.inc();
    if (incremental())
      tm_.dirty_set.record(static_cast<double>(dirty_.size()));
  }
  if (incremental()) {
    for (std::size_t k = 0; k < dirty_.size(); ++k) reschedule(dirty_[k]);
    dirty_.clear();
    ++dirty_epoch_;
  } else {
    refresh_schedule_full();
  }
  return true;
}

bool Executor::step_embedded(double t_limit) {
  // Embedded-chain step: holding time from the true total rate, transition
  // choice from boosted weights, likelihood ratio updated with the
  // true/biased selection-probability quotient.  A jump sampled past
  // t_limit is discarded without firing — the marking at t_limit is the
  // pre-jump marking, and redrawing on the next call is statistically exact
  // because holding times are exponential (memoryless).
  const double total_rate = tree_rate_.total();
  if (total_rate <= 0.0) return false;
  const double jump = time_ + rng_.exponential(total_rate);
  if (jump > t_limit) return false;
  time_ = jump;

  const double total_weight = tree_weight_.total();
  const double u = rng_.uniform01() * total_weight;
  const std::size_t ai = tree_weight_.find_prefix(u);
  const double rate = tree_rate_.get(ai);
  lr_ *= (rate / total_rate) / (rate * bias_boost_[ai] / total_weight);

  fire_activity(ai);
  ++events_;
  stabilize_instantaneous(ai);
  if (tm_.on) {
    tm_.events.inc();
    tm_.rng_draws.add(2);  // holding time + transition selection
    if (incremental())
      tm_.dirty_set.record(static_cast<double>(dirty_.size()));
  }
  if (incremental()) {
    for (std::size_t k = 0; k < dirty_.size(); ++k)
      refresh_rate_leaf(dirty_[k]);
    dirty_.clear();
    ++dirty_epoch_;
  } else {
    refresh_rates_full();
  }
  return true;
}

bool Executor::step() {
  return embedded_mode_
             ? step_embedded(std::numeric_limits<double>::infinity())
             : step_scheduled();
}

std::uint64_t Executor::run_until(double t_end,
                                  const std::function<bool()>& stop) {
  std::uint64_t fired = 0;
  if (embedded_mode_) {
    while (step_embedded(t_end)) {
      ++fired;
      if (stop && stop()) break;
    }
    return fired;
  }
  while (true) {
    const auto next = next_completion_time();
    if (!next.has_value() || *next > t_end) break;
    step_scheduled();
    ++fired;
    if (stop && stop()) break;
  }
  return fired;
}

}  // namespace sim
