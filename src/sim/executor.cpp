#include "sim/executor.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "san/analyze/analysis.h"
#include "util/distributions.h"
#include "util/error.h"

namespace sim {

namespace {
constexpr double kNotScheduled = std::numeric_limits<double>::quiet_NaN();
inline bool is_scheduled(double t) { return !std::isnan(t); }

/// Domain tag separating per-activity streams from per-replication streams
/// (see util::Rng::split(idx, domain)).
constexpr std::uint64_t kActivityStreamDomain = 0x414354ull;  // "ACT"

bool contains_slot(std::span<const std::uint32_t> sorted, std::uint32_t s) {
  return std::binary_search(sorted.begin(), sorted.end(), s);
}

template <typename T>
std::span<T> arena_copy(util::Arena& arena, const std::vector<T>& src) {
  std::span<T> dst = arena.alloc_array<T>(src.size());
  std::copy(src.begin(), src.end(), dst.begin());
  return dst;
}
}  // namespace

Executor::Executor(const san::FlatModel& model, util::Rng rng, Options opts)
    : model_(model),
      rng_(rng),
      opts_(opts),
      heap_(model.activities().size()),
      dual_tree_(model.activities().size()) {
  const auto& acts = model_.activities();
  const std::size_t n = acts.size();
  bias_boost_ = arena_.alloc_array<double>(n);
  std::fill(bias_boost_.begin(), bias_boost_.end(), 1.0);
  bias_cases_ = arena_.alloc_array<const std::vector<double>*>(n);

  for (std::size_t i = 0; i < n; ++i) {
    if (acts[i].timed) timed_.push_back(i);
    else instant_by_priority_.push_back(i);
  }
  std::stable_sort(instant_by_priority_.begin(), instant_by_priority_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return acts[a].priority > acts[b].priority;
                   });
  instant_pos_ = arena_.alloc_array<std::uint32_t>(n);
  std::fill(instant_pos_.begin(), instant_pos_.end(), UINT32_MAX);
  for (std::size_t p = 0; p < instant_by_priority_.size(); ++p)
    instant_pos_[instant_by_priority_[p]] = static_cast<std::uint32_t>(p);
  instant_cand_bits_ =
      arena_.alloc_array<std::uint64_t>((instant_by_priority_.size() + 63) / 64);

  if (opts_.bias != nullptr && opts_.bias->active()) {
    AHS_REQUIRE(model_.all_exponential(),
                "importance sampling requires an all-exponential model");
    AHS_REQUIRE(opts_.bias->boost > 0.0, "bias boost must be > 0");
    embedded_mode_ = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (opts_.bias->boosted.count(acts[i].source_name))
        bias_boost_[i] = opts_.bias->boost;
      const auto it = opts_.bias->case_bias.find(acts[i].source_name);
      if (it != opts_.bias->case_bias.end()) {
        AHS_REQUIRE(it->second.size() == acts[i].cases.size(),
                    "case_bias for '" + acts[i].source_name +
                        "' must list one weight per case");
        bias_cases_[i] = &it->second;
      }
    }
  }

  if (opts_.shared_deps != nullptr) {
    dep_ = opts_.shared_deps;
  } else {
    owned_deps_ = std::make_unique<san::DependencyIndex>(
        san::DependencyIndex::build(model_));
    dep_ = owned_deps_.get();
  }

  if (opts_.lint)
    san::analyze::preflight_lint(model_, "Executor lint preflight",
                                 /*probe_budget=*/128,
                                 /*nonfatal_ids=*/{"NET003"});

  build_view();

  // Split each affected_by set by activity kind once, so per-event
  // propagation walks plain index lists.
  {
    std::vector<std::uint32_t> t_off(n + 1, 0), i_off(n + 1, 0);
    std::vector<std::uint32_t> t_idx, i_pos;
    for (std::size_t ai = 0; ai < n; ++ai) {
      for (std::uint32_t b : dep_->affected_by(ai)) {
        if (acts[b].timed) t_idx.push_back(b);
        else i_pos.push_back(instant_pos_[b]);
      }
      t_off[ai + 1] = static_cast<std::uint32_t>(t_idx.size());
      i_off[ai + 1] = static_cast<std::uint32_t>(i_pos.size());
    }
    aff_timed_off_ = arena_copy(arena_, t_off);
    aff_timed_ = arena_copy(arena_, t_idx);
    aff_inst_off_ = arena_copy(arena_, i_off);
    aff_inst_pos_ = arena_copy(arena_, i_pos);
  }

  {
    std::vector<std::uint32_t> roff(n + 1, 0), rslot;
    for (std::size_t ai = 0; ai < n; ++ai) {
      const auto reads = dep_->reads(ai);
      rslot.insert(rslot.end(), reads.begin(), reads.end());
      roff[ai + 1] = static_cast<std::uint32_t>(rslot.size());
    }
    read_off_ = arena_copy(arena_, roff);
    read_slot_ = arena_copy(arena_, rslot);
    read_val_ = arena_.alloc_array<std::int32_t>(rslot.size());
  }
  sig_state_ = arena_.alloc_array<std::uint8_t>(n);
  cache_ok_ = incremental() && !opts_.check_dependencies;

  sched_ = arena_.alloc_array<double>(n);
  was_enabled_ = arena_.alloc_array<std::uint8_t>(n);
  cached_rate_ = arena_.alloc_array<double>(n);
  dirty_mark_ = arena_.alloc_array<std::uint64_t>(n);
  act_rng_ = arena_.alloc_array<util::Rng>(n);
  dirty_.reserve(n);
  scratch_rates_.assign(n, 0.0);
  scratch_weights_.assign(n, 0.0);
  std::size_t max_cases = 1;
  for (const auto& a : acts) max_cases = std::max(max_cases, a.cases.size());
  case_w_.reserve(max_cases);
  initial_marking_ = model_.initial_marking();
  reset();
}

void Executor::build_view() {
  const auto& acts = model_.activities();
  const std::size_t n = acts.size();
  std::vector<std::uint32_t> arc_off(n + 1, 0), pred_off(n + 1, 0);
  std::vector<std::uint32_t> arc_slot;
  std::vector<std::int32_t> arc_weight;
  std::vector<const san::Predicate*> pred;
  for (std::size_t ai = 0; ai < n; ++ai) {
    for (const auto& arc : acts[ai].input_arcs) {
      arc_slot.push_back(arc.slot);
      arc_weight.push_back(arc.weight);
    }
    for (const auto& p : acts[ai].predicates) pred.push_back(&p);
    arc_off[ai + 1] = static_cast<std::uint32_t>(arc_slot.size());
    pred_off[ai + 1] = static_cast<std::uint32_t>(pred.size());
  }
  view_.arc_off = arena_copy(arena_, arc_off);
  view_.arc_slot = arena_copy(arena_, arc_slot);
  view_.arc_weight = arena_copy(arena_, arc_weight);
  view_.pred_off = arena_copy(arena_, pred_off);
  view_.pred = arena_copy(arena_, pred);
  view_.imap = arena_.alloc_array<const san::InstanceMap*>(n);
  view_.rate_fn = arena_.alloc_array<const san::RateFn*>(n);
  view_.const_rate = arena_.alloc_array<double>(n);
  view_.flags = arena_.alloc_array<std::uint8_t>(n);
  for (std::size_t ai = 0; ai < n; ++ai) {
    const san::FlatActivity& a = acts[ai];
    view_.imap[ai] = a.imap.get();
    std::uint8_t f = 0;
    if (a.rate_fn) {
      f |= kFlagMarkingDependent;
      view_.rate_fn[ai] = &a.rate_fn;
    } else if (a.timed && a.dist.has_value() && a.dist->is_exponential()) {
      f |= kFlagConstExponential;
      view_.const_rate[ai] = a.dist->rate();
    }
    if (a.cases.size() > 1) f |= kFlagMultiCase;
    view_.flags[ai] = f;
  }
}

void Executor::resolve_telemetry() {
  util::TraceRecorder* trc = util::TraceRecorder::global();
  if (trc != tr_recorder_) {
    tr_recorder_ = trc;
    tr_events_ =
        trc != nullptr ? trc->name("executor.events") : util::TraceName();
  }
  util::MetricsRegistry* reg = util::MetricsRegistry::global();
  if (reg == tm_registry_) return;
  tm_registry_ = reg;
  if (reg == nullptr) {
    tm_ = Telemetry{};
    return;
  }
  tm_.on = true;
  tm_.events = reg->counter("sim.executor.events");
  tm_.instant_firings = reg->counter("sim.executor.instant_firings");
  tm_.heap_ops = reg->counter("sim.executor.heap_ops");
  tm_.sumtree_ops = reg->counter("sim.executor.sumtree_ops");
  tm_.rng_draws = reg->counter("sim.executor.rng_draws");
  tm_.dirty_set = reg->histogram("sim.executor.dirty_set_size",
                                 {0, 1, 2, 4, 8, 16, 32, 64, 128});
  tm_.stabilization = reg->histogram("sim.executor.stabilization_depth",
                                     {0, 1, 2, 4, 8, 16, 32});
}

void Executor::reset() {
  resolve_telemetry();
  marking_.assign(initial_marking_.begin(), initial_marking_.end());
  time_ = 0.0;
  lr_ = 1.0;
  events_ = 0;

  // Per-activity streams are a pure function of (replication stream,
  // activity index), so trajectories do not depend on which activities an
  // engine happens to re-examine.
  const std::size_t n = model_.activities().size();
  for (std::size_t ai = 0; ai < n; ++ai)
    act_rng_[ai] = rng_.split(ai, kActivityStreamDomain);

  std::fill(sched_.begin(), sched_.end(), kNotScheduled);
  std::fill(was_enabled_.begin(), was_enabled_.end(), 0);
  std::fill(sig_state_.begin(), sig_state_.end(), 0);
  heap_.clear();
  dirty_.clear();
  ++dirty_epoch_;
  std::fill(instant_cand_bits_.begin(), instant_cand_bits_.end(), 0);

  stabilize_instantaneous(SIZE_MAX);
  // The stabilization queued affected timed activities; the full (re)build
  // below subsumes that.
  dirty_.clear();
  ++dirty_epoch_;
  if (embedded_mode_) refresh_rates_full();
  else refresh_schedule_full();
}

void Executor::reset(util::Rng rng) {
  rng_ = rng;
  reset();
}

bool Executor::enabled_fast(std::size_t ai) const {
  const std::uint32_t a0 = view_.arc_off[ai], a1 = view_.arc_off[ai + 1];
  for (std::uint32_t k = a0; k < a1; ++k)
    if (marking_[view_.arc_slot[k]] < view_.arc_weight[k]) return false;
  const std::uint32_t p0 = view_.pred_off[ai], p1 = view_.pred_off[ai + 1];
  if (p0 != p1) {
    const san::MarkingRef ref(
        std::span<std::int32_t>(const_cast<std::int32_t*>(marking_.data()),
                                marking_.size()),
        view_.imap[ai]);
    for (std::uint32_t k = p0; k < p1; ++k)
      if (!(*view_.pred[k])(ref)) return false;
  }
  return true;
}

bool Executor::enabled_checked(std::size_t ai) {
  if (!opts_.check_dependencies) return enabled_fast(ai);
  access_log_.clear();
  const bool en = model_.enabled(ai, marking_, &access_log_);
  verify_access(ai, /*is_fire=*/false);
  return en;
}

double Executor::rate_fast(std::size_t ai) {
  if (view_.flags[ai] & kFlagConstExponential) return view_.const_rate[ai];
  if (view_.flags[ai] & kFlagMarkingDependent) {
    const san::MarkingRef ref(marking_, view_.imap[ai]);
    const double r = (*view_.rate_fn[ai])(ref);
    if (!(r > 0.0)) {
      // Reproduce the reference path's diagnostic exactly.
      return model_.exponential_rate(ai, marking_);
    }
    return r;
  }
  return model_.exponential_rate(ai, marking_);  // non-exponential: throws
}

double Executor::rate_checked(std::size_t ai) {
  if (!opts_.check_dependencies) return rate_fast(ai);
  access_log_.clear();
  const double r = model_.exponential_rate(ai, marking_, &access_log_);
  verify_access(ai, /*is_fire=*/false);
  return r;
}

bool Executor::sig_match(std::size_t ai) const {
  const std::uint32_t r0 = read_off_[ai], r1 = read_off_[ai + 1];
  for (std::uint32_t k = r0; k < r1; ++k)
    if (marking_[read_slot_[k]] != read_val_[k]) return false;
  return true;
}

void Executor::sig_store(std::size_t ai, bool enabled) {
  const std::uint32_t r0 = read_off_[ai], r1 = read_off_[ai + 1];
  for (std::uint32_t k = r0; k < r1; ++k)
    read_val_[k] = marking_[read_slot_[k]];
  sig_state_[ai] = enabled ? 2 : 1;
}

void Executor::verify_access(std::size_t ai, bool is_fire) {
  const std::string& name = model_.activities()[ai].name;
  if (is_fire) {
    const auto declared = dep_->writes(ai);
    for (std::uint32_t s : access_log_.writes)
      if (!contains_slot(declared, s))
        throw util::ModelError("dependency violation: completion of '" + name +
                               "' wrote marking slot " + std::to_string(s) +
                               " outside its declared write set");
    return;
  }
  if (!access_log_.writes.empty())
    throw util::ModelError("dependency violation: predicate/rate of '" + name +
                           "' modified the marking (slot " +
                           std::to_string(access_log_.writes.front()) + ")");
  const auto declared = dep_->reads(ai);
  for (std::uint32_t s : access_log_.reads)
    if (!contains_slot(declared, s))
      throw util::ModelError("dependency violation: predicate/rate of '" +
                             name + "' read marking slot " + std::to_string(s) +
                             " outside its declared read set");
}

std::size_t Executor::choose_case(std::size_t ai) {
  if (!(view_.flags[ai] & kFlagMultiCase)) return 0;
  if (tm_.on) tm_.rng_draws.inc();
  // Case choices draw from the activity's own stream so both engines
  // consume replication-stream randomness identically.
  util::Rng& rng = act_rng_[ai];
  model_.case_weights_into(ai, marking_, case_w_);
  if (embedded_mode_ && bias_cases_[ai] != nullptr) {
    const std::vector<double>& bw = *bias_cases_[ai];
    const std::size_t ci = util::sample_discrete(rng, bw);
    double tw = 0.0, tb = 0.0;
    for (double x : case_w_) tw += x;
    for (double x : bw) tb += x;
    AHS_REQUIRE(tw > 0.0, "true case weights sum to zero for '" +
                              model_.activities()[ai].name + "'");
    const double true_p = case_w_[ci] / tw;
    const double bias_p = bw[ci] / tb;
    AHS_REQUIRE(bias_p > 0.0, "biased case with zero weight was sampled");
    lr_ *= true_p / bias_p;
    return ci;
  }
  return util::sample_discrete(rng, std::span<const double>(case_w_));
}

void Executor::fire_activity(std::size_t ai) {
  const std::size_t ci = choose_case(ai);
  if (opts_.check_dependencies) {
    access_log_.clear();
    model_.fire(ai, ci, marking_, &access_log_);
    verify_access(ai, /*is_fire=*/true);
  } else {
    model_.fire(ai, ci, marking_);
  }
  if (on_fire) on_fire(ai, ci);
  if (incremental()) mark_affected_dirty(ai);
}

void Executor::mark_affected_dirty(std::size_t ai) {
  for (std::uint32_t k = aff_timed_off_[ai]; k < aff_timed_off_[ai + 1]; ++k) {
    const std::uint32_t b = aff_timed_[k];
    if (dirty_mark_[b] != dirty_epoch_) {
      dirty_mark_[b] = dirty_epoch_;
      dirty_.push_back(b);
    }
  }
  for (std::uint32_t k = aff_inst_off_[ai]; k < aff_inst_off_[ai + 1]; ++k) {
    const std::uint32_t p = aff_inst_pos_[k];
    instant_cand_bits_[p >> 6] |= std::uint64_t{1} << (p & 63);
  }
}

void Executor::stabilize_instantaneous(std::size_t trigger) {
  if (instant_by_priority_.empty()) return;
  std::uint64_t firings = 0;
  const auto count_firing = [&] {
    if (++firings > opts_.max_instant_firings)
      throw util::ModelError(
          "instantaneous-activity loop detected (more than " +
          std::to_string(opts_.max_instant_firings) + " firings)");
  };

  if (!incremental()) {
    // Reference: restart the priority scan from the top after every firing.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t ai : instant_by_priority_) {
        if (!enabled_checked(ai)) continue;
        fire_activity(ai);
        count_firing();
        progress = true;
        break;
      }
    }
    if (tm_.on) {
      tm_.instant_firings.add(firings);
      tm_.stabilization.record(static_cast<double>(firings));
    }
    return;
  }

  // Incremental: only candidates — activities affected by the triggering
  // completion or by a previous instantaneous firing — can be enabled (after
  // a stabilization no instantaneous activity is enabled, so a fresh
  // enablement needs one of its read slots written).  Popping the minimum
  // position yields exactly the activity the reference scan would pick.
  if (trigger == SIZE_MAX) {
    // From reset: no triggering completion, every activity is a candidate.
    const std::size_t m = instant_by_priority_.size();
    for (std::size_t w = 0; w < instant_cand_bits_.size(); ++w)
      instant_cand_bits_[w] = ~std::uint64_t{0};
    if (m % 64 != 0)
      instant_cand_bits_.back() = (std::uint64_t{1} << (m % 64)) - 1;
  }
  for (std::size_t w = 0; w < instant_cand_bits_.size();) {
    const std::uint64_t word = instant_cand_bits_[w];
    if (word == 0) {
      ++w;
      continue;
    }
    const std::uint32_t bit =
        static_cast<std::uint32_t>(std::countr_zero(word));
    instant_cand_bits_[w] = word & (word - 1);  // clear lowest set bit
    const std::uint32_t p = static_cast<std::uint32_t>(w * 64) + bit;
    const std::size_t ai = instant_by_priority_[p];
    if (cache_ok_) {
      const std::uint8_t s = sig_state_[ai];
      if (s != 0 && sig_match(ai)) {
        if (s == 1) continue;
      } else {
        const bool en = enabled_fast(ai);
        sig_store(ai, en);
        if (!en) continue;
      }
    } else {
      if (!enabled_checked(ai)) continue;
    }
    fire_activity(ai);  // re-queues p itself and everything it affected
    count_firing();
    w = 0;  // the firing may have enabled a higher-priority candidate
  }
  if (tm_.on) {
    tm_.instant_firings.add(firings);
    tm_.stabilization.record(static_cast<double>(firings));
  }
}

void Executor::reschedule(std::size_t ai) {
  bool en;
  if (cache_ok_) {
    const std::uint8_t s = sig_state_[ai];
    if (s != 0 && sig_match(ai)) {
      // Unchanged reads, unchanged verdict.  Disabled: nothing is held.
      // Enabled with a live activation: the delay sample survives and a
      // marking-dependent rate cannot have moved, so the reference
      // re-examination would be a no-op too.
      if (s == 1) return;
      if (was_enabled_[ai] && is_scheduled(sched_[ai])) return;
      en = true;  // just completed and still enabled: resample below
    } else {
      en = enabled_fast(ai);
      sig_store(ai, en);
    }
  } else {
    en = enabled_checked(ai);
  }
  if (!en) {
    was_enabled_[ai] = 0;
    if (is_scheduled(sched_[ai])) {
      sched_[ai] = kNotScheduled;
      if (incremental()) {
        heap_.erase(ai);
        if (tm_.on) tm_.heap_ops.inc();
      }
    }
    return;
  }
  const bool md = (view_.flags[ai] & kFlagMarkingDependent) != 0;
  bool resample = !was_enabled_[ai] || !is_scheduled(sched_[ai]);
  double rate = 0.0;
  if (md) {
    // Resample on a rate-value change: exact for exponential delays
    // (memorylessness) and identical across engines because an unexamined
    // activity's rate cannot have changed (its reads were not written).
    rate = rate_checked(ai);
    resample = resample || rate != cached_rate_[ai];
  }
  if (resample) {
    cached_rate_[ai] = rate;
    double delay;
    if (md) {
      delay = act_rng_[ai].exponential(rate);
    } else if (view_.flags[ai] & kFlagConstExponential) {
      // Same draw as Distribution::sample on an exponential — one
      // rng.exponential(rate) — without touching the fat activity struct.
      delay = act_rng_[ai].exponential(view_.const_rate[ai]);
    } else {
      delay = model_.sample_delay(ai, marking_, act_rng_[ai]);
    }
    sched_[ai] = time_ + delay;
    if (incremental()) heap_.push_or_update(ai, sched_[ai]);
    if (tm_.on) {
      tm_.rng_draws.inc();
      if (incremental()) tm_.heap_ops.inc();
    }
  }
  was_enabled_[ai] = 1;
}

void Executor::refresh_schedule_full() {
  for (std::size_t ai : timed_) reschedule(ai);
}

void Executor::refresh_rate_leaf(std::size_t ai) {
  if (cache_ok_) {
    // The leaf was written at the last evaluation, so unchanged reads mean
    // it already holds the right value.
    if (sig_state_[ai] != 0 && sig_match(ai)) return;
    const bool en = enabled_fast(ai);
    sig_store(ai, en);
    const double r = en ? rate_fast(ai) : 0.0;
    dual_tree_.set(ai, r, r * bias_boost_[ai]);
    if (tm_.on) tm_.sumtree_ops.add(2);
    return;
  }
  const double r = enabled_checked(ai) ? rate_checked(ai) : 0.0;
  dual_tree_.set(ai, r, r * bias_boost_[ai]);
  if (tm_.on) tm_.sumtree_ops.add(2);
}

void Executor::refresh_rates_full() {
  std::fill(scratch_rates_.begin(), scratch_rates_.end(), 0.0);
  for (std::size_t ai : timed_)
    if (enabled_checked(ai)) scratch_rates_[ai] = rate_checked(ai);
  for (std::size_t ai = 0; ai < scratch_rates_.size(); ++ai)
    scratch_weights_[ai] = scratch_rates_[ai] * bias_boost_[ai];
  dual_tree_.rebuild(scratch_rates_, scratch_weights_);
}

std::optional<double> Executor::next_completion_time() {
  if (embedded_mode_) {
    // Delays are drawn at step time; this only reports whether the chain
    // can still move.  The rate tree is kept current by reset()/step().
    if (dual_tree_.total_rate() <= 0.0) return std::nullopt;
    return time_;
  }
  if (incremental()) {
    if (heap_.empty()) return std::nullopt;
    return heap_.top().second;
  }
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t ai : timed_)
    if (is_scheduled(sched_[ai])) best = std::min(best, sched_[ai]);
  if (!std::isfinite(best)) return std::nullopt;
  return best;
}

bool Executor::step_scheduled() {
  std::size_t ai;
  if (incremental()) {
    if (heap_.empty()) return false;
    const auto [top_ai, top_t] = heap_.top();
    ai = top_ai;
    time_ = top_t;
    heap_.erase(ai);
  } else {
    // First strict minimum in activity-index order — the (time, index)
    // lexicographic rule the heap implements.
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_ai = SIZE_MAX;
    for (std::size_t a : timed_) {
      if (is_scheduled(sched_[a]) && sched_[a] < best) {
        best = sched_[a];
        best_ai = a;
      }
    }
    if (best_ai == SIZE_MAX) return false;
    ai = best_ai;
    time_ = best;
  }
  sched_[ai] = kNotScheduled;
  was_enabled_[ai] = 0;  // the activation ends with this completion
  if (tm_.on && incremental()) tm_.heap_ops.inc();  // the top erase
  fire_activity(ai);
  ++events_;
  stabilize_instantaneous(ai);
  if (tm_.on) {
    tm_.events.inc();
    if (incremental())
      tm_.dirty_set.record(static_cast<double>(dirty_.size()));
  }
  if (incremental()) {
    for (std::size_t k = 0; k < dirty_.size(); ++k) reschedule(dirty_[k]);
    dirty_.clear();
    ++dirty_epoch_;
  } else {
    refresh_schedule_full();
  }
  return true;
}

bool Executor::step_embedded(double t_limit) {
  // Embedded-chain step: holding time from the true total rate, transition
  // choice from boosted weights, likelihood ratio updated with the
  // true/biased selection-probability quotient.  A jump sampled past
  // t_limit is discarded without firing — the marking at t_limit is the
  // pre-jump marking, and redrawing on the next call is statistically exact
  // because holding times are exponential (memoryless).
  const double total_rate = dual_tree_.total_rate();
  if (total_rate <= 0.0) return false;
  const double jump = time_ + rng_.exponential(total_rate);
  if (jump > t_limit) return false;
  time_ = jump;

  const double total_weight = dual_tree_.total_weight();
  const double u = rng_.uniform01() * total_weight;
  const std::size_t ai = dual_tree_.find_prefix_weight(u);
  const double rate = dual_tree_.rate(ai);
  lr_ *= (rate / total_rate) / (rate * bias_boost_[ai] / total_weight);

  fire_activity(ai);
  ++events_;
  stabilize_instantaneous(ai);
  if (tm_.on) {
    tm_.events.inc();
    tm_.rng_draws.add(2);  // holding time + transition selection
    if (incremental())
      tm_.dirty_set.record(static_cast<double>(dirty_.size()));
  }
  if (incremental()) {
    for (std::size_t k = 0; k < dirty_.size(); ++k)
      refresh_rate_leaf(dirty_[k]);
    dirty_.clear();
    ++dirty_epoch_;
  } else {
    refresh_rates_full();
  }
  return true;
}

bool Executor::step() {
  return embedded_mode_
             ? step_embedded(std::numeric_limits<double>::infinity())
             : step_scheduled();
}

// One counter sample per run_until call (not per event): the trace timeline
// gets an events-processed track without touching the per-event hot path.
void Executor::note_events_fired(std::uint64_t fired) {
  if (fired > 0) {
    tr_events_total_ += fired;
    tr_events_.counter(tr_events_total_);
  }
}

std::uint64_t Executor::run_until(double t_end,
                                  const std::function<bool()>& stop) {
  std::uint64_t fired = 0;
  if (embedded_mode_) {
    while (step_embedded(t_end)) {
      ++fired;
      if (stop && stop()) break;
    }
    note_events_fired(fired);
    return fired;
  }
  while (true) {
    const auto next = next_completion_time();
    if (!next.has_value() || *next > t_end) break;
    step_scheduled();
    ++fired;
    if (stop && stop()) break;
  }
  note_events_fired(fired);
  return fired;
}

}  // namespace sim
