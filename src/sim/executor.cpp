#include "sim/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/distributions.h"
#include "util/error.h"

namespace sim {

namespace {
constexpr double kNotScheduled = std::numeric_limits<double>::quiet_NaN();
inline bool scheduled(double t) { return !std::isnan(t); }
}  // namespace

Executor::Executor(const san::FlatModel& model, util::Rng rng, Options opts)
    : model_(model), rng_(rng), opts_(opts) {
  const auto& acts = model_.activities();
  bias_boost_.assign(acts.size(), 1.0);
  bias_cases_.assign(acts.size(), nullptr);

  for (std::size_t i = 0; i < acts.size(); ++i) {
    if (acts[i].timed) timed_.push_back(i);
    else instant_by_priority_.push_back(i);
  }
  std::stable_sort(instant_by_priority_.begin(), instant_by_priority_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return acts[a].priority > acts[b].priority;
                   });

  if (opts_.bias != nullptr && opts_.bias->active()) {
    AHS_REQUIRE(model_.all_exponential(),
                "importance sampling requires an all-exponential model");
    AHS_REQUIRE(opts_.bias->boost > 0.0, "bias boost must be > 0");
    embedded_mode_ = true;
    for (std::size_t i = 0; i < acts.size(); ++i) {
      if (opts_.bias->boosted.count(acts[i].source_name))
        bias_boost_[i] = opts_.bias->boost;
      const auto it = opts_.bias->case_bias.find(acts[i].source_name);
      if (it != opts_.bias->case_bias.end()) {
        AHS_REQUIRE(it->second.size() == acts[i].cases.size(),
                    "case_bias for '" + acts[i].source_name +
                        "' must list one weight per case");
        bias_cases_[i] = &it->second;
      }
    }
  }

  sched_.assign(acts.size(), kNotScheduled);
  was_enabled_.assign(acts.size(), false);
  reset();
}

void Executor::reset() {
  marking_ = model_.initial_marking();
  time_ = 0.0;
  lr_ = 1.0;
  events_ = 0;
  std::fill(sched_.begin(), sched_.end(), kNotScheduled);
  std::fill(was_enabled_.begin(), was_enabled_.end(), false);
  stabilize_instantaneous();
  if (!embedded_mode_) refresh_schedule();
}

void Executor::reset(util::Rng rng) {
  rng_ = rng;
  reset();
}

std::size_t Executor::choose_case(std::size_t ai) {
  const auto& act = model_.activities()[ai];
  if (act.cases.size() == 1) return 0;
  const std::vector<double> w = model_.case_weights(ai, marking_);
  if (embedded_mode_ && bias_cases_[ai] != nullptr) {
    const std::vector<double>& bw = *bias_cases_[ai];
    const std::size_t ci = util::sample_discrete(rng_, bw);
    double tw = 0.0, tb = 0.0;
    for (double x : w) tw += x;
    for (double x : bw) tb += x;
    AHS_REQUIRE(tw > 0.0, "true case weights sum to zero for '" + act.name +
                              "'");
    const double true_p = w[ci] / tw;
    const double bias_p = bw[ci] / tb;
    AHS_REQUIRE(bias_p > 0.0, "biased case with zero weight was sampled");
    lr_ *= true_p / bias_p;
    return ci;
  }
  return util::sample_discrete(rng_, w);
}

void Executor::stabilize_instantaneous() {
  if (instant_by_priority_.empty()) return;
  std::uint64_t firings = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t ai : instant_by_priority_) {
      if (!model_.enabled(ai, marking_)) continue;
      const std::size_t ci = choose_case(ai);
      model_.fire(ai, ci, marking_);
      if (on_fire) on_fire(ai, ci);
      if (++firings > opts_.max_instant_firings)
        throw util::ModelError(
            "instantaneous-activity loop detected (more than " +
            std::to_string(opts_.max_instant_firings) + " firings)");
      progress = true;
      break;  // restart the priority scan from the top
    }
  }
}

void Executor::refresh_schedule() {
  for (std::size_t ai : timed_) {
    const bool en = model_.enabled(ai, marking_);
    if (en) {
      const bool resample = !was_enabled_[ai] || model_.marking_dependent(ai);
      if (resample || !scheduled(sched_[ai]))
        sched_[ai] = time_ + model_.sample_delay(ai, marking_, rng_);
    } else {
      sched_[ai] = kNotScheduled;
    }
    was_enabled_[ai] = en;
  }
}

std::optional<double> Executor::next_completion_time() {
  if (embedded_mode_) {
    // In embedded mode delays are drawn at step time; expose the expected
    // next time only as "now" plus a fresh sample would be wrong, so report
    // whether any activity is enabled by probing rates.
    double total = 0.0;
    for (std::size_t ai : timed_)
      if (model_.enabled(ai, marking_))
        total += model_.exponential_rate(ai, marking_);
    if (total <= 0.0) return std::nullopt;
    // The caller only uses this to decide whether to keep stepping; the
    // actual jump time is sampled inside step().  Report current time.
    return time_;
  }
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t ai : timed_)
    if (scheduled(sched_[ai])) best = std::min(best, sched_[ai]);
  if (!std::isfinite(best)) return std::nullopt;
  return best;
}

bool Executor::step_scheduled() {
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_ai = SIZE_MAX;
  for (std::size_t ai : timed_) {
    if (scheduled(sched_[ai]) && sched_[ai] < best) {
      best = sched_[ai];
      best_ai = ai;
    }
  }
  if (best_ai == SIZE_MAX) return false;
  time_ = best;
  const std::size_t ci = choose_case(best_ai);
  model_.fire(best_ai, ci, marking_);
  if (on_fire) on_fire(best_ai, ci);
  ++events_;
  sched_[best_ai] = kNotScheduled;
  was_enabled_[best_ai] = false;
  stabilize_instantaneous();
  refresh_schedule();
  return true;
}

bool Executor::step_embedded() {
  // Embedded-chain step: holding time from the true total rate, transition
  // choice from boosted weights, likelihood ratio updated with the
  // true/biased selection-probability quotient.
  double total_rate = 0.0;
  double total_weight = 0.0;
  std::vector<std::pair<std::size_t, double>> enabled;  // (ai, rate)
  enabled.reserve(timed_.size());
  for (std::size_t ai : timed_) {
    if (!model_.enabled(ai, marking_)) continue;
    const double r = model_.exponential_rate(ai, marking_);
    enabled.emplace_back(ai, r);
    total_rate += r;
    total_weight += r * bias_boost_[ai];
  }
  if (enabled.empty() || total_rate <= 0.0) return false;

  time_ += rng_.exponential(total_rate);

  double u = rng_.uniform01() * total_weight;
  std::size_t pick = enabled.size() - 1;
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    const double w = enabled[i].second * bias_boost_[enabled[i].first];
    if (u < w) {
      pick = i;
      break;
    }
    u -= w;
  }
  const auto [ai, rate] = enabled[pick];
  const double true_p = rate / total_rate;
  const double bias_p = rate * bias_boost_[ai] / total_weight;
  lr_ *= true_p / bias_p;

  const std::size_t ci = choose_case(ai);
  model_.fire(ai, ci, marking_);
  if (on_fire) on_fire(ai, ci);
  ++events_;
  stabilize_instantaneous();
  return true;
}

bool Executor::step() {
  return embedded_mode_ ? step_embedded() : step_scheduled();
}

std::uint64_t Executor::run_until(double t_end,
                                  const std::function<bool()>& stop) {
  std::uint64_t fired = 0;
  if (embedded_mode_) {
    // Sample the jump first; if it lands beyond t_end we must NOT execute it
    // — the marking at t_end is the pre-jump marking.  Because holding times
    // are exponential (memoryless), discarding the overshooting sample and
    // re-drawing on the next call is statistically exact.
    while (true) {
      double total_rate = 0.0;
      for (std::size_t ai : timed_)
        if (model_.enabled(ai, marking_))
          total_rate += model_.exponential_rate(ai, marking_);
      if (total_rate <= 0.0) break;
      const double jump = time_ + rng_.exponential(total_rate);
      if (jump > t_end) break;
      // Re-do the step with the jump time fixed: choose the transition.
      // (step_embedded would resample the time; inline the choice here.)
      double total_weight = 0.0;
      std::vector<std::pair<std::size_t, double>> enabled;
      for (std::size_t ai : timed_) {
        if (!model_.enabled(ai, marking_)) continue;
        const double r = model_.exponential_rate(ai, marking_);
        enabled.emplace_back(ai, r);
        total_weight += r * bias_boost_[ai];
      }
      time_ = jump;
      double u = rng_.uniform01() * total_weight;
      std::size_t pick = enabled.size() - 1;
      for (std::size_t i = 0; i < enabled.size(); ++i) {
        const double w = enabled[i].second * bias_boost_[enabled[i].first];
        if (u < w) {
          pick = i;
          break;
        }
        u -= w;
      }
      const auto [ai, rate] = enabled[pick];
      lr_ *= (rate / total_rate) / (rate * bias_boost_[ai] / total_weight);
      const std::size_t ci = choose_case(ai);
      model_.fire(ai, ci, marking_);
      if (on_fire) on_fire(ai, ci);
      ++events_;
      ++fired;
      stabilize_instantaneous();
      if (stop && stop()) break;
    }
    return fired;
  }
  while (true) {
    const auto next = next_completion_time();
    if (!next.has_value() || *next > t_end) break;
    step();
    ++fired;
    if (stop && stop()) break;
  }
  return fired;
}

}  // namespace sim
