// Replication-based transient estimation — the paper's protocol (§4.1):
// repeat terminating simulations until every requested time point's
// estimate converges to the target relative confidence-interval half-width.
//
// The estimator supports an "absorbing reward" fast path for first-passage
// measures like the paper's unsafety S(t) = P[KO_total marked by t]: once
// the reward becomes positive the replication's contribution to every later
// time point is fixed (the likelihood ratio at absorption), so the
// replication stops early.
#pragma once

#include <cstdint>
#include <vector>

#include "san/rewards.h"
#include "sim/executor.h"
#include "util/stats.h"

namespace sim {

struct TransientOptions {
  /// Strictly increasing evaluation times (> 0).
  std::vector<double> time_points;

  std::uint64_t min_replications = 100;
  std::uint64_t max_replications = 1'000'000;
  /// Convergence target: relative CI half-width at the *last* time point
  /// (the paper's 0.1 at 95 %).
  double rel_half_width = 0.1;
  double confidence = 0.95;
  /// Convergence is checked every this many replications.
  std::uint64_t check_every = 1000;

  /// Treat the reward as a {0,1} absorbing indicator and stop replications
  /// at first absorption.
  bool absorbing_indicator = true;

  /// Optional importance-sampling plan (see Executor).
  const BiasPlan* bias = nullptr;

  /// Importance-sampling health check: warn through the thread-safe logger
  /// (module "sim") when the Kish effective sample size of the path
  /// likelihood ratios falls below this fraction of the replication count.
  /// Only checked when `bias` is active; 0 disables.
  double ess_warn_floor = 0.05;

  /// Simulation engine (see Executor::Engine).  Both produce identical
  /// trajectories; kFullRescan exists for conformance checks and benchmarks.
  Executor::Engine engine = Executor::Engine::kIncremental;

  /// Forwarded to Executor::Options::check_dependencies (slow; for tests).
  bool check_dependencies = false;

  std::uint64_t seed = 42;

  /// Worker threads (1 = sequential).  Replication r always uses the RNG
  /// stream derived from (seed, r) regardless of the thread count, so the
  /// sampled trajectories are identical for any `threads` value; only the
  /// floating-point merge order (and hence the last few ulps of the
  /// variance estimate) can differ.
  std::uint32_t threads = 1;
};

struct TransientResult {
  std::vector<double> time_points;
  std::vector<util::ConfidenceInterval> estimates;  ///< one per time point
  std::uint64_t replications = 0;
  std::uint64_t total_events = 0;
  bool converged = false;

  // Importance-sampling diagnostics over the per-replication path
  // likelihood ratios (all exactly 1 without biasing, so ess ==
  // replications and lr_variance == 0 then).
  double ess = 0.0;          ///< Kish effective sample size (Σw)²/Σw²
  double lr_variance = 0.0;  ///< sample variance of the likelihood ratios

  /// Relative CI half-width at the last time point, recorded at every
  /// convergence check (one entry per check_every round) — the convergence
  /// trajectory an analyst reads to judge estimator health.
  std::vector<double> rel_half_width_trajectory;

  /// Point estimate at time_points[i].
  double mean(std::size_t i) const { return estimates.at(i).mean; }
};

/// Estimates E[reward(marking at t)] for each requested t.
TransientResult estimate_transient(const san::FlatModel& model,
                                   const san::RewardFn& reward,
                                   const TransientOptions& options);

}  // namespace sim
