// Replication-based transient estimation — the paper's protocol (§4.1):
// repeat terminating simulations until every requested time point's
// estimate converges to the target relative confidence-interval half-width.
//
// The estimator supports an "absorbing reward" fast path for first-passage
// measures like the paper's unsafety S(t) = P[KO_total marked by t]: once
// the reward becomes positive the replication's contribution to every later
// time point is fixed (the likelihood ratio at absorption), so the
// replication stops early.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "san/rewards.h"
#include "sim/executor.h"
#include "util/stats.h"

namespace sim {

/// Why estimate_transient stopped pushing replications.
enum class TransientStop {
  kRelHalfWidth,     ///< relative CI criterion met (the paper's protocol)
  kAbsHalfWidth,     ///< absolute half-width floor met (see abs_half_width)
  kMaxReplications,  ///< replication budget exhausted, not converged
  kCancelled,        ///< cooperative stop flag set (checkpoint flushed)
  kTimedOut,         ///< wall-clock budget exhausted (checkpoint flushed)
};

const char* to_string(TransientStop s);

struct TransientOptions {
  /// Strictly increasing evaluation times (> 0).
  std::vector<double> time_points;

  std::uint64_t min_replications = 100;
  std::uint64_t max_replications = 1'000'000;
  /// Convergence target: relative CI half-width at the *last* time point
  /// (the paper's 0.1 at 95 %).
  double rel_half_width = 0.1;
  /// Absolute half-width floor: also converged once the last time point's
  /// CI half-width is <= this (0 disables).  Guards the mean-zero trap —
  /// a configuration whose estimate is still exactly 0 has an infinite
  /// *relative* half-width forever and would otherwise silently burn
  /// max_replications.  Stopping via this floor is reported as
  /// TransientStop::kAbsHalfWidth and logged as a warning.
  double abs_half_width = 0.0;
  double confidence = 0.95;
  /// Convergence is checked every this many replications.
  std::uint64_t check_every = 1000;

  /// Treat the reward as a {0,1} absorbing indicator and stop replications
  /// at first absorption.
  bool absorbing_indicator = true;

  /// Optional importance-sampling plan (see Executor).
  const BiasPlan* bias = nullptr;

  /// Importance-sampling health check: warn through the thread-safe logger
  /// (module "sim") when the Kish effective sample size of the path
  /// likelihood ratios falls below this fraction of the replication count.
  /// Only checked when `bias` is active; 0 disables.
  double ess_warn_floor = 0.05;

  /// Simulation engine (see Executor::Engine).  Both produce identical
  /// trajectories; kFullRescan exists for conformance checks and benchmarks.
  Executor::Engine engine = Executor::Engine::kIncremental;

  /// Forwarded to Executor::Options::check_dependencies (slow; for tests).
  bool check_dependencies = false;

  std::uint64_t seed = 42;

  /// Worker threads (1 = sequential).  Replication r always uses the RNG
  /// stream derived from (seed, r) regardless of the thread count, so the
  /// sampled trajectories are identical for any `threads` value; only the
  /// floating-point merge order (and hence the last few ulps of the
  /// variance estimate) can differ.
  std::uint32_t threads = 1;

  /// Replications per lockstep batch: each worker pre-splits the RNG
  /// streams for its next `batch_size` replications into a table, then
  /// runs the batch back-to-back against the shared model structure (one
  /// DependencyIndex and one lint pass serve every worker and batch).
  /// Streams stay (seed, r)-derived and the merge order is untouched, so
  /// the estimate is bitwise identical for every batch size — unlike
  /// `threads`, batch_size is NOT part of the checkpoint identity
  /// (docs/ROBUSTNESS.md).
  std::uint32_t batch_size = 16;

  // ---- robustness (docs/ROBUSTNESS.md) --------------------------------
  // Replication r always draws from the stream derived from (seed, r) and
  // accumulators merge at fixed round boundaries, so a run resumed from a
  // checkpoint taken at a round boundary is *bitwise identical* to an
  // uninterrupted run (asserted by the `robust` ctest label).

  /// Checkpoint file ("" disables).  Written atomically (util/snapshot)
  /// every `checkpoint_every` completed replications, and flushed once
  /// more on cancellation, timeout, and completion.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 50'000;
  /// Resume from checkpoint_path when the file exists.  A checkpoint whose
  /// header (model fingerprint, seed, option hash) does not match throws
  /// util::SnapshotError — stale state is rejected, never merged.
  bool resume = false;
  /// Model identity recorded in the checkpoint header; callers holding an
  /// ahs::Parameters pass structural_fingerprint() (0 is a valid "no
  /// fingerprint" identity — it still must match on resume).
  std::uint64_t model_fingerprint = 0;

  /// Cooperative cancellation: polled between replication rounds (e.g.
  /// &util::stop_flag() wired to SIGINT/SIGTERM).  A set flag flushes a
  /// final checkpoint and returns partial results with
  /// TransientStop::kCancelled.
  const std::atomic<bool>* stop = nullptr;

  /// Wall-clock budget in seconds for *this call* (0 disables), checked at
  /// round boundaries.  Exceeding it flushes a checkpoint and returns
  /// TransientStop::kTimedOut; a later resume continues the estimate.  Not
  /// part of the checkpoint identity, so the budget may differ per attempt.
  double max_seconds = 0.0;
};

struct TransientResult {
  std::vector<double> time_points;
  std::vector<util::ConfidenceInterval> estimates;  ///< one per time point
  std::uint64_t replications = 0;
  std::uint64_t total_events = 0;
  bool converged = false;
  /// Which criterion ended the run (kRelHalfWidth and kAbsHalfWidth imply
  /// converged; kCancelled/kTimedOut mean a checkpoint holds the progress).
  TransientStop stop_reason = TransientStop::kMaxReplications;
  /// True when this result continued from a checkpoint file.
  bool resumed = false;

  // Importance-sampling diagnostics over the per-replication path
  // likelihood ratios (all exactly 1 without biasing, so ess ==
  // replications and lr_variance == 0 then).
  double ess = 0.0;          ///< Kish effective sample size (Σw)²/Σw²
  double lr_variance = 0.0;  ///< sample variance of the likelihood ratios

  /// Relative CI half-width at the last time point, recorded at every
  /// convergence check (one entry per check_every round) — the convergence
  /// trajectory an analyst reads to judge estimator health.
  std::vector<double> rel_half_width_trajectory;

  /// Point estimate at time_points[i].
  double mean(std::size_t i) const { return estimates.at(i).mean; }
};

/// Estimates E[reward(marking at t)] for each requested t.
TransientResult estimate_transient(const san::FlatModel& model,
                                   const san::RewardFn& reward,
                                   const TransientOptions& options);

}  // namespace sim
