// Indexed binary min-heap: the future-event list of the incremental
// discrete-event engine.
//
// Keys are (completion time, activity index), ordered lexicographically so
// that ties — possible with deterministic delay distributions — resolve to
// the lowest activity index, exactly like a first-strict-minimum linear
// scan over the schedule array (the full-rescan reference engine's rule).
// A position table makes update/erase by activity index O(log n), replacing
// the O(A) minimum scans of `step_scheduled` / `next_completion_time`.
//
// Storage is structure-of-arrays: keys (times) and payloads (activity
// indices) live in separate parallel vectors, so sift comparisons — which
// read only times — stream one dense double array instead of 16-byte
// key/payload pairs, and the common sift paths touch half the cache lines.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace sim {

class EventHeap {
 public:
  /// Capacity is the activity-index universe [0, n).
  explicit EventHeap(std::size_t n) : pos_(n, kAbsent) {}

  bool empty() const { return t_.empty(); }
  std::size_t size() const { return t_.size(); }
  bool contains(std::size_t ai) const { return pos_[ai] != kAbsent; }

  /// Scheduled completion time of `ai`; requires contains(ai).
  double time_of(std::size_t ai) const { return t_[pos_[ai]]; }

  /// The minimum entry as (activity, time); requires !empty().
  std::pair<std::size_t, double> top() const { return {ai_[0], t_[0]}; }

  /// Inserts `ai` at time `t`, or reschedules it if already present.
  void push_or_update(std::size_t ai, double t);

  /// Removes `ai` if present (no-op otherwise).
  void erase(std::size_t ai);

  /// Removes every entry.
  void clear();

 private:
  static constexpr std::uint32_t kAbsent = UINT32_MAX;
  /// (time, index) lexicographic: does slot-value (t, a) sort before slot i?
  bool less_than(double t, std::uint32_t a, std::size_t i) const {
    return t < t_[i] || (t == t_[i] && a < ai_[i]);
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(std::size_t i, double t, std::uint32_t a) {
    t_[i] = t;
    ai_[i] = a;
    pos_[a] = static_cast<std::uint32_t>(i);
  }

  std::vector<double> t_;           ///< heap-ordered completion times
  std::vector<std::uint32_t> ai_;   ///< parallel activity indices
  std::vector<std::uint32_t> pos_;  ///< activity -> heap slot, kAbsent if out
};

}  // namespace sim
