// Indexed binary min-heap: the future-event list of the incremental
// discrete-event engine.
//
// Keys are (completion time, activity index), ordered lexicographically so
// that ties — possible with deterministic delay distributions — resolve to
// the lowest activity index, exactly like a first-strict-minimum linear
// scan over the schedule array (the full-rescan reference engine's rule).
// A position table makes update/erase by activity index O(log n), replacing
// the O(A) minimum scans of `step_scheduled` / `next_completion_time`.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace sim {

class EventHeap {
 public:
  /// Capacity is the activity-index universe [0, n).
  explicit EventHeap(std::size_t n) : pos_(n, kAbsent) {}

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  bool contains(std::size_t ai) const { return pos_[ai] != kAbsent; }

  /// Scheduled completion time of `ai`; requires contains(ai).
  double time_of(std::size_t ai) const { return heap_[pos_[ai]].t; }

  /// The minimum entry as (activity, time); requires !empty().
  std::pair<std::size_t, double> top() const {
    return {heap_.front().ai, heap_.front().t};
  }

  /// Inserts `ai` at time `t`, or reschedules it if already present.
  void push_or_update(std::size_t ai, double t);

  /// Removes `ai` if present (no-op otherwise).
  void erase(std::size_t ai);

  /// Removes every entry.
  void clear();

 private:
  static constexpr std::uint32_t kAbsent = UINT32_MAX;
  struct Entry {
    double t;
    std::uint32_t ai;
  };
  static bool less(const Entry& a, const Entry& b) {
    return a.t < b.t || (a.t == b.t && a.ai < b.ai);
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(std::size_t i, Entry e) {
    heap_[i] = e;
    pos_[e.ai] = static_cast<std::uint32_t>(i);
  }

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> pos_;  ///< activity -> heap slot, kAbsent if out
};

}  // namespace sim
