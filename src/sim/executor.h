// Discrete-event execution of a flattened SAN.
//
// Semantics follow Möbius:
//  * A timed activity samples its firing delay when it becomes enabled and
//    keeps that sample while it stays enabled ("continue" policy); becoming
//    disabled aborts the activation.  Activities with marking-dependent
//    rates are resampled when their rate *value* changes while enabled —
//    with exponential delays this is distributionally exact (memoryless)
//    and keeps the rate current.
//  * Instantaneous activities fire as soon as they are enabled, higher
//    priority first (ties: declaration order), until no instantaneous
//    activity is enabled.  A stabilization that exceeds
//    Options::max_instant_firings throws (an instantaneous loop is a
//    modeling bug).
//  * Case weights are evaluated on the marking at completion start, then the
//    completion executes input gates, input arcs, and the chosen case's
//    output gates/arcs, in that order.
//
// Two engines implement these semantics over the same state:
//  * kIncremental (default) — dependency-tracked O(affected) event
//    processing.  A static san::DependencyIndex maps each completion to the
//    superset of activities whose enablement/rate it can touch; only those
//    are re-examined.  Scheduled mode keeps the future-event list in an
//    indexed binary heap (sim::EventHeap); embedded mode keeps per-activity
//    rates in fixed-shape pairwise sum trees (sim::SumTree).
//  * kFullRescan — the retained reference engine: re-evaluates every
//    predicate and rate after every completion (linear schedule scans, full
//    rate rebuilds).  Kept for conformance testing and benchmarking.
//
// Every activity draws from its own counter-based RNG stream derived from
// (replication stream, activity index) — see util::Rng::split(idx, domain)
// — and global per-event draws (embedded holding times and transition
// selection) come from the replication stream itself.  RNG consumption
// therefore never depends on how many activities an engine re-examines, so
// the two engines produce event-for-event identical trajectories (asserted
// by the cross-engine conformance tests).
//
// Importance sampling: with an all-exponential model the process is a CTMC,
// so the executor can run the *embedded chain* with biased transition
// selection ("failure biasing") while drawing holding times from the true
// total rate.  The likelihood ratio of the path is tracked so estimators can
// unbias.  This is what makes the paper's 1e-9..1e-13 unsafety levels
// reachable by simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "san/dependency.h"
#include "san/flat_model.h"
#include "sim/event_heap.h"
#include "sim/sum_tree.h"
#include "util/arena.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/trace.h"

namespace sim {

/// Importance-sampling plan.  Activities are matched by their atomic-model
/// ("source") name, so one entry covers every replica.
struct BiasPlan {
  /// Selection-weight multiplier for boosted activities in the embedded
  /// chain (> 0; 1 disables).  Classic failure biasing boosts the rare
  /// failure-mode activities.
  double boost = 1.0;
  /// Source names of the boosted activities (e.g. {"L1",...,"L6"}).
  std::set<std::string> boosted;
  /// Per-activity biased case weights (e.g. push a maneuver's failure case
  /// from 0.02 to 0.5).  Must have one weight per case, summing > 0.
  std::map<std::string, std::vector<double>> case_bias;

  bool active() const {
    return (boost != 1.0 && !boosted.empty()) || !case_bias.empty();
  }
};

class Executor {
 public:
  enum class Engine {
    kIncremental,  ///< dependency-tracked O(affected) per event
    kFullRescan,   ///< reference: every activity re-examined per event
  };

  struct Options {
    Engine engine = Engine::kIncremental;
    /// Non-null enables importance sampling (requires all_exponential()).
    const BiasPlan* bias = nullptr;
    /// Abort threshold for instantaneous-activity stabilization.
    std::uint64_t max_instant_firings = 100000;
    /// Validates every predicate evaluation and completion against the
    /// dependency index's declared read/write sets (throws util::ModelError
    /// on the first access outside them).  Slow; for tests.
    bool check_dependencies = false;
    /// Static-analysis preflight (san::analyze::preflight_lint): the
    /// constructor rejects models with error-severity lint findings —
    /// unsound dependency declarations, vanishing loops, invalid rates or
    /// case weights — before anything runs.  Uses a small probe budget and
    /// no RNG, so trajectories are unaffected.  Disable only for
    /// deliberately malformed models (tests).
    bool lint = true;
    /// Optional externally owned dependency index built from the same
    /// model, shared across a batch of executors (sim::estimate_transient
    /// builds one per point instead of one per worker).  Must outlive the
    /// executor.  Trajectories are unaffected — the index is a pure
    /// function of the model.
    const san::DependencyIndex* shared_deps = nullptr;
  };

  Executor(const san::FlatModel& model, util::Rng rng, Options opts);
  Executor(const san::FlatModel& model, util::Rng rng)
      : Executor(model, rng, Options{}) {}

  /// Returns to the initial marking at time 0 and stabilizes instantaneous
  /// activities.  Called by the constructor; call again between
  /// replications (optionally with a fresh stream).
  void reset();
  void reset(util::Rng rng);

  double time() const { return time_; }

  /// Likelihood ratio of the path so far (1 without importance sampling).
  double likelihood_ratio() const { return lr_; }

  std::span<const std::int32_t> marking() const { return marking_; }

  /// Completion time of the next timed activity, or nullopt if none is
  /// enabled (the process is stuck / absorbed).
  std::optional<double> next_completion_time();

  /// Advances one timed completion (plus the instantaneous stabilization it
  /// triggers).  Returns false if no timed activity is enabled.
  bool step();

  /// Fires events while the next completion is <= t_end.  The marking after
  /// return is the marking holding at time t_end.  Returns the number of
  /// timed completions executed.  `stop` (optional) is checked after every
  /// completion; returning true halts early.
  std::uint64_t run_until(double t_end,
                          const std::function<bool()>& stop = nullptr);

  /// Total timed completions since the last reset.
  std::uint64_t events() const { return events_; }

  /// The dependency index driving the incremental engine (built once per
  /// executor; also available under kFullRescan for inspection).
  const san::DependencyIndex& dependencies() const { return *dep_; }

  /// Optional hook invoked after every completion (timed and instantaneous)
  /// with (activity index, case index); used by the trace recorder.
  std::function<void(std::size_t, std::size_t)> on_fire;

 private:
  bool incremental() const { return opts_.engine == Engine::kIncremental; }

  // Shared event plumbing.
  std::size_t choose_case(std::size_t ai);
  void fire_activity(std::size_t ai);  ///< choose case, fire, log, mark dirty
  void mark_affected_dirty(std::size_t ai);
  void stabilize_instantaneous(std::size_t trigger);  ///< SIZE_MAX: from reset
  bool enabled_checked(std::size_t ai);
  bool enabled_fast(std::size_t ai) const;  ///< SoA view, no access logging
  double rate_checked(std::size_t ai);
  double rate_fast(std::size_t ai);  ///< SoA view, no access logging
  void build_view();  ///< flattens FlatActivity structs into the SoA view

  /// True iff every slot in ai's declared read set still holds the value it
  /// held when sig_store(ai, ...) last ran.  Precondition: sig_state_[ai]!=0.
  bool sig_match(std::size_t ai) const;
  void sig_store(std::size_t ai, bool enabled);

  // Scheduled mode.
  void reschedule(std::size_t ai);  ///< re-examine one activity's activation
  void refresh_schedule_full();
  bool step_scheduled();

  // Embedded (importance-sampling) mode.
  void refresh_rate_leaf(std::size_t ai);
  void refresh_rates_full();
  bool step_embedded(double t_limit);

  const san::FlatModel& model_;
  util::Rng rng_;  ///< replication stream: embedded holding/selection draws
  Options opts_;
  std::unique_ptr<san::DependencyIndex> owned_deps_;
  const san::DependencyIndex* dep_ = nullptr;  ///< owned or Options::shared

  /// Backs every fixed-size per-activity array below: one contiguous block,
  /// so the per-event dirty-set walk and enablement checks stay
  /// cache-linear instead of hopping between separately heap-allocated
  /// vectors (and reset() never reallocates).
  util::Arena arena_;

  std::vector<std::int32_t> marking_;
  std::vector<std::int32_t> initial_marking_;  ///< cached; reset() copies it
  double time_ = 0.0;
  double lr_ = 1.0;
  std::uint64_t events_ = 0;

  /// Per-activity streams, re-derived from the replication stream on every
  /// reset: act_rng_[ai] = rng.split(ai, kActivityStreamDomain).
  std::span<util::Rng> act_rng_;

  // SoA model view: the per-event fast paths (enablement, rates, case
  // weights) read these dense arrays; the fat FlatActivity structs — which
  // interleave strings and cold metadata with the hot arcs — are consulted
  // only on slow paths (check_dependencies, non-exponential delays, error
  // reporting).  Built once per executor; values never change.
  struct ModelView {
    std::span<std::uint32_t> arc_off;   ///< n+1: input-arc CSR offsets
    std::span<std::uint32_t> arc_slot;
    std::span<std::int32_t> arc_weight;
    std::span<std::uint32_t> pred_off;  ///< n+1: predicate CSR offsets
    std::span<const san::Predicate*> pred;
    std::span<const san::InstanceMap*> imap;
    std::span<const san::RateFn*> rate_fn;  ///< nullptr if rate is fixed
    std::span<double> const_rate;       ///< fixed Exp rate; 0 otherwise
    std::span<std::uint8_t> flags;
  } view_;
  static constexpr std::uint8_t kFlagMarkingDependent = 1;  ///< has rate_fn
  static constexpr std::uint8_t kFlagConstExponential = 2;  ///< fixed Exp
  static constexpr std::uint8_t kFlagMultiCase = 4;

  // Scheduled-event state.
  EventHeap heap_;                ///< incremental future-event list
  std::span<double> sched_;       ///< reference: completion time; NaN = idle
  std::span<std::uint8_t> was_enabled_;
  std::span<double> cached_rate_;  ///< marking-dependent rate at sampling

  // Embedded-chain state: leaf ai holds the enabled exponential rate and
  // rate x bias boost (weight component), 0 when disabled; one interleaved
  // tree so a leaf refresh climbs once.
  DualSumTree dual_tree_;
  std::vector<double> scratch_rates_;  ///< full-rescan rebuild buffer

  std::vector<double> scratch_weights_;
  std::vector<double> case_w_;  ///< choose_case weight buffer (no alloc)

  // Read-signature cache (incremental engine, check_dependencies off): the
  // dirty set is a static over-approximation, so most re-examinations find
  // nothing changed.  Before re-running predicates/rate functions, compare
  // the activity's declared read slots against their values at the last
  // evaluation — equal values imply an identical result (evaluations are
  // pure functions of the read set; the dependency contract the incremental
  // engine already relies on), so the re-evaluation is skipped outright.
  std::span<std::uint32_t> read_off_;   ///< n+1: read-set CSR offsets
  std::span<std::uint32_t> read_slot_;  ///< dep_->reads(ai), flattened
  std::span<std::int32_t> read_val_;    ///< slot values at last evaluation
  std::span<std::uint8_t> sig_state_;   ///< 0 invalid / 1 disabled / 2 enabled
  bool cache_ok_ = false;  ///< incremental() && !opts_.check_dependencies

  // Dirty tracking (incremental engine).
  std::vector<std::uint32_t> dirty_;       ///< timed activities to re-check
  std::span<std::uint64_t> dirty_mark_;    ///< epoch stamps, one per activity
  std::uint64_t dirty_epoch_ = 1;

  // Instantaneous candidates (incremental stabilization): a bitset over
  // positions in instant_by_priority_, so taking the lowest set bit —
  // highest priority, declaration order among ties — replicates the
  // reference engine's restart-from-top scan without rescanning.  Setting a
  // bit is idempotent (no dedup branch) and the scan is a handful of
  // countr_zero words.
  std::span<std::uint64_t> instant_cand_bits_;

  // Cached structure.
  std::vector<std::size_t> timed_;
  std::vector<std::size_t> instant_by_priority_;
  std::span<std::uint32_t> instant_pos_;  ///< activity -> position or max

  /// dep_->affected_by(ai) split by activity kind (CSR): timed targets as
  /// activity indices, instantaneous targets as positions in
  /// instant_by_priority_.  The hot path walks these without branching.
  std::span<std::uint32_t> aff_timed_off_, aff_timed_;
  std::span<std::uint32_t> aff_inst_off_, aff_inst_pos_;
  std::span<double> bias_boost_;  ///< per-activity selection multiplier
  std::span<const std::vector<double>*> bias_cases_;
  bool embedded_mode_ = false;

  // Dependency validation (Options::check_dependencies).
  san::AccessLog access_log_;
  void verify_access(std::size_t ai, bool is_fire);

  // Telemetry ("sim.executor.*"), resolved from the process-wide registry
  // at reset() (re-resolved only when the attached registry changes).  With
  // no registry attached every site is one predictable branch — the
  // detached event rate is benchmark-guarded within 2% of the
  // pre-instrumentation baseline (bench/bench_executor.cpp).
  struct Telemetry {
    bool on = false;
    util::Counter events;
    util::Counter instant_firings;
    util::Counter heap_ops;          ///< scheduled: push/update/erase
    util::Counter sumtree_ops;       ///< embedded: leaf refreshes
    util::Counter rng_draws;         ///< per-activity stream draws
    util::HistogramHandle dirty_set;       ///< dirty timed set per event
    util::HistogramHandle stabilization;   ///< instant firings per event
  } tm_;
  util::MetricsRegistry* tm_registry_ = nullptr;  ///< handles resolved from
  void resolve_telemetry();

  // Flight-recorder hook (util/trace.h): one counter sample per run_until
  // return — an events-processed track per thread on the trace timeline —
  // so the per-event hot path stays untouched (the 2% detached overhead
  // guard covers the tracing-detached path too).
  void note_events_fired(std::uint64_t fired);
  util::TraceName tr_events_;
  util::TraceRecorder* tr_recorder_ = nullptr;
  std::uint64_t tr_events_total_ = 0;
};

}  // namespace sim
