// Discrete-event execution of a flattened SAN.
//
// Semantics follow Möbius:
//  * A timed activity samples its firing delay when it becomes enabled and
//    keeps that sample while it stays enabled ("continue" policy); becoming
//    disabled aborts the activation.  Activities with marking-dependent
//    rates are resampled after every completion while enabled — with
//    exponential delays this is distributionally exact and keeps the rate
//    current.
//  * Instantaneous activities fire as soon as they are enabled, higher
//    priority first (ties: declaration order), until no instantaneous
//    activity is enabled.  A stabilization that exceeds
//    Options::max_instant_firings throws (an instantaneous loop is a
//    modeling bug).
//  * Case weights are evaluated on the marking at completion start, then the
//    completion executes input gates, input arcs, and the chosen case's
//    output gates/arcs, in that order.
//
// Importance sampling: with an all-exponential model the process is a CTMC,
// so the executor can run the *embedded chain* with biased transition
// selection ("failure biasing") while drawing holding times from the true
// total rate.  The likelihood ratio of the path is tracked so estimators can
// unbias.  This is what makes the paper's 1e-9..1e-13 unsafety levels
// reachable by simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "san/flat_model.h"
#include "util/rng.h"

namespace sim {

/// Importance-sampling plan.  Activities are matched by their atomic-model
/// ("source") name, so one entry covers every replica.
struct BiasPlan {
  /// Selection-weight multiplier for boosted activities in the embedded
  /// chain (> 0; 1 disables).  Classic failure biasing boosts the rare
  /// failure-mode activities.
  double boost = 1.0;
  /// Source names of the boosted activities (e.g. {"L1",...,"L6"}).
  std::set<std::string> boosted;
  /// Per-activity biased case weights (e.g. push a maneuver's failure case
  /// from 0.02 to 0.5).  Must have one weight per case, summing > 0.
  std::map<std::string, std::vector<double>> case_bias;

  bool active() const {
    return (boost != 1.0 && !boosted.empty()) || !case_bias.empty();
  }
};

class Executor {
 public:
  struct Options {
    /// Non-null enables importance sampling (requires all_exponential()).
    const BiasPlan* bias = nullptr;
    /// Abort threshold for instantaneous-activity stabilization.
    std::uint64_t max_instant_firings = 100000;
  };

  Executor(const san::FlatModel& model, util::Rng rng, Options opts);
  Executor(const san::FlatModel& model, util::Rng rng)
      : Executor(model, rng, Options{}) {}

  /// Returns to the initial marking at time 0 and stabilizes instantaneous
  /// activities.  Called by the constructor; call again between
  /// replications (optionally with a fresh stream).
  void reset();
  void reset(util::Rng rng);

  double time() const { return time_; }

  /// Likelihood ratio of the path so far (1 without importance sampling).
  double likelihood_ratio() const { return lr_; }

  std::span<const std::int32_t> marking() const { return marking_; }

  /// Completion time of the next timed activity, or nullopt if none is
  /// enabled (the process is stuck / absorbed).
  std::optional<double> next_completion_time();

  /// Advances one timed completion (plus the instantaneous stabilization it
  /// triggers).  Returns false if no timed activity is enabled.
  bool step();

  /// Fires events while the next completion is <= t_end.  The marking after
  /// return is the marking holding at time t_end.  Returns the number of
  /// timed completions executed.  `stop` (optional) is checked after every
  /// completion; returning true halts early.
  std::uint64_t run_until(double t_end,
                          const std::function<bool()>& stop = nullptr);

  /// Total timed completions since the last reset.
  std::uint64_t events() const { return events_; }

  /// Optional hook invoked after every completion (timed and instantaneous)
  /// with (activity index, case index); used by the trace recorder.
  std::function<void(std::size_t, std::size_t)> on_fire;

 private:
  void stabilize_instantaneous();
  void refresh_schedule();
  bool step_scheduled();
  bool step_embedded();
  std::size_t choose_case(std::size_t ai);

  const san::FlatModel& model_;
  util::Rng rng_;
  Options opts_;

  std::vector<std::int32_t> marking_;
  double time_ = 0.0;
  double lr_ = 1.0;
  std::uint64_t events_ = 0;

  // Scheduled-event state (standard mode).
  std::vector<double> sched_;    ///< completion time; NaN = not activated
  std::vector<bool> was_enabled_;

  // Cached structure.
  std::vector<std::size_t> timed_;
  std::vector<std::size_t> instant_by_priority_;
  std::vector<double> bias_boost_;  ///< per-activity selection multiplier
  std::vector<const std::vector<double>*> bias_cases_;
  bool embedded_mode_ = false;
};

}  // namespace sim
