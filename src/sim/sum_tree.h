// Fixed-shape pairwise sum tree over per-activity rates/weights — the
// embedded-chain engine's incremental accumulator.
//
// A naive running total updated with += deltas would drift from a fresh
// full sum (floating-point addition is not associative), so an incremental
// engine and a full-rescan engine would draw microscopically different
// holding times and eventually diverge.  This tree fixes the combination
// order structurally: every internal node always stores `left + right` of
// its two children, so the root (and every descent decision) is a pure
// function of the current leaf values — independent of the order in which
// leaves were written, and therefore *bitwise identical* between an engine
// that rewrites every leaf per event and one that touches only the
// affected ones.
//
// set() is O(log n); total() is O(1); sample selection descends the tree in
// O(log n) comparing against stored left-subtree sums, which both engines
// execute identically.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sim {

class SumTree {
 public:
  /// Tree over `n` leaves, all initially 0.
  explicit SumTree(std::size_t n);

  std::size_t num_leaves() const { return n_; }

  /// Writes leaf `i` and refreshes its root path.  O(log n).
  void set(std::size_t i, double v);

  double get(std::size_t i) const { return tree_[base_ + i]; }
  double total() const { return tree_[1]; }

  /// Rewrites every leaf from `values` (size == num_leaves()) and rebuilds
  /// internal nodes bottom-up in O(n).  The resulting tree state is
  /// identical to applying set() per leaf — each internal node is
  /// left + right either way.
  void rebuild(std::span<const double> values);

  /// Resets every leaf to 0.
  void clear();

  /// Index of the leaf selected by prefix-sum descent for `u` in
  /// [0, total()): the leaf i with sum(leaves < i) <= u < sum(leaves <= i)
  /// up to the tree's fixed rounding.  Requires total() > 0.  Never
  /// returns a zero-valued leaf: the astronomically rare rounding case
  /// where the descent overshoots into a zero leaf falls back to the
  /// nearest preceding positive leaf.
  std::size_t find_prefix(double u) const;

 private:
  std::size_t n_;     ///< leaf count requested
  std::size_t base_;  ///< first leaf slot (power of two, >= n_)
  std::vector<double> tree_;
};

/// Two SumTrees of the same shape stored interleaved — node k's (rate,
/// weight) pair sits in adjacent doubles, so the embedded-chain engine's
/// per-leaf refresh climbs to the root once touching one cache line per
/// level instead of two disjoint trees.  Each component's node values are
/// bitwise identical to a standalone SumTree over the same leaves: every
/// internal node is `left + right` of its children in both layouts.
class DualSumTree {
 public:
  explicit DualSumTree(std::size_t n);

  std::size_t num_leaves() const { return n_; }

  /// Writes leaf `i` of both components and refreshes the shared root path.
  void set(std::size_t i, double rate, double weight);

  double rate(std::size_t i) const { return tree_[2 * (base_ + i)]; }
  double weight(std::size_t i) const { return tree_[2 * (base_ + i) + 1]; }
  double total_rate() const { return tree_[2]; }
  double total_weight() const { return tree_[3]; }

  /// Rewrites every leaf pair and rebuilds bottom-up in O(n); identical to
  /// applying set() per leaf (see SumTree::rebuild).
  void rebuild(std::span<const double> rates, std::span<const double> weights);

  /// Resets every leaf pair to 0.
  void clear();

  /// Prefix-sum descent over the *weight* component for `u` in
  /// [0, total_weight()) — same selection rule as SumTree::find_prefix,
  /// including the zero-leaf fallback.
  std::size_t find_prefix_weight(double u) const;

 private:
  std::size_t n_;
  std::size_t base_;
  std::vector<double> tree_;  ///< tree_[2k] = rate node, tree_[2k+1] = weight
};

}  // namespace sim
