#include "sim/steady.h"

#include "util/error.h"

namespace sim {

SteadyResult estimate_steady_state(const san::FlatModel& model,
                                   const san::RewardFn& reward,
                                   const SteadyOptions& options) {
  AHS_REQUIRE(options.batch_time > 0.0, "batch_time must be > 0");
  AHS_REQUIRE(options.min_batches >= 2, "need at least 2 batches");
  AHS_REQUIRE(options.max_batches >= options.min_batches,
              "max_batches < min_batches");

  util::Rng rng(options.seed);
  Executor exec(model, rng);

  // Integrate the piecewise-constant reward between completions.
  util::KahanSum integral;
  double last_time = 0.0;
  double last_reward = reward(exec.marking());
  exec.on_fire = [&](std::size_t, std::size_t) {
    const double now = exec.time();
    integral.add(last_reward * (now - last_time));
    last_time = now;
    last_reward = reward(exec.marking());
  };

  auto advance_to = [&](double t) {
    exec.run_until(t);
    integral.add(last_reward * (t - last_time));
    last_time = t;
  };

  // Warm-up.
  advance_to(options.warmup_time);

  util::BatchMeans batches(1);
  SteadyResult result;
  double t_cursor = options.warmup_time;
  double integral_before = integral.value();
  for (std::uint64_t b = 0; b < options.max_batches; ++b) {
    t_cursor += options.batch_time;
    advance_to(t_cursor);
    const double batch_integral = integral.value() - integral_before;
    integral_before = integral.value();
    batches.push(batch_integral / options.batch_time);

    if (batches.completed_batches() >= options.min_batches) {
      const auto ci = batches.interval(options.confidence);
      if (ci.converged(options.rel_half_width)) {
        result.converged = true;
        break;
      }
    }
    // A dead model (no enabled activities) cannot produce further batches
    // with different values; the integral still accumulates, so keep going —
    // the estimate converges to the frozen reward immediately.
  }

  result.estimate = batches.interval(options.confidence);
  result.batches = batches.completed_batches();
  result.total_events = exec.events();
  result.lag1_autocorrelation = batches.lag1_autocorrelation();
  return result;
}

}  // namespace sim
