#include "sim/transient.h"

#include <chrono>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "san/analyze/analysis.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/snapshot.h"
#include "util/spans.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace sim {

const char* to_string(TransientStop s) {
  switch (s) {
    case TransientStop::kRelHalfWidth: return "rel-half-width";
    case TransientStop::kAbsHalfWidth: return "abs-half-width";
    case TransientStop::kMaxReplications: return "max-replications";
    case TransientStop::kCancelled: return "cancelled";
    case TransientStop::kTimedOut: return "timed-out";
  }
  return "?";
}

namespace {

/// Runs one replication on the pre-split stream (replication rep's stream
/// is master.split(rep + 1)) and pushes one observation per time point into
/// `stats`, plus the path likelihood ratio into `lr_stat` (IS diagnostics;
/// exactly 1 without biasing).
void run_one_replication(Executor& exec, const san::RewardFn& reward,
                         const TransientOptions& options, util::Rng stream,
                         std::vector<util::RunningStat>& stats,
                         util::RunningStat& lr_stat, std::uint64_t& events) {
  exec.reset(stream);
  bool absorbed = false;
  double absorbed_lr = 0.0;
  for (std::size_t i = 0; i < options.time_points.size(); ++i) {
    const double t = options.time_points[i];
    if (!absorbed) {
      if (options.absorbing_indicator) {
        exec.run_until(t, [&] { return reward(exec.marking()) > 0.0; });
        if (reward(exec.marking()) > 0.0 && exec.time() <= t) {
          absorbed = true;
          absorbed_lr = exec.likelihood_ratio();
        }
      } else {
        exec.run_until(t);
      }
    }
    if (absorbed) {
      stats[i].push(absorbed_lr);
    } else {
      stats[i].push(reward(exec.marking()) * exec.likelihood_ratio());
    }
  }
  lr_stat.push(absorbed ? absorbed_lr : exec.likelihood_ratio());
  events += exec.events();
}

/// Hash of every option that determines the estimate's value — the
/// checkpoint identity.  Wall budgets, the checkpoint knobs themselves, and
/// the stop flag are deliberately excluded: they shape *when* a run pauses,
/// not *what* it computes.  `threads` is included because the per-round
/// merge order (and hence the exact floating-point accumulator state at a
/// round boundary) depends on the worker partition.
std::uint64_t option_hash(const TransientOptions& o) {
  std::uint64_t h = 0;
  for (double t : o.time_points) h = util::hash_mix(h, t);
  h = util::hash_mix(h, static_cast<std::uint64_t>(o.time_points.size()));
  h = util::hash_mix(h, o.min_replications);
  h = util::hash_mix(h, o.max_replications);
  h = util::hash_mix(h, o.rel_half_width);
  h = util::hash_mix(h, o.abs_half_width);
  h = util::hash_mix(h, o.confidence);
  h = util::hash_mix(h, o.check_every);
  h = util::hash_mix(h, static_cast<std::uint64_t>(o.absorbing_indicator));
  h = util::hash_mix(h, static_cast<std::uint64_t>(o.engine));
  h = util::hash_mix(h, static_cast<std::uint64_t>(o.threads));
  // batch_size is deliberately absent: batching only pre-splits RNG streams
  // a worker would have split anyway, one by one — trajectories and merge
  // order are identical for every batch size.
  if (o.bias != nullptr) {
    h = util::hash_mix(h, o.bias->boost);
    for (const auto& name : o.bias->boosted) h = util::hash_mix(h, name);
    for (const auto& [name, weights] : o.bias->case_bias) {
      h = util::hash_mix(h, name);
      for (double w : weights) h = util::hash_mix(h, w);
    }
  }
  return h;
}

void encode_stat(std::ostringstream& os, const util::RunningStat& s) {
  const util::RunningStat::State st = s.save();
  os << st.n << " " << util::encode_double(st.mean) << " "
     << util::encode_double(st.m2) << " " << util::encode_double(st.min)
     << " " << util::encode_double(st.max) << "\n";
}

void decode_stat(util::TokenReader& in, util::RunningStat& s) {
  util::RunningStat::State st;
  st.n = in.next_u64();
  st.mean = in.next_f64();
  st.m2 = in.next_f64();
  st.min = in.next_f64();
  st.max = in.next_f64();
  s.restore(st);
}

}  // namespace

TransientResult estimate_transient(const san::FlatModel& model,
                                   const san::RewardFn& reward,
                                   const TransientOptions& options) {
  AHS_REQUIRE(!options.time_points.empty(), "need at least one time point");
  double prev = 0.0;
  for (double t : options.time_points) {
    AHS_REQUIRE(t > prev, "time points must be strictly increasing and > 0");
    prev = t;
  }
  AHS_REQUIRE(options.min_replications >= 2, "need at least 2 replications");
  AHS_REQUIRE(options.max_replications >= options.min_replications,
              "max_replications < min_replications");
  AHS_REQUIRE(options.threads >= 1, "threads must be >= 1");
  AHS_REQUIRE(options.batch_size >= 1, "batch_size must be >= 1");
  AHS_REQUIRE(options.checkpoint_every >= 1,
              "checkpoint_every must be >= 1");
  AHS_SPAN("transient.estimate");

  const std::size_t k = options.time_points.size();
  const std::uint32_t workers = options.threads;
  const auto wall_start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };

  // One dependency index and one lint pass serve every worker and every
  // replication batch — both are pure functions of the model, so sharing
  // them cannot affect trajectories.
  const san::DependencyIndex shared_deps = san::DependencyIndex::build(model);
  san::analyze::preflight_lint(model, "transient estimate preflight",
                               /*probe_budget=*/128,
                               /*nonfatal_ids=*/{"NET003"});

  Executor::Options exec_opts;
  exec_opts.engine = options.engine;
  exec_opts.bias = options.bias;
  exec_opts.check_dependencies = options.check_dependencies;
  exec_opts.shared_deps = &shared_deps;
  exec_opts.lint = false;  // linted once above

  TransientResult result;
  result.time_points = options.time_points;

  std::vector<util::RunningStat> stats(k);
  util::RunningStat lr_stats;
  util::Rng master(options.seed);

  util::MetricsRegistry* reg = util::MetricsRegistry::global();

  // Flight-recorder events (util/trace.h): importance-sampling round
  // boundaries as begin/end pairs (a = replications done, b = round size)
  // plus checkpoint/resume instants — the timeline a flight recorder needs
  // to show where a long rare-event estimate spends its rounds.
  util::TraceName tr_round, tr_ckpt, tr_resume;
  if (util::TraceRecorder* trc = util::TraceRecorder::global()) {
    tr_round = trc->name("transient.round");
    tr_ckpt = trc->name("transient.checkpoint");
    tr_resume = trc->name("transient.resume");
  }

  // ---- checkpoint plumbing --------------------------------------------
  const bool checkpointing = !options.checkpoint_path.empty();
  const util::SnapshotHeader header{"transient", options.model_fingerprint,
                                    options.seed, option_hash(options)};
  std::uint64_t done = 0;

  // Serializes the exact accumulator state at a round boundary.  Restoring
  // it reproduces every double bit-for-bit, which together with the
  // (seed, r)-derived replication streams makes resume ≡ uninterrupted.
  const auto write_checkpoint = [&] {
    std::ostringstream os;
    os << done << " " << result.total_events << " " << k << "\n";
    for (const auto& s : stats) encode_stat(os, s);
    encode_stat(os, lr_stats);
    os << result.rel_half_width_trajectory.size();
    for (double v : result.rel_half_width_trajectory)
      os << " " << util::encode_double(v);
    os << "\n";
    util::write_snapshot(options.checkpoint_path, header, os.str());
    tr_ckpt.instant(done);
    if (reg != nullptr) reg->counter("sim.transient.checkpoint_writes").inc();
  };

  if (checkpointing && options.resume) {
    std::string payload;
    if (util::read_snapshot(options.checkpoint_path, header, &payload)) {
      util::TokenReader in(payload);
      done = in.next_u64();
      result.total_events = in.next_u64();
      const std::uint64_t saved_k = in.next_u64();
      if (saved_k != k)
        throw util::SnapshotError("transient checkpoint '" +
                                  options.checkpoint_path +
                                  "' has a different time-point count");
      for (auto& s : stats) decode_stat(in, s);
      decode_stat(in, lr_stats);
      const std::uint64_t traj = in.next_u64();
      result.rel_half_width_trajectory.reserve(traj);
      for (std::uint64_t i = 0; i < traj; ++i)
        result.rel_half_width_trajectory.push_back(in.next_f64());
      result.resumed = true;
      tr_resume.instant(done);
      if (reg != nullptr) reg->counter("sim.transient.resumes").inc();
      AHS_LOGM_INFO("sim") << "resumed transient estimate from '"
                           << options.checkpoint_path << "' at " << done
                           << " replications";
    }
  }

  // Per-worker state lives for the whole estimation; per round, worker w
  // executes the replication indices { base + w, base + w + workers, ... }.
  struct Worker {
    std::unique_ptr<Executor> exec;
    util::Rng master;
    std::vector<util::RunningStat> stats;
    util::RunningStat lr_stat;
    std::vector<util::Rng> streams;  ///< pre-split batch RNG table
    std::uint64_t events = 0;
  };
  std::vector<Worker> pool;
  pool.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    Worker wk;
    wk.exec = std::make_unique<Executor>(model, master.split(0), exec_opts);
    wk.master = util::Rng(options.seed);
    wk.stats.resize(k);
    wk.streams.reserve(options.batch_size);
    pool.push_back(std::move(wk));
  }

  // Convergence test, in fixed priority order so an interrupted and an
  // uninterrupted run always report the same reason: the paper's relative
  // criterion first, then the absolute floor.
  const auto criterion_met =
      [&](const util::ConfidenceInterval& ci) -> std::optional<TransientStop> {
    if (ci.converged(options.rel_half_width))
      return TransientStop::kRelHalfWidth;
    if (options.abs_half_width > 0.0 &&
        ci.half_width <= options.abs_half_width)
      return TransientStop::kAbsHalfWidth;
    return std::nullopt;
  };

  TransientStop reason = TransientStop::kMaxReplications;
  bool finished = false;

  // A checkpoint is only ever written at a round boundary, and the check
  // below mirrors the in-loop one, so a run resumed from a checkpoint that
  // was already converged does no further work and reports identically.
  if (done >= options.min_replications) {
    if (const auto r = criterion_met(stats.back().interval(options.confidence))) {
      finished = true;
      reason = *r;
    }
  }

  std::uint64_t last_checkpoint = done;
  while (!finished && done < options.max_replications) {
    if (options.stop != nullptr &&
        options.stop->load(std::memory_order_relaxed)) {
      reason = TransientStop::kCancelled;
      break;
    }
    if (options.max_seconds > 0.0 && elapsed() >= options.max_seconds) {
      reason = TransientStop::kTimedOut;
      break;
    }

    const std::uint64_t round = std::min<std::uint64_t>(
        std::max<std::uint64_t>(options.check_every, workers),
        options.max_replications - done);
    tr_round.begin(done, round);

    auto run_worker = [&](std::uint32_t w) {
      Worker& wk = pool[w];
      // Lockstep batches: pre-split the streams for the next batch_size of
      // this worker's replication indices, then run them back-to-back.
      // Stream r is master.split(r + 1) either way, so the batch layout
      // changes nothing about the sampled trajectories.
      for (std::uint64_t r = w; r < round;) {
        wk.streams.clear();
        for (std::uint64_t b = r;
             b < round && wk.streams.size() < options.batch_size;
             b += workers)
          wk.streams.push_back(wk.master.split(done + b + 1));
        for (const util::Rng& stream : wk.streams) {
          run_one_replication(*wk.exec, reward, options, stream, wk.stats,
                              wk.lr_stat, wk.events);
          r += workers;
        }
      }
    };

    if (workers == 1) {
      run_worker(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (std::uint32_t w = 0; w < workers; ++w)
        threads.emplace_back(run_worker, w);
      for (auto& t : threads) t.join();
    }

    // Merge worker accumulators into the global ones (workers keep only
    // the current round's observations).
    for (Worker& wk : pool) {
      for (std::size_t i = 0; i < k; ++i) {
        stats[i].merge(wk.stats[i]);
        wk.stats[i].reset();
      }
      lr_stats.merge(wk.lr_stat);
      wk.lr_stat.reset();
      result.total_events += wk.events;
      wk.events = 0;
    }
    done += round;
    tr_round.end();

    result.rel_half_width_trajectory.push_back(
        stats.back().interval(options.confidence).relative_half_width());
    if (done >= options.min_replications) {
      if (const auto r =
              criterion_met(stats.back().interval(options.confidence))) {
        finished = true;
        reason = *r;
      }
    }

    if (checkpointing && !finished &&
        done - last_checkpoint >= options.checkpoint_every) {
      write_checkpoint();
      last_checkpoint = done;
    }
  }

  // Final flush: after convergence, cancellation, timeout, or budget
  // exhaustion the file holds the terminal round-boundary state, so any
  // later resume continues (or immediately completes) from here.
  if (checkpointing && done > last_checkpoint) write_checkpoint();

  result.replications = done;
  result.stop_reason = reason;
  result.converged = reason == TransientStop::kRelHalfWidth ||
                     reason == TransientStop::kAbsHalfWidth;
  result.estimates.reserve(k);
  for (const auto& s : stats)
    result.estimates.push_back(s.interval(options.confidence));

  if (reason == TransientStop::kAbsHalfWidth) {
    // The relative criterion did not (and with a mean of exactly 0 never
    // could) fire — say so, with the state that triggered the floor.
    AHS_LOGM_WARN("sim")
        << "transient estimate stopped via the absolute half-width floor "
        << util::format_sci(options.abs_half_width) << " after " << done
        << " replications (mean " << util::format_sci(stats.back().mean())
        << ", relative half-width "
        << util::format_sci(
               stats.back().interval(options.confidence).relative_half_width())
        << ") — the relative criterion "
        << util::format_sci(options.rel_half_width) << " was not reached";
  }

  // Importance-sampling health.  With degenerate weights (a handful of huge
  // likelihood ratios dominating the sum) the normal-theory interval is
  // untrustworthy even if it looks converged — surface that loudly.
  result.ess = lr_stats.effective_sample_size();
  result.lr_variance = lr_stats.variance();
  if (reg != nullptr) {
    reg->gauge("sim.transient.ess").set(result.ess);
    reg->gauge("sim.transient.lr_variance").set(result.lr_variance);
    reg->counter("sim.transient.replications").add(done);
  }
  const bool biased = options.bias != nullptr && options.bias->active();
  if (biased && options.ess_warn_floor > 0.0 &&
      result.ess <
          options.ess_warn_floor * static_cast<double>(result.replications)) {
    AHS_LOGM_WARN("sim")
        << "importance-sampling effective sample size "
        << util::format_sci(result.ess) << " is below "
        << util::format_sci(options.ess_warn_floor) << " x "
        << result.replications
        << " replications — likelihood ratios are degenerate; reduce the "
           "biasing strength";
  }
  return result;
}

}  // namespace sim
