#include "sim/transient.h"

#include <memory>
#include <string>
#include <thread>

#include "util/error.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/spans.h"
#include "util/string_util.h"

namespace sim {

namespace {

/// Runs replication `rep` (stream split(rep+1)) and pushes one observation
/// per time point into `stats`, plus the path likelihood ratio into
/// `lr_stat` (IS diagnostics; exactly 1 without biasing).
void run_one_replication(Executor& exec, const san::RewardFn& reward,
                         const TransientOptions& options, util::Rng& master,
                         std::uint64_t rep,
                         std::vector<util::RunningStat>& stats,
                         util::RunningStat& lr_stat, std::uint64_t& events) {
  exec.reset(master.split(rep + 1));
  bool absorbed = false;
  double absorbed_lr = 0.0;
  for (std::size_t i = 0; i < options.time_points.size(); ++i) {
    const double t = options.time_points[i];
    if (!absorbed) {
      if (options.absorbing_indicator) {
        exec.run_until(t, [&] { return reward(exec.marking()) > 0.0; });
        if (reward(exec.marking()) > 0.0 && exec.time() <= t) {
          absorbed = true;
          absorbed_lr = exec.likelihood_ratio();
        }
      } else {
        exec.run_until(t);
      }
    }
    if (absorbed) {
      stats[i].push(absorbed_lr);
    } else {
      stats[i].push(reward(exec.marking()) * exec.likelihood_ratio());
    }
  }
  lr_stat.push(absorbed ? absorbed_lr : exec.likelihood_ratio());
  events += exec.events();
}

}  // namespace

TransientResult estimate_transient(const san::FlatModel& model,
                                   const san::RewardFn& reward,
                                   const TransientOptions& options) {
  AHS_REQUIRE(!options.time_points.empty(), "need at least one time point");
  double prev = 0.0;
  for (double t : options.time_points) {
    AHS_REQUIRE(t > prev, "time points must be strictly increasing and > 0");
    prev = t;
  }
  AHS_REQUIRE(options.min_replications >= 2, "need at least 2 replications");
  AHS_REQUIRE(options.max_replications >= options.min_replications,
              "max_replications < min_replications");
  AHS_REQUIRE(options.threads >= 1, "threads must be >= 1");
  AHS_SPAN("transient.estimate");

  const std::size_t k = options.time_points.size();
  const std::uint32_t workers = options.threads;

  Executor::Options exec_opts;
  exec_opts.engine = options.engine;
  exec_opts.bias = options.bias;
  exec_opts.check_dependencies = options.check_dependencies;

  TransientResult result;
  result.time_points = options.time_points;

  std::vector<util::RunningStat> stats(k);
  util::RunningStat lr_stats;
  util::Rng master(options.seed);

  // Per-worker state lives for the whole estimation; per round, worker w
  // executes the replication indices { base + w, base + w + workers, ... }.
  struct Worker {
    std::unique_ptr<Executor> exec;
    util::Rng master;
    std::vector<util::RunningStat> stats;
    util::RunningStat lr_stat;
    std::uint64_t events = 0;
  };
  std::vector<Worker> pool;
  pool.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    Worker wk;
    wk.exec = std::make_unique<Executor>(model, master.split(0), exec_opts);
    wk.master = util::Rng(options.seed);
    wk.stats.resize(k);
    pool.push_back(std::move(wk));
  }

  std::uint64_t done = 0;
  bool converged = false;
  while (done < options.max_replications && !converged) {
    const std::uint64_t round = std::min<std::uint64_t>(
        std::max<std::uint64_t>(options.check_every, workers),
        options.max_replications - done);

    auto run_worker = [&](std::uint32_t w) {
      Worker& wk = pool[w];
      for (std::uint64_t r = w; r < round; r += workers)
        run_one_replication(*wk.exec, reward, options, wk.master, done + r,
                            wk.stats, wk.lr_stat, wk.events);
    };

    if (workers == 1) {
      run_worker(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (std::uint32_t w = 0; w < workers; ++w)
        threads.emplace_back(run_worker, w);
      for (auto& t : threads) t.join();
    }

    // Merge worker accumulators into the global ones (workers keep only
    // the current round's observations).
    for (Worker& wk : pool) {
      for (std::size_t i = 0; i < k; ++i) {
        stats[i].merge(wk.stats[i]);
        wk.stats[i].reset();
      }
      lr_stats.merge(wk.lr_stat);
      wk.lr_stat.reset();
      result.total_events += wk.events;
      wk.events = 0;
    }
    done += round;

    result.rel_half_width_trajectory.push_back(
        stats.back().interval(options.confidence).relative_half_width());
    if (done >= options.min_replications) {
      const auto ci = stats.back().interval(options.confidence);
      if (ci.converged(options.rel_half_width)) converged = true;
    }
  }

  result.replications = done;
  result.converged = converged;
  result.estimates.reserve(k);
  for (const auto& s : stats)
    result.estimates.push_back(s.interval(options.confidence));

  // Importance-sampling health.  With degenerate weights (a handful of huge
  // likelihood ratios dominating the sum) the normal-theory interval is
  // untrustworthy even if it looks converged — surface that loudly.
  result.ess = lr_stats.effective_sample_size();
  result.lr_variance = lr_stats.variance();
  if (util::MetricsRegistry* reg = util::MetricsRegistry::global()) {
    reg->gauge("sim.transient.ess").set(result.ess);
    reg->gauge("sim.transient.lr_variance").set(result.lr_variance);
    reg->counter("sim.transient.replications").add(done);
  }
  const bool biased = options.bias != nullptr && options.bias->active();
  if (biased && options.ess_warn_floor > 0.0 &&
      result.ess <
          options.ess_warn_floor * static_cast<double>(result.replications)) {
    AHS_LOGM_WARN("sim")
        << "importance-sampling effective sample size "
        << util::format_sci(result.ess) << " is below "
        << util::format_sci(options.ess_warn_floor) << " x "
        << result.replications
        << " replications — likelihood ratios are degenerate; reduce the "
           "biasing strength";
  }
  return result;
}

}  // namespace sim
