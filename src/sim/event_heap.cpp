#include "sim/event_heap.h"

namespace sim {

void EventHeap::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(e, heap_[parent])) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, e);
}

void EventHeap::sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && less(heap_[child + 1], heap_[child])) ++child;
    if (!less(heap_[child], e)) break;
    place(i, heap_[child]);
    i = child;
  }
  place(i, e);
}

void EventHeap::push_or_update(std::size_t ai, double t) {
  const std::uint32_t p = pos_[ai];
  if (p == kAbsent) {
    heap_.push_back({t, static_cast<std::uint32_t>(ai)});
    sift_up(heap_.size() - 1);
    return;
  }
  const double old = heap_[p].t;
  heap_[p].t = t;
  if (t < old) sift_up(p);
  else if (t > old) sift_down(p);
}

void EventHeap::erase(std::size_t ai) {
  const std::uint32_t p = pos_[ai];
  if (p == kAbsent) return;
  pos_[ai] = kAbsent;
  const Entry last = heap_.back();
  heap_.pop_back();
  if (p == heap_.size()) return;  // removed the tail entry
  place(p, last);
  // The moved entry may need to travel either way.
  sift_down(p);
  if (heap_[p].ai == last.ai) sift_up(p);
}

void EventHeap::clear() {
  for (const Entry& e : heap_) pos_[e.ai] = kAbsent;
  heap_.clear();
}

}  // namespace sim
