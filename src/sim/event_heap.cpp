#include "sim/event_heap.h"

namespace sim {

void EventHeap::sift_up(std::size_t i) {
  const double t = t_[i];
  const std::uint32_t a = ai_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less_than(t, a, parent)) break;
    place(i, t_[parent], ai_[parent]);
    i = parent;
  }
  place(i, t, a);
}

void EventHeap::sift_down(std::size_t i) {
  const double t = t_[i];
  const std::uint32_t a = ai_[i];
  const std::size_t n = t_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        (t_[child + 1] < t_[child] ||
         (t_[child + 1] == t_[child] && ai_[child + 1] < ai_[child])))
      ++child;
    if (!(t_[child] < t || (t_[child] == t && ai_[child] < a))) break;
    place(i, t_[child], ai_[child]);
    i = child;
  }
  place(i, t, a);
}

void EventHeap::push_or_update(std::size_t ai, double t) {
  const std::uint32_t p = pos_[ai];
  if (p == kAbsent) {
    t_.push_back(t);
    ai_.push_back(static_cast<std::uint32_t>(ai));
    pos_[ai] = static_cast<std::uint32_t>(t_.size() - 1);
    sift_up(t_.size() - 1);
    return;
  }
  const double old = t_[p];
  t_[p] = t;
  if (t < old) sift_up(p);
  else if (t > old) sift_down(p);
}

void EventHeap::erase(std::size_t ai) {
  const std::uint32_t p = pos_[ai];
  if (p == kAbsent) return;
  pos_[ai] = kAbsent;
  const double last_t = t_.back();
  const std::uint32_t last_a = ai_.back();
  t_.pop_back();
  ai_.pop_back();
  if (p == t_.size()) return;  // removed the tail entry
  place(p, last_t, last_a);
  // The moved entry may need to travel either way.
  sift_down(p);
  if (ai_[p] == last_a) sift_up(p);
}

void EventHeap::clear() {
  for (std::uint32_t a : ai_) pos_[a] = kAbsent;
  t_.clear();
  ai_.clear();
}

}  // namespace sim
