// Atomic SAN models — the building blocks that Rep/Join compose.
//
// An atomic model declares places (simple or extended), timed activities
// (with a firing-delay distribution or a marking-dependent exponential
// rate), instantaneous activities (with priorities), input gates (enabling
// predicate + marking-update function), output gates (attached to a case),
// and classic input/output arcs as conveniences.  The API mirrors the SAN
// definitions of Sanders & Meyer [11] as implemented by Möbius, which is
// the tool the paper used.
//
// Example — a two-place cycle with an exponential activity:
//
//   san::AtomicModel m("flipflop");
//   auto up   = m.place("up", 1);          // one initial token
//   auto down = m.place("down");
//   m.timed_activity("fall")
//       .distribution(util::Distribution::Exponential(2.0))
//       .input_arc(up)
//       .output_arc(down);
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "san/marking.h"
#include "util/distributions.h"

namespace san {

/// Enabling predicate of an input gate.
using Predicate = std::function<bool(const MarkingRef&)>;
/// Marking-update function of an input or output gate.
using GateFn = std::function<void(const MarkingRef&)>;
/// Marking-dependent exponential rate.
using RateFn = std::function<double(const MarkingRef&)>;
/// Marking-dependent case weight (weights are normalized at completion).
using CaseWeightFn = std::function<double(const MarkingRef&)>;

/// An input or output arc: (place, weight), weight >= 1.  Input arcs require
/// `weight` tokens in slot 0 and remove them on completion; output arcs add
/// `weight` tokens to slot 0.  Arcs address slot 0 only; use gates for
/// extended places.
struct Arc {
  PlaceToken place;
  std::int32_t weight = 1;
};

struct CaseDef {
  double weight = 1.0;                ///< fixed weight unless weight_fn set
  CaseWeightFn weight_fn;             ///< optional marking-dependent weight
  std::vector<GateFn> output_fns;     ///< output gates of this case
  std::vector<Arc> output_arcs;       ///< output arcs of this case
};

struct ActivityDef {
  std::string name;
  bool timed = true;
  int priority = 0;  ///< instantaneous only; larger fires first

  /// Firing-delay distribution (timed).  Either `dist` or `rate_fn`.
  std::optional<util::Distribution> dist;
  RateFn rate_fn;  ///< marking-dependent exponential rate (timed)

  std::vector<Predicate> predicates;  ///< input-gate predicates
  std::vector<GateFn> input_fns;      ///< input-gate functions
  std::vector<Arc> input_arcs;
  std::vector<CaseDef> cases;  ///< empty means one trivial case

  // Declared dependency sets (see ActivityBuilder::reads / writes).  Arcs
  // are always derived automatically and need no declaration; these cover
  // only what the opaque std::function callbacks touch.
  std::vector<PlaceToken> declared_reads;   ///< places read by predicates/rate
  std::vector<PlaceToken> declared_writes;  ///< places written by gate fns
  bool reads_declared = false;
  bool writes_declared = false;
};

class AtomicModel;

/// Fluent builder for one activity; returned by AtomicModel::*_activity.
/// The handle stays valid while the AtomicModel is alive and no further
/// activities are added.
class ActivityBuilder {
 public:
  /// Sets the firing-delay distribution of a timed activity.
  ActivityBuilder& distribution(util::Distribution d);
  /// Sets a marking-dependent exponential rate (timed activities).
  ActivityBuilder& marking_rate(RateFn fn);
  /// Sets the priority of an instantaneous activity (default 0).
  ActivityBuilder& priority(int p);
  /// Adds an input gate: enabling predicate plus marking-update function
  /// (either may be null to omit that half).
  ActivityBuilder& input_gate(Predicate pred, GateFn fn = nullptr);
  /// Adds an input arc (slot 0 of a place).
  ActivityBuilder& input_arc(PlaceToken p, std::int32_t weight = 1);
  /// Appends a case with a fixed weight; returns its index.
  std::size_t add_case(double weight = 1.0);
  /// Appends a case with a marking-dependent weight; returns its index.
  std::size_t add_case(CaseWeightFn weight_fn);
  /// Adds an output gate to case `case_idx` (case 0 is created on demand).
  ActivityBuilder& output_gate(GateFn fn, std::size_t case_idx = 0);
  /// Adds an output arc to case `case_idx`.
  ActivityBuilder& output_arc(PlaceToken p, std::int32_t weight = 1,
                              std::size_t case_idx = 0);

  /// Declares the complete set of places whose marking this activity's
  /// input-gate predicates and marking-dependent rate function consult.
  /// Input arcs are derived automatically and need not be listed.  Without
  /// a declaration the dependency index (san::DependencyIndex) falls back
  /// to "every place of this atomic model" — sound, because a MarkingRef
  /// can only address places of its own model, but it couples replicas
  /// through shared places and costs O(model) re-checks per event.
  /// Case-weight functions need no declaration: weights are evaluated
  /// fresh at every completion, so nothing about them is cached.
  /// Multiple calls accumulate.  Validated against real trajectories by
  /// sim::Executor::Options::check_dependencies.
  ActivityBuilder& reads(std::initializer_list<PlaceToken> places);

  /// Declares the complete set of places any of this activity's gate
  /// functions (input-gate functions and every case's output gates) may
  /// write.  Arcs are derived automatically.  Declare the union over all
  /// cases and all conditional paths — over-approximation is safe,
  /// omission is not.  Multiple calls accumulate.
  ActivityBuilder& writes(std::initializer_list<PlaceToken> places);

 private:
  friend class AtomicModel;
  ActivityBuilder(AtomicModel* model, std::size_t index)
      : model_(model), index_(index) {}
  ActivityDef& def();
  void ensure_case(std::size_t case_idx);

  AtomicModel* model_;
  std::size_t index_;
};

/// One atomic SAN.  Movable; composition holds models by shared_ptr.
class AtomicModel {
 public:
  explicit AtomicModel(std::string name);

  const std::string& name() const { return name_; }

  /// Declares a simple place with the given initial marking (>= 0).
  PlaceToken place(const std::string& name, std::int32_t initial = 0);

  /// Declares an extended place with `size` slots, all initialized to
  /// `initial` (paper: arrays such as `platoon1`, `class_A`).
  PlaceToken extended_place(const std::string& name, std::uint32_t size,
                            std::int32_t initial = 0);

  /// Looks up a declared place by name; throws if absent.
  PlaceToken find_place(const std::string& name) const;

  /// Declares an upper bound on the value any slot of place `p` can hold at
  /// any reachable marking.  Like reads()/writes() this is *checked, not
  /// trusted*: the lint reachability probe validates it empirically
  /// (STRUCT002 on refutation) and ctmc::build_state_space validates it
  /// exactly on every explored marking.  The structural-analysis layer
  /// (san/analyze/invariants.h) folds checked capacities into the proved
  /// place bounds, which is what bounds gate-driven places — arcs alone
  /// cannot, because gate writes are opaque std::functions.
  AtomicModel& capacity(PlaceToken p, std::int32_t max_tokens);

  /// Declares place `p` an absorbing marker: its slots are nondecreasing
  /// along every firing (checked by the probe — STRUCT004 on refutation)
  /// and a positive marking identifies the model's absorbing/unsafe class
  /// (the paper's KO_total).  The absorbing-class analyzer certifies that
  /// markings with the marker set can never leave the class (STRUCT005).
  AtomicModel& absorbing(PlaceToken p);

  /// Declares a timed activity.
  ActivityBuilder timed_activity(const std::string& name);

  /// Declares an instantaneous activity.
  ActivityBuilder instant_activity(const std::string& name);

  // --- Introspection (used by the flattener, validation, and dot export).
  struct PlaceDef {
    std::string name;
    std::uint32_t size = 1;
    std::int32_t initial = 0;
    std::int32_t capacity = -1;  ///< declared per-slot max; -1 = undeclared
    bool absorbing = false;      ///< declared nondecreasing absorbing marker
  };
  const std::vector<PlaceDef>& places() const { return places_; }
  const std::vector<ActivityDef>& activities() const { return activities_; }

  /// Structural checks: every timed activity has a distribution or rate
  /// function, arcs reference declared places, weights positive, fixed case
  /// weights non-negative with a positive sum.  Throws util::ModelError.
  void validate() const;

 private:
  friend class ActivityBuilder;
  std::string name_;
  std::vector<PlaceDef> places_;
  std::vector<ActivityDef> activities_;
};

}  // namespace san
