#include "san/rewards.h"

#include "util/error.h"

namespace san {

RewardFn indicator_nonzero(const FlatModel& model, const std::string& place) {
  const std::size_t pi = model.place_index(place);
  const std::uint32_t off = model.place_offset(pi);
  return [off](std::span<const std::int32_t> m) {
    return m[off] > 0 ? 1.0 : 0.0;
  };
}

RewardFn place_value(const FlatModel& model, const std::string& place,
                     std::uint32_t idx) {
  const std::size_t pi = model.place_index(place);
  AHS_REQUIRE(idx < model.place_size(pi), "slot index out of range");
  const std::uint32_t off = model.place_offset(pi) + idx;
  return [off](std::span<const std::int32_t> m) {
    return static_cast<double>(m[off]);
  };
}

RewardFn place_total(const FlatModel& model, const std::string& place) {
  const std::size_t pi = model.place_index(place);
  const std::uint32_t off = model.place_offset(pi);
  const std::uint32_t size = model.place_size(pi);
  return [off, size](std::span<const std::int32_t> m) {
    double s = 0.0;
    for (std::uint32_t i = 0; i < size; ++i) s += m[off + i];
    return s;
  };
}

RewardFn replica_total(const FlatModel& model, const std::string& suffix) {
  const auto indices = model.place_indices(suffix);
  AHS_REQUIRE(!indices.empty(), "no place matches suffix '" + suffix + "'");
  std::vector<std::uint32_t> offsets;
  offsets.reserve(indices.size());
  for (std::size_t pi : indices) offsets.push_back(model.place_offset(pi));
  return [offsets](std::span<const std::int32_t> m) {
    double s = 0.0;
    for (std::uint32_t off : offsets) s += m[off];
    return s;
  };
}

}  // namespace san
