// Static read/write dependency index of a flattened SAN.
//
// The locality insight behind SAN/Petri-net simulators (Sanders & Meyer's
// SAN semantics; Möbius' enabling-dependency optimization): one activity
// completion touches only a handful of marking slots, so only activities
// whose *inputs* overlap those slots can change enablement, rate, or
// schedule.  This index makes that precise and static:
//
//  * per-activity READ set — the slots whose value can affect the
//    activity's enablement or (exponential) rate: input-arc slots exactly,
//    plus the slots of the places declared with ActivityBuilder::reads()
//    for its predicates/rate function.  Case-weight functions are excluded
//    by design: weights are evaluated fresh on the marking at every
//    completion, so no cached state depends on them.
//  * per-activity WRITE set — the slots a completion can modify: input- and
//    output-arc slots exactly (union over cases), plus the slots of the
//    places declared with ActivityBuilder::writes() for its gate functions.
//  * the inversion slot -> reading activities, and its composition
//    `affected_by(a)` = { b : reads(b) ∩ writes(a) ≠ ∅ } ∪ {a} — the static
//    superset of activities the executor must re-examine after `a` fires.
//
// Undeclared callbacks fall back to *every place of the owning atomic-model
// instance* (all slots its InstanceMap can address).  This is sound — a
// MarkingRef bounds-checks place tokens against the instance map, so a gate
// cannot legally reach any other slot — and for replicated submodels it is
// already far tighter than "all slots": a replica's instance map covers its
// own places plus the shared ones, not its siblings'.  Declarations tighten
// it further to O(1) per event in the replica count.
//
// Soundness of the declarations themselves is *checked, not trusted*:
// sim::Executor::Options::check_dependencies replays every predicate
// evaluation and completion through an instrumented MarkingRef and throws
// on any access outside the declared sets.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "san/flat_model.h"

namespace san {

class DependencyIndex {
 public:
  /// Builds the index for `model`.  O(total set size); the model must
  /// outlive nothing — the index copies what it needs.
  static DependencyIndex build(const FlatModel& model);

  std::size_t num_activities() const { return num_activities_; }
  std::uint32_t num_slots() const { return num_slots_; }

  /// Slots whose value can affect activity `ai`'s enablement or rate
  /// (sorted, unique).
  std::span<const std::uint32_t> reads(std::size_t ai) const {
    return csr(read_off_, read_slots_, ai);
  }

  /// Slots a completion of activity `ai` can modify (sorted, unique,
  /// union over cases and conditional gate paths).
  std::span<const std::uint32_t> writes(std::size_t ai) const {
    return csr(write_off_, write_slots_, ai);
  }

  /// Activities whose read set contains `slot` (sorted, unique).
  std::span<const std::uint32_t> readers_of_slot(std::uint32_t slot) const {
    return csr(reader_off_, reader_acts_, slot);
  }

  /// Activities to re-examine after `ai` fires: every activity reading a
  /// slot `ai` can write, plus `ai` itself (its activation always ends on
  /// completion even when no written slot feeds back into its own reads).
  std::span<const std::uint32_t> affected_by(std::size_t ai) const {
    return csr(affected_off_, affected_acts_, ai);
  }

  /// False when the read (write) set fell back to the conservative
  /// all-instance-places approximation for an undeclared callback.
  bool reads_exact(std::size_t ai) const { return reads_exact_[ai] != 0; }
  bool writes_exact(std::size_t ai) const { return writes_exact_[ai] != 0; }

  /// Human-readable statistics: average set sizes, fallback counts.
  std::string summary() const;

 private:
  static std::span<const std::uint32_t> csr(
      const std::vector<std::uint32_t>& off,
      const std::vector<std::uint32_t>& data, std::size_t i) {
    return std::span<const std::uint32_t>(data.data() + off[i],
                                          off[i + 1] - off[i]);
  }

  std::size_t num_activities_ = 0;
  std::uint32_t num_slots_ = 0;

  // CSR triples: offsets have num_activities_+1 (resp. num_slots_+1) entries.
  std::vector<std::uint32_t> read_off_, read_slots_;
  std::vector<std::uint32_t> write_off_, write_slots_;
  std::vector<std::uint32_t> reader_off_, reader_acts_;
  std::vector<std::uint32_t> affected_off_, affected_acts_;
  std::vector<std::uint8_t> reads_exact_, writes_exact_;
};

}  // namespace san
