#include "san/dot.h"

#include <sstream>

namespace san {

std::string to_dot(const AtomicModel& model) {
  std::ostringstream os;
  os << "digraph \"" << model.name() << "\" {\n";
  os << "  rankdir=LR;\n  node [fontsize=10];\n";
  const auto& places = model.places();
  for (std::size_t i = 0; i < places.size(); ++i) {
    os << "  p" << i << " [shape=circle, label=\"" << places[i].name;
    if (places[i].size > 1) os << "[" << places[i].size << "]";
    if (places[i].initial > 0) os << "\\n(" << places[i].initial << ")";
    os << "\"];\n";
  }
  const auto& acts = model.activities();
  for (std::size_t i = 0; i < acts.size(); ++i) {
    const auto& a = acts[i];
    os << "  a" << i << " [shape=rectangle, "
       << (a.timed ? "style=filled, fillcolor=gray80, " : "height=0.1, ")
       << "label=\"" << a.name << "\"];\n";
    for (const auto& arc : a.input_arcs) {
      os << "  p" << arc.place.id << " -> a" << i;
      if (arc.weight > 1) os << " [label=\"" << arc.weight << "\"]";
      os << ";\n";
    }
    for (std::size_t ci = 0; ci < a.cases.size(); ++ci) {
      for (const auto& arc : a.cases[ci].output_arcs) {
        os << "  a" << i << " -> p" << arc.place.id;
        if (a.cases.size() > 1) os << " [label=\"case " << ci << "\"]";
        os << ";\n";
      }
    }
    const std::size_t gates = a.predicates.size() + a.input_fns.size();
    if (gates > 0) {
      os << "  g" << i << " [shape=triangle, label=\"" << gates
         << " gate(s)\"];\n  g" << i << " -> a" << i << " [style=dotted];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace san
