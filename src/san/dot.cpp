#include "san/dot.h"

#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "san/analyze/invariants.h"
#include "san/analyze/structure.h"

namespace san {

std::string to_dot(const AtomicModel& model) {
  std::ostringstream os;
  os << "digraph \"" << model.name() << "\" {\n";
  os << "  rankdir=LR;\n  node [fontsize=10];\n";
  const auto& places = model.places();
  for (std::size_t i = 0; i < places.size(); ++i) {
    os << "  p" << i << " [shape=circle, label=\"" << places[i].name;
    if (places[i].size > 1) os << "[" << places[i].size << "]";
    if (places[i].initial > 0) os << "\\n(" << places[i].initial << ")";
    os << "\"];\n";
  }
  const auto& acts = model.activities();
  for (std::size_t i = 0; i < acts.size(); ++i) {
    const auto& a = acts[i];
    os << "  a" << i << " [shape=rectangle, "
       << (a.timed ? "style=filled, fillcolor=gray80, " : "height=0.1, ")
       << "label=\"" << a.name << "\"];\n";
    for (const auto& arc : a.input_arcs) {
      os << "  p" << arc.place.id << " -> a" << i;
      if (arc.weight > 1) os << " [label=\"" << arc.weight << "\"]";
      os << ";\n";
    }
    for (std::size_t ci = 0; ci < a.cases.size(); ++ci) {
      for (const auto& arc : a.cases[ci].output_arcs) {
        os << "  a" << i << " -> p" << arc.place.id;
        if (a.cases.size() > 1) os << " [label=\"case " << ci << "\"]";
        os << ";\n";
      }
    }
    const std::size_t gates = a.predicates.size() + a.input_fns.size();
    if (gates > 0) {
      os << "  g" << i << " [shape=triangle, label=\"" << gates
         << " gate(s)\"];\n  g" << i << " -> a" << i << " [style=dotted];\n";
    }
  }
  os << "}\n";
  return os.str();
}

namespace {

/// Lint highlight palette, indexed by severity.
struct Highlight {
  const char* fill;
  const char* border;
};

Highlight highlight_for(analyze::Severity s) {
  switch (s) {
    case analyze::Severity::kError: return {"#ffb3b3", "red"};
    case analyze::Severity::kWarning: return {"#ffd9a0", "orange"};
    case analyze::Severity::kInfo: return {"#cfe2ff", "steelblue"};
  }
  return {"white", "black"};
}

/// Name (activity or place) -> worst diagnostic severity naming it.  Place
/// anchors may carry an extended-place "[i]" suffix; it is stripped so the
/// whole place node lights up.
std::unordered_map<std::string, analyze::Severity> finding_marks(
    const analyze::LintReport* findings) {
  std::unordered_map<std::string, analyze::Severity> marks;
  if (findings == nullptr) return marks;
  auto note = [&](std::string name, analyze::Severity s) {
    if (name.empty()) return;
    if (const auto br = name.find('['); br != std::string::npos)
      name.resize(br);
    const auto [it, inserted] = marks.emplace(std::move(name), s);
    if (!inserted && it->second < s) it->second = s;
  };
  for (const analyze::Diagnostic& d : findings->diagnostics) {
    note(d.activity, d.severity);
    note(d.place, d.severity);
  }
  return marks;
}

}  // namespace

std::string to_dot(const FlatModel& model,
                   const analyze::LintReport* findings) {
  const auto marks = finding_marks(findings);
  auto decoration = [&](const std::string& name) -> std::string {
    const auto it = marks.find(name);
    if (it == marks.end()) return "";
    const Highlight h = highlight_for(it->second);
    return std::string(", style=filled, fillcolor=\"") + h.fill +
           "\", color=\"" + h.border + "\", penwidth=2";
  };

  std::vector<std::size_t> slot_place(model.marking_size(), 0);
  for (std::size_t pi = 0; pi < model.places().size(); ++pi) {
    const FlatPlace& p = model.places()[pi];
    for (std::uint32_t i = 0; i < p.size; ++i) slot_place[p.offset + i] = pi;
  }

  // Semiflow overlay: places carrying P-semiflow support are drawn with a
  // double border, and every place with a proved bound gets it in its
  // label.  Fed from the structural facts the lint report carries.
  std::vector<std::uint8_t> in_semiflow(model.places().size(), 0);
  std::vector<std::uint64_t> place_bound(model.places().size(),
                                         analyze::kUnbounded);
  if (findings != nullptr && findings->facts != nullptr) {
    const analyze::StructuralFacts& facts = *findings->facts;
    for (const analyze::Semiflow& y : facts.p_semiflows)
      for (const auto& [slot, coeff] : y.terms)
        in_semiflow[slot_place[slot]] = 1;
    for (std::size_t s = 0; s < facts.slot_bound.size(); ++s) {
      std::uint64_t& b = place_bound[slot_place[s]];
      // A place's displayed bound is the loosest over its slots.
      if (facts.slot_bound[s] > b || b == analyze::kUnbounded)
        b = facts.slot_bound[s];
    }
  }

  std::ostringstream os;
  os << "digraph flat_model {\n";
  os << "  rankdir=LR;\n  node [fontsize=10];\n";
  const auto& places = model.places();
  for (std::size_t i = 0; i < places.size(); ++i) {
    os << "  p" << i << " [shape=circle, label=\"" << places[i].name;
    if (places[i].size > 1) os << "[" << places[i].size << "]";
    if (places[i].initial > 0) os << "\\n(" << places[i].initial << ")";
    if (place_bound[i] != analyze::kUnbounded)
      os << "\\n<=" << place_bound[i];
    os << "\"";
    if (in_semiflow[i]) os << ", peripheries=2";
    os << decoration(places[i].name) << "];\n";
  }
  const auto& acts = model.activities();
  for (std::size_t i = 0; i < acts.size(); ++i) {
    const FlatActivity& a = acts[i];
    os << "  a" << i << " [shape=rectangle, "
       << (a.timed ? "style=filled, fillcolor=gray80, " : "height=0.1, ")
       << "label=\"" << a.name << "\"" << decoration(a.name) << "];\n";
    std::set<std::size_t> arc_in, arc_out;
    for (const FlatArc& arc : a.input_arcs) {
      arc_in.insert(slot_place[arc.slot]);
      os << "  p" << slot_place[arc.slot] << " -> a" << i;
      if (arc.weight > 1) os << " [label=\"" << arc.weight << "\"]";
      os << ";\n";
    }
    for (std::size_t ci = 0; ci < a.cases.size(); ++ci) {
      for (const FlatArc& arc : a.cases[ci].output_arcs) {
        arc_out.insert(slot_place[arc.slot]);
        os << "  a" << i << " -> p" << slot_place[arc.slot];
        if (a.cases.size() > 1) os << " [label=\"case " << ci << "\"]";
        os << ";\n";
      }
    }
    // Gate connectivity from the declared dependency sets, deduplicated per
    // place and suppressed where an arc already draws the edge.
    if (a.reads_declared) {
      std::set<std::size_t> seen;
      for (std::uint32_t s : a.declared_read_slots) {
        const std::size_t pi = slot_place[s];
        if (arc_in.count(pi) || !seen.insert(pi).second) continue;
        os << "  p" << pi << " -> a" << i
           << " [style=dashed, color=gray50];\n";
      }
    }
    if (a.writes_declared) {
      std::set<std::size_t> seen;
      for (std::uint32_t s : a.declared_write_slots) {
        const std::size_t pi = slot_place[s];
        if (arc_out.count(pi) || !seen.insert(pi).second) continue;
        os << "  a" << i << " -> p" << pi
           << " [style=dashed, color=gray50];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace san
