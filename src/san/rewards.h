// Reward variables over flattened models.
//
// A rate reward maps a marking to a real number; the engines evaluate it
// at time instants (instant-of-time, the paper's S(t) = P[KO_total marked])
// or integrate it over an interval (interval-of-time).  Helpers build the
// common indicator rewards from place names.
#pragma once

#include <functional>
#include <span>
#include <string>

#include "san/flat_model.h"

namespace san {

/// Rate reward evaluated on the global marking.
using RewardFn = std::function<double(std::span<const std::int32_t>)>;

/// 1 when slot 0 of the named place is positive, else 0.
RewardFn indicator_nonzero(const FlatModel& model, const std::string& place);

/// Value of slot `idx` of the named place.
RewardFn place_value(const FlatModel& model, const std::string& place,
                     std::uint32_t idx = 0);

/// Sum over all slots of the named place (extended-place counters).
RewardFn place_total(const FlatModel& model, const std::string& place);

/// Sum of slot 0 across every place matching the suffix (one per replica) —
/// e.g. the number of replicas currently holding a token in "v_OK".
RewardFn replica_total(const FlatModel& model, const std::string& suffix);

}  // namespace san
