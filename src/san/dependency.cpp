#include "san/dependency.h"

#include <algorithm>
#include <sstream>

namespace san {

namespace {

void sort_unique(std::vector<std::uint32_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// Every slot the activity's instance map can address — the sound
/// fallback for undeclared callbacks (MarkingRef bounds-checks tokens
/// against the map, so nothing outside is reachable).
void append_instance_slots(const InstanceMap& imap,
                           std::vector<std::uint32_t>& out) {
  for (std::size_t p = 0; p < imap.offset.size(); ++p)
    for (std::uint32_t i = 0; i < imap.size[p]; ++i)
      out.push_back(imap.offset[p] + i);
}

}  // namespace

DependencyIndex DependencyIndex::build(const FlatModel& model) {
  DependencyIndex idx;
  const auto& acts = model.activities();
  const std::size_t n = acts.size();
  idx.num_activities_ = n;
  idx.num_slots_ = static_cast<std::uint32_t>(model.marking_size());
  idx.reads_exact_.assign(n, 1);
  idx.writes_exact_.assign(n, 1);

  std::vector<std::vector<std::uint32_t>> reads(n), writes(n);
  for (std::size_t ai = 0; ai < n; ++ai) {
    const FlatActivity& a = acts[ai];

    // --- Read set: arcs exactly; callbacks via declaration or fallback.
    for (const auto& arc : a.input_arcs) reads[ai].push_back(arc.slot);
    const bool has_read_fns = !a.predicates.empty() || a.rate_fn != nullptr;
    if (has_read_fns) {
      if (a.reads_declared) {
        reads[ai].insert(reads[ai].end(), a.declared_read_slots.begin(),
                         a.declared_read_slots.end());
      } else {
        append_instance_slots(*a.imap, reads[ai]);
        idx.reads_exact_[ai] = 0;
      }
    }

    // --- Write set: arcs exactly (union over cases); gate functions via
    // declaration or fallback.
    for (const auto& arc : a.input_arcs) writes[ai].push_back(arc.slot);
    bool has_write_fns = !a.input_fns.empty();
    for (const auto& c : a.cases) {
      for (const auto& arc : c.output_arcs) writes[ai].push_back(arc.slot);
      if (!c.output_fns.empty()) has_write_fns = true;
    }
    if (has_write_fns) {
      if (a.writes_declared) {
        writes[ai].insert(writes[ai].end(), a.declared_write_slots.begin(),
                          a.declared_write_slots.end());
      } else {
        append_instance_slots(*a.imap, writes[ai]);
        idx.writes_exact_[ai] = 0;
      }
    }

    sort_unique(reads[ai]);
    sort_unique(writes[ai]);
  }

  auto pack = [](const std::vector<std::vector<std::uint32_t>>& rows,
                 std::vector<std::uint32_t>& off,
                 std::vector<std::uint32_t>& data) {
    off.assign(rows.size() + 1, 0);
    std::size_t total = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      total += rows[i].size();
      off[i + 1] = static_cast<std::uint32_t>(total);
    }
    data.reserve(total);
    for (const auto& row : rows)
      data.insert(data.end(), row.begin(), row.end());
  };
  pack(reads, idx.read_off_, idx.read_slots_);
  pack(writes, idx.write_off_, idx.write_slots_);

  // --- Invert: slot -> reading activities.
  std::vector<std::vector<std::uint32_t>> readers(idx.num_slots_);
  for (std::size_t ai = 0; ai < n; ++ai)
    for (std::uint32_t s : reads[ai])
      readers[s].push_back(static_cast<std::uint32_t>(ai));
  pack(readers, idx.reader_off_, idx.reader_acts_);

  // --- Compose: activity -> affected activities (dedup via stamp).
  std::vector<std::vector<std::uint32_t>> affected(n);
  std::vector<std::uint32_t> stamp(n, UINT32_MAX);
  for (std::size_t ai = 0; ai < n; ++ai) {
    auto& row = affected[ai];
    const auto mark = static_cast<std::uint32_t>(ai);
    stamp[ai] = mark;
    row.push_back(mark);
    for (std::uint32_t s : writes[ai])
      for (std::uint32_t b : readers[s])
        if (stamp[b] != mark) {
          stamp[b] = mark;
          row.push_back(b);
        }
    std::sort(row.begin(), row.end());
  }
  pack(affected, idx.affected_off_, idx.affected_acts_);

  return idx;
}

std::string DependencyIndex::summary() const {
  std::size_t read_total = read_slots_.size();
  std::size_t write_total = write_slots_.size();
  std::size_t affected_total = affected_acts_.size();
  std::size_t read_fallbacks = 0, write_fallbacks = 0;
  for (std::uint8_t e : reads_exact_) read_fallbacks += e == 0;
  for (std::uint8_t e : writes_exact_) write_fallbacks += e == 0;
  const double n = num_activities_ ? static_cast<double>(num_activities_) : 1.0;
  std::ostringstream os;
  os << "DependencyIndex: " << num_activities_ << " activities over "
     << num_slots_ << " slots; avg reads " << read_total / n << ", avg writes "
     << write_total / n << ", avg affected " << affected_total / n << "; "
     << read_fallbacks << " read / " << write_fallbacks
     << " write conservative fallbacks";
  return os.str();
}

}  // namespace san
