#include "san/atomic_model.h"

#include "util/error.h"

namespace san {

ActivityDef& ActivityBuilder::def() { return model_->activities_[index_]; }

ActivityBuilder& ActivityBuilder::distribution(util::Distribution d) {
  AHS_REQUIRE(def().timed, "only timed activities have distributions");
  def().dist = d;
  def().rate_fn = nullptr;
  return *this;
}

ActivityBuilder& ActivityBuilder::marking_rate(RateFn fn) {
  AHS_REQUIRE(def().timed, "only timed activities have rates");
  AHS_REQUIRE(fn != nullptr, "marking_rate requires a callable");
  def().rate_fn = std::move(fn);
  def().dist.reset();
  return *this;
}

ActivityBuilder& ActivityBuilder::priority(int p) {
  AHS_REQUIRE(!def().timed, "priority applies to instantaneous activities");
  def().priority = p;
  return *this;
}

ActivityBuilder& ActivityBuilder::input_gate(Predicate pred, GateFn fn) {
  AHS_REQUIRE(pred != nullptr || fn != nullptr,
              "input gate needs a predicate or a function");
  if (pred) def().predicates.push_back(std::move(pred));
  if (fn) def().input_fns.push_back(std::move(fn));
  return *this;
}

ActivityBuilder& ActivityBuilder::input_arc(PlaceToken p, std::int32_t weight) {
  AHS_REQUIRE(weight >= 1, "arc weight must be >= 1");
  def().input_arcs.push_back({p, weight});
  return *this;
}

void ActivityBuilder::ensure_case(std::size_t case_idx) {
  if (def().cases.empty() && case_idx == 0) def().cases.emplace_back();
  AHS_REQUIRE(case_idx < def().cases.size(),
              "case index out of range; call add_case first");
}

std::size_t ActivityBuilder::add_case(double weight) {
  AHS_REQUIRE(weight >= 0.0, "case weight must be >= 0");
  CaseDef c;
  c.weight = weight;
  def().cases.push_back(std::move(c));
  return def().cases.size() - 1;
}

std::size_t ActivityBuilder::add_case(CaseWeightFn weight_fn) {
  AHS_REQUIRE(weight_fn != nullptr, "case weight function must be callable");
  CaseDef c;
  c.weight_fn = std::move(weight_fn);
  def().cases.push_back(std::move(c));
  return def().cases.size() - 1;
}

ActivityBuilder& ActivityBuilder::output_gate(GateFn fn, std::size_t case_idx) {
  AHS_REQUIRE(fn != nullptr, "output gate function must be callable");
  ensure_case(case_idx);
  def().cases[case_idx].output_fns.push_back(std::move(fn));
  return *this;
}

ActivityBuilder& ActivityBuilder::output_arc(PlaceToken p, std::int32_t weight,
                                             std::size_t case_idx) {
  AHS_REQUIRE(weight >= 1, "arc weight must be >= 1");
  ensure_case(case_idx);
  def().cases[case_idx].output_arcs.push_back({p, weight});
  return *this;
}

ActivityBuilder& ActivityBuilder::reads(
    std::initializer_list<PlaceToken> places) {
  for (PlaceToken p : places) def().declared_reads.push_back(p);
  def().reads_declared = true;
  return *this;
}

ActivityBuilder& ActivityBuilder::writes(
    std::initializer_list<PlaceToken> places) {
  for (PlaceToken p : places) def().declared_writes.push_back(p);
  def().writes_declared = true;
  return *this;
}

AtomicModel::AtomicModel(std::string name) : name_(std::move(name)) {
  AHS_REQUIRE(!name_.empty(), "atomic model needs a name");
}

PlaceToken AtomicModel::place(const std::string& name, std::int32_t initial) {
  return extended_place(name, 1, initial);
}

PlaceToken AtomicModel::extended_place(const std::string& name,
                                       std::uint32_t size,
                                       std::int32_t initial) {
  AHS_REQUIRE(!name.empty(), "place needs a name");
  AHS_REQUIRE(size >= 1, "extended place needs at least one slot");
  AHS_REQUIRE(initial >= 0, "initial marking must be >= 0");
  for (const auto& p : places_)
    AHS_REQUIRE(p.name != name,
                "duplicate place '" + name + "' in model '" + name_ + "'");
  places_.push_back({name, size, initial});
  return PlaceToken{static_cast<std::uint32_t>(places_.size() - 1)};
}

AtomicModel& AtomicModel::capacity(PlaceToken p, std::int32_t max_tokens) {
  AHS_REQUIRE(p.valid() && p.id < places_.size(),
              "capacity declaration references an undeclared place");
  AHS_REQUIRE(max_tokens >= 0, "declared capacity must be >= 0");
  AHS_REQUIRE(places_[p.id].initial <= max_tokens,
              "place '" + places_[p.id].name +
                  "': initial marking exceeds the declared capacity");
  places_[p.id].capacity = max_tokens;
  return *this;
}

AtomicModel& AtomicModel::absorbing(PlaceToken p) {
  AHS_REQUIRE(p.valid() && p.id < places_.size(),
              "absorbing declaration references an undeclared place");
  places_[p.id].absorbing = true;
  return *this;
}

PlaceToken AtomicModel::find_place(const std::string& name) const {
  for (std::size_t i = 0; i < places_.size(); ++i)
    if (places_[i].name == name)
      return PlaceToken{static_cast<std::uint32_t>(i)};
  throw util::ModelError("no place '" + name + "' in model '" + name_ + "'");
}

ActivityBuilder AtomicModel::timed_activity(const std::string& name) {
  AHS_REQUIRE(!name.empty(), "activity needs a name");
  ActivityDef def;
  def.name = name;
  def.timed = true;
  activities_.push_back(std::move(def));
  return ActivityBuilder(this, activities_.size() - 1);
}

ActivityBuilder AtomicModel::instant_activity(const std::string& name) {
  AHS_REQUIRE(!name.empty(), "activity needs a name");
  ActivityDef def;
  def.name = name;
  def.timed = false;
  activities_.push_back(std::move(def));
  return ActivityBuilder(this, activities_.size() - 1);
}

void AtomicModel::validate() const {
  for (const auto& a : activities_) {
    if (a.timed) {
      if (!a.dist.has_value() && !a.rate_fn)
        throw util::ModelError("timed activity '" + a.name + "' of model '" +
                               name_ +
                               "' has neither a distribution nor a rate");
    }
    auto check_arc = [&](const Arc& arc, const char* dir) {
      if (!arc.place.valid() || arc.place.id >= places_.size())
        throw util::ModelError(std::string(dir) + " arc of activity '" +
                               a.name + "' references an undeclared place");
      if (arc.weight < 1)
        throw util::ModelError(std::string(dir) + " arc of activity '" +
                               a.name + "' has non-positive weight");
    };
    for (const auto& arc : a.input_arcs) check_arc(arc, "input");
    double fixed_weight_sum = 0.0;
    bool any_fn = false;
    for (const auto& c : a.cases) {
      for (const auto& arc : c.output_arcs) check_arc(arc, "output");
      if (c.weight_fn) any_fn = true;
      else {
        if (c.weight < 0.0)
          throw util::ModelError("case of activity '" + a.name +
                                 "' has negative weight");
        fixed_weight_sum += c.weight;
      }
    }
    if (!a.cases.empty() && !any_fn && fixed_weight_sum <= 0.0)
      throw util::ModelError("activity '" + a.name +
                             "' has cases but zero total case weight");
    auto check_token = [&](PlaceToken p, const char* what) {
      if (!p.valid() || p.id >= places_.size())
        throw util::ModelError(std::string(what) + " declaration of activity '" +
                               a.name + "' references an undeclared place");
    };
    for (PlaceToken p : a.declared_reads) check_token(p, "reads");
    for (PlaceToken p : a.declared_writes) check_token(p, "writes");
  }
}

}  // namespace san
