// Rep/Join composition of SAN models (Möbius composed-model trees).
//
// `Rep(name, child, count, shared)` instantiates `count` copies of `child`;
// places of `child` whose names appear in `shared` are merged into a single
// place visible to all replicas (and exported upward under their bare name).
// `Join(name, children, shared)` instantiates each child once and merges
// equally-named places listed in `shared` across children.  This mirrors
// Fig 9 of the paper:
//
//   Join("system", {Rep("vehicles", one_vehicle, 2n, {...shared...}),
//                   configuration, dynamicity, severity},
//        {...shared...})
//
// A place is merged only if its declared size and initial marking agree in
// every contributing leaf; mismatches throw util::ModelError.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "san/atomic_model.h"
#include "san/flat_model.h"

namespace san {

class Composition;
using CompositionPtr = std::shared_ptr<const Composition>;

class Composition {
 public:
  enum class Kind { kLeaf, kRep, kJoin };

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  // Introspection used by the flattener and tests.
  const std::shared_ptr<const AtomicModel>& leaf() const { return leaf_; }
  const CompositionPtr& rep_child() const { return child_; }
  std::uint32_t rep_count() const { return count_; }
  const std::vector<CompositionPtr>& join_children() const {
    return children_;
  }
  const std::set<std::string>& shared() const { return shared_; }

  /// Total number of leaf instances this subtree will instantiate.
  std::size_t instance_count() const;

 private:
  friend CompositionPtr Leaf(std::shared_ptr<const AtomicModel> model);
  friend CompositionPtr Rep(std::string name, CompositionPtr child,
                            std::uint32_t count,
                            std::set<std::string> shared);
  friend CompositionPtr Join(std::string name,
                             std::vector<CompositionPtr> children,
                             std::set<std::string> shared);
  Composition() = default;

  Kind kind_ = Kind::kLeaf;
  std::string name_;
  std::shared_ptr<const AtomicModel> leaf_;
  CompositionPtr child_;
  std::uint32_t count_ = 0;
  std::vector<CompositionPtr> children_;
  std::set<std::string> shared_;
};

/// Wraps an atomic model as a composition leaf.  The model is validated.
CompositionPtr Leaf(std::shared_ptr<const AtomicModel> model);

/// Replicates `child` `count` times (count >= 1), sharing the named places.
CompositionPtr Rep(std::string name, CompositionPtr child,
                   std::uint32_t count, std::set<std::string> shared);

/// Joins children, merging equally-named places listed in `shared`.
CompositionPtr Join(std::string name, std::vector<CompositionPtr> children,
                    std::set<std::string> shared);

/// Flattens a composition tree into an executable model.
FlatModel flatten(const CompositionPtr& root);

/// Convenience: flatten a single atomic model.
FlatModel flatten(std::shared_ptr<const AtomicModel> model);

}  // namespace san
