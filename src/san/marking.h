// Markings and the gate-side view of them.
//
// A SAN marking assigns a non-negative integer to every place.  Extended
// places (Möbius arrays — the paper uses them for `class_A/B/C`, `platoon1`,
// `platoon2`) are modeled as places with `size > 1` slots.  The flattened
// system model stores all slots of all places in one contiguous
// std::vector<int32_t>; gate callbacks see the marking through a MarkingRef
// that translates the *local* place tokens of their atomic model into global
// offsets via an InstanceMap.  This is what lets one gate function, written
// once against the atomic model, serve every replica produced by Rep.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace san {

/// Opaque handle to a place of an AtomicModel.  Only valid with the model
/// that created it (and with MarkingRefs bound to instances of that model).
struct PlaceToken {
  std::uint32_t id = UINT32_MAX;
  bool valid() const { return id != UINT32_MAX; }
  friend bool operator==(PlaceToken a, PlaceToken b) { return a.id == b.id; }
};

/// Per-instance translation from local place ids to offsets in the flat
/// marking vector.  Built by the flattener; shared by all activities of one
/// leaf instance.
struct InstanceMap {
  std::vector<std::uint32_t> offset;  ///< local place id -> global slot
  std::vector<std::uint32_t> size;    ///< local place id -> slot count
  std::uint32_t replica = 0;          ///< replica index within enclosing Rep
};

/// Records the global marking slots a gate/predicate/rate callback touched.
/// Used by the dependency-index validator (Executor::Options::
/// check_dependencies) to verify declared read/write sets against the
/// accesses a real trajectory actually performs.
struct AccessLog {
  std::vector<std::uint32_t> reads;
  std::vector<std::uint32_t> writes;
  void clear() {
    reads.clear();
    writes.clear();
  }
};

/// Mutable view of the global marking as seen from one leaf instance.
/// Bounds-checked; gate bugs surface as exceptions, not memory corruption.
class MarkingRef {
 public:
  MarkingRef(std::span<std::int32_t> data, const InstanceMap* map,
             AccessLog* log = nullptr)
      : data_(data), map_(map), log_(log) {}

  /// Value of slot `idx` of place `p` (idx 0 for simple places).
  std::int32_t get(PlaceToken p, std::uint32_t idx = 0) const {
    const std::size_t s = slot(p, idx);
    if (log_) log_->reads.push_back(static_cast<std::uint32_t>(s));
    return data_[s];
  }

  /// Sets slot `idx` of place `p`.
  void set(PlaceToken p, std::uint32_t idx, std::int32_t v) const {
    const std::size_t s = slot(p, idx);
    if (log_) log_->writes.push_back(static_cast<std::uint32_t>(s));
    data_[s] = v;
  }

  /// Sets the single slot of a simple place.
  void set(PlaceToken p, std::int32_t v) const { set(p, 0, v); }

  /// Adds `delta` to slot `idx` of place `p`.
  void add(PlaceToken p, std::uint32_t idx, std::int32_t delta) const {
    const std::size_t s = slot(p, idx);
    if (log_) log_->writes.push_back(static_cast<std::uint32_t>(s));
    data_[s] += delta;
  }

  /// Adds `delta` to the single slot of a simple place.
  void add(PlaceToken p, std::int32_t delta) const { add(p, 0, delta); }

  /// Number of slots of place `p`.
  std::uint32_t size(PlaceToken p) const {
    AHS_REQUIRE(p.valid() && p.id < map_->size.size(), "bad place token");
    return map_->size[p.id];
  }

  /// Sum over all slots of place `p` (handy for extended-place counters).
  std::int32_t total(PlaceToken p) const {
    std::int32_t s = 0;
    for (std::uint32_t i = 0; i < size(p); ++i) s += get(p, i);
    return s;
  }

  /// Replica index of this instance within its enclosing Rep (0 if none).
  std::uint32_t replica() const { return map_->replica; }

 private:
  std::size_t slot(PlaceToken p, std::uint32_t idx) const {
    AHS_REQUIRE(p.valid() && p.id < map_->offset.size(), "bad place token");
    AHS_REQUIRE(idx < map_->size[p.id], "extended-place index out of range");
    return map_->offset[p.id] + idx;
  }

  std::span<std::int32_t> data_;
  const InstanceMap* map_;
  AccessLog* log_ = nullptr;
};

}  // namespace san
