#include "san/analyze/analysis.h"

#include <algorithm>

#include "san/analyze/analyzer.h"
#include "util/error.h"

namespace san::analyze {

LintReport run_lint(const FlatModel& model, std::string model_name,
                    const LintOptions& opts) {
  for (const std::string& id : opts.disabled_ids)
    if (find_diagnostic(id) == nullptr)
      throw util::ModelError("lint: unknown diagnostic ID '" + id +
                             "' in suppression list");

  const DependencyIndex deps = DependencyIndex::build(model);
  const StructureInfo structure = build_structure(model);
  const ProbeResult probes =
      run_probe(model, ProbeOptions{opts.probe_budget});
  const AnalysisContext ctx{model, deps, structure, probes};

  LintReport report;
  report.model_name = std::move(model_name);
  report.probed_markings = probes.probed_markings;
  report.probe_complete = probes.complete;
  for (const auto& analyzer : default_analyzers()) analyzer->run(ctx, report);

  if (!opts.disabled_ids.empty()) {
    std::erase_if(report.diagnostics, [&](const Diagnostic& d) {
      return std::find(opts.disabled_ids.begin(), opts.disabled_ids.end(),
                       d.id) != opts.disabled_ids.end();
    });
  }
  std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.severity > b.severity;
                   });
  return report;
}

void preflight_lint(const FlatModel& model, const std::string& context,
                    std::size_t probe_budget) {
  LintOptions opts;
  opts.probe_budget = probe_budget;
  const LintReport report = run_lint(model, context, opts);
  if (report.clean(Severity::kError)) return;
  std::string msg = context + ": static analysis found " +
                    std::to_string(report.errors()) +
                    " error-severity finding(s):";
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity != Severity::kError) continue;
    msg += "\n  [" + d.id + "] " + d.message;
    if (!d.activity.empty()) msg += " (activity: " + d.activity + ")";
    if (!d.place.empty()) msg += " (place: " + d.place + ")";
  }
  throw util::ModelError(msg);
}

}  // namespace san::analyze
