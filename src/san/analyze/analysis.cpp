#include "san/analyze/analysis.h"

#include <algorithm>
#include <memory>

#include "san/analyze/analyzer.h"
#include "san/analyze/graph.h"
#include "san/analyze/invariants.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/spans.h"

namespace san::analyze {

LintReport run_lint(const FlatModel& model, std::string model_name,
                    const LintOptions& opts) {
  AHS_SPAN("lint.run");
  for (const std::string& id : opts.disabled_ids)
    if (find_diagnostic(id) == nullptr)
      throw util::ModelError("lint: unknown diagnostic ID '" + id +
                             "' in suppression list");

  const DependencyIndex deps = DependencyIndex::build(model);
  const StructureInfo structure = build_structure(model);
  ProbeResult probes;
  {
    AHS_SPAN("lint.probe");
    probes = run_probe(model, ProbeOptions{opts.probe_budget});
  }
  auto facts = std::make_shared<StructuralFacts>();
  {
    AHS_SPAN("lint.invariants");
    *facts = compute_invariants(model, structure);
  }
  {
    AHS_SPAN("lint.graph");
    analyze_graph(model, structure, probes, *facts);
  }
  if (auto* reg = util::MetricsRegistry::global()) {
    reg->counter("san.analyze.semiflows_found")
        .add(facts->p_semiflows.size() + facts->t_semiflows.size());
    reg->counter("san.analyze.invariant_bound_tightenings")
        .add(facts->bound_tightenings);
  }
  const AnalysisContext ctx{model, deps, structure, probes, *facts};

  LintReport report;
  report.model_name = std::move(model_name);
  report.probed_markings = probes.probed_markings;
  report.probe_complete = probes.complete;
  report.facts = facts;
  report.facts_json = structural_facts_json(model, *facts);
  {
    AHS_SPAN("lint.analyzers");
    for (const auto& analyzer : default_analyzers())
      analyzer->run(ctx, report);
  }

  if (!opts.disabled_ids.empty()) {
    std::erase_if(report.diagnostics, [&](const Diagnostic& d) {
      return std::find(opts.disabled_ids.begin(), opts.disabled_ids.end(),
                       d.id) != opts.disabled_ids.end();
    });
  }
  std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.severity > b.severity;
                   });
  return report;
}

LintReport run_lint_guarded(const FlatModel& model, std::string model_name,
                            const LintOptions& opts) {
  try {
    return run_lint(model, model_name, opts);
  } catch (const std::exception& e) {
    LintReport report;
    report.model_name = std::move(model_name);
    report.add("LINT001", Severity::kError,
               std::string("analyzer crashed; report is partial: ") +
                   e.what());
    return report;
  }
}

LintReport preflight_lint_report(const FlatModel& model,
                                 const std::string& context,
                                 std::size_t probe_budget,
                                 const std::vector<std::string>& nonfatal_ids) {
  LintOptions opts;
  opts.probe_budget = probe_budget;
  LintReport report = run_lint(model, context, opts);
  auto fatal = [&](const Diagnostic& d) {
    return d.severity == Severity::kError &&
           std::find(nonfatal_ids.begin(), nonfatal_ids.end(), d.id) ==
               nonfatal_ids.end();
  };
  std::size_t fatal_count = 0;
  for (const Diagnostic& d : report.diagnostics) fatal_count += fatal(d);
  if (fatal_count == 0) return report;
  std::string msg = context + ": static analysis found " +
                    std::to_string(fatal_count) +
                    " error-severity finding(s):";
  for (const Diagnostic& d : report.diagnostics) {
    if (!fatal(d)) continue;
    msg += "\n  [" + d.id + "] " + d.message;
    if (!d.activity.empty()) msg += " (activity: " + d.activity + ")";
    if (!d.place.empty()) msg += " (place: " + d.place + ")";
  }
  throw util::ModelError(msg);
}

void preflight_lint(const FlatModel& model, const std::string& context,
                    std::size_t probe_budget,
                    const std::vector<std::string>& nonfatal_ids) {
  (void)preflight_lint_report(model, context, probe_budget, nonfatal_ids);
}

}  // namespace san::analyze
