// Graph analyses over the place–activity flow graph of a flattened SAN:
// strongly connected components and condensation shape, the never-markable
// slot fixpoint (the classic unmarked-siphon argument run forward), and
// absorbing-class certificates for declared absorbing markers.
//
// The flow graph is bipartite: slot -> activity when an input arc (or a
// conservatively-resolved gate read) consumes the slot, activity -> slot
// when an output arc or a gate write may feed it.  Everything here is an
// over-approximation of real token flow, which makes the negative claims
// sound: a slot outside every markable set truly can never hold a token,
// and an SCC count of 1 truly means every place/activity can influence
// every other.
//
// Absorbing certificates combine an exact argument over arc-only
// transitions (no exact transition decreases the marker) with the probe's
// empirical monotonicity check over opaque firings; ctmc::build_state_space
// re-validates the declaration exactly on every interned marking, so a
// wrong declaration cannot silently corrupt a numerical result.
#pragma once

#include "san/analyze/invariants.h"
#include "san/analyze/probe.h"
#include "san/analyze/structure.h"
#include "san/flat_model.h"

namespace san::analyze {

/// Fills StructuralFacts::scc_count / condensation_sinks /
/// never_markable_slots / absorbing from the flow graph, the incidence
/// matrix already present in `facts`, and the probe's observations.
void analyze_graph(const FlatModel& model, const StructureInfo& structure,
                   const ProbeResult& probes, StructuralFacts& facts);

}  // namespace san::analyze
