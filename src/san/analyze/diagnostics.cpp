#include "san/analyze/diagnostics.h"

#include <array>
#include <sstream>

#include "util/string_util.h"

namespace san::analyze {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

namespace {

constexpr std::array<DiagnosticInfo, 20> kCatalog = {{
    {"DEP001", Severity::kError,
     "predicate/rate read a marking slot outside the declared read set"},
    {"DEP002", Severity::kError,
     "completion wrote a marking slot outside the declared write set"},
    {"DEP003", Severity::kInfo,
     "declared access set is wider than any observed access (perf smell)"},
    {"DEP004", Severity::kWarning,
     "undeclared callbacks: dependency index falls back to the whole "
     "instance"},
    {"DEP005", Severity::kError,
     "predicate/rate evaluation modified the marking (must be pure)"},
    {"NET001", Severity::kWarning,
     "dead activity: an input arc can never be covered"},
    {"NET002", Severity::kInfo,
     "write-only place: nothing reads it (ignore_places candidate)"},
    {"NET003", Severity::kWarning,
     "unbounded place: arc inflow grows without bound and is never "
     "consumed"},
    {"NET004", Severity::kError,
     "instantaneous-activity arc cycle (vanishing loop)"},
    {"NET005", Severity::kInfo,
     "same-priority instantaneous activities of different instances write "
     "one shared place"},
    {"NET006", Severity::kError,
     "non-finite or non-positive rate at a reachable enabled marking"},
    {"NET007", Severity::kError,
     "invalid case weights (negative, or zero total) at a reachable "
     "marking"},
    {"NET008", Severity::kError,
     "model callback threw at a reachable marking"},
    {"STRUCT001", Severity::kInfo,
     "gate-opaque activity: excluded from exact incidence analysis"},
    {"STRUCT002", Severity::kError,
     "declared place capacity refuted (exceeded at a reachable marking, or "
     "fed by a proved-unbounded producer)"},
    {"STRUCT003", Severity::kWarning,
     "place provably never marked from the initial marking (dead subnet / "
     "unmarked siphon)"},
    {"STRUCT004", Severity::kError,
     "declared absorbing marker decreased across a probed firing"},
    {"STRUCT005", Severity::kInfo,
     "P-semiflow conservation law proved (place bounds strengthened)"},
    {"STRUCT006", Severity::kWarning,
     "semiflow basis truncated (working-set cap or int64 overflow); proved "
     "bounds may be incomplete"},
    {"LINT001", Severity::kError,
     "analyzer crashed; report for this configuration is partial"},
}};

}  // namespace

std::span<const DiagnosticInfo> diagnostic_catalog() { return kCatalog; }

const DiagnosticInfo* find_diagnostic(const std::string& id) {
  for (const DiagnosticInfo& info : kCatalog)
    if (id == info.id) return &info;
  return nullptr;
}

std::size_t LintReport::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) n += d.severity == s;
  return n;
}

bool LintReport::clean(Severity floor) const {
  for (const Diagnostic& d : diagnostics)
    if (d.severity >= floor) return false;
  return true;
}

void LintReport::add(std::string id, Severity severity, std::string message,
                     std::string activity, std::string place) {
  diagnostics.push_back(Diagnostic{std::move(id), severity, std::move(message),
                                   std::move(activity), std::move(place)});
}

std::string LintReport::to_text() const {
  std::ostringstream os;
  os << model_name << ": " << diagnostics.size() << " finding(s) ["
     << errors() << " error, " << warnings() << " warning, "
     << count(Severity::kInfo) << " info] over " << probed_markings
     << " probed marking(s)"
     << (probe_complete ? " (complete coverage)" : " (partial coverage)")
     << "\n";
  for (const Diagnostic& d : diagnostics) {
    os << "  [" << d.id << "] " << to_string(d.severity) << ": " << d.message;
    if (!d.activity.empty()) os << " (activity: " << d.activity << ")";
    if (!d.place.empty()) os << " (place: " << d.place << ")";
    os << "\n";
  }
  return os.str();
}

std::string LintReport::to_json() const {
  std::ostringstream os;
  os << "{\"model\": \"" << util::json_escape(model_name)
     << "\", \"probed_markings\": " << probed_markings
     << ", \"probe_complete\": " << (probe_complete ? "true" : "false")
     << ", \"summary\": {\"errors\": " << errors()
     << ", \"warnings\": " << warnings()
     << ", \"infos\": " << count(Severity::kInfo) << "}, \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) os << ", ";
    os << "{\"id\": \"" << util::json_escape(d.id) << "\", \"severity\": \""
       << to_string(d.severity) << "\", \"activity\": ";
    if (d.activity.empty()) os << "null";
    else os << '"' << util::json_escape(d.activity) << '"';
    os << ", \"place\": ";
    if (d.place.empty()) os << "null";
    else os << '"' << util::json_escape(d.place) << '"';
    os << ", \"message\": \"" << util::json_escape(d.message) << "\"}";
  }
  os << "]";
  if (!facts_json.empty()) os << ", \"structural_facts\": " << facts_json;
  os << "}";
  return os.str();
}

std::string lint_json_document(std::span<const LintReport> reports) {
  std::ostringstream os;
  os << "{\"schema\": \"ahs.lint.v1\", \"reports\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) os << ", ";
    os << reports[i].to_json();
  }
  os << "]}";
  return os.str();
}

}  // namespace san::analyze
