// Budget-bounded reachability probe for the static-analysis suite.
//
// Opaque std::function gates make a purely syntactic dependency analysis
// impossible, so the linter instruments them instead: it explores markings
// breadth-first from the initial marking — without a simulator, clocks, or
// RNG — and evaluates every callback through an AccessLog-carrying
// MarkingRef, recording which global slots each activity's predicates/rate
// actually read and its completions actually write.
//
// The probe mirrors the engines' evaluation sites exactly, which is what
// keeps the downstream error-severity checks free of false positives:
//
//  * instantaneous predicates are probed on every reachable marking;
//  * from a vanishing marking only the highest enabled instantaneous
//    priority level expands (lower levels never evaluate their gates or
//    fire in either engine);
//  * timed enablement, rates, case weights, and firings are probed only on
//    tangible markings;
//  * zero-weight cases are never fired (the engines cannot select them).
//
// Coverage is budgeted (ProbeOptions::max_markings).  `complete` is true
// iff the frontier was exhausted within budget — only then do observed
// access sets equal the full reachable behavior, which is why the
// over-width check (DEP003) is gated on it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "san/dependency.h"
#include "san/flat_model.h"

namespace san::analyze {

struct ProbeOptions {
  /// Maximum distinct markings to expand before giving up on completeness.
  std::size_t max_markings = 1024;
};

/// Per-activity observations accumulated over every probed marking.
struct ActivityProbe {
  /// Slots read while evaluating predicates or the rate function.
  std::vector<std::uint32_t> pred_reads;
  /// Slots read while evaluating case-weight functions (exempt from read
  /// declarations by design; kept separate for the unread-place analysis).
  std::vector<std::uint32_t> case_reads;
  /// Slots written by completions (input/output gate functions and arcs).
  std::vector<std::uint32_t> fire_writes;
  /// Slots read while firing (gate functions consulting the marking to
  /// compute what to write).  Not subject to read declarations — the
  /// completion re-reads the live marking — but they tell the unread-place
  /// analysis that a place's value feeds a completion.
  std::vector<std::uint32_t> fire_reads;
  /// Slots written during predicate/rate/case-weight evaluation — always a
  /// defect (DEP005); empty when all callbacks are pure.
  std::vector<std::uint32_t> eval_writes;

  /// First defect of each kind observed at a reachable marking ("" = none).
  std::string rate_issue;    ///< non-finite / non-positive rate (NET006)
  std::string weight_issue;  ///< negative weight or zero total (NET007)
  std::string thrown;        ///< what() of a throwing callback (NET008)

  /// True when the activity was enabled at some probed marking.
  bool seen_enabled = false;
};

/// A checked structural declaration (FlatPlace::capacity / ::absorbing)
/// refuted at a probed reachable marking.
struct DeclarationViolation {
  std::uint32_t slot = 0;      ///< violating marking slot
  std::int32_t value = 0;      ///< observed value (capacity) or delta sign
  std::uint32_t activity = 0;  ///< firing that produced it (monotone only)
};

struct ProbeResult {
  std::vector<ActivityProbe> activities;  ///< one per model activity
  std::size_t probed_markings = 0;
  bool complete = false;  ///< frontier exhausted within budget

  /// Per-slot extrema over every *discovered* marking (initial marking and
  /// all successors, including ones past the expansion budget).  The
  /// invariants layer cross-checks proved bounds against slot_max.
  std::vector<std::int32_t> slot_max;
  std::vector<std::int32_t> slot_min;

  /// Declared capacities exceeded at a discovered marking (STRUCT002); at
  /// most one entry per slot.
  std::vector<DeclarationViolation> capacity_violations;
  /// Declared absorbing markers observed to *decrease* across a firing
  /// (STRUCT004); at most one entry per slot.
  std::vector<DeclarationViolation> monotone_violations;
};

ProbeResult run_probe(const FlatModel& model, const ProbeOptions& opts = {});

}  // namespace san::analyze
