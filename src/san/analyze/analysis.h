// Entry points of the static-analysis suite.
//
// run_lint() derives the shared analysis artifacts (dependency index,
// arc-structure facts, reachability probe) for one flattened model and runs
// every default analyzer over them, returning a LintReport.
//
// preflight_lint() is the engine hook: sim::Executor (Options::lint) and
// ctmc::build_state_space (StateSpaceOptions::lint) call it before touching
// the model and abort with util::ModelError when any error-severity finding
// remains — a model that would corrupt incremental results or hang
// stabilization never starts running.  The preflight uses a small probe
// budget: error findings never depend on completeness, so a shallow probe
// only costs detection depth, never correctness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "san/analyze/diagnostics.h"
#include "san/flat_model.h"

namespace san::analyze {

struct LintOptions {
  /// Reachability-probe budget (distinct markings to expand).
  std::size_t probe_budget = 1024;

  /// Diagnostic IDs to suppress, e.g. {"NET005"}.  Unknown IDs are
  /// rejected with util::ModelError to keep suppression lists honest.
  std::vector<std::string> disabled_ids;
};

/// Lints one flattened model; `model_name` labels the report.  The report
/// carries the structural facts (invariants + graph analyses) both as a
/// shared_ptr for programmatic consumers and pre-rendered into its JSON.
LintReport run_lint(const FlatModel& model, std::string model_name,
                    const LintOptions& opts = {});

/// As run_lint, but an analyzer crash (any std::exception escaping the
/// pipeline) is captured as a LINT001 error finding on an otherwise valid —
/// if partial — report instead of propagating.  Batch drivers (ahs_lint
/// --all) use this so one crashing configuration cannot truncate the JSON
/// document for every other.
LintReport run_lint_guarded(const FlatModel& model, std::string model_name,
                            const LintOptions& opts = {});

/// Runs a small-budget lint and throws util::ModelError naming every
/// error-severity finding.  `context` prefixes the exception message
/// (e.g. "Executor preflight").  IDs in `nonfatal_ids` stay in the report
/// but do not trigger the throw — the discrete-event simulator passes
/// {"NET003"} because simulating an open (provably unbounded) net is
/// legitimate even though exact state-space generation over it is not.
void preflight_lint(const FlatModel& model, const std::string& context,
                    std::size_t probe_budget = 128,
                    const std::vector<std::string>& nonfatal_ids = {});

/// As preflight_lint, but returns the report (with its structural facts)
/// on success instead of discarding it — ctmc::build_state_space consumes
/// the proved bounds to pre-size its containers and reject provably
/// infinite explorations before interning a single state.
LintReport preflight_lint_report(const FlatModel& model,
                                 const std::string& context,
                                 std::size_t probe_budget = 128,
                                 const std::vector<std::string>& nonfatal_ids = {});

}  // namespace san::analyze
