// Entry points of the static-analysis suite.
//
// run_lint() derives the shared analysis artifacts (dependency index,
// arc-structure facts, reachability probe) for one flattened model and runs
// every default analyzer over them, returning a LintReport.
//
// preflight_lint() is the engine hook: sim::Executor (Options::lint) and
// ctmc::build_state_space (StateSpaceOptions::lint) call it before touching
// the model and abort with util::ModelError when any error-severity finding
// remains — a model that would corrupt incremental results or hang
// stabilization never starts running.  The preflight uses a small probe
// budget: error findings never depend on completeness, so a shallow probe
// only costs detection depth, never correctness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "san/analyze/diagnostics.h"
#include "san/flat_model.h"

namespace san::analyze {

struct LintOptions {
  /// Reachability-probe budget (distinct markings to expand).
  std::size_t probe_budget = 1024;

  /// Diagnostic IDs to suppress, e.g. {"NET005"}.  Unknown IDs are
  /// rejected with util::ModelError to keep suppression lists honest.
  std::vector<std::string> disabled_ids;
};

/// Lints one flattened model; `model_name` labels the report.
LintReport run_lint(const FlatModel& model, std::string model_name,
                    const LintOptions& opts = {});

/// Runs a small-budget lint and throws util::ModelError naming every
/// error-severity finding.  `context` prefixes the exception message
/// (e.g. "Executor preflight").
void preflight_lint(const FlatModel& model, const std::string& context,
                    std::size_t probe_budget = 128);

}  // namespace san::analyze
