#include "san/analyze/invariants.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "util/string_util.h"

namespace san::analyze {

const char* to_string(BoundProvenance p) {
  switch (p) {
    case BoundProvenance::kNone: return "none";
    case BoundProvenance::kFixpoint: return "fixpoint";
    case BoundProvenance::kInvariant: return "invariant";
    case BoundProvenance::kDeclared: return "declared";
    case BoundProvenance::kProvedUnbounded: return "proved-unbounded";
  }
  return "unknown";
}

namespace {

using I128 = __int128;

constexpr std::int64_t kI64Max = INT64_MAX;

std::string slot_display(const FlatModel& model, std::uint32_t slot) {
  const FlatPlace& p = model.places()[model.place_of_slot(slot)];
  if (p.size == 1) return p.name;
  return p.name + "[" + std::to_string(slot - p.offset) + "]";
}

/// One Farkas working row: `c` the residual constraint entries of the
/// columns not yet eliminated, `y` the nonnegative combination
/// coefficients that become the semiflow when all of `c` reaches zero.
struct Row {
  std::vector<std::int64_t> c;
  std::vector<std::int64_t> y;
};

/// gcd-reduces a combined row held in int128 and range-checks it back into
/// int64.  False (drop the row, flag truncation) when an entry cannot fit
/// even after division by the row gcd.
bool reduce_row(const std::vector<I128>& c128, const std::vector<I128>& y128,
                Row& out) {
  // Manual Euclid over int128 (std::gcd does not take __int128 reliably
  // across standard libraries).
  auto gcd128 = [](I128 a, I128 b) {
    if (a < 0) a = -a;
    if (b < 0) b = -b;
    while (b != 0) {
      const I128 t = a % b;
      a = b;
      b = t;
    }
    return a;
  };
  I128 g = 0;
  for (I128 x : c128) g = gcd128(g, x);
  for (I128 x : y128) g = gcd128(g, x);
  if (g == 0) g = 1;
  out.c.resize(c128.size());
  out.y.resize(y128.size());
  for (std::size_t i = 0; i < c128.size(); ++i) {
    const I128 v = c128[i] / g;
    if (v > kI64Max || v < -static_cast<I128>(kI64Max)) return false;
    out.c[i] = static_cast<std::int64_t>(v);
  }
  for (std::size_t i = 0; i < y128.size(); ++i) {
    const I128 v = y128[i] / g;
    if (v > kI64Max || v < -static_cast<I128>(kI64Max)) return false;
    out.y[i] = static_cast<std::int64_t>(v);
  }
  return true;
}

std::vector<std::size_t> y_support(const Row& r) {
  std::vector<std::size_t> s;
  for (std::size_t i = 0; i < r.y.size(); ++i)
    if (r.y[i] != 0) s.push_back(i);
  return s;
}

/// Drops duplicate rows and rows whose y-support strictly contains another
/// row's support (nonnegative combinations of smaller semiflows).
void prune_minimal(std::vector<Row>& rows) {
  std::vector<std::vector<std::size_t>> sup(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) sup[i] = y_support(rows[i]);
  std::vector<char> drop(rows.size(), 0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (drop[i]) continue;
    for (std::size_t j = 0; j < rows.size(); ++j) {
      if (i == j || drop[j] || drop[i]) continue;
      if (sup[i].size() == sup[j].size()) {
        if (j > i && sup[i] == sup[j] && rows[i].y == rows[j].y &&
            rows[i].c == rows[j].c)
          drop[j] = 1;
        continue;
      }
      // Strictly larger support that includes the smaller one.
      if (sup[i].size() > sup[j].size() &&
          std::includes(sup[i].begin(), sup[i].end(), sup[j].begin(),
                        sup[j].end()))
        drop[i] = 1;
    }
  }
  std::size_t w = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (drop[i]) continue;
    if (w != i) rows[w] = std::move(rows[i]);  // guard against self-move
    ++w;
  }
  rows.resize(w);
}

/// Farkas / Fourier–Motzkin elimination.  Input rows carry c = (one matrix
/// row) and y = e_i; output is the y-part of every row whose constraint
/// part reached zero — the minimal-support nonnegative integer solutions
/// of yᵀC = 0, up to working-set truncation.
std::vector<std::vector<std::int64_t>> farkas(std::vector<Row> rows,
                                              std::size_t num_cols,
                                              std::size_t max_rows,
                                              bool& truncated) {
  const std::size_t c_len = rows.empty() ? 0 : rows.front().c.size();
  const std::size_t y_len = rows.empty() ? 0 : rows.front().y.size();
  for (std::size_t j = 0; j < num_cols; ++j) {
    std::vector<Row> next;
    std::vector<std::size_t> pos, neg;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].c[j] == 0) next.push_back(std::move(rows[i]));
      else if (rows[i].c[j] > 0) pos.push_back(i);
      else neg.push_back(i);
    }
    // Every positive/negative pair combines into one row that cancels
    // column j; hard-stop the pair loop well past the cap so a blowing-up
    // column costs bounded work.
    const std::size_t hard_cap = max_rows * 4;
    std::vector<I128> c128(c_len);
    std::vector<I128> y128(y_len);
    for (std::size_t pi : pos) {
      for (std::size_t ni : neg) {
        if (next.size() >= hard_cap) {
          truncated = true;
          break;
        }
        const Row& p = rows[pi];
        const Row& n = rows[ni];
        std::int64_t a = -n.c[j];  // > 0
        std::int64_t b = p.c[j];   // > 0
        const std::int64_t g = std::gcd(a, b);
        a /= g;
        b /= g;
        for (std::size_t k = 0; k < p.c.size(); ++k)
          c128[k] = static_cast<I128>(a) * p.c[k] +
                    static_cast<I128>(b) * n.c[k];
        for (std::size_t k = 0; k < p.y.size(); ++k)
          y128[k] = static_cast<I128>(a) * p.y[k] +
                    static_cast<I128>(b) * n.y[k];
        Row combined;
        if (!reduce_row(c128, y128, combined)) {
          truncated = true;  // int64 overflow even after gcd reduction
          continue;
        }
        next.push_back(std::move(combined));
      }
      if (next.size() >= hard_cap) break;
    }
    prune_minimal(next);
    if (next.size() > max_rows) {
      // Keep the smallest supports — they are the most useful invariants
      // (tightest per-place bounds) and the most likely minimal ones.
      std::stable_sort(next.begin(), next.end(),
                       [](const Row& x, const Row& y) {
                         return y_support(x).size() < y_support(y).size();
                       });
      next.resize(max_rows);
      truncated = true;
    }
    rows = std::move(next);
    if (rows.empty()) break;
  }
  std::vector<std::vector<std::int64_t>> out;
  out.reserve(rows.size());
  for (Row& r : rows) out.push_back(std::move(r.y));
  return out;
}

}  // namespace

IncidenceMatrix build_incidence(const FlatModel& model,
                                const StructureInfo& structure) {
  IncidenceMatrix inc;
  const auto& acts = model.activities();
  inc.slot_exact.resize(model.marking_size());
  for (std::size_t s = 0; s < model.marking_size(); ++s)
    inc.slot_exact[s] = structure.gate_written[s] ? 0 : 1;

  for (std::size_t ai = 0; ai < acts.size(); ++ai) {
    const FlatActivity& a = acts[ai];
    bool any_gate = !a.input_fns.empty();
    for (const FlatCase& c : a.cases) any_gate |= !c.output_fns.empty();
    if (any_gate) ++inc.opaque_activities;
    for (std::size_t ci = 0; ci < a.cases.size(); ++ci) {
      Transition t;
      t.activity = static_cast<std::uint32_t>(ai);
      t.case_idx = static_cast<std::uint32_t>(ci);
      t.exact = a.input_fns.empty() && a.cases[ci].output_fns.empty();
      t.effect = model.case_arc_delta(ai, ci);
      inc.transitions.push_back(std::move(t));
    }
  }
  return inc;
}

StructuralFacts compute_invariants(const FlatModel& model,
                                   const StructureInfo& structure,
                                   const InvariantOptions& opts) {
  StructuralFacts facts;
  facts.incidence = build_incidence(model, structure);
  const IncidenceMatrix& inc = facts.incidence;
  const std::size_t num_slots = model.marking_size();
  const std::vector<std::int32_t> m0 = model.initial_marking();

  facts.slot_bound = structure.slot_bound;
  facts.provenance.assign(num_slots, BoundProvenance::kNone);
  for (std::size_t s = 0; s < num_slots; ++s)
    if (facts.slot_bound[s] != kUnbounded)
      facts.provenance[s] = BoundProvenance::kFixpoint;

  // --- P-semiflows over the gate-exact slots -----------------------------
  std::vector<std::uint32_t> cand;
  std::vector<std::int64_t> cand_index(num_slots, -1);
  for (std::uint32_t s = 0; s < num_slots; ++s)
    if (inc.slot_exact[s]) {
      cand_index[s] = static_cast<std::int64_t>(cand.size());
      cand.push_back(s);
    }

  if (!cand.empty()) {
    // Columns: each transition's effect restricted to the exact slots,
    // deduplicated (Rep instantiates identical columns per replica).
    std::map<std::vector<std::int64_t>, std::size_t> col_dedup;
    std::vector<std::vector<std::int64_t>> cols;
    for (const Transition& t : inc.transitions) {
      std::vector<std::int64_t> col(cand.size(), 0);
      bool any = false;
      for (const auto& [slot, d] : t.effect)
        if (cand_index[slot] >= 0) {
          col[static_cast<std::size_t>(cand_index[slot])] = d;
          any = true;
        }
      if (!any) continue;
      if (col_dedup.emplace(col, cols.size()).second)
        cols.push_back(std::move(col));
    }

    std::vector<Row> rows(cand.size());
    for (std::size_t i = 0; i < cand.size(); ++i) {
      rows[i].c.resize(cols.size());
      for (std::size_t j = 0; j < cols.size(); ++j) rows[i].c[j] = cols[j][i];
      rows[i].y.assign(cand.size(), 0);
      rows[i].y[i] = 1;
    }
    const auto ys =
        farkas(std::move(rows), cols.size(), opts.max_rows,
               facts.semiflow_truncated);
    for (const auto& y : ys) {
      Semiflow sf;
      I128 total = 0;
      for (std::size_t i = 0; i < y.size(); ++i) {
        if (y[i] == 0) continue;
        sf.terms.emplace_back(cand[i], y[i]);
        total += static_cast<I128>(y[i]) * m0[cand[i]];
      }
      if (sf.terms.empty()) continue;
      if (total > kI64Max) {  // conservation holds but the sum is huge
        facts.semiflow_truncated = true;
        continue;
      }
      sf.weighted_initial = static_cast<std::int64_t>(total);
      // Conservation law: y·m == y·m0 on every reachable marking, and
      // every supported slot stays >= 0 (arcs cannot drive exact slots
      // negative), so m[s] <= (y·m0) / y[s].
      for (const auto& [slot, coeff] : sf.terms) {
        const std::uint64_t bound =
            static_cast<std::uint64_t>(sf.weighted_initial / coeff);
        if (bound < facts.slot_bound[slot]) {
          facts.slot_bound[slot] = bound;
          facts.provenance[slot] = BoundProvenance::kInvariant;
        }
      }
      facts.p_semiflows.push_back(std::move(sf));
    }
  }

  // --- T-semiflows over the exact transitions ----------------------------
  {
    std::vector<std::size_t> exact_tr;
    std::map<std::vector<std::pair<std::uint32_t, std::int64_t>>, bool>
        effect_dedup;
    for (std::size_t ti = 0; ti < inc.transitions.size(); ++ti) {
      const Transition& t = inc.transitions[ti];
      if (!t.exact || t.effect.empty()) continue;
      if (!effect_dedup.emplace(t.effect, true).second) continue;
      exact_tr.push_back(ti);
    }
    // Columns: the slots any exact transition touches.
    std::vector<std::uint32_t> touched;
    std::vector<std::int64_t> touched_index(num_slots, -1);
    for (std::size_t ti : exact_tr)
      for (const auto& [slot, d] : inc.transitions[ti].effect) {
        (void)d;
        if (touched_index[slot] < 0) {
          touched_index[slot] = static_cast<std::int64_t>(touched.size());
          touched.push_back(slot);
        }
      }
    if (!exact_tr.empty()) {
      std::vector<Row> rows(exact_tr.size());
      for (std::size_t i = 0; i < exact_tr.size(); ++i) {
        rows[i].c.assign(touched.size(), 0);
        for (const auto& [slot, d] : inc.transitions[exact_tr[i]].effect)
          rows[i].c[static_cast<std::size_t>(touched_index[slot])] = d;
        rows[i].y.assign(exact_tr.size(), 0);
        rows[i].y[i] = 1;
      }
      const auto xs = farkas(std::move(rows), touched.size(), opts.max_rows,
                             facts.semiflow_truncated);
      for (const auto& x : xs) {
        Semiflow sf;
        for (std::size_t i = 0; i < x.size(); ++i)
          if (x[i] != 0)
            sf.terms.emplace_back(
                static_cast<std::uint32_t>(exact_tr[i]), x[i]);
        if (!sf.terms.empty()) facts.t_semiflows.push_back(std::move(sf));
      }
    }
  }

  // --- Checked capacity declarations -------------------------------------
  for (const FlatPlace& p : model.places()) {
    if (p.capacity < 0) continue;
    const auto cap = static_cast<std::uint64_t>(p.capacity);
    for (std::uint32_t i = 0; i < p.size; ++i) {
      const std::uint32_t s = p.offset + i;
      if (cap < facts.slot_bound[s]) {
        facts.slot_bound[s] = cap;
        facts.provenance[s] = BoundProvenance::kDeclared;
      }
    }
  }

  // --- Proved-unbounded witnesses ----------------------------------------
  // A transition t proves slot s unbounded when the pure-t firing sequence
  // is a valid path that pumps s forever:
  //  * t is exact (arc-only effect) and its activity has no predicates, so
  //    enabledness is exactly arc coverage;
  //  * its case is always selectable (fixed positive weight);
  //  * t is timed and every instantaneous activity is structurally dead,
  //    so no vanishing marking can preempt the path;
  //  * t is self-sustaining at m0: every input arc is covered initially
  //    and t's net effect on each input slot is >= 0;
  //  * t's net effect on s is > 0.
  {
    const auto& acts = model.activities();
    bool live_instant = false;
    for (std::size_t ai = 0; ai < acts.size(); ++ai)
      if (!acts[ai].timed && structure.fire_bound[ai] != 0)
        live_instant = true;
    if (!live_instant) {
      for (const Transition& t : inc.transitions) {
        const FlatActivity& a = acts[t.activity];
        if (!t.exact || !a.timed || !a.predicates.empty()) continue;
        const FlatCase& c = a.cases[t.case_idx];
        if (c.weight_fn != nullptr || c.weight <= 0.0) continue;
        auto net = [&t](std::uint32_t slot) -> std::int64_t {
          for (const auto& [s, d] : t.effect)
            if (s == slot) return d;
          return 0;
        };
        bool self_sustaining = true;
        for (const FlatArc& arc : a.input_arcs)
          if (m0[arc.slot] < arc.weight || net(arc.slot) < 0) {
            self_sustaining = false;
            break;
          }
        if (!self_sustaining) continue;
        for (const auto& [slot, d] : t.effect) {
          if (d <= 0) continue;
          const FlatPlace& p = model.places()[model.place_of_slot(slot)];
          if (p.capacity >= 0) {
            facts.capacity_refutations.emplace_back(slot, t.activity);
          } else if (facts.slot_bound[slot] == kUnbounded) {
            facts.provenance[slot] = BoundProvenance::kProvedUnbounded;
            facts.unbounded_witnesses.emplace_back(slot, t.activity);
          }
        }
      }
    }
  }

  for (std::size_t s = 0; s < num_slots; ++s)
    if (facts.slot_bound[s] < structure.slot_bound[s])
      ++facts.bound_tightenings;
  return facts;
}

namespace {

const char* reach_string(AbsorbingFact::Reach r) {
  switch (r) {
    case AbsorbingFact::Reach::kWitnessed: return "witnessed";
    case AbsorbingFact::Reach::kUnwitnessed: return "unwitnessed";
    case AbsorbingFact::Reach::kRefuted: return "refuted";
  }
  return "unknown";
}

}  // namespace

std::string structural_facts_json(const FlatModel& model,
                                  const StructuralFacts& facts) {
  std::ostringstream os;
  std::size_t exact_slots = 0;
  for (std::uint8_t e : facts.incidence.slot_exact) exact_slots += e;
  os << "{\"total_slots\": " << model.marking_size()
     << ", \"exact_slots\": " << exact_slots
     << ", \"transitions\": " << facts.incidence.transitions.size()
     << ", \"opaque_activities\": " << facts.incidence.opaque_activities
     << ", \"semiflow_truncated\": "
     << (facts.semiflow_truncated ? "true" : "false")
     << ", \"bound_tightenings\": " << facts.bound_tightenings;

  os << ", \"p_semiflows\": [";
  for (std::size_t i = 0; i < facts.p_semiflows.size(); ++i) {
    const Semiflow& sf = facts.p_semiflows[i];
    if (i > 0) os << ", ";
    os << "{\"invariant\": " << sf.weighted_initial << ", \"terms\": [";
    for (std::size_t k = 0; k < sf.terms.size(); ++k) {
      if (k > 0) os << ", ";
      os << "{\"place\": \""
         << util::json_escape(slot_display(model, sf.terms[k].first))
         << "\", \"coeff\": " << sf.terms[k].second << "}";
    }
    os << "]}";
  }
  os << "], \"t_semiflows\": [";
  for (std::size_t i = 0; i < facts.t_semiflows.size(); ++i) {
    const Semiflow& sf = facts.t_semiflows[i];
    if (i > 0) os << ", ";
    os << "{\"terms\": [";
    for (std::size_t k = 0; k < sf.terms.size(); ++k) {
      if (k > 0) os << ", ";
      const Transition& t = facts.incidence.transitions[sf.terms[k].first];
      os << "{\"activity\": \""
         << util::json_escape(model.activities()[t.activity].name)
         << "\", \"case\": " << t.case_idx
         << ", \"coeff\": " << sf.terms[k].second << "}";
    }
    os << "]}";
  }

  os << "], \"place_bounds\": [";
  const auto& places = model.places();
  for (std::size_t pi = 0; pi < places.size(); ++pi) {
    const FlatPlace& p = places[pi];
    std::uint64_t bound = 0;
    BoundProvenance prov = BoundProvenance::kNone;
    for (std::uint32_t i = 0; i < p.size; ++i) {
      const std::uint32_t s = p.offset + i;
      if (facts.slot_bound[s] == kUnbounded) {
        bound = kUnbounded;
        prov = facts.provenance[s];
        break;
      }
      if (facts.slot_bound[s] >= bound) {
        bound = facts.slot_bound[s];
        prov = facts.provenance[s];
      }
    }
    if (pi > 0) os << ", ";
    os << "{\"place\": \"" << util::json_escape(p.name) << "\", \"bound\": ";
    if (bound == kUnbounded) os << "null";
    else os << bound;
    os << ", \"provenance\": \"" << to_string(prov) << "\"}";
  }

  os << "], \"scc_count\": " << facts.scc_count
     << ", \"condensation_sinks\": " << facts.condensation_sinks
     << ", \"never_markable\": [";
  for (std::size_t i = 0; i < facts.never_markable_slots.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"'
       << util::json_escape(
              slot_display(model, facts.never_markable_slots[i]))
       << '"';
  }
  os << "], \"absorbing\": [";
  for (std::size_t i = 0; i < facts.absorbing.size(); ++i) {
    const AbsorbingFact& af = facts.absorbing[i];
    if (i > 0) os << ", ";
    os << "{\"place\": \""
       << util::json_escape(model.places()[af.place].name)
       << "\", \"certified\": " << (af.certified ? "true" : "false")
       << ", \"reachable\": \"" << reach_string(af.reach)
       << "\", \"detail\": \"" << util::json_escape(af.detail) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string structural_facts_text(const FlatModel& model,
                                  const StructuralFacts& facts) {
  std::ostringstream os;
  std::size_t exact_slots = 0;
  for (std::uint8_t e : facts.incidence.slot_exact) exact_slots += e;
  os << "structural facts: " << facts.incidence.transitions.size()
     << " transitions, " << exact_slots << "/" << model.marking_size()
     << " gate-exact slots, " << facts.incidence.opaque_activities
     << " opaque activities"
     << (facts.semiflow_truncated ? " (semiflow basis TRUNCATED)" : "")
     << "\n";

  os << "  P-semiflows (" << facts.p_semiflows.size() << "):\n";
  for (const Semiflow& sf : facts.p_semiflows) {
    os << "    ";
    for (std::size_t k = 0; k < sf.terms.size(); ++k) {
      if (k > 0) os << " + ";
      if (sf.terms[k].second != 1) os << sf.terms[k].second << "*";
      os << slot_display(model, sf.terms[k].first);
    }
    os << " = " << sf.weighted_initial << "\n";
  }
  os << "  T-semiflows (" << facts.t_semiflows.size() << "):\n";
  for (const Semiflow& sf : facts.t_semiflows) {
    os << "    ";
    for (std::size_t k = 0; k < sf.terms.size(); ++k) {
      if (k > 0) os << " + ";
      const Transition& t = facts.incidence.transitions[sf.terms[k].first];
      if (sf.terms[k].second != 1) os << sf.terms[k].second << "*";
      os << model.activities()[t.activity].name;
      if (model.activities()[t.activity].cases.size() > 1)
        os << "#" << t.case_idx;
    }
    os << "\n";
  }

  os << "  place bounds:\n";
  for (const FlatPlace& p : model.places()) {
    std::uint64_t bound = 0;
    BoundProvenance prov = BoundProvenance::kNone;
    for (std::uint32_t i = 0; i < p.size; ++i) {
      const std::uint32_t s = p.offset + i;
      if (facts.slot_bound[s] == kUnbounded) {
        bound = kUnbounded;
        prov = facts.provenance[s];
        break;
      }
      if (facts.slot_bound[s] >= bound) {
        bound = facts.slot_bound[s];
        prov = facts.provenance[s];
      }
    }
    os << "    " << p.name << ": ";
    if (bound == kUnbounded)
      os << (prov == BoundProvenance::kProvedUnbounded ? "UNBOUNDED (proved)"
                                                       : "unbounded");
    else
      os << "<= " << bound;
    os << " [" << to_string(prov) << "]\n";
  }

  os << "  graph: " << facts.scc_count << " SCC(s), "
     << facts.condensation_sinks << " sink(s), "
     << facts.never_markable_slots.size() << " never-markable slot(s)\n";
  for (const AbsorbingFact& af : facts.absorbing)
    os << "  absorbing marker " << model.places()[af.place].name << ": "
       << (af.certified ? "CERTIFIED" : "not certified") << ", reachability "
       << reach_string(af.reach) << " — " << af.detail << "\n";
  return os.str();
}

}  // namespace san::analyze
