// The default analyzer suite.  Each analyzer emits the diagnostic IDs it
// owns (see diagnostics.cpp for the catalogue); docs/ANALYSIS.md documents
// the rationale and suppression story per ID.
#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "san/analyze/analyzer.h"

namespace san::analyze {

namespace {

bool contains(std::span<const std::uint32_t> sorted, std::uint32_t v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

/// "P1, P2[3], ... (+k more)" — capped list of slot display names.
std::string name_slots(const AnalysisContext& ctx,
                       std::span<const std::uint32_t> slots,
                       std::size_t cap = 4) {
  std::ostringstream os;
  for (std::size_t i = 0; i < slots.size() && i < cap; ++i) {
    if (i > 0) os << ", ";
    os << slot_name(ctx.model, ctx.structure, slots[i]);
  }
  if (slots.size() > cap) os << " (+" << slots.size() - cap << " more)";
  return os.str();
}

// ---------------------------------------------------------------------------
// DEP001-DEP005: dependency soundness of the declared access sets.
//
// The static over-approximation of each activity's touched slots is exactly
// san::DependencyIndex's read/write sets (arcs exactly, plus declared —
// or conservatively fallen-back — callback sets resolved through Rep/Join).
// The probe's observed accesses must be contained in them; any escape means
// the incremental engine can miss a reschedule.
// ---------------------------------------------------------------------------
class DependencySoundnessAnalyzer final : public Analyzer {
 public:
  const char* name() const override { return "dependency-soundness"; }

  void run(const AnalysisContext& ctx, LintReport& report) const override {
    const auto& acts = ctx.model.activities();
    for (std::size_t ai = 0; ai < acts.size(); ++ai) {
      const FlatActivity& a = acts[ai];
      const ActivityProbe& ap = ctx.probes.activities[ai];

      if (!ap.eval_writes.empty())
        report.add("DEP005", Severity::kError,
                   "predicate/rate/weight evaluation wrote " +
                       name_slots(ctx, ap.eval_writes) +
                       "; these callbacks must be pure",
                   a.name);

      std::vector<std::uint32_t> bad;
      for (std::uint32_t s : ap.pred_reads)
        if (!contains(ctx.deps.reads(ai), s)) bad.push_back(s);
      if (!bad.empty())
        report.add("DEP001", Severity::kError,
                   "predicate/rate read " + name_slots(ctx, bad) +
                       " outside the declared read set; the incremental "
                       "engine would miss reschedules",
                   a.name);

      bad.clear();
      for (std::uint32_t s : ap.fire_writes)
        if (!contains(ctx.deps.writes(ai), s)) bad.push_back(s);
      if (!bad.empty())
        report.add("DEP002", Severity::kError,
                   "completion wrote " + name_slots(ctx, bad) +
                       " outside the declared write set; dependents would "
                       "not be re-examined",
                   a.name);

      const bool fb_reads = !ctx.deps.reads_exact(ai);
      const bool fb_writes = !ctx.deps.writes_exact(ai);
      if (fb_reads || fb_writes)
        report.add(
            "DEP004", Severity::kWarning,
            std::string("undeclared ") +
                (fb_reads && fb_writes ? "read and write"
                 : fb_reads            ? "read"
                                       : "write") +
                " callbacks: the dependency index falls back to every slot "
                "of the owning instance (O(instance) re-checks per event); "
                "declare with ActivityBuilder::reads()/writes()",
            a.name);

      // Over-width is only decidable under full coverage: a declared slot
      // unused on a partially explored space may be used further out.
      if (!ctx.probes.complete) continue;
      if (a.reads_declared) {
        bad.clear();
        for (std::uint32_t s : a.declared_read_slots)
          if (!contains(std::span<const std::uint32_t>(ap.pred_reads), s))
            bad.push_back(s);
        if (!bad.empty())
          report.add("DEP003", Severity::kInfo,
                     "declared read set lists " + name_slots(ctx, bad) +
                         " never consulted at any reachable marking "
                         "(enlarges affected_by; consider narrowing)",
                     a.name);
      }
      if (a.writes_declared && ap.seen_enabled) {
        bad.clear();
        for (std::uint32_t s : a.declared_write_slots)
          if (!contains(std::span<const std::uint32_t>(ap.fire_writes), s))
            bad.push_back(s);
        if (!bad.empty())
          report.add("DEP003", Severity::kInfo,
                     "declared write set lists " + name_slots(ctx, bad) +
                         " never written by any reachable completion "
                         "(enlarges affected_by; consider narrowing)",
                     a.name);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// NET001: dead activities — an input arc whose place can structurally never
// hold enough tokens.  Uses the decreasing-bound fixpoint, so the proof is
// conservative: a reported activity truly can never fire.
// ---------------------------------------------------------------------------
class DeadActivityAnalyzer final : public Analyzer {
 public:
  const char* name() const override { return "dead-activity"; }

  void run(const AnalysisContext& ctx, LintReport& report) const override {
    const auto& acts = ctx.model.activities();
    for (std::size_t ai = 0; ai < acts.size(); ++ai) {
      if (ctx.structure.fire_bound[ai] != 0) continue;
      for (const FlatArc& arc : acts[ai].input_arcs) {
        const std::uint64_t cap = ctx.structure.slot_bound[arc.slot];
        if (cap != kUnbounded &&
            cap < static_cast<std::uint64_t>(arc.weight)) {
          report.add("NET001", Severity::kWarning,
                     "dead activity: input arc needs " +
                         std::to_string(arc.weight) + " token(s) but the "
                         "place can never hold more than " +
                         std::to_string(cap),
                     acts[ai].name,
                     slot_name(ctx.model, ctx.structure, arc.slot));
          break;  // one proof per activity is enough
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// NET002: write-only places — written by arcs or gates, but no predicate,
// rate, or case-weight consults them and no completion of *another* place's
// dynamics reads them (self-updating counters like `ext_id++` do not
// count).  Such places are pure output statistics: candidates for
// StateSpaceOptions::ignore_places, which collapses the CTMC state space.
// ---------------------------------------------------------------------------
class UnreadPlaceAnalyzer final : public Analyzer {
 public:
  const char* name() const override { return "unread-place"; }

  void run(const AnalysisContext& ctx, LintReport& report) const override {
    const std::size_t num_slots = ctx.model.marking_size();
    std::vector<std::uint8_t> read(num_slots, 0);
    for (std::uint32_t s = 0; s < num_slots; ++s)
      if (!ctx.deps.readers_of_slot(s).empty()) read[s] = 1;
    const auto& acts = ctx.model.activities();
    for (std::size_t ai = 0; ai < acts.size(); ++ai) {
      const ActivityProbe& ap = ctx.probes.activities[ai];
      for (std::uint32_t s : ap.case_reads) read[s] = 1;
      for (std::uint32_t s : ap.fire_reads)
        if (!contains(ctx.deps.writes(ai), s)) read[s] = 1;
    }

    for (const FlatPlace& p : ctx.model.places()) {
      bool any_written = false, any_read = false;
      for (std::uint32_t i = 0; i < p.size; ++i) {
        const std::uint32_t s = p.offset + i;
        any_written |= ctx.structure.arc_fed[s] || ctx.structure.gate_written[s];
        any_read |= read[s] != 0;
      }
      if (any_written && !any_read)
        report.add("NET002", Severity::kInfo,
                   "write-only place: nothing consults its marking — a "
                   "pure output statistic and an ignore_places candidate "
                   "for CTMC generation",
                   "", p.name);
    }
  }
};

// ---------------------------------------------------------------------------
// NET003: unbounded places — arc inflow with no structural bound, never
// consumed by an input arc, and untouchable by any gate.  The invariants
// layer settles the question where it can: a place with a proved bound
// (P-semiflow or checked capacity declaration) is silent, and a place with
// a self-sustaining exact producer upgrades to a proved-unbounded *error*;
// only the genuinely undecided cases keep the historical warning.
// ---------------------------------------------------------------------------
class BoundsAnalyzer final : public Analyzer {
 public:
  const char* name() const override { return "place-bounds"; }

  void run(const AnalysisContext& ctx, LintReport& report) const override {
    for (const FlatPlace& p : ctx.model.places()) {
      for (std::uint32_t i = 0; i < p.size; ++i) {
        const std::uint32_t s = p.offset + i;
        if (!ctx.structure.arc_fed[s] || ctx.structure.arc_consumed[s] ||
            ctx.structure.gate_written[s])
          continue;
        if (ctx.facts.provenance[s] == BoundProvenance::kProvedUnbounded) {
          std::string witness;
          for (const auto& [slot, ai] : ctx.facts.unbounded_witnesses)
            if (slot == s) {
              witness = ctx.model.activities()[ai].name;
              break;
            }
          report.add("NET003", Severity::kError,
                     "place proved unbounded: '" + witness +
                         "' is a self-sustaining producer (exact, "
                         "predicate-free, net-positive); any tracked state "
                         "space over it is infinite",
                     witness, p.name);
          break;  // one finding per place
        }
        if (ctx.facts.slot_bound[s] != kUnbounded) continue;  // proved bound
        if (ctx.structure.slot_bound[s] == kUnbounded) {
          report.add("NET003", Severity::kWarning,
                     "unbounded place: arc inflow has no structural bound "
                     "and nothing ever consumes it (state space cannot be "
                     "finite while it is tracked)",
                     "", p.name);
          break;  // one finding per place
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// NET004: instantaneous arc cycles.  A token circulating through
// instantaneous activities never lets simulated time advance —
// stabilization diverges.  Pure arc cycles (no gate anywhere in the loop)
// are certain divergence (error); gated cycles may be broken by a
// predicate, so they rate a warning for review.
// ---------------------------------------------------------------------------
class VanishingLoopAnalyzer final : public Analyzer {
 public:
  const char* name() const override { return "vanishing-loop"; }

  void run(const AnalysisContext& ctx, LintReport& report) const override {
    const auto& acts = ctx.model.activities();
    const std::size_t n = acts.size();

    // slot -> instantaneous consumers (via input arcs).
    std::vector<std::vector<std::uint32_t>> consumers(ctx.model.marking_size());
    for (std::size_t ai = 0; ai < n; ++ai) {
      if (acts[ai].timed) continue;
      for (const FlatArc& arc : acts[ai].input_arcs)
        consumers[arc.slot].push_back(static_cast<std::uint32_t>(ai));
    }
    std::vector<std::vector<std::uint32_t>> adj(n);
    for (std::size_t ai = 0; ai < n; ++ai) {
      if (acts[ai].timed) continue;
      for (const FlatCase& c : acts[ai].cases)
        for (const FlatArc& arc : c.output_arcs)
          for (std::uint32_t b : consumers[arc.slot]) adj[ai].push_back(b);
      std::sort(adj[ai].begin(), adj[ai].end());
      adj[ai].erase(std::unique(adj[ai].begin(), adj[ai].end()),
                    adj[ai].end());
    }

    // Iterative DFS; each back edge closes one reported cycle.
    std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 on stack, 2 done
    std::vector<std::uint32_t> path;
    std::set<std::string> reported;
    for (std::size_t root = 0; root < n; ++root) {
      if (acts[root].timed || color[root] != 0) continue;
      // (node, next-edge-index) explicit stack.
      std::vector<std::pair<std::uint32_t, std::size_t>> stack;
      stack.emplace_back(static_cast<std::uint32_t>(root), 0);
      color[root] = 1;
      path.push_back(static_cast<std::uint32_t>(root));
      while (!stack.empty()) {
        auto& [node, edge] = stack.back();
        if (edge < adj[node].size()) {
          const std::uint32_t next = adj[node][edge++];
          if (color[next] == 1) {
            report_cycle(ctx, path, next, reported, report);
          } else if (color[next] == 0) {
            color[next] = 1;
            path.push_back(next);
            stack.emplace_back(next, 0);
          }
        } else {
          color[node] = 2;
          path.pop_back();
          stack.pop_back();
        }
      }
    }
  }

 private:
  static void report_cycle(const AnalysisContext& ctx,
                           const std::vector<std::uint32_t>& path,
                           std::uint32_t entry, std::set<std::string>& reported,
                           LintReport& report) {
    const auto& acts = ctx.model.activities();
    const auto it = std::find(path.begin(), path.end(), entry);
    std::vector<std::uint32_t> cycle(it, path.end());
    // Canonical key: rotate to the smallest index so each cycle reports once.
    const auto min_it = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), min_it, cycle.end());
    std::string key;
    for (std::uint32_t ai : cycle) key += std::to_string(ai) + ",";
    if (!reported.insert(key).second) return;

    bool gated = false;
    std::ostringstream os;
    for (std::uint32_t ai : cycle) {
      os << acts[ai].name << " -> ";
      gated |= !acts[ai].predicates.empty() || !acts[ai].input_fns.empty();
    }
    os << acts[cycle.front()].name;
    if (gated)
      report.add("NET004", Severity::kWarning,
                 "instantaneous arc cycle " + os.str() +
                     " (input gates may break it — verify the predicates "
                     "cannot all stay true)",
                 acts[cycle.front()].name);
    else
      report.add("NET004", Severity::kError,
                 "ungated instantaneous arc cycle " + os.str() +
                     ": stabilization cannot terminate once a token enters",
                 acts[cycle.front()].name);
  }
};

// ---------------------------------------------------------------------------
// NET005: same-priority instantaneous writers of one shared slot across
// distinct instances.  Both engines resolve the tie deterministically, but
// the model gives no ordering — the shared marking after stabilization
// depends on an implementation detail.  True Rep symmetry is exempt:
// firing order among symmetric replicas cannot change the aggregate
// marking.  Symmetry is decided on the *replica-normalized hierarchical
// path* (every "[i]" component stripped), not the bare source-activity
// name — two leaves that happen to reuse an activity name under different
// Join branches are NOT symmetric, and a Rep nested under a Join resolves
// through the full instance path.
// ---------------------------------------------------------------------------
class SharedWriteConflictAnalyzer final : public Analyzer {
 public:
  const char* name() const override { return "shared-write-conflict"; }

  /// "sys/veh[3]/L1" -> "sys/veh/L1": identical results mean the two
  /// activities are the same leaf activity in symmetric replica positions.
  static std::string strip_replica_indices(const std::string& name) {
    std::string out;
    out.reserve(name.size());
    for (std::size_t i = 0; i < name.size(); ++i) {
      if (name[i] == '[') {
        std::size_t j = i + 1;
        while (j < name.size() && name[j] >= '0' && name[j] <= '9') ++j;
        if (j < name.size() && name[j] == ']' && j > i + 1) {
          i = j;  // skip the "[digits]" component
          continue;
        }
      }
      out.push_back(name[i]);
    }
    return out;
  }

  void run(const AnalysisContext& ctx, LintReport& report) const override {
    const auto& acts = ctx.model.activities();
    std::set<std::string> reported;
    for (std::uint32_t s = 0; s < ctx.model.marking_size(); ++s) {
      if (!ctx.structure.shared[s]) continue;
      std::vector<std::uint32_t> writers;
      for (std::size_t ai = 0; ai < acts.size(); ++ai)
        if (!acts[ai].timed && contains(ctx.deps.writes(ai), s))
          writers.push_back(static_cast<std::uint32_t>(ai));
      for (std::size_t i = 0; i < writers.size(); ++i)
        for (std::size_t j = i + 1; j < writers.size(); ++j) {
          const FlatActivity& a = acts[writers[i]];
          const FlatActivity& b = acts[writers[j]];
          if (a.priority != b.priority) continue;
          if (a.imap.get() == b.imap.get()) continue;       // same instance
          if (a.source_name == b.source_name &&
              strip_replica_indices(a.name) == strip_replica_indices(b.name))
            continue;                                       // Rep symmetry
          const FlatPlace& p = ctx.structure.place_of_slot(ctx.model, s);
          const std::string key = p.name + "|" + a.source_name + "|" +
                                  b.source_name + "|" +
                                  std::to_string(a.priority);
          if (!reported.insert(key).second) continue;
          report.add("NET005", Severity::kInfo,
                     "instantaneous activities '" + a.source_name + "' and '" +
                         b.source_name + "' of different instances write "
                         "this shared place at equal priority " +
                         std::to_string(a.priority) +
                         "; their firing order is implementation-defined",
                     a.name, p.name);
        }
    }
  }
};

// ---------------------------------------------------------------------------
// STRUCT001-STRUCT006: findings of the structural-verification layer
// (invariants.h / graph.h).  The facts themselves travel in the report's
// structural_facts block; the diagnostics surface the actionable subset —
// refuted declarations are errors (the model's stated safety assumptions
// are wrong), proved conservation laws are informational.
// ---------------------------------------------------------------------------
class StructuralAnalyzer final : public Analyzer {
 public:
  const char* name() const override { return "structural-verification"; }

  void run(const AnalysisContext& ctx, LintReport& report) const override {
    const auto& acts = ctx.model.activities();
    const StructuralFacts& f = ctx.facts;

    // STRUCT001: one summary per model — how much of the net is opaque to
    // exact incidence analysis (per-activity findings would drown AHS
    // reports, where nearly every activity carries gates by design).
    if (f.incidence.opaque_activities > 0)
      report.add("STRUCT001", Severity::kInfo,
                 std::to_string(f.incidence.opaque_activities) + " of " +
                     std::to_string(acts.size()) +
                     " activities are gate-opaque; their effects are "
                     "excluded from exact incidence analysis and bounded "
                     "via checked capacity declarations instead");

    // STRUCT002: refuted capacity declarations — empirically (probe saw a
    // bigger marking) or structurally (a proved-unbounded producer feeds a
    // capacity-declared slot).
    for (const DeclarationViolation& v : ctx.probes.capacity_violations)
      report.add("STRUCT002", Severity::kError,
                 "declared capacity exceeded: probed reachable marking "
                 "holds " +
                     std::to_string(v.value) + " token(s)",
                 "", slot_name(ctx.model, ctx.structure, v.slot));
    for (const auto& [slot, ai] : f.capacity_refutations)
      report.add("STRUCT002", Severity::kError,
                 "declared capacity refuted structurally: '" +
                     acts[ai].name +
                     "' is a self-sustaining producer of this place",
                 acts[ai].name, slot_name(ctx.model, ctx.structure, slot));

    // STRUCT003: places provably never marked (unmarked-siphon fixpoint) —
    // dead subnet wired to nothing that could ever feed it.
    {
      std::set<std::string> seen_places;
      for (std::uint32_t s : f.never_markable_slots) {
        const FlatPlace& p = ctx.structure.place_of_slot(ctx.model, s);
        if (!seen_places.insert(p.name).second) continue;
        report.add("STRUCT003", Severity::kWarning,
                   "place can never be marked: initially empty and no "
                   "coverable activity ever feeds it (dead subnet)",
                   "", p.name);
      }
    }

    // STRUCT004: declared absorbing markers that decreased across a probed
    // firing — the declaration is wrong.
    for (const DeclarationViolation& v : ctx.probes.monotone_violations)
      report.add("STRUCT004", Severity::kError,
                 "declared absorbing marker decreased when '" +
                     acts[v.activity].name + "' fired",
                 acts[v.activity].name,
                 slot_name(ctx.model, ctx.structure, v.slot));

    // STRUCT005: proved conservation laws, one summary finding.
    if (!f.p_semiflows.empty() || f.bound_tightenings > 0)
      report.add("STRUCT005", Severity::kInfo,
                 std::to_string(f.p_semiflows.size()) +
                     " P-semiflow(s) and " +
                     std::to_string(f.t_semiflows.size()) +
                     " T-semiflow(s) proved; " +
                     std::to_string(f.bound_tightenings) +
                     " place bound(s) strengthened beyond the arc fixpoint");

    // STRUCT006: incomplete semiflow basis — sound but weaker.
    if (f.semiflow_truncated)
      report.add("STRUCT006", Severity::kWarning,
                 "semiflow basis truncated (Farkas working-set cap or int64 "
                 "overflow); proved bounds may be incomplete — raise "
                 "InvariantOptions::max_rows or simplify the net");
  }
};

// ---------------------------------------------------------------------------
// NET006/NET007/NET008: callback sanity at reachable markings, straight
// from the probe's recorded defects.
// ---------------------------------------------------------------------------
class CallbackSanityAnalyzer final : public Analyzer {
 public:
  const char* name() const override { return "callback-sanity"; }

  void run(const AnalysisContext& ctx, LintReport& report) const override {
    const auto& acts = ctx.model.activities();
    for (std::size_t ai = 0; ai < acts.size(); ++ai) {
      const ActivityProbe& ap = ctx.probes.activities[ai];
      if (!ap.rate_issue.empty())
        report.add("NET006", Severity::kError,
                   "rate function returned " + ap.rate_issue, acts[ai].name);
      if (!ap.weight_issue.empty())
        report.add("NET007", Severity::kError,
                   "invalid case weights: " + ap.weight_issue, acts[ai].name);
      if (!ap.thrown.empty())
        report.add("NET008", Severity::kError,
                   "callback threw at a reachable marking: " + ap.thrown,
                   acts[ai].name);
    }
  }
};

}  // namespace

std::string slot_name(const FlatModel& model, const StructureInfo& structure,
                      std::uint32_t slot) {
  const FlatPlace& p = structure.place_of_slot(model, slot);
  if (p.size == 1) return p.name;
  return p.name + "[" + std::to_string(slot - p.offset) + "]";
}

std::vector<std::unique_ptr<Analyzer>> default_analyzers() {
  std::vector<std::unique_ptr<Analyzer>> out;
  out.push_back(std::make_unique<DependencySoundnessAnalyzer>());
  out.push_back(std::make_unique<DeadActivityAnalyzer>());
  out.push_back(std::make_unique<UnreadPlaceAnalyzer>());
  out.push_back(std::make_unique<BoundsAnalyzer>());
  out.push_back(std::make_unique<VanishingLoopAnalyzer>());
  out.push_back(std::make_unique<SharedWriteConflictAnalyzer>());
  out.push_back(std::make_unique<StructuralAnalyzer>());
  out.push_back(std::make_unique<CallbackSanityAnalyzer>());
  return out;
}

}  // namespace san::analyze
