// Diagnostics framework for the SAN static-analysis suite.
//
// Every analyzer (see analyzer.h) reports findings as Diagnostic records
// tagged with a stable ID (catalogued in diagnostic_catalog()), a severity,
// and a source location given in model terms — the flattened activity
// and/or place name the finding anchors to.  A LintReport collects the
// findings for one model configuration; lint_json_document() renders one or
// more reports as a JSON document conforming to the `ahs.lint.v1` schema:
//
//   {
//     "schema": "ahs.lint.v1",
//     "reports": [
//       { "model": "<label>",
//         "probed_markings": 128, "probe_complete": false,
//         "summary": {"errors": 0, "warnings": 1, "infos": 3},
//         "diagnostics": [
//           { "id": "NET002", "severity": "info",
//             "activity": null, "place": "ahs/configuration/ext_id",
//             "message": "..." }, ... ] }, ... ]
//   }
//
// The catalogue of IDs, their rationale, and suppression guidance is
// documented in docs/ANALYSIS.md.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace san::analyze {

struct StructuralFacts;  // invariants.h

enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

const char* to_string(Severity s);

/// One finding of one analyzer.
struct Diagnostic {
  std::string id;        ///< catalogue ID, e.g. "DEP001"
  Severity severity = Severity::kInfo;
  std::string message;   ///< human-readable, self-contained
  std::string activity;  ///< flattened activity name, or "" if place-level
  std::string place;     ///< flattened place name, or "" if activity-level
};

/// Catalogue entry for one diagnostic ID (the single source of truth for
/// IDs and their default severities; docs/ANALYSIS.md mirrors it).
struct DiagnosticInfo {
  const char* id;
  Severity severity;
  const char* summary;  ///< one-line description of the defect class
};

/// All diagnostic IDs the suite can emit, in catalogue order.
std::span<const DiagnosticInfo> diagnostic_catalog();

/// Catalogue entry for `id`; nullptr for unknown IDs.
const DiagnosticInfo* find_diagnostic(const std::string& id);

/// Findings for one linted model configuration.
struct LintReport {
  std::string model_name;  ///< caller-supplied label, e.g. "ahs n=10 DD"
  std::vector<Diagnostic> diagnostics;

  /// Reachability-probe coverage: how many distinct markings the probe
  /// visited and whether it exhausted the reachable set within budget
  /// (completeness gates the over-width check DEP003, which would be
  /// noise on partially explored models).
  std::size_t probed_markings = 0;
  bool probe_complete = false;

  /// Structural facts computed for this configuration (invariants.h), for
  /// programmatic consumers (ctmc::StateSpaceOptions pre-sizing); null when
  /// the invariants pass did not run (crashed configurations).
  std::shared_ptr<const StructuralFacts> facts;
  /// The same facts pre-rendered as the `structural_facts` JSON object
  /// (rendering needs the FlatModel for names, which the report does not
  /// hold); spliced verbatim into to_json() when non-empty.
  std::string facts_json;

  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarning); }

  /// True when no finding is at or above `floor`.
  bool clean(Severity floor = Severity::kError) const;

  void add(std::string id, Severity severity, std::string message,
           std::string activity = "", std::string place = "");

  /// Human-readable rendering, one line per finding plus a summary line.
  std::string to_text() const;

  /// This report as one `reports[]` element of the ahs.lint.v1 schema.
  std::string to_json() const;
};

/// Full ahs.lint.v1 document over several reports.
std::string lint_json_document(std::span<const LintReport> reports);

}  // namespace san::analyze
