// Arc-level structural facts about a flattened SAN, shared by the
// net-structure analyzers.
//
// Everything here is derived from arcs, declared access sets, and instance
// maps alone — no callback is ever invoked.  Opaque gate/rate callbacks are
// handled conservatively: an activity with gate functions is assumed able
// to write every slot of its declared write set (or, undeclared, every slot
// its InstanceMap can address), which makes the "never written" /
// "never consumed" facts sound for dead-activity and unbounded-place
// reasoning.
//
// The token-flow bounds are a decreasing fixpoint started from +infinity:
// an activity's firing count is bounded by the total tokens its input-arc
// places can ever hold (initial marking + total arc inflow), and a slot's
// total inflow is bounded by its producers' firing counts.  Every iterate
// over-approximates the true reachable quantities, so the analysis may stop
// after any number of rounds and stays sound for the claims built on it
// ("this arc can never be covered", "this slot grows without bound").
#pragma once

#include <cstdint>
#include <vector>

#include "san/flat_model.h"

namespace san::analyze {

/// Sentinel for "no structural bound".
inline constexpr std::uint64_t kUnbounded = UINT64_MAX;

struct StructureInfo {
  /// slot -> index of the FlatPlace covering it.
  std::vector<std::uint32_t> slot_place;

  /// slot facts.
  std::vector<std::uint8_t> gate_written;  ///< some gate fn may write it
  std::vector<std::uint8_t> arc_fed;       ///< some output arc feeds it
  std::vector<std::uint8_t> arc_consumed;  ///< some input arc consumes it
  std::vector<std::uint8_t> shared;        ///< addressable by >= 2 instances

  /// Upper bound on the tokens slot `s` can ever hold (kUnbounded = none).
  std::vector<std::uint64_t> slot_bound;

  /// Upper bound on how often activity `a` can ever fire (kUnbounded when
  /// arcs alone cannot bound it).
  std::vector<std::uint64_t> fire_bound;

  const FlatPlace& place_of_slot(const FlatModel& model,
                                 std::uint32_t slot) const {
    return model.places()[slot_place[slot]];
  }
};

StructureInfo build_structure(const FlatModel& model);

}  // namespace san::analyze
