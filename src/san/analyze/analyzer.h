// The Analyzer interface and the default analyzer set.
//
// Each check of the static-analysis suite is one Analyzer: it inspects a
// shared AnalysisContext (the flattened model plus the three derived
// artifacts — dependency index, arc-structure facts, reachability-probe
// observations) and appends catalogued Diagnostics to a LintReport.
// run_lint (analysis.h) builds the context once and runs every analyzer;
// the set is open for extension — new checks register by joining
// default_analyzers().
#pragma once

#include <memory>
#include <vector>

#include "san/analyze/diagnostics.h"
#include "san/analyze/invariants.h"
#include "san/analyze/probe.h"
#include "san/analyze/structure.h"
#include "san/dependency.h"
#include "san/flat_model.h"

namespace san::analyze {

/// Everything an analyzer may consult.  All members outlive the run() call.
struct AnalysisContext {
  const FlatModel& model;
  const DependencyIndex& deps;
  const StructureInfo& structure;
  const ProbeResult& probes;
  /// Invariant/graph facts (invariants.h, graph.h), computed by run_lint
  /// before any analyzer runs.
  const StructuralFacts& facts;
};

class Analyzer {
 public:
  virtual ~Analyzer() = default;
  virtual const char* name() const = 0;
  virtual void run(const AnalysisContext& ctx, LintReport& report) const = 0;
};

/// The full default suite, in the order the diagnostics catalogue lists
/// their IDs: dependency soundness, dead activities, unread places, place
/// bounds, vanishing loops, shared-write conflicts, callback sanity.
std::vector<std::unique_ptr<Analyzer>> default_analyzers();

/// Hierarchical display name of the slot: the covering place's name, with
/// an "[i]" suffix for extended places.
std::string slot_name(const FlatModel& model, const StructureInfo& structure,
                      std::uint32_t slot);

}  // namespace san::analyze
