#include "san/analyze/structure.h"

#include <algorithm>

namespace san::analyze {

namespace {

/// Finite bounds beyond this are treated as "unbounded" — the fixpoint only
/// has to certify small structural bounds (dead arcs, bounded buffers), and
/// capping keeps the saturating arithmetic far from overflow.
constexpr std::uint64_t kBoundCap = std::uint64_t{1} << 20;

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  if (a == kUnbounded || b == kUnbounded) return kUnbounded;
  const std::uint64_t s = a + b;
  return s > kBoundCap ? kUnbounded : s;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnbounded || b == kUnbounded) return kUnbounded;
  const std::uint64_t p = a * b;  // both <= kBoundCap, cannot overflow
  return p > kBoundCap ? kUnbounded : p;
}

}  // namespace

StructureInfo build_structure(const FlatModel& model) {
  const auto& acts = model.activities();
  const std::size_t num_slots = model.marking_size();

  StructureInfo info;
  info.slot_place.assign(num_slots, 0);
  info.gate_written.assign(num_slots, 0);
  info.arc_fed.assign(num_slots, 0);
  info.arc_consumed.assign(num_slots, 0);
  info.shared.assign(num_slots, 0);
  info.slot_bound.assign(num_slots, kUnbounded);
  info.fire_bound.assign(acts.size(), kUnbounded);

  for (std::size_t pi = 0; pi < model.places().size(); ++pi) {
    const FlatPlace& p = model.places()[pi];
    for (std::uint32_t i = 0; i < p.size; ++i)
      info.slot_place[p.offset + i] = static_cast<std::uint32_t>(pi);
  }

  // Slots addressable by more than one leaf instance are the ones Rep/Join
  // sharing exposes to concurrent writers.  Count distinct InstanceMaps per
  // slot (capped at 2 — "shared" is all we need).
  {
    std::vector<const InstanceMap*> first_map(num_slots, nullptr);
    std::vector<const InstanceMap*> seen;
    for (const FlatActivity& a : acts) {
      const InstanceMap* m = a.imap.get();
      if (std::find(seen.begin(), seen.end(), m) != seen.end()) continue;
      seen.push_back(m);
      for (std::size_t p = 0; p < m->offset.size(); ++p)
        for (std::uint32_t i = 0; i < m->size[p]; ++i) {
          const std::uint32_t s = m->offset[p] + i;
          if (first_map[s] == nullptr) first_map[s] = m;
          else if (first_map[s] != m) info.shared[s] = 1;
        }
    }
  }

  for (const FlatActivity& a : acts) {
    for (const FlatArc& arc : a.input_arcs) info.arc_consumed[arc.slot] = 1;
    for (const FlatCase& c : a.cases)
      for (const FlatArc& arc : c.output_arcs) info.arc_fed[arc.slot] = 1;

    // Gate writes: the declared write set if present, otherwise everything
    // the instance map can address (exactly DependencyIndex's fallback).
    bool has_write_fns = !a.input_fns.empty();
    for (const FlatCase& c : a.cases)
      if (!c.output_fns.empty()) has_write_fns = true;
    if (!has_write_fns) continue;
    if (a.writes_declared) {
      for (std::uint32_t s : a.declared_write_slots) info.gate_written[s] = 1;
    } else {
      const InstanceMap& m = *a.imap;
      for (std::size_t p = 0; p < m.offset.size(); ++p)
        for (std::uint32_t i = 0; i < m.size[p]; ++i)
          info.gate_written[m.offset[p] + i] = 1;
    }
  }

  // Decreasing fixpoint on (slot_bound, fire_bound), both started at ∞.
  // Invariant (induction over rounds): slot_bound[s] >= total tokens slot s
  // can ever hold, fire_bound[a] >= total completions of a — so stopping
  // after any round is sound.  64 rounds covers every chain the AHS models
  // produce; deeper chains simply keep their ∞.
  for (int round = 0; round < 64; ++round) {
    bool changed = false;

    for (std::size_t s = 0; s < num_slots; ++s) {
      std::uint64_t inflow = 0;
      if (info.gate_written[s]) inflow = kUnbounded;
      const std::int32_t initial =
          model.places()[info.slot_place[s]].initial;
      std::uint64_t bound = sat_add(
          initial > 0 ? static_cast<std::uint64_t>(initial) : 0, inflow);
      if (bound != kUnbounded) {
        for (std::size_t ai = 0; ai < acts.size() && bound != kUnbounded;
             ++ai) {
          for (const FlatCase& c : acts[ai].cases)
            for (const FlatArc& arc : c.output_arcs)
              if (arc.slot == s && arc.weight > 0)
                bound = sat_add(
                    bound, sat_mul(static_cast<std::uint64_t>(arc.weight),
                                   info.fire_bound[ai]));
        }
      }
      if (bound < info.slot_bound[s]) {
        info.slot_bound[s] = bound;
        changed = true;
      }
    }

    for (std::size_t ai = 0; ai < acts.size(); ++ai) {
      std::uint64_t bound = kUnbounded;
      for (const FlatArc& arc : acts[ai].input_arcs) {
        if (arc.weight <= 0) continue;
        const std::uint64_t cap = info.slot_bound[arc.slot];
        if (cap == kUnbounded) continue;
        bound = std::min(bound, cap / static_cast<std::uint64_t>(arc.weight));
      }
      if (bound < info.fire_bound[ai]) {
        info.fire_bound[ai] = bound;
        changed = true;
      }
    }

    if (!changed) break;
  }

  return info;
}

}  // namespace san::analyze
