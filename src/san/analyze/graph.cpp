#include "san/analyze/graph.h"

#include <algorithm>
#include <string>
#include <vector>

namespace san::analyze {

namespace {

/// Conservative set of slots activity `ai`'s callbacks may write: the
/// declared write set when declared, otherwise every slot the activity's
/// InstanceMap can address (gates cannot reach beyond their instance).
/// Empty when the activity has no gate functions at all.
std::vector<std::uint32_t> conservative_gate_writes(const FlatModel& model,
                                                    std::size_t ai) {
  const FlatActivity& a = model.activities()[ai];
  bool any_gate = !a.input_fns.empty();
  for (const FlatCase& c : a.cases) any_gate |= !c.output_fns.empty();
  if (!any_gate) return {};
  if (a.writes_declared) return a.declared_write_slots;
  std::vector<std::uint32_t> slots;
  for (std::size_t pi = 0; pi < a.imap->offset.size(); ++pi)
    for (std::uint32_t i = 0; i < a.imap->size[pi]; ++i)
      slots.push_back(a.imap->offset[pi] + i);
  return slots;
}

/// As above for reads consulted by predicates / rate / weight functions.
std::vector<std::uint32_t> conservative_gate_reads(const FlatModel& model,
                                                   std::size_t ai) {
  const FlatActivity& a = model.activities()[ai];
  bool any_read_fn = !a.predicates.empty() || a.rate_fn != nullptr;
  for (const FlatCase& c : a.cases) any_read_fn |= c.weight_fn != nullptr;
  if (!any_read_fn) return {};
  if (a.reads_declared) return a.declared_read_slots;
  std::vector<std::uint32_t> slots;
  for (std::size_t pi = 0; pi < a.imap->offset.size(); ++pi)
    for (std::uint32_t i = 0; i < a.imap->size[pi]; ++i)
      slots.push_back(a.imap->offset[pi] + i);
  return slots;
}

/// Iterative Tarjan over an adjacency list; returns the component id of
/// every node and the component count (ids are reverse-topological).
std::size_t tarjan_scc(const std::vector<std::vector<std::uint32_t>>& adj,
                       std::vector<std::uint32_t>& comp) {
  const std::size_t n = adj.size();
  comp.assign(n, 0);
  std::vector<std::uint32_t> index(n, 0), low(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0), visited(n, 0);
  std::vector<std::uint32_t> stack;
  std::size_t next_index = 1, num_comps = 0;

  struct Frame {
    std::uint32_t v;
    std::size_t child;
  };
  std::vector<Frame> call;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      Frame& f = call.back();
      const std::uint32_t v = f.v;
      if (f.child == 0) {
        visited[v] = 1;
        index[v] = low[v] = static_cast<std::uint32_t>(next_index++);
        stack.push_back(v);
        on_stack[v] = 1;
      }
      bool descended = false;
      while (f.child < adj[v].size()) {
        const std::uint32_t w = adj[v][f.child++];
        if (!visited[w]) {
          call.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        while (true) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          comp[w] = static_cast<std::uint32_t>(num_comps);
          if (w == v) break;
        }
        ++num_comps;
      }
      call.pop_back();
      if (!call.empty()) {
        const std::uint32_t parent = call.back().v;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }
  return num_comps;
}

}  // namespace

void analyze_graph(const FlatModel& model, const StructureInfo& structure,
                   const ProbeResult& probes, StructuralFacts& facts) {
  const auto& acts = model.activities();
  const std::size_t num_slots = model.marking_size();
  const std::size_t n = num_slots + acts.size();

  // --- Bipartite flow graph: slot nodes [0, S), activity nodes [S, S+A).
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::size_t ai = 0; ai < acts.size(); ++ai) {
    const std::uint32_t anode = static_cast<std::uint32_t>(num_slots + ai);
    const FlatActivity& a = acts[ai];
    for (const FlatArc& arc : a.input_arcs)
      adj[arc.slot].push_back(anode);
    for (std::uint32_t s : conservative_gate_reads(model, ai))
      adj[s].push_back(anode);
    for (const FlatCase& c : a.cases)
      for (const FlatArc& arc : c.output_arcs) adj[anode].push_back(arc.slot);
    for (std::uint32_t s : conservative_gate_writes(model, ai))
      adj[anode].push_back(s);
  }
  for (auto& edges : adj) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  std::vector<std::uint32_t> comp;
  facts.scc_count = tarjan_scc(adj, comp);

  // Condensation sinks: components with no edge into a different component.
  std::vector<std::uint8_t> has_out(facts.scc_count, 0);
  for (std::uint32_t v = 0; v < n; ++v)
    for (std::uint32_t w : adj[v])
      if (comp[v] != comp[w]) has_out[comp[v]] = 1;
  facts.condensation_sinks = 0;
  for (std::uint8_t h : has_out)
    if (!h) ++facts.condensation_sinks;

  // --- Never-markable fixpoint (forward form of the unmarked-siphon
  // argument): start from the initially marked slots and saturate through
  // activities whose input arcs could all be covered; a slot never reached
  // this way can never hold a token in any engine.  Predicates and gate
  // guards are ignored (over-approximation keeps the negative claim sound).
  const std::vector<std::int32_t> m0 = model.initial_marking();
  std::vector<std::uint8_t> markable(num_slots, 0);
  for (std::size_t s = 0; s < num_slots; ++s) markable[s] = m0[s] > 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t ai = 0; ai < acts.size(); ++ai) {
      const FlatActivity& a = acts[ai];
      bool coverable = true;
      for (const FlatArc& arc : a.input_arcs)
        if (arc.weight > 0 && !markable[arc.slot]) {
          coverable = false;
          break;
        }
      if (!coverable) continue;
      auto mark = [&](std::uint32_t s) {
        if (!markable[s]) {
          markable[s] = 1;
          changed = true;
        }
      };
      for (const FlatCase& c : a.cases)
        for (const FlatArc& arc : c.output_arcs)
          if (arc.weight > 0) mark(arc.slot);
      for (std::uint32_t s : conservative_gate_writes(model, ai)) mark(s);
    }
  }
  facts.never_markable_slots.clear();
  for (std::uint32_t s = 0; s < num_slots; ++s)
    if (!markable[s]) facts.never_markable_slots.push_back(s);

  // --- Absorbing-class certificates for declared absorbing markers.
  const auto& places = model.places();
  for (std::size_t pi = 0; pi < places.size(); ++pi) {
    const FlatPlace& p = places[pi];
    if (!p.absorbing) continue;
    AbsorbingFact af;
    af.place = static_cast<std::uint32_t>(pi);

    auto in_place = [&p](std::uint32_t s) {
      return s >= p.offset && s < p.offset + p.size;
    };

    // Exact transitions must not decrease any slot of the marker.
    std::string refuter;
    for (const Transition& t : facts.incidence.transitions) {
      if (!t.exact) continue;
      for (const auto& [slot, d] : t.effect)
        if (d < 0 && in_place(slot)) {
          refuter = "input arc of '" + acts[t.activity].name +
                    "' consumes the marker";
          break;
        }
      if (!refuter.empty()) break;
    }
    // Opaque writers are checked empirically by the probe's monotonicity
    // watch; a recorded decrease refutes the declaration outright.
    if (refuter.empty())
      for (const DeclarationViolation& v : probes.monotone_violations)
        if (in_place(v.slot)) {
          refuter = "firing of '" + acts[v.activity].name +
                    "' decreased the marker at a probed reachable marking";
          break;
        }

    std::size_t opaque_writers = 0;
    for (std::size_t ai = 0; ai < acts.size(); ++ai)
      for (std::uint32_t s : conservative_gate_writes(model, ai))
        if (in_place(s)) {
          ++opaque_writers;
          break;
        }

    af.certified = refuter.empty();
    if (af.certified) {
      af.detail = "arc-exact transitions nondecreasing; " +
                  std::to_string(opaque_writers) +
                  " opaque writer(s) monotone over " +
                  std::to_string(probes.probed_markings) +
                  " probed marking(s)" +
                  (probes.complete ? " (full reachable set)" : "");
    } else {
      af.detail = refuter;
    }

    bool witnessed = false;
    for (std::uint32_t i = 0; i < p.size && !witnessed; ++i)
      witnessed = probes.slot_max.size() > p.offset + i &&
                  probes.slot_max[p.offset + i] > 0;
    if (witnessed)
      af.reach = AbsorbingFact::Reach::kWitnessed;
    else if (probes.complete)
      af.reach = AbsorbingFact::Reach::kRefuted;
    else
      af.reach = AbsorbingFact::Reach::kUnwitnessed;

    facts.absorbing.push_back(std::move(af));
  }

  (void)structure;
}

}  // namespace san::analyze
