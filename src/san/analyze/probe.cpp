#include "san/analyze/probe.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <exception>
#include <limits>
#include <string>
#include <unordered_set>

namespace san::analyze {

namespace {

struct MarkingHash {
  std::size_t operator()(const std::vector<std::int32_t>& m) const {
    std::size_t h = 1469598103934665603ull;  // FNV-1a
    for (std::int32_t v : m) {
      h ^= static_cast<std::uint32_t>(v);
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Deduplicating slot accumulator: one bit per (activity, slot) kind so the
/// observation vectors stay small no matter how many markings are probed.
class SlotBits {
 public:
  SlotBits(std::size_t num_activities, std::size_t num_slots)
      : num_slots_(num_slots), bits_(num_activities * num_slots, 0) {}

  void note(std::size_t ai, std::uint32_t slot,
            std::vector<std::uint32_t>& out) {
    std::uint8_t& b = bits_[ai * num_slots_ + slot];
    if (b) return;
    b = 1;
    out.push_back(slot);
  }

 private:
  std::size_t num_slots_;
  std::vector<std::uint8_t> bits_;
};

}  // namespace

ProbeResult run_probe(const FlatModel& model, const ProbeOptions& opts) {
  const auto& acts = model.activities();
  const std::size_t num_slots = model.marking_size();

  ProbeResult res;
  res.activities.resize(acts.size());
  SlotBits pred_bits(acts.size(), num_slots);
  SlotBits case_bits(acts.size(), num_slots);
  SlotBits write_bits(acts.size(), num_slots);
  SlotBits fire_read_bits(acts.size(), num_slots);
  SlotBits eval_bits(acts.size(), num_slots);

  res.slot_max.assign(num_slots, std::numeric_limits<std::int32_t>::min());
  res.slot_min.assign(num_slots, std::numeric_limits<std::int32_t>::max());
  std::vector<std::int32_t> slot_capacity(num_slots, -1);
  std::vector<std::uint8_t> capacity_flagged(num_slots, 0);
  std::vector<std::uint32_t> absorbing_slots;
  std::vector<std::uint8_t> monotone_flagged(num_slots, 0);
  for (const FlatPlace& p : model.places())
    for (std::uint32_t i = 0; i < p.size; ++i) {
      slot_capacity[p.offset + i] = p.capacity;
      if (p.absorbing) absorbing_slots.push_back(p.offset + i);
    }

  std::unordered_set<std::vector<std::int32_t>, MarkingHash> seen;
  std::deque<const std::vector<std::int32_t>*> frontier;
  auto push = [&](std::vector<std::int32_t>&& m) {
    auto [it, inserted] = seen.insert(std::move(m));
    if (!inserted) return;
    for (std::uint32_t s = 0; s < num_slots; ++s) {
      const std::int32_t v = (*it)[s];
      res.slot_max[s] = std::max(res.slot_max[s], v);
      res.slot_min[s] = std::min(res.slot_min[s], v);
      if (slot_capacity[s] >= 0 && v > slot_capacity[s] &&
          !capacity_flagged[s]) {
        capacity_flagged[s] = 1;
        res.capacity_violations.push_back({s, v, 0});
      }
    }
    frontier.push_back(&*it);
  };
  push(model.initial_marking());

  AccessLog log;
  auto drain_log = [&](std::size_t ai, SlotBits& read_bits,
                       std::vector<std::uint32_t>& read_out) {
    ActivityProbe& ap = res.activities[ai];
    for (std::uint32_t s : log.reads) read_bits.note(ai, s, read_out);
    for (std::uint32_t s : log.writes)
      eval_bits.note(ai, s, ap.eval_writes);
  };

  // Fires every positive-weight case of enabled activity `ai` from marking
  // `m`, recording weight reads, completion writes, and weight/throw
  // defects; pushes each successor marking.
  auto expand = [&](std::size_t ai, std::vector<std::int32_t>& m) {
    const FlatActivity& a = acts[ai];
    ActivityProbe& ap = res.activities[ai];
    const std::span<std::int32_t> ms(m);

    std::vector<double> w(a.cases.size(), 0.0);
    double total = 0.0;
    for (std::size_t ci = 0; ci < a.cases.size(); ++ci) {
      const FlatCase& c = a.cases[ci];
      double v = c.weight;
      if (c.weight_fn) {
        log.clear();
        try {
          v = c.weight_fn(MarkingRef(ms, a.imap.get(), &log));
        } catch (const std::exception& e) {
          if (ap.thrown.empty()) ap.thrown = e.what();
          v = 0.0;
        }
        drain_log(ai, case_bits, ap.case_reads);
      }
      if ((!std::isfinite(v) || v < 0.0) && ap.weight_issue.empty())
        ap.weight_issue =
            "case " + std::to_string(ci) + " weight " + std::to_string(v);
      if (std::isfinite(v) && v > 0.0) {
        w[ci] = v;
        total += v;
      }
    }
    if (total <= 0.0 && ap.weight_issue.empty())
      ap.weight_issue = "case weights sum to zero at an enabled marking";

    for (std::size_t ci = 0; ci < a.cases.size(); ++ci) {
      if (w[ci] <= 0.0) continue;  // the engines never select weight-0 cases
      std::vector<std::int32_t> next = m;
      log.clear();
      try {
        model.fire(ai, ci, std::span<std::int32_t>(next), &log);
      } catch (const std::exception& e) {
        if (ap.thrown.empty()) ap.thrown = e.what();
        continue;
      }
      for (std::uint32_t s : log.writes)
        write_bits.note(ai, s, ap.fire_writes);
      for (std::uint32_t s : log.reads)
        fire_read_bits.note(ai, s, ap.fire_reads);
      for (std::uint32_t s : absorbing_slots)
        if (next[s] < m[s] && !monotone_flagged[s]) {
          monotone_flagged[s] = 1;
          res.monotone_violations.push_back(
              {s, next[s] - m[s], static_cast<std::uint32_t>(ai)});
        }
      push(std::move(next));
    }
  };

  bool truncated = false;
  while (!frontier.empty()) {
    if (res.probed_markings >= opts.max_markings) {
      truncated = true;
      break;
    }
    // Probe a copy: an impure callback (the DEP005 defect class) may write
    // during evaluation, and the stored marking doubles as a hash-set key.
    std::vector<std::int32_t> m = *frontier.front();
    frontier.pop_front();
    ++res.probed_markings;
    const std::span<std::int32_t> ms(m);

    // Instantaneous predicates are probed on every marking; both engines
    // scan them during stabilization before any timed evaluation.
    int best_prio = std::numeric_limits<int>::min();
    std::vector<std::size_t> enabled_inst;
    for (std::size_t ai = 0; ai < acts.size(); ++ai) {
      if (acts[ai].timed) continue;
      ActivityProbe& ap = res.activities[ai];
      log.clear();
      bool en = false;
      try {
        en = model.enabled(ai, ms, &log);
      } catch (const std::exception& e) {
        if (ap.thrown.empty()) ap.thrown = e.what();
      }
      drain_log(ai, pred_bits, ap.pred_reads);
      if (en) {
        ap.seen_enabled = true;
        enabled_inst.push_back(ai);
        best_prio = std::max(best_prio, acts[ai].priority);
      }
    }

    if (!enabled_inst.empty()) {
      // Vanishing marking: only the highest enabled priority level can
      // fire, and timed activities are never consulted here.
      for (std::size_t ai : enabled_inst)
        if (acts[ai].priority == best_prio) expand(ai, m);
      continue;
    }

    // Tangible marking: probe timed enablement, rate sanity, and firings.
    for (std::size_t ai = 0; ai < acts.size(); ++ai) {
      if (!acts[ai].timed) continue;
      const FlatActivity& a = acts[ai];
      ActivityProbe& ap = res.activities[ai];
      log.clear();
      bool en = false;
      try {
        en = model.enabled(ai, ms, &log);
      } catch (const std::exception& e) {
        if (ap.thrown.empty()) ap.thrown = e.what();
      }
      drain_log(ai, pred_bits, ap.pred_reads);
      if (!en) continue;
      ap.seen_enabled = true;
      if (a.rate_fn) {
        log.clear();
        try {
          const double r = a.rate_fn(MarkingRef(ms, a.imap.get(), &log));
          if ((!std::isfinite(r) || r <= 0.0) && ap.rate_issue.empty())
            ap.rate_issue = "rate " + std::to_string(r) +
                            " at a reachable enabled marking";
        } catch (const std::exception& e) {
          if (ap.thrown.empty()) ap.thrown = e.what();
        }
        drain_log(ai, pred_bits, ap.pred_reads);
      }
      expand(ai, m);
    }
  }

  res.complete = !truncated && frontier.empty();
  for (ActivityProbe& ap : res.activities) {
    std::sort(ap.pred_reads.begin(), ap.pred_reads.end());
    std::sort(ap.case_reads.begin(), ap.case_reads.end());
    std::sort(ap.fire_writes.begin(), ap.fire_writes.end());
    std::sort(ap.fire_reads.begin(), ap.fire_reads.end());
    std::sort(ap.eval_writes.begin(), ap.eval_writes.end());
  }
  return res;
}

}  // namespace san::analyze
