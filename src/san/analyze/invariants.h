// Exact structural invariants of a flattened SAN: incidence matrix,
// P/T-semiflows, and invariant-implied place bounds.
//
// A SAN with only arcs is an ordinary Petri net, and the classic machinery
// applies: the incidence matrix C has one column per (activity, case)
// completion, a P-semiflow is an integer vector y >= 0 with yᵀC = 0 (a
// conservation law: y·m is constant over every reachable marking m, so
// every place in y's support is bounded by y·m0 / y[s]), and a T-semiflow
// is x >= 0 with Cx = 0 (a firing-count vector returning the net to where
// it started — the skeleton of every recurrent behaviour).
//
// SANs add opaque std::function gates, which this layer handles soundly
// rather than optimistically:
//
//  * A slot any gate may write (per StructureInfo::gate_written, which
//    falls back conservatively for undeclared writes) is *excluded* from
//    P-semiflow support.  On the remaining slots every activity's effect
//    is purely arcs, so the conservation law holds for the full model, not
//    just an arc projection.
//  * A transition is `exact` iff its activity has no input-gate functions
//    and its case has no output-gate functions; only exact transitions
//    enter T-semiflow analysis.
//  * Gate-dominated models (the AHS vehicle/platoon models keep almost all
//    behaviour in gates) are diagnosed as such (STRUCT001) and bounded via
//    *checked declarations* instead: AtomicModel::capacity place bounds
//    are validated empirically by the lint probe and exactly by
//    ctmc::build_state_space, then folded into the proved bounds here with
//    their provenance recorded.
//
// Semiflow computation is the Farkas / Fourier–Motzkin elimination over
// gcd-reduced integer rows with __int128 intermediates; every combination
// is overflow-checked and the working set is capped, with truncation
// surfaced as StructuralFacts::semiflow_truncated (STRUCT006) — the
// analysis degrades to "fewer proved bounds", never to wrong ones.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "san/analyze/structure.h"
#include "san/flat_model.h"

namespace san::analyze {

/// How a slot's bound in StructuralFacts::slot_bound was established.
enum class BoundProvenance : std::uint8_t {
  kNone = 0,         ///< no bound (kUnbounded, nothing proved either way)
  kFixpoint,         ///< StructureInfo's decreasing arc fixpoint
  kInvariant,        ///< P-semiflow conservation law
  kDeclared,         ///< checked AtomicModel::capacity declaration
  kProvedUnbounded,  ///< self-sustaining exact producer witness
};

const char* to_string(BoundProvenance p);

/// One column of the incidence matrix: the completion of one case of one
/// activity, with its arc-only marking effect.
struct Transition {
  std::uint32_t activity = 0;
  std::uint32_t case_idx = 0;
  /// True iff the effect is the *whole* effect: the activity has no
  /// input-gate functions and this case has no output-gate functions.
  bool exact = true;
  /// Net arc effect, (slot, delta) sorted by slot, zero deltas dropped.
  std::vector<std::pair<std::uint32_t, std::int64_t>> effect;
};

/// The exact integer incidence structure of a flattened model.
struct IncidenceMatrix {
  std::vector<Transition> transitions;
  /// slot -> 1 iff no gate function of any activity may write it; only
  /// these slots may carry P-semiflow support (see file comment).
  std::vector<std::uint8_t> slot_exact;
  /// Activities with at least one opaque gate function (STRUCT001 count).
  std::size_t opaque_activities = 0;
};

IncidenceMatrix build_incidence(const FlatModel& model,
                                const StructureInfo& structure);

/// A P- or T-semiflow.  For P-semiflows `terms` indexes marking slots and
/// `weighted_initial` is y·m0; for T-semiflows `terms` indexes
/// IncidenceMatrix::transitions and `weighted_initial` is 0.
struct Semiflow {
  std::vector<std::pair<std::uint32_t, std::int64_t>> terms;  ///< coeff > 0
  std::int64_t weighted_initial = 0;
};

/// Reachability evidence for one absorbing-marker place (see graph.h).
struct AbsorbingFact {
  std::uint32_t place = 0;  ///< FlatPlace index
  /// True iff no transition — exact (arc analysis) or opaque (probe-checked
  /// monotonicity) — can decrease the marker: once set, it stays set.
  bool certified = false;
  enum class Reach : std::uint8_t {
    kWitnessed,    ///< a probed reachable marking had the marker set
    kUnwitnessed,  ///< probe budget exhausted before reaching the marker
    kRefuted,      ///< probe covered the full space; marker never set
  };
  Reach reach = Reach::kUnwitnessed;
  std::string detail;  ///< human-readable certificate / refutation
};

/// Machine-readable structural facts about one flattened model — the
/// additive `structural_facts` block of the ahs.lint.v1 schema, and the
/// bound source ctmc::StateSpaceOptions consumes to pre-size vectors and
/// reject provably infinite explorations.
struct StructuralFacts {
  IncidenceMatrix incidence;
  std::vector<Semiflow> p_semiflows;
  std::vector<Semiflow> t_semiflows;

  /// Per-slot bound, strengthen-or-confirm of StructureInfo::slot_bound
  /// (never weaker), with the provenance of each entry.
  std::vector<std::uint64_t> slot_bound;
  std::vector<BoundProvenance> provenance;

  /// (slot, activity) pairs proving structural unboundedness: the activity
  /// is an exact, predicate-free, self-sustaining producer of the slot.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> unbounded_witnesses;

  /// Capacity declarations refuted *structurally* (an unbounded-producer
  /// witness feeds a capacity-declared slot): (slot, activity).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> capacity_refutations;

  /// True when the Farkas working set hit its cap or a combination
  /// overflowed int64 even after gcd reduction; the semiflow basis (and
  /// thus the proved bounds) may be incomplete but is still sound.
  bool semiflow_truncated = false;

  /// Graph analyses (filled by san::analyze::analyze_graph).
  std::size_t scc_count = 0;
  std::size_t condensation_sinks = 0;
  /// Slots provably never marked from m0 (unmarked-siphon fixpoint).
  std::vector<std::uint32_t> never_markable_slots;
  std::vector<AbsorbingFact> absorbing;

  /// Count of slots whose bound is strictly tighter than the fixpoint's
  /// (telemetry: san.analyze.invariant_bound_tightenings).
  std::size_t bound_tightenings = 0;
};

struct InvariantOptions {
  /// Cap on the Farkas working set per elimination step.  Semiflow bases
  /// can be exponential in pathological nets; exceeding the cap sets
  /// semiflow_truncated instead of blowing up.
  std::size_t max_rows = 512;
};

/// Builds the incidence matrix, computes P/T-semiflows, and derives the
/// strengthened slot bounds with provenance.  Graph facts are left empty —
/// run analyze_graph (graph.h) on the result to fill them.
StructuralFacts compute_invariants(const FlatModel& model,
                                   const StructureInfo& structure,
                                   const InvariantOptions& opts = {});

/// Renders `facts` as the ahs.lint.v1 `structural_facts` JSON object.
std::string structural_facts_json(const FlatModel& model,
                                  const StructuralFacts& facts);

/// Human-readable dump (ahs_lint --invariants).
std::string structural_facts_text(const FlatModel& model,
                                  const StructuralFacts& facts);

}  // namespace san::analyze
