// The flattened, executable form of a composed SAN.
//
// Flattening resolves Rep/Join place sharing into one global marking vector
// and instantiates every activity of every leaf instance with an InstanceMap
// that translates its atomic model's place tokens into global marking slots.
// Both execution engines consume this form: the discrete-event simulator
// (src/sim) and the CTMC state-space generator (src/ctmc).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "san/atomic_model.h"
#include "san/marking.h"
#include "util/rng.h"

namespace san {

/// A place of the flattened model.
struct FlatPlace {
  std::string name;       ///< hierarchical path, e.g. "sys/veh[3]/SM1"
  std::uint32_t offset;   ///< first slot in the marking vector
  std::uint32_t size;     ///< slot count (1 for simple places)
  std::int32_t initial;   ///< initial value of every slot

  /// Declared per-slot capacity (AtomicModel::capacity), -1 when
  /// undeclared.  Checked, never trusted: the lint probe and the CTMC
  /// state-space generator both validate it against reachable markings.
  std::int32_t capacity = -1;
  /// Declared nondecreasing absorbing marker (AtomicModel::absorbing).
  bool absorbing = false;
};

/// An arc resolved to a global slot.
struct FlatArc {
  std::uint32_t slot;
  std::int32_t weight;
};

struct FlatCase {
  double weight = 1.0;
  CaseWeightFn weight_fn;  ///< evaluated against the instance's MarkingRef
  std::vector<GateFn> output_fns;
  std::vector<FlatArc> output_arcs;
};

struct FlatActivity {
  std::string name;         ///< hierarchical, e.g. "sys/veh[3]/L1"
  std::string source_name;  ///< atomic-model activity name, e.g. "L1"
  bool timed = true;
  int priority = 0;

  std::optional<util::Distribution> dist;
  RateFn rate_fn;

  std::vector<Predicate> predicates;
  std::vector<GateFn> input_fns;
  std::vector<FlatArc> input_arcs;
  std::vector<FlatCase> cases;  ///< never empty after flattening

  std::shared_ptr<const InstanceMap> imap;

  /// Declared dependency sets resolved to global marking slots (see
  /// ActivityBuilder::reads / writes).  Meaningful only when the matching
  /// flag is set; consumed by san::DependencyIndex.
  std::vector<std::uint32_t> declared_read_slots;
  std::vector<std::uint32_t> declared_write_slots;
  bool reads_declared = false;
  bool writes_declared = false;
};

class FlatModel {
 public:
  // --- Structure ---------------------------------------------------------
  std::size_t marking_size() const { return marking_size_; }
  const std::vector<FlatPlace>& places() const { return places_; }
  const std::vector<FlatActivity>& activities() const { return activities_; }

  /// Initial marking (instantaneous activities NOT yet stabilized; engines
  /// do that themselves so they can account for probabilistic branching).
  std::vector<std::int32_t> initial_marking() const;

  /// Index of the unique place whose hierarchical name ends with `suffix`
  /// (matching a whole path component boundary).  Throws if absent or
  /// ambiguous.  Shared places keep short names, so `place_index("KO_total")`
  /// finds the severity model's absorbing flag.
  std::size_t place_index(const std::string& suffix) const;

  /// First marking slot of place `pi`.
  std::uint32_t place_offset(std::size_t pi) const;
  std::uint32_t place_size(std::size_t pi) const;

  /// All place indices whose names end with `suffix` (one per replica).
  std::vector<std::size_t> place_indices(const std::string& suffix) const;

  // --- Incidence accessors (san/analyze/invariants.h builds the exact
  // integer incidence matrix from these) -----------------------------------

  /// Index of the FlatPlace covering marking slot `s`.
  std::uint32_t place_of_slot(std::uint32_t s) const;

  /// Net arc-only token delta of completing case `ci` of activity `ai`:
  /// input arcs count negative, the case's output arcs positive, summed per
  /// slot and sorted by slot.  Gate-function effects are NOT included —
  /// they are opaque; san::analyze::build_incidence tracks which slots a
  /// gate may additionally write and treats those conservatively.
  std::vector<std::pair<std::uint32_t, std::int64_t>> case_arc_delta(
      std::size_t ai, std::size_t ci) const;

  // --- Activity semantics (shared by both engines) ------------------------

  /// True iff every input-gate predicate holds and every input arc is
  /// covered in marking `m`.  `log` (optional, for dependency validation)
  /// records every slot consulted.
  bool enabled(std::size_t ai, std::span<std::int32_t> m,
               AccessLog* log = nullptr) const;

  /// Exponential rate of a timed activity in marking `m`.  Throws
  /// util::ModelError for non-exponential activities (CTMC generation
  /// requires an all-exponential model).
  double exponential_rate(std::size_t ai, std::span<std::int32_t> m,
                          AccessLog* log = nullptr) const;

  /// True iff all timed activities are exponential (fixed or
  /// marking-dependent rate).
  bool all_exponential() const;

  /// Case weights of activity `ai` evaluated in marking `m` (normalized by
  /// the caller).  Size equals cases().size().
  std::vector<double> case_weights(std::size_t ai,
                                   std::span<std::int32_t> m) const;

  /// As case_weights, writing into `out` (resized to cases().size()) —
  /// the executor's per-event path, which must not allocate.
  void case_weights_into(std::size_t ai, std::span<std::int32_t> m,
                         std::vector<double>& out) const;

  /// Applies the completion of case `ci` of activity `ai` to marking `m`:
  /// input-gate functions, input arcs, then the case's output gates/arcs.
  /// Case weights must have been evaluated beforehand (they see the marking
  /// at completion start).  `log` records every slot the completion writes.
  void fire(std::size_t ai, std::size_t ci, std::span<std::int32_t> m,
            AccessLog* log = nullptr) const;

  /// Samples a firing delay for timed activity `ai` in marking `m`.
  double sample_delay(std::size_t ai, std::span<std::int32_t> m,
                      util::Rng& rng) const;

  /// True when the activity's delay distribution depends on the marking
  /// (and must therefore be resampled when the marking changes).
  bool marking_dependent(std::size_t ai) const;

  /// Structural validation of the flattened model.
  void validate() const;

  /// Human-readable summary: place/activity counts, marking width.
  std::string summary() const;

 private:
  friend struct FlatModelBuilderAccess;
  std::vector<FlatPlace> places_;
  std::vector<FlatActivity> activities_;
  std::size_t marking_size_ = 0;
  std::unordered_map<std::string, std::vector<std::size_t>> by_suffix_;
  std::vector<std::uint32_t> slot_place_;  ///< slot -> covering place index

  void index_names();
};

/// Internal: gives the flattener write access to a FlatModel under
/// construction.  Not part of the public API.
struct FlatModelBuilderAccess {
  static std::vector<FlatPlace>& places(FlatModel& m) { return m.places_; }
  static std::vector<FlatActivity>& activities(FlatModel& m) {
    return m.activities_;
  }
  static std::size_t& marking_size(FlatModel& m) { return m.marking_size_; }
  static void index_names(FlatModel& m) { m.index_names(); }
};

}  // namespace san
