#include "san/composition.h"

#include <map>

#include "util/error.h"

namespace san {

CompositionPtr Leaf(std::shared_ptr<const AtomicModel> model) {
  AHS_REQUIRE(model != nullptr, "Leaf requires a model");
  model->validate();
  auto node = std::shared_ptr<Composition>(new Composition());
  node->kind_ = Composition::Kind::kLeaf;
  node->name_ = model->name();
  node->leaf_ = std::move(model);
  return node;
}

CompositionPtr Rep(std::string name, CompositionPtr child, std::uint32_t count,
                   std::set<std::string> shared) {
  AHS_REQUIRE(child != nullptr, "Rep requires a child");
  AHS_REQUIRE(count >= 1, "Rep count must be >= 1");
  auto node = std::shared_ptr<Composition>(new Composition());
  node->kind_ = Composition::Kind::kRep;
  node->name_ = std::move(name);
  node->child_ = std::move(child);
  node->count_ = count;
  node->shared_ = std::move(shared);
  return node;
}

CompositionPtr Join(std::string name, std::vector<CompositionPtr> children,
                    std::set<std::string> shared) {
  AHS_REQUIRE(!children.empty(), "Join requires at least one child");
  for (const auto& c : children)
    AHS_REQUIRE(c != nullptr, "Join child must not be null");
  auto node = std::shared_ptr<Composition>(new Composition());
  node->kind_ = Composition::Kind::kJoin;
  node->name_ = std::move(name);
  node->children_ = std::move(children);
  node->shared_ = std::move(shared);
  return node;
}

std::size_t Composition::instance_count() const {
  switch (kind_) {
    case Kind::kLeaf:
      return 1;
    case Kind::kRep:
      return static_cast<std::size_t>(count_) * child_->instance_count();
    case Kind::kJoin: {
      std::size_t total = 0;
      for (const auto& c : children_) total += c->instance_count();
      return total;
    }
  }
  throw util::InvariantError("unknown composition kind");
}

namespace {

/// A shared place being assembled.  Created (unbound) when a Rep/Join node
/// declares the name shared; bound by the first leaf that declares a place
/// with that name; later leaves must agree on size and initial marking.
struct SharedSlot {
  std::string flat_name;  ///< name the FlatPlace will carry
  bool bound = false;
  std::size_t place_index = 0;
};

using Env = std::map<std::string, std::shared_ptr<SharedSlot>>;

class Flattener {
 public:
  FlatModel run(const CompositionPtr& root) {
    Env env;
    visit(root, env, "", 0);
    FlatModelBuilderAccess::marking_size(model_) = next_slot_;
    FlatModelBuilderAccess::index_names(model_);
    model_.validate();
    return std::move(model_);
  }

 private:
  static std::string child_path(const std::string& path,
                                const std::string& name) {
    return path.empty() ? name : path + "/" + name;
  }

  void visit(const CompositionPtr& node, Env env, const std::string& path,
             std::uint32_t replica) {
    switch (node->kind()) {
      case Composition::Kind::kLeaf:
        visit_leaf(*node->leaf(), env, child_path(path, node->name()),
                   replica);
        return;
      case Composition::Kind::kRep: {
        const std::string my_path = child_path(path, node->name());
        for (const std::string& name : node->shared())
          declare_shared(env, name, my_path);
        for (std::uint32_t i = 0; i < node->rep_count(); ++i)
          visit(node->rep_child(), env,
                my_path + "[" + std::to_string(i) + "]", i);
        return;
      }
      case Composition::Kind::kJoin: {
        const std::string my_path = child_path(path, node->name());
        for (const std::string& name : node->shared())
          declare_shared(env, name, my_path);
        for (const auto& child : node->join_children())
          visit(child, env, my_path, replica);
        return;
      }
    }
    throw util::InvariantError("unknown composition kind");
  }

  void declare_shared(Env& env, const std::string& name,
                      const std::string& path) {
    if (env.count(name)) return;  // already shared by an enclosing node
    auto slot = std::make_shared<SharedSlot>();
    slot->flat_name = child_path(path, name);
    env.emplace(name, std::move(slot));
  }

  std::size_t add_place(const std::string& flat_name,
                        const AtomicModel::PlaceDef& def) {
    FlatPlace p;
    p.name = flat_name;
    p.offset = next_slot_;
    p.size = def.size;
    p.initial = def.initial;
    p.capacity = def.capacity;
    p.absorbing = def.absorbing;
    next_slot_ += def.size;
    FlatModelBuilderAccess::places(model_).push_back(std::move(p));
    return FlatModelBuilderAccess::places(model_).size() - 1;
  }

  void visit_leaf(const AtomicModel& model, Env& env, const std::string& path,
                  std::uint32_t replica) {
    const auto& places = model.places();
    auto imap = std::make_shared<InstanceMap>();
    imap->offset.resize(places.size());
    imap->size.resize(places.size());
    imap->replica = replica;

    for (std::size_t pi = 0; pi < places.size(); ++pi) {
      const auto& def = places[pi];
      std::size_t global;
      const auto it = env.find(def.name);
      if (it != env.end()) {
        SharedSlot& slot = *it->second;
        if (!slot.bound) {
          slot.place_index = add_place(slot.flat_name, def);
          slot.bound = true;
        } else {
          FlatPlace& existing =
              FlatModelBuilderAccess::places(model_)[slot.place_index];
          if (existing.size != def.size)
            throw util::ModelError(
                "shared place '" + def.name + "': size mismatch (" +
                std::to_string(existing.size) + " vs " +
                std::to_string(def.size) + ") at " + path);
          if (existing.initial != def.initial)
            throw util::ModelError(
                "shared place '" + def.name + "': initial-marking mismatch (" +
                std::to_string(existing.initial) + " vs " +
                std::to_string(def.initial) + ") at " + path);
          // Structural declarations merge: a later leaf may add what an
          // earlier one left undeclared, but declared values must agree —
          // a silent min/max would hide a modelling disagreement.
          if (def.capacity >= 0) {
            if (existing.capacity >= 0 && existing.capacity != def.capacity)
              throw util::ModelError(
                  "shared place '" + def.name + "': capacity mismatch (" +
                  std::to_string(existing.capacity) + " vs " +
                  std::to_string(def.capacity) + ") at " + path);
            existing.capacity = def.capacity;
          }
          existing.absorbing = existing.absorbing || def.absorbing;
        }
        global = slot.place_index;
      } else {
        global = add_place(child_path(path, def.name), def);
      }
      imap->offset[pi] = FlatModelBuilderAccess::places(model_)[global].offset;
      imap->size[pi] = FlatModelBuilderAccess::places(model_)[global].size;
    }

    for (const auto& act : model.activities()) {
      FlatActivity fa;
      fa.name = child_path(path, act.name);
      fa.source_name = act.name;
      fa.timed = act.timed;
      fa.priority = act.priority;
      fa.dist = act.dist;
      fa.rate_fn = act.rate_fn;
      fa.predicates = act.predicates;
      fa.input_fns = act.input_fns;
      for (const auto& arc : act.input_arcs)
        fa.input_arcs.push_back({imap->offset[arc.place.id], arc.weight});
      auto resolve_slots = [&imap](const std::vector<PlaceToken>& places,
                                   std::vector<std::uint32_t>& out) {
        for (PlaceToken p : places)
          for (std::uint32_t i = 0; i < imap->size[p.id]; ++i)
            out.push_back(imap->offset[p.id] + i);
      };
      fa.reads_declared = act.reads_declared;
      fa.writes_declared = act.writes_declared;
      resolve_slots(act.declared_reads, fa.declared_read_slots);
      resolve_slots(act.declared_writes, fa.declared_write_slots);
      if (act.cases.empty()) {
        fa.cases.emplace_back();  // trivial single case
      } else {
        for (const auto& c : act.cases) {
          FlatCase fc;
          fc.weight = c.weight;
          fc.weight_fn = c.weight_fn;
          fc.output_fns = c.output_fns;
          for (const auto& arc : c.output_arcs)
            fc.output_arcs.push_back({imap->offset[arc.place.id], arc.weight});
          fa.cases.push_back(std::move(fc));
        }
      }
      fa.imap = imap;
      FlatModelBuilderAccess::activities(model_).push_back(std::move(fa));
    }
  }

  FlatModel model_;
  std::uint32_t next_slot_ = 0;
};

}  // namespace

FlatModel flatten(const CompositionPtr& root) {
  AHS_REQUIRE(root != nullptr, "flatten requires a composition");
  Flattener f;
  return f.run(root);
}

FlatModel flatten(std::shared_ptr<const AtomicModel> model) {
  return flatten(Leaf(std::move(model)));
}

}  // namespace san
