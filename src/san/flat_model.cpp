#include "san/flat_model.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/error.h"
#include "util/string_util.h"

namespace san {

std::vector<std::int32_t> FlatModel::initial_marking() const {
  std::vector<std::int32_t> m(marking_size_, 0);
  for (const auto& p : places_)
    for (std::uint32_t i = 0; i < p.size; ++i) m[p.offset + i] = p.initial;
  return m;
}

void FlatModel::index_names() {
  by_suffix_.clear();
  slot_place_.assign(marking_size_, 0);
  for (std::size_t i = 0; i < places_.size(); ++i)
    for (std::uint32_t k = 0; k < places_[i].size; ++k)
      slot_place_[places_[i].offset + k] = static_cast<std::uint32_t>(i);
  for (std::size_t i = 0; i < places_.size(); ++i) {
    // Index every path-component suffix: "a/b/c" -> "c", "b/c", "a/b/c".
    const std::string& name = places_[i].name;
    std::size_t pos = name.size();
    while (true) {
      const std::size_t slash = name.rfind('/', pos == 0 ? 0 : pos - 1);
      if (slash == std::string::npos) {
        by_suffix_[name].push_back(i);
        break;
      }
      by_suffix_[name.substr(slash + 1)].push_back(i);
      pos = slash;
      if (slash == 0) break;
    }
  }
}

std::size_t FlatModel::place_index(const std::string& suffix) const {
  const auto it = by_suffix_.find(suffix);
  if (it == by_suffix_.end())
    throw util::ModelError("no place matches suffix '" + suffix + "'");
  if (it->second.size() != 1)
    throw util::ModelError("place suffix '" + suffix + "' is ambiguous (" +
                           std::to_string(it->second.size()) + " matches)");
  return it->second.front();
}

std::vector<std::size_t> FlatModel::place_indices(
    const std::string& suffix) const {
  const auto it = by_suffix_.find(suffix);
  if (it == by_suffix_.end()) return {};
  return it->second;
}

std::uint32_t FlatModel::place_offset(std::size_t pi) const {
  AHS_REQUIRE(pi < places_.size(), "place index out of range");
  return places_[pi].offset;
}

std::uint32_t FlatModel::place_size(std::size_t pi) const {
  AHS_REQUIRE(pi < places_.size(), "place index out of range");
  return places_[pi].size;
}

std::uint32_t FlatModel::place_of_slot(std::uint32_t s) const {
  AHS_REQUIRE(s < slot_place_.size(), "slot out of range");
  return slot_place_[s];
}

std::vector<std::pair<std::uint32_t, std::int64_t>> FlatModel::case_arc_delta(
    std::size_t ai, std::size_t ci) const {
  AHS_REQUIRE(ai < activities_.size(), "activity index out of range");
  const FlatActivity& a = activities_[ai];
  AHS_REQUIRE(ci < a.cases.size(), "case index out of range");
  std::vector<std::pair<std::uint32_t, std::int64_t>> delta;
  auto accumulate = [&](std::uint32_t slot, std::int64_t d) {
    for (auto& [s, v] : delta)
      if (s == slot) {
        v += d;
        return;
      }
    delta.emplace_back(slot, d);
  };
  for (const FlatArc& arc : a.input_arcs)
    accumulate(arc.slot, -static_cast<std::int64_t>(arc.weight));
  for (const FlatArc& arc : a.cases[ci].output_arcs)
    accumulate(arc.slot, static_cast<std::int64_t>(arc.weight));
  std::erase_if(delta, [](const auto& e) { return e.second == 0; });
  std::sort(delta.begin(), delta.end());
  return delta;
}

bool FlatModel::enabled(std::size_t ai, std::span<std::int32_t> m,
                        AccessLog* log) const {
  const FlatActivity& a = activities_[ai];
  for (const auto& arc : a.input_arcs) {
    if (log) log->reads.push_back(arc.slot);
    if (m[arc.slot] < arc.weight) return false;
  }
  if (!a.predicates.empty()) {
    const MarkingRef ref(m, a.imap.get(), log);
    for (const auto& pred : a.predicates)
      if (!pred(ref)) return false;
  }
  return true;
}

double FlatModel::exponential_rate(std::size_t ai, std::span<std::int32_t> m,
                                   AccessLog* log) const {
  const FlatActivity& a = activities_[ai];
  AHS_REQUIRE(a.timed, "instantaneous activities have no rate");
  if (a.rate_fn) {
    const MarkingRef ref(m, a.imap.get(), log);
    const double r = a.rate_fn(ref);
    if (!(r > 0.0))
      throw util::ModelError("activity '" + a.name +
                             "': marking-dependent rate must be > 0, got " +
                             std::to_string(r));
    return r;
  }
  if (!a.dist->is_exponential())
    throw util::ModelError("activity '" + a.name +
                           "' is not exponential: " + a.dist->describe());
  return a.dist->rate();
}

bool FlatModel::all_exponential() const {
  for (const auto& a : activities_) {
    if (!a.timed) continue;
    if (a.rate_fn) continue;
    if (!a.dist.has_value() || !a.dist->is_exponential()) return false;
  }
  return true;
}

std::vector<double> FlatModel::case_weights(std::size_t ai,
                                            std::span<std::int32_t> m) const {
  std::vector<double> w;
  case_weights_into(ai, m, w);
  return w;
}

void FlatModel::case_weights_into(std::size_t ai, std::span<std::int32_t> m,
                                  std::vector<double>& out) const {
  const FlatActivity& a = activities_[ai];
  out.resize(a.cases.size());
  const MarkingRef ref(m, a.imap.get());
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    const FlatCase& c = a.cases[i];
    const double v = c.weight_fn ? c.weight_fn(ref) : c.weight;
    if (v < 0.0)
      throw util::ModelError("activity '" + a.name +
                             "': negative case weight " + std::to_string(v));
    out[i] = v;
  }
}

void FlatModel::fire(std::size_t ai, std::size_t ci, std::span<std::int32_t> m,
                     AccessLog* log) const {
  const FlatActivity& a = activities_[ai];
  AHS_REQUIRE(ci < a.cases.size(), "case index out of range");
  const MarkingRef ref(m, a.imap.get(), log);
  for (const auto& fn : a.input_fns) fn(ref);
  for (const auto& arc : a.input_arcs) {
    if (log) log->writes.push_back(arc.slot);
    m[arc.slot] -= arc.weight;
    if (m[arc.slot] < 0)
      throw util::ModelError("activity '" + a.name +
                             "' fired without input-arc tokens (place slot " +
                             std::to_string(arc.slot) + ")");
  }
  const FlatCase& c = a.cases[ci];
  for (const auto& fn : c.output_fns) fn(ref);
  for (const auto& arc : c.output_arcs) {
    if (log) log->writes.push_back(arc.slot);
    m[arc.slot] += arc.weight;
  }
}

double FlatModel::sample_delay(std::size_t ai, std::span<std::int32_t> m,
                               util::Rng& rng) const {
  const FlatActivity& a = activities_[ai];
  AHS_REQUIRE(a.timed, "cannot sample a delay for an instantaneous activity");
  if (a.rate_fn) {
    const MarkingRef ref(m, a.imap.get());
    const double r = a.rate_fn(ref);
    if (!(r > 0.0))
      throw util::ModelError("activity '" + a.name +
                             "': marking-dependent rate must be > 0");
    return rng.exponential(r);
  }
  return a.dist->sample(rng);
}

bool FlatModel::marking_dependent(std::size_t ai) const {
  return activities_[ai].rate_fn != nullptr;
}

void FlatModel::validate() const {
  for (const auto& a : activities_) {
    if (a.cases.empty())
      throw util::ModelError("flattened activity '" + a.name +
                             "' has no cases");
    if (a.timed && !a.dist.has_value() && !a.rate_fn)
      throw util::ModelError("flattened timed activity '" + a.name +
                             "' has no delay specification");
    auto check = [&](const FlatArc& arc) {
      if (arc.slot >= marking_size_)
        throw util::ModelError("arc of '" + a.name +
                               "' addresses slot out of range");
    };
    for (const auto& arc : a.input_arcs) check(arc);
    for (const auto& c : a.cases)
      for (const auto& arc : c.output_arcs) check(arc);
    if (!a.imap)
      throw util::ModelError("flattened activity '" + a.name +
                             "' lacks an instance map");
  }
  std::size_t slots = 0;
  for (const auto& p : places_) slots += p.size;
  if (slots != marking_size_)
    throw util::ModelError("place slots do not cover the marking vector");
}

std::string FlatModel::summary() const {
  std::size_t timed = 0, instant = 0;
  for (const auto& a : activities_) (a.timed ? timed : instant)++;
  std::ostringstream os;
  os << "FlatModel: " << places_.size() << " places (" << marking_size_
     << " slots), " << timed << " timed + " << instant
     << " instantaneous activities";
  return os.str();
}

}  // namespace san
