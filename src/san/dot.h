// Graphviz export of atomic models, for documentation and model review.
#pragma once

#include <string>

#include "san/atomic_model.h"

namespace san {

/// Renders the atomic model's net structure (places as circles, timed
/// activities as thick bars, instantaneous as thin bars, arcs as edges) in
/// Graphviz dot syntax.  Gate connectivity cannot be recovered from opaque
/// callbacks, so gates are shown as attached triangles without place edges.
std::string to_dot(const AtomicModel& model);

}  // namespace san
