// Graphviz export of atomic and flattened models, for documentation and
// model review.
#pragma once

#include <string>

#include "san/analyze/diagnostics.h"
#include "san/atomic_model.h"
#include "san/flat_model.h"

namespace san {

/// Renders the atomic model's net structure (places as circles, timed
/// activities as thick bars, instantaneous as thin bars, arcs as edges) in
/// Graphviz dot syntax.  Gate connectivity cannot be recovered from opaque
/// callbacks, so gates are shown as attached triangles without place edges.
std::string to_dot(const AtomicModel& model);

/// Renders the flattened (composed) model.  Unlike the atomic form, gate
/// connectivity IS shown — as dashed edges derived from the declared
/// read/write slot sets (place -> activity for reads, activity -> place for
/// writes).  When `findings` is given (`ahs_lint --dot`), nodes named by a
/// diagnostic are highlighted: red for error severity, orange for warning,
/// blue for info — visual triage for model review.
std::string to_dot(const FlatModel& model,
                   const analyze::LintReport* findings = nullptr);

}  // namespace san
