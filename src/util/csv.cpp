#include "util/csv.h"

#include "util/error.h"

namespace util {

CsvWriter::CsvWriter(const std::string& path) : file_(path), os_(&file_) {
  if (!file_) throw ModelError("cannot open CSV output file: " + path);
}

CsvWriter::CsvWriter(std::ostream& os) : os_(&os) {}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *os_ << ',';
    *os_ << escape(cells[i]);
  }
  *os_ << '\n';
  ++rows_;
}

}  // namespace util
