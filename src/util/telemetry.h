// Run-telemetry session and report: ties a MetricsRegistry and a SpanTree
// together, attaches them as the process-wide defaults, and exports one
// machine-readable JSON document (schema "ahs.telemetry.v1") plus a human
// summary rendering.
//
//   util::TelemetrySession session;          // instrumentation now records
//   ... run the workload ...
//   util::TelemetryReport report = session.report();
//   report.write_json_file("telemetry.json");
//   report.render_summary(std::cout);
//
// The JSON document is deterministic in *structure*: metric keys are sorted,
// span children are sorted by name, and both depend only on which code paths
// executed — not on thread count or scheduling.  Values (counts, seconds)
// naturally differ between runs.
#pragma once

#include <iosfwd>
#include <string>

#include "util/metrics.h"
#include "util/spans.h"

namespace util {

struct TelemetryReport {
  MetricsSnapshot metrics;
  SpanTree::Snapshot spans;

  /// The full document: {"schema": "ahs.telemetry.v1", "metrics": {...},
  /// "spans": {...}}.
  std::string to_json() const;

  /// to_json() for embedding: just the metrics/spans object, no schema
  /// wrapper (used for the `telemetry` field of bench_timings.json records).
  std::string to_json_fragment() const;

  /// Human rendering: a span-tree outline plus a table of counters/gauges
  /// and histogram summaries.
  void render_summary(std::ostream& os) const;

  void write_json_file(const std::string& path) const;
};

/// RAII: owns a registry + span tree and attaches them as the process-wide
/// defaults for its lifetime (restoring whatever was attached before).
/// Instrumented components resolve the defaults at construction/reset, so
/// create the session before the instrumented objects.
class TelemetrySession {
 public:
  TelemetrySession();
  ~TelemetrySession();

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  MetricsRegistry& registry() { return registry_; }
  SpanTree& spans() { return spans_; }

  TelemetryReport report() const;

 private:
  MetricsRegistry registry_;
  SpanTree spans_;
  MetricsRegistry* prev_registry_;
  SpanTree* prev_spans_;
};

}  // namespace util
