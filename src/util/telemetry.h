// Run-telemetry session and report: ties a MetricsRegistry and a SpanTree
// together, attaches them as the process-wide defaults, and exports one
// machine-readable JSON document (schema "ahs.telemetry.v1") plus a human
// summary rendering.
//
//   util::TelemetrySession session;          // instrumentation now records
//   ... run the workload ...
//   util::TelemetryReport report = session.report();
//   report.write_json_file("telemetry.json");
//   report.render_summary(std::cout);
//
// The JSON document is deterministic in *structure*: metric keys are sorted,
// span children are sorted by name, and both depend only on which code paths
// executed — not on thread count or scheduling.  Values (counts, seconds)
// naturally differ between runs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

#include "util/metrics.h"
#include "util/spans.h"
#include "util/trace.h"

namespace util {

struct TelemetryReport {
  MetricsSnapshot metrics;
  SpanTree::Snapshot spans;
  /// Flight-recorder aggregate, folded in when a TraceRecorder was attached
  /// at report() time (additive "trace" field in the JSON document).
  bool has_trace = false;
  TraceRecorder::Summary trace;

  /// The full document: {"schema": "ahs.telemetry.v1", "metrics": {...},
  /// "spans": {...}}.
  std::string to_json() const;

  /// to_json() for embedding: just the metrics/spans object, no schema
  /// wrapper (used for the `telemetry` field of bench_timings.json records).
  std::string to_json_fragment() const;

  /// Human rendering: a span-tree outline plus a table of counters/gauges
  /// and histogram summaries.
  void render_summary(std::ostream& os) const;

  void write_json_file(const std::string& path) const;
};

/// RAII: owns a registry + span tree and attaches them as the process-wide
/// defaults for its lifetime (restoring whatever was attached before).
/// Instrumented components resolve the defaults at construction/reset, so
/// create the session before the instrumented objects.
class TelemetrySession {
 public:
  TelemetrySession();
  ~TelemetrySession();

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  MetricsRegistry& registry() { return registry_; }
  SpanTree& spans() { return spans_; }

  TelemetryReport report() const;

 private:
  MetricsRegistry registry_;
  SpanTree spans_;
  MetricsRegistry* prev_registry_;
  SpanTree* prev_spans_;
};

/// Live telemetry publisher: a background thread that periodically snapshots
/// the process-wide registry/span tree/trace recorder and *atomically*
/// replaces a small JSON file (schema "ahs.telemetry.live.v1") with the
/// current state — progress (points done/total, ETA derived from the span
/// tree), every gauge and counter, and compact histogram percentiles.
/// The write is util/snapshot's write-temp + fsync + rename, so a concurrent
/// reader (examples/ahs_top, the future ahs_server) never observes a torn
/// document.  Destroying the tap publishes one final snapshot.
///
/// The tap only *reads* globals; results of the instrumented run are
/// bitwise identical with or without a tap attached.
class TelemetryTap {
 public:
  TelemetryTap(std::string path, double interval_seconds);
  ~TelemetryTap();

  TelemetryTap(const TelemetryTap&) = delete;
  TelemetryTap& operator=(const TelemetryTap&) = delete;

  /// Builds and atomically publishes one snapshot (also what the background
  /// thread does every interval).  Thread-safe.
  void write_now();

  /// The document write_now() would publish (exposed for tests).
  std::string build_document();

 private:
  void run();

  std::string path_;
  double interval_seconds_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;  ///< serializes write_now() and guards seq_/stop_
  std::condition_variable cv_;
  std::uint64_t seq_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

/// Dead-publisher detection for tap *readers* (examples/ahs_top, the
/// ahs_server progress forwarder): tracks how long the tap's sequence
/// number has failed to advance and trips once the silence exceeds a
/// timeout.  Without this a reader waiting for the terminal snapshot of a
/// producer that died (SIGKILL, OOM) would poll forever — the file stays
/// readable, it just never changes again.
///
/// Time is supplied by the caller in seconds on any monotonic clock, which
/// keeps the gate deterministic under test.
class TapStaleness {
 public:
  /// `timeout_seconds` <= 0 disables the gate (expired() stays false).
  explicit TapStaleness(double timeout_seconds)
      : timeout_seconds_(timeout_seconds) {}

  /// Feed the latest observed sequence number.  Returns the seconds since
  /// the sequence last advanced (0 on an advance or the first call).
  double observe(double seq, double now_seconds) {
    if (!seen_ || seq != last_seq_) {
      seen_ = true;
      last_seq_ = seq;
      last_change_ = now_seconds;
    }
    stale_seconds_ = now_seconds - last_change_;
    return stale_seconds_;
  }

  /// True once the publisher has been silent past the timeout.
  bool expired() const {
    return timeout_seconds_ > 0.0 && seen_ &&
           stale_seconds_ > timeout_seconds_;
  }

  double stale_seconds() const { return stale_seconds_; }

 private:
  double timeout_seconds_;
  bool seen_ = false;
  double last_seq_ = 0.0;
  double last_change_ = 0.0;
  double stale_seconds_ = 0.0;
};

}  // namespace util
