// Minimal blocking Unix-domain stream sockets with newline-delimited
// framing — the transport under serve/ (the ahs_server daemon and its
// clients).  Local-only by design: the service schedules *processes* on
// this machine, so a filesystem socket gives authentication (directory
// permissions) and naming for free, and the JSON protocol stays a plain
// `nc -U`-able line stream for debugging.
//
// Framing: one message per '\n'-terminated line (the payloads are the
// single-line JSON documents of serve/protocol.h, which never contain a
// raw newline — the util/json emitter escapes control characters).
#pragma once

#include <cstddef>
#include <string>

namespace util {

/// A connected stream socket.  Movable, not copyable; closes on destroy.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to a listening Unix-domain socket.  Throws IoError when the
  /// path does not exist or nothing is listening.
  static Socket connect_unix(const std::string& path);

  bool valid() const { return fd_ >= 0; }

  /// Writes `line` plus a terminating '\n' (the line itself must not
  /// contain one).  Returns false when the peer has gone away (EPIPE /
  /// ECONNRESET) — never raises SIGPIPE.
  bool send_line(const std::string& line);

  /// Reads up to the next '\n' (stripped).  Returns false on EOF with no
  /// buffered data; throws IoError on hard errors.
  bool recv_line(std::string* line);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// A bound + listening Unix-domain socket.  Removes a stale socket file on
/// bind and unlinks it again on destroy.
class UnixListener {
 public:
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Blocking accept.  Returns an invalid Socket once close() has been
  /// called (the shutdown path), throws IoError on other failures.
  Socket accept_connection();

  /// Unblocks a concurrent accept_connection() and invalidates the
  /// listener.  Safe to call from another thread; idempotent.
  void close();

  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace util
