#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.h"

namespace util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", std::max(0, digits - 1), value);
  return buf;
}

std::string format_fixed(double value, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Shortest decimal rendering that round-trips back to the same bits.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double parse_double(std::string_view s) {
  const std::string t = trim(s);
  AHS_REQUIRE(!t.empty(), "empty string is not a number");
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  AHS_REQUIRE(end == t.c_str() + t.size(),
              "malformed floating-point value: '" + t + "'");
  return v;
}

long long parse_int(std::string_view s) {
  const std::string t = trim(s);
  AHS_REQUIRE(!t.empty(), "empty string is not an integer");
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  AHS_REQUIRE(ec == std::errc() && ptr == t.data() + t.size(),
              "malformed integer: '" + t + "'");
  return v;
}

}  // namespace util
