#include "util/snapshot.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/metrics.h"

namespace util {

namespace {

constexpr const char* kMagic = "ahs.snapshot.v1";

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw SnapshotError(what + " '" + path + "': " + std::strerror(errno));
}

/// fsyncs the directory containing `path` so the rename itself is durable.
void sync_parent_dir(const std::string& path) {
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort — some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}

void count_snapshot(const char* name) {
  if (MetricsRegistry* reg = MetricsRegistry::global())
    reg->counter(name).inc();
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("cannot create temp file", tmp);

  const char* data = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_errno("write failed for", tmp);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_errno("fsync failed for", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("rename failed onto", path);
  }
  sync_parent_dir(path);
  count_snapshot("util.snapshot.atomic_writes");
}

bool read_file(const std::string& path, std::string* content) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) throw SnapshotError("read failed for '" + path + "'");
  *content = os.str();
  return true;
}

FileLock::FileLock(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) throw_errno("cannot open lock file", path);
  while (::flock(fd_, LOCK_EX) != 0) {
    if (errno == EINTR) continue;
    ::close(fd_);
    fd_ = -1;
    throw_errno("flock failed for", path);
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

void write_snapshot(const std::string& path, const SnapshotHeader& header,
                    const std::string& payload) {
  std::ostringstream os;
  os << kMagic << " " << header.kind << "\n"
     << "fingerprint " << header.fingerprint << " seed " << header.seed
     << " options " << header.option_hash << "\n"
     << payload;
  atomic_write_file(path, os.str());
  count_snapshot("util.snapshot.writes");
}

bool read_snapshot(const std::string& path, const SnapshotHeader& expect,
                   std::string* payload) {
  std::string content;
  if (!read_file(path, &content)) return false;

  std::istringstream is(content);
  std::string magic, kind;
  if (!(is >> magic >> kind))
    throw SnapshotError("snapshot '" + path + "' is corrupt (no header)");
  if (magic != kMagic)
    throw SnapshotError("snapshot '" + path + "' has unsupported format '" +
                        magic + "' (expected " + kMagic + ")");
  if (kind != expect.kind)
    throw SnapshotError("snapshot '" + path + "' holds a '" + kind +
                        "' checkpoint, not '" + expect.kind + "'");

  std::string key;
  SnapshotHeader got;
  std::uint64_t fp = 0, seed = 0, opts = 0;
  if (!(is >> key >> fp) || key != "fingerprint" || !(is >> key >> seed) ||
      key != "seed" || !(is >> key >> opts) || key != "options")
    throw SnapshotError("snapshot '" + path + "' is corrupt (bad header)");

  // Reject mismatches loudly: resuming a checkpoint of a different model,
  // seed, or option set would silently blend two different experiments.
  if (fp != expect.fingerprint)
    throw SnapshotError(
        "snapshot '" + path +
        "' was written for a different model structure (fingerprint " +
        std::to_string(fp) + ", expected " +
        std::to_string(expect.fingerprint) +
        ") — delete it or rerun with the original parameters");
  if (seed != expect.seed)
    throw SnapshotError("snapshot '" + path +
                        "' was written under seed " + std::to_string(seed) +
                        ", expected " + std::to_string(expect.seed));
  if (opts != expect.option_hash)
    throw SnapshotError(
        "snapshot '" + path +
        "' was written under different estimation options — delete it or "
        "rerun with the original options");

  // Payload starts after the second newline.
  std::size_t pos = content.find('\n');
  if (pos != std::string::npos) pos = content.find('\n', pos + 1);
  *payload =
      pos == std::string::npos ? std::string() : content.substr(pos + 1);
  count_snapshot("util.snapshot.reads");
  return true;
}

std::string encode_double(double v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(
                    std::bit_cast<std::uint64_t>(v)));
  return std::string(buf);
}

double decode_double(const std::string& token) {
  if (token.size() != 16 ||
      token.find_first_not_of("0123456789abcdef") != std::string::npos)
    throw SnapshotError("malformed double token '" + token + "'");
  std::uint64_t bits = 0;
  for (char c : token)
    bits = (bits << 4) |
           static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  return std::bit_cast<double>(bits);
}

TokenReader::TokenReader(const std::string& payload) {
  std::istringstream is(payload);
  std::string tok;
  while (is >> tok) tokens_.push_back(std::move(tok));
}

const std::string& TokenReader::next_token() {
  if (pos_ >= tokens_.size())
    throw SnapshotError("snapshot payload truncated");
  return tokens_[pos_++];
}

std::uint64_t TokenReader::next_u64() {
  const std::string& tok = next_token();
  std::uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9')
      throw SnapshotError("malformed integer token '" + tok + "'");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

double TokenReader::next_f64() { return decode_double(next_token()); }

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t value) {
  // FNV-1a over the value's bytes, seeded by h.
  if (h == 0) h = 14695981039346656037ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_mix(std::uint64_t h, double value) {
  return hash_mix(h, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t hash_mix(std::uint64_t h, const std::string& value) {
  if (h == 0) h = 14695981039346656037ull;
  for (unsigned char c : value) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return hash_mix(h, static_cast<std::uint64_t>(value.size()));
}

}  // namespace util
