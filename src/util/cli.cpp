#include "util/cli.h"

#include <iostream>
#include <sstream>

#include "util/error.h"
#include "util/string_util.h"

namespace util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

std::shared_ptr<long long> Cli::add_int(const std::string& name,
                                        long long default_value,
                                        const std::string& help) {
  AHS_REQUIRE(find(name) == nullptr, "duplicate option --" + name);
  Option opt;
  opt.name = name;
  opt.help = help;
  opt.kind = Kind::kInt;
  opt.int_value = std::make_shared<long long>(default_value);
  opt.default_repr = std::to_string(default_value);
  options_.push_back(opt);
  return opt.int_value;
}

std::shared_ptr<double> Cli::add_double(const std::string& name,
                                        double default_value,
                                        const std::string& help) {
  AHS_REQUIRE(find(name) == nullptr, "duplicate option --" + name);
  Option opt;
  opt.name = name;
  opt.help = help;
  opt.kind = Kind::kDouble;
  opt.double_value = std::make_shared<double>(default_value);
  opt.default_repr = format_sci(default_value, 6);
  options_.push_back(opt);
  return opt.double_value;
}

std::shared_ptr<std::string> Cli::add_string(const std::string& name,
                                             std::string default_value,
                                             const std::string& help) {
  AHS_REQUIRE(find(name) == nullptr, "duplicate option --" + name);
  Option opt;
  opt.name = name;
  opt.help = help;
  opt.kind = Kind::kString;
  opt.string_value = std::make_shared<std::string>(std::move(default_value));
  opt.default_repr = *opt.string_value;
  options_.push_back(opt);
  return opt.string_value;
}

std::shared_ptr<bool> Cli::add_flag(const std::string& name,
                                    const std::string& help) {
  AHS_REQUIRE(find(name) == nullptr, "duplicate option --" + name);
  Option opt;
  opt.name = name;
  opt.help = help;
  opt.kind = Kind::kBool;
  opt.bool_value = std::make_shared<bool>(false);
  opt.default_repr = "false";
  options_.push_back(opt);
  return opt.bool_value;
}

Cli::Option* Cli::find(const std::string& name) {
  for (auto& o : options_)
    if (o.name == name) return &o;
  return nullptr;
}

void Cli::assign(Option& opt, const std::string& value) {
  switch (opt.kind) {
    case Kind::kInt:
      *opt.int_value = parse_int(value);
      break;
    case Kind::kDouble:
      *opt.double_value = parse_double(value);
      break;
    case Kind::kString:
      *opt.string_value = value;
      break;
    case Kind::kBool: {
      const std::string v = to_lower(value);
      AHS_REQUIRE(v == "true" || v == "false" || v == "1" || v == "0",
                  "boolean flag --" + opt.name + " takes true/false");
      *opt.bool_value = (v == "true" || v == "1");
      break;
    }
  }
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      return false;
    }
    AHS_REQUIRE(starts_with(arg, "--"), "unexpected argument: " + arg);
    arg = arg.substr(2);
    std::string name;
    std::string value;
    bool have_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    } else {
      name = arg;
    }
    Option* opt = find(name);
    AHS_REQUIRE(opt != nullptr, "unknown option --" + name);
    if (!have_value) {
      if (opt->kind == Kind::kBool) {
        *opt->bool_value = true;
        continue;
      }
      AHS_REQUIRE(i + 1 < argc, "option --" + name + " needs a value");
      value = argv[++i];
    }
    assign(*opt, value);
  }
  return true;
}

std::string Cli::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& opt : options_) {
    os << "  --" << opt.name;
    switch (opt.kind) {
      case Kind::kInt: os << " <int>"; break;
      case Kind::kDouble: os << " <float>"; break;
      case Kind::kString: os << " <string>"; break;
      case Kind::kBool: break;
    }
    os << "  (default " << opt.default_repr << ")\n      " << opt.help
       << "\n";
  }
  return os.str();
}

}  // namespace util
